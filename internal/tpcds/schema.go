// Package tpcds is a from-scratch TPC-DS substrate: the 24-table snowflake
// schema (7 fact + 17 dimension tables) with its referential constraints,
// a deterministic generator with Zipf-skewed foreign keys (TPC-DS data is
// skewed, unlike TPC-H — the property Figure 13 exploits), and all 99
// queries as join-graph workload specs for the workload-driven design
// algorithm. TPC-DS queries are never executed in the paper's evaluation,
// only designed against, so no executable plans are provided.
package tpcds

import (
	"pref/internal/catalog"
	"pref/internal/value"
)

func ik(name string) catalog.Column { return catalog.Column{Name: name, Kind: value.Int} }
func sk(name string) catalog.Column { return catalog.Column{Name: name, Kind: value.Str} }
func mk(name string) catalog.Column { return catalog.Column{Name: name, Kind: value.Money} }

// Schema returns the 24-table TPC-DS schema. Column sets are reduced to
// the keys plus representative attributes — the design algorithms consume
// keys, sizes, and join-key histograms only.
func Schema() *catalog.Schema {
	s := catalog.NewSchema("tpcds")

	// ---- dimensions ----
	s.MustAddTable(catalog.MustTable("date_dim",
		[]catalog.Column{ik("d_date_sk"), ik("d_year"), ik("d_moy"), ik("d_dom")}, "d_date_sk"))
	s.MustAddTable(catalog.MustTable("time_dim",
		[]catalog.Column{ik("t_time_sk"), ik("t_hour"), ik("t_minute")}, "t_time_sk"))
	s.MustAddTable(catalog.MustTable("item",
		[]catalog.Column{ik("i_item_sk"), sk("i_item_id"), sk("i_brand"), sk("i_category"), mk("i_current_price")}, "i_item_sk"))
	s.MustAddTable(catalog.MustTable("customer",
		[]catalog.Column{ik("c_customer_sk"), sk("c_customer_id"), ik("c_current_addr_sk"), ik("c_current_cdemo_sk"), ik("c_current_hdemo_sk"), ik("c_birth_year")}, "c_customer_sk"))
	s.MustAddTable(catalog.MustTable("customer_address",
		[]catalog.Column{ik("ca_address_sk"), sk("ca_state"), sk("ca_city"), sk("ca_county")}, "ca_address_sk"))
	s.MustAddTable(catalog.MustTable("customer_demographics",
		[]catalog.Column{ik("cd_demo_sk"), sk("cd_gender"), sk("cd_marital_status"), sk("cd_education_status")}, "cd_demo_sk"))
	s.MustAddTable(catalog.MustTable("household_demographics",
		[]catalog.Column{ik("hd_demo_sk"), ik("hd_income_band_sk"), ik("hd_dep_count"), ik("hd_vehicle_count")}, "hd_demo_sk"))
	s.MustAddTable(catalog.MustTable("income_band",
		[]catalog.Column{ik("ib_income_band_sk"), ik("ib_lower_bound"), ik("ib_upper_bound")}, "ib_income_band_sk"))
	s.MustAddTable(catalog.MustTable("store",
		[]catalog.Column{ik("s_store_sk"), sk("s_store_name"), sk("s_state"), sk("s_county")}, "s_store_sk"))
	s.MustAddTable(catalog.MustTable("call_center",
		[]catalog.Column{ik("cc_call_center_sk"), sk("cc_name"), sk("cc_manager")}, "cc_call_center_sk"))
	s.MustAddTable(catalog.MustTable("catalog_page",
		[]catalog.Column{ik("cp_catalog_page_sk"), sk("cp_department")}, "cp_catalog_page_sk"))
	s.MustAddTable(catalog.MustTable("web_site",
		[]catalog.Column{ik("web_site_sk"), sk("web_name")}, "web_site_sk"))
	s.MustAddTable(catalog.MustTable("web_page",
		[]catalog.Column{ik("wp_web_page_sk"), sk("wp_type")}, "wp_web_page_sk"))
	s.MustAddTable(catalog.MustTable("warehouse",
		[]catalog.Column{ik("w_warehouse_sk"), sk("w_warehouse_name"), sk("w_state")}, "w_warehouse_sk"))
	s.MustAddTable(catalog.MustTable("promotion",
		[]catalog.Column{ik("p_promo_sk"), sk("p_channel_email"), sk("p_channel_tv")}, "p_promo_sk"))
	s.MustAddTable(catalog.MustTable("reason",
		[]catalog.Column{ik("r_reason_sk"), sk("r_reason_desc")}, "r_reason_sk"))
	s.MustAddTable(catalog.MustTable("ship_mode",
		[]catalog.Column{ik("sm_ship_mode_sk"), sk("sm_type")}, "sm_ship_mode_sk"))

	// ---- fact tables ----
	s.MustAddTable(catalog.MustTable("store_sales", []catalog.Column{
		ik("ss_sold_date_sk"), ik("ss_sold_time_sk"), ik("ss_item_sk"), ik("ss_customer_sk"),
		ik("ss_cdemo_sk"), ik("ss_hdemo_sk"), ik("ss_addr_sk"), ik("ss_store_sk"),
		ik("ss_promo_sk"), ik("ss_ticket_number"), ik("ss_quantity"), mk("ss_sales_price"),
	}, "ss_item_sk", "ss_ticket_number"))
	s.MustAddTable(catalog.MustTable("store_returns", []catalog.Column{
		ik("sr_returned_date_sk"), ik("sr_item_sk"), ik("sr_customer_sk"), ik("sr_store_sk"),
		ik("sr_reason_sk"), ik("sr_ticket_number"), ik("sr_return_quantity"), mk("sr_return_amt"),
	}, "sr_item_sk", "sr_ticket_number"))
	s.MustAddTable(catalog.MustTable("catalog_sales", []catalog.Column{
		ik("cs_sold_date_sk"), ik("cs_sold_time_sk"), ik("cs_item_sk"), ik("cs_bill_customer_sk"),
		ik("cs_bill_cdemo_sk"), ik("cs_bill_hdemo_sk"), ik("cs_bill_addr_sk"), ik("cs_call_center_sk"),
		ik("cs_catalog_page_sk"), ik("cs_ship_mode_sk"), ik("cs_warehouse_sk"), ik("cs_promo_sk"),
		ik("cs_order_number"), ik("cs_quantity"), mk("cs_sales_price"),
	}, "cs_item_sk", "cs_order_number"))
	s.MustAddTable(catalog.MustTable("catalog_returns", []catalog.Column{
		ik("cr_returned_date_sk"), ik("cr_item_sk"), ik("cr_returning_customer_sk"),
		ik("cr_call_center_sk"), ik("cr_reason_sk"), ik("cr_order_number"),
		ik("cr_return_quantity"), mk("cr_return_amount"),
	}, "cr_item_sk", "cr_order_number"))
	s.MustAddTable(catalog.MustTable("web_sales", []catalog.Column{
		ik("ws_sold_date_sk"), ik("ws_sold_time_sk"), ik("ws_item_sk"), ik("ws_bill_customer_sk"),
		ik("ws_bill_hdemo_sk"), ik("ws_bill_addr_sk"), ik("ws_web_site_sk"),
		ik("ws_web_page_sk"), ik("ws_ship_mode_sk"), ik("ws_warehouse_sk"), ik("ws_promo_sk"),
		ik("ws_order_number"), ik("ws_quantity"), mk("ws_sales_price"),
	}, "ws_item_sk", "ws_order_number"))
	s.MustAddTable(catalog.MustTable("web_returns", []catalog.Column{
		ik("wr_returned_date_sk"), ik("wr_item_sk"), ik("wr_returning_customer_sk"),
		ik("wr_web_page_sk"), ik("wr_reason_sk"), ik("wr_order_number"),
		ik("wr_return_quantity"), mk("wr_return_amt"),
	}, "wr_item_sk", "wr_order_number"))
	s.MustAddTable(catalog.MustTable("inventory", []catalog.Column{
		ik("inv_date_sk"), ik("inv_item_sk"), ik("inv_warehouse_sk"), ik("inv_quantity_on_hand"),
	}, "inv_date_sk", "inv_item_sk", "inv_warehouse_sk"))

	type fk struct {
		from  string
		fcols []string
		to    string
		tcols []string
	}
	fks := []fk{
		// customer snowflake
		{"customer", []string{"c_current_addr_sk"}, "customer_address", []string{"ca_address_sk"}},
		{"customer", []string{"c_current_cdemo_sk"}, "customer_demographics", []string{"cd_demo_sk"}},
		{"customer", []string{"c_current_hdemo_sk"}, "household_demographics", []string{"hd_demo_sk"}},
		{"household_demographics", []string{"hd_income_band_sk"}, "income_band", []string{"ib_income_band_sk"}},
		// store_sales
		{"store_sales", []string{"ss_sold_date_sk"}, "date_dim", []string{"d_date_sk"}},
		{"store_sales", []string{"ss_sold_time_sk"}, "time_dim", []string{"t_time_sk"}},
		{"store_sales", []string{"ss_item_sk"}, "item", []string{"i_item_sk"}},
		{"store_sales", []string{"ss_customer_sk"}, "customer", []string{"c_customer_sk"}},
		{"store_sales", []string{"ss_cdemo_sk"}, "customer_demographics", []string{"cd_demo_sk"}},
		{"store_sales", []string{"ss_hdemo_sk"}, "household_demographics", []string{"hd_demo_sk"}},
		{"store_sales", []string{"ss_addr_sk"}, "customer_address", []string{"ca_address_sk"}},
		{"store_sales", []string{"ss_store_sk"}, "store", []string{"s_store_sk"}},
		{"store_sales", []string{"ss_promo_sk"}, "promotion", []string{"p_promo_sk"}},
		// store_returns
		{"store_returns", []string{"sr_returned_date_sk"}, "date_dim", []string{"d_date_sk"}},
		{"store_returns", []string{"sr_item_sk"}, "item", []string{"i_item_sk"}},
		{"store_returns", []string{"sr_customer_sk"}, "customer", []string{"c_customer_sk"}},
		{"store_returns", []string{"sr_store_sk"}, "store", []string{"s_store_sk"}},
		{"store_returns", []string{"sr_reason_sk"}, "reason", []string{"r_reason_sk"}},
		{"store_returns", []string{"sr_item_sk", "sr_ticket_number"}, "store_sales", []string{"ss_item_sk", "ss_ticket_number"}},
		// catalog_sales
		{"catalog_sales", []string{"cs_sold_date_sk"}, "date_dim", []string{"d_date_sk"}},
		{"catalog_sales", []string{"cs_sold_time_sk"}, "time_dim", []string{"t_time_sk"}},
		{"catalog_sales", []string{"cs_bill_cdemo_sk"}, "customer_demographics", []string{"cd_demo_sk"}},
		{"catalog_sales", []string{"cs_bill_hdemo_sk"}, "household_demographics", []string{"hd_demo_sk"}},
		{"catalog_sales", []string{"cs_bill_addr_sk"}, "customer_address", []string{"ca_address_sk"}},
		{"catalog_sales", []string{"cs_item_sk"}, "item", []string{"i_item_sk"}},
		{"catalog_sales", []string{"cs_bill_customer_sk"}, "customer", []string{"c_customer_sk"}},
		{"catalog_sales", []string{"cs_call_center_sk"}, "call_center", []string{"cc_call_center_sk"}},
		{"catalog_sales", []string{"cs_catalog_page_sk"}, "catalog_page", []string{"cp_catalog_page_sk"}},
		{"catalog_sales", []string{"cs_ship_mode_sk"}, "ship_mode", []string{"sm_ship_mode_sk"}},
		{"catalog_sales", []string{"cs_warehouse_sk"}, "warehouse", []string{"w_warehouse_sk"}},
		{"catalog_sales", []string{"cs_promo_sk"}, "promotion", []string{"p_promo_sk"}},
		// catalog_returns
		{"catalog_returns", []string{"cr_returned_date_sk"}, "date_dim", []string{"d_date_sk"}},
		{"catalog_returns", []string{"cr_item_sk"}, "item", []string{"i_item_sk"}},
		{"catalog_returns", []string{"cr_returning_customer_sk"}, "customer", []string{"c_customer_sk"}},
		{"catalog_returns", []string{"cr_call_center_sk"}, "call_center", []string{"cc_call_center_sk"}},
		{"catalog_returns", []string{"cr_reason_sk"}, "reason", []string{"r_reason_sk"}},
		{"catalog_returns", []string{"cr_item_sk", "cr_order_number"}, "catalog_sales", []string{"cs_item_sk", "cs_order_number"}},
		// web_sales
		{"web_sales", []string{"ws_sold_date_sk"}, "date_dim", []string{"d_date_sk"}},
		{"web_sales", []string{"ws_sold_time_sk"}, "time_dim", []string{"t_time_sk"}},
		{"web_sales", []string{"ws_bill_hdemo_sk"}, "household_demographics", []string{"hd_demo_sk"}},
		{"web_sales", []string{"ws_bill_addr_sk"}, "customer_address", []string{"ca_address_sk"}},
		{"web_sales", []string{"ws_item_sk"}, "item", []string{"i_item_sk"}},
		{"web_sales", []string{"ws_bill_customer_sk"}, "customer", []string{"c_customer_sk"}},
		{"web_sales", []string{"ws_web_site_sk"}, "web_site", []string{"web_site_sk"}},
		{"web_sales", []string{"ws_web_page_sk"}, "web_page", []string{"wp_web_page_sk"}},
		{"web_sales", []string{"ws_ship_mode_sk"}, "ship_mode", []string{"sm_ship_mode_sk"}},
		{"web_sales", []string{"ws_warehouse_sk"}, "warehouse", []string{"w_warehouse_sk"}},
		{"web_sales", []string{"ws_promo_sk"}, "promotion", []string{"p_promo_sk"}},
		// web_returns
		{"web_returns", []string{"wr_returned_date_sk"}, "date_dim", []string{"d_date_sk"}},
		{"web_returns", []string{"wr_item_sk"}, "item", []string{"i_item_sk"}},
		{"web_returns", []string{"wr_returning_customer_sk"}, "customer", []string{"c_customer_sk"}},
		{"web_returns", []string{"wr_web_page_sk"}, "web_page", []string{"wp_web_page_sk"}},
		{"web_returns", []string{"wr_reason_sk"}, "reason", []string{"r_reason_sk"}},
		{"web_returns", []string{"wr_item_sk", "wr_order_number"}, "web_sales", []string{"ws_item_sk", "ws_order_number"}},
		// inventory
		{"inventory", []string{"inv_date_sk"}, "date_dim", []string{"d_date_sk"}},
		{"inventory", []string{"inv_item_sk"}, "item", []string{"i_item_sk"}},
		{"inventory", []string{"inv_warehouse_sk"}, "warehouse", []string{"w_warehouse_sk"}},
	}
	for _, f := range fks {
		s.MustAddFK(catalog.ForeignKey{
			Name: "fk_" + f.from + "_" + f.to, FromTable: f.from, FromCols: f.fcols,
			ToTable: f.to, ToCols: f.tcols, ToIsUnique: true,
		})
	}
	return s
}

// FactTables lists the 7 fact tables.
func FactTables() []string {
	return []string{"store_sales", "store_returns", "catalog_sales", "catalog_returns",
		"web_sales", "web_returns", "inventory"}
}

// SmallTables lists the tiny dimensions (< 1000 rows at any SF) that the
// paper's SD variants exclude and replicate (Section 5.3 removes 5 such
// tables).
func SmallTables() []string {
	return []string{"store", "call_center", "web_site", "warehouse", "reason",
		"ship_mode", "income_band", "web_page", "promotion"}
}

// Stars maps each fact table to its direct dimensions — the manual
// "Individual Stars" decomposition of Section 5.3.
func Stars() map[string][]string {
	return map[string][]string{
		"store_sales":     {"date_dim", "time_dim", "item", "customer", "customer_demographics", "household_demographics", "customer_address", "store", "promotion"},
		"store_returns":   {"date_dim", "item", "customer", "store", "reason"},
		"catalog_sales":   {"date_dim", "item", "customer", "call_center", "catalog_page", "ship_mode", "warehouse", "promotion"},
		"catalog_returns": {"date_dim", "item", "customer", "call_center", "reason"},
		"web_sales":       {"date_dim", "item", "customer", "web_site", "web_page", "ship_mode", "warehouse", "promotion"},
		"web_returns":     {"date_dim", "item", "customer", "web_page", "reason"},
		"inventory":       {"date_dim", "item", "warehouse"},
	}
}
