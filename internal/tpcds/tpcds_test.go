package tpcds

import (
	"reflect"
	"strings"
	"testing"

	"pref/internal/design"
	"pref/internal/partition"
	"pref/internal/value"
)

func gen(t testing.TB) *TPCDS {
	t.Helper()
	return Generate(0.5, 11)
}

func TestSchemaHas24Tables(t *testing.T) {
	s := Schema()
	if got := len(s.TableNames()); got != 24 {
		t.Fatalf("tables = %d, want 24", got)
	}
	if got := len(FactTables()); got != 7 {
		t.Fatalf("fact tables = %d, want 7", got)
	}
	for _, f := range FactTables() {
		if s.Table(f) == nil {
			t.Errorf("missing fact table %s", f)
		}
	}
	stars := Stars()
	if len(stars) != 7 {
		t.Fatalf("stars = %d", len(stars))
	}
	for fact, dims := range stars {
		if s.Table(fact) == nil {
			t.Errorf("star fact %s missing", fact)
		}
		for _, d := range dims {
			if s.Table(d) == nil {
				t.Errorf("star dim %s missing", d)
			}
		}
	}
}

func TestGeneratorIntegrity(t *testing.T) {
	d := gen(t)
	db := d.DB
	// Every fk must resolve.
	for _, fk := range db.Schema.FKs {
		to := db.Tables[fk.ToTable]
		toIdx, err := to.Meta.ColIndexes(fk.ToCols)
		if err != nil {
			t.Fatal(err)
		}
		keys := map[value.Key]bool{}
		for _, r := range to.Rows {
			keys[value.MakeKey(r, toIdx)] = true
		}
		from := db.Tables[fk.FromTable]
		fromIdx, err := from.Meta.ColIndexes(fk.FromCols)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range from.Rows {
			if !keys[value.MakeKey(r, fromIdx)] {
				t.Fatalf("fk %s: dangling reference %v", fk.Name, r)
			}
		}
	}
	// store_sales is the biggest fact; inventory is dense.
	if db.Tables["store_sales"].Len() < db.Tables["web_sales"].Len() {
		t.Fatal("store_sales should dominate web_sales")
	}
}

func TestGeneratorSkew(t *testing.T) {
	d := gen(t)
	db := d.DB
	// Zipf fks: the hottest item should absorb far more than the uniform
	// share of store_sales.
	counts := map[int64]int{}
	idx := db.Tables["store_sales"].Meta.ColIndex("ss_item_sk")
	for _, r := range db.Tables["store_sales"].Rows {
		counts[r[idx]]++
	}
	max, total := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	nItem := db.Tables["item"].Len()
	uniformShare := float64(total) / float64(nItem)
	if float64(max) < 5*uniformShare {
		t.Fatalf("hottest item %d sales vs uniform %f — not skewed enough", max, uniformShare)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := Generate(0.2, 3)
	b := Generate(0.2, 3)
	if !reflect.DeepEqual(a.DB.Tables["store_sales"].Rows, b.DB.Tables["store_sales"].Rows) {
		t.Fatal("same seed must generate identical data")
	}
}

func TestWorkloadCovers99Queries(t *testing.T) {
	names := QueryNames()
	if len(names) != 99 {
		t.Fatalf("workload covers %d distinct queries, want 99", len(names))
	}
	if names[0] != "q1" || names[98] != "q99" {
		t.Fatalf("query names = %v … %v", names[0], names[98])
	}
	// All edges must reference schema tables & columns.
	s := Schema()
	for _, qq := range Workload() {
		for _, e := range qq.Joins {
			for _, end := range []struct {
				tbl  string
				cols []string
			}{{e.TableA, e.ColsA}, {e.TableB, e.ColsB}} {
				tb := s.Table(end.tbl)
				if tb == nil {
					t.Fatalf("%s: unknown table %s", qq.Name, end.tbl)
				}
				if _, err := tb.ColIndexes(end.cols); err != nil {
					t.Fatalf("%s: %v", qq.Name, err)
				}
			}
		}
	}
}

func TestWorkloadBlockSeparation(t *testing.T) {
	// Multi-block queries are emitted per SPJA block.
	blocks := 0
	for _, qq := range Workload() {
		if strings.Contains(qq.Name, "#") {
			blocks++
		}
	}
	if blocks < 30 {
		t.Fatalf("only %d separated blocks; the union/rollup queries should contribute many", blocks)
	}
}

func TestSDOnTPCDS(t *testing.T) {
	d := Generate(0.2, 5)
	reduced := d.DB.Without(SmallTables()...)
	des, err := design.SchemaDriven(reduced, design.SDOptions{Parts: 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := des.Config.Clone()
	for _, tbl := range SmallTables() {
		cfg.SetReplicated(tbl)
	}
	pdb, err := partition.Apply(d.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pdb.TotalStoredRows() < d.DB.TotalRows() {
		t.Fatal("partitioning lost tuples")
	}
	if des.DL <= 0 || des.DL > 1 {
		t.Fatalf("DL = %v", des.DL)
	}
}

func TestWDOnTPCDSWorkloadMerges(t *testing.T) {
	d := Generate(0.2, 5)
	reduced := d.DB.Without(SmallTables()...)
	w := filterWorkload(Workload(), SmallTables())
	wd, err := design.WorkloadDriven(reduced, w, design.WDOptions{Parts: 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("units: %d → %d → %d groups", wd.UnitsBeforeMerge, wd.UnitsAfterPhase1, len(wd.Groups))
	// Paper: 165 components → 17 after phase 1 → 7 (the fact-table count).
	// Our query encodings differ slightly; require the same order of
	// magnitude of merging.
	if wd.UnitsBeforeMerge < 99 {
		t.Fatalf("units before merge = %d, want ≥ 99", wd.UnitsBeforeMerge)
	}
	if wd.UnitsAfterPhase1 > 40 {
		t.Fatalf("phase 1 left %d units, want aggressive containment merging", wd.UnitsAfterPhase1)
	}
	if len(wd.Groups) > 15 {
		t.Fatalf("final groups = %d, want ≈ the fact-table count", len(wd.Groups))
	}
	dr, err := wd.EstimatedDR(design.SizesOf(reduced))
	if err != nil {
		t.Fatal(err)
	}
	if dr < 0 || dr > float64(10) {
		t.Fatalf("estimated DR = %v", dr)
	}
}

// filterWorkload drops edges touching excluded tables.
func filterWorkload(w []design.Query, excluded []string) []design.Query {
	drop := map[string]bool{}
	for _, t := range excluded {
		drop[t] = true
	}
	var out []design.Query
	for _, qq := range w {
		nq := design.Query{Name: qq.Name}
		for _, tb := range qq.Tables {
			if !drop[tb] {
				nq.Tables = append(nq.Tables, tb)
			}
		}
		for _, e := range qq.Joins {
			if !drop[e.TableA] && !drop[e.TableB] {
				nq.Joins = append(nq.Joins, e)
			}
		}
		if len(nq.Tables)+len(nq.Joins) > 0 {
			out = append(out, nq)
		}
	}
	return out
}
