package tpcds

import (
	"fmt"
	"sort"
	"strings"

	"pref/internal/design"
)

// edgeCatalog names every referential join edge of the schema; query specs
// are composed from these shorthands. Composite keys use '+'.
var edgeCatalog = map[string]string{
	// store_sales
	"ss-d":  "store_sales.ss_sold_date_sk=date_dim.d_date_sk",
	"ss-t":  "store_sales.ss_sold_time_sk=time_dim.t_time_sk",
	"ss-i":  "store_sales.ss_item_sk=item.i_item_sk",
	"ss-c":  "store_sales.ss_customer_sk=customer.c_customer_sk",
	"ss-cd": "store_sales.ss_cdemo_sk=customer_demographics.cd_demo_sk",
	"ss-hd": "store_sales.ss_hdemo_sk=household_demographics.hd_demo_sk",
	"ss-ca": "store_sales.ss_addr_sk=customer_address.ca_address_sk",
	"ss-s":  "store_sales.ss_store_sk=store.s_store_sk",
	"ss-p":  "store_sales.ss_promo_sk=promotion.p_promo_sk",
	// store_returns
	"sr-d":  "store_returns.sr_returned_date_sk=date_dim.d_date_sk",
	"sr-i":  "store_returns.sr_item_sk=item.i_item_sk",
	"sr-c":  "store_returns.sr_customer_sk=customer.c_customer_sk",
	"sr-s":  "store_returns.sr_store_sk=store.s_store_sk",
	"sr-r":  "store_returns.sr_reason_sk=reason.r_reason_sk",
	"sr-ss": "store_returns.sr_item_sk+sr_ticket_number=store_sales.ss_item_sk+ss_ticket_number",
	// catalog_sales
	"cs-d":  "catalog_sales.cs_sold_date_sk=date_dim.d_date_sk",
	"cs-t":  "catalog_sales.cs_sold_time_sk=time_dim.t_time_sk",
	"cs-cd": "catalog_sales.cs_bill_cdemo_sk=customer_demographics.cd_demo_sk",
	"cs-hd": "catalog_sales.cs_bill_hdemo_sk=household_demographics.hd_demo_sk",
	"cs-i":  "catalog_sales.cs_item_sk=item.i_item_sk",
	"cs-ca": "catalog_sales.cs_bill_addr_sk=customer_address.ca_address_sk",
	"cs-c":  "catalog_sales.cs_bill_customer_sk=customer.c_customer_sk",
	"cs-cc": "catalog_sales.cs_call_center_sk=call_center.cc_call_center_sk",
	"cs-cp": "catalog_sales.cs_catalog_page_sk=catalog_page.cp_catalog_page_sk",
	"cs-sm": "catalog_sales.cs_ship_mode_sk=ship_mode.sm_ship_mode_sk",
	"cs-w":  "catalog_sales.cs_warehouse_sk=warehouse.w_warehouse_sk",
	"cs-p":  "catalog_sales.cs_promo_sk=promotion.p_promo_sk",
	// catalog_returns
	"cr-d":  "catalog_returns.cr_returned_date_sk=date_dim.d_date_sk",
	"cr-i":  "catalog_returns.cr_item_sk=item.i_item_sk",
	"cr-c":  "catalog_returns.cr_returning_customer_sk=customer.c_customer_sk",
	"cr-cc": "catalog_returns.cr_call_center_sk=call_center.cc_call_center_sk",
	"cr-r":  "catalog_returns.cr_reason_sk=reason.r_reason_sk",
	"cr-cs": "catalog_returns.cr_item_sk+cr_order_number=catalog_sales.cs_item_sk+cs_order_number",
	// web_sales
	"ws-d":     "web_sales.ws_sold_date_sk=date_dim.d_date_sk",
	"ws-t":     "web_sales.ws_sold_time_sk=time_dim.t_time_sk",
	"ws-hd":    "web_sales.ws_bill_hdemo_sk=household_demographics.hd_demo_sk",
	"ws-i":     "web_sales.ws_item_sk=item.i_item_sk",
	"ws-ca":    "web_sales.ws_bill_addr_sk=customer_address.ca_address_sk",
	"ws-c":     "web_sales.ws_bill_customer_sk=customer.c_customer_sk",
	"ws-wsite": "web_sales.ws_web_site_sk=web_site.web_site_sk",
	"ws-wp":    "web_sales.ws_web_page_sk=web_page.wp_web_page_sk",
	"ws-sm":    "web_sales.ws_ship_mode_sk=ship_mode.sm_ship_mode_sk",
	"ws-w":     "web_sales.ws_warehouse_sk=warehouse.w_warehouse_sk",
	"ws-p":     "web_sales.ws_promo_sk=promotion.p_promo_sk",
	// web_returns
	"wr-d":  "web_returns.wr_returned_date_sk=date_dim.d_date_sk",
	"wr-i":  "web_returns.wr_item_sk=item.i_item_sk",
	"wr-c":  "web_returns.wr_returning_customer_sk=customer.c_customer_sk",
	"wr-wp": "web_returns.wr_web_page_sk=web_page.wp_web_page_sk",
	"wr-r":  "web_returns.wr_reason_sk=reason.r_reason_sk",
	"wr-ws": "web_returns.wr_item_sk+wr_order_number=web_sales.ws_item_sk+ws_order_number",
	// inventory
	"inv-d": "inventory.inv_date_sk=date_dim.d_date_sk",
	"inv-i": "inventory.inv_item_sk=item.i_item_sk",
	"inv-w": "inventory.inv_warehouse_sk=warehouse.w_warehouse_sk",
	// customer snowflake
	"c-ca":  "customer.c_current_addr_sk=customer_address.ca_address_sk",
	"c-cd":  "customer.c_current_cdemo_sk=customer_demographics.cd_demo_sk",
	"c-hd":  "customer.c_current_hdemo_sk=household_demographics.hd_demo_sk",
	"hd-ib": "household_demographics.hd_income_band_sk=income_band.ib_income_band_sk",
}

// parseEdge turns "a.c1+c2=b.d1+d2" into a QueryJoin.
func parseEdge(spec string) design.QueryJoin {
	half := strings.SplitN(spec, "=", 2)
	parse := func(s string) (string, []string) {
		dot := strings.Index(s, ".")
		return s[:dot], strings.Split(s[dot+1:], "+")
	}
	ta, ca := parse(half[0])
	tb, cb := parse(half[1])
	return design.QueryJoin{TableA: ta, ColsA: ca, TableB: tb, ColsB: cb}
}

// q builds one SPJA-block spec from edge shorthands; "~table" adds a
// joinless table.
func q(name string, refs ...string) design.Query {
	out := design.Query{Name: name}
	for _, r := range refs {
		if strings.HasPrefix(r, "~") {
			out.Tables = append(out.Tables, r[1:])
			continue
		}
		spec, ok := edgeCatalog[r]
		if !ok {
			// lint:invariant
			panic(fmt.Sprintf("tpcds: unknown edge shorthand %q", r))
		}
		out.Joins = append(out.Joins, parseEdge(spec))
	}
	return out
}

// Workload returns all 99 TPC-DS queries as join-graph specs. Queries
// built from several SPJA blocks (unions, year-over-year self-comparisons,
// channel roll-ups) are emitted one spec per block — named "qN#k" — which
// is exactly the paper's "after separating SPJA subqueries" preprocessing
// (99 queries → individual connected components, Section 5.3).
func Workload() []design.Query {
	var w []design.Query
	add := func(qs ...design.Query) { w = append(w, qs...) }

	add(q("q1", "sr-d", "sr-s", "sr-c"))
	add(q("q2#1", "ws-d"), q("q2#2", "cs-d"))
	add(q("q3", "ss-d", "ss-i"))
	add(q("q4#1", "ss-d", "ss-c"), q("q4#2", "cs-d", "cs-c"), q("q4#3", "ws-d", "ws-c"))
	add(q("q5#1", "ss-d", "ss-s", "sr-d", "sr-s"),
		q("q5#2", "cs-d", "cs-cp", "cr-d"),
		q("q5#3", "ws-d", "ws-wsite", "wr-d", "wr-ws"))
	add(q("q6", "ss-d", "ss-i", "ss-c", "c-ca"))
	add(q("q7", "ss-d", "ss-i", "ss-cd", "ss-p"))
	add(q("q8", "ss-d", "ss-s", "ss-c", "c-ca"))
	add(q("q9", "~store_sales"))
	add(q("q10", "c-ca", "c-cd", "ss-c", "ss-d", "ws-c", "ws-d", "cs-c", "cs-d"))
	add(q("q11#1", "ss-d", "ss-c"), q("q11#2", "ws-d", "ws-c"))
	add(q("q12", "ws-d", "ws-i"))
	add(q("q13", "ss-d", "ss-s", "ss-cd", "ss-hd", "ss-ca"))
	add(q("q14#1", "ss-d", "ss-i"), q("q14#2", "cs-d", "cs-i"), q("q14#3", "ws-d", "ws-i"))
	add(q("q15", "cs-d", "cs-c", "c-ca"))
	add(q("q16", "cs-d", "cs-cc", "cr-cs"))
	add(q("q17", "ss-d", "ss-i", "ss-s", "sr-ss", "sr-d", "cr-d", "cr-i"))
	add(q("q18", "cs-d", "cs-i", "cs-c", "cs-cd", "c-ca"))
	add(q("q19", "ss-d", "ss-i", "ss-c", "ss-s", "c-ca"))
	add(q("q20", "cs-d", "cs-i"))
	add(q("q21", "inv-d", "inv-i", "inv-w"))
	add(q("q22", "inv-d", "inv-i", "inv-w"))
	add(q("q23#1", "ss-d", "ss-i"), q("q23#2", "ss-d", "ss-c"),
		q("q23#3", "cs-d", "cs-c"), q("q23#4", "ws-d", "ws-c"))
	add(q("q24", "ss-s", "ss-i", "ss-c", "sr-ss", "c-ca"))
	add(q("q25", "ss-d", "ss-i", "ss-s", "sr-ss", "sr-d", "cs-d", "cs-i"))
	add(q("q26", "cs-d", "cs-i", "cs-cd", "cs-p"))
	add(q("q27", "ss-d", "ss-i", "ss-s", "ss-cd"))
	add(q("q28", "~store_sales"))
	add(q("q29", "ss-d", "ss-i", "ss-s", "sr-ss", "sr-d", "cs-d", "cs-i"))
	add(q("q30", "wr-d", "wr-c", "c-ca"))
	add(q("q31#1", "ss-d", "ss-ca"), q("q31#2", "ws-d", "ws-ca"))
	add(q("q32", "cs-d", "cs-i"))
	add(q("q33#1", "ss-d", "ss-i", "ss-ca"), q("q33#2", "cs-d", "cs-i", "cs-ca"),
		q("q33#3", "ws-d", "ws-i", "ws-ca"))
	add(q("q34", "ss-d", "ss-s", "ss-hd", "ss-c"))
	add(q("q35", "c-ca", "c-cd", "ss-c", "ss-d", "ws-c", "ws-d", "cs-c", "cs-d"))
	add(q("q36", "ss-d", "ss-i", "ss-s"))
	add(q("q37", "inv-d", "inv-i", "cs-i"))
	add(q("q38#1", "ss-d", "ss-c"), q("q38#2", "cs-d", "cs-c"), q("q38#3", "ws-d", "ws-c"))
	add(q("q39", "inv-d", "inv-i", "inv-w"))
	add(q("q40", "cs-d", "cs-i", "cs-w", "cr-cs"))
	add(q("q41", "~item"))
	add(q("q42", "ss-d", "ss-i"))
	add(q("q43", "ss-d", "ss-s"))
	add(q("q44", "ss-i"))
	add(q("q45", "ws-d", "ws-i", "ws-c", "c-ca"))
	add(q("q46", "ss-d", "ss-s", "ss-hd", "ss-ca", "ss-c", "c-ca"))
	add(q("q47", "ss-d", "ss-i", "ss-s"))
	add(q("q48", "ss-d", "ss-s", "ss-cd", "ss-ca"))
	add(q("q49#1", "ws-d", "wr-ws"), q("q49#2", "cs-d", "cr-cs"), q("q49#3", "ss-d", "sr-ss"))
	add(q("q50", "ss-s", "ss-d", "sr-ss", "sr-d"))
	add(q("q51#1", "ws-d", "ws-i"), q("q51#2", "ss-d", "ss-i"))
	add(q("q52", "ss-d", "ss-i"))
	add(q("q53", "ss-d", "ss-i", "ss-s"))
	add(q("q54#1", "cs-d", "cs-i", "cs-c"), q("q54#2", "ws-d", "ws-i", "ws-c"),
		q("q54#3", "ss-d", "ss-c", "c-ca"))
	add(q("q55", "ss-d", "ss-i"))
	add(q("q56#1", "ss-d", "ss-i", "ss-ca"), q("q56#2", "cs-d", "cs-i", "cs-ca"),
		q("q56#3", "ws-d", "ws-i", "ws-ca"))
	add(q("q57", "cs-d", "cs-i", "cs-cc"))
	add(q("q58#1", "ss-d", "ss-i"), q("q58#2", "cs-d", "cs-i"), q("q58#3", "ws-d", "ws-i"))
	add(q("q59", "ss-d", "ss-s"))
	add(q("q60#1", "ss-d", "ss-i", "ss-ca"), q("q60#2", "cs-d", "cs-i", "cs-ca"),
		q("q60#3", "ws-d", "ws-i", "ws-ca"))
	add(q("q61", "ss-d", "ss-i", "ss-s", "ss-p", "ss-c", "c-ca"))
	add(q("q62", "ws-d", "ws-sm", "ws-wsite", "ws-w"))
	add(q("q63", "ss-d", "ss-i", "ss-s"))
	add(q("q64", "ss-d", "ss-i", "ss-s", "ss-c", "sr-ss", "c-ca", "c-cd", "c-hd", "hd-ib", "ss-p"))
	add(q("q65", "ss-d", "ss-s", "ss-i"))
	add(q("q66#1", "ws-d", "ws-t", "ws-sm", "ws-w"), q("q66#2", "cs-d", "cs-t", "cs-sm", "cs-w"))
	add(q("q67", "ss-d", "ss-i", "ss-s"))
	add(q("q68", "ss-d", "ss-s", "ss-hd", "ss-ca", "ss-c", "c-ca"))
	add(q("q69", "c-ca", "c-cd", "ss-c", "ss-d", "ws-c", "ws-d", "cs-c", "cs-d"))
	add(q("q70", "ss-d", "ss-s"))
	add(q("q71#1", "ws-d", "ws-i", "ws-t"), q("q71#2", "cs-d", "cs-i", "cs-t"),
		q("q71#3", "ss-d", "ss-i", "ss-t"))
	add(q("q72", "cs-d", "cs-i", "cs-cd", "cs-hd", "inv-i", "inv-d", "inv-w", "cs-p", "cr-cs"))
	add(q("q73", "ss-d", "ss-s", "ss-hd", "ss-c"))
	add(q("q74#1", "ss-d", "ss-c"), q("q74#2", "ws-d", "ws-c"))
	add(q("q75#1", "cs-d", "cs-i", "cr-cs"), q("q75#2", "ss-d", "ss-i", "sr-ss"),
		q("q75#3", "ws-d", "ws-i", "wr-ws"))
	add(q("q76#1", "ss-i", "ss-d"), q("q76#2", "ws-i", "ws-d"), q("q76#3", "cs-i", "cs-d"))
	add(q("q77#1", "ss-d", "ss-s", "sr-d", "sr-s"), q("q77#2", "cs-d", "cr-d"),
		q("q77#3", "ws-d", "ws-wp", "wr-d", "wr-wp"))
	add(q("q78#1", "ss-d", "sr-ss"), q("q78#2", "ws-d", "wr-ws"), q("q78#3", "cs-d", "cr-cs"))
	add(q("q79", "ss-d", "ss-s", "ss-hd", "ss-c"))
	add(q("q80#1", "ss-d", "ss-s", "ss-i", "ss-p", "sr-ss"),
		q("q80#2", "cs-d", "cs-cc", "cs-i", "cs-p", "cr-cs"),
		q("q80#3", "ws-d", "ws-wsite", "ws-i", "ws-p", "wr-ws"))
	add(q("q81", "cr-d", "cr-c", "c-ca"))
	add(q("q82", "inv-d", "inv-i", "ss-i"))
	add(q("q83#1", "sr-i", "sr-d"), q("q83#2", "cr-i", "cr-d"), q("q83#3", "wr-i", "wr-d"))
	add(q("q84", "c-ca", "c-cd", "c-hd", "hd-ib", "sr-c"))
	add(q("q85", "ws-d", "wr-ws", "wr-r", "wr-c", "c-cd", "c-ca"))
	add(q("q86", "ws-d", "ws-i"))
	add(q("q87#1", "ss-d", "ss-c"), q("q87#2", "cs-d", "cs-c"), q("q87#3", "ws-d", "ws-c"))
	add(q("q88", "ss-t", "ss-hd", "ss-s"))
	add(q("q89", "ss-d", "ss-i", "ss-s"))
	add(q("q90", "ws-t", "ws-wp", "ws-hd"))
	add(q("q91", "cr-d", "cr-cc", "cr-c", "c-cd", "c-hd", "c-ca"))
	add(q("q92", "ws-d", "ws-i"))
	add(q("q93", "ss-i", "sr-ss", "sr-r"))
	add(q("q94", "ws-d", "ws-ca", "ws-wsite", "wr-ws"))
	add(q("q95", "ws-d", "ws-ca", "ws-wsite", "wr-ws"))
	add(q("q96", "ss-t", "ss-hd", "ss-s"))
	add(q("q97#1", "ss-d"), q("q97#2", "cs-d"))
	add(q("q98", "ss-d", "ss-i"))
	add(q("q99", "cs-d", "cs-w", "cs-sm", "cs-cc"))

	return w
}

// NumQueries is the nominal TPC-DS query count represented by Workload.
const NumQueries = 99

// QueryNames returns the distinct base query names (q1..q99) covered.
func QueryNames() []string {
	seen := map[string]bool{}
	for _, qq := range Workload() {
		base := qq.Name
		if i := strings.Index(base, "#"); i >= 0 {
			base = base[:i]
		}
		seen[base] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		var a, b int
		fmt.Sscanf(names[i], "q%d", &a)
		fmt.Sscanf(names[j], "q%d", &b)
		return a < b
	})
	return names
}
