package tpcds

import (
	"fmt"
	"math/rand"

	"pref/internal/table"
	"pref/internal/value"
)

// TPCDS bundles a generated database with its scale factor.
type TPCDS struct {
	DB *table.Database
	SF float64
}

// zipf draws skewed keys in [1, n] — TPC-DS fact-table foreign keys are
// heavily skewed (hot items, hot customers), which is what drives the
// higher estimation error of Figure 13.
type zipf struct {
	z *rand.Zipf
	n int
}

func newZipf(rng *rand.Rand, n int) *zipf {
	if n < 2 {
		n = 2
	}
	return &zipf{z: rand.NewZipf(rng, 1.3, 1, uint64(n-1)), n: n}
}

func (z *zipf) draw() int64 { return int64(z.z.Uint64()) + 1 }

// Generate builds a deterministic, skewed TPC-DS database. SF 1 matches
// the official fact-table cardinalities scaled down by 100 (the schema
// shape, skew, and cardinality *ratios* are what the design algorithms
// consume; absolute sizes are irrelevant to DL/DR).
func Generate(sf float64, seed int64) *TPCDS {
	if sf <= 0 {
		sf = 0.01
	}
	rng := rand.New(rand.NewSource(seed))
	db := table.NewDatabase(Schema())

	n := func(base int, min int) int {
		v := int(sf * float64(base))
		if v < min {
			return min
		}
		return v
	}
	nCustomer := n(1000, 50)
	nAddress := n(500, 25)
	nCdemo := n(1900, 40)
	nHdemo := n(720, 20)
	nItem := n(180, 20)
	nDate := n(730, 100) // two years of days
	nTime := n(864, 48)
	nStore := 12
	nCC := 6
	nCatPage := n(117, 10)
	nWebSite := 30
	nWebPage := 60
	nWarehouse := 5
	nPromo := n(30, 5)
	nReason := 35
	nShipMode := 20
	nIncomeBand := 20

	nSS := n(28800, 400)
	nCS := n(14400, 200)
	nWS := n(7200, 100)
	nSR := nSS / 10
	nCR := nCS / 10
	nWR := nWS / 10
	nInv := n(11700, 200)

	add := func(tbl string, rows ...value.Tuple) {
		for _, r := range rows {
			db.Tables[tbl].MustAppend(r)
		}
	}
	dict := func(tbl, col string) *value.Dict { return db.Schema.Table(tbl).Dict(col) }

	states := []string{"CA", "NY", "TX", "WA", "GA", "IL", "OH", "MI", "TN", "SD"}
	cats := []string{"Books", "Electronics", "Home", "Jewelry", "Men", "Music", "Shoes", "Sports", "Women", "Children"}

	// ---- dimensions ----
	for i := 1; i <= nDate; i++ {
		add("date_dim", value.Tuple{int64(i), int64(1998 + (i / 365)), int64(1 + (i/30)%12), int64(1 + i%28)})
	}
	for i := 1; i <= nTime; i++ {
		add("time_dim", value.Tuple{int64(i), int64(i / 36), int64(i % 60)})
	}
	for i := 1; i <= nItem; i++ {
		add("item", value.Tuple{int64(i),
			dict("item", "i_item_id").Code(fmt.Sprintf("ITEM%06d", i)),
			dict("item", "i_brand").Code(fmt.Sprintf("Brand#%d", 1+i%20)),
			dict("item", "i_category").Code(cats[i%len(cats)]),
			value.FromMoney(0.5 + float64(i%100)),
		})
	}
	for i := 1; i <= nAddress; i++ {
		add("customer_address", value.Tuple{int64(i),
			dict("customer_address", "ca_state").Code(states[rng.Intn(len(states))]),
			dict("customer_address", "ca_city").Code(fmt.Sprintf("city-%d", i%97)),
			dict("customer_address", "ca_county").Code(fmt.Sprintf("county-%d", i%31)),
		})
	}
	genders := []string{"M", "F"}
	marital := []string{"S", "M", "D", "W", "U"}
	edu := []string{"Primary", "Secondary", "College", "2 yr Degree", "4 yr Degree", "Advanced Degree", "Unknown"}
	for i := 1; i <= nCdemo; i++ {
		add("customer_demographics", value.Tuple{int64(i),
			dict("customer_demographics", "cd_gender").Code(genders[i%2]),
			dict("customer_demographics", "cd_marital_status").Code(marital[i%5]),
			dict("customer_demographics", "cd_education_status").Code(edu[i%7]),
		})
	}
	for i := 1; i <= nIncomeBand; i++ {
		add("income_band", value.Tuple{int64(i), int64(i * 10000), int64((i + 1) * 10000)})
	}
	for i := 1; i <= nHdemo; i++ {
		add("household_demographics", value.Tuple{int64(i),
			int64(1 + i%nIncomeBand), int64(i % 10), int64(i % 5)})
	}
	for i := 1; i <= nCustomer; i++ {
		add("customer", value.Tuple{int64(i),
			dict("customer", "c_customer_id").Code(fmt.Sprintf("CUST%08d", i)),
			int64(1 + rng.Intn(nAddress)),
			int64(1 + rng.Intn(nCdemo)),
			int64(1 + rng.Intn(nHdemo)),
			int64(1930 + rng.Intn(70)),
		})
	}
	for i := 1; i <= nStore; i++ {
		add("store", value.Tuple{int64(i),
			dict("store", "s_store_name").Code(fmt.Sprintf("store-%d", i)),
			dict("store", "s_state").Code(states[i%len(states)]),
			dict("store", "s_county").Code(fmt.Sprintf("county-%d", i%31)),
		})
	}
	for i := 1; i <= nCC; i++ {
		add("call_center", value.Tuple{int64(i),
			dict("call_center", "cc_name").Code(fmt.Sprintf("cc-%d", i)),
			dict("call_center", "cc_manager").Code(fmt.Sprintf("mgr-%d", i)),
		})
	}
	for i := 1; i <= nCatPage; i++ {
		add("catalog_page", value.Tuple{int64(i),
			dict("catalog_page", "cp_department").Code(fmt.Sprintf("dept-%d", i%10))})
	}
	for i := 1; i <= nWebSite; i++ {
		add("web_site", value.Tuple{int64(i),
			dict("web_site", "web_name").Code(fmt.Sprintf("site-%d", i))})
	}
	for i := 1; i <= nWebPage; i++ {
		add("web_page", value.Tuple{int64(i),
			dict("web_page", "wp_type").Code([]string{"order", "browse", "review"}[i%3])})
	}
	for i := 1; i <= nWarehouse; i++ {
		add("warehouse", value.Tuple{int64(i),
			dict("warehouse", "w_warehouse_name").Code(fmt.Sprintf("wh-%d", i)),
			dict("warehouse", "w_state").Code(states[i%len(states)]),
		})
	}
	for i := 1; i <= nPromo; i++ {
		add("promotion", value.Tuple{int64(i),
			dict("promotion", "p_channel_email").Code([]string{"Y", "N"}[i%2]),
			dict("promotion", "p_channel_tv").Code([]string{"Y", "N"}[(i/2)%2]),
		})
	}
	for i := 1; i <= nReason; i++ {
		add("reason", value.Tuple{int64(i),
			dict("reason", "r_reason_desc").Code(fmt.Sprintf("reason-%d", i))})
	}
	for i := 1; i <= nShipMode; i++ {
		add("ship_mode", value.Tuple{int64(i),
			dict("ship_mode", "sm_type").Code([]string{"EXPRESS", "OVERNIGHT", "REGULAR", "TWO DAY", "LIBRARY"}[i%5])})
	}

	// ---- facts (skewed) ----
	itemZ := newZipf(rng, nItem)
	custZ := newZipf(rng, nCustomer)
	dateZ := newZipf(rng, nDate)

	type sale struct{ item, order int64 }
	var ssSales, csSales, wsSales []sale

	for i := 1; i <= nSS; i++ {
		it, cu, dt := itemZ.draw(), custZ.draw(), dateZ.draw()
		add("store_sales", value.Tuple{
			dt, int64(1 + rng.Intn(nTime)), it, cu,
			int64(1 + rng.Intn(nCdemo)), int64(1 + rng.Intn(nHdemo)), int64(1 + rng.Intn(nAddress)),
			int64(1 + rng.Intn(nStore)), int64(1 + rng.Intn(nPromo)), int64(i),
			int64(1 + rng.Intn(100)), value.FromMoney(rng.Float64() * 200),
		})
		ssSales = append(ssSales, sale{it, int64(i)})
	}
	for i := 1; i <= nCS; i++ {
		it, cu, dt := itemZ.draw(), custZ.draw(), dateZ.draw()
		add("catalog_sales", value.Tuple{
			dt, int64(1 + rng.Intn(nTime)), it, cu,
			int64(1 + rng.Intn(nCdemo)), int64(1 + rng.Intn(nHdemo)), int64(1 + rng.Intn(nAddress)),
			int64(1 + rng.Intn(nCC)), int64(1 + rng.Intn(nCatPage)),
			int64(1 + rng.Intn(nShipMode)), int64(1 + rng.Intn(nWarehouse)),
			int64(1 + rng.Intn(nPromo)), int64(i),
			int64(1 + rng.Intn(100)), value.FromMoney(rng.Float64() * 300),
		})
		csSales = append(csSales, sale{it, int64(i)})
	}
	for i := 1; i <= nWS; i++ {
		it, cu, dt := itemZ.draw(), custZ.draw(), dateZ.draw()
		add("web_sales", value.Tuple{
			dt, int64(1 + rng.Intn(nTime)), it, cu,
			int64(1 + rng.Intn(nHdemo)), int64(1 + rng.Intn(nAddress)),
			int64(1 + rng.Intn(nWebSite)), int64(1 + rng.Intn(nWebPage)),
			int64(1 + rng.Intn(nShipMode)), int64(1 + rng.Intn(nWarehouse)),
			int64(1 + rng.Intn(nPromo)), int64(i),
			int64(1 + rng.Intn(100)), value.FromMoney(rng.Float64() * 250),
		})
		wsSales = append(wsSales, sale{it, int64(i)})
	}
	// Returns reference an existing sale (the composite fk).
	for i := 0; i < nSR; i++ {
		s := ssSales[rng.Intn(len(ssSales))]
		add("store_returns", value.Tuple{
			dateZ.draw(), s.item, custZ.draw(), int64(1 + rng.Intn(nStore)),
			int64(1 + rng.Intn(nReason)), s.order,
			int64(1 + rng.Intn(20)), value.FromMoney(rng.Float64() * 100),
		})
	}
	for i := 0; i < nCR; i++ {
		s := csSales[rng.Intn(len(csSales))]
		add("catalog_returns", value.Tuple{
			dateZ.draw(), s.item, custZ.draw(), int64(1 + rng.Intn(nCC)),
			int64(1 + rng.Intn(nReason)), s.order,
			int64(1 + rng.Intn(20)), value.FromMoney(rng.Float64() * 100),
		})
	}
	for i := 0; i < nWR; i++ {
		s := wsSales[rng.Intn(len(wsSales))]
		add("web_returns", value.Tuple{
			dateZ.draw(), s.item, custZ.draw(), int64(1 + rng.Intn(nWebPage)),
			int64(1 + rng.Intn(nReason)), s.order,
			int64(1 + rng.Intn(20)), value.FromMoney(rng.Float64() * 100),
		})
	}
	seen := map[[3]int64]bool{}
	for i := 0; i < nInv; i++ {
		k := [3]int64{int64(1 + rng.Intn(nDate)), itemZ.draw(), int64(1 + rng.Intn(nWarehouse))}
		if seen[k] {
			continue
		}
		seen[k] = true
		add("inventory", value.Tuple{k[0], k[1], k[2], int64(rng.Intn(1000))})
	}
	return &TPCDS{DB: db, SF: sf}
}
