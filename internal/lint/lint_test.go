package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wantsOf parses `// want "substr"` annotations out of fixture source:
// every annotated line must produce a diagnostic containing substr, and no
// unannotated line may produce anything.
func wantsOf(t *testing.T, src string) map[int]string {
	t.Helper()
	wants := map[int]string{}
	sc := bufio.NewScanner(strings.NewReader(src))
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		i := strings.Index(text, `// want "`)
		if i < 0 {
			continue
		}
		rest := text[i+len(`// want "`):]
		j := strings.Index(rest, `"`)
		if j < 0 {
			t.Fatalf("line %d: malformed want comment", line)
		}
		wants[line] = rest[:j]
	}
	return wants
}

// checkWants compares diagnostics against want annotations keyed by line.
func checkWants(t *testing.T, label string, wants map[int]string, diags []Diagnostic) {
	t.Helper()
	got := map[int][]string{}
	for _, d := range diags {
		got[d.Pos.Line] = append(got[d.Pos.Line], d.Message)
	}
	for line, substr := range wants {
		msgs, ok := got[line]
		if !ok {
			t.Errorf("%s:%d: want diagnostic containing %q, got none", label, line, substr)
			continue
		}
		found := false
		for _, m := range msgs {
			if strings.Contains(m, substr) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s:%d: want diagnostic containing %q, got %q", label, line, substr, msgs)
		}
	}
	for line, msgs := range got {
		if _, ok := wants[line]; !ok {
			t.Errorf("%s:%d: unexpected diagnostic %q", label, line, msgs)
		}
	}
}

// runWant analyzes an in-memory fixture against its own want annotations.
// The fixture must be self-contained: it fully type-checks with at most
// standard-library imports.
func runWant(t *testing.T, filename, src string, analyzers []*Analyzer) {
	t.Helper()
	diags, err := RunSource(filename, src, analyzers)
	if err != nil {
		t.Fatalf("%s: %v", filename, err)
	}
	checkWants(t, filename, wantsOf(t, src), diags)
}

// runWantDir analyzes an on-disk fixture package under testdata/src with a
// single analyzer, against the want annotations in its files.
func runWantDir(t *testing.T, a *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", a.Name)
	diags, err := RunDir(dir, []*Analyzer{a})
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var own []Diagnostic
		for _, d := range diags {
			if filepath.Base(d.Pos.Filename) == e.Name() {
				own = append(own, d)
			}
		}
		checkWants(t, e.Name(), wantsOf(t, string(src)), own)
	}
}

func TestPartOwnershipFixtures(t *testing.T)    { runWantDir(t, PartOwnership) }
func TestAtomicDisciplineFixtures(t *testing.T) { runWantDir(t, AtomicDiscipline) }
func TestGoroutineScopeFixtures(t *testing.T)   { runWantDir(t, GoroutineScope) }
func TestShipAccountingFixtures(t *testing.T)   { runWantDir(t, ShipAccounting) }
func TestBatchOwnershipFixtures(t *testing.T)   { runWantDir(t, BatchOwnership) }

func TestInvariantPanicFixtures(t *testing.T) {
	const src = `package engine

type schema struct{}

func (schema) MustIndex(c string) int { return 0 }

func MustLoad(s string) {}
func mustard()          {}
func Mustard()          {}

func ok() {
	// lint:invariant idx was bounds-checked by the caller
	panic("unreachable")
}

func okSameLine() {
	panic("unreachable") // lint:invariant checked above
}

func bad() {
	panic("boom") // want "panic without"
}

func mustCalls(s schema) {
	_ = s.MustIndex("c") // want "Must-style call MustIndex in execution-path package engine"
	// lint:invariant column existence proven by the binder
	_ = s.MustIndex("c")
	MustLoad("x") // want "Must-style call MustLoad"
	mustard()     // lowercase, not the convention
	Mustard()     // "Mustard" is not Must+UpperCamel
}
`
	runWant(t, "invariantpanic_fixture.go", src, []*Analyzer{InvariantPanic})
}

func TestInvariantPanicUnrestrictedPkg(t *testing.T) {
	// Outside the execution-path packages Must* is fine, but naked panics
	// still need the marker.
	const src = `package tpch

type schema struct{}

func (schema) MustIndex(c string) int { return 0 }

func f(s schema) {
	_ = s.MustIndex("c")
	panic("no") // want "panic without"
}
`
	runWant(t, "invariantpanic_tpch.go", src, []*Analyzer{InvariantPanic})
}

func TestCtxThreadFixtures(t *testing.T) {
	const src = `package engine

import "context"

type Engine struct{}

type key string

func Execute() {
	ctx := context.Background() // exported top-level wrapper: allowed
	_ = ctx
}

func Run() {
	go func() {
		ctx := context.Background() // want "detaches per-partition work"
		_ = ctx
	}()
}

func helper() {
	ctx := context.TODO() // want "context.TODO in helper"
	_ = ctx
}

func (e *Engine) Exec() {
	ctx := context.Background() // want "context.Background in Exec"
	_ = ctx
}

func WithValue(ctx context.Context) {
	ctx = context.WithValue(ctx, key("k"), 1) // deriving from ctx is fine
	_ = ctx
}
`
	runWant(t, "ctxthread_fixture.go", src, []*Analyzer{CtxThread})
}

func TestCtxThreadRenamedImport(t *testing.T) {
	// The import table, not the identifier spelling, decides what is the
	// context package.
	const src = `package engine

import stdctx "context"

func helper() {
	ctx := stdctx.Background() // want "context.Background in helper"
	_ = ctx
}
`
	runWant(t, "ctxthread_renamed.go", src, []*Analyzer{CtxThread})
}

func TestCtxThreadIgnoresOtherPackages(t *testing.T) {
	const src = `package plan

import "context"

func helper() {
	_ = context.Background()
}
`
	diags, err := RunSource("ctxthread_plan.go", src, []*Analyzer{CtxThread})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("ctxthread should only run in engine/fault, got %v", diags)
	}
}

func TestPropAliasFixtures(t *testing.T) {
	const src = `package plan

type Prop struct {
	HashCols []string
	DupCols  []string
}

func cloneCols(c []string) []string {
	if c == nil {
		return nil
	}
	return append([]string(nil), c...)
}

func transfer(np, cp *Prop, cols []string) {
	np.HashCols = cp.HashCols // want "HashCols assigned from an existing slice"
	np.DupCols = cols         // want "DupCols assigned from an existing slice"
	np.HashCols = cloneCols(cp.HashCols)
	np.DupCols = append([]string(nil), cols...)
	np.HashCols = nil
	np.DupCols = []string{"a", "b"}
	// lint:alias-ok both props die at the end of this scope
	np.HashCols = cp.HashCols
	np.DupCols = cols[1:] // want "DupCols assigned from an existing slice"
}

func literals(cp *Prop, cols []string) *Prop {
	bad := &Prop{HashCols: cols} // want "HashCols initialized from an existing slice"
	good := &Prop{HashCols: cloneCols(cols), DupCols: nil}
	also := &Prop{DupCols: []string{"d"}}
	_ = good
	_ = also
	return bad
}
`
	runWant(t, "propalias_fixture.go", src, []*Analyzer{PropAlias})
}

func TestPropAliasThroughCallsAndEmbedding(t *testing.T) {
	// The type-aware upgrade: calls that launder an alias through a
	// passthrough return are caught (to a fixpoint), and assignment to a
	// field promoted through struct embedding still resolves to the Prop
	// field object.
	const src = `package plan

type Prop struct {
	HashCols []string
	DupCols  []string
}

type annotated struct {
	Prop
	note string
}

func passthrough(cols []string) []string { return cols }

func laundered(cols []string) []string { return passthrough(cols) }

func subsliced(cols []string) []string { return cols[1:] }

func fresh(cols []string) []string { return append([]string(nil), cols...) }

func ownField(p *Prop) []string { return p.HashCols }

func calls(np *Prop, cols []string) {
	np.HashCols = passthrough(cols) // want "a call to passthrough, which returns an existing slice unchanged"
	np.HashCols = laundered(cols)   // want "a call to laundered, which returns an existing slice unchanged"
	np.DupCols = subsliced(cols)    // want "a call to subsliced, which returns an existing slice unchanged"
	np.DupCols = ownField(np)       // want "a call to ownField, which returns an existing slice unchanged"
	np.HashCols = fresh(cols)
	np.DupCols = []string(cols) // want "a slice conversion of an existing slice"
}

func promoted(a *annotated, cols []string) {
	a.HashCols = cols // want "HashCols assigned from an existing slice"
	a.DupCols = fresh(cols)
}
`
	runWant(t, "propalias_typed.go", src, []*Analyzer{PropAlias})
}

func TestIgnoreDirectives(t *testing.T) {
	// A well-formed ignore suppresses exactly its analyzer; a malformed one
	// (missing the reason) is itself reported and suppresses nothing.
	const src = `package engine

func suppressed() {
	//lint:ignore invariantpanic fixture demonstrates suppression
	panic("boom")
}

func wrongAnalyzer() {
	//lint:ignore ctxthread suppressing the wrong analyzer does nothing
	panic("boom")
}

func malformed() {
	//lint:ignore invariantpanic
	panic("boom")
}
`
	diags, err := RunSource("ignore_fixture.go", src, []*Analyzer{InvariantPanic})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Analyzer+": "+d.Message)
	}
	joined := strings.Join(msgs, "\n")
	if len(diags) != 3 {
		t.Fatalf("want 3 diagnostics (2 panics + 1 malformed directive), got %d:\n%s", len(diags), joined)
	}
	if !strings.Contains(joined, "directive: malformed lint:ignore") {
		t.Errorf("missing malformed-directive diagnostic:\n%s", joined)
	}
	if got := strings.Count(joined, "panic without"); got != 2 {
		t.Errorf("want the wrongAnalyzer and malformed panics reported, got %d panic diagnostics:\n%s", got, joined)
	}
}

func TestRegressionTraceMixedAtomicPlain(t *testing.T) {
	// Regression fixture for the real finding this analyzer surfaced in
	// internal/trace: live per-node cells were []Metrics, written with
	// atomic adds by the mutators but read and summed with plain accesses
	// by merge and the renderer. The fix split the live cell type from the
	// Metrics snapshot; this fixture preserves the pre-split shape so the
	// analyzer keeps rejecting it.
	const src = `package trace

import "sync/atomic"

type metrics struct {
	rowsIn int64
}

type op struct {
	cells []metrics
}

func (o *op) addIn(node, rows int) {
	atomic.AddInt64(&o.cells[node].rowsIn, int64(rows))
}

func (m *metrics) merge(other *metrics) {
	m.rowsIn += other.rowsIn // want "plain access to field rowsIn"
}
`
	runWant(t, "regression_trace_mixed.go", src, []*Analyzer{AtomicDiscipline})
}

func TestRegressionUnmarkedShipMeter(t *testing.T) {
	// Regression fixture for the real shipaccounting findings: shipBatch
	// and recoverScan charged both ship meters without carrying the
	// // lint:ship-boundary declaration.
	const src = `package engine

type stats struct {
	RowsShipped int64
}

type op struct{}

func (*op) AddShip(src, rows, width int) {}

type executor struct {
	stats stats
	top   *op
}

func (ex *executor) ship(rows, width int) {
	ex.stats.RowsShipped += int64(rows)
}

func (ex *executor) shipBatch(rows, width int) { // want "shipBatch moves rows across partitions but is not declared"
	ex.ship(rows, width)
	ex.top.AddShip(0, rows, width)
}
`
	runWant(t, "regression_ship_unmarked.go", src, []*Analyzer{ShipAccounting})
}

func TestRunDirOnRealPackage(t *testing.T) {
	// The lint package itself must lint clean under the full suite.
	diags, err := RunDir(".", Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("internal/lint should be clean, got:\n%v", diags)
	}
}

func TestModuleIsLintClean(t *testing.T) {
	// The strict CI gate in test form: every package of the module is clean
	// under the full suite, with no baseline. New violations fail here
	// before they fail in CI.
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	dirs, err := PackageDirs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("module walk found only %d package dirs; wrong root?", len(dirs))
	}
	for _, dir := range dirs {
		diags, err := RunDir(dir, Analyzers())
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
