package lint

import (
	"bufio"
	"strings"
	"testing"
)

// runWant analyzes src and checks it against the fixture's own // want
// annotations: every line carrying `// want "substr"` must produce a
// diagnostic containing substr, and no other line may produce anything.
func runWant(t *testing.T, filename, src string, analyzers []*Analyzer) {
	t.Helper()
	wants := map[int]string{} // line -> required substring
	sc := bufio.NewScanner(strings.NewReader(src))
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		i := strings.Index(text, `// want "`)
		if i < 0 {
			continue
		}
		rest := text[i+len(`// want "`):]
		j := strings.Index(rest, `"`)
		if j < 0 {
			t.Fatalf("%s:%d: malformed want comment", filename, line)
		}
		wants[line] = rest[:j]
	}

	diags, err := RunSource(filename, src, analyzers)
	if err != nil {
		t.Fatalf("%s: %v", filename, err)
	}
	got := map[int][]string{}
	for _, d := range diags {
		got[d.Pos.Line] = append(got[d.Pos.Line], d.Message)
	}
	for line, substr := range wants {
		msgs, ok := got[line]
		if !ok {
			t.Errorf("%s:%d: want diagnostic containing %q, got none", filename, line, substr)
			continue
		}
		found := false
		for _, m := range msgs {
			if strings.Contains(m, substr) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s:%d: want diagnostic containing %q, got %q", filename, line, substr, msgs)
		}
	}
	for line, msgs := range got {
		if _, ok := wants[line]; !ok {
			t.Errorf("%s:%d: unexpected diagnostic %q", filename, line, msgs)
		}
	}
}

func TestInvariantPanicFixtures(t *testing.T) {
	const src = `package engine

func ok() {
	// lint:invariant idx was bounds-checked by the caller
	panic("unreachable")
}

func okSameLine() {
	panic("unreachable") // lint:invariant checked above
}

func bad() {
	panic("boom") // want "panic without"
}

func mustCalls(s schema) {
	_ = s.MustIndex("c") // want "Must-style call MustIndex in execution-path package engine"
	// lint:invariant column existence proven by the binder
	_ = s.MustIndex("c")
	MustLoad("x") // want "Must-style call MustLoad"
	mustard()     // lowercase, not the convention
	Mustard()     // "Mustard" is not Must+UpperCamel
}
`
	runWant(t, "invariantpanic_fixture.go", src, []*Analyzer{InvariantPanic})
}

func TestInvariantPanicUnrestrictedPkg(t *testing.T) {
	// Outside the execution-path packages Must* is fine, but naked panics
	// still need the marker.
	const src = `package tpch

func f(s schema) {
	_ = s.MustIndex("c")
	panic("no") // want "panic without"
}
`
	runWant(t, "invariantpanic_tpch.go", src, []*Analyzer{InvariantPanic})
}

func TestCtxThreadFixtures(t *testing.T) {
	const src = `package engine

import "context"

func Execute() {
	ctx := context.Background() // exported top-level wrapper: allowed
	_ = ctx
}

func Run() {
	go func() {
		ctx := context.Background() // want "detaches per-partition work"
		_ = ctx
	}()
}

func helper() {
	ctx := context.TODO() // want "context.TODO in helper"
	_ = ctx
}

func (e *Engine) Exec() {
	ctx := context.Background() // want "context.Background in Exec"
	_ = ctx
}

func WithValue(ctx context.Context) {
	ctx = context.WithValue(ctx, key, 1) // deriving from ctx is fine
	_ = ctx
}
`
	runWant(t, "ctxthread_fixture.go", src, []*Analyzer{CtxThread})
}

func TestCtxThreadIgnoresOtherPackages(t *testing.T) {
	const src = `package plan

import "context"

func helper() {
	_ = context.Background()
}
`
	diags, err := RunSource("ctxthread_plan.go", src, []*Analyzer{CtxThread})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("ctxthread should only run in engine/fault, got %v", diags)
	}
}

func TestPropAliasFixtures(t *testing.T) {
	const src = `package plan

func transfer(np, cp *Prop, cols []string) {
	np.HashCols = cp.HashCols // want "HashCols assigned from an existing slice"
	np.DupCols = cols         // want "DupCols assigned from an existing slice"
	np.HashCols = cloneCols(cp.HashCols)
	np.DupCols = append([]string(nil), cols...)
	np.HashCols = nil
	np.DupCols = []string{"a", "b"}
	// lint:alias-ok both props die at the end of this scope
	np.HashCols = cp.HashCols
	np.DupCols = cols[1:] // want "DupCols assigned from an existing slice"
}

func literals(cp *Prop, cols []string) *Prop {
	bad := &Prop{HashCols: cols} // want "HashCols initialized from an existing slice"
	good := &Prop{HashCols: cloneCols(cols), DupCols: nil}
	also := &Prop{DupCols: []string{"d"}}
	_ = good
	_ = also
	return bad
}
`
	runWant(t, "propalias_fixture.go", src, []*Analyzer{PropAlias})
}

func TestRunDirOnRealPackage(t *testing.T) {
	// The lint package itself must lint clean under the full suite.
	diags, err := RunDir(".", Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("internal/lint should be clean, got:\n%v", diags)
	}
}
