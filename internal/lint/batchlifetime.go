package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"pref/internal/lint/cfg"
)

// BatchLifetime is the interprocedural ownership/borrow typestate analyzer
// over pooled batch.Batch values. Every function gets an ownership contract
// (batchsummary.go: intrinsic, marker, or bottom-up computed over the call
// graph), and each function body is then checked flow-sensitively against
// the contracts of its callees: a pooled batch moves acquired → in-flight →
// released, and the analyzer reports paths that use it after release,
// release it twice, leak it at return or falloff, let it escape into
// long-lived state, or write through a zero-copy view of its storage.
var BatchLifetime = &Analyzer{
	Name: "batchlifetime",
	Doc: "batch ownership typestate: pooled batches must be released exactly once\n" +
		"on every path, never used after release, never escape into long-lived\n" +
		"state while owned, and never be written through zero-copy views;\n" +
		"ownership transfers follow interprocedural summaries (lint:batch-owner\n" +
		"and lint:batch-borrow declare contracts the body is checked against)",
	Run: runBatchLifetime,
}

// Typestate bits per tracked variable. A variable may carry several on a
// merged path; checks that would misfire on a may-state (use-after-release,
// double release) require stReleased with no live bit (stOwned, stView)
// alongside it — released on every path, not merely some.
const (
	stOwned    uint8 = 1 << iota // holds a pooled batch this function must release
	stView                       // borrows storage owned elsewhere
	stReleased                   // released; the value is dead
	// stDischarged: the release obligation was (possibly) handed off from
	// this point on — a consuming callee took an expression rooted here, a
	// deferred release was registered, or a closure that can release it was
	// created. Unlike stReleased the value stays usable; the bit only
	// suppresses the leak check, and because it flows forward an error
	// return *before* the handoff still reports the leak.
	stDischarged
)

type stateMap map[*types.Var]uint8

func cloneState(s stateMap) stateMap {
	out := make(stateMap, len(s))
	for v, st := range s {
		out[v] = st
	}
	return out
}

// mergeState unions o into s, reporting whether s changed.
func mergeState(s, o stateMap) bool {
	changed := false
	for v, st := range o {
		if s[v]|st != s[v] {
			s[v] |= st
			changed = true
		}
	}
	return changed
}

func runBatchLifetime(p *Pass) error {
	// The batch package is the trusted base layer (its intrinsics define the
	// contracts); everything that never imports it cannot hold a batch.
	if strings.HasSuffix(p.Pkg.Path(), batchPkgSuffix) || !importsBatchPkg(p) {
		return nil
	}
	sums := newBatchSummaries(p)
	eachFuncDecl(p, func(fn *ast.FuncDecl) {
		checkBatchLifetime(p, sums, fn, fn)
		// Function literals are separate scopes: their captures are borrowed
		// views from the enclosing function's perspective.
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkBatchLifetime(p, sums, lit, nil)
			}
			return true
		})
	})
	return nil
}

// lifetimeChecker runs the typestate dataflow over one function body.
type lifetimeChecker struct {
	p    *Pass
	sc   *batchScope
	g    *cfg.Graph
	fn   ast.Node      // *ast.FuncDecl or *ast.FuncLit
	decl *ast.FuncDecl // nil for literals
	// ownerMarked: the declaration carries lint:batch-owner — storing an
	// owned batch into long-lived state is then the declared ownership
	// transfer, not an escape.
	ownerMarked bool

	// useDefs records, per identifier use, the reaching definitions —
	// the paired-error suppression reads them at return sites.
	useDefs map[*ast.Ident][]*cfg.Def
	// skip marks identifiers already handled structurally (definition
	// sites, consumed arguments) so the generic use check passes them by.
	skip map[*ast.Ident]bool
}

func checkBatchLifetime(p *Pass, sums *batchSummaries, fn ast.Node, decl *ast.FuncDecl) {
	sc := newBatchScope(p, sums.summaryFor)
	sc.collect(fn, true)

	// Parameters (receiver included) are tracked even when never mentioned:
	// an owner-marked function leaks a batch it ignores.
	var params []*types.Var
	addParams := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := p.TypesInfo.Defs[name].(*types.Var); ok && isTrackedBatch(v.Type()) {
					params = append(params, v)
				}
			}
		}
	}
	switch d := fn.(type) {
	case *ast.FuncDecl:
		addParams(d.Recv)
		addParams(d.Type.Params)
	case *ast.FuncLit:
		addParams(d.Type.Params)
	}
	if len(sc.tracked) == 0 && len(sc.derived) == 0 && len(params) == 0 {
		return
	}

	g := cfg.New("", fn)
	r := g.ReachingDefs(p.TypesInfo, decl)
	c := &lifetimeChecker{
		p: p, sc: sc, g: g, fn: fn, decl: decl,
		ownerMarked: decl != nil && hasFuncMarker(decl, batchOwnerMarker),
		useDefs:     map[*ast.Ident][]*cfg.Def{},
		skip:        map[*ast.Ident]bool{},
	}
	r.ForEachUse(func(id *ast.Ident, v *types.Var, defs []*cfg.Def) {
		c.useDefs[id] = defs
	})

	// Entry state: everything starts as a borrowed view; owner-marked
	// declarations own their tracked parameters and must dispose of them.
	seed := stateMap{}
	for v := range sc.tracked {
		seed[v] = stView
	}
	for _, v := range params {
		if c.ownerMarked {
			seed[v] = stOwned
		} else {
			seed[v] = stView
		}
	}

	// Forward fixpoint over the reachable blocks, then a reporting replay
	// against the stable block-entry states.
	blocks := g.Reachable()
	in := map[*cfg.Block]stateMap{g.Entry: seed}
	for _, b := range blocks {
		if in[b] == nil {
			in[b] = stateMap{}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range blocks {
			cur := cloneState(in[b])
			c.walkBlock(b, cur, false)
			for _, s := range b.Succs {
				if in[s] != nil && mergeState(in[s], cur) {
					changed = true
				}
			}
		}
	}
	for _, b := range blocks {
		c.walkBlock(b, cloneState(in[b]), true)
	}
}

func funcBody(fn ast.Node) *ast.BlockStmt {
	switch d := fn.(type) {
	case *ast.FuncDecl:
		return d.Body
	case *ast.FuncLit:
		return d.Body
	}
	return nil
}

// walkBlock replays one block's nodes against cur, mutating it; in report
// mode it emits diagnostics (the states are final then).
func (c *lifetimeChecker) walkBlock(b *cfg.Block, cur stateMap, report bool) {
	for _, n := range b.Nodes {
		c.visit(n, cur, report)
		if ret, ok := n.(*ast.ReturnStmt); ok && report {
			c.leakCheck(ret, c.returnedRoots(ret), cur, "at return")
		}
	}
	if report && c.fallsOff(b) {
		at := c.fn
		if len(b.Nodes) > 0 {
			at = b.Nodes[len(b.Nodes)-1]
		}
		c.leakCheck(at, varset{}, cur, "at function exit")
	}
}

// visit dispatches the events of one block node in pre-order, mirroring
// the replay order of Reach.ForEachUse.
func (c *lifetimeChecker) visit(n ast.Node, cur stateMap, report bool) {
	cfg.VisitExprs(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.DeferStmt:
			// The deferred call runs at exit: it discharges obligations but
			// does not kill the value for the code that follows.
			c.handleCall(m.Call, cur, report, true)
			return false
		case *ast.GoStmt:
			c.handleGo(m, cur, report)
			return false
		case *ast.CallExpr:
			c.handleCall(m, cur, report, false)
			return true
		case *ast.AssignStmt:
			c.handleAssign(m, cur, report)
			return true
		case *ast.ValueSpec:
			c.handleValueSpec(m, cur)
			return true
		case *ast.RangeStmt:
			c.handleRange(m, cur)
			return true
		case *ast.IncDecStmt:
			if report {
				c.checkAliasWrite(m.X, m)
			}
			return true
		case *ast.SendStmt:
			c.handleSend(m, cur, report)
			return true
		case *ast.FuncLit:
			// A closure holding a batch may be the one that releases it;
			// from its creation point on the obligation may be handed off.
			// The literal's own body is checked separately.
			c.discharge(cur, c.sc.capturedTracked(m))
			return true
		case *ast.Ident:
			c.checkUse(m, cur, report)
		}
		return true
	})
}

// discharge marks every root (and everything it may contain) as
// possibly-handed-off from this point forward.
func (c *lifetimeChecker) discharge(cur stateMap, roots varset) {
	for v := range c.sc.closure(roots) {
		cur[v] |= stDischarged
	}
}

// handleCall applies a call's summary effects to the current state.
func (c *lifetimeChecker) handleCall(call *ast.CallExpr, cur stateMap, report, isDefer bool) {
	if isBuiltinAppend(c.p, call) && report && len(call.Args) > 0 {
		c.checkAliasWrite(call.Args[0], call)
	}
	// A call taking both a tracked value and a function literal (the
	// forEachPart shape) may release the value inside the callback even
	// when its own summary says borrow — discharge the companions.
	hasLitArg := false
	for _, a := range call.Args {
		if _, ok := ast.Unparen(a).(*ast.FuncLit); ok {
			hasLitArg = true
		}
	}
	if hasLitArg {
		for _, a := range call.Args {
			if _, ok := ast.Unparen(a).(*ast.FuncLit); !ok {
				c.discharge(cur, c.sc.rootVars(a))
			}
		}
	}
	sum := c.sc.lookup(cfg.StaticCallee(c.p.TypesInfo, call))
	if sum == nil {
		return
	}
	for _, slot := range c.sc.callArgSlots(call) {
		eff := sum.Param(slot.idx)
		if eff.Has(cfg.EffConsume) {
			c.consumeArg(slot.expr, call, cur, report, isDefer)
		}
		if eff.Has(cfg.EffEscape) {
			c.escapeRoots(c.sc.rootVars(slot.expr), call, cur, report,
				"passed to a callee that stores it beyond the call")
		}
	}
}

// consumeArg transfers ownership of one consumed argument to the callee.
// A plain identifier dies (flow-sensitively); a compound expression
// (bs[i], w.Finish()) discharges its roots without killing a variable. A
// deferred consume only discharges: the value stays live until exit.
func (c *lifetimeChecker) consumeArg(arg ast.Expr, at ast.Node, cur stateMap, report, isDefer bool) {
	if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
		if v := c.sc.trackedVar(id); v != nil {
			c.skip[id] = true
			if isDefer {
				c.discharge(cur, varset{v: true})
				return
			}
			if report && cur[v]&stReleased != 0 && cur[v]&(stOwned|stView) == 0 {
				c.p.Report(at, "batch %s is already released on every path to this call (double release)", v.Name())
			}
			// Everything absorbed into v goes down with it; v itself is
			// dead, not merely discharged.
			for o := range c.sc.closure(varset{v: true}) {
				if o != v {
					cur[o] |= stDischarged
				}
			}
			cur[v] = stReleased
			return
		}
	}
	c.discharge(cur, c.sc.rootVars(arg))
}

// escapeRoots reports owned batches flowing into state that outlives the
// function, then discharges them (the escape is the handoff; one report
// per site is enough). Escapes of borrowed views are the owner's concern
// elsewhere, and owner-marked functions escape by declared design.
func (c *lifetimeChecker) escapeRoots(roots varset, at ast.Node, cur stateMap, report bool, how string) {
	if report && !c.ownerMarked {
		for _, v := range sortedVars(roots) {
			if cur[v]&stOwned != 0 && cur[v]&(stReleased|stDischarged) == 0 {
				c.p.Report(at, "owned batch %s escapes into long-lived state (%s); release it first or transfer ownership via lint:batch-owner", v.Name(), how)
			}
		}
	}
	c.discharge(cur, roots)
}

func (c *lifetimeChecker) handleGo(g *ast.GoStmt, cur stateMap, report bool) {
	roots := varset{}
	for _, a := range g.Call.Args {
		roots.addAll(c.sc.rootVars(a))
	}
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		roots.addAll(c.sc.capturedTracked(lit))
	}
	c.escapeRoots(roots, g, cur, report, "handed to a goroutine that may outlive this frame")
}

func (c *lifetimeChecker) handleSend(s *ast.SendStmt, cur stateMap, report bool) {
	c.escapeRoots(c.sc.rootVars(s.Value), s, cur, report, "sent on a channel")
}

func (c *lifetimeChecker) handleAssign(as *ast.AssignStmt, cur stateMap, report bool) {
	for i, lhs := range as.Lhs {
		rhs, pos := as.Rhs[0], i
		if len(as.Lhs) == len(as.Rhs) {
			rhs, pos = as.Rhs[i], 0
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if v := c.sc.trackedVar(l); v != nil {
				c.skip[l] = true
				if c.sc.isFreshCall(rhs, pos) {
					cur[v] = stOwned
				} else {
					cur[v] = stView
				}
			}
		case *ast.IndexExpr:
			if report {
				c.checkAliasWrite(l, as)
			}
		case *ast.SelectorExpr:
			if fieldObj(c.p, l) != nil {
				c.escapeRoots(c.sc.rootVars(rhs), as, cur, report, "stored into a struct field")
			}
		}
	}
}

func (c *lifetimeChecker) handleValueSpec(vs *ast.ValueSpec, cur stateMap) {
	for i, name := range vs.Names {
		v := c.sc.trackedVar(name)
		if v == nil {
			continue
		}
		c.skip[name] = true
		if i < len(vs.Values) && c.sc.isFreshCall(vs.Values[i], 0) {
			cur[v] = stOwned
		} else {
			cur[v] = stView
		}
	}
}

func (c *lifetimeChecker) handleRange(r *ast.RangeStmt, cur stateMap) {
	for _, e := range []ast.Expr{r.Key, r.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if v := c.sc.trackedVar(id); v != nil {
			c.skip[id] = true
			cur[v] = stView
		}
	}
}

// checkAliasWrite reports a mutation reaching batch storage through a
// derived plain-slice view (cols := b.Cols; cols[0][i] = x). Writes whose
// left side names a batch directly are batchownership's beat; this rule
// covers the laundering through an intermediate variable.
func (c *lifetimeChecker) checkAliasWrite(target ast.Expr, at ast.Node) {
	if v := c.sc.rootDerived(ast.Unparen(target)); v != nil {
		c.p.Report(at, "write through %s mutates pooled batch storage via a zero-copy view; copy the column or write into a fresh batch", v.Name())
	}
}

// checkUse reports a read of a variable that is released on every path.
func (c *lifetimeChecker) checkUse(id *ast.Ident, cur stateMap, report bool) {
	if !report || c.skip[id] {
		return
	}
	v := c.sc.trackedVar(id)
	if v == nil {
		return
	}
	if cur[v]&stReleased != 0 && cur[v]&(stOwned|stView) == 0 {
		c.p.Report(id, "use of batch %s after it was released", v.Name())
	}
}

// returnedRoots is the set of tracked vars whose batches the return hands
// to the caller (ownership transfer). A bare return hands over the named
// results.
func (c *lifetimeChecker) returnedRoots(ret *ast.ReturnStmt) varset {
	roots := varset{}
	if len(ret.Results) == 0 {
		if c.decl != nil && c.decl.Type.Results != nil {
			for _, f := range c.decl.Type.Results.List {
				for _, name := range f.Names {
					if v, ok := c.p.TypesInfo.Defs[name].(*types.Var); ok && isTrackedBatch(v.Type()) {
						roots.add(v)
					}
				}
			}
		}
		return roots
	}
	for _, e := range ret.Results {
		roots.addAll(c.sc.rootVars(e))
	}
	return roots
}

// leakCheck reports owned, unreleased, undischarged batches that neither
// flow out through the return nor ride an error-return pairing.
func (c *lifetimeChecker) leakCheck(at ast.Node, returned varset, cur stateMap, where string) {
	out := c.sc.closure(returned)
	ret, _ := at.(*ast.ReturnStmt)
	for _, v := range sortedStateVars(cur) {
		st := cur[v]
		if st&stOwned == 0 || st&(stReleased|stDischarged) != 0 || out[v] {
			continue
		}
		if ret != nil && c.pairedWithError(v, ret) {
			continue
		}
		c.p.Report(at, "pooled batch %s is still owned %s: release it or return it to the caller", v.Name(), where)
	}
}

// pairedWithError suppresses the leak report for `b, err := f(); if err !=
// nil { return ..., err }`: when f fails it does not hand over a batch, the
// non-nil b state is an artifact of the may-analysis. The pairing is
// structural — the returned error and the batch were defined by the same
// assignment (any reaching definition of the error qualifies).
func (c *lifetimeChecker) pairedWithError(v *types.Var, ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return false
	}
	id, ok := ast.Unparen(ret.Results[len(ret.Results)-1]).(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := c.p.TypesInfo.Uses[id].(*types.Var)
	if !ok || !isErrorType(obj.Type()) {
		return false
	}
	for _, d := range c.useDefs[id] {
		if as, ok := d.Node.(*ast.AssignStmt); ok && assignDefines(c.p, as, v) {
			return true
		}
	}
	return false
}

// assignDefines reports whether the assignment's left side binds v.
func assignDefines(p *Pass, as *ast.AssignStmt, v *types.Var) bool {
	for _, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		if p.TypesInfo.Defs[id] == v || p.TypesInfo.Uses[id] == v {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return t != nil && types.AssignableTo(t, types.Universe.Lookup("error").Type())
}

// fallsOff reports whether the block reaches Exit implicitly (no return,
// no panic) — the frame unwinds with whatever is still owned.
func (c *lifetimeChecker) fallsOff(b *cfg.Block) bool {
	exits := false
	for _, s := range b.Succs {
		if s == c.g.Exit {
			exits = true
		}
	}
	if !exits {
		return false
	}
	if len(b.Nodes) == 0 {
		return true
	}
	switch last := b.Nodes[len(b.Nodes)-1].(type) {
	case *ast.ReturnStmt:
		return false
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return false
			}
		}
	}
	return true
}

func sortedVars(s varset) []*types.Var {
	out := make([]*types.Var, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

func sortedStateVars(s stateMap) []*types.Var {
	out := make([]*types.Var, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}
