package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicDiscipline enforces all-or-nothing atomicity per struct field: a
// field that is written or read through sync/atomic anywhere in the
// package must be accessed through sync/atomic everywhere. Mixed
// atomic/plain access is how the trace layer's per-node cells — written
// with atomic adds from partition goroutines — could be torn or racy
// while still passing unit tests that never race. The analyzer keys on
// field *objects* (go/types), so promoted fields and aliased struct types
// resolve to the same discipline domain. Taking the address of such a
// field anywhere other than directly inside a sync/atomic call argument is
// flagged too: an escaped pointer is a plain access waiting to happen.
var AtomicDiscipline = &Analyzer{
	Name: "atomicdiscipline",
	Doc:  "a struct field accessed via sync/atomic anywhere must be accessed atomically everywhere; mixed atomic/plain access is an error",
	Run:  runAtomicDiscipline,
}

// atomicFns are the sync/atomic functions whose first argument addresses
// the cell being accessed.
func isAtomicFnName(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func runAtomicDiscipline(p *Pass) error {
	// Pass 1: find every field reached through a sync/atomic call, and
	// remember the exact selector nodes of those sanctioned accesses.
	atomicFields := map[*types.Var]ast.Node{} // field -> one atomic site (for the message)
	atomicSites := map[*ast.SelectorExpr]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name := calleePkgFunc(p, call)
			if pkgPath != "sync/atomic" || !isAtomicFnName(name) || len(call.Args) == 0 {
				return true
			}
			if sel := addressedField(call.Args[0]); sel != nil {
				if fld := fieldObj(p, sel); fld != nil {
					if _, seen := atomicFields[fld]; !seen {
						atomicFields[fld] = call
					}
					atomicSites[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: every other access to those fields is a violation.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSites[sel] {
				return true
			}
			fld := fieldObj(p, sel)
			if fld == nil {
				return true
			}
			site, mixed := atomicFields[fld]
			if !mixed {
				return true
			}
			p.Report(sel, "plain access to field %s, which is accessed via sync/atomic at %s; use sync/atomic everywhere or split the live cell from its snapshot",
				fld.Name(), p.Fset.Position(site.Pos()))
			return true
		})
	}
	return nil
}

// addressedField unwraps &expr (with parens) down to the selector whose
// field the atomic call addresses, or nil for non-selector operands.
func addressedField(arg ast.Expr) *ast.SelectorExpr {
	for {
		switch a := arg.(type) {
		case *ast.ParenExpr:
			arg = a.X
		case *ast.UnaryExpr:
			arg = a.X
		case *ast.SelectorExpr:
			return a
		default:
			return nil
		}
	}
}
