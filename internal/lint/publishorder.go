package lint

import (
	"go/ast"
	"go/types"

	"pref/internal/lint/cfg"
)

// PublishOrder statically catches the race class PR 6's chaos soak caught
// at runtime: the atomic epoch store in table.Partitioned.publishLocked is
// the release point that makes a new Version visible to concurrent
// readers, so every piece of bookkeeping that readers may observe — the
// shared[] COW flags, the Version's own fields — must complete BEFORE the
// store. The analyzer finds each atomic publish store (`x.f.Store(v)` on a
// sync/atomic-typed field, or `atomic.StoreX(&x.f, v)`) and then walks the
// CFG forward: any later mutation, on any path, of state rooted at the
// published receiver or at the stored value is a publish-ordering
// violation. Functions that legitimately restructure state around a store
// declare "// lint:publish-boundary <reason>".
var PublishOrder = &Analyzer{
	Name: "publishorder",
	Doc:  "no mutation of version-visible state may follow the atomic epoch store; bookkeeping must complete before the publish",
	Run:  runPublishOrder,
}

// publishorder's typestate machine: state 0 = pre-publish, 1 = published.
const (
	poEvStore = iota
	poEvMutate
)

func runPublishOrder(p *Pass) error {
	switch p.PkgName() {
	case "table", "bulkload":
	default:
		return nil
	}
	eachFuncDecl(p, func(fn *ast.FuncDecl) {
		if hasFuncMarker(fn, publishBoundaryMarker) {
			return
		}
		checkPublishOrder(p, fn)
	})
	return nil
}

// publishStore describes one atomic publish site in a function.
type publishStore struct {
	call *ast.CallExpr
	base types.Object // receiver whose state the store publishes
	val  types.Object // root object of the stored value (nil if none)
}

func checkPublishOrder(p *Pass, fn *ast.FuncDecl) {
	stores := map[*ast.CallExpr]*publishStore{}
	watched := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if st := asPublishStore(p, call); st != nil {
			stores[call] = st
			if st.base != nil {
				watched[st.base] = true
			}
			if st.val != nil {
				watched[st.val] = true
			}
		}
		return true
	})
	if len(stores) == 0 {
		return
	}

	g := funcGraph(fn)
	m := &cfg.Machine{
		Init: 0,
		Classify: func(n ast.Node) (int, bool) {
			switch n := n.(type) {
			case *ast.CallExpr:
				if _, ok := stores[n]; ok {
					return poEvStore, true
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if o := recvBase(p, lhs); o != nil && watched[o] && !isPlainIdent(lhs) {
						return poEvMutate, true
					}
				}
			case *ast.IncDecStmt:
				if o := recvBase(p, n.X); o != nil && watched[o] && !isPlainIdent(n.X) {
					return poEvMutate, true
				}
			}
			return 0, false
		},
		Step: func(state, event int) int {
			if event == poEvStore {
				return 1
			}
			return state
		},
	}
	res := m.Run(g)

	// One store position for the message (the first in source order).
	var firstStore *ast.CallExpr
	for call := range stores {
		if firstStore == nil || call.Pos() < firstStore.Pos() {
			firstStore = call
		}
	}
	for n, states := range res.Events {
		if !states.Has(1) {
			continue
		}
		switch n.(type) {
		case *ast.AssignStmt, *ast.IncDecStmt:
			p.Report(n, "mutation of version-visible state after the atomic epoch publish at %s; readers may already observe the new version — complete all bookkeeping before the Store",
				p.Fset.Position(firstStore.Pos()))
		case *ast.CallExpr:
			if n != firstStore {
				p.Report(n, "second atomic publish after the one at %s in the same function; publish exactly once per epoch",
					p.Fset.Position(firstStore.Pos()))
			}
		}
	}
}

// asPublishStore recognizes the two atomic publish spellings and resolves
// the published base and stored value.
func asPublishStore(p *Pass, call *ast.CallExpr) *publishStore {
	// Method form: base...field.Store(v) / .Swap(v) / .CompareAndSwap(_, v)
	// on a sync/atomic-typed field.
	if recv, name := methodCall(call); recv != nil {
		switch name {
		case "Store", "Swap", "CompareAndSwap":
			if typeFromPkg(exprType(p, recv), "sync/atomic") {
				st := &publishStore{call: call, base: recvBase(p, recv)}
				if len(call.Args) > 0 {
					st.val = recvBase(p, call.Args[len(call.Args)-1])
				}
				return st
			}
		}
		return nil
	}
	// Function form: atomic.StoreX(&base.field, v).
	if pkgPath, name := calleePkgFunc(p, call); pkgPath == "sync/atomic" && len(call.Args) >= 2 {
		switch {
		case name == "StorePointer", name == "StoreInt32", name == "StoreInt64",
			name == "StoreUint32", name == "StoreUint64", name == "StoreUintptr":
			if sel := addressedField(call.Args[0]); sel != nil {
				return &publishStore{
					call: call,
					base: recvBase(p, sel),
					val:  recvBase(p, call.Args[1]),
				}
			}
		}
	}
	return nil
}

// isPlainIdent reports whether e is a bare identifier (possibly
// parenthesized): rebinding a local that happens to alias the published
// value is not a mutation of shared state.
func isPlainIdent(e ast.Expr) bool {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return true
		case *ast.ParenExpr:
			e = v.X
		default:
			return false
		}
	}
}
