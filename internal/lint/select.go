package lint

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Timings accumulates per-analyzer wall time, summed across every package
// a run visits. Keys are analyzer names. A nil map is a valid sink that
// records nothing, so callers without a timing consumer pass nil.
type Timings map[string]time.Duration

func (t Timings) add(name string, d time.Duration) {
	if t != nil {
		t[name] += d
	}
}

// SelectAnalyzers filters the full roster down to the -only / -skip flag
// values: comma-separated analyzer names, empty meaning "no constraint".
// The only filter applies first, then skip. Unknown names are an error —
// a typo must not silently run a gate with an analyzer disabled.
func SelectAnalyzers(all []*Analyzer, only, skip string) ([]*Analyzer, error) {
	byName := map[string]bool{}
	for _, a := range all {
		byName[a.Name] = true
	}
	parse := func(flagName, csv string) (map[string]bool, error) {
		if csv == "" {
			return nil, nil
		}
		set := map[string]bool{}
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !byName[name] {
				known := make([]string, 0, len(byName))
				for n := range byName {
					known = append(known, n)
				}
				sort.Strings(known)
				return nil, fmt.Errorf("%s: unknown analyzer %q (known: %s)", flagName, name, strings.Join(known, ", "))
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse("-only", only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse("-skip", skip)
	if err != nil {
		return nil, err
	}
	out := []*Analyzer{}
	for _, a := range all {
		if onlySet != nil && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}
