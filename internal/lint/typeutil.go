package lint

import (
	"go/ast"
	"go/types"
)

// usedPkg resolves an identifier to the package it names (import alias or
// plain import name), or nil when it is not a package reference. Shadowing
// a package name with a local variable therefore defeats nothing: the
// resolution is by object, not by spelling.
func usedPkg(p *Pass, id *ast.Ident) *types.Package {
	pn, ok := p.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return nil
	}
	return pn.Imported()
}

// calleePkgFunc resolves a call of the form pkgname.Func(...) to the
// imported package path and function name ("", "" otherwise).
func calleePkgFunc(p *Pass, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pkg := usedPkg(p, id)
	if pkg == nil {
		return "", ""
	}
	return pkg.Path(), sel.Sel.Name
}

// fieldObj resolves a selector expression to the struct field it denotes
// (including fields promoted through embedding), or nil when the selector
// is not a field access.
func fieldObj(p *Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := p.TypesInfo.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	// Qualified references (pkg.X) land in Uses, not Selections.
	if v, ok := p.TypesInfo.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// exprType returns the static type of an expression (nil when untyped).
func exprType(p *Pass, e ast.Expr) types.Type {
	tv, ok := p.TypesInfo.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// isNamedType reports whether t (after unwrapping pointers and aliases) is
// a defined type with the given package path and name. An empty pkgPath
// matches any package, which fixtures rely on.
func isNamedType(t types.Type, pkgPath, name string) bool {
	t = deref(t)
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name {
		return false
	}
	if pkgPath == "" {
		return true
	}
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// deref unwraps pointers and aliases.
func deref(t types.Type) types.Type {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	return t
}

// isInt reports whether t's underlying type is exactly int.
func isInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}

// rootIdentObj resolves the variable at the root of an expression like
// x, x.f, or (*x).f — the object a join/ownership check should key on.
func rootIdentObj(p *Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return p.TypesInfo.Uses[v]
		case *ast.SelectorExpr:
			// Prefer the field itself: distinct struct fields are distinct
			// synchronization domains.
			if f := fieldObj(p, v); f != nil {
				return f
			}
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		default:
			return nil
		}
	}
}
