package lint

import (
	"go/ast"
	"go/types"
)

// partPkgs are the packages holding per-partition runtime state: engine
// (operator row sets, executing-node maps), fault (injection keyed by
// node), and trace (per-node metric cells).
var partPkgs = map[string]bool{
	"engine": true,
	"fault":  true,
	"trace":  true,
}

// partStateFields are field/variable names that denote per-partition or
// per-node indexed state even when the element type alone does not give it
// away: base-table partitions, the executing-node map, per-node row
// counters, and per-node trace cells.
var partStateFields = map[string]bool{
	"Parts":   true,
	"execDst": true,
	"nodeRow": true,
	"cells":   true,
}

// partitionParamNames are the conventional names of a partition/node-id
// parameter. A function owning such a parameter is partition-scoped: it
// acts on behalf of exactly that partition.
var partitionParamNames = map[string]bool{
	"p": true, "src": true, "dst": true, "node": true, "en": true,
}

// PartOwnership statically enforces the shared-nothing contract inside the
// single-process engine: state indexed by partition (or node) id — any
// [][]T row-set, plus the named per-partition fields above — may only be
// indexed by the enclosing function's own partition-id parameter. Anything
// else (another variable, a constant, arithmetic, or ranging across all
// partitions) is a cross-partition access, legal only inside a function
// whose doc comment declares it a sanctioned exchange/ship/recovery site
// with "// lint:ship-boundary <reason>". This is the compile-time half of
// check.VerifyTrace's ship-legality law: an operator that touches another
// partition's rows without going through a declared boundary cannot ship
// silently.
var PartOwnership = &Analyzer{
	Name: "partownership",
	Doc:  "per-partition state may only be indexed by the function's own partition id; cross-partition access requires a // lint:ship-boundary function",
	Run:  runPartOwnership,
}

func runPartOwnership(p *Pass) error {
	if !partPkgs[p.PkgName()] {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkOwnership(p, fn.Body, ownCtx{
				name:      fn.Name.Name,
				partParam: partitionParam(p, fn.Recv, fn.Type),
				boundary:  isShipBoundary(fn),
			})
		}
	}
	return nil
}

// ownCtx is one function scope's ownership context: which object is its
// own partition id (nil when the scope is not partition-scoped) and
// whether the enclosing declaration is a sanctioned ship boundary.
type ownCtx struct {
	name      string
	partParam types.Object
	boundary  bool
}

// partitionParam picks the scope's partition-id parameter: the first int
// parameter with a conventional name, or — for closures — a sole int
// parameter regardless of name (the partUnit shape func(p int) (...)).
func partitionParam(p *Pass, recv *ast.FieldList, ft *ast.FuncType) types.Object {
	if ft.Params == nil {
		return nil
	}
	_ = recv // receivers are never partition ids
	var sole types.Object
	ints := 0
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := p.TypesInfo.Defs[name]
			if obj == nil || !isInt(obj.Type()) {
				continue
			}
			ints++
			sole = obj
			if partitionParamNames[name.Name] {
				return obj
			}
		}
	}
	if ints == 1 {
		return sole
	}
	return nil
}

// checkOwnership walks one function scope. Function literals open a nested
// scope: their own int parameter (if any) becomes the owning partition id,
// otherwise they inherit the enclosing scope's; the ship-boundary sanction
// always flows down from the enclosing declaration.
func checkOwnership(p *Pass, body ast.Node, ctx ownCtx) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := ctx
			inner.name += " (closure)"
			if pp := partitionParam(p, nil, n.Type); pp != nil {
				inner.partParam = pp
			}
			checkOwnership(p, n.Body, inner)
			return false
		case *ast.IndexExpr:
			if !isPartState(p, n.X) || ctx.boundary {
				return true
			}
			if id, ok := n.Index.(*ast.Ident); ok && ctx.partParam != nil &&
				p.TypesInfo.Uses[id] == ctx.partParam {
				return true // own slot
			}
			p.Report(n, "%s indexes per-partition state %s outside its own partition; move the access into a // lint:ship-boundary function",
				ctx.name, exprString(n.X))
		case *ast.RangeStmt:
			if !isPartState(p, n.X) || ctx.boundary {
				return true
			}
			p.Report(n, "%s sweeps all partitions of %s; ranging per-partition state requires a // lint:ship-boundary function",
				ctx.name, exprString(n.X))
		}
		return true
	})
}

// isPartState reports whether an expression denotes per-partition indexed
// state: a partition→rows container ([][]value.Tuple and shapes like it),
// or a slice/map named as one of the known per-partition fields. The shape
// test is deliberately two-level: the outer index is the partition id, so
// the element must be an unnamed slice of a named row type. A bare
// []value.Tuple — one partition's own rows — is plain data, even though
// Tuple's underlying type is itself a slice.
func isPartState(p *Pass, e ast.Expr) bool {
	t := exprType(p, e)
	if t == nil {
		return false
	}
	if s, ok := t.Underlying().(*types.Slice); ok {
		if inner, ok := s.Elem().(*types.Slice); ok {
			if _, named := types.Unalias(inner.Elem()).(*types.Named); named {
				return true
			}
		}
	}
	name := ""
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	}
	if !partStateFields[name] {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// exprString renders a short expression for diagnostics (identifier or
// selector chains; anything else is elided).
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return "per-partition state"
}
