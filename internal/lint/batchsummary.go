package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"pref/internal/lint/cfg"
)

// Interprocedural summaries for batchlifetime: every function gets an
// ownership contract (cfg.Summary) describing what it does to each
// batch-typed parameter and what each batch-typed result is. Contracts
// come from three sources, strongest first:
//
//  1. Intrinsics — the batch package's API is the trusted base layer
//     (Release consumes, Project returns fresh pooled batches, WithSel
//     returns an alias, ...). The analyzer never looks inside it.
//
//  2. Markers — a function doc comment may declare its contract:
//
//     // lint:batch-owner <reason>   — tracked params are consumed, tracked
//     //                               results are fresh (caller-owned); the
//     //                               body is checked with params owned
//     // lint:batch-borrow <reason>  — tracked params are only borrowed and
//     //                               tracked results alias existing storage
//
//  3. Bottom-up computation — everything else is derived from the body
//     over the package call graph, with an SCC fixpoint for recursion
//     (cfg.CallGraph.Solve).
const (
	batchOwnerMarker  = "lint:batch-owner"
	batchBorrowMarker = "lint:batch-borrow"
)

// isTrackedBatch reports whether values of type t carry batches whose
// lifetime the analyzer tracks: Batch, *Batch, a batch list ([]*Batch), or
// per-partition batch lists ([][]*Batch — the engine's vparts). Type
// parameters are never tracked (their underlying type is an interface), so
// generic plumbing like forEachPart stays out of the typestate and its
// call sites are handled conservatively instead.
func isTrackedBatch(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	for i := 0; i < 2; i++ {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			break
		}
		t = types.Unalias(s.Elem())
	}
	return isBatchType(t)
}

// varset is a set of local variables (params included).
type varset map[*types.Var]bool

func (s varset) add(v *types.Var) { s[v] = true }

func (s varset) addAll(o varset) {
	for v := range o {
		s[v] = true
	}
}

// batchSummaries resolves ownership contracts for one package.
type batchSummaries struct {
	p      *Pass
	cg     *cfg.CallGraph
	solved map[*types.Func]*cfg.Summary
}

func newBatchSummaries(p *Pass) *batchSummaries {
	bs := &batchSummaries{p: p, cg: cfg.NewCallGraph(p.Files, p.TypesInfo)}
	bs.solved = bs.cg.Solve(bs.compute)
	return bs
}

// summaryFor resolves the contract of a callee: intrinsic, then marker,
// then the solved bottom-up summary. nil means unknown (dynamic call or a
// foreign function without batch intrinsics) — callers treat unknown as
// borrow-everything with aliasing results.
func (bs *batchSummaries) summaryFor(fn *types.Func) *cfg.Summary {
	if fn == nil {
		return nil
	}
	if s, ok := batchIntrinsic(fn); ok {
		return s
	}
	if n := bs.cg.Node(fn); n != nil {
		if s, ok := markerSummary(n.Decl, fn); ok {
			return s
		}
	}
	return bs.solved[fn]
}

// summarySlots lists the parameter variables a summary indexes: the
// receiver (when present) prepended to the declared parameters.
func summarySlots(sig *types.Signature) []*types.Var {
	var slots []*types.Var
	if r := sig.Recv(); r != nil {
		slots = append(slots, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		slots = append(slots, sig.Params().At(i))
	}
	return slots
}

// newSummary allocates a zeroed summary shaped for sig.
func newSummary(sig *types.Signature) *cfg.Summary {
	return &cfg.Summary{
		Params:  make([]cfg.Effect, len(summarySlots(sig))),
		Results: make([]cfg.ResultKind, sig.Results().Len()),
	}
}

// batchIntrinsic returns the trusted contract of a batch-package function.
// Anything in the package without an explicit entry borrows its arguments
// and returns aliases — safe defaults for accessors (Len, At, Row, ...)
// and the Writer append family, which copy rows out of their sources.
func batchIntrinsic(fn *types.Func) (*cfg.Summary, bool) {
	if fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), batchPkgSuffix) {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, false
	}
	s := newSummary(sig)
	for i := 0; i < sig.Results().Len(); i++ {
		if isTrackedBatch(sig.Results().At(i).Type()) {
			s.Results[i] = cfg.ResAlias
		}
	}
	switch fn.Name() {
	case "Release": // (*Batch).Release: the receiver is dead afterwards
		s.Params[0] = cfg.EffConsume
	case "ReleaseAll": // ReleaseAll(bs): every batch in the list is dead
		s.Params[0] = cfg.EffConsume
	case "WithSel", "Filter", "Flatten":
		// Narrowing and compaction return (possible) views over the
		// argument's columns: releasing the argument invalidates them.
		s.Params[0] = cfg.EffReturnsAlias
	case "Project", "FromRows":
		s.Results[0] = cfg.ResFresh // dense pooled output, caller-owned
	case "Finish":
		if sig.Recv() != nil { // (*Writer).Finish hands over pooled batches
			s.Results[0] = cfg.ResFresh
		}
	}
	return s, true
}

// markerSummary builds the declared contract of a marked function.
func markerSummary(decl *ast.FuncDecl, fn *types.Func) (*cfg.Summary, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, false
	}
	switch {
	case hasFuncMarker(decl, batchOwnerMarker):
		s := newSummary(sig)
		for i, v := range summarySlots(sig) {
			if isTrackedBatch(v.Type()) {
				s.Params[i] = cfg.EffConsume
			}
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if isTrackedBatch(sig.Results().At(i).Type()) {
				s.Results[i] = cfg.ResFresh
			}
		}
		return s, true
	case hasFuncMarker(decl, batchBorrowMarker):
		s := newSummary(sig)
		for i := 0; i < sig.Results().Len(); i++ {
			if isTrackedBatch(sig.Results().At(i).Type()) {
				s.Results[i] = cfg.ResAlias
			}
		}
		return s, true
	}
	return nil, false
}

// hasTrackedSignature reports whether any param/recv/result is tracked —
// functions without one have the all-zero contract and skip the body walk.
func hasTrackedSignature(sig *types.Signature) bool {
	for _, v := range summarySlots(sig) {
		if isTrackedBatch(v.Type()) {
			return true
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isTrackedBatch(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// compute derives one function's summary from its body, reading callee
// contracts through get (nil for not-yet-solved SCC members). It is
// monotone: effects only accumulate and result kinds only widen, so
// Solve's fixpoint terminates.
func (bs *batchSummaries) compute(n *cfg.FuncNode, get func(*types.Func) *cfg.Summary) *cfg.Summary {
	sig, ok := n.Fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if s, ok := markerSummary(n.Decl, n.Fn); ok {
		return s
	}
	s := newSummary(sig)
	if !hasTrackedSignature(sig) {
		return s
	}

	lookup := func(fn *types.Func) *cfg.Summary {
		if fn == nil {
			return nil
		}
		if is, ok := batchIntrinsic(fn); ok {
			return is
		}
		if nd := bs.cg.Node(fn); nd != nil {
			if ms, ok := markerSummary(nd.Decl, fn); ok {
				return ms
			}
		}
		return get(fn)
	}
	sc := newBatchScope(bs.p, lookup)
	// The whole declaration, closures included: a closure's release or
	// escape of a parameter is the function's effect too.
	sc.collect(n.Decl, false)

	slots := summarySlots(sig)
	slotIdx := map[*types.Var]int{}
	for i, v := range slots {
		if isTrackedBatch(v.Type()) {
			slotIdx[v] = i
		}
	}
	mark := func(roots varset, eff cfg.Effect) {
		for v := range sc.closure(roots) {
			if i, ok := slotIdx[v]; ok {
				s.Params[i] |= eff
			}
		}
	}
	for _, c := range sc.consumed {
		mark(c.roots, cfg.EffConsume)
	}
	for _, e := range sc.escaped {
		mark(e.roots, cfg.EffEscape)
	}

	// Result kinds from the function's own returns (closure returns belong
	// to the closure). Bare returns classify through the named result vars.
	results := sig.Results()
	var named []*types.Var
	for i := 0; i < results.Len(); i++ {
		named = append(named, results.At(i))
	}
	classify := func(e ast.Expr, pos int) {
		if pos >= len(s.Results) || !isTrackedBatch(results.At(pos).Type()) {
			return
		}
		s.Results[pos] = s.Results[pos].Merge(sc.classifyValue(e, pos, slotIdx, func(i int) {
			s.Params[i] |= cfg.EffReturnsAlias
		}))
	}
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := m.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 0 {
			for i, v := range named {
				if v.Name() != "" && isTrackedBatch(v.Type()) {
					s.Results[i] = s.Results[i].Merge(cfg.ResAlias)
				}
			}
			return true
		}
		if len(ret.Results) == 1 && results.Len() > 1 {
			// return f() forwarding multiple results.
			if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
				for i := 0; i < results.Len(); i++ {
					classify(call, i)
				}
				return true
			}
		}
		for i, e := range ret.Results {
			classify(e, i)
		}
		return true
	})
	return s
}

// String renders every computed (non-marker, non-intrinsic) summary with a
// tracked signature, sorted by name — the golden dump of the
// interprocedural layer.
func (bs *batchSummaries) String() string {
	type entry struct{ name, sum string }
	var entries []entry
	for _, n := range bs.cg.Nodes {
		sig, ok := n.Fn.Type().(*types.Signature)
		if !ok || !hasTrackedSignature(sig) {
			continue
		}
		name := n.Fn.Name()
		if r := sig.Recv(); r != nil {
			name = "(" + types.TypeString(r.Type(), types.RelativeTo(bs.p.Pkg)) + ")." + name
		}
		entries = append(entries, entry{name, bs.summaryFor(n.Fn).String()})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	var sb strings.Builder
	for _, e := range entries {
		sb.WriteString(e.name)
		sb.WriteString(": ")
		sb.WriteString(e.sum)
		sb.WriteString("\n")
	}
	return sb.String()
}
