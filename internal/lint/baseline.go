package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// BaselineEntry identifies one grandfathered finding. Line numbers are
// deliberately omitted: edits elsewhere in a file must not churn the
// baseline, so a finding is keyed by where it is, which analyzer produced
// it, and its exact message.
type BaselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Baseline is the set of findings a repository has accepted as debt. The
// target state — and this repository's enforced state, via preflint
// -strict in CI — is an empty findings list: the file exists so the gate
// is explicit, not so violations accumulate.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// LoadBaseline reads a baseline file. An empty path yields an empty
// baseline (no grandfathering).
func LoadBaseline(path string) (*Baseline, error) {
	if path == "" {
		return &Baseline{}, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return &b, nil
}

// Filter splits diagnostics into new findings (not in the baseline) and
// returns, separately, the stale baseline entries that no longer match any
// finding — debt that has been paid off and should be deleted from the
// file.
func (b *Baseline) Filter(diags []Diagnostic) (fresh []Diagnostic, stale []BaselineEntry) {
	used := make([]bool, len(b.Findings))
	for _, d := range diags {
		matched := false
		for i, e := range b.Findings {
			if !used[i] && e.File == filepath.ToSlash(d.Pos.Filename) &&
				e.Analyzer == d.Analyzer && e.Message == d.Message {
				used[i] = true
				matched = true
				break
			}
		}
		if !matched {
			fresh = append(fresh, d)
		}
	}
	for i, e := range b.Findings {
		if !used[i] {
			stale = append(stale, e)
		}
	}
	return fresh, stale
}

// WriteBaseline snapshots the given diagnostics as the new baseline,
// sorted for diff stability.
func WriteBaseline(path string, diags []Diagnostic) error {
	b := Baseline{Findings: []BaselineEntry{}}
	for _, d := range diags {
		b.Findings = append(b.Findings, BaselineEntry{
			File:     filepath.ToSlash(d.Pos.Filename),
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
