// Fixture for the goroutinescope analyzer: every go statement in the
// execution packages must join a WaitGroup (Add before, deferred Done
// inside, Wait after) and be able to observe the query context.
package engine

import (
	"context"
	"sync"
)

func joined(ctx context.Context, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = ctx.Err()
		}()
	}
	wg.Wait()
}

func worker() {}

func named(ctx context.Context) {
	go worker() // want "launches named function worker"
	_ = ctx
}

func noDone(ctx context.Context) {
	go func() { // want "has no deferred WaitGroup Done"
		_ = ctx.Err()
	}()
}

func noAdd(ctx context.Context) {
	var wg sync.WaitGroup
	go func() { // want "missing wg.Add before the go statement"
		defer wg.Done()
		_ = ctx.Err()
	}()
	wg.Wait()
}

func noWait(ctx context.Context) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "missing wg.Wait after the go statement"
		defer wg.Done()
		_ = ctx.Err()
	}()
}

func deaf(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "cannot observe the query context"
		defer wg.Done()
		_ = n
	}()
	wg.Wait()
}

func cancelSibling(cancel context.CancelFunc) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cancel() // holding the query's CancelFunc counts as observing it
	}()
	wg.Wait()
}

func fireAndForget(ch chan int) {
	//lint:ignore goroutinescope fixture: deliberate detached helper
	go func() {
		close(ch)
	}()
}
