// Package engine pins the pre-fix shapes of the real error-path leaks that
// batchlifetime found in the engine's vectorized operators (PR 9). Every
// other analyzer in the suite must stay silent on this file: the regression
// test runs the full roster minus batchlifetime and requires zero
// diagnostics, then batchlifetime alone and requires exactly the wants
// below. If a cheaper analyzer ever learns to catch these, the pinned
// contract fails and the roster entry should be re-evaluated.
package engine

import (
	"errors"

	"pref/internal/batch"
)

var errCompile = errors.New("compile failed")

// forEach mirrors the engine's forEachPart barrier: it drives the body once
// per partition and collects outputs. Callers' closed-over inputs are
// treated as possibly consumed by the literal.
func forEach(n int, body func(p int) ([]*batch.Batch, error)) ([][]*batch.Batch, error) {
	out := make([][]*batch.Batch, n)
	for p := 0; p < n; p++ {
		bs, err := body(p)
		if err != nil {
			return nil, err
		}
		out[p] = bs
	}
	return out, nil
}

// acquireInput builds caller-owned input partitions.
// lint:batch-owner caller owns the returned batches
func acquireInput(n int) [][]*batch.Batch {
	out := make([][]*batch.Batch, n)
	for p := range out {
		w := batch.NewWriter(1)
		w.AppendTuple([]int64{int64(p)})
		out[p] = w.Finish()
	}
	return out
}

func releaseAll(in [][]*batch.Batch) {
	for _, bs := range in {
		batch.ReleaseAll(bs)
	}
}

// projectPreFix reproduces evalProjectVec before the fix: a compile failure
// between acquiring the input and the per-partition handoff returned early
// and dropped every pooled input batch. The success path's releaseAll must
// not excuse the early return.
// lint:batch-owner consumes its input; output batches are fresh
func projectPreFix(exprs []int) ([][]*batch.Batch, error) {
	in := acquireInput(2)
	for _, e := range exprs {
		if e < 0 {
			return nil, errCompile // want "still owned at return"
		}
	}
	out, err := forEach(2, func(p int) ([]*batch.Batch, error) {
		w := batch.NewWriter(1)
		for _, b := range in[p] {
			w.AppendBatch(b)
		}
		return w.Finish(), nil
	})
	if err != nil {
		return nil, err
	}
	releaseAll(in)
	return out, nil
}

// scatterPreFix reproduces evalRepartitionVec before the fix: a ship fault
// mid-scatter returned early and leaked the owned input.
// lint:batch-owner consumes in; scatter output is fresh
func scatterPreFix(in [][]*batch.Batch, fail bool) ([][]*batch.Batch, error) {
	w := batch.NewWriter(1)
	for _, bs := range in {
		for _, b := range bs {
			w.AppendBatch(b)
		}
		if fail {
			return nil, errCompile // want "still owned at return"
		}
	}
	releaseAll(in)
	return [][]*batch.Batch{w.Finish()}, nil
}

// projectFixed is the post-fix shape: every early error return releases the
// owned input first. batchlifetime must accept it unchanged.
// lint:batch-owner consumes its input; output batches are fresh
func projectFixed(exprs []int) ([][]*batch.Batch, error) {
	in := acquireInput(2)
	for _, e := range exprs {
		if e < 0 {
			releaseAll(in)
			return nil, errCompile
		}
	}
	out, err := forEach(2, func(p int) ([]*batch.Batch, error) {
		w := batch.NewWriter(1)
		for _, b := range in[p] {
			w.AppendBatch(b)
		}
		return w.Finish(), nil
	})
	if err != nil {
		return nil, err
	}
	releaseAll(in)
	return out, nil
}
