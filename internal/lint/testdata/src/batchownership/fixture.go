// Fixture for the batchownership analyzer: outside the batch package, a
// Batch's columns and selection vector are read-only — writes go into new
// batches (batch.Writer) or fresh selection vectors (WithSel), never
// through a batch an operator received.
package engine

import "pref/internal/batch"

func readsAreFine(b *batch.Batch) int64 {
	s := int64(0)
	for i := 0; i < b.Len(); i++ {
		s += b.At(i, 0)
	}
	return s
}

func rebindIsFine(b *batch.Batch) *batch.Batch {
	b = batch.View(b.Cols) // rebinding the variable, not the shared arrays
	return b
}

func narrowProperly(b *batch.Batch, keep []int32) *batch.Batch {
	return b.WithSel(keep) // fresh header over shared columns: the sanctioned shape
}

func overwriteSel(b *batch.Batch, keep []int32) {
	b.Sel = keep // want "write through batch b violates batch ownership"
}

func overwriteColumn(b *batch.Batch, col []int64) {
	b.Cols[0] = col // want "write through batch b violates batch ownership"
}

func scribbleValue(b *batch.Batch) {
	b.Cols[0][0] = 42 // want "write through batch b violates batch ownership"
}

func scribbleViaAlias(bs []*batch.Batch) {
	bs[0].Cols[1][2]++ // want "write through batch bs[0] violates batch ownership"
}

func escapeMutableRef(b *batch.Batch) *[]int64 {
	return &b.Cols[0] // want "write through batch b violates batch ownership"
}

func suppressed(b *batch.Batch) {
	//lint:ignore batchownership fixture demonstrates the suppression grammar
	b.Sel = nil
}
