// Fixture for the shipaccounting analyzer: the ship counters have one
// writer per meter, any function charging one meter charges both and is a
// declared ship boundary, and a declared boundary that scatters rows
// meters them.
package engine

import "sync/atomic"

type row []int64

type shipStats struct {
	RowsShipped  int64
	BytesShipped int64
}

type traceOp struct {
	RowsShipped int64
}

func (t *traceOp) AddShip(src, rows, width int) {
	atomic.AddInt64(&t.RowsShipped, int64(rows))
}

type executor struct {
	stats shipStats
	top   *traceOp
}

// ship is the Stats meter: the only legal writer of the ship counters.
func (ex *executor) ship(rows, width int) {
	ex.stats.RowsShipped += int64(rows)
	ex.stats.BytesShipped += int64(rows) * int64(width) * 8
}

func (ex *executor) leak(rows int) {
	ex.stats.RowsShipped += int64(rows) // want "leak writes ship counter RowsShipped directly"
}

func (ex *executor) atomicLeak(rows int) {
	atomic.AddInt64(&ex.top.RowsShipped, int64(rows)) // want "atomicLeak atomically writes ship counter RowsShipped"
}

func (ex *executor) halfStats(rows, width int) { // want "halfStats charges the Stats ship meter but never records trace ship bytes"
	ex.ship(rows, width)
}

func (ex *executor) halfTrace(rows, width int) { // want "halfTrace records trace ship bytes but never charges the Stats ship meter"
	ex.top.AddShip(0, rows, width)
}

func (ex *executor) fullUnmarked(rows, width int) { // want "fullUnmarked moves rows across partitions but is not declared"
	ex.ship(rows, width)
	ex.top.AddShip(0, rows, width)
}

// metered is the sanctioned shape: a declared exchange charging both
// meters for the rows it moves.
//
// lint:ship-boundary fixture exchange: meters every boundary crossing.
func (ex *executor) metered(parts [][]row, dst int, r row, width int) {
	parts[dst] = append(parts[dst], r)
	ex.ship(1, width)
	ex.top.AddShip(dst, 1, width)
}

// silentScatter is declared but moves rows off the books.
//
// lint:ship-boundary fixture exchange that forgets the meter.
func (ex *executor) silentScatter(parts [][]row, dst int, r row) {
	parts[dst] = append(parts[dst], r) // want "silentScatter scatters rows across partitions of parts without metering"
}
