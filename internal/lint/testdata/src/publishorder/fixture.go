// Fixture for the publishorder analyzer: no mutation of version-visible
// state may follow the atomic epoch store on any path. The bad shapes
// reproduce the PR 6 publish-ordering race, where shared[] bookkeeping ran
// after the store and a concurrent BeginWrite could observe the new
// version with stale clone flags.
package table

import (
	"sync"
	"sync/atomic"
)

type Version struct {
	Epoch int64
	Parts []int
}

type Partitioned struct {
	Parts  []int
	pub    atomic.Pointer[Version]
	pubMu  sync.Mutex
	shared []bool
}

// good publishes the way publishLocked does: every piece of bookkeeping
// completes before the store makes the version visible.
func (pt *Partitioned) good(epoch int64) {
	parts := make([]int, len(pt.Parts))
	copy(parts, pt.Parts)
	for i := range pt.shared {
		pt.shared[i] = true
	}
	pt.pub.Store(&Version{Epoch: epoch, Parts: parts})
}

// raced is the PR 6 pre-fix shape: the store fires first, then the
// shared[] flags are rewritten while readers may already hold the new
// version.
func (pt *Partitioned) raced(epoch int64) {
	parts := make([]int, len(pt.Parts))
	copy(parts, pt.Parts)
	pt.pub.Store(&Version{Epoch: epoch, Parts: parts})
	for i := range pt.shared {
		pt.shared[i] = true // want "mutation of version-visible state after the atomic epoch publish"
	}
}

// publishedValue mutates the Version object it just made visible — the
// same race through the other alias.
func (pt *Partitioned) publishedValue(epoch int64) {
	v := &Version{Epoch: epoch}
	pt.pub.Store(v)
	v.Parts = pt.Parts // want "mutation of version-visible state after the atomic epoch publish"
}

// onePath only races on the error path; the may-analysis still finds it.
func (pt *Partitioned) onePath(epoch int64, dirty bool) {
	parts := make([]int, len(pt.Parts))
	copy(parts, pt.Parts)
	pt.pub.Store(&Version{Epoch: epoch, Parts: parts})
	if dirty {
		pt.shared[0] = false // want "mutation of version-visible state after the atomic epoch publish"
	}
}

// doublePublish stores twice in one function; the second store republishes
// an epoch readers may already have pinned.
func (pt *Partitioned) doublePublish(epoch int64) {
	pt.pub.Store(&Version{Epoch: epoch})
	pt.pub.Store(&Version{Epoch: epoch + 1}) // want "second atomic publish"
}

// lint:publish-boundary fixture: swap-based republication restructures
// state around the store by design and owns its ordering proof.
func (pt *Partitioned) sanctioned(epoch int64) {
	pt.pub.Store(&Version{Epoch: epoch})
	for i := range pt.shared {
		pt.shared[i] = true
	}
}

// suppressed demonstrates the line-level escape hatch.
func (pt *Partitioned) suppressed(epoch int64) {
	pt.pub.Store(&Version{Epoch: epoch})
	//lint:ignore publishorder fixture demonstrates suppression
	pt.shared[0] = true
}

// locals may rebind freely after a store: only shared state counts.
func (pt *Partitioned) localsAfterStore(epoch int64) int {
	n := 0
	pt.pub.Store(&Version{Epoch: epoch})
	n = len(pt.Parts)
	n++
	return n
}
