// Fixture for the happensbefore analyzer: a field annotated
// lint:guarded-by may only be accessed on paths where one of its guards
// was acquired first — the atomic load matching the publisher's store, or
// the publication mutex. This is the table.Partitioned epoch-guard idiom.
package table

import (
	"sync"
	"sync/atomic"
)

type Version struct {
	Epoch int64
}

type head struct {
	pub atomic.Pointer[Version]
	mu  sync.Mutex
	// shared is meaningful only relative to the published epoch.
	// lint:guarded-by pub mu
	shared []bool
}

// goodLoad reads shared after the atomic load on every path.
func (h *head) goodLoad(p int) bool {
	if h.pub.Load() == nil {
		return false
	}
	return h.shared[p]
}

// goodLocked reads shared under the publication mutex.
func (h *head) goodLocked(p int) bool {
	h.mu.Lock()
	v := h.shared[p]
	h.mu.Unlock()
	return v
}

// raced reads shared before any acquire: the epoch can move underneath.
func (h *head) raced(p int) bool {
	return h.shared[p] // want "access to shared is not dominated by an acquire"
}

// onePath acquires on one branch only; the bare branch still races.
func (h *head) onePath(p int, fast bool) bool {
	if !fast {
		if h.pub.Load() == nil {
			return false
		}
	}
	return h.shared[p] // want "access to shared is not dominated by an acquire"
}

// released reads shared after dropping the mutex: the acquire no longer
// covers the access.
func (h *head) released(p int) bool {
	h.mu.Lock()
	h.mu.Unlock()
	return h.shared[p] // want "access to shared is not dominated by an acquire"
}

// deferredUnlock keeps the mutex held to the end: a deferred release runs
// at exit, not at its registration line.
func (h *head) deferredUnlock(p int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.shared[p]
}

// holds declares that every caller acquires the mutex first.
//
// lint:holds mu
func (h *head) holds(p int) bool {
	return h.shared[p]
}

// suppressed demonstrates the line-level escape hatch.
func (h *head) suppressed(p int) bool {
	//lint:ignore happensbefore fixture demonstrates suppression
	return h.shared[p]
}
