// Fixture for the partownership analyzer: per-partition state (a
// partition→rows container, or the named per-node fields) may only be
// indexed by the scope's own partition-id parameter; everything else needs
// a // lint:ship-boundary declaration.
package engine

type row []int64

type executor struct {
	execDst []int
	nodeRow []int64
}

func ownSlot(p int, parts [][]row) row {
	rows := parts[p] // own partition: fine
	return rows[0]   // []row is one partition's data, not part state
}

func neighbor(p int, parts [][]row) []row {
	return parts[p+1] // want "neighbor indexes per-partition state parts"
}

func otherIndex(p, q int, parts [][]row) []row {
	return parts[q] // want "otherIndex indexes per-partition state parts"
}

func coordinatorSlot(parts [][]row) []row {
	return parts[0] // want "coordinatorSlot indexes per-partition state parts"
}

func sweep(parts [][]row) int {
	n := 0
	for _, rows := range parts { // want "sweep sweeps all partitions of parts"
		n += len(rows)
	}
	return n
}

func namedField(ex *executor, p int) int64 {
	ex.execDst[p] = p      // own slot of a named per-node field: fine
	return ex.nodeRow[p+1] // want "namedField indexes per-partition state ex.nodeRow"
}

func closures(parts [][]row) {
	perPart := func(p int) []row {
		return parts[p] // the closure's own sole int param is its partition id
	}
	bad := func(p int) []row {
		return parts[p-1] // want "closures (closure) indexes per-partition state parts"
	}
	_, _ = perPart, bad
}

// gatherAll is the sanctioned shape: a declared exchange may sweep and
// cross-index freely, closures included.
//
// lint:ship-boundary fixture exchange: collects every partition's rows.
func gatherAll(parts [][]row) []row {
	var out []row
	for _, rows := range parts {
		out = append(out, rows...)
	}
	return append(out, parts[0]...)
}

func ignored(parts [][]row) []row {
	//lint:ignore partownership fixture demonstrates the suppression grammar
	return parts[0]
}
