// Fixture for the atomicdiscipline analyzer: a field accessed through
// sync/atomic anywhere must be accessed atomically everywhere.
package engine

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
}

func (c *counters) hit() {
	atomic.AddInt64(&c.hits, 1) // establishes hits as an atomic field
}

func (c *counters) snapshot() int64 {
	return atomic.LoadInt64(&c.hits) // atomic read: fine
}

func (c *counters) torn() int64 {
	return c.hits // want "plain access to field hits"
}

func (c *counters) tornWrite() {
	c.hits++ // want "plain access to field hits"
}

func (c *counters) plainOnly() {
	c.misses++ // never touched atomically anywhere: fine
}

func (c *counters) sanctioned() int64 {
	//lint:ignore atomicdiscipline single-goroutine teardown path
	return c.hits
}
