// Fixture for the snapshotdiscipline analyzer: read-side code in
// engine/cluster reaches table state only through a pinned DBSnapshot,
// never the live Partitioned head, and never through the write-path
// methods. Aliases of the live head are reported at their uses.
package engine

type Partition struct {
	Rows []int
}

type Version struct {
	Epoch int64
	Parts []*Partition
}

type Partitioned struct {
	Parts []*Partition
}

// lint:snapshot-boundary fixture: the write path itself owns the head.
func (pt *Partitioned) BeginWrite(p int) *Partition { return pt.Parts[p] }
func (pt *Partitioned) Publish() int64              { return 0 }
func (pt *Partitioned) ResetToPublished() int       { return 0 }
func (pt *Partitioned) Snapshot() *Version          { return nil }

type DBSnapshot struct {
	versions map[string]*Version
}

// Parts is the snapshot accessor: a method, not the live field.
func (s *DBSnapshot) Parts(tbl string) []*Partition {
	if v := s.versions[tbl]; v != nil {
		return v.Parts
	}
	return nil
}

// goodScan reads through the pinned snapshot.
func goodScan(s *DBSnapshot, tbl string) int {
	n := 0
	for _, p := range s.Parts(tbl) {
		n += len(p.Rows)
	}
	return n
}

// goodVersion reads the immutable published version: also fine.
func goodVersion(v *Version) int {
	return len(v.Parts)
}

// liveScan reads the live COW head directly.
func liveScan(pt *Partitioned) int {
	n := 0
	for _, p := range pt.Parts { // want "access to the live COW head pt.Parts"
		n += len(p.Rows)
	}
	return n
}

// aliased launders the head through a local; the diagnostic lands on the
// use, citing the aliasing definition.
func aliased(pt *Partitioned) int {
	ps := pt.Parts
	return len(ps) // want "use of ps, aliased from the live COW head pt.Parts"
}

// writePath calls mutation entry points from the read side.
func writePath(pt *Partitioned) {
	pt.BeginWrite(0)      // want "read-side call to write-path method BeginWrite"
	pt.Publish()          // want "read-side call to write-path method Publish"
	pt.ResetToPublished() // want "read-side call to write-path method ResetToPublished"
	_ = pt.Snapshot()     // pinning a snapshot is the sanctioned read API
}

// lint:snapshot-boundary fixture: the one pin point that may fall back to
// the live head when no snapshot is pinned.
func partsOf(s *DBSnapshot, pt *Partitioned, tbl string) []*Partition {
	if s != nil {
		if ps := s.Parts(tbl); ps != nil {
			return ps
		}
	}
	return pt.Parts
}

// suppressed demonstrates the line-level escape hatch.
func suppressed(pt *Partitioned) int {
	//lint:ignore snapshotdiscipline fixture demonstrates suppression
	return len(pt.Parts)
}
