// Fixture for the intentprotocol analyzer: bulk-load mutations must be
// dominated by an intent record, commits must close an open intent, and
// no path may return with an intent still open (the sanctioned abort is
// marking the loader crashed, which hands the intent to recovery).
package bulkload

import "errors"

type Intent struct {
	Seq   int
	State int
}

type IntentLog struct {
	entries []*Intent
}

func (g *IntentLog) append(it *Intent) { g.entries = append(g.entries, it) }

type Loader struct {
	log     IntentLog
	crashed bool
}

func (l *Loader) plan(n int) (*Intent, error) {
	if n < 0 {
		return nil, errors.New("bad batch")
	}
	return &Intent{Seq: n}, nil
}

// lint:intent-boundary fixture: the apply stage itself.
func (l *Loader) applySteps(it *Intent) error {
	if it.Seq < 0 {
		return errors.New("torn")
	}
	return nil
}

// lint:intent-boundary fixture: the publish stage itself.
func (l *Loader) commit(it *Intent) int {
	it.State = 1
	return it.Seq
}

// goodApply is the protocol in full: plan, intend, apply (aborting into
// recovery on error), publish.
func (l *Loader) goodApply(n int) (int, error) {
	it, err := l.plan(n)
	if err != nil {
		return 0, err
	}
	l.log.append(it)
	if err := l.applySteps(it); err != nil {
		l.crashed = true
		return 0, err
	}
	return l.commit(it), nil
}

// unintended applies steps no intent record covers: a crash mid-apply
// would be unrecoverable.
func (l *Loader) unintended(it *Intent) error {
	return l.applySteps(it) // want "mutation in a function that never records an intent"
}

// raced only skips the intent on one path.
func (l *Loader) raced(n int, fast bool) error {
	it, err := l.plan(n)
	if err != nil {
		return err
	}
	if !fast {
		l.log.append(it)
	}
	if err := l.applySteps(it); err != nil { // want "mutation not dominated by an intent record"
		l.crashed = true
		return err
	}
	l.commit(it) // want "publish reachable without an open intent"
	return nil
}

// stranded returns early with the intent still open and the loader not
// marked crashed: recovery will never replay it.
func (l *Loader) stranded(n int, abort bool) error {
	it, err := l.plan(n)
	if err != nil {
		return err
	}
	l.log.append(it)
	if abort {
		return errors.New("aborted") // want "return strands an uncommitted intent"
	}
	l.commit(it)
	return nil
}

// batchLoop intends and commits per iteration: each commit closes its
// intent, so the next append starts clean.
func (l *Loader) batchLoop(ns []int) error {
	for _, n := range ns {
		it, err := l.plan(n)
		if err != nil {
			return err
		}
		l.log.append(it)
		if err := l.applySteps(it); err != nil {
			l.crashed = true
			return err
		}
		l.commit(it)
	}
	return nil
}

// reintended opens a second intent while the first is still pending.
func (l *Loader) reintended(a, b *Intent) {
	l.log.append(a)
	l.log.append(b) // want "intent recorded while a previous intent is still open"
	l.commit(a)
	l.commit(b) // want "publish reachable without an open intent"
}

// bareCommit publishes without any covering intent.
func (l *Loader) bareCommit(it *Intent) int {
	return l.commit(it) // want "publish reachable without an open intent"
}

// suppressed demonstrates the line-level escape hatch.
func (l *Loader) suppressed(it *Intent) error {
	//lint:ignore intentprotocol fixture demonstrates suppression
	return l.applySteps(it)
}
