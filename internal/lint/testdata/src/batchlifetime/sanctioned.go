package engine

import "pref/internal/batch"

// produce builds and hands over caller-owned pooled batches.
// lint:batch-owner the writer's batches transfer to the caller
func produce() []*batch.Batch {
	w := batch.NewWriter(2)
	w.AppendTuple([]int64{1, 2})
	return w.Finish()
}

// narrow filters without taking ownership: the result borrows b's columns.
// lint:batch-borrow result is a zero-copy view over b
func narrow(b *batch.Batch, keep []int32) *batch.Batch {
	return b.WithSel(keep)
}

func ownerReleasesProperly() {
	bs := produce()
	batch.ReleaseAll(bs)
}

func viewsCarryNoObligation(b *batch.Batch, keep []int32) int64 {
	v := narrow(b, keep)
	return v.At(0, 0)
}

// passThrough returns its argument; the computed summary must classify the
// result as an alias of the parameter, so callers keep their obligation.
func passThrough(b *batch.Batch) *batch.Batch {
	return b
}

func aliasResultKeepsObligation() {
	b := acquire()
	v := passThrough(b)
	_ = v.Len()
	b.Release()
}

// spill launders ownership through a callback-driven loop: the companion
// argument of a func-literal call is treated as possibly consumed inside.
func spill(parts [][]*batch.Batch, each func(int, []*batch.Batch) error) error {
	for p, bs := range parts {
		if err := each(p, bs); err != nil {
			return err
		}
	}
	return nil
}

func callbackMayConsume() error {
	parts, err := acquireParts()
	if err != nil {
		return err
	}
	return spill(parts, func(p int, bs []*batch.Batch) error {
		batch.ReleaseAll(bs)
		return nil
	})
}
