package engine

import "pref/internal/batch"

func leakOnErrorPath(cond bool) (*batch.Batch, error) {
	b := acquire()
	if cond {
		return nil, errBoom // want "still owned at return"
	}
	return b, nil
}

func leakAtFalloff() {
	b := acquire()
	_ = b.Len() // want "still owned at function exit"
}

func noLeakPairedError() (*batch.Batch, error) {
	parts, err := acquireParts()
	if err != nil {
		// when the producer fails it hands nothing over: suppressed by
		// the error pairing with the defining assignment
		return nil, err
	}
	b := parts[0][0]
	_ = b
	releaseParts(parts)
	return nil, nil
}

func leakBeforeLaterHandoff(cond bool) ([][]*batch.Batch, error) {
	parts, err := acquireParts()
	if err != nil {
		return nil, err
	}
	if cond {
		return nil, errBoom // want "still owned at return"
	}
	// the handoff below must not excuse the early return above
	releaseParts(parts)
	return nil, nil
}

func noLeakWhenReturned() *batch.Batch {
	b := acquire()
	return b
}

func noLeakViaContainerReturn() []*batch.Batch {
	b := acquire()
	out := []*batch.Batch{b}
	return out
}

func noLeakDeferredRelease() int {
	b := acquire()
	defer b.Release()
	return b.Len()
}

func noLeakReleaseAllOverContainer() {
	var out []*batch.Batch
	b := acquire()
	out = append(out, b)
	batch.ReleaseAll(out)
}
