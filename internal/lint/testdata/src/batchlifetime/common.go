// Fixture package for the batchlifetime analyzer: interprocedural
// ownership typestate over pooled batches. Each file exercises one defect
// class (use-after-release, double release, leak, escape, alias write)
// with its sanctioned counterparts; common.go holds the shared sources of
// owned batches.
package engine

import (
	"errors"

	"pref/internal/batch"
)

var errBoom = errors.New("boom")

// acquire returns one caller-owned pooled batch.
// lint:batch-owner fixture source of pooled batches
func acquire() *batch.Batch {
	w := batch.NewWriter(2)
	w.AppendTuple([]int64{1, 2})
	return w.Finish()[0]
}

// acquireParts returns caller-owned per-partition batch lists.
// lint:batch-owner fixture source of owned partitioned batches
func acquireParts() ([][]*batch.Batch, error) {
	w := batch.NewWriter(2)
	w.AppendTuple([]int64{3, 4})
	return [][]*batch.Batch{w.Finish()}, nil
}

// releaseParts returns every batch of every partition to the pool.
func releaseParts(parts [][]*batch.Batch) {
	for _, bs := range parts {
		batch.ReleaseAll(bs)
	}
}

// consumeBatch forwards its argument to a releasing callee; the computed
// summary must mark the parameter consumed without any marker.
func consumeBatch(b *batch.Batch) {
	b.Release()
}
