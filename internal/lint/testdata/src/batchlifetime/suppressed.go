package engine

import "pref/internal/batch"

// Suppressions: a lint:ignore directive on the diagnostic's line (or the
// line above) silences batchlifetime there, with a mandatory reason.

func suppressedLeak(cond bool) (*batch.Batch, error) {
	b := acquire()
	if cond {
		//lint:ignore batchlifetime fixture demonstrates sanctioned suppression
		return nil, errBoom
	}
	return b, nil
}

func suppressedAliasWrite(b *batch.Batch) {
	cols := b.Cols
	cols[0][0] = 7 //lint:ignore batchlifetime fixture scratch batch is process-private
}
