package engine

import "pref/internal/batch"

func useAfterRelease() int64 {
	b := acquire()
	b.Release()
	return b.At(0, 0) // want "use of batch b after it was released"
}

func useAfterInterprocRelease() int {
	b := acquire()
	consumeBatch(b) // summary-computed consume, no marker anywhere
	return b.Len()  // want "use of batch b after it was released"
}

func useAfterReleaseAll() int {
	bs := acquire()
	all := []*batch.Batch{bs}
	batch.ReleaseAll(all)
	return len(all) // want "use of batch all after it was released"
}

func mayReleaseIsNotFlagged(cond bool) int64 {
	b := acquire()
	if cond {
		b.Release()
		return 0
	}
	v := b.At(0, 0) // released only on the other path: no report
	b.Release()
	return v
}

func rebindRevives() int {
	b := acquire()
	b.Release()
	b = acquire() // fresh batch under the same name
	n := b.Len()
	b.Release()
	return n
}
