package engine

import "pref/internal/batch"

type cache struct {
	held *batch.Batch
	ch   chan *batch.Batch
}

func escapeIntoField(c *cache) {
	b := acquire()
	c.held = b // want "escapes into long-lived state"
}

func escapeIntoChannel(c *cache) {
	b := acquire()
	c.ch <- b // want "escapes into long-lived state"
}

func escapeIntoGoroutine() {
	b := acquire()
	go func() { // want "escapes into long-lived state"
		_ = b.Len()
	}()
}

func borrowedViewMayBeStored(c *cache, b *batch.Batch) {
	c.held = b // the owner lives elsewhere; storing a view is their call
}

// adopt takes ownership: the field store is the declared transfer.
// lint:batch-owner cache takes over the batch and releases it later
func (c *cache) adopt(b *batch.Batch) {
	c.held = b
}

func handoffToOwnerIsFine(c *cache) {
	b := acquire()
	c.adopt(b)
}

func releasedBeforeStoreIsOnlyUseAfter(c *cache) {
	b := acquire()
	b.Release()
	c.held = b // want "use of batch b after it was released"
}
