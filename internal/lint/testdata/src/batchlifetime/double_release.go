package engine

import "pref/internal/batch"

func doubleRelease() {
	b := acquire()
	b.Release()
	b.Release() // want "double release"
}

func doubleReleaseInterproc() {
	b := acquire()
	consumeBatch(b)
	b.Release() // want "double release"
}

func releaseOnBothArms(cond bool) {
	b := acquire()
	if cond {
		b.Release()
	} else {
		b.Release()
	}
	// joined state is released-on-every-path, but there is no further
	// release or use, so nothing is reported
}

func branchReleaseThenJoinIsNotFlagged(cond bool) {
	b := acquire()
	if cond {
		b.Release()
		return
	}
	b.Release() // the may-analysis join never reaches here released
}

func releaseAllThenRelease() {
	bs := []*batch.Batch{acquire()}
	batch.ReleaseAll(bs)
	batch.ReleaseAll(bs) // want "double release"
}
