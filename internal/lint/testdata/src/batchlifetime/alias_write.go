package engine

import "pref/internal/batch"

func writeThroughColsView(b *batch.Batch) {
	cols := b.Cols
	cols[0][0] = 7 // want "mutates pooled batch storage"
}

func writeThroughSelView(b *batch.Batch) {
	sel := b.Sel
	sel[0] = 3 // want "mutates pooled batch storage"
}

func writeThroughChainedView(b *batch.Batch) {
	cols := b.Cols
	c0 := cols[0]
	c0[1] = 9 // want "mutates pooled batch storage"
}

func appendThroughView(b *batch.Batch) []int64 {
	c0 := b.Cols[0]
	c0 = append(c0, 1) // want "mutates pooled batch storage"
	return c0
}

func incrementThroughView(b *batch.Batch) {
	c0 := b.Cols[0]
	c0[0]++ // want "mutates pooled batch storage"
}

func freshColumnIsWritable() []int64 {
	c := make([]int64, 4)
	c[0] = 1
	return c
}

func copiedColumnIsWritable(b *batch.Batch) []int64 {
	c := append([]int64(nil), b.Cols[0]...)
	c[0] = 1
	return c
}

func readingViewsIsFine(b *batch.Batch) int64 {
	cols := b.Cols
	s := int64(0)
	for _, col := range cols {
		for _, v := range col {
			s += v
		}
	}
	return s
}
