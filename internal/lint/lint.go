// Package lint is a small, stdlib-only static-analysis framework plus the
// repository's custom analyzers. The API is shaped like
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic) so the
// analyzers could be ported to a real go/analysis driver verbatim, but it
// runs on go/ast + go/parser + go/types + go/importer alone: this
// repository builds with no external modules, so the x/tools dependency is
// deliberately gated out. Loader (loader.go) stands in for go/packages,
// type-checking module packages from source, so every analyzer sees full
// type information.
//
// The analyzers encode this codebase's own correctness rules:
//
//   - invariantpanic: panics and Must* shortcuts are reserved for declared
//     programmer-error invariants; each site needs a "// lint:invariant"
//     marker, and execution-path packages may not call Must* at all.
//   - ctxthread: per-partition work in the engine/fault execution paths
//     must thread the query's context.Context; minting a fresh
//     context.Background()/TODO() deep in the call tree would detach that
//     work from the query's deadline and cancellation.
//   - propalias: plan.Prop's []string property fields (HashCols, DupCols)
//     must be cloned, not aliased, when copied between props or from plan
//     nodes; an append through one alias silently corrupts the other.
//   - partownership: per-partition state may only be indexed by the
//     owning partition's id; cross-partition access lives only in
//     functions declared "// lint:ship-boundary".
//   - batchownership: columnar batches are immutable outside the batch
//     package; operators narrow with fresh selection vectors or write
//     into new batches, never through a batch they received.
//   - atomicdiscipline: a struct field accessed through sync/atomic
//     anywhere must be accessed atomically everywhere.
//   - goroutinescope: every goroutine in the execution packages joins a
//     WaitGroup and can observe the query's cancellation.
//   - shipaccounting: code that moves rows across partitions meters them
//     in both engine.Stats and the execution trace, and is declared a
//     ship boundary.
//
// The protocol analyzers (publishorder, snapshotdiscipline,
// intentprotocol, happensbefore) go beyond per-statement checks: they run
// on the intraprocedural CFG/dataflow substrate in internal/lint/cfg
// (basic blocks, dominance, reaching definitions, typestate machines) and
// verify the write-path ordering protocols PR 6 introduced:
//
//   - publishorder: no mutation of version-visible state on any path after
//     the atomic epoch store — the publish is a release point, so all
//     bookkeeping must precede it.
//   - snapshotdiscipline: engine/cluster read-side code reaches table
//     state only through a pinned DBSnapshot, never the live COW head
//     (aliases of the head are traced to their uses via reaching defs).
//   - intentprotocol: plan→intend→apply→publish typestate over the
//     bulk-load path; mutations must be dominated by an intent record and
//     no path may strand an open intent.
//   - happensbefore: a plain access to a field annotated
//     "lint:guarded-by <g>" must be dominated by the guard's atomic load
//     or lock acquisition on every path.
//
// batchlifetime goes one step further: it is interprocedural. Every
// function gets an ownership contract over its batch-typed parameters and
// results (consume / borrow / escape / returns-alias, fresh / alias),
// solved bottom-up over the package call graph with an SCC fixpoint for
// recursion (internal/lint/cfg's CallGraph + Summary), and each body is
// then checked flow-sensitively against its callees' contracts: pooled
// batches must be released exactly once on every path, never used after
// release, never escape while owned, and never be written through
// zero-copy views. lint:batch-owner / lint:batch-borrow markers declare
// contracts at trust boundaries.
//
// Suppressions: a "//lint:ignore <analyzer> <reason>" comment on the
// diagnostic's line or the line above silences that analyzer there. A
// reason is mandatory; a malformed directive is itself a diagnostic.
//
// cmd/preflint is the driver; internal/check's RulePropAlias is the
// runtime complement of propalias.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one package's parsed, comment-preserving syntax plus its
// full type information to an analyzer run.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Dir       string
	reports   *[]Diagnostic
	current   string // analyzer name, set by the runner
}

// PkgName is the package's short name, e.g. "engine".
func (p *Pass) PkgName() string { return p.Pkg.Name() }

// Report records a finding at the given node.
func (p *Pass) Report(n ast.Node, format string, args ...any) {
	*p.reports = append(*p.reports, Diagnostic{
		Pos:      p.Fset.Position(n.Pos()),
		Analyzer: p.current,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named, documented check over a package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Analyzers is the repository's full analyzer suite, in the order the
// driver runs them.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		InvariantPanic, CtxThread, PropAlias,
		PartOwnership, BatchOwnership, AtomicDiscipline, GoroutineScope, ShipAccounting,
		PublishOrder, SnapshotDiscipline, IntentProtocol, HappensBefore,
		BatchLifetime,
	}
}

// defaultLoader shares one Loader (and thus one type-checked view of the
// module and the standard library) across RunDir/RunSource calls.
var defaultLoader = sync.OnceValues(func() (*Loader, error) {
	return NewLoader(".")
})

// RunDir type-checks the package of one directory (non-test files) and
// runs the analyzers over it. Diagnostics come back position-sorted, with
// lint:ignore suppressions already applied.
func RunDir(dir string, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunDirTimed(dir, analyzers, nil)
}

// RunDirTimed is RunDir with a per-analyzer wall-time sink: each analyzer's
// run time over the package is added to timings under its name. A nil sink
// records nothing.
func RunDirTimed(dir string, analyzers []*Analyzer, timings Timings) ([]Diagnostic, error) {
	l, err := defaultLoader()
	if err != nil {
		return nil, err
	}
	pkg, err := l.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, nil
	}
	return runPackage(pkg, analyzers, timings)
}

// RunSource analyzes a single in-memory file (test fixtures). The fixture
// must type-check on its own, importing at most the standard library.
func RunSource(filename, src string, analyzers []*Analyzer) ([]Diagnostic, error) {
	l, err := defaultLoader()
	if err != nil {
		return nil, err
	}
	pkg, err := l.LoadSource(filename, src)
	if err != nil {
		return nil, err
	}
	return RunPackage(pkg, analyzers)
}

// RunPackage runs the analyzers over one loaded package.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runPackage(pkg, analyzers, nil)
}

func runPackage(pkg *Package, analyzers []*Analyzer, timings Timings) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg,
		TypesInfo: pkg.Info, Dir: pkg.Dir, reports: &diags,
	}
	for _, a := range analyzers {
		pass.current = a.Name
		start := time.Now()
		err := a.Run(pass)
		timings.add(a.Name, time.Since(start))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	diags = applyIgnores(pass, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

// ignoreDirective is one parsed "//lint:ignore <analyzer> <reason>".
type ignoreDirective struct {
	analyzer string
	reason   string
}

// applyIgnores drops diagnostics suppressed by a lint:ignore directive on
// their own line or the line above, and reports malformed directives.
func applyIgnores(p *Pass, diags []Diagnostic) []Diagnostic {
	ignores := map[string]map[int][]ignoreDirective{} // file -> line -> directives
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				text := strings.TrimPrefix(cm.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "lint:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(cm.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: "directive",
						Message:  "malformed lint:ignore: need \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				if ignores[pos.Filename] == nil {
					ignores[pos.Filename] = map[int][]ignoreDirective{}
				}
				ignores[pos.Filename][pos.Line] = append(ignores[pos.Filename][pos.Line],
					ignoreDirective{analyzer: fields[0], reason: strings.Join(fields[1:], " ")})
			}
		}
	}
	if len(ignores) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, dir := range ignores[d.Pos.Filename][line] {
				if dir.analyzer == d.Analyzer {
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// markerLines returns every line covered by a comment containing the given
// marker (e.g. "lint:invariant"), in any comment group of any file.
func markerLines(p *Pass, marker string) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if !strings.Contains(cm.Text, marker) {
					continue
				}
				pos := p.Fset.Position(cm.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = map[int]bool{}
				}
				out[pos.Filename][pos.Line] = true
			}
		}
	}
	return out
}

// sanctioned reports whether a node carries the marker on its own line or
// the line directly above (the conventional placement).
func sanctioned(p *Pass, marked map[string]map[int]bool, n ast.Node) bool {
	pos := p.Fset.Position(n.Pos())
	lines := marked[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// shipBoundaryMarker is the declaration that a function legitimately moves
// or reads rows across partition boundaries (exchanges, shipment metering,
// redundancy recovery, coordinator-side assembly). Grammar:
//
//	// lint:ship-boundary <reason>
//
// placed in the function's doc comment. partownership exempts marked
// functions from the own-partition indexing rule; shipaccounting requires
// the marker on functions that call the ship meters.
const shipBoundaryMarker = "lint:ship-boundary"

// isShipBoundary reports whether a function declaration is marked as a
// sanctioned ship boundary in its doc comment.
func isShipBoundary(fn *ast.FuncDecl) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	for _, cm := range fn.Doc.List {
		if strings.Contains(cm.Text, shipBoundaryMarker) {
			return true
		}
	}
	return false
}

// PackageDirs walks root and returns every directory containing at least
// one non-test .go file, skipping VCS metadata and testdata trees. Shared
// by the preflint driver and the module-wide self-test.
func PackageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "vendor":
				return filepath.SkipDir
			}
			return nil
		}
		if filepath.Ext(path) != ".go" || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	return dirs, err
}
