// Package lint is a small, stdlib-only static-analysis framework plus the
// repository's custom analyzers. The API is shaped like
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic) so the
// analyzers could be ported to a real go/analysis driver verbatim, but it
// runs on go/ast + go/parser alone: this repository builds with no
// external modules, so the x/tools dependency is deliberately gated out.
// The trade-off is purely syntactic analysis (no type information), which
// the rules below are designed around.
//
// The analyzers encode this codebase's own correctness rules:
//
//   - invariantpanic: panics and Must* shortcuts are reserved for declared
//     programmer-error invariants; each site needs a "// lint:invariant"
//     marker, and execution-path packages may not call Must* at all.
//   - ctxthread: per-partition work in the engine/fault execution paths
//     must thread the query's context.Context; minting a fresh
//     context.Background()/TODO() deep in the call tree would detach that
//     work from the query's deadline and cancellation.
//   - propalias: plan.Prop's []string property fields (HashCols, DupCols)
//     must be cloned, not aliased, when copied between props or from plan
//     nodes; an append through one alias silently corrupts the other.
//
// cmd/preflint is the driver; internal/check's RulePropAlias is the
// runtime complement of propalias.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one package's parsed, comment-preserving syntax to an
// analyzer run.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     string // package name, e.g. "engine"
	Dir     string
	reports *[]Diagnostic
	current string // analyzer name, set by the runner
}

// Report records a finding at the given node.
func (p *Pass) Report(n ast.Node, format string, args ...any) {
	*p.reports = append(*p.reports, Diagnostic{
		Pos:      p.Fset.Position(n.Pos()),
		Analyzer: p.current,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named, documented check over a package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Analyzers is the repository's full analyzer suite, in the order the
// driver runs them.
func Analyzers() []*Analyzer {
	return []*Analyzer{InvariantPanic, CtxThread, PropAlias}
}

// RunDir parses every non-test .go file of one directory (one package) and
// runs the analyzers over it. Diagnostics come back sorted by position.
func RunDir(dir string, analyzers []*Analyzer) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	pkgName := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		pkgName = f.Name.Name
	}
	if len(files) == 0 {
		return nil, nil
	}
	return runFiles(fset, files, pkgName, dir, analyzers)
}

func runFiles(fset *token.FileSet, files []*ast.File, pkg, dir string, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{Fset: fset, Files: files, Pkg: pkg, Dir: dir, reports: &diags}
	for _, a := range analyzers {
		pass.current = a.Name
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

// RunSource analyzes a single in-memory file (test fixtures).
func RunSource(filename, src string, analyzers []*Analyzer) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return runFiles(fset, []*ast.File{f}, f.Name.Name, ".", analyzers)
}

// markerLines returns every line covered by a comment containing the given
// marker (e.g. "lint:invariant"), in any comment group of any file.
func markerLines(p *Pass, marker string) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if !strings.Contains(cm.Text, marker) {
					continue
				}
				pos := p.Fset.Position(cm.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = map[int]bool{}
				}
				out[pos.Filename][pos.Line] = true
			}
		}
	}
	return out
}

// sanctioned reports whether a node carries the marker on its own line or
// the line directly above (the conventional placement).
func sanctioned(p *Pass, marked map[string]map[int]bool, n ast.Node) bool {
	pos := p.Fset.Position(n.Pos())
	lines := marked[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}
