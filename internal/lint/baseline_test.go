package lint

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBaselineFilter(t *testing.T) {
	diags := sampleDiags()
	b := &Baseline{Findings: []BaselineEntry{
		{
			File:     "internal/engine/engine.go",
			Analyzer: "partownership",
			Message:  "evalX indexes per-partition state out outside its own partition",
		},
		{
			File:     "internal/gone/gone.go",
			Analyzer: "ctxthread",
			Message:  "a finding that no longer exists",
		},
	}}
	fresh, stale := b.Filter(diags)
	if len(fresh) != 1 || fresh[0].Analyzer != "atomicdiscipline" {
		t.Errorf("fresh = %v, want only the atomicdiscipline finding", fresh)
	}
	if len(stale) != 1 || stale[0].File != "internal/gone/gone.go" {
		t.Errorf("stale = %v, want only the paid-off entry", stale)
	}
}

func TestBaselineEmptyPassesEverything(t *testing.T) {
	fresh, stale := (&Baseline{}).Filter(sampleDiags())
	if len(fresh) != 2 || len(stale) != 0 {
		t.Errorf("empty baseline: fresh=%d stale=%d, want 2/0", len(fresh), len(stale))
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, sampleDiags()); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 2 {
		t.Fatalf("round trip lost findings: %v", b.Findings)
	}
	// Sorted by file: atomicdiscipline's trace finding comes second.
	if b.Findings[0].File != "internal/engine/engine.go" || b.Findings[1].Analyzer != "atomicdiscipline" {
		t.Errorf("baseline not sorted: %+v", b.Findings)
	}
	// A written-then-loaded baseline suppresses exactly what it recorded,
	// line numbers not considered.
	moved := sampleDiags()
	for i := range moved {
		moved[i].Pos.Line += 100
	}
	fresh, stale := b.Filter(moved)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("line-shifted findings should still match: fresh=%v stale=%v", fresh, stale)
	}
}

func TestLoadBaselineEmptyPath(t *testing.T) {
	b, err := LoadBaseline("")
	if err != nil || len(b.Findings) != 0 {
		t.Fatalf("empty path must mean empty baseline, got %v, %v", b, err)
	}
}

func TestLoadBaselineBadJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("want error for malformed baseline")
	}
}
