package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"pref/internal/lint/cfg"
)

// batchScope is the flow-insensitive half of batchlifetime's analysis of
// one function body: which local variables may alias which others
// (origins), which were produced fresh, which plain slices are views into
// batch storage (derived), and where batches are consumed or escape. The
// flow-sensitive typestate pass (batchlifetime.go) and the summary
// computation (batchsummary.go) both read it. Aliasing is deliberately
// may-analysis over assignments: it is used to *discharge* obligations
// (returning an alias hands the underlying batches to the caller), so
// over-approximating keeps false positives out at the cost of missing
// some leaks.
type batchScope struct {
	p      *Pass
	lookup func(*types.Func) *cfg.Summary

	origins map[*types.Var]varset // v may alias/contain these vars
	fresh   varset                // some def is a fresh (caller-owned) batch
	tracked varset                // every tracked var mentioned
	derived varset                // plain slices aliasing batch storage

	consumed []event // consume events (roots per call argument)
	escaped  []event // escape events (field store, send, go capture)

	sliceDefs []sliceDef // slice-kind assignments, for the derived fixpoint
}

// event is one consume/escape occurrence and the root vars it affects.
type event struct {
	at    ast.Node
	roots varset
}

type sliceDef struct {
	v   *types.Var
	rhs ast.Expr
}

func newBatchScope(p *Pass, lookup func(*types.Func) *cfg.Summary) *batchScope {
	return &batchScope{
		p: p, lookup: lookup,
		origins: map[*types.Var]varset{},
		fresh:   varset{}, tracked: varset{}, derived: varset{},
	}
}

// trackedVar resolves an identifier to the tracked variable it names.
func (sc *batchScope) trackedVar(id *ast.Ident) *types.Var {
	obj := sc.p.TypesInfo.Uses[id]
	if obj == nil {
		obj = sc.p.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || !isTrackedBatch(v.Type()) {
		return nil
	}
	return v
}

// collect walks one function body (a *ast.FuncDecl or *ast.FuncLit)
// accumulating edges and events. With skipFuncLits the walk stays inside
// the lexical function (nested literals are separate scopes for the
// typestate pass); without it, closures count toward the enclosing
// function (the summary view: what can calling this function do).
func (sc *batchScope) collect(fn ast.Node, skipFuncLits bool) {
	var body *ast.BlockStmt
	switch d := fn.(type) {
	case *ast.FuncDecl:
		body = d.Body
	case *ast.FuncLit:
		body = d.Body
	}
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return !skipFuncLits
		case *ast.Ident:
			if v := sc.trackedVar(n); v != nil {
				sc.tracked.add(v)
			}
		case *ast.AssignStmt:
			sc.collectAssign(n)
		case *ast.RangeStmt:
			sc.collectRange(n)
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					sc.collectDef(name, n.Values[i], 0)
				}
			}
		case *ast.CallExpr:
			sc.collectCall(n)
		case *ast.SendStmt:
			if roots := sc.rootVars(n.Value); len(roots) > 0 {
				sc.escaped = append(sc.escaped, event{n, roots})
			}
		case *ast.GoStmt:
			roots := varset{}
			for _, a := range n.Call.Args {
				roots.addAll(sc.rootVars(a))
			}
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				roots.addAll(sc.capturedTracked(lit))
			}
			if len(roots) > 0 {
				sc.escaped = append(sc.escaped, event{n, roots})
			}
		}
		return true
	})
	// Derived-slice fixpoint: storage views propagate through plain slice
	// assignment chains (c := b.Cols; d := c; d[0][i] = ...).
	for changed := true; changed; {
		changed = false
		for _, d := range sc.sliceDefs {
			if !sc.derived[d.v] && sc.derivesStorage(d.rhs) {
				sc.derived.add(d.v)
				changed = true
			}
		}
	}
}

// collectDef records one definition of a plain identifier: alias origins
// and freshness for tracked vars, storage derivation for plain slices.
// pos is the callee result position when rhs is a multi-value call.
func (sc *batchScope) collectDef(lhs ast.Expr, rhs ast.Expr, pos int) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if v := sc.trackedVar(id); v != nil {
		sc.tracked.add(v)
		if sc.origins[v] == nil {
			sc.origins[v] = varset{}
		}
		sc.origins[v].addAll(sc.rootVars(rhs))
		if sc.isFreshCall(rhs, pos) {
			sc.fresh.add(v)
		}
		return
	}
	// Plain storage-kind slices participate only in the derived set.
	obj := sc.p.TypesInfo.Uses[id]
	if obj == nil {
		obj = sc.p.TypesInfo.Defs[id]
	}
	if v, ok := obj.(*types.Var); ok && !v.IsField() && isStorageSlice(v.Type()) {
		sc.sliceDefs = append(sc.sliceDefs, sliceDef{v, rhs})
	}
}

func (sc *batchScope) collectAssign(as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		rhs, pos := as.Rhs[0], i
		if len(as.Lhs) == len(as.Rhs) {
			rhs, pos = as.Rhs[i], 0
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			sc.collectDef(l, rhs, pos)
		case *ast.IndexExpr, *ast.StarExpr:
			// Absorb: writing a tracked value into a tracked container
			// (out[p] = bs) moves the obligation into the container.
			for d := range sc.rootVars(l.(ast.Expr)) {
				if sc.origins[d] == nil {
					sc.origins[d] = varset{}
				}
				sc.origins[d].addAll(sc.rootVars(rhs))
			}
		case *ast.SelectorExpr:
			// Storing a tracked value into a struct field is an escape.
			if fieldObj(sc.p, l) != nil {
				if roots := sc.rootVars(rhs); len(roots) > 0 {
					sc.escaped = append(sc.escaped, event{as, roots})
				}
			}
		}
	}
}

func (sc *batchScope) collectRange(r *ast.RangeStmt) {
	for _, e := range []ast.Expr{r.Key, r.Value} {
		if e == nil {
			continue
		}
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if v := sc.trackedVar(id); v != nil {
			sc.tracked.add(v)
			if sc.origins[v] == nil {
				sc.origins[v] = varset{}
			}
			sc.origins[v].addAll(sc.rootVars(r.X))
		} else if obj, ok := sc.p.TypesInfo.Defs[id].(*types.Var); ok && isStorageSlice(obj.Type()) {
			sc.sliceDefs = append(sc.sliceDefs, sliceDef{obj, r.X})
		}
	}
}

func (sc *batchScope) collectCall(call *ast.CallExpr) {
	sum := sc.lookup(cfg.StaticCallee(sc.p.TypesInfo, call))
	if sum == nil {
		return
	}
	for _, slot := range sc.callArgSlots(call) {
		eff := sum.Param(slot.idx)
		if eff.Has(cfg.EffConsume) {
			if roots := sc.rootVars(slot.expr); len(roots) > 0 {
				sc.consumed = append(sc.consumed, event{call, roots})
			}
		}
		if eff.Has(cfg.EffEscape) {
			if roots := sc.rootVars(slot.expr); len(roots) > 0 {
				sc.escaped = append(sc.escaped, event{call, roots})
			}
		}
	}
}

// argSlot pairs one call argument (or method receiver) with its position
// in the callee's summary.
type argSlot struct {
	expr ast.Expr
	idx  int
}

// callArgSlots maps a call's receiver and arguments onto callee summary
// positions (receiver at 0 when present; variadic args clamp to the final
// parameter).
func (sc *batchScope) callArgSlots(call *ast.CallExpr) []argSlot {
	fn := cfg.StaticCallee(sc.p.TypesInfo, call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	nslots := len(summarySlots(sig))
	if nslots == 0 {
		return nil
	}
	var out []argSlot
	base := 0
	if sig.Recv() != nil {
		base = 1
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if tv, ok := sc.p.TypesInfo.Types[sel.X]; ok && tv.IsType() {
				base = 0 // method expression: receiver is the first argument
			} else {
				out = append(out, argSlot{sel.X, 0})
			}
		}
	}
	for i, a := range call.Args {
		idx := base + i
		if idx >= nslots {
			idx = nslots - 1 // variadic spread shares the final slot
		}
		out = append(out, argSlot{a, idx})
	}
	return out
}

// rootVars returns the tracked variables an expression's value may be
// rooted in (alias or contain) — the unit the discharge and escape logic
// works on. Calls contribute the arguments their callee declares
// returns-alias for (every tracked argument when the callee is unknown),
// plus the captured tracked vars of any function-literal argument: a
// closure's result may hold whatever the closure can see.
func (sc *batchScope) rootVars(e ast.Expr) varset {
	roots := varset{}
	sc.addRoots(roots, e)
	return roots
}

func (sc *batchScope) addRoots(roots varset, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		if v := sc.trackedVar(e); v != nil {
			roots.add(v)
		}
	case *ast.ParenExpr:
		sc.addRoots(roots, e.X)
	case *ast.StarExpr:
		sc.addRoots(roots, e.X)
	case *ast.UnaryExpr:
		sc.addRoots(roots, e.X)
	case *ast.TypeAssertExpr:
		sc.addRoots(roots, e.X)
	case *ast.IndexExpr:
		sc.addRoots(roots, e.X)
	case *ast.IndexListExpr:
		sc.addRoots(roots, e.X)
	case *ast.SliceExpr:
		sc.addRoots(roots, e.X)
	case *ast.SelectorExpr:
		sc.addRoots(roots, e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			sc.addRoots(roots, el)
		}
	case *ast.CallExpr:
		sc.addCallRoots(roots, e)
	}
}

func (sc *batchScope) addCallRoots(roots varset, call *ast.CallExpr) {
	if isBuiltinAppend(sc.p, call) {
		for _, a := range call.Args {
			sc.addRoots(roots, a)
		}
		return
	}
	fn := cfg.StaticCallee(sc.p.TypesInfo, call)
	sum := sc.lookup(fn)
	if sum != nil {
		for _, slot := range sc.callArgSlots(call) {
			if sum.Param(slot.idx).Has(cfg.EffReturnsAlias) {
				sc.addRoots(roots, slot.expr)
			}
		}
	} else {
		// Unknown callee: any tracked argument may flow into the result.
		args := call.Args
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			sc.addRoots(roots, sel.X)
		}
		for _, a := range args {
			if isTrackedBatch(exprType(sc.p, a)) {
				sc.addRoots(roots, a)
			}
		}
	}
	for _, a := range call.Args {
		if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
			roots.addAll(sc.capturedTracked(lit))
		}
	}
}

// capturedTracked returns the tracked variables a function literal
// captures from its enclosing scope (declared outside the literal).
func (sc *batchScope) capturedTracked(lit *ast.FuncLit) varset {
	out := varset{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := sc.p.TypesInfo.Uses[id].(*types.Var); ok && !v.IsField() &&
			isTrackedBatch(v.Type()) && (v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			out.add(v)
		}
		return true
	})
	return out
}

// closure expands a root set transitively through the origin edges,
// including the roots themselves.
func (sc *batchScope) closure(roots varset) varset {
	out := varset{}
	var walk func(v *types.Var)
	walk = func(v *types.Var) {
		if out[v] {
			return
		}
		out[v] = true
		for o := range sc.origins[v] {
			walk(o)
		}
	}
	for v := range roots {
		walk(v)
	}
	return out
}

// isFreshCall reports whether rhs is a call whose result at pos is a
// fresh caller-owned batch.
func (sc *batchScope) isFreshCall(rhs ast.Expr, pos int) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	sum := sc.lookup(cfg.StaticCallee(sc.p.TypesInfo, call))
	return sum.Result(pos) == cfg.ResFresh
}

// classifyValue classifies one returned expression for the summary:
// fresh-call results are fresh, anything rooted in a parameter slot is an
// alias (marking the slot returns-alias via markAlias), purely fresh local
// provenance is fresh, everything else aliases conservatively.
func (sc *batchScope) classifyValue(e ast.Expr, pos int, slotIdx map[*types.Var]int, markAlias func(int)) cfg.ResultKind {
	if sc.isFreshCall(e, pos) {
		return cfg.ResFresh
	}
	roots := sc.closure(sc.rootVars(e))
	alias := false
	for v := range roots {
		if i, ok := slotIdx[v]; ok {
			markAlias(i)
			alias = true
		}
	}
	if alias {
		return cfg.ResAlias
	}
	if len(roots) > 0 {
		allFresh := true
		for v := range roots {
			if !sc.fresh[v] {
				allFresh = false
			}
		}
		if allFresh {
			return cfg.ResFresh
		}
	}
	return cfg.ResAlias
}

// derivesStorage reports whether an expression reaches into a batch's
// backing storage: a .Cols/.Sel selector on a batch-typed expression, or
// a chain through an already-derived slice variable.
func (sc *batchScope) derivesStorage(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := sc.p.TypesInfo.Uses[e].(*types.Var); ok {
			return sc.derived[v]
		}
	case *ast.SelectorExpr:
		if (e.Sel.Name == "Cols" || e.Sel.Name == "Sel") && isBatchType(exprType(sc.p, e.X)) {
			return true
		}
		return sc.derivesStorage(e.X)
	case *ast.ParenExpr:
		return sc.derivesStorage(e.X)
	case *ast.StarExpr:
		return sc.derivesStorage(e.X)
	case *ast.IndexExpr:
		return sc.derivesStorage(e.X)
	case *ast.SliceExpr:
		return sc.derivesStorage(e.X)
	}
	return false
}

// rootDerived resolves the derived slice variable at the base of an index
// chain (c[i], cols[0][i]), or nil.
func (sc *batchScope) rootDerived(e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if v, ok := sc.p.TypesInfo.Uses[x].(*types.Var); ok && sc.derived[v] {
				return v
			}
			return nil
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isStorageSlice reports whether t is the shape of batch backing storage:
// a (nested) slice of int64 or int32.
func isStorageSlice(t types.Type) bool {
	t = types.Unalias(t)
	depth := 0
	for depth < 2 {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			break
		}
		t = types.Unalias(s.Elem())
		depth++
	}
	if depth == 0 {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Int64 || b.Kind() == types.Int32)
}

// isBuiltinAppend recognizes the append builtin.
func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// importsBatchPkg reports whether the package under analysis imports the
// batch package at all — everything else cannot mention a tracked type.
func importsBatchPkg(p *Pass) bool {
	for _, im := range p.Pkg.Imports() {
		if strings.HasSuffix(im.Path(), batchPkgSuffix) {
			return true
		}
	}
	return false
}
