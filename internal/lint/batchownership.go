package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// BatchOwnership statically pins the columnar engine's batch-ownership
// rule (see package batch): a batch's columns and selection vector may be
// shared zero-copy with table storage and with every downstream operator,
// so the only code allowed to write through a Batch is the batch package
// itself (its Writer, kernels, and pool own the backing arrays they hand
// out). Everywhere else, a filter narrows by allocating a fresh selection
// vector and a projection writes into a new batch — any assignment through
// batch-reachable state (b.Sel = …, b.Cols[c] = …, b.Cols[c][i] = …)
// outside the batch package is a latent aliasing bug: it would rewrite
// rows under a concurrent query sharing the same storage view, or under a
// retried/hedged attempt replaying the same input.
var BatchOwnership = &Analyzer{
	Name: "batchownership",
	Doc:  "only the batch package may write through a Batch; operators narrow with fresh selection vectors or write into new batches",
	Run:  runBatchOwnership,
}

// batchPkgSuffix identifies the owning package by import path, so the rule
// exempts it (and applies to every other package in the module).
const batchPkgSuffix = "internal/batch"

func runBatchOwnership(p *Pass) error {
	if strings.HasSuffix(p.Pkg.Path(), batchPkgSuffix) {
		return nil // the batch package owns its internals
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkBatchWrite(p, n, lhs)
				}
			case *ast.IncDecStmt:
				checkBatchWrite(p, n, n.X)
			case *ast.UnaryExpr:
				// &b.Cols[c] escapes a mutable reference to shared state;
				// treat taking the address of batch internals as a write.
				if n.Op.String() == "&" {
					checkBatchWrite(p, n, n.X)
				}
			}
			return true
		})
	}
	return nil
}

// checkBatchWrite reports when the written expression reaches its target
// through a Batch: the LHS chain (selectors, indexes, derefs) contains a
// strict sub-expression of type batch.Batch or *batch.Batch. Rebinding a
// batch variable itself (b = …) is fine — that writes the variable, not
// the shared arrays behind it.
func checkBatchWrite(p *Pass, at ast.Node, lhs ast.Expr) {
	for {
		var x ast.Expr
		switch e := lhs.(type) {
		case *ast.SelectorExpr:
			x = e.X
		case *ast.IndexExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		case *ast.ParenExpr:
			lhs = e.X
			continue
		default:
			return
		}
		if isBatchType(exprType(p, x)) {
			p.Report(at, "write through batch %s violates batch ownership; narrow with a fresh selection vector or write into a new batch (see package batch)",
				batchExprString(x))
			return
		}
		lhs = x
	}
}

// batchExprString renders the batch-typed expression for diagnostics,
// including simple index chains (bs[0], w.cur).
func batchExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return batchExprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return batchExprString(e.X)
	case *ast.StarExpr:
		return batchExprString(e.X)
	case *ast.IndexExpr:
		if idx, ok := e.Index.(*ast.BasicLit); ok {
			return batchExprString(e.X) + "[" + idx.Value + "]"
		}
		if idx, ok := e.Index.(*ast.Ident); ok {
			return batchExprString(e.X) + "[" + idx.Name + "]"
		}
		return batchExprString(e.X) + "[...]"
	}
	return "it"
}

// isBatchType reports whether t is batch.Batch or a pointer to it.
func isBatchType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Batch" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), batchPkgSuffix)
}
