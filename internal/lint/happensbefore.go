package lint

import (
	"go/ast"
	"go/types"

	"pref/internal/lint/cfg"
)

// HappensBefore upgrades atomicdiscipline from "same field, same access
// kind" to an ordering rule: a struct field annotated
// "// lint:guarded-by <guard>..." may only be accessed on paths where one
// of the named sibling guard fields was acquired first — an atomic field's
// Load (the acquire edge matching the publisher's Store) or a mutex's
// Lock/RLock. This is the epoch-guard idiom of table.Partitioned: `shared`
// is meaningful only relative to the published epoch, so reading it before
// the atomic load of `pub` races with publication even though every
// individual access is simple. The check is path-sensitive dominance over
// the CFG, not text order: an access is flagged exactly when SOME path
// reaches it without passing an acquire. Functions whose callers hold a
// guard declare "// lint:holds <guard>...".
var HappensBefore = &Analyzer{
	Name: "happensbefore",
	Doc:  "plain access to an epoch-guarded field must be dominated by the guard's atomic load or lock acquisition",
	Run:  runHappensBefore,
}

const (
	hbEvAcquire = iota
	hbEvRelease
	hbEvAccess
)

func runHappensBefore(p *Pass) error {
	guards := collectGuardedFields(p)
	if len(guards) == 0 {
		return nil
	}
	eachFuncDecl(p, func(fn *ast.FuncDecl) {
		checkHappensBefore(p, fn, guards)
	})
	return nil
}

// collectGuardedFields parses lint:guarded-by annotations off struct field
// docs: guarded field object -> names of its sibling guard fields.
func collectGuardedFields(p *Pass) map[*types.Var][]string {
	out := map[*types.Var][]string{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				names := guardNames(field)
				if names == nil {
					continue
				}
				for _, id := range field.Names {
					if v, ok := p.TypesInfo.Defs[id].(*types.Var); ok {
						out[v] = names
					}
				}
			}
			return true
		})
	}
	return out
}

// guardNames extracts the guard list from a field's doc or line comment.
func guardNames(field *ast.Field) []string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, cm := range cg.List {
			if args, ok := markerArgs(cm.Text, guardedByMarker); ok && len(args) > 0 {
				return args
			}
		}
	}
	return nil
}

func checkHappensBefore(p *Pass, fn *ast.FuncDecl, guards map[*types.Var][]string) {
	held := map[string]bool{}
	if args, ok := funcMarkerArgs(fn, holdsMarker); ok {
		for _, a := range args {
			held[a] = true
		}
	}

	// Accesses in this function, grouped by (base object, guarded field):
	// each group runs its own acquire machine keyed on that base.
	type domain struct {
		base  types.Object
		field *types.Var
	}
	accessed := map[domain]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f := fieldObj(p, sel)
		if f == nil {
			return true
		}
		gs, guarded := guards[f]
		if !guarded || allHeld(gs, held) {
			return true
		}
		if base := recvBase(p, sel.X); base != nil {
			accessed[domain{base, f}] = true
		}
		return true
	})
	if len(accessed) == 0 {
		return
	}

	g := funcGraph(fn)
	for d := range accessed {
		guardSet := map[string]bool{}
		covered := false
		for _, name := range guards[d.field] {
			guardSet[name] = true
			if held[name] {
				covered = true
			}
		}
		if covered {
			continue
		}
		m := &cfg.Machine{
			Init: 0,
			Classify: func(n ast.Node) (int, bool) {
				return classifyGuardEvent(p, n, d.base, d.field, guardSet)
			},
			Step: func(state, event int) int {
				switch event {
				case hbEvAcquire:
					return 1
				case hbEvRelease:
					return 0
				}
				return state
			},
		}
		res := m.Run(g)
		for n, states := range res.Events {
			ev, _ := classifyGuardEvent(p, n, d.base, d.field, guardSet)
			if ev != hbEvAccess || !states.Has(0) {
				continue
			}
			p.Report(n, "access to %s is not dominated by an acquire of its guard (%s); a concurrent publish can change the epoch under this read",
				d.field.Name(), joinNames(guards[d.field]))
		}
	}
}

// classifyGuardEvent recognizes, relative to one (base, guarded field)
// domain: acquires of any listed guard on the same base (atomic Load,
// mutex Lock/RLock, atomic.LoadX(&base.g)), releases (Unlock/RUnlock),
// and accesses of the guarded field itself.
func classifyGuardEvent(p *Pass, n ast.Node, base types.Object, field *types.Var, guardSet map[string]bool) (int, bool) {
	switch n := n.(type) {
	case *ast.CallExpr:
		if recv, name := methodCall(n); recv != nil {
			sel, ok := recv.(*ast.SelectorExpr)
			if !ok || !guardSet[sel.Sel.Name] || recvBase(p, sel.X) != base {
				return 0, false
			}
			t := exprType(p, recv)
			switch name {
			case "Load", "CompareAndSwap", "Swap":
				if typeFromPkg(t, "sync/atomic") {
					return hbEvAcquire, true
				}
			case "Lock", "RLock":
				if typeFromPkg(t, "sync") {
					return hbEvAcquire, true
				}
			case "Unlock", "RUnlock":
				if typeFromPkg(t, "sync") {
					return hbEvRelease, true
				}
			}
			return 0, false
		}
		if pkgPath, name := calleePkgFunc(p, n); pkgPath == "sync/atomic" && len(n.Args) > 0 {
			if len(name) > 4 && name[:4] == "Load" {
				if sel := addressedField(n.Args[0]); sel != nil &&
					guardSet[sel.Sel.Name] && recvBase(p, sel.X) == base {
					return hbEvAcquire, true
				}
			}
		}
	case *ast.SelectorExpr:
		if fieldObj(p, n) == field && recvBase(p, n.X) == base {
			return hbEvAccess, true
		}
	}
	return 0, false
}

// allHeld reports whether any of the field's guards is declared held.
func allHeld(guards []string, held map[string]bool) bool {
	for _, g := range guards {
		if held[g] {
			return true
		}
	}
	return false
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " or "
		}
		out += n
	}
	return out
}
