package lint

import (
	"go/ast"
	"go/types"

	"pref/internal/lint/cfg"
)

// SnapshotDiscipline enforces the read-side half of the COW protocol:
// query execution and cluster code observe table state only through a
// pinned DBSnapshot (or the immutable Version it resolves), never through
// the live Partitioned head. The live head (`Partitioned.Parts`, and the
// write-path methods BeginWrite/Publish/ResetToPublished) may change under
// a reader mid-query; the epoch store in publishLocked is only a sound
// release point if readers acquire through the snapshot. The single pin
// point that legitimately falls back to the live head declares
// "// lint:snapshot-boundary <reason>". Aliases are tracked through
// reaching definitions: `ps := pt.Parts` is reported where ps is used, so
// the diagnostic lands on the read that actually escapes the snapshot.
var SnapshotDiscipline = &Analyzer{
	Name: "snapshotdiscipline",
	Doc:  "engine/cluster read-side code must reach table state through a pinned DBSnapshot, never the live COW head",
	Run:  runSnapshotDiscipline,
}

// liveWriteMethods are Partitioned's write-path entry points; calling them
// from read-side packages bypasses the snapshot protocol entirely.
var liveWriteMethods = map[string]bool{
	"BeginWrite":       true,
	"Publish":          true,
	"ResetToPublished": true,
}

func runSnapshotDiscipline(p *Pass) error {
	switch p.PkgName() {
	case "engine", "cluster":
	default:
		return nil
	}
	eachFuncDecl(p, func(fn *ast.FuncDecl) {
		if hasFuncMarker(fn, snapshotBoundaryMarker) {
			return
		}
		checkSnapshotDiscipline(p, fn)
	})
	return nil
}

func checkSnapshotDiscipline(p *Pass, fn *ast.FuncDecl) {
	// Live-head selectors (`x.Parts` with x a Partitioned) that are the
	// whole RHS of a simple alias assignment get reported at their uses via
	// reaching definitions instead of at the assignment, so the diagnostic
	// points at the read that escapes the snapshot.
	aliasDef := map[ast.Node]*ast.SelectorExpr{} // AssignStmt -> live-head RHS
	aliasVar := map[*types.Var]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		sel := liveHeadSelector(p, as.Rhs[0])
		if sel == nil {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		v := localVarOf(p, id)
		if v == nil {
			return true
		}
		aliasDef[ast.Node(as)] = sel
		aliasVar[v] = true
		return true
	})

	// Direct accesses: every live-head selector or write-path call not
	// consumed by an alias definition above.
	skip := map[*ast.SelectorExpr]bool{}
	for _, sel := range aliasDef {
		skip[sel] = true
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if recv, name := methodCall(n); recv != nil && liveWriteMethods[name] &&
				isNamedType(exprType(p, recv), "", "Partitioned") {
				p.Report(n, "read-side call to write-path method %s on the live table; mutations go through the bulk-load protocol, reads through a pinned snapshot", name)
			}
		case *ast.SelectorExpr:
			if skip[n] {
				return true
			}
			if sel := liveHeadSelector(p, n); sel == n {
				p.Report(n, "access to the live COW head %s; pin a DBSnapshot and read the published Version instead", selString(sel))
			}
		}
		return true
	})

	if len(aliasVar) == 0 {
		return
	}
	g := funcGraph(fn)
	r := g.ReachingDefs(p.TypesInfo, fn)
	reported := map[*ast.Ident]bool{}
	r.ForEachUse(func(id *ast.Ident, v *types.Var, defs []*cfg.Def) {
		if !aliasVar[v] || reported[id] {
			return
		}
		for _, d := range defs {
			if sel, ok := aliasDef[d.Node]; ok {
				reported[id] = true
				p.Report(id, "use of %s, aliased from the live COW head %s at %s; pin a DBSnapshot and read the published Version instead",
					v.Name(), selString(sel), p.Fset.Position(sel.Pos()))
				return
			}
		}
	})
}

// liveHeadSelector reports whether e is (after parens) a selector of the
// Parts field on a Partitioned value — the live COW head.
func liveHeadSelector(p *Pass, e ast.Expr) *ast.SelectorExpr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = pe.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Parts" {
		return nil
	}
	if fieldObj(p, sel) == nil {
		return nil // method value / call, e.g. snap.Parts(tbl)
	}
	if !isNamedType(exprType(p, sel.X), "", "Partitioned") {
		return nil
	}
	return sel
}

// localVarOf resolves an identifier to the local variable it defines or
// uses (nil for globals, fields, and non-variables).
func localVarOf(p *Pass, id *ast.Ident) *types.Var {
	var o types.Object
	if d, ok := p.TypesInfo.Defs[id]; ok {
		o = d
	} else if u, ok := p.TypesInfo.Uses[id]; ok {
		o = u
	}
	v, ok := o.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	return v
}

// selString renders `x.Sel` compactly for messages.
func selString(sel *ast.SelectorExpr) string {
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name + "." + sel.Sel.Name
	}
	return "." + sel.Sel.Name
}
