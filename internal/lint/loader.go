package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Loader parses and type-checks packages for the analyzers, one directory
// per package, with no dependencies outside the standard library:
//
//   - import paths inside the enclosing module resolve to module
//     directories and are type-checked from source by the Loader itself;
//   - every other path (the standard library) is delegated to
//     go/importer's source importer, which type-checks GOROOT/src.
//
// This is the piece x/tools' go/packages would normally provide; doing it
// by hand keeps the module dependency-free while giving every analyzer
// full go/types information.
type Loader struct {
	Fset *token.FileSet

	mu      sync.Mutex
	modPath string // module path from go.mod, e.g. "pref"
	modRoot string // absolute directory containing go.mod
	std     types.ImporterFrom
	pkgs    map[string]*types.Package // import path -> checked package
	byDir   map[string]*Package       // absolute dir -> loaded package
}

// Package is one loaded, type-checked package: the comment-preserving
// syntax trees plus full type information.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Dir   string
}

// NewLoader creates a loader rooted at the module containing dir (found by
// walking up to the nearest go.mod). Loading a directory outside any
// module still works for packages with only standard-library imports.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:  token.NewFileSet(),
		pkgs:  map[string]*types.Package{},
		byDir: map[string]*Package{},
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil).(types.ImporterFrom)
	root, path := findModule(abs)
	l.modRoot, l.modPath = root, path
	return l, nil
}

// findModule walks up from dir looking for go.mod and returns the module
// root directory and module path ("", "" when there is none).
func findModule(dir string) (root, path string) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest)
				}
			}
			return d, ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", ""
		}
		d = parent
	}
}

// importPathFor maps an absolute directory to its module import path, or a
// synthetic stand-alone path when the directory is outside the module.
func (l *Loader) importPathFor(dir string) string {
	if l.modRoot != "" {
		if rel, err := filepath.Rel(l.modRoot, dir); err == nil && !strings.HasPrefix(rel, "..") {
			if rel == "." {
				return l.modPath
			}
			return l.modPath + "/" + filepath.ToSlash(rel)
		}
	}
	return "standalone/" + filepath.Base(dir)
}

// LoadDir parses and type-checks the package in one directory (non-test
// files only). Returns nil when the directory holds no Go files.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if p, ok := l.byDir[abs]; ok {
		return p, nil
	}
	p, err := l.load(abs)
	if err != nil {
		return nil, err
	}
	l.byDir[abs] = p
	return p, nil
}

// LoadSource type-checks a single in-memory file (test fixtures). The
// fixture may import standard-library packages only.
func (l *Loader) LoadSource(filename, src string) (*Package, error) {
	f, err := parser.ParseFile(l.Fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.check("fixture/"+f.Name.Name, ".", []*ast.File{f})
}

// load parses and checks the package in abs; the caller holds l.mu.
func (l *Loader) load(abs string) (*Package, error) {
	files, err := l.parseDir(abs)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	return l.check(l.importPathFor(abs), abs, files)
}

// parseDir parses every non-test .go file of one directory, sorted by
// name for deterministic positions.
func (l *Loader) parseDir(abs string) ([]*ast.File, error) {
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check runs the type checker over one parsed package.
func (l *Loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var errs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, 3)
		for i, e := range errs {
			if i == 3 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(errs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("type-checking %s: %s", path, strings.Join(msgs, "; "))
	}
	return &Package{Fset: l.Fset, Files: files, Pkg: pkg, Info: info, Dir: dir}, nil
}

// loaderImporter adapts the Loader to types.Importer for resolving the
// imports of the package under analysis: module-internal paths from the
// module tree, everything else from the standard-library source importer.
// It is a distinct type so Loader's exported API stays clean.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.modPath != "" && (path == l.modPath || strings.HasPrefix(path, l.modPath+"/")) {
		dir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")))
		p, err := l.load(dir)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("no Go files in %s for import %q", dir, path)
		}
		l.pkgs[path] = p.Pkg
		return p.Pkg, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}
