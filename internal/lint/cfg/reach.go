package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Def is one definition site of a local variable: an assignment, short
// declaration, var spec, inc/dec, range key/value binding, or (at Entry)
// a parameter/receiver/named result.
type Def struct {
	ID    int
	Var   *types.Var
	Node  ast.Node // the defining statement/expression
	Block *Block
}

// DefSet is a set of definition IDs.
type DefSet map[int]bool

func (s DefSet) clone() DefSet {
	out := make(DefSet, len(s))
	for id := range s {
		out[id] = true
	}
	return out
}

func (s DefSet) equal(o DefSet) bool {
	if len(s) != len(o) {
		return false
	}
	for id := range s {
		if !o[id] {
			return false
		}
	}
	return true
}

// Reach is the reaching-definitions solution of one Graph: for every
// reachable block, the set of definitions live on entry.
type Reach struct {
	g    *Graph
	info *types.Info
	Defs []*Def
	In   map[*Block]DefSet
	// byVar indexes definitions by variable for kill sets.
	byVar map[*types.Var][]*Def
}

// ReachingDefs computes reaching definitions over the graph. decl supplies
// the parameter/receiver/result definitions seeded at Entry (may be nil).
func (g *Graph) ReachingDefs(info *types.Info, decl *ast.FuncDecl) *Reach {
	r := &Reach{g: g, info: info, In: map[*Block]DefSet{}, byVar: map[*types.Var][]*Def{}}

	addDef := func(v *types.Var, n ast.Node, b *Block) {
		d := &Def{ID: len(r.Defs), Var: v, Node: n, Block: b}
		r.Defs = append(r.Defs, d)
		r.byVar[v] = append(r.byVar[v], d)
	}
	if decl != nil {
		seed := func(fl *ast.FieldList) {
			if fl == nil {
				return
			}
			for _, f := range fl.List {
				for _, name := range f.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						addDef(v, name, g.Entry)
					}
				}
			}
		}
		seed(decl.Recv)
		if decl.Type != nil {
			seed(decl.Type.Params)
			seed(decl.Type.Results)
		}
	}
	reachable := g.Reachable()
	for _, b := range reachable {
		for _, n := range b.Nodes {
			r.collectDefs(n, b, addDef)
		}
	}

	// Per-block gen/kill: later in-block defs of a variable kill earlier
	// ones; all defs of a variable elsewhere are killed too.
	gen := map[*Block]DefSet{}
	killVars := map[*Block]map[*types.Var]bool{}
	for _, d := range r.Defs {
		if gen[d.Block] == nil {
			gen[d.Block] = DefSet{}
			killVars[d.Block] = map[*types.Var]bool{}
		}
		// A later def of the same var in the same block supersedes: drop
		// earlier gen entries for the var.
		for _, prev := range r.byVar[d.Var] {
			if prev.Block == d.Block && prev.ID < d.ID {
				delete(gen[d.Block], prev.ID)
			}
		}
		gen[d.Block][d.ID] = true
		killVars[d.Block][d.Var] = true
	}

	out := map[*Block]DefSet{}
	for _, b := range reachable {
		r.In[b] = DefSet{}
		out[b] = DefSet{}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range reachable {
			in := DefSet{}
			for _, p := range b.Preds {
				for id := range out[p] {
					in[id] = true
				}
			}
			o := in.clone()
			for v := range killVars[b] {
				for _, d := range r.byVar[v] {
					delete(o, d.ID)
				}
			}
			for id := range gen[b] {
				o[id] = true
			}
			if !in.equal(r.In[b]) || !o.equal(out[b]) {
				r.In[b] = in
				out[b] = o
				changed = true
			}
		}
	}
	return r
}

// collectDefs finds the definitions a single block node performs.
func (r *Reach) collectDefs(n ast.Node, b *Block, add func(*types.Var, ast.Node, *Block)) {
	defIdent := func(e ast.Expr, site ast.Node) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if v, ok := r.info.Defs[id].(*types.Var); ok {
			add(v, site, b)
			return
		}
		if v, ok := r.info.Uses[id].(*types.Var); ok && !v.IsField() {
			add(v, site, b)
		}
	}
	VisitExprs(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				defIdent(lhs, m)
			}
		case *ast.IncDecStmt:
			defIdent(m.X, m)
		case *ast.RangeStmt:
			if m.Tok == token.DEFINE || m.Tok == token.ASSIGN {
				defIdent(m.Key, m)
				defIdent(m.Value, m)
			}
		case *ast.ValueSpec:
			for _, name := range m.Names {
				defIdent(name, m)
			}
		}
		return true
	})
}

// ForEachUse walks every reachable block in order and calls visit for each
// identifier use of a local variable, passing the definitions of that
// variable reaching the use. Definitions are tracked statement-precisely
// inside the block (a def earlier in the block supersedes the block-entry
// set for its variable).
func (r *Reach) ForEachUse(visit func(id *ast.Ident, v *types.Var, defs []*Def)) {
	// Index defs by node for in-block replay.
	defsAt := map[ast.Node][]*Def{}
	for _, d := range r.Defs {
		defsAt[d.Node] = append(defsAt[d.Node], d)
	}
	for _, b := range r.g.Reachable() {
		cur := r.In[b].clone()
		apply := func(site ast.Node) {
			for _, d := range defsAt[site] {
				if d.Block != b {
					continue
				}
				for _, o := range r.byVar[d.Var] {
					delete(cur, o.ID)
				}
				cur[d.ID] = true
			}
		}
		for _, n := range b.Nodes {
			VisitExprs(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.AssignStmt, *ast.IncDecStmt, *ast.ValueSpec, *ast.RangeStmt:
					// Pre-order replay: the def is applied before the RHS
					// uses are visited, so a self-referential read (x = x+1)
					// sees the new def instead of the old one. No analyzer
					// here distinguishes the two, and keeping the replay
					// pre-order matches the typestate engine's walk.
					apply(m)
					return true
				case *ast.Ident:
					if v, ok := r.info.Uses[m].(*types.Var); ok && !v.IsField() {
						var reaching []*Def
						for _, d := range r.byVar[v] {
							if cur[d.ID] {
								reaching = append(reaching, d)
							}
						}
						if len(reaching) > 0 {
							visit(m, v, reaching)
						}
					}
				}
				return true
			})
		}
	}
}

// String renders block-entry reaching sets ("name@line") for goldens.
func (r *Reach) String(fset *token.FileSet) string {
	var sb strings.Builder
	for _, b := range r.g.Reachable() {
		ids := make([]int, 0, len(r.In[b]))
		for id := range r.In[b] {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		var parts []string
		for _, id := range ids {
			d := r.Defs[id]
			line := 0
			if fset != nil {
				line = fset.Position(d.Node.Pos()).Line
			}
			parts = append(parts, fmt.Sprintf("%s@L%d", d.Var.Name(), line))
		}
		// Deterministic secondary order: name then line.
		sort.Strings(parts)
		fmt.Fprintf(&sb, "  reach b%d: {%s}\n", b.Index, strings.Join(parts, " "))
	}
	return sb.String()
}
