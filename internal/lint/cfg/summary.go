package cfg

import (
	"fmt"
	"strings"
)

// Summary is the interprocedural unit the call-graph fixpoint solves for:
// what one function does to each tracked parameter and what each result is,
// abstracted to an ownership vocabulary. The substrate stays agnostic about
// *which* values are tracked — a client (e.g. the batchlifetime analyzer)
// decides which params/results carry a tracked type and leaves the rest at
// the zero value (borrow / untracked), so the lattice here is small and
// closed: effects only accumulate bits and result kinds only widen toward
// Alias, which is what makes Solve's fixpoint terminate.

// Effect is a bitmask describing what a callee may do to one argument.
// The zero value means the callee only borrows it: the argument is read
// during the call and the caller's ownership obligations are unchanged.
type Effect uint8

const (
	// EffConsume: the callee (on some path) releases the argument or
	// passes it to something that does — the caller's obligation to
	// release is discharged, and the value must not be used afterwards.
	EffConsume Effect = 1 << iota
	// EffEscape: the callee (on some path) stores the argument into state
	// that outlives the call — a struct field, global, channel, or
	// captured long-lived closure.
	EffEscape
	// EffReturnsAlias: some result of the callee may alias this argument's
	// backing storage, so releasing the argument invalidates the result
	// and vice versa.
	EffReturnsAlias
)

// Has reports whether e carries all bits of mask.
func (e Effect) Has(mask Effect) bool { return e&mask == mask }

// String renders the effect for dumps: "borrow" for the zero value, else
// the set bits joined with "+".
func (e Effect) String() string {
	if e == 0 {
		return "borrow"
	}
	var parts []string
	if e.Has(EffConsume) {
		parts = append(parts, "consume")
	}
	if e.Has(EffEscape) {
		parts = append(parts, "escape")
	}
	if e.Has(EffReturnsAlias) {
		parts = append(parts, "returns-alias")
	}
	return strings.Join(parts, "+")
}

// ResultKind classifies one result position of a callee.
type ResultKind uint8

const (
	// ResUntracked: the result is not a tracked value; callers ignore it.
	ResUntracked ResultKind = iota
	// ResFresh: the result is a newly acquired tracked value the caller
	// owns (and must eventually release).
	ResFresh
	// ResAlias: the result aliases existing storage (an argument's, or
	// state reachable from one) — the caller borrows it and must not
	// release it independently.
	ResAlias
)

func (k ResultKind) String() string {
	switch k {
	case ResFresh:
		return "fresh"
	case ResAlias:
		return "alias"
	}
	return "-"
}

// Merge widens toward the more caller-constraining kind: Alias beats
// Fresh beats Untracked (a result that may alias on one path must be
// treated as aliasing).
func (k ResultKind) Merge(o ResultKind) ResultKind {
	if k == ResAlias || o == ResAlias {
		return ResAlias
	}
	if k == ResFresh || o == ResFresh {
		return ResFresh
	}
	return ResUntracked
}

// Summary is one function's ownership contract. Params is indexed by
// parameter position with the receiver, when present, prepended at index
// 0; Results by result position.
type Summary struct {
	Params  []Effect
	Results []ResultKind
}

// Equal reports structural equality (nil equals nil only).
func (s *Summary) Equal(o *Summary) bool {
	if s == nil || o == nil {
		return s == o
	}
	if len(s.Params) != len(o.Params) || len(s.Results) != len(o.Results) {
		return false
	}
	for i := range s.Params {
		if s.Params[i] != o.Params[i] {
			return false
		}
	}
	for i := range s.Results {
		if s.Results[i] != o.Results[i] {
			return false
		}
	}
	return true
}

// Param returns the effect at position i (borrow when out of range, which
// variadic call sites rely on: every spread argument shares the final
// parameter's effect through the caller clamping the index).
func (s *Summary) Param(i int) Effect {
	if s == nil || i < 0 || i >= len(s.Params) {
		return 0
	}
	return s.Params[i]
}

// Result returns the kind at position i (untracked when out of range).
func (s *Summary) Result(i int) ResultKind {
	if s == nil || i < 0 || i >= len(s.Results) {
		return ResUntracked
	}
	return s.Results[i]
}

// String renders "(p0, p1, ...) -> (r0, ...)" deterministically for golden
// dumps; a nil summary renders as "unknown".
func (s *Summary) String() string {
	if s == nil {
		return "unknown"
	}
	params := make([]string, len(s.Params))
	for i, e := range s.Params {
		params[i] = e.String()
	}
	if len(s.Results) == 0 {
		return fmt.Sprintf("(%s)", strings.Join(params, ", "))
	}
	results := make([]string, len(s.Results))
	for i, k := range s.Results {
		results[i] = k.String()
	}
	return fmt.Sprintf("(%s) -> (%s)", strings.Join(params, ", "), strings.Join(results, ", "))
}
