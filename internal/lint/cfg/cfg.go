// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and layers the dataflow machinery the protocol analyzers
// in internal/lint need: dominator trees (dom.go), reaching definitions
// over go/types objects (reach.go), and a reusable typestate machine
// engine (typestate.go). Like the rest of internal/lint it is stdlib-only;
// it is the piece golang.org/x/tools/go/cfg + go/ssa would normally
// provide, rebuilt small enough to audit and without the external module.
//
// The graph is statement-level: a Block holds the simple statements and
// control-expression leaves executed straight-line, in source order.
// Compound control statements (if/for/switch/select) never appear in a
// block — their conditions are decomposed into leaf expressions (one block
// per short-circuit operand, so `a && b` really branches) and their bodies
// become successor blocks. The one exception is *ast.RangeStmt, which
// marks its loop-head block; VisitExprs knows to skip its Body. Function
// literals are opaque: a FuncLit inside a statement stays embedded in that
// statement's node, and VisitExprs does not descend into its body — build
// a separate Graph for it.
//
// `panic(...)` and `return` terminate their block with an edge to Exit.
// `defer` is recorded in the block where it executes (registration order);
// the deferred call itself runs at every function exit, which analyses
// that care model by treating Exit as running the recorded defers.
package cfg

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Block is one basic block: nodes executed straight-line, then a branch.
type Block struct {
	Index int
	// Kind labels why the block exists ("entry", "exit", "body",
	// "if.then", "for.cond", ...) for dumps and goldens.
	Kind string
	// Nodes are simple statements and control-expression leaves in
	// execution order. Walk their subtrees with VisitExprs, never
	// ast.Inspect, so range bodies and FuncLit bodies stay out.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// Graph is the CFG of one function body.
type Graph struct {
	Name   string
	Entry  *Block
	Exit   *Block
	Blocks []*Block // Entry first, Exit second, then creation order
}

// New builds the CFG of one function body. name labels dumps; decl is the
// *ast.FuncDecl or *ast.FuncLit whose Body is walked (nil Body yields an
// entry→exit graph).
func New(name string, decl ast.Node) *Graph {
	var body *ast.BlockStmt
	switch d := decl.(type) {
	case *ast.FuncDecl:
		body = d.Body
	case *ast.FuncLit:
		body = d.Body
	case *ast.BlockStmt:
		body = d
	}
	g := &Graph{Name: name}
	b := &builder{g: g, labels: map[string]*labelInfo{}}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	b.cur = b.newBlock("body")
	b.edge(g.Entry, b.cur)
	if body != nil {
		b.stmtList(body.List)
	}
	// Fall off the end of the function.
	b.edge(b.cur, g.Exit)
	b.resolveGotos()
	return g
}

// labelInfo tracks one label: its target block for goto, and — when the
// labeled statement is a loop or switch — the break/continue targets a
// labeled branch statement jumps to.
type labelInfo struct {
	target *Block // the labeled statement's head (goto target)
	brk    *Block
	cont   *Block
}

// frame is one enclosing breakable construct (for/range/switch/select).
type frame struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select
}

type builder struct {
	g      *Graph
	cur    *Block
	frames []frame
	labels map[string]*labelInfo
	gotos  []pendingGoto
	// pendingLabel is the label attached to the next loop/switch built, so
	// `continue lbl` / `break lbl` resolve to it.
	pendingLabel string
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an unconditional edge and opens an
// unreachable continuation (statements after return/break land there).
func (b *builder) jump(to *Block) {
	b.edge(b.cur, to)
	b.cur = b.newBlock("unreachable")
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	// Any statement other than a labeled loop/switch consumes the pending
	// label as a plain goto target.
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if isPanic(s.X) {
			b.jump(b.g.Exit)
		}

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.jump(b.g.Exit)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		els := done
		if s.Else != nil {
			els = b.newBlock("if.else")
		}
		b.cond(s.Cond, then, els)
		b.cur = then
		b.stmtList(s.Body.List)
		b.edge(b.cur, done)
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, done)
		}
		b.cur = done

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		label := b.takeLabel()
		head := b.newBlock("for.cond")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		b.edge(b.cur, head)
		if s.Cond != nil {
			b.cur = head
			b.cond(s.Cond, body, done)
		} else {
			b.edge(head, body)
		}
		b.setLabelTargets(label, head, done, post)
		b.pushFrame(frame{label: label, brk: done, cont: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.popFrame()
		b.edge(b.cur, post)
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head)
		}
		b.cur = done

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.loop")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.edge(b.cur, head)
		// The RangeStmt itself marks the head: its X is evaluated and its
		// Key/Value are (re)defined here on every successful iteration.
		head.Nodes = append(head.Nodes, s)
		b.edge(head, body)
		b.edge(head, done)
		b.setLabelTargets(label, head, done, head)
		b.pushFrame(frame{label: label, brk: done, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.popFrame()
		b.edge(b.cur, head)
		b.cur = done

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		b.caseClauses(s.Body, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		b.caseClauses(s.Body, nil)

	case *ast.SelectStmt:
		b.caseClauses(s.Body, func(c ast.Stmt) []ast.Stmt {
			comm := c.(*ast.CommClause)
			if comm.Comm != nil {
				return append([]ast.Stmt{comm.Comm}, comm.Body...)
			}
			return comm.Body
		})

	case *ast.BranchStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		switch s.Tok {
		case token.BREAK:
			if t := b.branchTarget(s.Label, false); t != nil {
				b.jump(t)
			}
		case token.CONTINUE:
			if t := b.branchTarget(s.Label, true); t != nil {
				b.jump(t)
			}
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
				b.cur = b.newBlock("unreachable")
			}
		case token.FALLTHROUGH:
			// Handled by caseClauses (edge to the next case body).
		}

	case *ast.LabeledStmt:
		li := b.labelInfo(s.Label.Name)
		head := b.newBlock("label." + s.Label.Name)
		li.target = head
		b.edge(b.cur, head)
		b.cur = head
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	default:
		// Simple statements: assignments, declarations, inc/dec, send,
		// defer, go, empty.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// caseClauses builds switch/type-switch/select clause blocks: the head
// (current) block branches to every clause; a missing default adds a
// head→done edge. body extracts the statements of a clause (nil: the
// CaseClause's exprs then body).
func (b *builder) caseClauses(body *ast.BlockStmt, stmtsOf func(ast.Stmt) []ast.Stmt) {
	label := b.takeLabel()
	head := b.cur
	done := b.newBlock("switch.done")
	b.setLabelTargets(label, head, done, nil)
	b.pushFrame(frame{label: label, brk: done})
	var clauseBlocks []*Block
	var clauseStmts [][]ast.Stmt
	hasDefault := false
	for _, c := range body.List {
		blk := b.newBlock("case")
		b.edge(head, blk)
		var stmts []ast.Stmt
		if stmtsOf != nil {
			stmts = stmtsOf(c)
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		} else {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
			}
			if cc.List == nil {
				hasDefault = true
			}
			stmts = cc.Body
		}
		clauseBlocks = append(clauseBlocks, blk)
		clauseStmts = append(clauseStmts, stmts)
	}
	if !hasDefault {
		b.edge(head, done)
	}
	for i, blk := range clauseBlocks {
		b.cur = blk
		fallsThrough := false
		for _, st := range clauseStmts[i] {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(clauseBlocks) {
			b.edge(b.cur, clauseBlocks[i+1])
		} else {
			b.edge(b.cur, done)
		}
	}
	b.popFrame()
	b.cur = done
}

// cond decomposes a branch condition into short-circuit leaf blocks: each
// leaf expression gets evaluated in its own block with true/false edges,
// so dataflow sees that `b` in `a && b` only runs when `a` held.
func (b *builder) cond(e ast.Expr, t, f *Block) {
	switch ex := e.(type) {
	case *ast.ParenExpr:
		b.cond(ex.X, t, f)
		return
	case *ast.BinaryExpr:
		switch ex.Op {
		case token.LAND:
			mid := b.newBlock("cond.and")
			b.cond(ex.X, mid, f)
			b.cur = mid
			b.cond(ex.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock("cond.or")
			b.cond(ex.X, t, mid)
			b.cur = mid
			b.cond(ex.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if ex.Op == token.NOT {
			b.cond(ex.X, f, t)
			return
		}
	}
	b.cur.Nodes = append(b.cur.Nodes, e)
	b.edge(b.cur, t)
	b.edge(b.cur, f)
}

func (b *builder) pushFrame(fr frame) { b.frames = append(b.frames, fr) }
func (b *builder) popFrame()          { b.frames = b.frames[:len(b.frames)-1] }

// branchTarget resolves a break/continue, optionally labeled.
func (b *builder) branchTarget(label *ast.Ident, isContinue bool) *Block {
	if label != nil {
		li := b.labels[label.Name]
		if li == nil {
			return nil
		}
		if isContinue {
			return li.cont
		}
		return li.brk
	}
	for i := len(b.frames) - 1; i >= 0; i-- {
		fr := b.frames[i]
		if isContinue {
			if fr.cont != nil {
				return fr.cont
			}
			continue
		}
		return fr.brk
	}
	return nil
}

func (b *builder) labelInfo(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	return li
}

// takeLabel consumes the pending label of a labeled loop/switch.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// setLabelTargets records break/continue targets for a labeled construct.
// The goto target stays the label head created by LabeledStmt.
func (b *builder) setLabelTargets(label string, head, brk, cont *Block) {
	if label == "" {
		return
	}
	li := b.labelInfo(label)
	li.brk = brk
	li.cont = cont
	_ = head
}

func (b *builder) resolveGotos() {
	for _, pg := range b.gotos {
		if li := b.labels[pg.label]; li != nil && li.target != nil {
			b.edge(pg.from, li.target)
		}
	}
}

// isPanic reports whether a call expression is a direct call of the
// predeclared panic (by spelling; the builder is type-free by design, and
// shadowing panic would already be flagged by vet/invariantpanic).
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// VisitExprs walks the subtree of one block node in source order, calling
// visit for every node, without crossing the two block boundaries embedded
// in nodes: a RangeStmt's Body (it belongs to other blocks) and FuncLit
// bodies (separate functions). visit returning false prunes the subtree.
func VisitExprs(n ast.Node, visit func(ast.Node) bool) {
	if n == nil {
		return
	}
	if rs, ok := n.(*ast.RangeStmt); ok {
		if !visit(rs) {
			return
		}
		VisitExprs(rs.Key, visit)
		VisitExprs(rs.Value, visit)
		VisitExprs(rs.X, visit)
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if fl, ok := m.(*ast.FuncLit); ok {
			if visit(fl) {
				// Visit the type (captured expressions in the signature are
				// not executed here either, but types carry no effects).
				return false
			}
			return false
		}
		if rs, ok := m.(*ast.RangeStmt); ok && rs != n {
			VisitExprs(rs, visit)
			return false
		}
		return visit(m)
	})
}

// Reachable returns the blocks reachable from Entry, in a deterministic
// preorder.
func (g *Graph) Reachable() []*Block {
	seen := make([]bool, len(g.Blocks))
	var out []*Block
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		out = append(out, b)
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return out
}

// String renders the reachable graph for dumps and golden tests. Node
// positions are rendered through fset when non-nil.
func (g *Graph) String() string { return g.Dump(nil) }

// Dump renders the reachable blocks with their nodes (single-line
// pretty-printed) and successor lists.
func (g *Graph) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s:\n", g.Name)
	for _, b := range g.Reachable() {
		fmt.Fprintf(&sb, "  b%d %s:", b.Index, b.Kind)
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
		for _, n := range b.Nodes {
			fmt.Fprintf(&sb, "    %s\n", NodeString(fset, n))
		}
	}
	return sb.String()
}

// NodeString renders one block node on a single line (range statements as
// their header only).
func NodeString(fset *token.FileSet, n ast.Node) string {
	if fset == nil {
		fset = token.NewFileSet()
	}
	if rs, ok := n.(*ast.RangeStmt); ok {
		hdr := "range " + NodeString(fset, rs.X)
		if rs.Key != nil {
			kv := NodeString(fset, rs.Key)
			if rs.Value != nil {
				kv += ", " + NodeString(fset, rs.Value)
			}
			hdr = kv + " " + rs.Tok.String() + " " + hdr
		}
		return "for " + hdr
	}
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	return strings.Join(strings.Fields(sb.String()), " ")
}
