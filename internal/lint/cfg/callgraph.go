package cfg

import (
	"go/ast"
	"go/types"
)

// This file adds the interprocedural half of the substrate: a package-local
// call graph over *ast.FuncDecl bodies plus a bottom-up (callee-first) SCC
// order, so analyses can compute per-function summaries with a fixpoint
// over each recursive component. Like the rest of the package it is
// deliberately static and syntactic: only calls whose callee resolves to a
// *types.Func through go/types are edges. Dynamic calls (function values,
// interface methods) resolve to nil and stay visible as CallSites so a
// client can treat them conservatively.

// CallSite is one call expression inside a function, with its statically
// resolved callee (nil when the callee is a function value, an interface
// method, a built-in, or a type conversion).
type CallSite struct {
	Call   *ast.CallExpr
	Callee *types.Func
}

// FuncNode is one declared function of the package under analysis.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	// Sites lists every call in the declaration (including calls inside
	// nested FuncLits — a literal's body belongs to this node for summary
	// purposes, since the summary of the enclosing function must account
	// for what its closures can do) in source order.
	Sites []CallSite
}

// CallGraph is the static call graph of one package's declared functions.
type CallGraph struct {
	Nodes []*FuncNode // declaration order across files
	byObj map[*types.Func]*FuncNode
}

// NewCallGraph builds the call graph over the declared functions of the
// given files (one type-checked package).
func NewCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	cg := &CallGraph{byObj: map[*types.Func]*FuncNode{}}
	for _, f := range files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &FuncNode{Fn: obj, Decl: fn}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
					return true // conversion, not a call
				}
				node.Sites = append(node.Sites, CallSite{Call: call, Callee: StaticCallee(info, call)})
				return true
			})
			cg.Nodes = append(cg.Nodes, node)
			cg.byObj[obj] = node
		}
	}
	return cg
}

// StaticCallee resolves a call expression to the *types.Func it statically
// invokes, or nil for dynamic calls, built-ins, and conversions. Generic
// instantiations resolve to their origin function, so summaries are
// per-declaration, not per-instantiation.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit instantiation: f[T](...), f[T1, T2](...).
	switch e := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(e.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(e.X)
	}
	var obj types.Object
	switch e := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		// Method value/call or qualified function: the selection's object.
		if sel, ok := info.Selections[e]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[e.Sel]
		}
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if orig := fn.Origin(); orig != nil {
		fn = orig
	}
	return fn
}

// Node returns the graph node declaring fn (nil for functions outside the
// package, or never declared with a body).
func (cg *CallGraph) Node(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return cg.byObj[fn]
}

// BottomUp partitions the graph into strongly connected components and
// returns them callee-first: every call from a function in component i to a
// function in component j≠i has j < i, so a bottom-up summary computation
// can process components in slice order and always finds its (non-SCC)
// callees already solved. Within a component the order is deterministic
// (declaration order). Tarjan's algorithm emits components in exactly this
// order; the iteration below is the standard recursive formulation.
func (cg *CallGraph) BottomUp() [][]*FuncNode {
	index := map[*FuncNode]int{}
	low := map[*FuncNode]int{}
	onStack := map[*FuncNode]bool{}
	var stack []*FuncNode
	var sccs [][]*FuncNode
	next := 0

	var strongconnect func(v *FuncNode)
	strongconnect = func(v *FuncNode) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, site := range v.Sites {
			w := cg.Node(site.Callee)
			if w == nil {
				continue
			}
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []*FuncNode
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			// Restore declaration order inside the component for
			// deterministic fixpoint iteration and dumps.
			for i, j := 0, len(comp)-1; i < j; i, j = i+1, j-1 {
				comp[i], comp[j] = comp[j], comp[i]
			}
			sccs = append(sccs, comp)
		}
	}
	for _, n := range cg.Nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return sccs
}

// Solve computes a summary for every function bottom-up. compute derives
// one function's summary; it reads callee summaries through get, which
// returns nil for functions not yet solved (recursion, first fixpoint
// round) or outside the graph — compute must treat nil as its conservative
// default. Within a recursive component Solve iterates compute to a
// fixpoint (summaries compare with Equal), so compute must be monotone in
// its callee summaries and deterministic.
func (cg *CallGraph) Solve(compute func(n *FuncNode, get func(*types.Func) *Summary) *Summary) map[*types.Func]*Summary {
	solved := map[*types.Func]*Summary{}
	get := func(fn *types.Func) *Summary {
		if fn == nil {
			return nil
		}
		return solved[fn]
	}
	for _, comp := range cg.BottomUp() {
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				s := compute(n, get)
				if !s.Equal(solved[n.Fn]) {
					solved[n.Fn] = s
					changed = true
				}
			}
		}
	}
	return solved
}
