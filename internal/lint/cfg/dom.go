package cfg

import (
	"fmt"
	"sort"
	"strings"
)

// DomTree is the dominator tree of a Graph, computed over the blocks
// reachable from Entry with the iterative Cooper–Harvey–Kennedy algorithm
// (graphs here are function-sized, so simplicity beats asymptotics).
type DomTree struct {
	g    *Graph
	idom map[*Block]*Block // immediate dominator; Entry maps to nil
	rpo  map[*Block]int    // reverse-postorder number of reachable blocks
}

// Dominators computes the dominator tree.
func (g *Graph) Dominators() *DomTree {
	// Postorder over the reachable subgraph.
	var post []*Block
	seen := make([]bool, len(g.Blocks))
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
		post = append(post, b)
	}
	walk(g.Entry)

	d := &DomTree{g: g, idom: map[*Block]*Block{}, rpo: map[*Block]int{}}
	for i := range post {
		d.rpo[post[len(post)-1-i]] = i
	}
	d.idom[g.Entry] = g.Entry
	changed := true
	for changed {
		changed = false
		// Reverse postorder, skipping Entry.
		for i := len(post) - 2; i >= 0; i-- {
			b := post[i]
			var newIdom *Block
			for _, p := range b.Preds {
				if _, ok := d.rpo[p]; !ok {
					continue // unreachable predecessor
				}
				if d.idom[p] == nil {
					continue // not yet processed this round
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != nil && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	d.idom[g.Entry] = nil
	return d
}

func (d *DomTree) intersect(a, b *Block) *Block {
	for a != b {
		for d.rpo[a] > d.rpo[b] {
			a = d.idom[a]
		}
		for d.rpo[b] > d.rpo[a] {
			b = d.idom[b]
		}
	}
	return a
}

// Idom returns the immediate dominator of b (nil for Entry and for blocks
// unreachable from Entry).
func (d *DomTree) Idom(b *Block) *Block { return d.idom[b] }

// Dominates reports whether a dominates b (reflexively). Unreachable
// blocks are dominated by nothing and dominate nothing but themselves.
func (d *DomTree) Dominates(a, b *Block) bool {
	for x := b; x != nil; x = d.idom[x] {
		if x == a {
			return true
		}
	}
	return false
}

// String renders "bN <- idom" lines in block-index order for goldens.
func (d *DomTree) String() string {
	var blocks []*Block
	for b := range d.idom {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Index < blocks[j].Index })
	var sb strings.Builder
	for _, b := range blocks {
		if id := d.idom[b]; id != nil {
			fmt.Fprintf(&sb, "  idom b%d <- b%d\n", b.Index, id.Index)
		}
	}
	return sb.String()
}
