package cfg

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// loadFixtures parses and type-checks testdata/funcs.go (import-free by
// design, so a bare types.Config suffices).
func loadFixtures(t *testing.T) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filepath.Join("testdata", "funcs.go"), nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixtures: %v", err)
	}
	info := &types.Info{
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
		Types: map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{}
	if _, err := conf.Check("fixtures", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck fixtures: %v", err)
	}
	return fset, file, info
}

// TestGolden builds the CFG, dominator tree, and reaching-definitions
// solution for every fixture function and compares the combined dump
// against testdata/golden.txt. Run with -update to rewrite.
func TestGolden(t *testing.T) {
	fset, file, info := loadFixtures(t)
	var sb strings.Builder
	for _, d := range file.Decls {
		fn, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		g := New(fn.Name.Name, fn)
		sb.WriteString(g.Dump(fset))
		sb.WriteString(g.Dominators().String())
		sb.WriteString(g.ReachingDefs(info, fn).String(fset))
		sb.WriteString("\n")
	}
	got := sb.String()

	goldenPath := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch (re-run with -update after verifying):\n%s", diffLines(string(want), got))
	}
}

func diffLines(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var sb strings.Builder
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			fmt.Fprintf(&sb, "line %d:\n  want: %q\n  got:  %q\n", i+1, w, g)
		}
	}
	return sb.String()
}

// graphOf builds the CFG for a named fixture function.
func graphOf(t *testing.T, file *ast.File, name string) (*ast.FuncDecl, *Graph) {
	t.Helper()
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == name {
			return fn, New(name, fn)
		}
	}
	t.Fatalf("fixture %s not found", name)
	return nil, nil
}

// TestDominance spot-checks structural dominance facts the analyzers rely
// on, independent of golden formatting.
func TestDominance(t *testing.T) {
	_, file, _ := loadFixtures(t)

	// In cond: entry dominates everything; neither arm dominates the join.
	_, g := graphOf(t, file, "cond")
	dom := g.Dominators()
	var then, els, done *Block
	for _, b := range g.Reachable() {
		switch b.Kind {
		case "if.then":
			then = b
		case "if.else":
			els = b
		case "if.done":
			done = b
		}
	}
	if then == nil || els == nil || done == nil {
		t.Fatalf("cond blocks missing: then=%v else=%v done=%v", then, els, done)
	}
	if !dom.Dominates(g.Entry, done) {
		t.Errorf("entry should dominate if.done")
	}
	if dom.Dominates(then, done) || dom.Dominates(els, done) {
		t.Errorf("neither branch arm may dominate the join")
	}

	// In loops: the loop head dominates the body; the body does not
	// dominate the exit (break skips it... actually the head does).
	_, g = graphOf(t, file, "loops")
	dom = g.Dominators()
	var head, body *Block
	for _, b := range g.Reachable() {
		switch b.Kind {
		case "for.cond":
			head = b
		case "for.body":
			body = b
		}
	}
	if head == nil || body == nil {
		t.Fatalf("loop blocks missing")
	}
	if !dom.Dominates(head, body) {
		t.Errorf("loop head should dominate loop body")
	}
	if dom.Dominates(body, g.Exit) {
		t.Errorf("loop body must not dominate exit (the loop may not run)")
	}
	if !dom.Dominates(g.Entry, g.Exit) {
		t.Errorf("entry should dominate exit")
	}
}

// TestShortCircuitBranches verifies && / || decomposition: in
// shortCircuit, `b` and `n > 0` must sit in separate blocks only reachable
// through `a`'s true edge.
func TestShortCircuitBranches(t *testing.T) {
	_, file, _ := loadFixtures(t)
	_, g := graphOf(t, file, "shortCircuit")
	var and, or *Block
	for _, b := range g.Reachable() {
		switch b.Kind {
		case "cond.and":
			and = b
		case "cond.or":
			or = b
		}
	}
	if and == nil || or == nil {
		t.Fatalf("short-circuit blocks missing: and=%v or=%v", and, or)
	}
	dom := g.Dominators()
	if !dom.Dominates(and, or) {
		t.Errorf("`b || n > 0` leaves should be dominated by the && midpoint")
	}
	// Each leaf block must end with exactly two successors (true/false).
	for _, b := range []*Block{and, or} {
		if len(b.Succs) != 2 {
			t.Errorf("cond leaf b%d has %d succs, want 2", b.Index, len(b.Succs))
		}
	}
}

// TestReachingDefsUse verifies ForEachUse sees the right defs: in loops,
// the use of sum in `return sum` is reached by both the initialization and
// the `sum += i` update.
func TestReachingDefsUse(t *testing.T) {
	fset, file, info := loadFixtures(t)
	fn, g := graphOf(t, file, "loops")
	r := g.ReachingDefs(info, fn)
	var gotLines []int
	r.ForEachUse(func(id *ast.Ident, v *types.Var, defs []*Def) {
		if v.Name() != "sum" {
			return
		}
		// The use inside `return sum`.
		if len(defs) >= 2 {
			for _, d := range defs {
				gotLines = append(gotLines, fset.Position(d.Node.Pos()).Line)
			}
		}
	})
	if len(gotLines) < 2 {
		t.Fatalf("expected a sum use reached by >=2 defs, got %v", gotLines)
	}
}
