package cfg

import (
	"go/ast"
	"math/bits"
)

// StateSet is a set of machine states (bitmask; machines are small by
// construction, at most 64 states).
type StateSet uint64

// Has reports membership.
func (s StateSet) Has(state int) bool { return s&(1<<uint(state)) != 0 }

// Add returns the set with state added.
func (s StateSet) Add(state int) StateSet { return s | 1<<uint(state) }

// Empty reports whether the set has no states.
func (s StateSet) Empty() bool { return s == 0 }

// States enumerates the members in ascending order.
func (s StateSet) States() []int {
	var out []int
	for s != 0 {
		st := bits.TrailingZeros64(uint64(s))
		out = append(out, st)
		s &^= 1 << uint(st)
	}
	return out
}

// Machine is one protocol finite-state machine evaluated over a Graph by
// forward dataflow. States reaching a join merge as a set (may-analysis):
// a node's incoming StateSet holds every state some path can arrive in,
// so "set contains bad state" means "some path violates" and "set is only
// good states" means "every path complies" — both the may- and the
// must-question are answerable from the same fixpoint.
type Machine struct {
	// Init is the state on function entry.
	Init int
	// Classify maps a node to an event id, or ok=false for non-events.
	// It is called for every node of every block in execution order
	// (VisitExprs order within a node).
	Classify func(n ast.Node) (event int, ok bool)
	// Step maps (state, event) to the successor state.
	Step func(state, event int) int
}

// MachineResult is the fixpoint of one Machine over one Graph.
type MachineResult struct {
	// Events holds, for every node Classify recognized, the set of states
	// the machine can be in immediately before the event fires.
	Events map[ast.Node]StateSet
	// Returns holds the state set at each return statement, after the
	// return's own expressions (and any events in them) are evaluated.
	Returns map[*ast.ReturnStmt]StateSet
	// Falloff is the merged state set at implicit function exits — blocks
	// that flow into Exit without a return or panic.
	Falloff StateSet
}

// Run evaluates the machine to fixpoint.
func (m *Machine) Run(g *Graph) *MachineResult {
	res := &MachineResult{
		Events:  map[ast.Node]StateSet{},
		Returns: map[*ast.ReturnStmt]StateSet{},
	}
	reachable := g.Reachable()
	in := map[*Block]StateSet{g.Entry: 1 << uint(m.Init)}
	out := map[*Block]StateSet{}

	transfer := func(b *Block, s StateSet) StateSet {
		for _, n := range b.Nodes {
			ret, isRet := n.(*ast.ReturnStmt)
			VisitExprs(n, func(sub ast.Node) bool {
				if isRet && sub == ast.Node(ret) {
					return true // record Returns after the subtree
				}
				switch sub.(type) {
				case *ast.DeferStmt, *ast.GoStmt:
					// A deferred call runs at function exit and a go
					// statement on another goroutine — neither fires its
					// events at the registration point. (A protocol closed
					// only by a defer is therefore reported at the return;
					// the write-path protocols close theirs inline.)
					return false
				}
				ev, ok := m.Classify(sub)
				if !ok {
					return true
				}
				res.Events[sub] |= s
				var next StateSet
				for _, st := range s.States() {
					next = next.Add(m.Step(st, ev))
				}
				s = next
				return true
			})
			if isRet {
				res.Returns[ret] |= s
			}
		}
		return s
	}

	changed := true
	for changed {
		changed = false
		for _, b := range reachable {
			s := in[b]
			for _, p := range b.Preds {
				s |= out[p]
			}
			if b != g.Entry {
				in[b] = s
			}
			o := transfer(b, in[b])
			if o != out[b] {
				out[b] = o
				changed = true
			}
		}
	}
	// Re-run the transfer once with final in-sets so Events/Returns hold
	// the fixpoint (monotonic |= during iteration already accumulates the
	// final sets, but a last pass keeps them exact if Step ever shrinks).
	for _, b := range reachable {
		transfer(b, in[b])
	}

	for _, p := range g.Exit.Preds {
		if _, ok := in[p]; !ok && p != g.Entry {
			continue // unreachable
		}
		last := lastNode(p)
		if _, isRet := last.(*ast.ReturnStmt); isRet {
			continue
		}
		if es, ok := last.(*ast.ExprStmt); ok && isPanic(es.X) {
			continue
		}
		res.Falloff |= out[p]
	}
	return res
}

func lastNode(b *Block) ast.Node {
	if len(b.Nodes) == 0 {
		return nil
	}
	return b.Nodes[len(b.Nodes)-1]
}
