// Package fixtures holds the functions the cfg golden tests build graphs
// for. Keep it import-free so the test can type-check it with a bare
// types.Config. Shapes covered: straight-line code, branching, loops with
// break/continue, range loops, short-circuit conditions, defer with a
// named result, labeled loops with goto, and switch with fallthrough.
package fixtures

func straight(a, b int) int {
	c := a + b
	c *= 2
	return c
}

func cond(a int) int {
	if a > 0 {
		a = a * 2
	} else {
		a = -a
	}
	return a
}

func loops(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 7 {
			break
		}
		sum += i
	}
	return sum
}

func rangeLoop(xs []int) int {
	total := 0
	for i, x := range xs {
		if x < 0 {
			return i
		}
		total += x
	}
	return total
}

func shortCircuit(a, b bool, n int) int {
	if a && (b || n > 0) {
		n = 1
	}
	return n
}

func deferred(n int) (out int) {
	defer func() {
		out++
	}()
	if n < 0 {
		return 0
	}
	out = n
	return out
}

func labels(grid [][]int) int {
	found := -1
loop:
	for i := range grid {
		for j := range grid[i] {
			if grid[i][j] == 0 {
				continue loop
			}
			if grid[i][j] < 0 {
				break loop
			}
			if grid[i][j] == 42 {
				found = i
				goto done
			}
			_ = j
		}
	}
done:
	return found
}

func swtch(n int) string {
	s := ""
	switch n {
	case 0:
		s = "zero"
	case 1:
		s = "one"
		fallthrough
	case 2:
		s += "+"
	default:
		s = "many"
	}
	return s
}
