package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// loadSource parses and type-checks one import-free source string.
func loadSource(t *testing.T, src string) (*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "callgraph_fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{}
	if _, err := conf.Check("fixture", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return file, info
}

const callGraphSrc = `package fixture

type res struct{ n int }

func (r *res) close() {}

func leaf(r *res) { r.close() }

func mid(r *res) { leaf(r) }

func top(r *res) {
	mid(r)
	f := leaf // function value: dynamic at the call site below
	f(r)
}

func pingA(r *res, n int) {
	if n > 0 {
		pingB(r, n-1)
	}
}

func pingB(r *res, n int) { pingA(r, n) }

func generic[T any](v T) T { return v }

func usesGeneric() { _ = generic(1) }

func viaClosure(r *res) {
	fn := func() { leaf(r) }
	fn()
}

func conversions() { _ = int64(3) }
`

func nodeByName(t *testing.T, cg *CallGraph, name string) *FuncNode {
	t.Helper()
	for _, n := range cg.Nodes {
		if n.Fn.Name() == name {
			return n
		}
	}
	t.Fatalf("function %s not in call graph", name)
	return nil
}

// calleeNames renders a node's resolved callee set for assertions.
func calleeNames(n *FuncNode) []string {
	var out []string
	for _, s := range n.Sites {
		if s.Callee != nil {
			out = append(out, s.Callee.Name())
		} else {
			out = append(out, "<dynamic>")
		}
	}
	return out
}

func TestCallGraphResolution(t *testing.T) {
	file, info := loadSource(t, callGraphSrc)
	cg := NewCallGraph([]*ast.File{file}, info)

	cases := map[string]string{
		"leaf":        "close",          // method call resolves to *types.Func
		"mid":         "leaf",           // plain call
		"top":         "mid <dynamic>",  // function value stays a site, unresolved
		"usesGeneric": "generic",        // instantiation resolves to the origin
		"viaClosure":  "leaf <dynamic>", // call inside FuncLit belongs to the decl
		"conversions": "",               // int64(3) is a conversion, not a call
	}
	for name, want := range cases {
		got := strings.Join(calleeNames(nodeByName(t, cg, name)), " ")
		if got != want {
			t.Errorf("%s: callees = %q, want %q", name, got, want)
		}
	}
}

func TestCallGraphBottomUp(t *testing.T) {
	file, info := loadSource(t, callGraphSrc)
	cg := NewCallGraph([]*ast.File{file}, info)
	sccs := cg.BottomUp()

	order := map[string]int{}
	for i, comp := range sccs {
		for _, n := range comp {
			order[n.Fn.Name()] = i
		}
	}
	// Callees must be solved before callers.
	for _, pair := range [][2]string{{"close", "leaf"}, {"leaf", "mid"}, {"mid", "top"}, {"leaf", "viaClosure"}} {
		if order[pair[0]] >= order[pair[1]] {
			t.Errorf("%s (component %d) should precede caller %s (component %d)",
				pair[0], order[pair[0]], pair[1], order[pair[1]])
		}
	}
	// The mutually recursive pair forms one component.
	if order["pingA"] != order["pingB"] {
		t.Errorf("pingA and pingB should share a component, got %d and %d", order["pingA"], order["pingB"])
	}
	for _, comp := range sccs {
		if len(comp) == 2 {
			if comp[0].Fn.Name() != "pingA" || comp[1].Fn.Name() != "pingB" {
				t.Errorf("recursive component should keep declaration order, got %s, %s",
					comp[0].Fn.Name(), comp[1].Fn.Name())
			}
		}
	}
}

// TestSolveFixpoint propagates a consume effect bottom-up: close consumes
// its receiver by fiat, and any function forwarding a parameter to a
// consuming callee consumes it too. The chain top -> mid -> leaf -> close
// must converge with every link marked consume, and the recursive pair must
// reach a fixpoint without spinning.
func TestSolveFixpoint(t *testing.T) {
	file, info := loadSource(t, callGraphSrc)
	cg := NewCallGraph([]*ast.File{file}, info)

	solved := cg.Solve(func(n *FuncNode, get func(*types.Func) *Summary) *Summary {
		s := &Summary{Params: make([]Effect, 1)}
		if n.Fn.Name() == "close" {
			s.Params[0] = EffConsume
			return s
		}
		for _, site := range n.Sites {
			var callee *Summary
			if site.Callee != nil && site.Callee.Name() == "close" {
				callee = &Summary{Params: []Effect{EffConsume}}
			} else {
				callee = get(site.Callee)
			}
			if callee.Param(0).Has(EffConsume) {
				s.Params[0] |= EffConsume
			}
		}
		return s
	})

	for _, name := range []string{"leaf", "mid", "top", "viaClosure"} {
		n := nodeByName(t, cg, name)
		if !solved[n.Fn].Param(0).Has(EffConsume) {
			t.Errorf("%s: consume should propagate bottom-up, got %s", name, solved[n.Fn])
		}
	}
	for _, name := range []string{"pingA", "pingB", "usesGeneric"} {
		n := nodeByName(t, cg, name)
		if solved[n.Fn].Param(0).Has(EffConsume) {
			t.Errorf("%s: should not consume, got %s", name, solved[n.Fn])
		}
	}
}

func TestSummaryString(t *testing.T) {
	s := &Summary{
		Params:  []Effect{0, EffConsume, EffEscape | EffReturnsAlias},
		Results: []ResultKind{ResFresh, ResAlias, ResUntracked},
	}
	got := s.String()
	want := "(borrow, consume, escape+returns-alias) -> (fresh, alias, -)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if (*Summary)(nil).String() != "unknown" {
		t.Errorf("nil summary should render unknown")
	}
	if !(*Summary)(nil).Equal(nil) || s.Equal(nil) {
		t.Errorf("Equal nil handling wrong")
	}
	if s.Result(5) != ResUntracked || s.Param(9) != 0 {
		t.Errorf("out-of-range accessors should default")
	}
}
