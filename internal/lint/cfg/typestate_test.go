package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// lockMachine is a 2-state acquire/release protocol over calls spelled
// `acquire()` and `release()`: state 0 = free, 1 = held.
const (
	evAcquire = iota
	evRelease
)

func lockMachine() *Machine {
	return &Machine{
		Init: 0,
		Classify: func(n ast.Node) (int, bool) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return 0, false
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return 0, false
			}
			switch id.Name {
			case "acquire":
				return evAcquire, true
			case "release":
				return evRelease, true
			}
			return 0, false
		},
		Step: func(state, event int) int {
			switch event {
			case evAcquire:
				return 1
			case evRelease:
				return 0
			}
			return state
		},
	}
}

func parseFunc(t *testing.T, src string) *ast.FuncDecl {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "m.go", "package m\nfunc acquire(){}\nfunc release(){}\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == "f" {
			return fn
		}
	}
	t.Fatalf("func f not found")
	return nil
}

func TestMachineBalanced(t *testing.T) {
	fn := parseFunc(t, `
func f(ok bool) {
	acquire()
	if ok {
		release()
		return
	}
	release()
}`)
	res := lockMachine().Run(New("f", fn))
	if res.Falloff.Has(1) {
		t.Errorf("balanced protocol must not fall off held: %v", res.Falloff.States())
	}
	for ret, s := range res.Returns {
		if s.Has(1) {
			t.Errorf("return at %v still held: %v", ret.Pos(), s.States())
		}
	}
}

func TestMachineStrandedReturn(t *testing.T) {
	fn := parseFunc(t, `
func f(ok bool) error {
	acquire()
	if ok {
		return nil // strands the held state
	}
	release()
	return nil
}`)
	res := lockMachine().Run(New("f", fn))
	held := 0
	for _, s := range res.Returns {
		if s.Has(1) {
			held++
		}
	}
	if held != 1 {
		t.Errorf("want exactly one stranded return, got %d", held)
	}
}

func TestMachineLoopMerge(t *testing.T) {
	// Around a loop, the events re-fire each iteration: the acquire inside
	// the body can be reached both free (first iteration) and free again
	// (after the release), never held.
	fn := parseFunc(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		acquire()
		release()
	}
}`)
	res := lockMachine().Run(New("f", fn))
	if res.Falloff.Has(1) {
		t.Errorf("loop body balances; falloff must be free-only: %v", res.Falloff.States())
	}
	for n, s := range res.Events {
		call := n.(*ast.CallExpr)
		name := call.Fun.(*ast.Ident).Name
		if name == "acquire" && s.Has(1) {
			t.Errorf("acquire reached while held")
		}
		if name == "release" && s.Has(0) {
			t.Errorf("release reached while free")
		}
	}
}

func TestMachineUnbalancedLoop(t *testing.T) {
	// Missing release: second iteration's acquire sees held state.
	fn := parseFunc(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		acquire()
	}
}`)
	res := lockMachine().Run(New("f", fn))
	sawDoubleAcquire := false
	for n, s := range res.Events {
		if id, ok := n.(*ast.CallExpr).Fun.(*ast.Ident); ok && id.Name == "acquire" && s.Has(1) {
			sawDoubleAcquire = true
		}
	}
	if !sawDoubleAcquire {
		t.Errorf("re-entrant acquire across loop backedge not detected")
	}
	if !res.Falloff.Has(1) {
		t.Errorf("falloff should include held state")
	}
}

func TestMachineEventsInReturnExpr(t *testing.T) {
	// Events inside the return expression fire before Returns is recorded:
	// `return release()`-style shapes must close the protocol.
	fn := parseFunc(t, `
func f() bool {
	acquire()
	return relTrue()
}
func relTrue() bool { release(); return true }`)
	// relTrue's body is a separate function; the release is NOT visible in
	// f. So f's return strands. This pins the intraprocedural contract.
	res := lockMachine().Run(New("f", fn))
	stranded := false
	for _, s := range res.Returns {
		if s.Has(1) {
			stranded = true
		}
	}
	if !stranded {
		t.Errorf("interprocedural release must not satisfy the machine")
	}

	// Direct call in the return expression does satisfy it.
	fn2 := parseFunc(t, `
func f() int {
	acquire()
	return use(release())
}
func use(x interface{ }) int { return 0 }`)
	res2 := lockMachine().Run(New("f", fn2))
	for _, s := range res2.Returns {
		if s.Has(1) {
			t.Errorf("release inside return expr should close before Returns is recorded: %v", s.States())
		}
	}
}

func TestStateSetOps(t *testing.T) {
	var s StateSet
	if !s.Empty() {
		t.Errorf("zero set not empty")
	}
	s = s.Add(0).Add(3)
	if !s.Has(0) || !s.Has(3) || s.Has(1) {
		t.Errorf("membership wrong: %v", s.States())
	}
	got := s.States()
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("States() = %v, want [0 3]", got)
	}
}
