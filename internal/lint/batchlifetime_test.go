package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestBatchLifetimeFixtures(t *testing.T) { runWantDir(t, BatchLifetime) }

// TestBatchLifetimeSummariesGolden pins the interprocedural summaries the
// analyzer computes for the fixture package: one line per function with a
// tracked signature, bottom-up over the call graph. Run with -update to
// rewrite after a deliberate summary change.
func TestBatchLifetimeSummariesGolden(t *testing.T) {
	l, err := defaultLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "batchlifetime"))
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, TypesInfo: pkg.Info, Dir: pkg.Dir}
	got := newBatchSummaries(pass).String()

	goldenPath := filepath.Join("testdata", "batchlifetime_summaries.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("summary golden mismatch (re-run with -update after verifying):\n%s",
			diffGoldenLines(string(want), got))
	}
}

func diffGoldenLines(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var sb strings.Builder
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			fmt.Fprintf(&sb, "line %d:\n  want: %q\n  got:  %q\n", i+1, w, g)
		}
	}
	return sb.String()
}

// TestRegressionRequiresBatchLifetime pins the engine's real error-path
// leaks (pre-fix evalProjectVec/evalRepartitionVec shapes) as a fixture
// that ONLY batchlifetime catches: the rest of the roster must stay silent
// on it, and batchlifetime alone must report exactly the want annotations.
func TestRegressionRequiresBatchLifetime(t *testing.T) {
	dir := filepath.Join("testdata", "src", "batchlifetime_regression")

	var others []*Analyzer
	for _, a := range Analyzers() {
		if a.Name != BatchLifetime.Name {
			others = append(others, a)
		}
	}
	diags, err := RunDir(dir, others)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("suite minus batchlifetime should be silent on the regression fixture, got: %s", d)
	}

	diags, err = RunDir(dir, []*Analyzer{BatchLifetime})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("batchlifetime found nothing on the regression fixture")
	}
	src, err := os.ReadFile(filepath.Join(dir, "regression.go"))
	if err != nil {
		t.Fatal(err)
	}
	checkWants(t, "regression.go", wantsOf(t, string(src)), diags)
}

// TestModuleIsBatchLifetimeClean is the analyzer's own strict gate: every
// package in the module is free of batch lifetime findings, with no
// baseline. The engine's error-path releases (PR 9) are what keep it green.
func TestModuleIsBatchLifetimeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	dirs, err := PackageDirs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		diags, err := RunDir(dir, []*Analyzer{BatchLifetime})
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
