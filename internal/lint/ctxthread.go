package lint

import (
	"go/ast"
)

// ctxPkgs are the packages whose per-partition work must stay attached to
// the query's context: engine workers and the fault-injection layer both
// honor deadlines and cancellation, and a context minted mid-call-tree
// silently opts that work out of both.
var ctxPkgs = map[string]bool{
	"engine":  true,
	"fault":   true,
	"cluster": true,
}

// CtxThread flags context.Background() and context.TODO() in the execution
// packages everywhere except directly in the body of an exported top-level
// function — the one legitimate place to mint a root context, namely a
// public convenience wrapper (engine.ExecuteOpts) whose caller chose not to
// supply one. Unexported functions and function literals (the per-partition
// worker closures) must receive the caller's ctx instead. The context
// package is resolved through the import table, so a renamed import is
// still caught and a local variable named "context" is not.
var CtxThread = &Analyzer{
	Name: "ctxthread",
	Doc:  "per-partition work must thread the caller's context.Context; context.Background/TODO are only allowed in exported top-level wrappers",
	Run:  runCtxThread,
}

func runCtxThread(p *Pass) error {
	if !ctxPkgs[p.PkgName()] {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			exportedTop := fn.Name.IsExported() && fn.Recv == nil
			checkCtxCalls(p, fn.Body, exportedTop, fn.Name.Name)
		}
	}
	return nil
}

// checkCtxCalls walks one function body. rootOK says whether a root
// context may be minted at this nesting level; it is true only for the
// direct statements of an exported top-level function and always turns
// false inside a FuncLit, which is where per-partition closures live.
func checkCtxCalls(p *Pass, body ast.Node, rootOK bool, fname string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkCtxCalls(p, lit.Body, false, fname+" (closure)")
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkgPath, name := calleePkgFunc(p, call)
		if pkgPath != "context" {
			return true
		}
		if (name == "Background" || name == "TODO") && !rootOK {
			p.Report(call, "context.%s in %s detaches per-partition work from the query context; thread ctx from the caller", name, fname)
		}
		return true
	})
}
