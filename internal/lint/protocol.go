package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"pref/internal/lint/cfg"
)

// Boundary markers for the protocol analyzers. Each declares, in a
// function's doc comment, that the function legitimately crosses one
// protocol line and carries the reason:
//
//	// lint:publish-boundary <reason>   — may touch version-visible state
//	//                                    around an atomic epoch store
//	//                                    (the publisher itself)
//	// lint:snapshot-boundary <reason>  — read-side code that may touch the
//	//                                    live COW head (the one pin point)
//	// lint:intent-boundary <reason>    — bulk-load machinery below the
//	//                                    plan→intend→apply→publish protocol
//	//                                    (the steps themselves, recovery)
//
// The happensbefore analyzer uses two further markers with arguments:
//
//	// lint:guarded-by <field>...  — on a struct field: plain access to
//	//                               this field is only safe after one of
//	//                               the named sibling guard fields was
//	//                               acquired (atomic Load / mutex Lock)
//	// lint:holds <field>...       — on a function: the caller guarantees
//	//                               the named guards are held throughout
const (
	publishBoundaryMarker  = "lint:publish-boundary"
	snapshotBoundaryMarker = "lint:snapshot-boundary"
	intentBoundaryMarker   = "lint:intent-boundary"
	guardedByMarker        = "lint:guarded-by"
	holdsMarker            = "lint:holds"
)

// hasFuncMarker reports whether the function's doc comment carries the
// marker (isShipBoundary generalized to the protocol markers).
func hasFuncMarker(fn *ast.FuncDecl, marker string) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	for _, cm := range fn.Doc.List {
		if strings.Contains(cm.Text, marker) {
			return true
		}
	}
	return false
}

// funcMarkerArgs parses "<marker> a b c" out of the function's doc comment
// and returns the argument words (nil, false when the marker is absent).
func funcMarkerArgs(fn *ast.FuncDecl, marker string) ([]string, bool) {
	if fn == nil || fn.Doc == nil {
		return nil, false
	}
	for _, cm := range fn.Doc.List {
		if args, ok := markerArgs(cm.Text, marker); ok {
			return args, true
		}
	}
	return nil, false
}

// markerArgs extracts the words following marker inside one comment text.
func markerArgs(text, marker string) ([]string, bool) {
	i := strings.Index(text, marker)
	if i < 0 {
		return nil, false
	}
	return strings.Fields(text[i+len(marker):]), true
}

// eachFuncDecl visits every function declaration with a body.
func eachFuncDecl(p *Pass, visit func(fn *ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				visit(fn)
			}
		}
	}
}

// funcGraph builds the CFG of one declaration for the analyzers.
func funcGraph(fn *ast.FuncDecl) *cfg.Graph {
	return cfg.New(fn.Name.Name, fn)
}

// recvBase resolves the leftmost identifier's object under an expression —
// the base a protocol machine keys its state on (`pt` in pt.pub.Store(v)).
// Unlike rootIdentObj it never stops at an intermediate field.
func recvBase(p *Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if o := p.TypesInfo.Uses[v]; o != nil {
				return o
			}
			return p.TypesInfo.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.CallExpr:
			return nil // derived through a call: no stable base
		default:
			return nil
		}
	}
}

// typeFromPkg reports whether t (after deref) is a defined type whose
// package path is pkgPath ("sync", "sync/atomic"). Generic instantiations
// (atomic.Pointer[T]) resolve through their origin object.
func typeFromPkg(t types.Type, pkgPath string) bool {
	if t == nil {
		return false
	}
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// methodCall decomposes a call of the form recv.Name(args...) into the
// receiver expression and method name ("" when not a method call).
func methodCall(call *ast.CallExpr) (recv ast.Expr, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	return sel.X, sel.Sel.Name
}
