package lint

import (
	"go/ast"
	"go/types"
	"strings"
	"unicode"
)

// restrictedPkgs are execution-path packages: code that runs per query or
// per partition, where an unrecovered panic takes down the whole worker
// instead of failing one query. Must* helpers (panic-on-error shortcuts)
// are banned here outright; plain panics need a lint:invariant marker like
// everywhere else.
var restrictedPkgs = map[string]bool{
	"engine":    true,
	"fault":     true,
	"partition": true,
	"bulkload":  true,
	"check":     true,
}

// InvariantPanic enforces the repository's panic policy: a panic is only
// acceptable for a declared programmer-error invariant, and declaring it
// means writing a "// lint:invariant" comment on the panic's line or the
// line above. In execution-path packages, calling a Must* helper is flagged
// the same way, because it is a panic by proxy. Type information resolves
// panic to the builtin, so a shadowing local function named panic is not
// confused with it.
var InvariantPanic = &Analyzer{
	Name: "invariantpanic",
	Doc:  "panic() and Must* call sites must carry a // lint:invariant marker; execution-path packages may not call Must* at all",
	Run:  runInvariantPanic,
}

func runInvariantPanic(p *Pass) error {
	marked := markerLines(p, "lint:invariant")
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch callee := call.Fun.(type) {
			case *ast.Ident:
				if isBuiltinPanic(p, callee) && !sanctioned(p, marked, call) {
					p.Report(call, "panic without a // lint:invariant marker; declare the invariant or return an error")
				}
				if isMustName(callee.Name) && restrictedPkgs[p.PkgName()] && !sanctioned(p, marked, call) {
					p.Report(call, "Must-style call %s in execution-path package %s; use the error-returning variant", callee.Name, p.PkgName())
				}
			case *ast.SelectorExpr:
				if isMustName(callee.Sel.Name) && restrictedPkgs[p.PkgName()] && !sanctioned(p, marked, call) {
					p.Report(call, "Must-style call %s in execution-path package %s; use the error-returning variant", callee.Sel.Name, p.PkgName())
				}
			}
			return true
		})
	}
	return nil
}

// isBuiltinPanic reports whether the identifier resolves to the predeclared
// panic builtin (not a shadowing declaration).
func isBuiltinPanic(p *Pass, id *ast.Ident) bool {
	if id.Name != "panic" {
		return false
	}
	obj := p.TypesInfo.Uses[id]
	b, ok := obj.(*types.Builtin)
	return ok && b.Name() == "panic"
}

// isMustName matches the Must-prefix naming convention (MustIndex,
// MustTable, ...) while leaving words that merely start with "Must" alone.
func isMustName(name string) bool {
	if !strings.HasPrefix(name, "Must") {
		return false
	}
	rest := name[len("Must"):]
	return rest == "" || unicode.IsUpper(rune(rest[0]))
}
