package lint

import (
	"encoding/json"
	"io"
	"math"
	"path/filepath"
	"time"
)

// jsonFinding is one diagnostic in `preflint -json` output. The field set
// is the machine-readable contract: stable names, 1-based positions,
// slash-separated paths regardless of host OS.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
	// TimingsMS maps analyzer name to total wall time in milliseconds
	// (rounded to microsecond precision), summed over every package the
	// run visited. Present only when the driver collected timings.
	TimingsMS map[string]float64 `json:"timings_ms,omitempty"`
}

// WriteJSON renders diagnostics as the preflint JSON report. The findings
// array is always present (possibly empty), so consumers can index into it
// without a nil check; the timings object appears only when a non-nil
// Timings sink was collected (encoding/json emits its keys sorted).
func WriteJSON(w io.Writer, diags []Diagnostic, timings Timings) error {
	rep := jsonReport{Findings: []jsonFinding{}}
	if timings != nil {
		rep.TimingsMS = make(map[string]float64, len(timings))
		for name, d := range timings {
			ms := float64(d) / float64(time.Millisecond)
			rep.TimingsMS[name] = math.Round(ms*1000) / 1000
		}
	}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, jsonFinding{
			File:     filepath.ToSlash(d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Minimal SARIF 2.1.0 document: one run, one rule per analyzer, one result
// per diagnostic. Only the fields code-scanning consumers actually read.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log suitable for GitHub
// code-scanning upload. Every analyzer in the suite appears as a rule even
// when it produced no results, so the rule inventory is visible to the
// consumer; the synthetic "directive" rule covers malformed suppressions.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := []sarifRule{{
		ID:               "directive",
		ShortDescription: sarifText{Text: "malformed lint directive"},
	}}
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := []sarifResult{}
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "preflint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
