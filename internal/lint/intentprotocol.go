package lint

import (
	"go/ast"

	"pref/internal/lint/cfg"
)

// IntentProtocol verifies the plan→intend→apply→publish typestate of the
// bulk-load write path: a batch's mutations (applySteps, BeginWrite) must
// be dominated by the intent-log record that makes them recoverable, the
// commit that publishes them must close an open intent, and no path may
// return while an intent is still open but unaccounted — an early return
// between intend and commit strands work that recovery will then replay
// or, worse, half-replay. Marking the loader crashed (`crashed = true`)
// is the sanctioned abort: it hands the open intent to Recover. The
// machinery below the protocol (the steps themselves, commit, recovery)
// declares "// lint:intent-boundary <reason>".
var IntentProtocol = &Analyzer{
	Name: "intentprotocol",
	Doc:  "bulk-load mutations must be dominated by an intent record, and every path must commit or abort the intent it opened",
	Run:  runIntentProtocol,
}

// Typestate: 0 = no open intent, 1 = intent recorded but not yet closed.
const (
	ipEvIntend = iota
	ipEvApply
	ipEvPublish
	ipEvAbort
)

func runIntentProtocol(p *Pass) error {
	if p.PkgName() != "bulkload" {
		return nil
	}
	eachFuncDecl(p, func(fn *ast.FuncDecl) {
		if hasFuncMarker(fn, intentBoundaryMarker) {
			return
		}
		checkIntentProtocol(p, fn)
	})
	return nil
}

func checkIntentProtocol(p *Pass, fn *ast.FuncDecl) {
	g := funcGraph(fn)
	classify := func(n ast.Node) (int, bool) {
		switch n := n.(type) {
		case *ast.CallExpr:
			recv, name := methodCall(n)
			if recv == nil {
				return 0, false
			}
			switch name {
			case "append":
				// The intent record: IntentLog.append (the builtin append is
				// a plain-ident call and never reaches here).
				if isNamedType(exprType(p, recv), "", "IntentLog") {
					return ipEvIntend, true
				}
			case "applySteps", "BeginWrite":
				return ipEvApply, true
			case "commit", "Commit", "Publish":
				return ipEvPublish, true
			}
		case *ast.AssignStmt:
			// The sanctioned abort: flagging the loader crashed hands the
			// open intent to Recover.
			for _, lhs := range n.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "crashed" {
					if f := fieldObj(p, sel); f != nil {
						return ipEvAbort, true
					}
				}
			}
		}
		return 0, false
	}
	m := &cfg.Machine{
		Init:     0,
		Classify: classify,
		Step: func(state, event int) int {
			switch event {
			case ipEvIntend:
				return 1
			case ipEvPublish, ipEvAbort:
				return 0
			}
			return state
		},
	}
	res := m.Run(g)

	// Any path reaching an event in the wrong state is a violation; the
	// machine merges states across joins, so Has(0) at an apply means some
	// path got there without recording an intent first.
	anyIntent := false
	for n := range res.Events {
		if ev, _ := classify(n); ev == ipEvIntend {
			anyIntent = true
		}
	}
	for n, states := range res.Events {
		ev, _ := classify(n)
		switch ev {
		case ipEvApply:
			if states.Has(0) && anyIntent {
				p.Report(n, "mutation not dominated by an intent record; a crash here would be unrecoverable — append the intent before applying")
			}
			if !anyIntent {
				p.Report(n, "bulk-load mutation in a function that never records an intent; route writes through the intent log or declare a lint:intent-boundary")
			}
		case ipEvPublish:
			if states.Has(0) {
				p.Report(n, "publish reachable without an open intent; commit must close the intent record that covers these steps")
			}
		case ipEvIntend:
			if states.Has(1) {
				p.Report(n, "intent recorded while a previous intent is still open; commit or abort the first before intending again")
			}
		}
	}
	for ret, states := range res.Returns {
		if states.Has(1) {
			p.Report(ret, "return strands an uncommitted intent; commit it, or mark the loader crashed so recovery replays it")
		}
	}
	if res.Falloff.Has(1) {
		p.Report(fn.Name, "%s can fall off the end with an uncommitted intent; commit it, or mark the loader crashed so recovery replays it", fn.Name.Name)
	}
}
