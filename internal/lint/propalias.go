package lint

import (
	"go/ast"
	"go/types"
)

// propSliceFields are the plan.Prop []string fields with copy-on-write
// semantics: the rewrite clones them at every transfer step, and
// internal/check's RulePropAlias verifies at runtime that no two live
// props share a backing array. This analyzer is the compile-time half: it
// flags assignments that store an existing slice into one of these fields,
// which aliases the backing array.
var propSliceFields = map[string]bool{
	"HashCols": true,
	"DupCols":  true,
}

// PropAlias flags `x.HashCols = y` / `x.DupCols = y.DupCols` style
// assignments (and the equivalent composite-literal fields) where the
// right-hand side aliases an existing slice rather than allocating a fresh
// one. Type information narrows the rule to fields of the actual Prop
// struct (a field merely named HashCols on an unrelated type is left
// alone, and access promoted through struct embedding is still caught) and
// closes the documented call false-negative: a call to a function that
// returns one of its slice parameters — or a Prop field — unchanged is an
// alias, not a fresh slice. nil, slice literals, append, and clone-style
// calls are fine; a deliberate alias can be sanctioned with
// "// lint:alias-ok".
var PropAlias = &Analyzer{
	Name: "propalias",
	Doc:  "Prop.HashCols/DupCols must be set from freshly allocated slices (clone, append, literal), never aliased from another slice",
	Run:  runPropAlias,
}

func runPropAlias(p *Pass) error {
	targets := propFieldTargets(p)
	if len(targets) == 0 {
		return nil
	}
	aliasFns := aliasReturners(p, targets)
	marked := markerLines(p, "lint:alias-ok")
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					fld := fieldObj(p, sel)
					if fld == nil || !targets[fld] {
						continue
					}
					if why := aliasingExpr(p, aliasFns, n.Rhs[i]); why != "" && !sanctioned(p, marked, n) {
						p.Report(n, "%s assigned from %s; clone it (or mark // lint:alias-ok)", sel.Sel.Name, why)
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					fld, ok := p.TypesInfo.Uses[key].(*types.Var)
					if !ok || !fld.IsField() || !targets[fld] {
						continue
					}
					if why := aliasingExpr(p, aliasFns, kv.Value); why != "" && !sanctioned(p, marked, kv) {
						p.Report(kv, "%s initialized from %s; clone it (or mark // lint:alias-ok)", key.Name, why)
					}
				}
			}
			return true
		})
	}
	return nil
}

// propFieldTargets collects the *types.Var field objects of every Prop
// struct visible to this package (its own and those of direct imports): a
// defined struct type named Prop with both HashCols and DupCols []string
// fields. Keying on field objects means promoted access through embedding
// resolves to the same target, while unrelated fields that merely share a
// name do not.
func propFieldTargets(p *Pass) map[*types.Var]bool {
	targets := map[*types.Var]bool{}
	scopes := []*types.Scope{p.Pkg.Scope()}
	for _, imp := range p.Pkg.Imports() {
		scopes = append(scopes, imp.Scope())
	}
	for _, scope := range scopes {
		obj := scope.Lookup("Prop")
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var fields []*types.Var
		found := 0
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if propSliceFields[f.Name()] && isStringSlice(f.Type()) {
				fields = append(fields, f)
				found++
			}
		}
		if found == len(propSliceFields) {
			for _, f := range fields {
				targets[f] = true
			}
		}
	}
	return targets
}

func isStringSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

// aliasReturners finds this package's functions that return an aliasing
// view of caller-owned memory: a return statement whose result is (after
// unwrapping parens and subslicing) one of the function's own slice
// parameters, a targeted Prop field, or a call to another alias returner.
// Iterates to a fixpoint so aliases laundered through one wrapper are
// still caught.
func aliasReturners(p *Pass, targets map[*types.Var]bool) map[types.Object]bool {
	fns := map[types.Object]bool{}
	for {
		grew := false
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj := p.TypesInfo.Defs[fn.Name]
				if obj == nil || fns[obj] {
					continue
				}
				params := paramObjs(p, fn)
				aliases := false
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					if aliases {
						return false
					}
					if _, ok := n.(*ast.FuncLit); ok {
						return false // a closure's returns are not fn's
					}
					ret, ok := n.(*ast.ReturnStmt)
					if !ok {
						return true
					}
					for _, res := range ret.Results {
						if returnsAlias(p, fns, params, targets, res) {
							aliases = true
						}
					}
					return true
				})
				if aliases {
					fns[obj] = true
					grew = true
				}
			}
		}
		if !grew {
			return fns
		}
	}
}

// paramObjs collects the parameter and receiver objects of fn that have
// slice type.
func paramObjs(p *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := p.TypesInfo.Defs[name]; obj != nil {
					if _, ok := obj.Type().Underlying().(*types.Slice); ok {
						out[obj] = true
					}
				}
			}
		}
	}
	collect(fn.Recv)
	collect(fn.Type.Params)
	return out
}

// returnsAlias reports whether returning res hands the caller an alias of
// a parameter slice or a Prop property slice.
func returnsAlias(p *Pass, fns map[types.Object]bool, params map[types.Object]bool, targets map[*types.Var]bool, res ast.Expr) bool {
	switch res := res.(type) {
	case *ast.Ident:
		return params[p.TypesInfo.Uses[res]]
	case *ast.SelectorExpr:
		fld := fieldObj(p, res)
		return fld != nil && targets[fld]
	case *ast.ParenExpr:
		return returnsAlias(p, fns, params, targets, res.X)
	case *ast.SliceExpr:
		return returnsAlias(p, fns, params, targets, res.X)
	case *ast.CallExpr:
		if id, ok := res.Fun.(*ast.Ident); ok {
			return fns[p.TypesInfo.Uses[id]]
		}
	}
	return false
}

// aliasingExpr classifies whether assigning e shares a backing array,
// returning a short description of the alias ("" when e is fresh): a bare
// variable, a field or promoted field, a subslice of either, a slice
// conversion, or a call to an alias-returning function. append, make,
// literals, clone helpers, and nil are fresh.
func aliasingExpr(p *Pass, aliasFns map[types.Object]bool, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		if obj, ok := p.TypesInfo.Uses[e].(*types.Var); ok && obj != nil {
			return "an existing slice"
		}
		return "" // nil, constants
	case *ast.SelectorExpr:
		if fieldObj(p, e) != nil {
			return "an existing slice"
		}
		if _, ok := p.TypesInfo.Uses[e.Sel].(*types.Var); ok {
			return "an existing slice"
		}
		return ""
	case *ast.ParenExpr:
		return aliasingExpr(p, aliasFns, e.X)
	case *ast.SliceExpr:
		// s[i:j] still shares s's backing array; treat any slice of an
		// aliasing expression as aliasing.
		return aliasingExpr(p, aliasFns, e.X)
	case *ast.CallExpr:
		if tv, ok := p.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			// A conversion like []string(x) reuses x's backing array.
			if len(e.Args) == 1 && aliasingExpr(p, aliasFns, e.Args[0]) != "" {
				return "a slice conversion of an existing slice"
			}
			return ""
		}
		if id, ok := e.Fun.(*ast.Ident); ok && aliasFns[p.TypesInfo.Uses[id]] {
			return "a call to " + id.Name + ", which returns an existing slice unchanged"
		}
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if obj := p.TypesInfo.Uses[sel.Sel]; obj != nil && aliasFns[obj] {
				return "a call to " + sel.Sel.Name + ", which returns an existing slice unchanged"
			}
		}
		return ""
	}
	return ""
}
