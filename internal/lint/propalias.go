package lint

import (
	"go/ast"
)

// propSliceFields are the plan.Prop []string fields with copy-on-write
// semantics: the rewrite clones them at every transfer step, and
// internal/check's RulePropAlias verifies at runtime that no two live
// props share a backing array. This analyzer is the compile-time half: it
// flags assignments that store an existing slice variable into one of
// these fields, which aliases the backing array.
var propSliceFields = map[string]bool{
	"HashCols": true,
	"DupCols":  true,
}

// PropAlias flags `x.HashCols = y` / `x.DupCols = y.DupCols` style
// assignments (and the equivalent composite-literal fields) where the
// right-hand side is a plain variable or selector rather than a fresh
// slice. nil, slice literals, and call results (append, cloneCols, ...)
// are fine; a deliberate alias can be sanctioned with "// lint:alias-ok".
var PropAlias = &Analyzer{
	Name: "propalias",
	Doc:  "Prop.HashCols/DupCols must be set from freshly allocated slices (clone, append, literal), never aliased from another slice variable",
	Run:  runPropAlias,
}

func runPropAlias(p *Pass) error {
	marked := markerLines(p, "lint:alias-ok")
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || !propSliceFields[sel.Sel.Name] || i >= len(n.Rhs) {
						continue
					}
					if aliasingExpr(n.Rhs[i]) && !sanctioned(p, marked, n) {
						p.Report(n, "%s assigned from an existing slice; clone it (or mark // lint:alias-ok)", sel.Sel.Name)
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || !propSliceFields[key.Name] {
						continue
					}
					if aliasingExpr(kv.Value) && !sanctioned(p, marked, kv) {
						p.Report(kv, "%s initialized from an existing slice; clone it (or mark // lint:alias-ok)", key.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// aliasingExpr reports whether assigning e shares a backing array: a bare
// identifier (other than nil) or a selector chain. Calls, literals, slice
// expressions of fresh copies, and nil are all non-aliasing as written.
func aliasingExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr:
		return true
	case *ast.ParenExpr:
		return aliasingExpr(e.X)
	case *ast.SliceExpr:
		// s[i:j] still shares s's backing array unless it is a full-slice
		// expression of a fresh value; treat any slice of an aliasing
		// expression as aliasing.
		return aliasingExpr(e.X)
	}
	return false
}
