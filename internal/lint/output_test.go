package lint

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
	"time"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Pos:      token.Position{Filename: "internal/engine/engine.go", Line: 42, Column: 7},
			Analyzer: "partownership",
			Message:  "evalX indexes per-partition state out outside its own partition",
		},
		{
			Pos:      token.Position{Filename: "internal/trace/trace.go", Line: 9, Column: 2},
			Analyzer: "atomicdiscipline",
			Message:  "plain access to field RowsIn",
		},
	}
}

func TestWriteJSONGolden(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, sampleDiags(), nil); err != nil {
		t.Fatal(err)
	}
	const want = `{
  "findings": [
    {
      "file": "internal/engine/engine.go",
      "line": 42,
      "column": 7,
      "analyzer": "partownership",
      "message": "evalX indexes per-partition state out outside its own partition"
    },
    {
      "file": "internal/trace/trace.go",
      "line": 9,
      "column": 2,
      "analyzer": "atomicdiscipline",
      "message": "plain access to field RowsIn"
    }
  ]
}
`
	if sb.String() != want {
		t.Errorf("JSON output mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, nil, nil); err != nil {
		t.Fatal(err)
	}
	const want = "{\n  \"findings\": []\n}\n"
	if sb.String() != want {
		t.Errorf("empty JSON report must keep the findings array:\ngot %q want %q", sb.String(), want)
	}
}

func TestWriteJSONTimings(t *testing.T) {
	var sb strings.Builder
	timings := Timings{
		"batchlifetime":  1512600 * time.Nanosecond, // 1.5126ms: rounds to 1.513
		"invariantpanic": 40 * time.Microsecond,
	}
	if err := WriteJSON(&sb, nil, timings); err != nil {
		t.Fatal(err)
	}
	const want = `{
  "findings": [],
  "timings_ms": {
    "batchlifetime": 1.513,
    "invariantpanic": 0.04
  }
}
`
	if sb.String() != want {
		t.Errorf("JSON timings mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestWriteSARIFGolden(t *testing.T) {
	var sb strings.Builder
	if err := WriteSARIF(&sb, Analyzers(), sampleDiags()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	// Structure: valid JSON with the fields GitHub code scanning reads.
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want exactly 1 run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "preflint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Every analyzer plus the synthetic directive rule is in the inventory.
	wantRules := len(Analyzers()) + 1
	if len(run.Tool.Driver.Rules) != wantRules {
		t.Errorf("rule inventory has %d entries, want %d", len(run.Tool.Driver.Rules), wantRules)
	}
	if len(run.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "partownership" || r.Level != "error" {
		t.Errorf("result 0: ruleId=%q level=%q", r.RuleID, r.Level)
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/engine/engine.go" || loc.Region.StartLine != 42 {
		t.Errorf("result 0 location: uri=%q line=%d", loc.ArtifactLocation.URI, loc.Region.StartLine)
	}
}

func TestSARIFOverFixture(t *testing.T) {
	// End-to-end: real diagnostics from a real analyzer render into SARIF
	// with the analyzer as ruleId.
	const src = `package engine

func bad() {
	panic("boom")
}
`
	diags, err := RunSource("sarif_fixture.go", src, []*Analyzer{InvariantPanic})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %v", diags)
	}
	var sb strings.Builder
	if err := WriteSARIF(&sb, Analyzers(), diags); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"ruleId": "invariantpanic"`) {
		t.Errorf("SARIF missing invariantpanic result:\n%s", sb.String())
	}
}
