package lint

import (
	"go/ast"
	"strings"
)

// shipPkgs are the packages holding the two ship meters: engine owns the
// query-wide Stats meter ((*executor).ship) and trace owns the per-node
// cell meter ((*Op).AddShip).
var shipPkgs = map[string]bool{
	"engine": true,
	"trace":  true,
}

// shipCounterFields are the two counters every cross-partition row
// movement must charge. check.VerifyTrace's stats-sum law asserts at
// runtime that the two meters agree; this analyzer is the static half.
var shipCounterFields = map[string]bool{
	"RowsShipped":  true,
	"BytesShipped": true,
}

// ShipAccounting enforces that rows never cross a partition boundary off
// the books:
//
//  1. The ship counters have exactly one writer per meter. In engine,
//     plain writes to RowsShipped/BytesShipped live only in a function
//     named "ship"; in trace, atomic writes to them live only in
//     "AddShip". Everything else must go through those meters.
//  2. A function that charges one meter must charge both — calling
//     (*executor).ship without (*Op).AddShip desynchronizes the Stats
//     total from the trace cells (or vice versa) — and any function that
//     meters shipments is by definition moving rows across partitions, so
//     it must carry the "// lint:ship-boundary" declaration.
//  3. Conversely, a declared ship boundary that scatters rows into
//     another partition's slot (a variable-indexed write to per-partition
//     state) must call a meter: ship, AddShip, or the shipBatch wrapper.
var ShipAccounting = &Analyzer{
	Name: "shipaccounting",
	Doc:  "functions that move rows across partitions must meter both Stats and trace ship counters and be declared // lint:ship-boundary",
	Run:  runShipAccounting,
}

// shipMeterFor maps the package to the function allowed to write the
// counters, and whether that package's sanctioned writes are atomic.
func runShipAccounting(p *Pass) error {
	pkg := p.PkgName()
	if !shipPkgs[pkg] {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkShipWrites(p, pkg, fn)
			checkMeterPairing(p, fn)
			checkBoundaryMeters(p, fn)
		}
	}
	return nil
}

// checkShipWrites enforces rule 1: the counters have one writer per meter.
func checkShipWrites(p *Pass, pkg string, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if pkg != "engine" || name == "ship" {
				return true
			}
			for _, lhs := range n.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok && shipCounterFields[sel.Sel.Name] && fieldObj(p, sel) != nil {
					p.Report(n, "%s writes ship counter %s directly; all Stats ship accounting goes through (*executor).ship", name, sel.Sel.Name)
				}
			}
		case *ast.IncDecStmt:
			if pkg != "engine" || name == "ship" {
				return true
			}
			if sel, ok := n.X.(*ast.SelectorExpr); ok && shipCounterFields[sel.Sel.Name] && fieldObj(p, sel) != nil {
				p.Report(n, "%s writes ship counter %s directly; all Stats ship accounting goes through (*executor).ship", name, sel.Sel.Name)
			}
		case *ast.CallExpr:
			if name == "AddShip" {
				return true
			}
			pkgPath, fnName := calleePkgFunc(p, n)
			if pkgPath != "sync/atomic" || !isAtomicWriteName(fnName) || len(n.Args) == 0 {
				return true
			}
			if sel := addressedField(n.Args[0]); sel != nil && shipCounterFields[sel.Sel.Name] && fieldObj(p, sel) != nil {
				p.Report(n, "%s atomically writes ship counter %s; all trace ship accounting goes through (*Op).AddShip", name, sel.Sel.Name)
			}
		}
		return true
	})
}

// isAtomicWriteName reports whether a sync/atomic function name mutates
// its cell (Load* is a read and stays legal in snapshot code).
func isAtomicWriteName(name string) bool {
	for _, prefix := range []string{"Add", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// checkMeterPairing enforces rule 2 on every function other than the
// meters themselves.
func checkMeterPairing(p *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	if name == "ship" || name == "AddShip" {
		return
	}
	calls := calledNames(fn.Body)
	switch {
	case calls["ship"] && !calls["AddShip"]:
		p.Report(fn.Name, "%s charges the Stats ship meter but never records trace ship bytes; call AddShip on the operator's trace Op too", name)
	case calls["AddShip"] && !calls["ship"]:
		p.Report(fn.Name, "%s records trace ship bytes but never charges the Stats ship meter; call (*executor).ship too", name)
	}
	if (calls["ship"] || calls["AddShip"]) && !isShipBoundary(fn) {
		p.Report(fn.Name, "%s moves rows across partitions but is not declared; add a \"// lint:ship-boundary <reason>\" doc comment", name)
	}
}

// checkBoundaryMeters enforces rule 3: a declared boundary that scatters
// rows into variable partition slots must meter the movement.
func checkBoundaryMeters(p *Pass, fn *ast.FuncDecl) {
	if !isShipBoundary(fn) {
		return
	}
	calls := calledNames(fn.Body)
	if calls["ship"] || calls["AddShip"] || calls["shipBatch"] {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			ix, ok := lhs.(*ast.IndexExpr)
			if !ok || !isPartState(p, ix.X) {
				continue
			}
			if _, constIdx := ix.Index.(*ast.BasicLit); constIdx {
				continue // a fixed coordinator slot, not a scatter
			}
			p.Report(as, "ship boundary %s scatters rows across partitions of %s without metering; call shipBatch (or ship + AddShip)",
				fn.Name.Name, exprString(ix.X))
		}
		return true
	})
}

// calledNames collects the bare names of every function/method called in
// body (closures included: a meter call made inside a per-partition
// closure still charges the shipment).
func calledNames(body ast.Node) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			out[fun.Name] = true
		case *ast.SelectorExpr:
			out[fun.Sel.Name] = true
		}
		return true
	})
	return out
}
