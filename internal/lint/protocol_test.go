package lint

import (
	"strings"
	"testing"
)

func TestPublishOrderFixtures(t *testing.T)       { runWantDir(t, PublishOrder) }
func TestSnapshotDisciplineFixtures(t *testing.T) { runWantDir(t, SnapshotDiscipline) }
func TestIntentProtocolFixtures(t *testing.T)     { runWantDir(t, IntentProtocol) }
func TestHappensBeforeFixtures(t *testing.T)      { runWantDir(t, HappensBefore) }

// regressionPublishRace is the PR 6 publish-ordering race exactly as the
// 100-schedule chaos soak caught it at runtime: publishLocked stored the
// new Version first and rewrote the shared[] clone flags afterwards, so a
// concurrent writer whose only synchronization was the fast-path pub.Load
// could observe the fresh epoch with stale flags and mutate a partition
// the published version still referenced. The fix moved the bookkeeping
// before the store; this fixture preserves the pre-fix shape so the race
// class stays statically rejected.
const regressionPublishRace = `package table

import (
	"sync"
	"sync/atomic"
)

type Partition struct{ Rows []int }

type Version struct {
	Epoch int64
	Parts []*Partition
	Rows  int
}

type Partitioned struct {
	Parts        []*Partition
	OriginalRows int
	pub          atomic.Pointer[Version]
	pubMu        sync.Mutex
	shared       []bool
}

func (pt *Partitioned) publishLocked(epoch int64) int64 {
	parts := make([]*Partition, len(pt.Parts))
	copy(parts, pt.Parts)
	pt.pub.Store(&Version{Epoch: epoch, Parts: parts, Rows: pt.OriginalRows})
	if len(pt.shared) != len(pt.Parts) {
		pt.shared = make([]bool, len(pt.Parts)) // want "mutation of version-visible state after the atomic epoch publish"
	}
	for i := range pt.shared {
		pt.shared[i] = true // want "mutation of version-visible state after the atomic epoch publish"
	}
	return epoch
}
`

func TestRegressionPublishOrderingRace(t *testing.T) {
	runWant(t, "regression_publish_race.go", regressionPublishRace, []*Analyzer{PublishOrder})
}

// TestRegressionRequiresPublishOrder pins the regression to its analyzer:
// with publishorder disabled the rest of the suite is blind to the race,
// so this fixture — and CI's strict gate — genuinely depends on it.
func TestRegressionRequiresPublishOrder(t *testing.T) {
	var rest []*Analyzer
	for _, a := range Analyzers() {
		if a != PublishOrder {
			rest = append(rest, a)
		}
	}
	diags, err := RunSource("regression_publish_race.go", regressionPublishRace, rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("suite minus publishorder should not flag the race fixture, got %v", diags)
	}
	diags, err = RunSource("regression_publish_race.go", regressionPublishRace, []*Analyzer{PublishOrder})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("publishorder must flag the PR 6 race shape")
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "after the atomic epoch publish") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestCfgPackageIsLintClean is the self-check the CI gate mirrors: the
// dataflow substrate itself lints clean under the full suite, including
// the four analyzers built on top of it.
func TestCfgPackageIsLintClean(t *testing.T) {
	diags, err := RunDir("cfg", Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("internal/lint/cfg should be clean, got:\n%v", diags)
	}
}
