package lint

import (
	"strings"
	"testing"
)

func names(as []*Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

func TestSelectAnalyzersDefault(t *testing.T) {
	all := Analyzers()
	got, err := SelectAnalyzers(all, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(all) {
		t.Fatalf("no filters must keep the full roster: got %d of %d", len(got), len(all))
	}
}

func TestSelectAnalyzersOnly(t *testing.T) {
	got, err := SelectAnalyzers(Analyzers(), "batchlifetime, invariantpanic", "")
	if err != nil {
		t.Fatal(err)
	}
	// Roster order is preserved regardless of flag order.
	want := []string{"invariantpanic", "batchlifetime"}
	if strings.Join(names(got), " ") != strings.Join(want, " ") {
		t.Fatalf("got %v, want %v", names(got), want)
	}
}

func TestSelectAnalyzersSkip(t *testing.T) {
	all := Analyzers()
	got, err := SelectAnalyzers(all, "", "batchlifetime")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(all)-1 {
		t.Fatalf("skip of one analyzer: got %d, want %d", len(got), len(all)-1)
	}
	for _, a := range got {
		if a.Name == "batchlifetime" {
			t.Fatal("skipped analyzer still in the selection")
		}
	}
}

func TestSelectAnalyzersOnlyThenSkip(t *testing.T) {
	got, err := SelectAnalyzers(Analyzers(), "batchownership,batchlifetime", "batchlifetime")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "batchownership" {
		t.Fatalf("got %v, want [batchownership]", names(got))
	}
}

func TestSelectAnalyzersUnknown(t *testing.T) {
	if _, err := SelectAnalyzers(Analyzers(), "nosuchanalyzer", ""); err == nil {
		t.Fatal("unknown -only name must error, not silently drop")
	} else if !strings.Contains(err.Error(), "nosuchanalyzer") {
		t.Fatalf("error should name the offender: %v", err)
	}
	if _, err := SelectAnalyzers(Analyzers(), "", "batchliftime"); err == nil {
		t.Fatal("unknown -skip name must error: a typo would disable a gate")
	}
}
