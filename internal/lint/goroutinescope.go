package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goroutinePkgs are the packages where a leaked goroutine outlives a query:
// engine fan-out and fault-injection paths, plus the cluster health layer
// (hedge racers and the rebuild worker). A partition goroutine that is
// not joined before the query returns — or that cannot observe the query's
// cancellation — survives failover and keeps touching state the recovery
// path has already handed to a buddy node. The cluster's one deliberately
// long-lived goroutine (the rebuild worker, joined in Close rather than in
// its spawning function) carries a lint:ignore directive.
var goroutinePkgs = map[string]bool{
	"engine":  true,
	"fault":   true,
	"cluster": true,
}

// GoroutineScope enforces structured concurrency on every `go` statement
// in the execution packages:
//
//   - the goroutine must be a function literal that defers Done() on a
//     sync.WaitGroup;
//   - the same WaitGroup must be Add()ed before the `go` statement and
//     Wait()ed after it, in the same enclosing function (the join);
//   - the body must be able to observe the query: it references a
//     context.Context or a context.CancelFunc (checking ctx.Err, selecting
//     on Done, or cancelling siblings all qualify).
//
// Launching a named function (`go f()`) is flagged outright — the join
// cannot be verified. A deliberate exception takes a
// "//lint:ignore goroutinescope <reason>" directive.
var GoroutineScope = &Analyzer{
	Name: "goroutinescope",
	Doc:  "go statements in engine/fault must join a WaitGroup (Add before, deferred Done inside, Wait after) and observe the query context",
	Run:  runGoroutineScope,
}

func runGoroutineScope(p *Pass) error {
	if !goroutinePkgs[p.PkgName()] {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(p, fn, g)
				return true
			})
		}
	}
	return nil
}

func checkGoStmt(p *Pass, fn *ast.FuncDecl, g *ast.GoStmt) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		p.Report(g, "goroutine launches named function %s; spawn a literal that defers a WaitGroup Done so the join is verifiable", exprString(g.Call.Fun))
		return
	}
	wg := deferredDone(p, lit.Body)
	if wg == nil {
		p.Report(g, "goroutine in %s has no deferred WaitGroup Done; it can leak past query completion and failover", fn.Name.Name)
	} else {
		if !callsOn(p, fn.Body, wg, "Add", func(pos token.Pos) bool { return pos < g.Pos() }) {
			p.Report(g, "goroutine in %s: missing %s.Add before the go statement", fn.Name.Name, wg.Name())
		}
		if !callsOn(p, fn.Body, wg, "Wait", func(pos token.Pos) bool { return pos > g.End() }) {
			p.Report(g, "goroutine in %s: missing %s.Wait after the go statement; the fan-out is never joined", fn.Name.Name, wg.Name())
		}
	}
	if !observesContext(p, lit.Body) {
		p.Report(g, "goroutine in %s cannot observe the query context: reference a context.Context or context.CancelFunc so cancellation reaches it", fn.Name.Name)
	}
}

// deferredDone finds `defer wg.Done()` in the literal body and returns the
// WaitGroup variable it resolves to.
func deferredDone(p *Pass, body *ast.BlockStmt) types.Object {
	var wg types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if wg != nil {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		sel, ok := d.Call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" || !isWaitGroup(exprType(p, sel.X)) {
			return true
		}
		wg = rootIdentObj(p, sel.X)
		return true
	})
	return wg
}

// callsOn reports whether body contains a call wg.<method>() on the same
// WaitGroup object at a position satisfying where.
func callsOn(p *Pass, body ast.Node, wg types.Object, method string, where func(token.Pos) bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method || !isWaitGroup(exprType(p, sel.X)) {
			return true
		}
		if rootIdentObj(p, sel.X) == wg && where(call.Pos()) {
			found = true
		}
		return true
	})
	return found
}

func isWaitGroup(t types.Type) bool {
	return t != nil && isNamedType(t, "sync", "WaitGroup")
}

// observesContext reports whether the body references any value of type
// context.Context or context.CancelFunc.
func observesContext(p *Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return true
		}
		t := exprType(p, e)
		if t == nil {
			return true
		}
		if isNamedType(t, "context", "CancelFunc") || isContextInterface(t) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isContextInterface(t types.Type) bool {
	return isNamedType(t, "context", "Context")
}
