// Package fault provides deterministic, seed-driven fault injection for
// the engine's simulated shared-nothing cluster. A Policy declares which
// logical nodes are down, which are flaky or slow, and how often exchange
// shipments fail; an Injector answers per-work-unit questions ("does
// attempt 2 of operator 5 on node 3 crash?") from a pure hash of the seed
// and the unit's identity, so the fault schedule is a function of the
// policy alone — independent of goroutine scheduling, wall-clock time, and
// prior queries. That determinism is what lets tests assert that the same
// seed yields the same schedule and byte-identical query results.
package fault

import (
	"errors"
	"fmt"
	"time"
)

// Sentinel errors for the failure modes that survive the retry budget.
var (
	// ErrNodeFailed reports a work unit that crashed on every attempt the
	// retry budget allowed.
	ErrNodeFailed = errors.New("fault: node failed")
	// ErrShipmentFailed reports an exchange shipment that failed on every
	// attempt the retry budget allowed.
	ErrShipmentFailed = errors.New("fault: exchange shipment failed")
	// ErrPartitionLost reports a permanently failed node whose base-table
	// partition could not be reconstructed from redundancy (no surviving
	// duplicate copies cover it). Match with errors.Is; the concrete
	// *PartitionLostError carries the table and partition.
	ErrPartitionLost = errors.New("fault: partition lost")
	// ErrWriteCrashed reports a write batch killed by an injected crash
	// somewhere between logging its intent and publishing its epoch. The
	// store head may be torn; the loader refuses further writes until its
	// recovery routine has rolled back and replayed the pending intents.
	ErrWriteCrashed = errors.New("fault: write crashed mid-batch")
)

// PartitionLostError is the well-typed recovery failure: partition
// Partition of Table was on a permanently failed node and MissingRows of
// its stored tuple copies have no identical copy on any surviving node.
type PartitionLostError struct {
	Table       string
	Partition   int
	MissingRows int
}

func (e *PartitionLostError) Error() string {
	return fmt.Sprintf("fault: partition %d of table %s lost: %d rows have no surviving duplicate copy",
		e.Partition, e.Table, e.MissingRows)
}

// Unwrap makes errors.Is(err, ErrPartitionLost) work.
func (e *PartitionLostError) Unwrap() error { return ErrPartitionLost }

// Defaults for the retry budget and backoff schedule.
const (
	DefaultMaxAttempts = 4
	DefaultBackoffBase = 200 * time.Microsecond
	DefaultBackoffMax  = 5 * time.Millisecond
)

// Policy declares the faults to inject into one query execution. The zero
// value injects nothing.
type Policy struct {
	// Seed drives every probabilistic decision. Two executions with equal
	// policies produce identical fault schedules.
	Seed int64

	// DownNodes lists logical nodes that are permanently failed: their
	// work units fail over to a surviving buddy node and their base-table
	// partitions must be reconstructed from redundancy (or the query
	// fails with ErrPartitionLost).
	DownNodes []int

	// FlakyNodes maps a node to the number of leading attempts of every
	// work unit executing on it that crash before one succeeds (transient
	// crash-recover). A value >= the retry budget makes the node fail
	// every unit terminally.
	FlakyNodes map[int]int

	// RepairAfterProbes maps a node to the number of failed half-open
	// probes after which its node-level fault (permanent down, flaky
	// crashes) heals — the simulation stand-in for an operator replacing
	// the hardware while the cluster layer keeps probing. A node without
	// an entry never heals. Only consulted through the epoch-aware hooks
	// (NodeDownAt, ProbeOK); the legacy NodeDown treats every down node
	// as down forever.
	RepairAfterProbes map[int]int

	// CrashProb is the probability that any single work-unit attempt
	// crashes after doing its work; the output is discarded and the
	// attempt retried with backoff.
	CrashProb float64

	// StragglerProb is the probability that a work unit is a straggler;
	// a straggling unit sleeps StragglerDelay before each attempt.
	StragglerProb  float64
	StragglerDelay time.Duration

	// ShipFailProb is the probability that one exchange shipment attempt
	// fails; failed attempts are re-shipped (their bytes still hit the
	// wire and are additionally counted as wasted).
	ShipFailProb float64

	// WriteCrashProb is the probability that one write batch crashes at
	// an injected point of its apply path: after the intent is logged,
	// between fan-out steps, mid-append (a torn write: rows extended,
	// bitmaps not), or after the last step but before the epoch publishes.
	// The crashed loader surfaces ErrWriteCrashed and must run recovery.
	WriteCrashProb float64
	// WriteIndexRaceProb is the probability that a batch's cached §2.3
	// partition indexes are invalidated underneath it just before apply —
	// the simulation of an invalidation racing the write path. Outcomes
	// must not change: the batch replans from base data.
	WriteIndexRaceProb float64

	// MaxAttempts caps attempts per work unit / shipment
	// (default DefaultMaxAttempts).
	MaxAttempts int
	// BackoffBase and BackoffMax bound the capped exponential backoff
	// between attempts: min(BackoffBase << attempt, BackoffMax).
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// Timeout is the per-query deadline (0 = none). Exceeding it cancels
	// all in-flight units and surfaces context.DeadlineExceeded.
	Timeout time.Duration
}

// Injector answers fault questions for one execution. A nil *Injector is
// valid and injects nothing, so callers need no nil checks.
type Injector struct {
	seed           int64
	down           map[int]bool
	flaky          map[int]int
	repair         map[int]int
	crashProb      float64
	stragglerProb  float64
	stragglerDelay time.Duration
	shipFailProb   float64
	writeCrashProb float64
	writeRaceProb  float64
	maxAttempts    int
	backoffBase    time.Duration
	backoffMax     time.Duration
	timeout        time.Duration
}

// NewInjector compiles a policy into an injector, applying defaults.
func NewInjector(p Policy) *Injector {
	in := &Injector{
		seed:           p.Seed,
		down:           make(map[int]bool, len(p.DownNodes)),
		flaky:          make(map[int]int, len(p.FlakyNodes)),
		crashProb:      p.CrashProb,
		stragglerProb:  p.StragglerProb,
		stragglerDelay: p.StragglerDelay,
		shipFailProb:   p.ShipFailProb,
		writeCrashProb: p.WriteCrashProb,
		writeRaceProb:  p.WriteIndexRaceProb,
		maxAttempts:    p.MaxAttempts,
		backoffBase:    p.BackoffBase,
		backoffMax:     p.BackoffMax,
		timeout:        p.Timeout,
	}
	for _, n := range p.DownNodes {
		in.down[n] = true
	}
	for n, k := range p.FlakyNodes {
		in.flaky[n] = k
	}
	if len(p.RepairAfterProbes) > 0 {
		in.repair = make(map[int]int, len(p.RepairAfterProbes))
		for n, k := range p.RepairAfterProbes {
			in.repair[n] = k
		}
	}
	if in.maxAttempts <= 0 {
		in.maxAttempts = DefaultMaxAttempts
	}
	if in.backoffBase <= 0 {
		in.backoffBase = DefaultBackoffBase
	}
	if in.backoffMax <= 0 {
		in.backoffMax = DefaultBackoffMax
	}
	return in
}

// draw kinds keep the decision streams independent of each other.
const (
	kindCrash = iota + 1
	kindStraggle
	kindShip
	kindBackoff
	kindWriteCrash
	kindWriteStage
	kindWriteStep
	kindWriteRace
)

// mix64 is the SplitMix64 finalizer: a bijective avalanche mix.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw returns a uniform [0,1) value determined purely by the seed and
// the (kind, a, b, c) identity of the decision.
func (in *Injector) draw(kind, a, b, c int) float64 {
	h := mix64(uint64(in.seed))
	h = mix64(h ^ uint64(kind))
	h = mix64(h ^ uint64(a))
	h = mix64(h ^ uint64(b))
	h = mix64(h ^ uint64(c))
	return float64(h>>11) / (1 << 53)
}

// NodeDown reports whether a node is permanently failed, ignoring repair:
// the epoch-0 view, kept for callers without a cluster health layer.
func (in *Injector) NodeDown(node int) bool {
	return in.NodeDownAt(node, 0)
}

// NodeDownAt is the epoch-aware NodeDown: the node is down if the policy
// lists it and its fault has not yet healed after the given number of
// failed probes (the cluster layer's per-node probe count stands in for a
// repair clock).
func (in *Injector) NodeDownAt(node, probes int) bool {
	return in != nil && in.down[node] && !in.repaired(node, probes)
}

// ProbeOK is the half-open probe hook: it reports whether a trial request
// against the node would succeed after the given number of failed probes.
// A node the policy never faulted always probes healthy; a permanently
// down or terminally flaky node probes healthy only once repaired.
func (in *Injector) ProbeOK(node, probes int) bool {
	if in == nil {
		return true
	}
	if in.down[node] || in.flaky[node] >= in.maxAttempts {
		return in.repaired(node, probes)
	}
	return true
}

// repaired reports whether the node's fault healed: the policy declares a
// repair threshold and at least that many probes have failed since.
func (in *Injector) repaired(node, probes int) bool {
	k, ok := in.repair[node]
	return ok && probes >= k
}

// CrashAttempt reports whether the given attempt of a work unit
// (operator op, executing node) crashes.
func (in *Injector) CrashAttempt(op, node, attempt int) bool {
	if in == nil {
		return false
	}
	if attempt < in.flaky[node] {
		return true
	}
	return in.crashProb > 0 && in.draw(kindCrash, op, node, attempt) < in.crashProb
}

// StragglerDelay returns the extra latency a work unit pays before each
// attempt, or 0 when the unit is not a straggler.
func (in *Injector) StragglerDelay(op, node int) time.Duration {
	if in == nil || in.stragglerProb <= 0 || in.stragglerDelay <= 0 {
		return 0
	}
	if in.draw(kindStraggle, op, node, 0) < in.stragglerProb {
		return in.stragglerDelay
	}
	return 0
}

// ShipFail reports whether one exchange shipment attempt from src fails.
func (in *Injector) ShipFail(op, src, attempt int) bool {
	if in == nil || in.shipFailProb <= 0 {
		return false
	}
	return in.draw(kindShip, op, src, attempt) < in.shipFailProb
}

// MaxAttempts returns the per-unit retry budget.
func (in *Injector) MaxAttempts() int {
	if in == nil {
		return DefaultMaxAttempts
	}
	return in.maxAttempts
}

// Backoff returns the delay before retrying after the given failed
// attempt of a work unit (operator op on node): capped exponential
// min(base << attempt, max), jittered into [d/2, d) by a deterministic
// draw keyed by the retry's identity. The jitter desynchronizes retries
// from different units against a shared flaky node (pure exponential
// backoff fires them in lockstep), while a fixed seed still reproduces
// the schedule exactly — the jitter comes from the same mix64 stream as
// every other fault decision.
func (in *Injector) Backoff(op, node, attempt int) time.Duration {
	base, max := DefaultBackoffBase, DefaultBackoffMax
	if in != nil {
		base, max = in.backoffBase, in.backoffMax
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if in == nil || d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(in.draw(kindBackoff, op, node, attempt)*float64(half))
}

// Timeout returns the per-query deadline (0 = none).
func (in *Injector) Timeout() time.Duration {
	if in == nil {
		return 0
	}
	return in.timeout
}

// WriteStage identifies where in a write batch's apply path an injected
// crash fires. The stages map to the recovery-relevant states of the
// batch: intent durable but nothing applied, fan-out interrupted between
// partitions, a torn append inside one partition, and fully applied but
// unpublished.
type WriteStage int

const (
	// WriteNoCrash: the batch completes normally.
	WriteNoCrash WriteStage = iota
	// CrashAfterIntent fires after the intent is logged, before any
	// partition is touched. Recovery replays the intent from scratch.
	CrashAfterIntent
	// CrashMidApply fires between two fan-out steps: a prefix of the
	// batch's partitions carries the write, the rest does not.
	CrashMidApply
	// CrashTornApply fires inside one step's append loop: rows are
	// extended without their bitmap entries (the torn-page analogue),
	// violating the Rows/Dup/HasRef length invariant until recovery.
	CrashTornApply
	// CrashBeforePublish fires after the last step, before the batch's
	// epoch publishes: the head carries the full write, readers never
	// see it, and recovery replays it to completion.
	CrashBeforePublish
)

func (s WriteStage) String() string {
	switch s {
	case WriteNoCrash:
		return "no-crash"
	case CrashAfterIntent:
		return "after-intent"
	case CrashMidApply:
		return "mid-apply"
	case CrashTornApply:
		return "torn-apply"
	case CrashBeforePublish:
		return "before-publish"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// WriteCrash decides whether (and where) write batch seq crashes, given
// its planned fan-out step count. The decision is a pure function of the
// seed and the batch sequence number, so one seed reproduces the same
// crash schedule for the same write stream regardless of timing.
func (in *Injector) WriteCrash(seq, steps int) (WriteStage, int) {
	if in == nil || in.writeCrashProb <= 0 {
		return WriteNoCrash, 0
	}
	if in.draw(kindWriteCrash, seq, 0, 0) >= in.writeCrashProb {
		return WriteNoCrash, 0
	}
	stage := CrashAfterIntent + WriteStage(in.draw(kindWriteStage, seq, 0, 0)*4)
	if stage > CrashBeforePublish {
		stage = CrashBeforePublish
	}
	if steps == 0 && (stage == CrashMidApply || stage == CrashTornApply) {
		// A batch with no physical steps (e.g. a no-op delete) can only
		// crash around the intent or the publish.
		stage = CrashAfterIntent
	}
	step := 0
	if steps > 0 {
		step = int(in.draw(kindWriteStep, seq, 0, 0) * float64(steps))
		if step >= steps {
			step = steps - 1
		}
	}
	return stage, step
}

// WriteIndexRace decides whether batch seq's cached partition indexes
// are invalidated just before it applies (the invalidation race).
func (in *Injector) WriteIndexRace(seq int) bool {
	if in == nil || in.writeRaceProb <= 0 {
		return false
	}
	return in.draw(kindWriteRace, seq, 0, 0) < in.writeRaceProb
}
