package fault

import (
	"errors"
	"testing"
	"time"
)

// grid captures every injector decision over a small (op, node, attempt)
// cube so two injectors can be compared decision-for-decision.
func grid(in *Injector) (crash []bool, straggle []time.Duration, ship []bool) {
	for op := 0; op < 8; op++ {
		for node := 0; node < 4; node++ {
			straggle = append(straggle, in.StragglerDelay(op, node))
			for attempt := 0; attempt < 4; attempt++ {
				crash = append(crash, in.CrashAttempt(op, node, attempt))
				ship = append(ship, in.ShipFail(op, node, attempt))
			}
		}
	}
	return
}

func eqBools(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSameSeedSameSchedule(t *testing.T) {
	p := Policy{
		Seed:           42,
		CrashProb:      0.3,
		StragglerProb:  0.4,
		StragglerDelay: time.Millisecond,
		ShipFailProb:   0.2,
	}
	c1, s1, sh1 := grid(NewInjector(p))
	c2, s2, sh2 := grid(NewInjector(p))
	if !eqBools(c1, c2) || !eqBools(sh1, sh2) {
		t.Fatal("same policy produced different crash/ship schedules")
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("same policy produced different straggler schedules")
		}
	}
}

func TestDifferentSeedDifferentSchedule(t *testing.T) {
	p := Policy{
		Seed:           1,
		CrashProb:      0.3,
		StragglerProb:  0.4,
		StragglerDelay: time.Millisecond,
		ShipFailProb:   0.2,
	}
	q := p
	q.Seed = 2
	c1, _, sh1 := grid(NewInjector(p))
	c2, _, sh2 := grid(NewInjector(q))
	if eqBools(c1, c2) && eqBools(sh1, sh2) {
		t.Fatal("different seeds produced identical schedules over 128 draws")
	}
}

func TestCrashProbExtremes(t *testing.T) {
	always := NewInjector(Policy{CrashProb: 1})
	never := NewInjector(Policy{CrashProb: 0})
	for op := 0; op < 4; op++ {
		if !always.CrashAttempt(op, 0, 0) {
			t.Fatalf("CrashProb=1: op %d attempt did not crash", op)
		}
		if never.CrashAttempt(op, 0, 0) {
			t.Fatalf("CrashProb=0: op %d attempt crashed", op)
		}
	}
}

func TestFlakyNodes(t *testing.T) {
	in := NewInjector(Policy{FlakyNodes: map[int]int{1: 2}})
	for attempt := 0; attempt < 4; attempt++ {
		want := attempt < 2
		if got := in.CrashAttempt(7, 1, attempt); got != want {
			t.Fatalf("flaky node attempt %d: crash=%v, want %v", attempt, got, want)
		}
		if in.CrashAttempt(7, 0, attempt) {
			t.Fatalf("non-flaky node crashed on attempt %d", attempt)
		}
	}
}

func TestNodeDown(t *testing.T) {
	in := NewInjector(Policy{DownNodes: []int{2}})
	if !in.NodeDown(2) {
		t.Fatal("node 2 should be down")
	}
	if in.NodeDown(0) || in.NodeDown(1) || in.NodeDown(3) {
		t.Fatal("only node 2 should be down")
	}
}

// TestBackoffJitterBounds: the jittered backoff stays within [d/2, d] of
// the capped exponential envelope d = min(base << attempt, max).
func TestBackoffJitterBounds(t *testing.T) {
	in := NewInjector(Policy{Seed: 7, BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond})
	envelope := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		4 * time.Millisecond, 4 * time.Millisecond,
	}
	for attempt, d := range envelope {
		for node := 0; node < 4; node++ {
			got := in.Backoff(3, node, attempt)
			if got < d/2 || got > d {
				t.Fatalf("Backoff(3, %d, %d) = %v, want within [%v, %v]", node, attempt, got, d/2, d)
			}
		}
	}
}

// TestBackoffDeterministicAndDesynced: a fixed seed reproduces the jitter
// exactly, while two nodes retrying against the same operator are not in
// lockstep.
func TestBackoffDeterministicAndDesynced(t *testing.T) {
	a := NewInjector(Policy{Seed: 42, BackoffBase: time.Millisecond, BackoffMax: 8 * time.Millisecond})
	b := NewInjector(Policy{Seed: 42, BackoffBase: time.Millisecond, BackoffMax: 8 * time.Millisecond})
	for attempt := 0; attempt < 5; attempt++ {
		if a.Backoff(1, 0, attempt) != b.Backoff(1, 0, attempt) {
			t.Fatalf("same seed, different backoff at attempt %d", attempt)
		}
	}
	desynced := false
	for attempt := 0; attempt < 5; attempt++ {
		if a.Backoff(1, 0, attempt) != a.Backoff(1, 1, attempt) {
			desynced = true
		}
	}
	if !desynced {
		t.Fatal("nodes 0 and 1 retry in lockstep: jitter must desynchronize per-node schedules")
	}
}

func TestDefaults(t *testing.T) {
	in := NewInjector(Policy{})
	if in.MaxAttempts() != DefaultMaxAttempts {
		t.Fatalf("MaxAttempts = %d, want %d", in.MaxAttempts(), DefaultMaxAttempts)
	}
	if d := in.Backoff(0, 0, 0); d < DefaultBackoffBase/2 || d > DefaultBackoffBase {
		t.Fatalf("Backoff(0,0,0) = %v, want within [%v, %v]", d, DefaultBackoffBase/2, DefaultBackoffBase)
	}
	if d := in.Backoff(0, 0, 100); d < DefaultBackoffMax/2 || d > DefaultBackoffMax {
		t.Fatalf("Backoff(0,0,100) = %v, want within [%v, %v]", d, DefaultBackoffMax/2, DefaultBackoffMax)
	}
}

// TestNodeRepair: the epoch-aware hooks heal a down node once enough
// half-open probes have failed, while the legacy NodeDown never does.
func TestNodeRepair(t *testing.T) {
	in := NewInjector(Policy{DownNodes: []int{1}, RepairAfterProbes: map[int]int{1: 2}})
	if !in.NodeDownAt(1, 0) || !in.NodeDownAt(1, 1) {
		t.Fatal("node 1 should stay down before the repair threshold")
	}
	if in.ProbeOK(1, 0) || in.ProbeOK(1, 1) {
		t.Fatal("probes before the repair threshold must fail")
	}
	if in.NodeDownAt(1, 2) {
		t.Fatal("node 1 should be repaired after 2 failed probes")
	}
	if !in.ProbeOK(1, 2) {
		t.Fatal("probe at the repair threshold must succeed")
	}
	if !in.NodeDown(1) {
		t.Fatal("legacy NodeDown must treat a down node as down forever")
	}
	// A node without a repair entry never heals.
	in2 := NewInjector(Policy{DownNodes: []int{0}})
	if !in2.NodeDownAt(0, 1000) || in2.ProbeOK(0, 1000) {
		t.Fatal("node without RepairAfterProbes must never heal")
	}
	// A healthy node always probes OK; a terminally flaky node heals too.
	if !in2.ProbeOK(3, 0) {
		t.Fatal("unfaulted node must probe healthy")
	}
	in3 := NewInjector(Policy{FlakyNodes: map[int]int{2: 99}, RepairAfterProbes: map[int]int{2: 1}})
	if in3.ProbeOK(2, 0) || !in3.ProbeOK(2, 1) {
		t.Fatal("terminally flaky node must heal at its repair threshold")
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if in.NodeDown(0) || in.CrashAttempt(0, 0, 0) || in.ShipFail(0, 0, 0) {
		t.Fatal("nil injector injected a fault")
	}
	if in.StragglerDelay(0, 0) != 0 {
		t.Fatal("nil injector straggled")
	}
	if in.MaxAttempts() != DefaultMaxAttempts {
		t.Fatal("nil injector should use the default retry budget")
	}
	if in.Timeout() != 0 {
		t.Fatal("nil injector should have no timeout")
	}
}

func TestPartitionLostError(t *testing.T) {
	var err error = &PartitionLostError{Table: "orders", Partition: 3, MissingRows: 7}
	if !errors.Is(err, ErrPartitionLost) {
		t.Fatal("PartitionLostError should match ErrPartitionLost via errors.Is")
	}
	var ple *PartitionLostError
	if !errors.As(err, &ple) || ple.Table != "orders" || ple.Partition != 3 || ple.MissingRows != 7 {
		t.Fatalf("errors.As round-trip failed: %+v", ple)
	}
	if err.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestWriteCrashDeterministicAndDistributed(t *testing.T) {
	in := NewInjector(Policy{Seed: 11, WriteCrashProb: 0.5})
	seen := map[WriteStage]int{}
	crashes := 0
	for seq := 0; seq < 400; seq++ {
		stage, step := in.WriteCrash(seq, 6)
		s2, p2 := in.WriteCrash(seq, 6)
		if stage != s2 || step != p2 {
			t.Fatalf("seq %d: write-crash draw not deterministic", seq)
		}
		if stage == WriteNoCrash {
			continue
		}
		crashes++
		seen[stage]++
		if step < 0 || step >= 6 {
			t.Fatalf("seq %d: step %d out of range", seq, step)
		}
	}
	if crashes < 100 || crashes > 300 {
		t.Fatalf("crashes = %d of 400 at prob 0.5, schedule skewed", crashes)
	}
	for _, stage := range []WriteStage{CrashAfterIntent, CrashMidApply, CrashTornApply, CrashBeforePublish} {
		if seen[stage] == 0 {
			t.Fatalf("stage %v never drawn in 400 batches", stage)
		}
		if stage.String() == "" {
			t.Fatalf("stage %v renders empty", stage)
		}
	}
}

func TestWriteCrashZeroStepsAvoidsApplyStages(t *testing.T) {
	in := NewInjector(Policy{Seed: 5, WriteCrashProb: 1})
	for seq := 0; seq < 64; seq++ {
		stage, step := in.WriteCrash(seq, 0)
		if stage == CrashMidApply || stage == CrashTornApply {
			t.Fatalf("seq %d: apply-stage crash with zero steps", seq)
		}
		if step != 0 {
			t.Fatalf("seq %d: step = %d with zero steps", seq, step)
		}
	}
}

func TestWriteHooksNilAndDisabled(t *testing.T) {
	var nilIn *Injector
	if s, _ := nilIn.WriteCrash(1, 4); s != WriteNoCrash {
		t.Fatal("nil injector crashed a write")
	}
	if nilIn.WriteIndexRace(1) {
		t.Fatal("nil injector raced an index")
	}
	in := NewInjector(Policy{Seed: 9})
	if s, _ := in.WriteCrash(1, 4); s != WriteNoCrash {
		t.Fatal("zero WriteCrashProb crashed a write")
	}
	if in.WriteIndexRace(1) {
		t.Fatal("zero WriteIndexRaceProb raced an index")
	}
	raced := 0
	inR := NewInjector(Policy{Seed: 9, WriteIndexRaceProb: 0.5})
	for seq := 0; seq < 100; seq++ {
		if inR.WriteIndexRace(seq) != inR.WriteIndexRace(seq) {
			t.Fatal("index-race draw not deterministic")
		}
		if inR.WriteIndexRace(seq) {
			raced++
		}
	}
	if raced == 0 || raced == 100 {
		t.Fatalf("raced = %d of 100 at prob 0.5", raced)
	}
}
