package fault

import (
	"errors"
	"testing"
	"time"
)

// grid captures every injector decision over a small (op, node, attempt)
// cube so two injectors can be compared decision-for-decision.
func grid(in *Injector) (crash []bool, straggle []time.Duration, ship []bool) {
	for op := 0; op < 8; op++ {
		for node := 0; node < 4; node++ {
			straggle = append(straggle, in.StragglerDelay(op, node))
			for attempt := 0; attempt < 4; attempt++ {
				crash = append(crash, in.CrashAttempt(op, node, attempt))
				ship = append(ship, in.ShipFail(op, node, attempt))
			}
		}
	}
	return
}

func eqBools(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSameSeedSameSchedule(t *testing.T) {
	p := Policy{
		Seed:           42,
		CrashProb:      0.3,
		StragglerProb:  0.4,
		StragglerDelay: time.Millisecond,
		ShipFailProb:   0.2,
	}
	c1, s1, sh1 := grid(NewInjector(p))
	c2, s2, sh2 := grid(NewInjector(p))
	if !eqBools(c1, c2) || !eqBools(sh1, sh2) {
		t.Fatal("same policy produced different crash/ship schedules")
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("same policy produced different straggler schedules")
		}
	}
}

func TestDifferentSeedDifferentSchedule(t *testing.T) {
	p := Policy{
		Seed:           1,
		CrashProb:      0.3,
		StragglerProb:  0.4,
		StragglerDelay: time.Millisecond,
		ShipFailProb:   0.2,
	}
	q := p
	q.Seed = 2
	c1, _, sh1 := grid(NewInjector(p))
	c2, _, sh2 := grid(NewInjector(q))
	if eqBools(c1, c2) && eqBools(sh1, sh2) {
		t.Fatal("different seeds produced identical schedules over 128 draws")
	}
}

func TestCrashProbExtremes(t *testing.T) {
	always := NewInjector(Policy{CrashProb: 1})
	never := NewInjector(Policy{CrashProb: 0})
	for op := 0; op < 4; op++ {
		if !always.CrashAttempt(op, 0, 0) {
			t.Fatalf("CrashProb=1: op %d attempt did not crash", op)
		}
		if never.CrashAttempt(op, 0, 0) {
			t.Fatalf("CrashProb=0: op %d attempt crashed", op)
		}
	}
}

func TestFlakyNodes(t *testing.T) {
	in := NewInjector(Policy{FlakyNodes: map[int]int{1: 2}})
	for attempt := 0; attempt < 4; attempt++ {
		want := attempt < 2
		if got := in.CrashAttempt(7, 1, attempt); got != want {
			t.Fatalf("flaky node attempt %d: crash=%v, want %v", attempt, got, want)
		}
		if in.CrashAttempt(7, 0, attempt) {
			t.Fatalf("non-flaky node crashed on attempt %d", attempt)
		}
	}
}

func TestNodeDown(t *testing.T) {
	in := NewInjector(Policy{DownNodes: []int{2}})
	if !in.NodeDown(2) {
		t.Fatal("node 2 should be down")
	}
	if in.NodeDown(0) || in.NodeDown(1) || in.NodeDown(3) {
		t.Fatal("only node 2 should be down")
	}
}

func TestBackoffCapped(t *testing.T) {
	in := NewInjector(Policy{BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond})
	want := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		4 * time.Millisecond, 4 * time.Millisecond,
	}
	for attempt, w := range want {
		if got := in.Backoff(attempt); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestDefaults(t *testing.T) {
	in := NewInjector(Policy{})
	if in.MaxAttempts() != DefaultMaxAttempts {
		t.Fatalf("MaxAttempts = %d, want %d", in.MaxAttempts(), DefaultMaxAttempts)
	}
	if in.Backoff(0) != DefaultBackoffBase {
		t.Fatalf("Backoff(0) = %v, want %v", in.Backoff(0), DefaultBackoffBase)
	}
	if in.Backoff(100) != DefaultBackoffMax {
		t.Fatalf("Backoff(100) = %v, want %v", in.Backoff(100), DefaultBackoffMax)
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if in.NodeDown(0) || in.CrashAttempt(0, 0, 0) || in.ShipFail(0, 0, 0) {
		t.Fatal("nil injector injected a fault")
	}
	if in.StragglerDelay(0, 0) != 0 {
		t.Fatal("nil injector straggled")
	}
	if in.MaxAttempts() != DefaultMaxAttempts {
		t.Fatal("nil injector should use the default retry budget")
	}
	if in.Timeout() != 0 {
		t.Fatal("nil injector should have no timeout")
	}
}

func TestPartitionLostError(t *testing.T) {
	var err error = &PartitionLostError{Table: "orders", Partition: 3, MissingRows: 7}
	if !errors.Is(err, ErrPartitionLost) {
		t.Fatal("PartitionLostError should match ErrPartitionLost via errors.Is")
	}
	var ple *PartitionLostError
	if !errors.As(err, &ple) || ple.Table != "orders" || ple.Partition != 3 || ple.MissingRows != 7 {
		t.Fatalf("errors.As round-trip failed: %+v", ple)
	}
	if err.Error() == "" {
		t.Fatal("empty error string")
	}
}
