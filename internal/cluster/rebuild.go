package cluster

import (
	"pref/internal/table"
	"pref/internal/value"
)

// Background partition rebuild.
//
// Query-time recovery (internal/engine/recovery.go) reconstructs a lost
// partition's scan output from surviving PREF duplicates while a query
// is running — every degraded query re-pays that reconstruction. The
// rebuild worker generalizes it to ahead-of-time: when a down node
// passes its half-open probe, the worker re-materializes the node's
// partitions from the same redundancy once, in the background, and only
// then flips the node back to healthy. Queries admitted while the
// rebuild runs still route around the node (state recovering, not
// serving); queries admitted after it completes use the node normally,
// with no recovery work at all.
//
// Simulation boundary: as in recoverScan, the lost partitions' manifests
// are read from the in-memory partitions (standing in for the off-node
// recovery catalog), and "re-materializing" means verifying that every
// stored tuple copy has an identical copy on a surviving serving node
// and metering the copy-back volume. A row with no surviving copy makes
// the node unrecoverable: it stays down, marked lost, and is never
// probed again.

// RebuildSource is what the rebuild worker re-materializes partitions
// from: the cluster's partitioned database.
type RebuildSource = *table.PartitionedDatabase

// rebuildJob asks the worker to re-materialize one node's partitions.
type rebuildJob struct {
	node int
	src  RebuildSource
}

// enqueueRebuild hands a freshly probed node to the background worker.
// Callers hold c.mu. With no rebuild source the node recovers
// immediately: there is nothing to re-materialize.
func (c *Cluster) enqueueRebuild(nodeID int, src RebuildSource) {
	if src == nil {
		c.finishRecoveryLocked(nodeID, true, 0, 0)
		return
	}
	c.pending++
	// The buffer holds one job per node and a node enqueues only on its
	// single down → recovering transition, so this send cannot block.
	c.jobs <- rebuildJob{node: nodeID, src: src}
}

// finishRecoveryLocked applies a rebuild outcome to the node's state.
// Callers hold c.mu.
func (c *Cluster) finishRecoveryLocked(nodeID int, ok bool, rows, bytes int64) {
	n := &c.nodes[nodeID]
	if ok {
		c.stats.Rebuilds++
		c.stats.RebuiltRows += rows
		c.stats.RebuiltBytes += bytes
		n.recovered = true
		n.consecFails = 0
		c.setState(nodeID, Healthy)
		return
	}
	c.stats.FailedRebuilds++
	n.lost = true
	c.setState(nodeID, Down)
}

// rebuildWorker is the cluster's long-lived background goroutine: it
// drains rebuild jobs until Close cancels the cluster context.
func (c *Cluster) rebuildWorker() {
	defer c.wg.Done()
	for {
		select {
		case <-c.ctx.Done():
			return
		case job := <-c.jobs:
			ok, rows, bytes := c.rebuild(job)
			c.mu.Lock()
			c.finishRecoveryLocked(job.node, ok, rows, bytes)
			c.pending--
			if c.pending == 0 {
				c.idle.Broadcast()
			}
			c.mu.Unlock()
		}
	}
}

// rebuild re-materializes every partition of job.node from surviving
// duplicate copies, returning whether the node is fully recoverable and
// the recovered row/byte volume. It runs on the worker goroutine and
// takes c.mu only for the serving snapshot, not for the row scans. The
// data is read from the source's last published epoch snapshot, never
// the live write head: a crashed batch's torn partitions are invisible
// here, so re-materialization always works from crash-consistent state.
func (c *Cluster) rebuild(job rebuildJob) (ok bool, rows, bytes int64) {
	c.mu.Lock()
	serving := make([]bool, len(c.nodes))
	for i := range c.nodes {
		s := c.nodes[i].state
		serving[i] = (s == Healthy || s == Suspect) && i != job.node
	}
	c.mu.Unlock()

	snap := job.src.Snapshot()
	for name, pt := range job.src.Tables {
		if c.ctx.Err() != nil {
			return false, 0, 0
		}
		parts := snap.Parts(name)
		if job.node >= len(parts) {
			continue
		}
		part := parts[job.node]
		if part.Len() == 0 {
			continue
		}
		allCols := make([]int, pt.Meta.NumCols())
		for i := range allCols {
			allCols[i] = i
		}
		// Index the full-row contents held by serving survivors, then
		// check the lost partition's manifest against it — the
		// ahead-of-time analogue of recoverScan's survivor sweep.
		idx := make(map[value.Key]bool)
		for q, p := range parts {
			if q < len(serving) && serving[q] {
				for _, r := range p.Rows {
					idx[value.MakeKey(r, allCols)] = true
				}
			}
		}
		for _, r := range part.Rows {
			if !idx[value.MakeKey(r, allCols)] {
				return false, 0, 0
			}
		}
		rows += int64(part.Len())
		bytes += int64(part.Len()) * int64(pt.Meta.NumCols()) * 8
	}
	return true, rows, bytes
}

// WaitRebuilds blocks until no rebuild jobs are pending. Tests use it to
// make the background worker deterministic; it returns immediately on a
// nil or closed cluster.
func (c *Cluster) WaitRebuilds() {
	if c == nil {
		return
	}
	c.mu.Lock()
	for c.pending > 0 && !c.closed {
		c.idle.Wait()
	}
	c.mu.Unlock()
}
