package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"pref/internal/catalog"
	"pref/internal/table"
	"pref/internal/value"
)

// newTestCluster builds a small cluster with deterministic thresholds and
// registers its Close with the test.
func newTestCluster(t *testing.T, opt Options) *Cluster {
	t.Helper()
	if opt.Nodes == 0 {
		opt.Nodes = 4
	}
	c := New(opt)
	t.Cleanup(c.Close)
	return c
}

// testPDB builds a 4-partition database where every row of table "t" is
// stored on two partitions (p and (p+1)%4), so any single node is fully
// rebuildable from survivors.
func testPDB(t *testing.T) *table.PartitionedDatabase {
	t.Helper()
	meta, err := catalog.NewTable("t", []catalog.Column{{Name: "k"}, {Name: "v"}}, "k")
	if err != nil {
		t.Fatal(err)
	}
	pt := table.NewPartitioned(meta, 4)
	for k := 0; k < 20; k++ {
		p := k % 4
		row := value.Tuple{int64(k), int64(100 + k)}
		pt.Parts[p].Append(row, false, false)
		pt.Parts[(p+1)%4].Append(row, true, false)
	}
	pt.OriginalRows = 20
	return &table.PartitionedDatabase{Tables: map[string]*table.Partitioned{"t": pt}, N: 4}
}

// uncoveredPDB stores every row exactly once: losing any node loses data.
func uncoveredPDB(t *testing.T) *table.PartitionedDatabase {
	t.Helper()
	meta, err := catalog.NewTable("t", []catalog.Column{{Name: "k"}}, "k")
	if err != nil {
		t.Fatal(err)
	}
	pt := table.NewPartitioned(meta, 4)
	for k := 0; k < 8; k++ {
		pt.Parts[k%4].Append(value.Tuple{int64(k)}, false, false)
	}
	pt.OriginalRows = 8
	return &table.PartitionedDatabase{Tables: map[string]*table.Partitioned{"t": pt}, N: 4}
}

func TestNilClusterIsDisabled(t *testing.T) {
	var c *Cluster
	release, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
	if v, snap, n := c.BeginQuery(nil, nil, nil); len(v.Serving) != 0 || snap != nil || n != 0 {
		t.Fatal("nil cluster must return an empty view")
	}
	c.ReportSuccess(0)
	c.ReportFailure(0)
	if !c.Allow(0) {
		t.Fatal("nil cluster must allow everything")
	}
	if c.NodeState(0) != Healthy {
		t.Fatal("nil cluster nodes are healthy")
	}
	if _, ok := c.HedgeDelay(); ok {
		t.Fatal("nil cluster must not hedge")
	}
	c.ObserveUnit(time.Millisecond)
	c.WaitRebuilds()
	c.Close()
	built := 0
	idx := c.SurvivorIndex("t", "0000", 0, func() map[value.Key]bool { built++; return map[value.Key]bool{} })
	if built != 1 || idx == nil {
		t.Fatal("nil cluster SurvivorIndex must pass through to build")
	}
}

// TestBreakerTripAndFSM walks healthy → suspect → down on consecutive
// failures and back to healthy on success before the trip.
func TestBreakerTripAndFSM(t *testing.T) {
	c := newTestCluster(t, Options{SuspectAfter: 1, TripAfter: 3})
	if c.NodeState(2) != Healthy {
		t.Fatal("fresh node must be healthy")
	}
	c.ReportFailure(2)
	if c.NodeState(2) != Suspect {
		t.Fatalf("after 1 failure: %v, want suspect", c.NodeState(2))
	}
	// A success clears the streak.
	c.ReportSuccess(2)
	if c.NodeState(2) != Healthy {
		t.Fatalf("after success: %v, want healthy", c.NodeState(2))
	}
	// Three consecutive failures trip the breaker.
	c.ReportFailure(2)
	c.ReportFailure(2)
	if !c.Allow(2) {
		t.Fatal("suspect node must still serve")
	}
	c.ReportFailure(2)
	if c.NodeState(2) != Down {
		t.Fatalf("after 3 failures: %v, want down", c.NodeState(2))
	}
	if c.Allow(2) {
		t.Fatal("tripped node must not serve")
	}
	if got := c.Stats().Trips; got != 1 {
		t.Fatalf("Trips = %d, want 1", got)
	}
	// Further failures on a down node are no-ops.
	c.ReportFailure(2)
	if got := c.Stats().Trips; got != 1 {
		t.Fatalf("Trips after redundant failure = %d, want 1", got)
	}
	v := c.View()
	if v.Serving[2] || !v.Serving[0] {
		t.Fatal("view must exclude only the tripped node")
	}
}

// TestEpochInvalidatesCaches: survivor-index and placement caches are
// reused within an epoch and dropped on a health transition.
func TestEpochInvalidatesCaches(t *testing.T) {
	c := newTestCluster(t, Options{TripAfter: 1})
	builds := 0
	build := func() map[value.Key]bool { builds++; return map[value.Key]bool{} }
	c.SurvivorIndex("t", "0000", 0, build)
	c.SurvivorIndex("t", "0000", 0, build)
	if builds != 1 {
		t.Fatalf("builds = %d, want 1 (cached within epoch)", builds)
	}
	places := 0
	c.Placement("0000", func() ([]int, error) { places++; return []int{0, 1, 2, 3}, nil })
	c.Placement("0000", func() ([]int, error) { places++; return []int{0, 1, 2, 3}, nil })
	if places != 1 {
		t.Fatalf("places = %d, want 1 (cached within epoch)", places)
	}
	c.ReportFailure(1) // trips (TripAfter 1): epoch bump
	c.SurvivorIndex("t", "0000", 0, build)
	if builds != 2 {
		t.Fatalf("builds after epoch change = %d, want 2", builds)
	}
	if err := errors.New("boom"); func() error {
		_, e := c.Placement("x", func() ([]int, error) { return nil, err })
		return e
	}() != err {
		t.Fatal("Placement must propagate build errors uncached")
	}
}

// TestProbeLifecycleAndRebuild drives the full FSM loop: trip via
// BeginQuery's downNow hook, cool down over completed queries, fail one
// half-open probe, pass the next, rebuild in the background, serve again.
func TestProbeLifecycleAndRebuild(t *testing.T) {
	c := newTestCluster(t, Options{CoolDownQueries: 1, TripAfter: 3})
	pdb := testPDB(t)
	downNow := func(n int) bool { return n == 1 }
	probeOK := func(n, probes int) bool { return probes >= 1 } // second probe passes

	// Query 1: node 1 reported down now → tripped without burning retries.
	v, _, probes := c.BeginQuery(pdb, downNow, probeOK)
	if probes != 0 || v.Serving[1] || c.NodeState(1) != Down {
		t.Fatalf("query 1: probes=%d serving=%v state=%v", probes, v.Serving[1], c.NodeState(1))
	}
	rel, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel() // completes query 1: cool-down 1 → 0

	// Query 2: cool-down expired → half-open probe, which fails.
	v, _, probes = c.BeginQuery(pdb, downNow, probeOK)
	if probes != 1 || v.Serving[1] {
		t.Fatalf("query 2: probes=%d serving=%v, want a failed probe", probes, v.Serving[1])
	}
	if v.Probes[1] != 1 {
		t.Fatalf("query 2: view probe count = %d, want 1", v.Probes[1])
	}
	rel, _ = c.Admit(context.Background())
	rel()

	// Query 3: second probe passes → recovering, rebuild enqueued.
	_, _, probes = c.BeginQuery(pdb, downNow, probeOK)
	if probes != 1 {
		t.Fatalf("query 3: probes=%d, want 1", probes)
	}
	c.WaitRebuilds()
	if c.NodeState(1) != Healthy {
		t.Fatalf("after rebuild: %v, want healthy", c.NodeState(1))
	}
	st := c.Stats()
	if st.Probes != 2 || st.ProbeSuccesses != 1 || st.Rebuilds != 1 {
		t.Fatalf("stats = %+v, want 2 probes, 1 success, 1 rebuild", st)
	}
	if st.RebuiltRows != 10 { // node 1 held 5 primaries + 5 dup copies
		t.Fatalf("RebuiltRows = %d, want 10", st.RebuiltRows)
	}
	if st.RebuiltBytes != 10*2*8 {
		t.Fatalf("RebuiltBytes = %d, want %d", st.RebuiltBytes, 10*2*8)
	}
	// Query 4: the recovered node serves again and downNow is ignored
	// (the view reports it healed so the engine clears injected faults).
	v, _, _ = c.BeginQuery(pdb, downNow, probeOK)
	if !v.Serving[1] || !v.Recovered[1] {
		t.Fatalf("query 4: serving=%v recovered=%v, want both", v.Serving[1], v.Recovered[1])
	}
}

// TestRebuildUnrecoverable: a node whose partition has no surviving copy
// stays down for good, marked lost, and is never probed again.
func TestRebuildUnrecoverable(t *testing.T) {
	c := newTestCluster(t, Options{CoolDownQueries: 1})
	pdb := uncoveredPDB(t)
	downNow := func(n int) bool { return n == 2 }
	probeOK := func(int, int) bool { return true }

	c.BeginQuery(pdb, downNow, probeOK) // trip
	rel, _ := c.Admit(context.Background())
	rel()
	c.BeginQuery(pdb, downNow, probeOK) // probe passes → rebuild attempt
	c.WaitRebuilds()
	if c.NodeState(2) != Down {
		t.Fatalf("unrecoverable node state = %v, want down", c.NodeState(2))
	}
	st := c.Stats()
	if st.FailedRebuilds != 1 || st.Rebuilds != 0 {
		t.Fatalf("stats = %+v, want exactly 1 failed rebuild", st)
	}
	// No further probes: the node is lost, not cooling down.
	rel, _ = c.Admit(context.Background())
	rel()
	if _, _, probes := c.BeginQuery(pdb, downNow, probeOK); probes != 0 {
		t.Fatal("lost node must not be probed again")
	}
}

// TestAdmissionQueueTimeout: with one slot taken, a second query times
// out with the typed admission error; releasing frees the slot.
func TestAdmissionQueueTimeout(t *testing.T) {
	c := newTestCluster(t, Options{MaxConcurrent: 1, QueueTimeout: 5 * time.Millisecond})
	rel1, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(context.Background()); !errors.Is(err, ErrAdmissionTimeout) {
		t.Fatalf("second Admit = %v, want ErrAdmissionTimeout", err)
	}
	rel1()
	rel2, err := c.Admit(context.Background())
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	rel2()
	rel2() // double release must be a no-op
	st := c.Stats()
	if st.Admitted != 2 || st.Rejected != 1 {
		t.Fatalf("admitted=%d rejected=%d, want 2/1", st.Admitted, st.Rejected)
	}
}

// TestAdmissionContextCancel: a cancelled caller context aborts the wait.
func TestAdmissionContextCancel(t *testing.T) {
	c := newTestCluster(t, Options{MaxConcurrent: 1})
	rel, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Admit(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Admit under cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestHedgeDelayPricing: cold sampler → MaxDelay; warm sampler →
// clamp(quantile × multiplier, Min, Max).
func TestHedgeDelayPricing(t *testing.T) {
	c := newTestCluster(t, Options{Hedge: HedgePolicy{
		Enabled: true, Quantile: 0.9, Multiplier: 2,
		MinDelay: time.Millisecond, MaxDelay: 100 * time.Millisecond, MinSamples: 8,
	}})
	d, ok := c.HedgeDelay()
	if !ok || d != 100*time.Millisecond {
		t.Fatalf("cold delay = %v ok=%v, want MaxDelay", d, ok)
	}
	for i := 0; i < 100; i++ {
		c.ObserveUnit(3 * time.Millisecond)
	}
	d, ok = c.HedgeDelay()
	if !ok || d != 6*time.Millisecond {
		t.Fatalf("warm delay = %v ok=%v, want 6ms (2 × p90 of 3ms)", d, ok)
	}
	// Clamping at both ends.
	cLow := newTestCluster(t, Options{Hedge: HedgePolicy{
		Enabled: true, MinDelay: 50 * time.Millisecond, MaxDelay: 60 * time.Millisecond, MinSamples: 1,
	}})
	cLow.ObserveUnit(time.Microsecond)
	if d, _ := cLow.HedgeDelay(); d != 50*time.Millisecond {
		t.Fatalf("clamped-low delay = %v, want MinDelay", d)
	}
	off := newTestCluster(t, Options{})
	if _, ok := off.HedgeDelay(); ok {
		t.Fatal("hedging disabled by default")
	}
}

// TestCloseIdempotentAndWakesWaiters: Close joins the worker, is safe to
// call twice, and rejects later admissions.
func TestCloseIdempotentAndWakesWaiters(t *testing.T) {
	c := New(Options{Nodes: 2})
	c.Close()
	c.Close()
	if _, err := c.Admit(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Admit after Close = %v, want ErrClosed", err)
	}
	c.WaitRebuilds() // must not hang on a closed cluster
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Healthy: "healthy", Suspect: "suspect", Down: "down", Recovering: "recovering", State(9): "state(9)",
	} {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
