package cluster

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is the ring-buffer size of the cross-query unit-latency
// sampler: large enough for a stable tail estimate, small enough that the
// estimate tracks regime changes within a few queries.
const latencyWindow = 512

// HedgePolicy configures speculative duplicates for straggling work
// units. When a partition's unit has run longer than
// Multiplier × the Quantile latency of recent units (clamped to
// [MinDelay, MaxDelay]), the engine launches a duplicate of the unit on
// a surviving buddy node; the first result wins and the loser is
// cancelled, its output metered as wasted hedge work. The zero value
// disables hedging.
type HedgePolicy struct {
	// Enabled turns hedging on.
	Enabled bool
	// Quantile of the recent unit-latency distribution used as the base
	// delay (default 0.95).
	Quantile float64
	// Multiplier scales the quantile latency into the hedge delay
	// (default 2): a unit must run Multiplier× longer than the tail of
	// its peers before a duplicate launches.
	Multiplier float64
	// MinDelay and MaxDelay clamp the delay. MinDelay guards against
	// hedging everything when the cluster is uniformly fast (default
	// 100µs); MaxDelay bounds how long a straggler is waited on before
	// the duplicate launches, and is also the cold-start delay while the
	// sampler has fewer than MinSamples observations (default 50ms).
	MinDelay time.Duration
	MaxDelay time.Duration
	// MinSamples is how many unit latencies must be observed before the
	// quantile is trusted (default 16).
	MinSamples int
}

// withDefaults fills unset policy fields.
func (h HedgePolicy) withDefaults() HedgePolicy {
	if h.Quantile <= 0 || h.Quantile >= 1 {
		h.Quantile = 0.95
	}
	if h.Multiplier <= 0 {
		h.Multiplier = 2
	}
	if h.MinDelay <= 0 {
		h.MinDelay = 100 * time.Microsecond
	}
	if h.MaxDelay <= 0 {
		h.MaxDelay = 50 * time.Millisecond
	}
	if h.MinSamples <= 0 {
		h.MinSamples = 16
	}
	return h
}

// sampler is a fixed-window reservoir of recent work-unit latencies,
// shared across queries. It is deliberately simple: a mutex-guarded ring
// buffer plus a sort on read — unit counts are small (partitions ×
// operators per query) and the quantile is read once per query.
type sampler struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	n    int // observations stored, ≤ len(buf)
}

func (s *sampler) init(window int) {
	s.buf = make([]time.Duration, window)
}

// observe records one unit latency.
func (s *sampler) observe(d time.Duration) {
	s.mu.Lock()
	s.buf[s.next] = d
	s.next = (s.next + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.mu.Unlock()
}

// quantile returns the q-quantile of the stored latencies and the number
// of observations backing it.
func (s *sampler) quantile(q float64) (time.Duration, int) {
	s.mu.Lock()
	n := s.n
	snap := make([]time.Duration, n)
	copy(snap, s.buf[:n])
	s.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	i := int(q * float64(n))
	if i >= n {
		i = n - 1
	}
	return snap[i], n
}

// ObserveUnit feeds one completed work-unit latency into the hedging
// sampler. The engine calls it for every winning unit attempt.
func (c *Cluster) ObserveUnit(d time.Duration) {
	if c == nil || !c.opt.Hedge.Enabled {
		return
	}
	c.lat.observe(d)
}

// HedgeDelay prices the speculative-duplicate delay for the current
// query: Multiplier × the Quantile of recent unit latencies, clamped to
// [MinDelay, MaxDelay]. Returns ok=false when hedging is disabled. While
// the sampler is cold (fewer than MinSamples observations) the delay is
// MaxDelay: hedge only extreme outliers until the latency distribution
// is known.
func (c *Cluster) HedgeDelay() (time.Duration, bool) {
	if c == nil || !c.opt.Hedge.Enabled {
		return 0, false
	}
	h := c.opt.Hedge
	q, n := c.lat.quantile(h.Quantile)
	if n < h.MinSamples {
		return h.MaxDelay, true
	}
	d := time.Duration(float64(q) * h.Multiplier)
	if d < h.MinDelay {
		d = h.MinDelay
	}
	if d > h.MaxDelay {
		d = h.MaxDelay
	}
	return d, true
}
