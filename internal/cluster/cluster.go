// Package cluster is the long-lived membership and health layer between
// the engine and the fault injector: where the engine's fault handling is
// per-query (retry, failover, redundancy recovery), this package carries
// what one query learned into the next. Each node runs a health state
// machine (healthy → suspect → down → recovering → healthy) driven by
// per-attempt outcomes the engine reports, with a per-node circuit
// breaker: consecutive failures trip the node out of the placement so
// later queries route around it instead of re-paying the same retries, a
// cool-down counted in completed queries leads to a half-open probe, and
// a successful probe hands the node to a background rebuild worker that
// re-materializes its partitions from PREF/replication redundancy before
// flipping it back to healthy.
//
// The package also owns the cross-query resources the engine borrows per
// execution: an admission gate (bounded concurrent queries with a queue
// timeout, so fault storms shed load instead of amplifying), a latency
// sampler that prices the hedging delay for straggler duplicates, and a
// per-health-epoch cache of survivor indexes and placements, so degraded
// queries resolve "which surviving partition can serve p" once per epoch
// instead of once per scan.
//
// A nil *Cluster is valid everywhere and disables the layer, mirroring
// the nil-injector convention of internal/fault.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"pref/internal/table"
	"time"

	"pref/internal/value"
)

// Typed errors surfaced to query callers.
var (
	// ErrAdmissionTimeout reports a query that waited longer than the
	// admission queue timeout for an execution slot.
	ErrAdmissionTimeout = errors.New("cluster: admission queue timeout")
	// ErrNodeTripped reports a work unit aborted because its node's
	// circuit breaker tripped mid-query: further retries against the node
	// would be burned, so the unit fails fast and the next query routes
	// around the node entirely.
	ErrNodeTripped = errors.New("cluster: node circuit breaker tripped")
	// ErrClosed reports an operation against a closed cluster.
	ErrClosed = errors.New("cluster: closed")
)

// State is one node's position in the health state machine.
type State int

const (
	// Healthy nodes serve work.
	Healthy State = iota
	// Suspect nodes have failed recently but still serve work; one more
	// failure streak trips them, one success clears them.
	Suspect
	// Down nodes have an open circuit breaker: the placement routes
	// around them and no work units run on them until a probe succeeds.
	Down
	// Recovering nodes passed a half-open probe and are being rebuilt
	// from redundancy by the background worker; they do not serve work
	// until the rebuild completes.
	Recovering
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	case Recovering:
		return "recovering"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Options configures a cluster health layer. The zero value of every
// field gets a sensible default from New.
type Options struct {
	// Nodes is the logical node count (required, must match the
	// partitioned databases executed against the cluster).
	Nodes int
	// SuspectAfter is the consecutive-failure count that moves a healthy
	// node to suspect (default 1).
	SuspectAfter int
	// TripAfter is the consecutive-failure count that trips the breaker,
	// moving the node to down (default 3).
	TripAfter int
	// CoolDownQueries is how many completed queries must pass after a
	// trip (or a failed probe) before the breaker goes half-open and the
	// next query probes the node (default 2). Counting in queries rather
	// than wall time keeps tests deterministic.
	CoolDownQueries int
	// MaxConcurrent bounds concurrently admitted queries (0 = unbounded).
	MaxConcurrent int
	// QueueTimeout is how long Admit waits for a slot before failing with
	// ErrAdmissionTimeout (0 = wait as long as the caller's context).
	QueueTimeout time.Duration
	// Hedge configures speculative duplicates for straggling units.
	Hedge HedgePolicy
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 1
	}
	if o.TripAfter <= 0 {
		o.TripAfter = 3
	}
	if o.CoolDownQueries <= 0 {
		o.CoolDownQueries = 2
	}
	o.Hedge = o.Hedge.withDefaults()
	return o
}

// node is one node's live health record.
type node struct {
	state       State
	consecFails int
	coolDown    int  // completed queries until the breaker goes half-open
	probes      int  // failed half-open probes since the trip
	recovered   bool // healed and rebuilt: injected node faults are cleared
	lost        bool // rebuild found unrecoverable data: down for good
}

// Stats is a snapshot of the cluster's cross-query counters.
type Stats struct {
	// Epoch counts health-state transitions; placement and survivor-index
	// caches are keyed by it.
	Epoch int
	// Admitted and Rejected count queries through the admission gate.
	Admitted int64
	Rejected int64
	// Trips counts breaker openings; Probes and ProbeSuccesses count
	// half-open probes and the ones that passed.
	Trips          int64
	Probes         int64
	ProbeSuccesses int64
	// Rebuilds counts completed background partition rebuilds;
	// RebuiltRows / RebuiltBytes meter the data re-materialized from
	// surviving duplicate copies; FailedRebuilds counts nodes whose data
	// had no surviving copy (the node stays down).
	Rebuilds       int64
	RebuiltRows    int64
	RebuiltBytes   int64
	FailedRebuilds int64
}

// View is an immutable snapshot of cluster health, taken once per query
// at admission. Serving[n] is false for down and recovering nodes (the
// placement must route around them); Recovered[n] marks nodes that healed
// and were rebuilt (the engine clears their injected faults); Probes[n]
// is the failed-probe count the epoch-aware fault hooks consume.
type View struct {
	Epoch     int
	Serving   []bool
	Recovered []bool
	Probes    []int
}

// Cluster is the long-lived health layer. All methods are safe for
// concurrent use and safe on a nil receiver (layer disabled).
type Cluster struct {
	opt Options

	mu     sync.Mutex
	nodes  []node
	epoch  int
	stats  Stats
	closed bool

	// surv caches survivor key indexes per (table, effective-down) key,
	// stamped with the data epoch they were built over; place caches
	// buddy maps per effective-down key. Both reset on health-epoch
	// change, and surv entries additionally miss on data-epoch mismatch.
	surv     map[string]survEntry
	place    map[string][]int
	cacheGen int

	// sem is the admission semaphore (nil = unbounded).
	sem chan struct{}

	// lat prices the hedging delay from recent unit latencies.
	lat sampler

	// rebuild worker plumbing; jobs are enqueued on down→recovering.
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	jobs    chan rebuildJob
	pending int
	idle    *sync.Cond
}

// New builds a cluster health layer for n nodes and starts its background
// rebuild worker. Call Close to stop the worker.
func New(opt Options) *Cluster {
	opt = opt.withDefaults()
	if opt.Nodes <= 0 {
		// A cluster without nodes is a programming error at the call site,
		// on par with a negative partition count.
		// lint:invariant
		panic(fmt.Sprintf("cluster: invalid node count %d", opt.Nodes))
	}
	c := &Cluster{
		opt:   opt,
		nodes: make([]node, opt.Nodes),
		surv:  make(map[string]survEntry),
		place: make(map[string][]int),
		jobs:  make(chan rebuildJob, opt.Nodes),
	}
	c.idle = sync.NewCond(&c.mu)
	c.lat.init(latencyWindow)
	if opt.MaxConcurrent > 0 {
		c.sem = make(chan struct{}, opt.MaxConcurrent)
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	c.wg.Add(1)
	// The rebuild worker is the cluster's one deliberately long-lived
	// goroutine: it observes c.ctx and joins in Close (c.wg.Wait), not in
	// the spawning function, so the goroutinescope contract is met across
	// New/Close rather than within one body.
	//lint:ignore goroutinescope long-lived worker; observes c.ctx, joined by c.wg.Wait in Close
	go c.rebuildWorker()
	return c
}

// Close stops the background rebuild worker and waits for it. Idempotent.
func (c *Cluster) Close() {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.cancel()
	c.wg.Wait()
	// Wake any WaitRebuilds callers: jobs abandoned by the worker exit
	// will never complete.
	c.mu.Lock()
	c.pending = 0
	c.idle.Broadcast()
	c.mu.Unlock()
}

// Admit acquires a query execution slot, waiting up to the queue timeout
// (and the caller's context). The returned release function must be
// called exactly once when the query completes; releasing also advances
// the breaker cool-downs, which are counted in completed queries.
func (c *Cluster) Admit(ctx context.Context) (func(), error) {
	if c == nil {
		return func() {}, nil
	}
	if c.sem != nil {
		var timeout <-chan time.Time
		if c.opt.QueueTimeout > 0 {
			t := time.NewTimer(c.opt.QueueTimeout)
			defer t.Stop()
			timeout = t.C
		}
		select {
		case c.sem <- struct{}{}:
		case <-ctx.Done():
			c.reject()
			return nil, ctx.Err()
		case <-timeout:
			c.reject()
			return nil, fmt.Errorf("cluster: no execution slot within %v: %w",
				c.opt.QueueTimeout, ErrAdmissionTimeout)
		}
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		if c.sem != nil {
			<-c.sem
		}
		return nil, ErrClosed
	}
	c.stats.Admitted++
	c.mu.Unlock()
	var once sync.Once
	return func() { once.Do(c.endQuery) }, nil
}

func (c *Cluster) reject() {
	c.mu.Lock()
	c.stats.Rejected++
	c.mu.Unlock()
}

// endQuery releases the admission slot and ticks breaker cool-downs: each
// completed query brings every down node one step closer to a half-open
// probe.
func (c *Cluster) endQuery() {
	c.mu.Lock()
	for i := range c.nodes {
		n := &c.nodes[i]
		if n.state == Down && !n.lost && n.coolDown > 0 {
			n.coolDown--
		}
	}
	c.mu.Unlock()
	if c.sem != nil {
		<-c.sem
	}
}

// BeginQuery snapshots cluster health for one query and performs the
// health work that anchors to query admission:
//
//   - nodes the fault layer reports as down right now (downNow) are
//     tripped immediately — the simulation analogue of a refused
//     connection, which needs no failed retries to detect;
//   - down nodes whose cool-down expired get a half-open probe (probeOK);
//     a passed probe moves the node to recovering and enqueues a
//     background rebuild of its partitions from src.
//
// It returns the post-probe view, the query's pinned data snapshot (the
// last epoch the write path published, nil when src is nil), and the
// number of probes performed. Pinning at admission is what isolates the
// query from concurrent write batches: everything it scans comes from
// the snapshot, never the loader's write head. Either hook may be nil.
// src may be nil when no rebuild source is available (probed nodes then
// recover without a rebuild).
func (c *Cluster) BeginQuery(src RebuildSource, downNow func(node int) bool, probeOK func(node, probes int) bool) (View, *table.DBSnapshot, int) {
	var snap *table.DBSnapshot
	if src != nil {
		snap = src.Snapshot()
	}
	if c == nil {
		return View{}, snap, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	probed := 0
	for i := range c.nodes {
		n := &c.nodes[i]
		switch n.state {
		case Healthy, Suspect:
			if downNow != nil && !n.recovered && downNow(i) {
				c.trip(i)
			}
		case Down:
			if n.lost || n.coolDown > 0 || probeOK == nil {
				continue
			}
			// Half-open: one trial request decides.
			probed++
			c.stats.Probes++
			if probeOK(i, n.probes) {
				c.stats.ProbeSuccesses++
				c.setState(i, Recovering)
				c.enqueueRebuild(i, src)
			} else {
				n.probes++
				n.coolDown = c.opt.CoolDownQueries
			}
		}
	}
	return c.viewLocked(), snap, probed
}

// ReportSuccess records a completed work unit on a node: consecutive
// failures reset and a suspect node is cleared back to healthy.
func (c *Cluster) ReportSuccess(nodeID int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := &c.nodes[nodeID]
	n.consecFails = 0
	if n.state == Suspect {
		c.setState(nodeID, Healthy)
	}
}

// ReportFailure records a failed work-unit attempt on a node, driving the
// healthy → suspect → down legs of the state machine. Reaching the trip
// threshold opens the breaker.
func (c *Cluster) ReportFailure(nodeID int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := &c.nodes[nodeID]
	if n.state == Down || n.state == Recovering {
		return
	}
	n.consecFails++
	if n.consecFails >= c.opt.TripAfter {
		c.trip(nodeID)
		return
	}
	if n.state == Healthy && n.consecFails >= c.opt.SuspectAfter {
		c.setState(nodeID, Suspect)
	}
}

// Allow reports whether work may still be sent to the node: false once
// the breaker is open (down or recovering). Engines consult it between
// retry attempts to stop burning a budget on a node that tripped
// mid-query.
func (c *Cluster) Allow(nodeID int) bool {
	if c == nil {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.nodes[nodeID].state
	return s == Healthy || s == Suspect
}

// trip opens the breaker: the node leaves the placement until a probe
// succeeds. Callers hold c.mu.
func (c *Cluster) trip(nodeID int) {
	n := &c.nodes[nodeID]
	if n.state == Down {
		return
	}
	c.stats.Trips++
	n.coolDown = c.opt.CoolDownQueries
	n.probes = 0
	n.recovered = false
	c.setState(nodeID, Down)
}

// setState transitions a node and bumps the health epoch, invalidating
// the per-epoch caches. Callers hold c.mu.
func (c *Cluster) setState(nodeID int, s State) {
	n := &c.nodes[nodeID]
	if n.state == s {
		return
	}
	n.state = s
	if s == Healthy {
		n.consecFails = 0
	}
	c.epoch++
	c.stats.Epoch = c.epoch
	if len(c.surv) > 0 {
		c.surv = make(map[string]survEntry)
	}
	if len(c.place) > 0 {
		c.place = make(map[string][]int)
	}
}

// NodeState returns one node's current health state.
func (c *Cluster) NodeState(nodeID int) State {
	if c == nil {
		return Healthy
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[nodeID].state
}

// View returns the current health snapshot without performing probes.
func (c *Cluster) View() View {
	if c == nil {
		return View{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.viewLocked()
}

func (c *Cluster) viewLocked() View {
	v := View{
		Epoch:     c.epoch,
		Serving:   make([]bool, len(c.nodes)),
		Recovered: make([]bool, len(c.nodes)),
		Probes:    make([]int, len(c.nodes)),
	}
	for i := range c.nodes {
		s := c.nodes[i].state
		v.Serving[i] = s == Healthy || s == Suspect
		v.Recovered[i] = c.nodes[i].recovered
		v.Probes[i] = c.nodes[i].probes
	}
	return v
}

// Stats returns a snapshot of the cross-query counters.
func (c *Cluster) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// survEntry is one cached survivor index stamped with the data epoch it
// was built over.
type survEntry struct {
	epoch int64
	idx   map[value.Key]bool
}

// SurvivorIndex returns the cached survivor key index for a table under
// the given effective-down key and data epoch, building it with build on
// a miss. The cache is invalidated by health-state transitions and, per
// entry, by data-epoch mismatches — an index built over epoch e must not
// serve a query pinned to epoch e' whose write batch changed the
// surviving copies. This turns the per-scan survivor sweep of query-time
// recovery into a once-per-(health, data)-epoch computation. Concurrent
// first callers may build twice; last write wins, both results are
// identical for the same epoch.
func (c *Cluster) SurvivorIndex(tbl, downKey string, epoch int64, build func() map[value.Key]bool) map[value.Key]bool {
	if c == nil {
		return build()
	}
	key := tbl + "|" + downKey
	c.mu.Lock()
	if e, ok := c.surv[key]; ok && e.epoch == epoch {
		c.mu.Unlock()
		return e.idx
	}
	c.mu.Unlock()
	idx := build()
	c.mu.Lock()
	c.surv[key] = survEntry{epoch: epoch, idx: idx}
	c.mu.Unlock()
	return idx
}

// Placement returns the cached executing-node map for the given
// effective-down key, building it with build on a miss. Same epoch-keyed
// contract as SurvivorIndex.
func (c *Cluster) Placement(downKey string, build func() ([]int, error)) ([]int, error) {
	if c == nil {
		return build()
	}
	c.mu.Lock()
	if dst, ok := c.place[downKey]; ok {
		c.mu.Unlock()
		return dst, nil
	}
	c.mu.Unlock()
	dst, err := build()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.place[downKey] = dst
	c.mu.Unlock()
	return dst, nil
}
