// Package trace is the per-query observability layer: per-operator,
// per-node execution telemetry recorded while a rewritten plan runs.
//
// The engine opens one Op per physical plan operator and writes metric
// deltas into per-node cells as partition work units finish. Cells are
// written with atomic adds — partition goroutines for different logical
// partitions can land on the same executing node after a buddy failover,
// so distinct-cell writes are not guaranteed — and the finished tree is
// assembled on the query goroutine once execution completes, so readers
// never race writers ("lock-free-ish sink, merged on the query
// goroutine").
//
// The output, Trace, mirrors the physical plan tree: one OpTrace per
// operator plus a synthetic Result root for the implicit coordinator
// gather. It renders as an EXPLAIN ANALYZE-style annotated plan
// (render.go) and marshals to JSON as-is; internal/check.VerifyTrace
// replays conservation and locality invariants over it after every
// traced+verified execution.
package trace

import (
	"sync/atomic"
	"time"

	"pref/internal/plan"
)

// cell is the live, atomics-only counterpart of Metrics: one per node,
// written concurrently by partition goroutines through the Add* mutators
// and read only by finish. Keeping it a separate type from the exported
// Metrics snapshot means every access to a live counter must spell out
// sync/atomic (the atomicdiscipline analyzer enforces all-or-nothing per
// field), while snapshot code — merge, rendering, JSON — works on plain
// Metrics values that no goroutine is still writing.
type cell struct {
	rowsIn, rowsOut           int64
	rowsShipped, bytesShipped int64
	dedupHits, work           int64
	retries, wastedRows       int64
	failovers, recoveredRows  int64
	hedges, hedgeWins         int64
	hedgeWastedRows           int64
	wallNanos                 int64
}

// Metrics is one finished cell of execution counters: either one
// (operator, node) pair, or a rollup of such cells. Values are immutable
// snapshots taken on the query goroutine after all work units completed.
type Metrics struct {
	// RowsIn counts input rows the operator actually consumed (for
	// OneCopy exchanges, only the coordinator copy it reads).
	RowsIn int64 `json:"rows_in"`
	// RowsOut counts output rows of successful work units. Output of
	// crashed attempts is excluded (it lands in WastedRows).
	RowsOut int64 `json:"rows_out"`
	// RowsShipped / BytesShipped count this operator's traffic across
	// node boundaries, per shipment attempt (a re-shipped batch counts
	// every time it hits the wire), matching engine.Stats metering.
	RowsShipped  int64 `json:"rows_shipped"`
	BytesShipped int64 `json:"bytes_shipped"`
	// DedupHits counts rows removed by the dup=0 PREF-duplicate filter
	// or by value-distinctness before rows leave the operator.
	DedupHits int64 `json:"dedup_hits"`
	// Work counts processed rows charged to the node (the CPU proxy the
	// engine meters), including cache-miss penalties and work burned by
	// crashed attempts.
	Work int64 `json:"work"`
	// Retries counts discarded work-unit attempts and failed shipment
	// attempts; WastedRows is the row payload those attempts burned.
	Retries    int64 `json:"retries"`
	WastedRows int64 `json:"wasted_rows"`
	// Failovers counts partition units redirected to a buddy node.
	Failovers int64 `json:"failovers"`
	// RecoveredRows counts base-table tuple copies rebuilt from PREF /
	// replication redundancy during a scan of a lost partition.
	RecoveredRows int64 `json:"recovered_rows"`
	// Hedges counts speculative duplicate units launched on the node for
	// straggling partitions; HedgeWins counts the hedges that finished
	// first (beating the straggling primary); HedgeWastedRows is the row
	// output of hedge-race losers, discarded after the winner returned.
	Hedges          int64 `json:"hedges"`
	HedgeWins       int64 `json:"hedge_wins"`
	HedgeWastedRows int64 `json:"hedge_wasted_rows"`
	// WallNanos is wall time spent in this operator's work units on the
	// node, including retry backoff and straggler delays.
	WallNanos int64 `json:"wall_nanos"`
}

func (m *Metrics) merge(o *Metrics) {
	m.RowsIn += o.RowsIn
	m.RowsOut += o.RowsOut
	m.RowsShipped += o.RowsShipped
	m.BytesShipped += o.BytesShipped
	m.DedupHits += o.DedupHits
	m.Work += o.Work
	m.Retries += o.Retries
	m.WastedRows += o.WastedRows
	m.Failovers += o.Failovers
	m.RecoveredRows += o.RecoveredRows
	m.Hedges += o.Hedges
	m.HedgeWins += o.HedgeWins
	m.HedgeWastedRows += o.HedgeWastedRows
	m.WallNanos += o.WallNanos
}

// Zero reports whether every counter in the cell is zero.
func (m *Metrics) Zero() bool {
	return *m == Metrics{}
}

// Op is a live per-operator sink: one Metrics cell per node. All mutators
// are safe on a nil receiver (tracing disabled) and safe to call from
// concurrent partition goroutines.
type Op struct {
	id      int
	kind    Kind
	label   string
	prop    string
	readOne bool
	cells   []cell
}

// Kind classifies an operator for the trace invariants: which
// conservation law its row counts obey and whether it may ship rows.
type Kind string

const (
	KindScan            Kind = "scan"
	KindFilter          Kind = "filter"
	KindProject         Kind = "project"
	KindJoin            Kind = "join"
	KindAggregate       Kind = "aggregate"
	KindPartialAgg      Kind = "partial-agg"
	KindFinalAgg        Kind = "final-agg"
	KindRepartition     Kind = "repartition"
	KindBroadcast       Kind = "broadcast"
	KindDistinctPref    Kind = "distinct-pref"
	KindDistinctByValue Kind = "distinct-by-value"
	KindGather          Kind = "gather"
	KindTopK            Kind = "topk"
	// KindResult is the synthetic root: the implicit gather of the plan
	// root's partitions to the coordinator.
	KindResult Kind = "result"
	// KindUnexecuted marks operators present in the plan whose sink was
	// never opened — impossible in a successful run, and flagged by
	// check.VerifyTrace.
	KindUnexecuted Kind = "unexecuted"
)

// Exchange reports whether the kind is a data-movement operator, i.e.
// whether nonzero RowsShipped is legitimate for it. Scans are not
// exchanges but may still ship during PREF-redundancy recovery; check's
// trace rules special-case that via RecoveredRows.
func (k Kind) Exchange() bool {
	switch k {
	case KindRepartition, KindBroadcast, KindDistinctByValue, KindGather, KindResult:
		return true
	}
	return false
}

// AddIn charges consumed input rows to a node's cell.
func (o *Op) AddIn(node, rows int) {
	if o == nil || rows == 0 {
		return
	}
	atomic.AddInt64(&o.cells[node].rowsIn, int64(rows))
}

// AddOut charges successfully produced output rows to a node's cell.
func (o *Op) AddOut(node, rows int) {
	if o == nil || rows == 0 {
		return
	}
	atomic.AddInt64(&o.cells[node].rowsOut, int64(rows))
}

// AddShip charges one shipment attempt leaving src.
func (o *Op) AddShip(src, rows, width int) {
	if o == nil || rows == 0 {
		return
	}
	atomic.AddInt64(&o.cells[src].rowsShipped, int64(rows))
	atomic.AddInt64(&o.cells[src].bytesShipped, int64(rows)*int64(width)*8)
}

// AddDedup charges PREF-duplicate (or value-distinctness) filter hits.
func (o *Op) AddDedup(node, hits int) {
	if o == nil || hits == 0 {
		return
	}
	atomic.AddInt64(&o.cells[node].dedupHits, int64(hits))
}

// AddWork charges processed rows (CPU proxy) to a node's cell.
func (o *Op) AddWork(node, rows int) {
	if o == nil || rows == 0 {
		return
	}
	atomic.AddInt64(&o.cells[node].work, int64(rows))
}

// AddRetry records one discarded attempt and the row payload it wasted.
func (o *Op) AddRetry(node, wastedRows int) {
	if o == nil {
		return
	}
	atomic.AddInt64(&o.cells[node].retries, 1)
	atomic.AddInt64(&o.cells[node].wastedRows, int64(wastedRows))
}

// AddFailover records one partition unit redirected to a buddy node.
func (o *Op) AddFailover(node int) {
	if o == nil {
		return
	}
	atomic.AddInt64(&o.cells[node].failovers, 1)
}

// AddRecovered records tuple copies rebuilt from redundancy on node.
func (o *Op) AddRecovered(node, rows int) {
	if o == nil || rows == 0 {
		return
	}
	atomic.AddInt64(&o.cells[node].recoveredRows, int64(rows))
}

// AddHedge records one speculative duplicate unit launched on node.
func (o *Op) AddHedge(node int) {
	if o == nil {
		return
	}
	atomic.AddInt64(&o.cells[node].hedges, 1)
}

// AddHedgeWin records a hedge that returned before its straggling
// primary.
func (o *Op) AddHedgeWin(node int) {
	if o == nil {
		return
	}
	atomic.AddInt64(&o.cells[node].hedgeWins, 1)
}

// AddHedgeWaste records the discarded row output of a hedge-race loser
// on node.
func (o *Op) AddHedgeWaste(node, rows int) {
	if o == nil || rows == 0 {
		return
	}
	atomic.AddInt64(&o.cells[node].hedgeWastedRows, int64(rows))
}

// AddWall charges wall time spent in this operator's work on node.
func (o *Op) AddWall(node int, d time.Duration) {
	if o == nil || d <= 0 {
		return
	}
	atomic.AddInt64(&o.cells[node].wallNanos, int64(d))
}

// SetReadOne marks the operator as consuming only the coordinator copy of
// a replicated/gathered input (the OneCopy exchange flag), which relaxes
// the edge-conservation rule from equality to ≤.
func (o *Op) SetReadOne() {
	if o == nil {
		return
	}
	o.readOne = true
}

// Totals mirrors engine.Stats field-for-field so internal/check can
// cross-check span sums against the query's flat counters without
// importing the engine (the engine imports check).
type Totals struct {
	BytesShipped  int64 `json:"bytes_shipped"`
	RowsShipped   int64 `json:"rows_shipped"`
	RowsProcessed int64 `json:"rows_processed"`
	MaxNodeRows   int64 `json:"max_node_rows"`
	Repartitions  int   `json:"repartitions"`
	Broadcasts    int   `json:"broadcasts"`
	Retries       int   `json:"retries"`
	Failovers     int   `json:"failovers"`
	RecoveredRows int64 `json:"recovered_rows"`
	WastedRows    int64 `json:"wasted_rows"`
	// Hedged-execution and health-probe counters (engine.Stats mirrors).
	Hedges          int   `json:"hedges"`
	HedgeWins       int   `json:"hedge_wins"`
	HedgeWastedRows int64 `json:"hedge_wasted_rows"`
	// Probes counts half-open breaker probes charged to this query at
	// admission; probes have no operator span, so no span-sum law applies.
	Probes int `json:"probes"`
}

// Builder accumulates live Ops during one execution. Begin/Build run on
// the query goroutine; only the returned Ops' mutators are called
// concurrently.
type Builder struct {
	n      int
	ops    map[plan.Node]*Op
	result *Op
	seq    int
	start  time.Time
	totals Totals
}

// NewBuilder opens a trace sink for a query over n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, ops: make(map[plan.Node]*Op), start: time.Now()}
}

// Begin opens (or returns) the sink for one plan operator. Safe on a nil
// builder: returns a nil Op whose mutators are no-ops, so the engine's
// recording sites need no tracing-enabled branches.
func (b *Builder) Begin(n plan.Node, kind Kind) *Op {
	if b == nil {
		return nil
	}
	if op, ok := b.ops[n]; ok {
		return op
	}
	op := b.newOp(kind, n.String())
	b.ops[n] = op
	return op
}

// BeginResult opens the synthetic root sink for the implicit final gather
// to the coordinator.
func (b *Builder) BeginResult() *Op {
	if b == nil {
		return nil
	}
	if b.result == nil {
		b.result = b.newOp(KindResult, "Result")
	}
	return b.result
}

func (b *Builder) newOp(kind Kind, label string) *Op {
	op := &Op{id: b.seq, kind: kind, label: label, cells: make([]cell, b.n)}
	b.seq++
	return op
}

// SetTotals records the query-level flat counters (engine.Stats) for the
// cross-check in internal/check.VerifyTrace.
func (b *Builder) SetTotals(t Totals) {
	if b == nil {
		return
	}
	b.totals = t
}

// NodeMetrics is the finished cell of one (operator, node) pair.
type NodeMetrics struct {
	Node int `json:"node"`
	Metrics
}

// OpTrace is one operator's finished span: identity, per-node cells with
// activity, and their rollup.
type OpTrace struct {
	ID    int    `json:"id"`
	Kind  Kind   `json:"kind"`
	Label string `json:"label"`
	// Prop is the operator's recorded partitioning property rendering
	// (e.g. "PREF[lineitem]"), empty for the synthetic Result op.
	Prop string `json:"prop,omitempty"`
	// ReadOne marks OneCopy exchanges: the operator consumed only the
	// coordinator copy of its replicated/gathered input.
	ReadOne bool `json:"read_one,omitempty"`
	// Nodes holds the per-node cells that saw any activity, in node
	// order.
	Nodes []NodeMetrics `json:"nodes,omitempty"`
	// Totals sums all per-node cells.
	Totals   Metrics    `json:"totals"`
	Children []*OpTrace `json:"children,omitempty"`
}

// Trace is the finished telemetry of one query: the annotated operator
// tree plus the query-level rollup.
type Trace struct {
	// N is the node (partition) count of the executing database.
	N int `json:"n"`
	// Root is the synthetic Result operator; Root.Children[0] is the
	// plan root.
	Root *OpTrace `json:"root"`
	// Totals is the engine's flat Stats counterpart, for cross-checking
	// span sums.
	Totals Totals `json:"totals"`
	// WallNanos is end-to-end query wall time at the coordinator.
	WallNanos int64 `json:"wall_nanos"`
}

// Build assembles the finished trace by walking the physical plan tree.
// Call after execution completes; the result shares no state with the
// live Ops. Operators the engine never opened (on error paths) appear
// with zero metrics.
func (b *Builder) Build(rw *plan.Rewritten) *Trace {
	if b == nil {
		return nil
	}
	var walk func(n plan.Node) *OpTrace
	walk = func(n plan.Node) *OpTrace {
		op := b.ops[n]
		if op == nil {
			op = b.newOp(KindUnexecuted, n.String())
		}
		ot := op.finish()
		if p := rw.Props[n]; p != nil {
			ot.Prop = p.String()
		}
		for _, c := range n.Children() {
			ot.Children = append(ot.Children, walk(c))
		}
		return ot
	}
	planRoot := walk(rw.Root)
	res := b.result
	if res == nil {
		res = b.newOp(KindResult, "Result")
	}
	root := res.finish()
	root.Children = []*OpTrace{planRoot}
	return &Trace{
		N:         b.n,
		Root:      root,
		Totals:    b.totals,
		WallNanos: int64(time.Since(b.start)),
	}
}

// finish snapshots a live Op into an immutable OpTrace (without
// children). Runs on the query goroutine after all units completed, so
// plain loads are safe; atomic loads keep the race detector satisfied if
// a straggler goroutine is still draining.
//
// lint:ship-boundary snapshot sweep: reads every node's live cell on the
// query goroutine after the fan-out has joined.
func (o *Op) finish() *OpTrace {
	ot := &OpTrace{ID: o.id, Kind: o.kind, Label: o.label, Prop: o.prop, ReadOne: o.readOne}
	for node := range o.cells {
		m := Metrics{
			RowsIn:          atomic.LoadInt64(&o.cells[node].rowsIn),
			RowsOut:         atomic.LoadInt64(&o.cells[node].rowsOut),
			RowsShipped:     atomic.LoadInt64(&o.cells[node].rowsShipped),
			BytesShipped:    atomic.LoadInt64(&o.cells[node].bytesShipped),
			DedupHits:       atomic.LoadInt64(&o.cells[node].dedupHits),
			Work:            atomic.LoadInt64(&o.cells[node].work),
			Retries:         atomic.LoadInt64(&o.cells[node].retries),
			WastedRows:      atomic.LoadInt64(&o.cells[node].wastedRows),
			Failovers:       atomic.LoadInt64(&o.cells[node].failovers),
			RecoveredRows:   atomic.LoadInt64(&o.cells[node].recoveredRows),
			Hedges:          atomic.LoadInt64(&o.cells[node].hedges),
			HedgeWins:       atomic.LoadInt64(&o.cells[node].hedgeWins),
			HedgeWastedRows: atomic.LoadInt64(&o.cells[node].hedgeWastedRows),
			WallNanos:       atomic.LoadInt64(&o.cells[node].wallNanos),
		}
		if m.Zero() {
			continue
		}
		ot.Nodes = append(ot.Nodes, NodeMetrics{Node: node, Metrics: m})
		ot.Totals.merge(&m)
	}
	return ot
}

// Walk visits every operator span depth-first, root first.
func (t *Trace) Walk(fn func(*OpTrace)) {
	if t == nil || t.Root == nil {
		return
	}
	var walk func(*OpTrace)
	walk = func(ot *OpTrace) {
		fn(ot)
		for _, c := range ot.Children {
			walk(c)
		}
	}
	walk(t.Root)
}
