package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// RenderOptions tunes the EXPLAIN ANALYZE rendering.
type RenderOptions struct {
	// HideWall omits wall-clock fields, making the rendering a pure
	// function of the plan and data — what the golden tests pin.
	HideWall bool
	// Nodes adds a per-node breakdown line under every operator that has
	// per-node activity on more than one node.
	Nodes bool
}

// Render renders the trace as an EXPLAIN ANALYZE-style annotated plan
// tree: the physical operator line (same shape as plan.Rewritten.Explain,
// operator then recorded property), followed by an indented actuals line
// per operator.
func (t *Trace) Render(opt RenderOptions) string {
	if t == nil {
		return ""
	}
	var sb strings.Builder
	var walk func(ot *OpTrace, depth int)
	walk = func(ot *OpTrace, depth int) {
		pad := strings.Repeat("  ", depth)
		sb.WriteString(pad)
		sb.WriteString(ot.Label)
		if ot.Prop != "" {
			sb.WriteString("   ")
			sb.WriteString(ot.Prop)
		}
		sb.WriteByte('\n')
		sb.WriteString(pad)
		sb.WriteString("  (")
		sb.WriteString(ot.actuals(opt))
		sb.WriteString(")\n")
		if opt.Nodes && len(ot.Nodes) > 1 {
			for _, nm := range ot.Nodes {
				sb.WriteString(pad)
				sb.WriteString(fmt.Sprintf("  [node %d: %s]\n", nm.Node, metricsLine(&nm.Metrics, opt)))
			}
		}
		for _, c := range ot.Children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	if !opt.HideWall {
		sb.WriteString(fmt.Sprintf("query wall: %s\n", time.Duration(t.WallNanos)))
	}
	return sb.String()
}

// actuals renders one operator's rolled-up measurement line.
func (ot *OpTrace) actuals(opt RenderOptions) string {
	return metricsLine(&ot.Totals, opt)
}

// metricsLine renders one cell. in/out/shipped always print; fault and
// recovery counters only when nonzero, so fault-free traces stay terse.
func metricsLine(m *Metrics, opt RenderOptions) string {
	parts := []string{
		fmt.Sprintf("in=%d", m.RowsIn),
		fmt.Sprintf("out=%d", m.RowsOut),
		fmt.Sprintf("shipped=%d rows/%s", m.RowsShipped, byteCount(m.BytesShipped)),
	}
	if m.DedupHits > 0 {
		parts = append(parts, fmt.Sprintf("dedup=%d", m.DedupHits))
	}
	if m.Work != m.RowsOut {
		parts = append(parts, fmt.Sprintf("work=%d", m.Work))
	}
	if m.Retries > 0 {
		parts = append(parts, fmt.Sprintf("retries=%d", m.Retries))
	}
	if m.WastedRows > 0 {
		parts = append(parts, fmt.Sprintf("wasted=%d", m.WastedRows))
	}
	if m.Failovers > 0 {
		parts = append(parts, fmt.Sprintf("failovers=%d", m.Failovers))
	}
	if m.RecoveredRows > 0 {
		parts = append(parts, fmt.Sprintf("recovered=%d", m.RecoveredRows))
	}
	if m.Hedges > 0 {
		parts = append(parts, fmt.Sprintf("hedges=%d/%d won", m.HedgeWins, m.Hedges))
	}
	if m.HedgeWastedRows > 0 {
		parts = append(parts, fmt.Sprintf("hedge-wasted=%d", m.HedgeWastedRows))
	}
	if !opt.HideWall {
		parts = append(parts, fmt.Sprintf("wall=%s", time.Duration(m.WallNanos).Round(time.Microsecond)))
	}
	return strings.Join(parts, " ")
}

// byteCount renders a byte total in the most compact exact unit: whole
// KiB/MiB when evenly divisible, bytes otherwise, so renderings stay
// deterministic (no rounding).
func byteCount(b int64) string {
	switch {
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", b/(1<<20))
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// JSON marshals the trace (indented). The span schema is documented in
// DESIGN.md's Observability section.
func (t *Trace) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}
