package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"pref/internal/plan"
)

// TestNilSafety pins the no-branch contract the engine relies on: every
// mutator and Begin/Build must be a no-op on nil receivers, so recording
// sites need no tracing-enabled checks.
func TestNilSafety(t *testing.T) {
	var b *Builder
	op := b.Begin(plan.Scan("t", "t"), KindScan)
	if op != nil {
		t.Fatal("nil builder must hand out nil ops")
	}
	if r := b.BeginResult(); r != nil {
		t.Fatal("nil builder must hand out a nil result op")
	}
	b.SetTotals(Totals{RowsShipped: 1})
	if tr := b.Build(nil); tr != nil {
		t.Fatal("nil builder must build a nil trace")
	}
	// All mutators on the nil op: must not panic.
	op.AddIn(0, 1)
	op.AddOut(0, 1)
	op.AddShip(0, 1, 2)
	op.AddDedup(0, 1)
	op.AddWork(0, 1)
	op.AddRetry(0, 1)
	op.AddFailover(0)
	op.AddRecovered(0, 1)
	op.AddWall(0, time.Second)
	op.SetReadOne()
	var tr *Trace
	tr.Walk(func(*OpTrace) { t.Fatal("nil trace must not visit") })
	if tr.Render(RenderOptions{}) != "" {
		t.Fatal("nil trace must render empty")
	}
}

// TestBuilderAssemblesTree executes the recording protocol by hand over a
// two-operator plan and checks the finished tree: shape, ids, props,
// per-node cell filtering, and rollups.
func TestBuilderAssemblesTree(t *testing.T) {
	scan := plan.Scan("t", "t")
	filter := plan.Filter(scan, plan.Gt(plan.Col("t.c"), plan.Lit(1)))
	rw := &plan.Rewritten{Root: filter, Props: map[plan.Node]*plan.Prop{}}

	b := NewBuilder(3)
	sop := b.Begin(scan, KindScan)
	if again := b.Begin(scan, KindScan); again != sop {
		t.Fatal("Begin must be idempotent per plan node")
	}
	fop := b.Begin(filter, KindFilter)
	sop.AddOut(0, 10)
	sop.AddOut(2, 5) // node 1 stays silent: its cell must be filtered out
	fop.AddIn(0, 10)
	fop.AddIn(2, 5)
	fop.AddOut(0, 7)
	fop.AddOut(2, 2)
	fop.AddWork(0, 10)
	fop.AddWork(2, 5)
	rtop := b.BeginResult()
	rtop.AddIn(0, 9)
	rtop.AddOut(0, 9)
	b.SetTotals(Totals{RowsProcessed: 15, MaxNodeRows: 10})
	tr := b.Build(rw)

	if tr.N != 3 {
		t.Fatalf("N = %d", tr.N)
	}
	if tr.Root.Kind != KindResult || len(tr.Root.Children) != 1 {
		t.Fatalf("root must be the synthetic Result with one child, got %+v", tr.Root)
	}
	f := tr.Root.Children[0]
	if f.Kind != KindFilter || len(f.Children) != 1 || f.Children[0].Kind != KindScan {
		t.Fatalf("tree shape wrong: %+v", f)
	}
	if f.Totals.RowsIn != 15 || f.Totals.RowsOut != 9 || f.Totals.Work != 15 {
		t.Fatalf("filter rollup wrong: %+v", f.Totals)
	}
	if len(f.Nodes) != 2 || f.Nodes[0].Node != 0 || f.Nodes[1].Node != 2 {
		t.Fatalf("silent node cell must be dropped, got %+v", f.Nodes)
	}
	if tr.Totals.RowsProcessed != 15 || tr.Totals.MaxNodeRows != 10 {
		t.Fatalf("totals not carried: %+v", tr.Totals)
	}
	// Distinct ops get distinct ids.
	seen := map[int]bool{}
	tr.Walk(func(ot *OpTrace) {
		if seen[ot.ID] {
			t.Fatalf("duplicate span id %d", ot.ID)
		}
		seen[ot.ID] = true
	})
}

// TestBuildMarksUnexecuted: a plan operator the engine never opened must
// surface as KindUnexecuted (check.VerifyTrace turns that into a shape
// violation), never be silently dropped.
func TestBuildMarksUnexecuted(t *testing.T) {
	scan := plan.Scan("t", "t")
	filter := plan.Filter(scan, plan.Gt(plan.Col("t.c"), plan.Lit(1)))
	rw := &plan.Rewritten{Root: filter, Props: map[plan.Node]*plan.Prop{}}
	b := NewBuilder(2)
	b.Begin(filter, KindFilter) // scan never begun
	tr := b.Build(rw)
	if got := tr.Root.Children[0].Children[0].Kind; got != KindUnexecuted {
		t.Fatalf("unopened scan has kind %q, want %q", got, KindUnexecuted)
	}
}

// TestConcurrentMutators hammers one op from many goroutines (run under
// -race in CI) and checks the additive counters survive exactly.
func TestConcurrentMutators(t *testing.T) {
	b := NewBuilder(4)
	scan := plan.Scan("t", "t")
	op := b.Begin(scan, KindScan)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				op.AddOut(w%4, 1)
				op.AddShip(w%4, 1, 2)
				op.AddRetry(w%4, 1)
			}
		}()
	}
	wg.Wait()
	rw := &plan.Rewritten{Root: scan, Props: map[plan.Node]*plan.Prop{}}
	tr := b.Build(rw)
	tot := tr.Root.Children[0].Totals
	if tot.RowsOut != workers*per || tot.RowsShipped != workers*per ||
		tot.BytesShipped != workers*per*2*8 || tot.Retries != workers*per ||
		tot.WastedRows != workers*per {
		t.Fatalf("lost updates: %+v", tot)
	}
}

func TestKindExchange(t *testing.T) {
	for _, k := range []Kind{KindRepartition, KindBroadcast, KindDistinctByValue, KindGather, KindResult} {
		if !k.Exchange() {
			t.Errorf("%s must be an exchange", k)
		}
	}
	for _, k := range []Kind{KindScan, KindFilter, KindProject, KindJoin, KindAggregate,
		KindPartialAgg, KindFinalAgg, KindDistinctPref, KindTopK, KindUnexecuted} {
		if k.Exchange() {
			t.Errorf("%s must not be an exchange", k)
		}
	}
}

func TestByteCount(t *testing.T) {
	cases := []struct {
		b    int64
		want string
	}{
		{0, "0B"}, {7, "7B"}, {1024, "1KiB"}, {1536, "1536B"},
		{8 << 10, "8KiB"}, {1 << 20, "1MiB"}, {(1 << 20) + 8, "1048584B"},
	}
	for _, c := range cases {
		if got := byteCount(c.b); got != c.want {
			t.Errorf("byteCount(%d) = %q, want %q", c.b, got, c.want)
		}
	}
}

// TestRenderAndJSON pins the rendering contract: actuals lines under each
// operator, HideWall determinism, node breakdowns only on request, and a
// JSON round-trip that preserves the tree.
func TestRenderAndJSON(t *testing.T) {
	scan := plan.Scan("t", "t")
	rw := &plan.Rewritten{Root: scan, Props: map[plan.Node]*plan.Prop{}}
	b := NewBuilder(2)
	op := b.Begin(scan, KindScan)
	op.AddOut(0, 3)
	op.AddOut(1, 4)
	op.AddWall(0, time.Millisecond)
	rt := b.BeginResult()
	rt.AddIn(0, 7)
	rt.AddShip(1, 7, 1)
	rt.AddOut(0, 7)
	tr := b.Build(rw)

	plain := tr.Render(RenderOptions{HideWall: true})
	if !strings.Contains(plain, "Scan(t AS t)") || !strings.Contains(plain, "(in=0 out=7") {
		t.Fatalf("missing operator/actuals lines:\n%s", plain)
	}
	if strings.Contains(plain, "wall") {
		t.Fatalf("HideWall leaked a wall field:\n%s", plain)
	}
	if strings.Contains(plain, "[node") {
		t.Fatalf("node breakdown rendered without Nodes option:\n%s", plain)
	}
	withNodes := tr.Render(RenderOptions{HideWall: true, Nodes: true})
	if !strings.Contains(withNodes, "[node 0:") || !strings.Contains(withNodes, "[node 1:") {
		t.Fatalf("Nodes option must add per-node lines:\n%s", withNodes)
	}
	if !strings.Contains(tr.Render(RenderOptions{}), "query wall:") {
		t.Fatal("default rendering must include query wall time")
	}

	blob, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.N != tr.N || back.Root.Kind != KindResult ||
		back.Root.Children[0].Totals.RowsOut != 7 {
		t.Fatalf("JSON round-trip lost data: %+v", back.Root)
	}
}
