// Write-path metering: the Loader is single-writer, so unlike the query
// cells these counters are plain fields mutated on the writer goroutine
// and read after the fact (tests, bench reports). They are intentionally
// not part of the per-query Totals — write amplification is a property
// of the store maintenance stream, not of any one query.
package trace

import "fmt"

// WriteMetrics accumulates physical-write accounting across batches
// applied by one Loader.
type WriteMetrics struct {
	// Batches counts committed write batches (intents that published).
	Batches int64
	// LogicalInserts/Deletes/Updates count logical operations requested,
	// whether or not they committed on first attempt.
	LogicalInserts int64
	LogicalDeletes int64
	LogicalUpdates int64

	// StoredCopies counts physical row appends (PREF duplicates and
	// replicas included) performed by committed batches.
	StoredCopies int64
	// RemovedCopies counts physical copies deleted by committed batches.
	RemovedCopies int64
	// RewrittenCopies counts physical copies rewritten in place by
	// committed update batches.
	RewrittenCopies int64

	// IntentOps counts logical ops recorded in write intents (including
	// intents whose first apply crashed).
	IntentOps int64
	// Publishes counts epoch publications (database commits).
	Publishes int64
	// Crashes counts injected write crashes taken.
	Crashes int64
	// IndexRaces counts injected partition-index invalidation races.
	IndexRaces int64
	// Replays counts intents re-applied by Recover.
	Replays int64
	// RolledBackRows counts torn head rows discarded by recovery
	// rollbacks.
	RolledBackRows int64
}

// Amplification returns the write amplification of the committed insert
// stream: stored physical copies per logical insert. Zero when no
// inserts committed.
func (m *WriteMetrics) Amplification() float64 {
	if m.LogicalInserts == 0 {
		return 0
	}
	return float64(m.StoredCopies) / float64(m.LogicalInserts)
}

// String renders a one-line summary for logs and bench notes.
func (m *WriteMetrics) String() string {
	return fmt.Sprintf(
		"batches=%d inserts=%d deletes=%d updates=%d copies=%d removed=%d rewritten=%d amp=%.2f crashes=%d replays=%d rolledback=%d",
		m.Batches, m.LogicalInserts, m.LogicalDeletes, m.LogicalUpdates,
		m.StoredCopies, m.RemovedCopies, m.RewrittenCopies, m.Amplification(),
		m.Crashes, m.Replays, m.RolledBackRows)
}
