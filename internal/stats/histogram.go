package stats

import (
	"fmt"

	"pref/internal/table"
	"pref/internal/value"
)

// Histogram records the frequency of each distinct key of one or more
// columns of a table. Sampled histograms use *universe sampling*: a
// rate-fraction of the key space is selected by a deterministic hash, and
// the frequencies of selected keys are exact. Because the selection
// depends only on the key bytes (plus a salt), histograms of the two sides
// of a join predicate sample a consistent key universe — the property the
// joint redundancy estimator needs.
type Histogram struct {
	// Freq maps each sampled key to its exact frequency.
	Freq map[value.Key]int
	// Rows is the (estimated) number of rows the histogram describes.
	Rows int
	// Rate is the key-universe sampling rate (1 = all keys).
	Rate float64
}

// BuildHistogram computes the exact frequency histogram of the given
// columns of a table.
func BuildHistogram(d *table.Data, cols ...string) (*Histogram, error) {
	return BuildSampledHistogram(d, 1.0, 0, cols...)
}

// BuildSampledHistogram computes a universe-sampled histogram with the
// given rate in (0, 1]. Rate 1 yields the exact histogram. Lower rates
// shrink the runtime effort (fewer keys tracked) at the cost of
// estimation noise — the trade-off Figure 13 studies (noisier on skewed
// TPC-DS than uniform TPC-H, since a few hot keys carry most of the
// redundancy mass).
func BuildSampledHistogram(d *table.Data, rate float64, seed int64, cols ...string) (*Histogram, error) {
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("stats: sampling rate %v out of (0,1]", rate)
	}
	idx, err := d.Meta.ColIndexes(cols)
	if err != nil {
		return nil, err
	}
	h := &Histogram{Freq: make(map[value.Key]int), Rate: rate}
	if rate == 1 {
		for _, row := range d.Rows {
			h.Freq[value.MakeKey(row, idx)]++
		}
		h.Rows = len(d.Rows)
		return h, nil
	}
	threshold := uint64(rate * float64(^uint64(0)))
	salt := uint64(seed)*0x9e3779b97f4a7c15 + 0x85ebca6b
	sampledRows := 0
	for _, row := range d.Rows {
		k := value.MakeKey(row, idx)
		if mix(k.Hash(), salt) <= threshold {
			h.Freq[k]++
			sampledRows++
		}
	}
	h.Rows = int(float64(sampledRows)/rate + 0.5)
	return h, nil
}

// mix folds a salt into a key hash (splitmix64 finalizer).
func mix(h, salt uint64) uint64 {
	x := h ^ salt
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Distinct reports the number of distinct sampled keys; the full-table
// distinct count is ≈ Distinct()/Rate.
func (h *Histogram) Distinct() int { return len(h.Freq) }

// RedundancyFactor computes r(e) for a MAST edge per Appendix A:
//
//	r(e) = Σ_{v ∈ Ve} E_{f(v),n}[X] / |Tj|
//
// where h is the histogram of the join key in the *referenced* table Ti,
// n is the partition count, and refingRows = |Tj| is the cardinality of
// the *referencing* table. Under sampling, the key sum extrapolates by
// 1/rate. The result is clamped to [1, n].
func RedundancyFactor(h *Histogram, n, refingRows int) float64 {
	if refingRows == 0 {
		return 1
	}
	tbl := NewCopiesTable(n, 256)
	sum := 0.0
	for _, f := range h.Freq {
		sum += tbl.Lookup(f)
	}
	r := sum / h.Rate / float64(refingRows)
	if r < 1 {
		// Referencing tuples without a partner are stored exactly once,
		// so the factor can never drop below 1.
		r = 1
	}
	if r > float64(n) {
		r = float64(n)
	}
	return r
}
