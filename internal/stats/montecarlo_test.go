package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestExpectedCopiesMonteCarlo validates the Appendix A model empirically:
// placing f occurrences of a join-key value uniformly into n partitions
// and counting the distinct partitions hit must average to E_{f,n}[X]
// within sampling error — for both the closed form n·(1−(1−1/n)^f) and
// the exact Stirling evaluation (which the closed-form grid test already
// proves equal to each other; this pins them to the physical process the
// formulas claim to model).
func TestExpectedCopiesMonteCarlo(t *testing.T) {
	const trials = 20000
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 3, 4, 8, 16} {
		for _, f := range []int{1, 2, 3, 5, 8, 13, 21, 40} {
			var sum, sumSq float64
			occupied := make([]bool, n)
			for trial := 0; trial < trials; trial++ {
				for i := range occupied {
					occupied[i] = false
				}
				distinct := 0
				for i := 0; i < f; i++ {
					b := rng.Intn(n)
					if !occupied[b] {
						occupied[b] = true
						distinct++
					}
				}
				d := float64(distinct)
				sum += d
				sumSq += d * d
			}
			mean := sum / trials
			variance := sumSq/trials - mean*mean
			stderr := math.Sqrt(variance / trials)
			// 5σ plus an absolute floor: near-saturated grids (f ≫ n)
			// observe X = n on every trial (zero variance) while the
			// formula keeps a sub-resolution tail like n·(1−1/n)^f ≈ 1e-6
			// that no affordable trial count can distinguish from n.
			tol := 5*stderr + 1e-4
			for _, ref := range []struct {
				name string
				v    float64
			}{
				{"closed", ExpectedCopies(f, n)},
				{"exact", ExpectedCopiesExact(f, n)},
			} {
				if diff := math.Abs(mean - ref.v); diff > tol {
					t.Errorf("f=%d n=%d: simulated mean %.5f vs %s %.5f (|Δ|=%.5f > tol %.5f)",
						f, n, mean, ref.name, ref.v, diff, tol)
				}
			}
		}
	}
}

// TestCopiesDistributionMonteCarlo spot-checks the full distribution, not
// just its mean: empirical P(X=x) frequencies must track the probability
// DP for a moderate (f, n).
func TestCopiesDistributionMonteCarlo(t *testing.T) {
	const trials = 50000
	f, n := 6, 4
	rng := rand.New(rand.NewSource(23))
	counts := make([]int, n+1)
	for trial := 0; trial < trials; trial++ {
		var mask uint
		for i := 0; i < f; i++ {
			mask |= 1 << uint(rng.Intn(n))
		}
		counts[popcount(mask)]++
	}
	want := CopiesDistribution(f, n)
	for x := 0; x <= n; x++ {
		got := float64(counts[x]) / trials
		// Binomial sampling error on a proportion, 5σ.
		tol := 5*math.Sqrt(want[x]*(1-want[x])/trials) + 1e-9
		if math.Abs(got-want[x]) > tol {
			t.Errorf("P(X=%d): simulated %.5f vs DP %.5f (tol %.5f)", x, got, want[x], tol)
		}
	}
}

func popcount(m uint) int {
	c := 0
	for ; m != 0; m &= m - 1 {
		c++
	}
	return c
}
