package stats

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"pref/internal/catalog"
	"pref/internal/table"
	"pref/internal/value"
)

func TestStirling2KnownValues(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {1, 1, 1}, {3, 2, 3}, {4, 2, 7}, {5, 3, 25},
		{6, 3, 90}, {10, 5, 42525}, {5, 5, 1}, {5, 0, 0}, {5, 6, 0}, {-1, 0, 0},
	}
	for _, c := range cases {
		if got := Stirling2(c.n, c.k).Int64(); got != c.want {
			t.Errorf("S(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestStirling2Recurrence(t *testing.T) {
	// S(n,k) = k·S(n−1,k) + S(n−1,k−1)
	for n := 2; n <= 12; n++ {
		for k := 1; k <= n; k++ {
			lhs := Stirling2(n, k)
			rhs := Stirling2(n-1, k)
			rhs.Mul(rhs, big.NewInt(int64(k)))
			rhs.Add(rhs, Stirling2(n-1, k-1))
			if lhs.Cmp(rhs) != 0 {
				t.Fatalf("recurrence fails at S(%d,%d)", n, k)
			}
		}
	}
}

func TestBellNumbers(t *testing.T) {
	want := []int64{1, 1, 2, 5, 15, 52, 203, 877, 4140}
	for n, w := range want {
		if got := Bell(n).Int64(); got != w {
			t.Errorf("B(%d) = %d, want %d", n, got, w)
		}
	}
}

// The three E[X] computations must agree: closed form, exact Stirling
// formula, and probability DP.
func TestExpectedCopiesThreeWaysAgree(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 10} {
		for _, f := range []int{1, 2, 3, 4, 7, 12, 20} {
			closed := ExpectedCopies(f, n)
			exact := ExpectedCopiesExact(f, n)
			dist := CopiesDistribution(f, n)
			var dp float64
			for x, p := range dist {
				dp += float64(x) * p
			}
			if math.Abs(closed-exact) > 1e-9 {
				t.Errorf("f=%d n=%d: closed %v != stirling %v", f, n, closed, exact)
			}
			if math.Abs(closed-dp) > 1e-9 {
				t.Errorf("f=%d n=%d: closed %v != dp %v", f, n, closed, dp)
			}
		}
	}
}

func TestExpectedCopiesBounds(t *testing.T) {
	f := func(fRaw, nRaw uint8) bool {
		ff := int(fRaw%100) + 1
		n := int(nRaw%20) + 1
		e := ExpectedCopies(ff, n)
		upper := float64(ff)
		if float64(n) < upper {
			upper = float64(n) // paper: X ∈ [1, min(n,f)]
		}
		return e >= 1-1e-12 && e <= upper+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedCopiesEdgeCases(t *testing.T) {
	if ExpectedCopies(0, 5) != 0 || ExpectedCopies(5, 0) != 0 {
		t.Fatal("zero f or n must be 0")
	}
	if ExpectedCopies(7, 1) != 1 {
		t.Fatal("single partition ⇒ exactly one copy")
	}
	if got := ExpectedCopies(1, 10); got != 1 {
		t.Fatalf("f=1 ⇒ 1 copy, got %v", got)
	}
	// Monotone in f.
	prev := 0.0
	for ff := 1; ff < 50; ff++ {
		e := ExpectedCopies(ff, 10)
		if e < prev {
			t.Fatalf("E not monotone at f=%d", ff)
		}
		prev = e
	}
	// Approaches n for large f.
	if ExpectedCopies(10000, 10) < 9.999 {
		t.Fatal("E should approach n for huge f")
	}
}

func TestCopiesDistributionSumsToOne(t *testing.T) {
	for _, n := range []int{1, 3, 8} {
		for _, f := range []int{0, 1, 5, 17} {
			sum := 0.0
			for _, p := range CopiesDistribution(f, n) {
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("distribution f=%d n=%d sums to %v", f, n, sum)
			}
		}
	}
}

func TestCopiesTable(t *testing.T) {
	tbl := NewCopiesTable(10, 64)
	if tbl.N() != 10 {
		t.Fatal("N")
	}
	for f := 0; f <= 64; f++ {
		if tbl.Lookup(f) != ExpectedCopies(f, 10) {
			t.Fatalf("table lookup mismatch at f=%d", f)
		}
	}
	// Fallback beyond the cap.
	if tbl.Lookup(1000) != ExpectedCopies(1000, 10) {
		t.Fatal("fallback mismatch")
	}
}

func histTestData(t *testing.T, keys []int64) *table.Data {
	t.Helper()
	m := catalog.MustTable("t", []catalog.Column{{Name: "k", Kind: value.Int}}, "k")
	d := table.NewData(m)
	for _, k := range keys {
		d.MustAppend(value.Tuple{k})
	}
	return d
}

func TestBuildHistogramExact(t *testing.T) {
	d := histTestData(t, []int64{1, 1, 1, 2, 2, 3})
	h, err := BuildHistogram(d, "k")
	if err != nil {
		t.Fatal(err)
	}
	if h.Distinct() != 3 || h.Rows != 6 || h.Rate != 1 {
		t.Fatalf("distinct=%d rows=%d rate=%v", h.Distinct(), h.Rows, h.Rate)
	}
	if h.Freq[value.MakeKey1(1)] != 3 || h.Freq[value.MakeKey1(3)] != 1 {
		t.Fatal("frequencies wrong")
	}
}

func TestBuildHistogramBadArgs(t *testing.T) {
	d := histTestData(t, []int64{1})
	if _, err := BuildHistogram(d, "nope"); err == nil {
		t.Fatal("unknown column must error")
	}
	if _, err := BuildSampledHistogram(d, 0, 1, "k"); err == nil {
		t.Fatal("rate 0 must error")
	}
	if _, err := BuildSampledHistogram(d, 1.5, 1, "k"); err == nil {
		t.Fatal("rate > 1 must error")
	}
}

func TestSampledHistogramUniverse(t *testing.T) {
	// 10000 rows, 100 distinct keys each appearing 100 times. Universe
	// sampling at 10% keeps ~10 keys with their EXACT frequencies.
	keys := make([]int64, 0, 10000)
	for k := int64(0); k < 100; k++ {
		for i := 0; i < 100; i++ {
			keys = append(keys, k)
		}
	}
	d := histTestData(t, keys)
	h, err := BuildSampledHistogram(d, 0.1, 7, "k")
	if err != nil {
		t.Fatal(err)
	}
	// ~10% of the key universe survives (binomial noise allowed).
	if h.Distinct() < 3 || h.Distinct() > 25 {
		t.Fatalf("distinct sampled keys = %d, want ≈10", h.Distinct())
	}
	// Frequencies of sampled keys are exact.
	for k, f := range h.Freq {
		if f != 100 {
			t.Fatalf("sampled key %q freq = %d, want exactly 100", k, f)
		}
	}
	// Row estimate = sampled rows / rate.
	if h.Rows != h.Distinct()*100*10 {
		t.Fatalf("estimated rows = %d with %d keys", h.Rows, h.Distinct())
	}
}

func TestSampledHistogramConsistentUniverse(t *testing.T) {
	// Two tables sharing keys sample the SAME key subset (same rate and
	// seed) — the property the joint estimator relies on.
	a := histTestData(t, seqKeys(500))
	b := histTestData(t, seqKeys(500))
	ha, err := BuildSampledHistogram(a, 0.2, 9, "k")
	if err != nil {
		t.Fatal(err)
	}
	hb, err := BuildSampledHistogram(b, 0.2, 9, "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(ha.Freq) != len(hb.Freq) {
		t.Fatalf("sampled key counts differ: %d vs %d", len(ha.Freq), len(hb.Freq))
	}
	for k := range ha.Freq {
		if _, ok := hb.Freq[k]; !ok {
			t.Fatalf("key %q sampled in one table but not the other", k)
		}
	}
	// A different seed selects a different universe.
	hc, err := BuildSampledHistogram(a, 0.2, 10, "k")
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for k := range ha.Freq {
		if _, ok := hc.Freq[k]; ok {
			same++
		}
	}
	if same == len(ha.Freq) {
		t.Fatal("different salts should select different key universes")
	}
}

func seqKeys(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func TestRedundancyFactorUniform(t *testing.T) {
	// Referenced-table join key: 100 distinct values, each f=5;
	// referencing table has one row per distinct value.
	keys := make([]int64, 0, 500)
	for k := int64(0); k < 100; k++ {
		for i := 0; i < 5; i++ {
			keys = append(keys, k)
		}
	}
	h, err := BuildHistogram(histTestData(t, keys), "k")
	if err != nil {
		t.Fatal(err)
	}
	n := 10
	got := RedundancyFactor(h, n, 100)
	want := ExpectedCopies(5, n) // every key contributes the same E
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("r(e) = %v, want %v", got, want)
	}
}

func TestRedundancyFactorClamps(t *testing.T) {
	h, _ := BuildHistogram(histTestData(t, []int64{1}), "k")
	// Huge referencing table ⇒ raw ratio < 1, must clamp to 1.
	if got := RedundancyFactor(h, 10, 1000); got != 1 {
		t.Fatalf("clamp low: %v", got)
	}
	if got := RedundancyFactor(h, 10, 0); got != 1 {
		t.Fatalf("empty referencing table: %v", got)
	}
}

func TestRedundancyFactorUniqueKeyIsOne(t *testing.T) {
	// If the referenced join key is unique (f=1 everywhere), PREF adds no
	// redundancy: r(e) = 1. This is the Section 3.4 redundancy-free rule.
	keys := make([]int64, 200)
	for i := range keys {
		keys[i] = int64(i)
	}
	h, _ := BuildHistogram(histTestData(t, keys), "k")
	if got := RedundancyFactor(h, 10, 200); got != 1 {
		t.Fatalf("unique key r(e) = %v, want 1", got)
	}
}
