// Package stats implements the statistics behind the paper's redundancy
// estimation (Appendix A): join-key histograms (optionally from samples),
// Stirling numbers of the second kind, the expected number of tuple copies
// E_{f,n}[X], and per-edge redundancy factors.
package stats

import "math/big"

// Stirling2 returns the Stirling number of the second kind S(n, k): the
// number of ways to partition n labeled objects into k non-empty unlabeled
// groups. Exact (big.Int); used by the paper both for E_{f,n}[X]
// (Appendix A) and to size the WD merge search space (Section 4.3).
func Stirling2(n, k int) *big.Int {
	if n < 0 || k < 0 || k > n {
		return big.NewInt(0)
	}
	if n == 0 && k == 0 {
		return big.NewInt(1)
	}
	if k == 0 || n == 0 {
		return big.NewInt(0)
	}
	// DP over S(i, j) = j*S(i-1, j) + S(i-1, j-1).
	prev := make([]*big.Int, k+1)
	cur := make([]*big.Int, k+1)
	for j := range prev {
		prev[j] = big.NewInt(0)
		cur[j] = big.NewInt(0)
	}
	prev[0] = big.NewInt(1) // S(0,0)
	for i := 1; i <= n; i++ {
		cur[0] = big.NewInt(0)
		for j := 1; j <= k && j <= i; j++ {
			t := new(big.Int).Mul(big.NewInt(int64(j)), prev[j])
			cur[j] = t.Add(t, prev[j-1])
		}
		prev, cur = cur, prev
	}
	return prev[k]
}

// Bell returns the Bell number B(n) = Σ_k S(n,k): the number of partitions
// of an n-element set. This is the size of the unpruned WD merge-
// configuration search space for n queries (Section 4.3).
func Bell(n int) *big.Int {
	sum := big.NewInt(0)
	for k := 0; k <= n; k++ {
		sum.Add(sum, Stirling2(n, k))
	}
	return sum
}
