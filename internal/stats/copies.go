package stats

import (
	"math"
	"math/big"
)

// ExpectedCopies returns E_{f,n}[X]: the expected number of distinct
// partitions (out of n) that end up holding a copy of a referenced-table
// tuple whose join-key value occurs f times in the referencing side's seed
// placement, under the paper's uniform-placement model (Appendix A).
//
// It uses the closed form n·(1 − (1 − 1/n)^f), which is algebraically equal
// to the paper's Stirling-number formulation
// Σ_x x·C(n,x)·x!·S(f,x)/n^f — the equality is verified in tests against
// both the exact big-rational evaluation and a probability DP.
func ExpectedCopies(f, n int) float64 {
	if f <= 0 || n <= 0 {
		return 0
	}
	if n == 1 || f == 1 {
		return 1
	}
	return float64(n) * (1 - math.Pow(1-1/float64(n), float64(f)))
}

// ExpectedCopiesReal is ExpectedCopies for non-integral occurrence counts,
// used when a key's frequency is scaled by an upstream chain inflation
// (the closed form extends naturally to real exponents).
func ExpectedCopiesReal(f float64, n int) float64 {
	if f <= 0 || n <= 0 {
		return 0
	}
	if n == 1 || f <= 1 {
		return 1
	}
	return float64(n) * (1 - math.Pow(1-1/float64(n), f))
}

// ExpectedCopiesExact evaluates the paper's formula literally with exact
// big-rational arithmetic:
//
//	E_{f,n}[X] = Σ_{x=1}^{min(n,f)} x · C(n,x)·x!·S(f,x) / n^f
//
// It is exponential-free but O(min(n,f)·f) with big numbers, so it is meant
// for validation and the precomputed lookup table, not hot paths.
func ExpectedCopiesExact(f, n int) float64 {
	if f <= 0 || n <= 0 {
		return 0
	}
	m := f
	if n < m {
		m = n
	}
	den := new(big.Int).Exp(big.NewInt(int64(n)), big.NewInt(int64(f)), nil)
	sum := new(big.Rat)
	for x := 1; x <= m; x++ {
		// C(n,x) · x! = n·(n−1)·…·(n−x+1)  (falling factorial)
		ways := big.NewInt(1)
		for i := 0; i < x; i++ {
			ways.Mul(ways, big.NewInt(int64(n-i)))
		}
		num := new(big.Int).Mul(ways, Stirling2(f, x))
		num.Mul(num, big.NewInt(int64(x)))
		sum.Add(sum, new(big.Rat).SetFrac(num, den))
	}
	v, _ := sum.Float64()
	return v
}

// CopiesDistribution returns P(X = x) for x in [0, n]: the probability that
// exactly x partitions are occupied after placing f occurrences uniformly
// into n partitions. Computed by an O(f·n) probability DP, avoiding big
// Stirling numbers.
func CopiesDistribution(f, n int) []float64 {
	p := make([]float64, n+1)
	p[0] = 1
	for i := 0; i < f; i++ {
		next := make([]float64, n+1)
		for x := 0; x <= n; x++ {
			if p[x] == 0 {
				continue
			}
			// next occurrence lands in an occupied partition…
			next[x] += p[x] * float64(x) / float64(n)
			// …or a fresh one
			if x < n {
				next[x+1] += p[x] * float64(n-x) / float64(n)
			}
		}
		p = next
	}
	return p
}

// CopiesTable is the preprocessing lookup table the paper describes: an
// O(1) E_{f,n}[X] lookup for f up to a cap, falling back to the closed
// form beyond it.
type CopiesTable struct {
	n    int
	e    []float64 // e[f] = E_{f,n}[X], f in [0, maxF]
	maxF int
}

// NewCopiesTable precomputes E_{f,n}[X] for f in [0, maxF].
func NewCopiesTable(n, maxF int) *CopiesTable {
	t := &CopiesTable{n: n, maxF: maxF, e: make([]float64, maxF+1)}
	for f := 0; f <= maxF; f++ {
		t.e[f] = ExpectedCopies(f, n)
	}
	return t
}

// Lookup returns E_{f,n}[X] in O(1) for f ≤ maxF, else the closed form.
func (t *CopiesTable) Lookup(f int) float64 {
	if f >= 0 && f <= t.maxF {
		return t.e[f]
	}
	return ExpectedCopies(f, t.n)
}

// N reports the partition count the table was built for.
func (t *CopiesTable) N() int { return t.n }
