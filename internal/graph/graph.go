// Package graph implements the undirected, labeled, weighted graphs of
// Sections 3 and 4: schema graphs (nodes = tables, edges = referential
// constraints or query join predicates, weights = network cost of a remote
// join ≈ size of the smaller table) and the maximum spanning tree (MAST)
// extraction that maximizes data-locality.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is an undirected labeled edge between two tables. The label is the
// equi-join predicate ACols[i] = BCols[i] between tables A and B. Edges are
// stored canonically with A < B.
type Edge struct {
	A, B   string
	ACols  []string
	BCols  []string
	Weight int64
}

// Canonical returns a copy with A < B (swapping column lists along).
func (e Edge) Canonical() Edge {
	if e.A <= e.B {
		return e
	}
	return Edge{A: e.B, B: e.A, ACols: e.BCols, BCols: e.ACols, Weight: e.Weight}
}

// ID is a stable identity for the edge: endpoints plus the (sorted)
// conjunct pairs, ignoring weight.
func (e Edge) ID() string {
	c := e.Canonical()
	pairs := make([]string, len(c.ACols))
	for i := range c.ACols {
		pairs[i] = c.ACols[i] + "=" + c.BCols[i]
	}
	sort.Strings(pairs)
	return c.A + "|" + c.B + "|" + strings.Join(pairs, "&")
}

// Other returns the endpoint opposite to table t, or "" if t is not an
// endpoint.
func (e Edge) Other(t string) string {
	switch t {
	case e.A:
		return e.B
	case e.B:
		return e.A
	default:
		return ""
	}
}

// ColsOf returns the predicate columns on table t's side.
func (e Edge) ColsOf(t string) []string {
	switch t {
	case e.A:
		return e.ACols
	case e.B:
		return e.BCols
	default:
		return nil
	}
}

func (e Edge) String() string {
	c := e.Canonical()
	pairs := make([]string, len(c.ACols))
	for i := range c.ACols {
		pairs[i] = fmt.Sprintf("%s.%s=%s.%s", c.A, c.ACols[i], c.B, c.BCols[i])
	}
	return fmt.Sprintf("%s w=%d", strings.Join(pairs, " AND "), c.Weight)
}

// Graph is an undirected labeled weighted multigraph over table names.
// Parallel edges with different labels are kept; re-adding an edge with an
// identical label keeps the larger weight.
type Graph struct {
	nodes map[string]bool
	edges map[string]Edge // by ID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{nodes: make(map[string]bool), edges: make(map[string]Edge)}
}

// AddNode inserts a node (idempotent).
func (g *Graph) AddNode(t string) { g.nodes[t] = true }

// AddEdge inserts an edge, adding its endpoints as nodes. A duplicate edge
// (same endpoints and label) keeps the maximum weight seen.
func (g *Graph) AddEdge(e Edge) {
	c := e.Canonical()
	g.AddNode(c.A)
	g.AddNode(c.B)
	id := c.ID()
	if old, ok := g.edges[id]; ok && old.Weight >= c.Weight {
		return
	}
	g.edges[id] = c
}

// HasNode reports whether t is a node.
func (g *Graph) HasNode(t string) bool { return g.nodes[t] }

// HasEdge reports whether an edge with e's identity is present.
func (g *Graph) HasEdge(e Edge) bool {
	_, ok := g.edges[e.ID()]
	return ok
}

// Nodes returns the node names, sorted.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Edges returns the edges sorted by (descending weight, ID) — the order
// Kruskal consumes them in, kept deterministic for reproducible designs.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for _, e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].ID() < out[j].ID()
	})
	return out
}

// NumNodes reports the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges reports the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() int64 {
	var w int64
	for _, e := range g.edges {
		w += e.Weight
	}
	return w
}

// EdgesAt returns the edges incident to node t, deterministically ordered.
func (g *Graph) EdgesAt(t string) []Edge {
	var out []Edge
	for _, e := range g.Edges() {
		if e.A == t || e.B == t {
			out = append(out, e)
		}
	}
	return out
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	out := New()
	for n := range g.nodes {
		out.AddNode(n)
	}
	for _, e := range g.edges {
		out.AddEdge(e)
	}
	return out
}

// Subgraph returns the induced subgraph over the given nodes: those nodes
// plus every edge with both endpoints among them.
func (g *Graph) Subgraph(nodes []string) *Graph {
	keep := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		keep[n] = true
	}
	out := New()
	for n := range g.nodes {
		if keep[n] {
			out.AddNode(n)
		}
	}
	for _, e := range g.edges {
		if keep[e.A] && keep[e.B] {
			out.AddEdge(e)
		}
	}
	return out
}

// Union returns a new graph with the nodes and edges of both graphs
// (duplicate edges keep the larger weight).
func (g *Graph) Union(h *Graph) *Graph {
	out := g.Clone()
	for n := range h.nodes {
		out.AddNode(n)
	}
	for _, e := range h.edges {
		out.AddEdge(e)
	}
	return out
}

// ContainedIn reports whether every node and edge of g appears in h
// (edge identity = endpoints + label; weights are ignored, matching the
// phase-1 WD merge rule of Section 4.1 where weights are table sizes and
// thus identical across queries).
func (g *Graph) ContainedIn(h *Graph) bool {
	for n := range g.nodes {
		if !h.nodes[n] {
			return false
		}
	}
	for id := range g.edges {
		if _, ok := h.edges[id]; !ok {
			return false
		}
	}
	return true
}

// Components returns the connected components as sorted node lists,
// ordered by their first node.
func (g *Graph) Components() [][]string {
	adj := g.adjacency()
	seen := map[string]bool{}
	var comps [][]string
	for _, start := range g.Nodes() {
		if seen[start] {
			continue
		}
		var comp []string
		stack := []string{start}
		seen[start] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, n)
			for _, m := range adj[n] {
				if !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		sort.Strings(comp)
		comps = append(comps, comp)
	}
	return comps
}

func (g *Graph) adjacency() map[string][]string {
	adj := map[string][]string{}
	for _, e := range g.Edges() {
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	for n := range adj {
		sort.Strings(adj[n])
	}
	return adj
}

// IsAcyclic reports whether the graph is a forest (counting parallel edges
// between the same pair as a cycle).
func (g *Graph) IsAcyclic() bool {
	uf := newUnionFind()
	for _, e := range g.edges {
		if !uf.union(e.A, e.B) {
			return false
		}
	}
	return true
}

// MaximumSpanningTree returns the MAST of the graph: for each connected
// component, the spanning tree maximizing total edge weight (Section 3.2).
// Discarding only the lightest edges minimizes the network cost of the
// remote joins that remain, maximizing data-locality. Ties are broken
// deterministically by edge ID.
func (g *Graph) MaximumSpanningTree() *Graph {
	out := New()
	for n := range g.nodes {
		out.AddNode(n)
	}
	uf := newUnionFind()
	for _, e := range g.Edges() { // descending weight
		if uf.union(e.A, e.B) {
			out.AddEdge(e)
		}
	}
	return out
}

// MaximumSpanningTrees enumerates all maximum spanning trees that can be
// produced by swapping equally-weighted edges, up to the given limit.
// Section 3.1 notes several MASTs with the same total weight can exist and
// the design step should consider each; limit bounds the combinatorics.
func (g *Graph) MaximumSpanningTrees(limit int) []*Graph {
	if limit <= 0 {
		limit = 1
	}
	base := g.MaximumSpanningTree()
	want := base.TotalWeight()
	results := []*Graph{base}
	seen := map[string]bool{signature(base): true}

	// Try replacing each tree edge with each equally-weighted non-tree
	// edge; accept swaps preserving total weight and spanning structure.
	frontier := []*Graph{base}
	for len(frontier) > 0 && len(results) < limit {
		var next []*Graph
		for _, tree := range frontier {
			for _, out := range g.Edges() {
				if tree.HasEdge(out) {
					continue
				}
				for _, in := range tree.Edges() {
					if in.Weight != out.Weight {
						continue
					}
					cand := New()
					for n := range tree.nodes {
						cand.AddNode(n)
					}
					for _, e := range tree.Edges() {
						if e.ID() != in.ID() {
							cand.AddEdge(e)
						}
					}
					cand.AddEdge(out)
					if cand.TotalWeight() != want || !cand.IsAcyclic() {
						continue
					}
					if len(cand.Components()) != len(tree.Components()) {
						continue
					}
					sig := signature(cand)
					if seen[sig] {
						continue
					}
					seen[sig] = true
					results = append(results, cand)
					next = append(next, cand)
					if len(results) >= limit {
						return results
					}
				}
			}
		}
		frontier = next
	}
	return results
}

func signature(g *Graph) string {
	ids := make([]string, 0, len(g.edges))
	for id := range g.edges {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return strings.Join(ids, ";")
}

// DataLocality returns DL = Σ_{e∈eco} w(e) / Σ_{e∈g} w(e) (Section 3.2):
// the weight fraction of g's edges that eco keeps co-partitioned. A graph
// without edges has DL = 1 (nothing can be remote).
func DataLocality(g, eco *Graph) float64 {
	total := g.TotalWeight()
	if total == 0 {
		return 1
	}
	var kept int64
	for id, e := range g.edges {
		if _, ok := eco.edges[id]; ok {
			kept += e.Weight
		}
	}
	return float64(kept) / float64(total)
}

// unionFind is a path-compressing disjoint-set over strings.
type unionFind struct {
	parent map[string]string
}

func newUnionFind() *unionFind { return &unionFind{parent: map[string]string{}} }

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

// union merges the sets of a and b, reporting false if already joined.
func (u *unionFind) union(a, b string) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	u.parent[ra] = rb
	return true
}
