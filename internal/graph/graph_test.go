package graph

import (
	"reflect"
	"testing"
	"testing/quick"
)

func e(a, b string, w int64) Edge {
	return Edge{A: a, B: b, ACols: []string{"k"}, BCols: []string{"k"}, Weight: w}
}

// tpchGraph builds the simplified TPC-H schema graph of Figure 4 with its
// published weights (SF=1): L–O 1.5m, L–S 10k... The figure uses:
// C–O 150k, O–L 1.5m, L–S 10k(?) — per the figure: edges L-O 1.5m,
// C-O 150k, L-S 10k, C-N 25, S-N 25.
func tpchGraph() *Graph {
	g := New()
	g.AddEdge(e("L", "O", 1_500_000))
	g.AddEdge(e("C", "O", 150_000))
	g.AddEdge(e("L", "S", 10_000))
	g.AddEdge(e("C", "N", 25))
	g.AddEdge(e("S", "N", 25))
	return g
}

func TestEdgeCanonicalAndID(t *testing.T) {
	a := Edge{A: "orders", B: "customer", ACols: []string{"custkey"}, BCols: []string{"custkey"}, Weight: 5}
	c := a.Canonical()
	if c.A != "customer" || c.B != "orders" {
		t.Fatalf("canonical = %v", c)
	}
	b := Edge{A: "customer", B: "orders", ACols: []string{"custkey"}, BCols: []string{"custkey"}, Weight: 9}
	if a.ID() != b.ID() {
		t.Fatal("IDs must be direction-insensitive")
	}
	d := Edge{A: "customer", B: "orders", ACols: []string{"nationkey"}, BCols: []string{"custkey"}}
	if a.ID() == d.ID() {
		t.Fatal("different labels must differ")
	}
}

func TestEdgeOtherAndColsOf(t *testing.T) {
	ed := Edge{A: "a", B: "b", ACols: []string{"x"}, BCols: []string{"y"}}
	if ed.Other("a") != "b" || ed.Other("b") != "a" || ed.Other("z") != "" {
		t.Fatal("Other broken")
	}
	if ed.ColsOf("a")[0] != "x" || ed.ColsOf("b")[0] != "y" || ed.ColsOf("z") != nil {
		t.Fatal("ColsOf broken")
	}
}

func TestAddEdgeDedupKeepsMaxWeight(t *testing.T) {
	g := New()
	g.AddEdge(e("a", "b", 5))
	g.AddEdge(e("b", "a", 9))
	g.AddEdge(e("a", "b", 3))
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if g.Edges()[0].Weight != 9 {
		t.Fatalf("weight = %d, want max 9", g.Edges()[0].Weight)
	}
}

func TestParallelEdgesDifferentLabels(t *testing.T) {
	g := New()
	g.AddEdge(Edge{A: "a", B: "b", ACols: []string{"x"}, BCols: []string{"x"}, Weight: 1})
	g.AddEdge(Edge{A: "a", B: "b", ACols: []string{"y"}, BCols: []string{"y"}, Weight: 1})
	if g.NumEdges() != 2 {
		t.Fatal("different labels must be kept as parallel edges")
	}
	if g.IsAcyclic() {
		t.Fatal("parallel edges form a cycle")
	}
}

func TestComponents(t *testing.T) {
	g := New()
	g.AddEdge(e("a", "b", 1))
	g.AddEdge(e("b", "c", 1))
	g.AddEdge(e("x", "y", 1))
	g.AddNode("lonely")
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	want := [][]string{{"a", "b", "c"}, {"lonely"}, {"x", "y"}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("components = %v, want %v", comps, want)
	}
}

func TestMASTFigure4(t *testing.T) {
	// Figure 4: the MAST of the simplified TPC-H graph drops one of the
	// two weight-25 edges (C–N or S–N), keeping total weight 1.5m + 150k
	// + 10k + 25.
	g := tpchGraph()
	mast := g.MaximumSpanningTree()
	if mast.NumEdges() != 4 {
		t.Fatalf("MAST edges = %d, want 4", mast.NumEdges())
	}
	if got, want := mast.TotalWeight(), int64(1_500_000+150_000+10_000+25); got != want {
		t.Fatalf("MAST weight = %d, want %d", got, want)
	}
	if !mast.IsAcyclic() {
		t.Fatal("MAST must be acyclic")
	}
	if len(mast.Components()) != 1 {
		t.Fatal("MAST must stay connected")
	}
	// Heavy edges always kept.
	if !mast.HasEdge(e("L", "O", 0)) || !mast.HasEdge(e("C", "O", 0)) || !mast.HasEdge(e("L", "S", 0)) {
		t.Fatal("MAST must keep the heavy edges")
	}
}

func TestMASTPerComponent(t *testing.T) {
	g := New()
	g.AddEdge(e("a", "b", 10))
	g.AddEdge(e("b", "c", 5))
	g.AddEdge(e("a", "c", 1)) // cycle; lightest, dropped
	g.AddEdge(e("x", "y", 7))
	mast := g.MaximumSpanningTree()
	if mast.NumEdges() != 3 {
		t.Fatalf("forest edges = %d, want 3", mast.NumEdges())
	}
	if mast.HasEdge(e("a", "c", 0)) {
		t.Fatal("lightest cycle edge must be dropped")
	}
}

func TestMultipleMASTs(t *testing.T) {
	g := tpchGraph()
	masts := g.MaximumSpanningTrees(10)
	// Exactly two: drop C–N or drop S–N.
	if len(masts) != 2 {
		t.Fatalf("found %d MASTs, want 2", len(masts))
	}
	for _, m := range masts {
		if m.TotalWeight() != 1_660_025 {
			t.Fatalf("alternate MAST weight = %d", m.TotalWeight())
		}
		if !m.IsAcyclic() || len(m.Components()) != 1 {
			t.Fatal("alternate MAST invalid")
		}
	}
	if signature(masts[0]) == signature(masts[1]) {
		t.Fatal("MASTs must be distinct")
	}
}

func TestDataLocality(t *testing.T) {
	g := tpchGraph()
	mast := g.MaximumSpanningTree()
	// DL = kept/total = 1,660,025 / 1,660,050.
	got := DataLocality(g, mast)
	want := 1_660_025.0 / 1_660_050.0
	if got != want {
		t.Fatalf("DL = %v, want %v", got, want)
	}
	if DataLocality(g, g) != 1 {
		t.Fatal("DL of graph vs itself must be 1")
	}
	if DataLocality(g, New()) != 0 {
		t.Fatal("DL vs empty co-partitioning must be 0")
	}
	if DataLocality(New(), New()) != 1 {
		t.Fatal("edgeless graph has DL 1")
	}
}

func TestContainedIn(t *testing.T) {
	small := New()
	small.AddEdge(e("a", "b", 1))
	big := New()
	big.AddEdge(e("a", "b", 1))
	big.AddEdge(e("b", "c", 2))
	if !small.ContainedIn(big) {
		t.Fatal("small ⊆ big")
	}
	if big.ContainedIn(small) {
		t.Fatal("big ⊄ small")
	}
	// Same nodes, different label: not contained.
	other := New()
	other.AddEdge(Edge{A: "a", B: "b", ACols: []string{"z"}, BCols: []string{"z"}, Weight: 1})
	if other.ContainedIn(big) {
		t.Fatal("label mismatch must break containment")
	}
}

func TestUnion(t *testing.T) {
	g := New()
	g.AddEdge(e("a", "b", 1))
	h := New()
	h.AddEdge(e("b", "c", 2))
	h.AddEdge(e("a", "b", 5))
	u := g.Union(h)
	if u.NumEdges() != 2 || u.NumNodes() != 3 {
		t.Fatalf("union = %d edges %d nodes", u.NumEdges(), u.NumNodes())
	}
	// dedup keeps max weight
	for _, ed := range u.Edges() {
		if ed.A == "a" && ed.B == "b" && ed.Weight != 5 {
			t.Fatal("union should keep max weight")
		}
	}
	// inputs unchanged
	if g.NumEdges() != 1 || h.NumEdges() != 2 {
		t.Fatal("union must not mutate inputs")
	}
}

func TestIsAcyclic(t *testing.T) {
	g := New()
	g.AddEdge(e("a", "b", 1))
	g.AddEdge(e("b", "c", 1))
	if !g.IsAcyclic() {
		t.Fatal("path is acyclic")
	}
	g.AddEdge(e("a", "c", 1))
	if g.IsAcyclic() {
		t.Fatal("triangle has a cycle")
	}
}

func TestEdgesAt(t *testing.T) {
	g := tpchGraph()
	at := g.EdgesAt("L")
	if len(at) != 2 {
		t.Fatalf("EdgesAt(L) = %d edges", len(at))
	}
	if at[0].Weight < at[1].Weight {
		t.Fatal("EdgesAt must be weight-descending")
	}
}

// Property: a MAST of a connected random graph spans all nodes with
// exactly n−1 edges, is acyclic, and no single edge swap improves weight.
func TestMASTProperty(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f"}
	f := func(raw []uint16) bool {
		g := New()
		// Chain guarantees connectivity.
		for i := 1; i < len(names); i++ {
			g.AddEdge(e(names[i-1], names[i], int64(i)))
		}
		for _, r := range raw {
			i, j, w := int(r%6), int((r/6)%6), int64(r%97)+1
			if i != j {
				g.AddEdge(e(names[i], names[j], w))
			}
		}
		mast := g.MaximumSpanningTree()
		if mast.NumEdges() != len(names)-1 || !mast.IsAcyclic() || len(mast.Components()) != 1 {
			return false
		}
		// Cut property: no non-tree edge can replace a lighter tree edge
		// (checked coarsely: tree weight ≥ weight of any spanning tree we
		// can build greedily by a different deterministic order).
		alt := New()
		uf := newUnionFind()
		for _, ed := range g.Edges() {
			if uf.union(ed.A, ed.B) {
				alt.AddEdge(ed)
			}
		}
		return mast.TotalWeight() >= alt.TotalWeight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
