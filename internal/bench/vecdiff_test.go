package bench

import (
	"testing"

	"pref/internal/design"
	"pref/internal/engine"
	"pref/internal/plan"
	"pref/internal/tpch"
	"pref/internal/value"
)

// TestVecRowOracleTPCH is the end-to-end differential oracle for the
// vectorized engine: all 22 TPC-H queries under every Section 5.1 design
// variant execute on both the columnar path and the row-at-a-time
// reference path, and the results must be byte-equal — same schema, same
// rows (after SortRows order normalisation, since aggregate output is
// map-ordered), same values bit for bit (float aggregation accumulates in
// the same row order on both paths), and the same execution telemetry.
func TestVecRowOracleTPCH(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle runs 22 queries x 7 variants x 2 engines; skipped in -short")
	}
	d := tpch.Generate(0.002, 7)
	vs, err := TPCHVariants(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	order := []string{"AllReplicated", "AllHashed", "CP", "SD", "SD-noRed", "SD-paper", "WD"}
	mats := map[string]*Materialized{}
	for _, name := range order {
		v, ok := vs[name]
		if !ok {
			t.Fatalf("variant %s missing from TPCHVariants", name)
		}
		m, err := Materialize(v, d.DB)
		if err != nil {
			t.Fatalf("materialize %s: %v", name, err)
		}
		mats[name] = m
	}

	run := func(t *testing.T, name, query string, rowEngine bool) *engine.Result {
		t.Helper()
		v, m := vs[name], mats[name]
		gi := v.RouteFor(query)
		rw, err := plan.Rewrite(d.Query(query), d.DB.Schema, v.Groups[gi].Config,
			plan.Options{Sizes: design.SizesOf(d.DB)})
		if err != nil {
			t.Fatalf("%s/%s: rewrite: %v", name, query, err)
		}
		res, err := engine.ExecuteOpts(rw, m.PDBs[gi], engine.ExecOptions{RowEngine: rowEngine})
		if err != nil {
			t.Fatalf("%s/%s: execute: %v", name, query, err)
		}
		res.SortRows()
		return res
	}

	sameRows := func(a, b []value.Tuple) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if len(a[i]) != len(b[i]) {
				return false
			}
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					return false
				}
			}
		}
		return true
	}

	for _, query := range tpch.QueryNames {
		query := query
		t.Run(query, func(t *testing.T) {
			for _, name := range order {
				vec := run(t, name, query, false)
				row := run(t, name, query, true)
				if !sameRows(vec.Rows, row.Rows) {
					t.Errorf("%s/%s: vectorized result diverges from row engine: %d vs %d rows",
						name, query, len(vec.Rows), len(row.Rows))
				}
				if vec.Stats != row.Stats {
					t.Errorf("%s/%s: stats diverge:\nvec %+v\nrow %+v", name, query, vec.Stats, row.Stats)
				}
			}
		})
	}
}
