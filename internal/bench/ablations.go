package bench

import (
	"time"

	"pref/internal/bulkload"
	"pref/internal/design"
	"pref/internal/engine"
	"pref/internal/graph"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/stats"
	"pref/internal/table"
	"pref/internal/tpcds"
	"pref/internal/tpch"
)

// AblationSpanningTree contrasts the paper's maximum spanning tree against
// a minimum spanning tree and shows why discarding the lightest edges
// (Section 3.2) is the right locality objective: the kept co-partitioning
// weight — hence DL — collapses under the minimum tree.
func AblationSpanningTree(p Params) (*Report, error) {
	// Uses the full 8-table schema: its graph has cycles (through nation
	// and supplier), so maximum and minimum spanning trees differ.
	t := tpch.Generate(p.SF, p.Seed)
	reduced := t.DB
	sizes := design.SizesOf(reduced)
	hp := design.NewHistProvider(reduced, 1, p.Seed)
	gs := design.SchemaGraph(reduced.Schema, sizes)

	build := func(tree *graph.Graph) (float64, float64, error) {
		var pcs []*design.PC
		for _, comp := range tree.Components() {
			pc, err := design.FindOptimalPC(tree.Subgraph(comp), reduced.Schema, sizes, hp, p.Parts)
			if err != nil {
				return 0, 0, err
			}
			pcs = append(pcs, pc)
		}
		eco := graph.New()
		cfg := partition.NewConfig(p.Parts)
		for _, pc := range pcs {
			eco = eco.Union(pc.Eco)
			for tb, sc := range pc.Config.Schemes {
				cfg.Schemes[tb] = sc
			}
		}
		pdb, err := partition.Apply(reduced, cfg)
		if err != nil {
			return 0, 0, err
		}
		return graph.DataLocality(gs, eco), pdb.DataRedundancy(), nil
	}

	mast := gs.MaximumSpanningTree()

	// Minimum spanning tree: invert the weights and re-extract.
	inv := graph.New()
	var maxW int64
	for _, e := range gs.Edges() {
		if e.Weight > maxW {
			maxW = e.Weight
		}
	}
	for _, e := range gs.Edges() {
		e.Weight = maxW + 1 - e.Weight
		inv.AddEdge(e)
	}
	minTree := inv.MaximumSpanningTree()
	// Restore true weights on the chosen edges.
	minRestored := graph.New()
	for _, e := range minTree.Edges() {
		e.Weight = maxW + 1 - e.Weight
		minRestored.AddEdge(e)
	}

	r := &Report{ID: "ablation-mast", Title: "Spanning-tree choice for co-partitioning",
		Columns: []string{"DL", "DR"}}
	dl, dr, err := build(mast)
	if err != nil {
		return nil, err
	}
	r.Add("maximum (paper)", dl, dr)
	dl, dr, err = build(minRestored)
	if err != nil {
		return nil, err
	}
	r.Add("minimum", dl, dr)
	r.Notes = append(r.Notes, "DL = fraction of join weight kept local; the MAST keeps the heavy joins")
	return r, nil
}

// AblationEstimator compares the paper's expected-copies estimator
// E_{f,n}[X] (Appendix A) against the naive min(n, f) upper bound on the
// skewed TPC-DS data: the naive bound wildly overestimates redundancy.
func AblationEstimator(p Params) (*Report, error) {
	t := tpcds.Generate(p.DSSF, p.Seed)
	reduced := t.DB.Without(tpcds.SmallTables()...)
	d, err := design.SchemaDriven(reduced, design.SDOptions{Parts: p.Parts})
	if err != nil {
		return nil, err
	}
	pdb, err := partition.Apply(reduced, d.Config)
	if err != nil {
		return nil, err
	}
	actual := pdb.DataRedundancy()

	literalEst, err := estimateWithCopies(d.Config, reduced, p.Parts, stats.ExpectedCopies)
	if err != nil {
		return nil, err
	}
	naiveEst, err := estimateWithCopies(d.Config, reduced, p.Parts,
		func(f, n int) float64 {
			if f < n {
				return float64(f)
			}
			return float64(n)
		})
	if err != nil {
		return nil, err
	}

	r := &Report{ID: "ablation-estimator", Title: "Redundancy estimator choice (TPC-DS, skewed)",
		Columns: []string{"estimated_DR", "actual_DR", "rel_error"}}
	r.Add("joint E[X] (ours)", d.Est.DR(), actual, relErr(d.Est.DR(), actual))
	r.Add("literal E[X] (paper)", literalEst, actual, relErr(literalEst, actual))
	r.Add("min(n,f) bound", naiveEst, actual, relErr(naiveEst, actual))
	r.Notes = append(r.Notes,
		"the literal Appendix A formula ignores the unmatched fraction per edge and over-multiplies on deep chains")
	return r, nil
}

// estimateWithCopies re-runs the Appendix A size estimation with a custom
// expected-copies function.
func estimateWithCopies(cfg *partition.Config, db *table.Database, parts int, copies func(f, n int) float64) (float64, error) {
	hp := design.NewHistProvider(db, 1, 0)
	sizes := design.SizesOf(db)
	var total float64
	var orig int
	for name, ts := range cfg.Schemes {
		orig += sizes[name]
		size := float64(sizes[name])
		if ts.Method == partition.Pref {
			chain, err := cfg.Chain(name)
			if err != nil {
				return 0, err
			}
			for _, tbl := range chain[:len(chain)-1] {
				child := cfg.Scheme(tbl)
				parent := cfg.Scheme(child.RefTable)
				if parent.Method == partition.Hash && subset(parent.Cols, child.Pred.ReferencedCols) {
					continue // co-located by construction
				}
				h, err := hp.Hist(child.RefTable, child.Pred.ReferencedCols)
				if err != nil {
					return 0, err
				}
				sum := 0.0
				for _, f := range h.Freq {
					sum += copies(f, parts)
				}
				factor := sum / float64(sizes[tbl])
				if factor < 1 {
					factor = 1
				}
				if factor > float64(parts) {
					factor = float64(parts)
				}
				size *= factor
			}
			if max := float64(sizes[name] * parts); size > max {
				size = max
			}
		}
		total += size
	}
	if orig == 0 {
		return 0, nil
	}
	return total/float64(orig) - 1, nil
}

// AblationPartitionIndex measures the Section 2.3 claim: bulk loading with
// the partition index versus resolving PREF targets by scanning the
// referenced table.
func AblationPartitionIndex(p Params) (*Report, error) {
	t := tpch.Generate(p.SF/2, p.Seed)
	cfg := PaperSDConfig(p.Parts)
	r := &Report{ID: "ablation-partindex", Title: "Bulk loading with vs without the partition index",
		Columns: []string{"wall_ms", "lookups", "rows_scanned"}}
	for _, mode := range []struct {
		name string
		use  bool
	}{{"with index (paper)", true}, {"without index", false}} {
		pdb := emptyPDB(t.DB, cfg)
		loader := bulkload.NewLoader(pdb, cfg)
		loader.UsePartitionIndex = mode.use
		start := time.Now()
		if _, err := loader.LoadDatabase(subDB(t.DB, cfg)); err != nil {
			return nil, err
		}
		r.Add(mode.name, float64(time.Since(start).Milliseconds()),
			float64(loader.Lookups), float64(loader.ScannedRows))
	}
	return r, nil
}

// AblationWDPhase1 measures how much the containment merge (phase 1)
// shrinks the cost-based merge's search space and runtime on the TPC-DS
// workload.
func AblationWDPhase1(p Params) (*Report, error) {
	t := tpcds.Generate(p.DSSF, p.Seed)
	small := tpcds.SmallTables()
	reduced := t.DB.Without(small...)
	w := design.FilterWorkload(tpcds.Workload(), small)

	r := &Report{ID: "ablation-wdphase1", Title: "WD phase-1 containment merge on/off (TPC-DS)",
		Columns: []string{"wall_ms", "units_into_phase2", "final_groups"}}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"with phase 1 (paper)", false}, {"without phase 1", true}} {
		start := time.Now()
		wd, err := design.WorkloadDriven(reduced, w, design.WDOptions{
			Parts: p.Parts, DisablePhase1: mode.disable,
		})
		if err != nil {
			return nil, err
		}
		r.Add(mode.name, float64(time.Since(start).Milliseconds()),
			float64(wd.UnitsAfterPhase1), float64(len(wd.Groups)))
	}
	return r, nil
}

// AblationPruning measures the partition-pruning extension (the paper's
// conclusion names "partition pruning for PREF" as future work) on an
// OLTP-flavored point-query workload: orderkey lookups and their
// one-order join, under the paper's SD configuration where ORDERS is
// hash-equivalent PREF.
func AblationPruning(p Params) (*Report, error) {
	t := tpch.Generate(p.SF, p.Seed)
	cfg := PaperSDConfig(p.Parts)
	v := singleGroup("SD-paper", cfg)
	m, err := Materialize(v, t.DB)
	if err != nil {
		return nil, err
	}
	eopt := p.execOptions(t.DB.TotalRows())

	pointLookup := func(k int64) plan.Node {
		f := plan.Filter(plan.Scan("orders", "o"),
			plan.Eq(plan.Col("o.orderkey"), plan.Lit(k)))
		return plan.ProjectCols(f, "o.orderkey", "o.totalprice")
	}
	pointJoin := func(k int64) plan.Node {
		o := plan.Filter(plan.Scan("orders", "o"),
			plan.Eq(plan.Col("o.orderkey"), plan.Lit(k)))
		j := plan.Join(plan.Scan("lineitem", "l"), o, plan.Inner,
			[]string{"l.orderkey"}, []string{"o.orderkey"})
		return plan.Aggregate(j, nil, plan.Count("lines"))
	}

	r := &Report{ID: "ablation-pruning", Title: "Partition pruning on point queries (SD config)",
		Columns: []string{"rows_processed", "sim_ms"}}
	const lookups = 50
	shapes := []struct {
		name string
		mk   func(int64) plan.Node
	}{{"lookup", pointLookup}, {"order-join", pointJoin}}
	for _, shape := range shapes {
		for _, mode := range []struct {
			name string
			opt  plan.Options
		}{
			{shape.name + " pruned (extension)", plan.Options{}},
			{shape.name + " unpruned", plan.Options{DisablePruning: true}},
		} {
			var rows int64
			var sim time.Duration
			for k := int64(1); k <= lookups; k++ {
				rw, err := plan.Rewrite(shape.mk(k), t.DB.Schema, cfg, mode.opt)
				if err != nil {
					return nil, err
				}
				res, err := engine.ExecuteOpts(rw, m.PDBs[0], eopt)
				if err != nil {
					return nil, err
				}
				rows += res.Stats.RowsProcessed
				sim += p.Cost.Simulate(res.Stats)
			}
			r.Add(mode.name, float64(rows), float64(sim.Microseconds())/1000)
		}
	}
	r.Notes = append(r.Notes,
		"50 point queries per shape; pruning reads 1 partition of ORDERS instead of n "+
			"(the join shape still scans LINEITEM fully — its gain is bounded by the probe side)")
	return r, nil
}

// ExtOLTP measures the paper's OLTP outlook (Section 7): with
// no-redundancy constraints, the WD algorithm clusters each transaction's
// tuple group — a customer with all their orders and lineitems — onto a
// single node without duplicating anything. The metric is the fraction of
// such transactions resolvable on one node.
func ExtOLTP(p Params) (*Report, error) {
	t := tpch.Generate(p.SF, p.Seed)
	db := t.DB.Without("nation", "region", "supplier", "part", "partsupp")

	// The transactional access pattern: customer ⋈ orders ⋈ lineitem.
	txn := []design.Query{{Name: "txn", Joins: []design.QueryJoin{
		{TableA: "customer", ColsA: []string{"custkey"}, TableB: "orders", ColsB: []string{"custkey"}},
		{TableA: "orders", ColsA: []string{"orderkey"}, TableB: "lineitem", ColsB: []string{"orderkey"}},
	}}}

	wd, err := design.WorkloadDriven(db, txn, design.WDOptions{
		Parts: p.Parts, NoRedundancy: db.Schema.TableNames(),
	})
	if err != nil {
		return nil, err
	}
	oltpCfg := wd.Groups[0].PC.Config

	hashCfg := partition.NewConfig(p.Parts)
	for _, tbl := range db.Schema.Tables() {
		hashCfg.SetHash(tbl.Name, tbl.PK...)
	}

	r := &Report{ID: "ext-oltp", Title: "Single-node transaction locality (customer+orders+lineitems)",
		Columns: []string{"single_node_pct", "DR"}}
	for _, mode := range []struct {
		name string
		cfg  *partition.Config
	}{{"WD no-redundancy (outlook)", oltpCfg}, {"AllHashed on pk", hashCfg}} {
		pdb, err := partition.Apply(db, mode.cfg)
		if err != nil {
			return nil, err
		}
		pct := singleNodeTxnFraction(db, pdb)
		r.Add(mode.name, pct*100, pdb.DataRedundancy())
	}
	r.Notes = append(r.Notes,
		"a transaction = one customer with all their orders and lineitems; "+
			"single-node transactions need no distributed coordination")
	return r, nil
}

// singleNodeTxnFraction computes the share of customers whose row, orders,
// and lineitems all live in one partition.
func singleNodeTxnFraction(db *table.Database, pdb *table.PartitionedDatabase) float64 {
	// partition of each customer (first copy).
	custPart := map[int64]int{}
	ck := pdb.Tables["customer"].Meta.ColIndex("custkey")
	for p, part := range pdb.Tables["customer"].Parts {
		for _, r := range part.Rows {
			if _, seen := custPart[r[ck]]; !seen {
				custPart[r[ck]] = p
			}
		}
	}
	// orders per partition; orderkey → custkey.
	orderCust := map[int64]int64{}
	ok := pdb.Tables["orders"].Meta.ColIndex("orderkey")
	occ := pdb.Tables["orders"].Meta.ColIndex("custkey")
	violated := map[int64]bool{}
	for p, part := range pdb.Tables["orders"].Parts {
		for _, r := range part.Rows {
			orderCust[r[ok]] = r[occ]
			if cp, seen := custPart[r[occ]]; seen && cp != p {
				violated[r[occ]] = true
			}
		}
	}
	lk := pdb.Tables["lineitem"].Meta.ColIndex("orderkey")
	for p, part := range pdb.Tables["lineitem"].Parts {
		for _, r := range part.Rows {
			cust, okk := orderCust[r[lk]]
			if !okk {
				continue
			}
			if cp, seen := custPart[cust]; seen && cp != p {
				violated[cust] = true
			}
		}
	}
	total := len(custPart)
	if total == 0 {
		return 0
	}
	return float64(total-len(violated)) / float64(total)
}

func relErr(est, actual float64) float64 {
	if actual <= 1e-12 {
		return abs(est - actual)
	}
	return abs(est-actual) / actual
}

func subset(a, b []string) bool {
	set := map[string]bool{}
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

func init() {
	Experiments["ablation-mast"] = AblationSpanningTree
	Experiments["ablation-estimator"] = AblationEstimator
	Experiments["ablation-partindex"] = AblationPartitionIndex
	Experiments["ablation-wdphase1"] = AblationWDPhase1
	Experiments["ablation-pruning"] = AblationPruning
	Experiments["ext-oltp"] = ExtOLTP
	ExperimentOrder = append(ExperimentOrder,
		"ablation-mast", "ablation-estimator", "ablation-partindex",
		"ablation-wdphase1", "ablation-pruning", "ext-oltp")
}
