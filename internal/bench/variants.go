// Package bench builds the partitioning variants of Section 5 (classical
// partitioning, all-hashed, all-replicated, SD, SD without redundancy, WD,
// and the TPC-DS star decompositions) and drives every experiment of the
// paper's evaluation: one function per table/figure, shared by the
// prefbench CLI and the root testing.B benchmarks.
package bench

import (
	"fmt"
	"sort"

	"pref/internal/design"
	"pref/internal/graph"
	"pref/internal/partition"
	"pref/internal/table"
	"pref/internal/tpcds"
	"pref/internal/tpch"
)

// Group is one physical database of a variant: the set of tables it holds
// and their configuration. Single-group variants hold every table; WD and
// star variants hold one group per merged MAST / star.
type Group struct {
	Name   string
	Config *partition.Config
}

// Variant is a named partitioning design over a database.
type Variant struct {
	Name string
	// Groups (≥1); tables may repeat across groups under different
	// schemes (they are then physically duplicated, per Section 4.3).
	Groups []Group
	// Route maps query name → group index (single-group variants route
	// everything to group 0).
	Route map[string]int
}

// RouteFor returns the group a query executes against.
func (v *Variant) RouteFor(query string) int {
	if v.Route == nil {
		return 0
	}
	if g, ok := v.Route[query]; ok {
		return g
	}
	return 0
}

// Materialized is a variant applied to data: one partitioned database per
// group plus the global redundancy accounting.
type Materialized struct {
	Variant *Variant
	PDBs    []*table.PartitionedDatabase
	// DL/DR are the Section 3 metrics: locality over the full schema
	// graph, redundancy with identical table copies de-duplicated.
	DL float64
	DR float64
}

// Materialize applies every group's configuration and computes DL/DR.
func Materialize(v *Variant, db *table.Database) (*Materialized, error) {
	m := &Materialized{Variant: v}
	type copyKey struct{ tbl, sig string }
	stored := map[copyKey]int{}
	origTables := map[string]bool{}

	for _, g := range v.Groups {
		sub := db
		var absent []string
		for _, t := range db.Schema.TableNames() {
			if g.Config.Scheme(t) == nil {
				absent = append(absent, t)
			}
		}
		if len(absent) > 0 {
			sub = db.Without(absent...)
		}
		pdb, err := partition.Apply(sub, g.Config)
		if err != nil {
			return nil, fmt.Errorf("bench: variant %s group %s: %w", v.Name, g.Name, err)
		}
		m.PDBs = append(m.PDBs, pdb)
		for tbl, pt := range pdb.Tables {
			sig, err := g.Config.SchemeSignature(tbl)
			if err != nil {
				return nil, err
			}
			stored[copyKey{tbl, sig}] = pt.StoredRows()
			origTables[tbl] = true
		}
	}

	total, orig := 0, 0
	for k, n := range stored {
		_ = k
		total += n
	}
	for t := range origTables {
		orig += db.Tables[t].Len()
	}
	if orig > 0 {
		m.DR = float64(total)/float64(orig) - 1
	}
	m.DL = variantDL(v, db)
	return m, nil
}

// variantDL computes data-locality over the full schema graph: an edge is
// co-partitioned if any group makes its join local (PREF on the edge
// predicate, aligned hashing, or a replicated endpoint).
func variantDL(v *Variant, db *table.Database) float64 {
	sizes := design.SizesOf(db)
	gs := design.SchemaGraph(db.Schema, sizes)
	eco := graph.New()
	for _, e := range gs.Edges() {
		for _, g := range v.Groups {
			if edgeLocal(g.Config, e) {
				eco.AddEdge(e)
				break
			}
		}
	}
	return graph.DataLocality(gs, eco)
}

// edgeLocal reports whether a schema-graph edge joins locally under cfg.
func edgeLocal(cfg *partition.Config, e graph.Edge) bool {
	sa, sb := cfg.Scheme(e.A), cfg.Scheme(e.B)
	if sa == nil || sb == nil {
		return false
	}
	if sa.Method == partition.Replicated || sb.Method == partition.Replicated {
		return true
	}
	// Aligned hash partitioning on the edge keys.
	if sa.Method == partition.Hash && sb.Method == partition.Hash &&
		sameStrings(sa.Cols, e.ColsOf(e.A)) && sameStrings(sb.Cols, e.ColsOf(e.B)) {
		return true
	}
	// PREF on exactly this predicate, in either direction.
	pred := partition.Predicate{ReferencingCols: e.ColsOf(e.A), ReferencedCols: e.ColsOf(e.B)}
	if sa.Method == partition.Pref && sa.RefTable == e.B && sa.Pred.Equal(pred) {
		return true
	}
	rev := partition.Predicate{ReferencingCols: e.ColsOf(e.B), ReferencedCols: e.ColsOf(e.A)}
	if sb.Method == partition.Pref && sb.RefTable == e.A && sb.Pred.Equal(rev) {
		return true
	}
	return false
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---- TPC-H variants (Section 5.1) ----

// TPCHVariants builds the variant set of the TPC-H experiments for n
// partitions: AllHashed, AllReplicated, CP, SD, SD-noRed, and WD.
func TPCHVariants(t *tpch.TPCH, n int) (map[string]*Variant, error) {
	db := t.DB
	out := map[string]*Variant{}

	out["AllHashed"] = singleGroup("AllHashed", allHashed(db, n))
	out["AllReplicated"] = singleGroup("AllReplicated", allReplicated(db, n))

	// Classical partitioning: the two biggest connected tables hash
	// co-partitioned on their join key, everything else replicated.
	cp := partition.NewConfig(n)
	cp.SetHash("lineitem", "orderkey")
	cp.SetHash("orders", "orderkey")
	for _, tbl := range []string{"customer", "part", "partsupp", "supplier", "nation", "region"} {
		cp.SetReplicated(tbl)
	}
	out["CP"] = singleGroup("CP", cp)

	excluded := tpch.SmallTables()
	reduced := db.Without(excluded...)

	sd, err := design.SchemaDriven(reduced, design.SDOptions{Parts: n})
	if err != nil {
		return nil, err
	}
	out["SD"] = singleGroup("SD", withReplicated(sd.Config, excluded))

	sdNoRed, err := design.SchemaDriven(reduced, design.SDOptions{
		Parts: n, NoRedundancy: reduced.Schema.TableNames(),
	})
	if err != nil {
		return nil, err
	}
	out["SD-noRed"] = singleGroup("SD-noRed", withReplicated(sdNoRed.Config, excluded))

	// The exact configuration the paper reports for its SD run (LINEITEM
	// seed). Our own SD may legally choose a different seed with a
	// smaller size estimate; both are reported in the experiments.
	out["SD-paper"] = singleGroup("SD-paper", PaperSDConfig(n))

	wd, err := design.WorkloadDriven(reduced, tpch.WorkloadWithout(excluded...), design.WDOptions{Parts: n})
	if err != nil {
		return nil, err
	}
	out["WD"] = wdVariant("WD", wd, excluded, n)
	return out, nil
}

// ---- TPC-DS variants (Section 5.3) ----

// TPCDSVariants builds AllHashed, AllReplicated, CP-Naive, CP-Stars,
// SD-Naive, SD-Stars, and WD for the TPC-DS schema.
func TPCDSVariants(t *tpcds.TPCDS, n int) (map[string]*Variant, error) {
	db := t.DB
	out := map[string]*Variant{}

	out["AllHashed"] = singleGroup("AllHashed", allHashed(db, n))
	out["AllReplicated"] = singleGroup("AllReplicated", allReplicated(db, n))

	// CP-Naive: the biggest table (store_sales) co-partitioned with its
	// biggest connected table (store_returns) on their join key; all
	// other tables replicated.
	cpn := partition.NewConfig(n)
	cpn.SetHash("store_sales", "ss_item_sk", "ss_ticket_number")
	cpn.SetHash("store_returns", "sr_item_sk", "sr_ticket_number")
	for _, tbl := range db.Schema.TableNames() {
		if cpn.Scheme(tbl) == nil {
			cpn.SetReplicated(tbl)
		}
	}
	out["CP-Naive"] = singleGroup("CP-Naive", cpn)

	// CP-Stars: one group per star; the fact is hash partitioned on its
	// biggest-dimension fk, that dimension co-partitioned, the star's
	// other dimensions replicated (dimensions at cuts duplicate).
	out["CP-Stars"] = cpStars(db, n)

	small := tpcds.SmallTables()
	reduced := db.Without(small...)

	sdN, err := design.SchemaDriven(reduced, design.SDOptions{Parts: n})
	if err != nil {
		return nil, err
	}
	out["SD-Naive"] = singleGroup("SD-Naive", withReplicated(sdN.Config, small))

	out["SD-Stars"], err = sdStars(db, small, n)
	if err != nil {
		return nil, err
	}

	wd, err := design.WorkloadDriven(reduced, design.FilterWorkload(tpcds.Workload(), small), design.WDOptions{Parts: n})
	if err != nil {
		return nil, err
	}
	out["WD"] = wdVariant("WD", wd, small, n)
	return out, nil
}

// ---- helpers ----

func singleGroup(name string, cfg *partition.Config) *Variant {
	return &Variant{Name: name, Groups: []Group{{Name: name, Config: cfg}}}
}

// SingleGroupVariant wraps one configuration as a variant (e.g. a config
// loaded from JSON by prefquery).
func SingleGroupVariant(name string, cfg *partition.Config) *Variant {
	return singleGroup(name, cfg)
}

func allHashed(db *table.Database, n int) *partition.Config {
	cfg := partition.NewConfig(n)
	for _, t := range db.Schema.Tables() {
		cols := t.PK
		if len(cols) == 0 {
			cols = []string{t.Columns[0].Name}
		}
		cfg.SetHash(t.Name, cols...)
	}
	return cfg
}

func allReplicated(db *table.Database, n int) *partition.Config {
	cfg := partition.NewConfig(n)
	for _, t := range db.Schema.Tables() {
		cfg.SetReplicated(t.Name)
	}
	return cfg
}

func withReplicated(cfg *partition.Config, replicated []string) *partition.Config {
	out := cfg.Clone()
	for _, t := range replicated {
		out.SetReplicated(t)
	}
	return out
}

// wdVariant turns a WD design into a multi-group variant, adding the
// replicated small tables to every group so queries can always resolve
// them locally.
func wdVariant(name string, wd *design.WDDesign, replicated []string, n int) *Variant {
	v := &Variant{Name: name, Route: map[string]int{}}
	for gi, g := range wd.Groups {
		cfg := withReplicated(g.PC.Config, replicated)
		v.Groups = append(v.Groups, Group{Name: fmt.Sprintf("%s-g%d", name, gi), Config: cfg})
		for _, q := range g.Queries {
			v.Route[q] = gi
		}
	}
	sort.Slice(v.Groups, func(i, j int) bool { return v.Groups[i].Name < v.Groups[j].Name })
	return v
}

// cpStars builds the manual star decomposition with classical
// partitioning per star.
func cpStars(db *table.Database, n int) *Variant {
	v := &Variant{Name: "CP-Stars"}
	stars := tpcds.Stars()
	facts := tpcds.FactTables()
	sizes := design.SizesOf(db)
	for _, fact := range facts {
		cfg := partition.NewConfig(n)
		dims := stars[fact]
		// Pick the biggest dimension joined by a single-column fk.
		bestDim, bestCols, bestDimCols := "", []string(nil), []string(nil)
		for _, fk := range db.Schema.FKs {
			if fk.FromTable != fact || len(fk.FromCols) != 1 {
				continue
			}
			if !contains(dims, fk.ToTable) {
				continue
			}
			if bestDim == "" || sizes[fk.ToTable] > sizes[bestDim] {
				bestDim, bestCols, bestDimCols = fk.ToTable, fk.FromCols, fk.ToCols
			}
		}
		if bestDim == "" {
			cfg.SetHash(fact, db.Schema.Table(fact).PK...)
		} else {
			cfg.SetHash(fact, bestCols...)
			cfg.SetHash(bestDim, bestDimCols...)
		}
		for _, d := range dims {
			if cfg.Scheme(d) == nil {
				cfg.SetReplicated(d)
			}
		}
		v.Groups = append(v.Groups, Group{Name: "star-" + fact, Config: cfg})
	}
	return v
}

// sdStars applies the SD algorithm to each star separately.
func sdStars(db *table.Database, small []string, n int) (*Variant, error) {
	v := &Variant{Name: "SD-Stars"}
	stars := tpcds.Stars()
	smallSet := map[string]bool{}
	for _, s := range small {
		smallSet[s] = true
	}
	for _, fact := range tpcds.FactTables() {
		keep := []string{fact}
		for _, d := range stars[fact] {
			if !smallSet[d] {
				keep = append(keep, d)
			}
		}
		var dropAll []string
		for _, t := range db.Schema.TableNames() {
			if !contains(keep, t) {
				dropAll = append(dropAll, t)
			}
		}
		sub := db.Without(dropAll...)
		d, err := design.SchemaDriven(sub, design.SDOptions{Parts: n})
		if err != nil {
			return nil, err
		}
		cfg := d.Config.Clone()
		for _, s := range stars[fact] {
			if smallSet[s] {
				cfg.SetReplicated(s)
			}
		}
		v.Groups = append(v.Groups, Group{Name: "star-" + fact, Config: cfg})
	}
	return v, nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
