package bench

import (
	"fmt"
	"testing"
)

func TestFaultSweepMonotoneDegradation(t *testing.T) {
	r, err := FaultSweep(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(faultProbs) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(faultProbs))
	}
	// Same seed across probabilities ⇒ a higher probability injects a
	// superset of the faults of a lower one, so latency and bytes are
	// monotone non-decreasing per variant.
	for _, v := range faultVariants {
		for _, col := range []string{v + "_ms", v + "_MB"} {
			prev := -1.0
			for _, prob := range faultProbs {
				row := fmt.Sprintf("p=%.2f", prob)
				got, ok := r.Value(row, col)
				if !ok {
					t.Fatalf("missing cell %s/%s", row, col)
				}
				if got < prev {
					t.Errorf("%s not monotone: %v at %s after %v", col, got, row, prev)
				}
				prev = got
			}
		}
	}
	// Faults must actually bite at the top of the sweep: the fault-free
	// baseline strictly below the p=0.20 latency for every variant.
	for _, v := range faultVariants {
		lo, _ := r.Value("p=0.00", v+"_ms")
		hi, _ := r.Value("p=0.20", v+"_ms")
		if hi <= lo {
			t.Errorf("%s: no latency degradation across the sweep (%v → %v)", v, lo, hi)
		}
	}
}
