package bench

import (
	"reflect"
	"testing"

	"pref/internal/design"
	"pref/internal/engine"
	"pref/internal/plan"
	"pref/internal/tpch"
	"pref/internal/value"
)

// TestDifferentialTPCH executes all 22 TPC-H queries under every design
// variant of Section 5.1 and checks each against the AllReplicated
// baseline (every join local and loss-free, so its answer is trusted).
// Row order is normalised with Result.SortRows before comparison. This is
// the correctness backstop for the observability layer: variants differ
// wildly in *how* rows move (which the trace records), but never in
// *what* they answer.
func TestDifferentialTPCH(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite runs 22 queries x 7 variants; skipped in -short")
	}
	d := tpch.Generate(0.002, 7)
	vs, err := TPCHVariants(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline first, then every other variant in a fixed order.
	order := []string{"AllReplicated", "AllHashed", "CP", "SD", "SD-noRed", "SD-paper", "WD"}
	for _, name := range order {
		if _, ok := vs[name]; !ok {
			t.Fatalf("variant %s missing from TPCHVariants", name)
		}
	}

	run := func(t *testing.T, v *Variant, m *Materialized, query string) []value.Tuple {
		t.Helper()
		gi := v.RouteFor(query)
		rw, err := plan.Rewrite(d.Query(query), d.DB.Schema, v.Groups[gi].Config,
			plan.Options{Sizes: design.SizesOf(d.DB)})
		if err != nil {
			t.Fatalf("%s/%s: rewrite: %v", v.Name, query, err)
		}
		res, err := engine.Execute(rw, m.PDBs[gi])
		if err != nil {
			t.Fatalf("%s/%s: execute: %v", v.Name, query, err)
		}
		res.SortRows()
		return res.Rows
	}

	mats := map[string]*Materialized{}
	for _, name := range order {
		m, err := Materialize(vs[name], d.DB)
		if err != nil {
			t.Fatalf("materialize %s: %v", name, err)
		}
		mats[name] = m
	}

	for _, query := range tpch.QueryNames {
		query := query
		t.Run(query, func(t *testing.T) {
			ref := run(t, vs["AllReplicated"], mats["AllReplicated"], query)
			if len(ref) == 0 {
				t.Fatalf("%s baseline returned no rows at this scale", query)
			}
			for _, name := range order[1:] {
				got := run(t, vs[name], mats[name], query)
				if !reflect.DeepEqual(got, ref) {
					t.Errorf("%s diverges from AllReplicated on %s: got %d rows, want %d",
						name, query, len(got), len(ref))
				}
			}
		})
	}
}
