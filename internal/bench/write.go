package bench

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pref/internal/bulkload"
	"pref/internal/catalog"
	"pref/internal/check"
	"pref/internal/cluster"
	"pref/internal/engine"
	"pref/internal/fault"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/table"
	"pref/internal/value"
)

// Mixed OLTP/OLAP soak: a crash-injected write stream races concurrent
// analytical readers on one store. The writer applies seeded
// insert/update/delete batches through the bulkload intent log while
// fault injection crashes batches mid-write; every crash is recovered
// before the stream continues. Readers execute aggregate and join
// queries concurrently and each result must equal, bit for bit, the
// logical oracle at the query's pinned epoch — snapshot isolation means
// a racing or crashed batch can shift WHICH epoch a query reads, never
// WHAT an epoch contains. After the stream drains, the store must pass
// the full write-invariant check (check.VerifyStore).

// writeChainSchema is the three-table PREF chain the soak writes into:
// lineitem seeds by hash, orders co-partitions with lineitem, customer
// co-partitions with orders.
func writeChainSchema() *catalog.Schema {
	s := catalog.NewSchema("mixed")
	s.MustAddTable(catalog.MustTable("customer",
		[]catalog.Column{{Name: "custkey", Kind: value.Int}, {Name: "nation", Kind: value.Int}}, "custkey"))
	s.MustAddTable(catalog.MustTable("orders",
		[]catalog.Column{{Name: "orderkey", Kind: value.Int}, {Name: "custkey", Kind: value.Int}}, "orderkey"))
	s.MustAddTable(catalog.MustTable("lineitem",
		[]catalog.Column{{Name: "linekey", Kind: value.Int}, {Name: "orderkey", Kind: value.Int}}, "linekey"))
	return s
}

func writeChainConfig(parts int) *partition.Config {
	cfg := partition.NewConfig(parts)
	cfg.SetHash("lineitem", "linekey")
	cfg.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	cfg.SetPref("customer", "orders", []string{"custkey"}, []string{"custkey"})
	return cfg
}

func writeChainDB(s *catalog.Schema) *table.Database {
	db := table.NewDatabase(s)
	for c := int64(0); c < 8; c++ {
		db.Tables["customer"].MustAppend(value.Tuple{c, c % 5})
	}
	for o := int64(0); o < 16; o++ {
		db.Tables["orders"].MustAppend(value.Tuple{o, o % 8})
	}
	for l := int64(0); l < 32; l++ {
		db.Tables["lineitem"].MustAppend(value.Tuple{l, l % 16})
	}
	return db
}

// writeMixedOps is the deterministic logical write stream: one batch per
// index mixing leaf updates and deletes, referencing-side orphan
// inserts, referenced-side inserts (which widen partition indexes under
// the documented insert-order slack), and multi-op seed inserts with
// fresh keys. The shape deliberately stays inside the loader's
// maintained semantics: customer is the chain leaf (deletable), new
// orders and lineitems use keys no referencing tuple depends on — new
// orders carry custkeys disjoint from every customer (past or future),
// since the write path deliberately does not cascade referencing copies
// when a referenced-side insert widens a partition index.
func writeMixedOps(b int) []bulkload.Op {
	switch {
	case b%7 == 3:
		return []bulkload.Op{bulkload.Update("customer",
			[]string{"custkey"}, value.Tuple{int64(b % 8)}, "nation", int64(b))}
	case b%11 == 5:
		return []bulkload.Op{bulkload.Delete("customer",
			[]string{"custkey"}, value.Tuple{int64((b * 3) % 8)})}
	case b%3 == 0:
		return []bulkload.Op{bulkload.Insert("orders", value.Tuple{int64(1000 + b), int64(500 + b)})}
	case b%3 == 1:
		return []bulkload.Op{bulkload.Insert("customer", value.Tuple{int64(100 + b), int64(b % 8)})}
	default:
		return []bulkload.Op{
			bulkload.Insert("lineitem", value.Tuple{int64(2000 + b), int64(3000 + b)}),
			bulkload.Insert("lineitem", value.Tuple{int64(2500 + b), int64(3000 + b)}),
		}
	}
}

// mixedMirror is the logical oracle state: each table keyed by its
// primary key (the stream only ever writes unique primaries).
type mixedMirror struct {
	customer map[int64]value.Tuple
	orders   map[int64]value.Tuple
	lineitem map[int64]value.Tuple
}

func newMixedMirror(db *table.Database) *mixedMirror {
	m := &mixedMirror{
		customer: map[int64]value.Tuple{},
		orders:   map[int64]value.Tuple{},
		lineitem: map[int64]value.Tuple{},
	}
	for _, r := range db.Tables["customer"].Rows {
		m.customer[r[0]] = r.Clone()
	}
	for _, r := range db.Tables["orders"].Rows {
		m.orders[r[0]] = r.Clone()
	}
	for _, r := range db.Tables["lineitem"].Rows {
		m.lineitem[r[0]] = r.Clone()
	}
	return m
}

func (m *mixedMirror) apply(ops []bulkload.Op) {
	for _, op := range ops {
		switch op.Kind {
		case bulkload.OpInsert:
			switch op.Table {
			case "customer":
				m.customer[op.Row[0]] = op.Row.Clone()
			case "orders":
				m.orders[op.Row[0]] = op.Row.Clone()
			case "lineitem":
				m.lineitem[op.Row[0]] = op.Row.Clone()
			}
		case bulkload.OpDelete:
			delete(m.customer, op.Vals[0])
		case bulkload.OpUpdate:
			if r, ok := m.customer[op.Vals[0]]; ok {
				r[1] = op.SetVal
			}
		}
	}
}

// mixedQueryCount is the reader battery size: three per-table aggregates
// plus the customer-orders join count.
const mixedQueryCount = 4

// expected computes the oracle result rows for every reader query at the
// mirror's current logical state.
func (m *mixedMirror) expected() [][]value.Tuple {
	agg := func(rows map[int64]value.Tuple, col int) []value.Tuple {
		var cnt, sum int64
		for _, r := range rows {
			cnt++
			sum += r[col]
		}
		return []value.Tuple{{cnt, sum}}
	}
	var pairs int64
	for _, o := range m.orders {
		if _, ok := m.customer[o[1]]; ok {
			pairs++
		}
	}
	return [][]value.Tuple{
		agg(m.customer, 1),
		agg(m.orders, 1),
		agg(m.lineitem, 1),
		{{pairs}},
	}
}

// mixedQueries builds and rewrites the reader battery once per schedule;
// rewritten plans are safe for concurrent execution.
func mixedQueries(s *catalog.Schema, cfg *partition.Config) ([]*plan.Rewritten, error) {
	qs := []plan.Node{
		plan.Aggregate(plan.Scan("customer", "c"), nil,
			plan.Count("cnt"), plan.Sum(plan.Col("c.nation"), "s")),
		plan.Aggregate(plan.Scan("orders", "o"), nil,
			plan.Count("cnt"), plan.Sum(plan.Col("o.custkey"), "s")),
		plan.Aggregate(plan.Scan("lineitem", "l"), nil,
			plan.Count("cnt"), plan.Sum(plan.Col("l.orderkey"), "s")),
		plan.Aggregate(
			plan.Join(plan.Scan("customer", "c"), plan.Scan("orders", "o"),
				plan.Inner, []string{"c.custkey"}, []string{"o.custkey"}),
			nil, plan.Count("cnt")),
	}
	rws := make([]*plan.Rewritten, len(qs))
	for i, q := range qs {
		rw, err := plan.Rewrite(q, s, cfg, plan.Options{})
		if err != nil {
			return nil, err
		}
		rws[i] = rw
	}
	return rws, nil
}

// epochOracle maps each published epoch to the oracle rows of every
// reader query at that epoch. The writer registers an epoch BEFORE
// applying the batch that publishes it, so a reader can never pin an
// epoch the oracle does not know.
type epochOracle struct {
	mu sync.RWMutex
	m  map[int64][][]value.Tuple
}

func (o *epochOracle) put(epoch int64, exp [][]value.Tuple) {
	o.mu.Lock()
	o.m[epoch] = exp
	o.mu.Unlock()
}

func (o *epochOracle) get(epoch int64) ([][]value.Tuple, bool) {
	o.mu.RLock()
	exp, ok := o.m[epoch]
	o.mu.RUnlock()
	return exp, ok
}

// mixedParams configures one soak schedule.
type mixedParams struct {
	Seed       int64
	Parts      int
	Batches    int
	Readers    int
	CrashProb  float64 // write-batch crash probability
	RaceProb   float64 // partition-index invalidation race probability
	ReadFaults bool    // also inject read-side node crashes
}

// mixedOutcome is one schedule's tally.
type mixedOutcome struct {
	Batches     int
	Crashes     int
	Recoveries  int
	Replays     int64
	IndexRaces  int64
	Queries     int64
	OKQueries   int64
	TypedFails  int64
	WriteAmp    float64
	StoredRows  int64
	WriterWall  time.Duration
	OverallWall time.Duration
}

// runMixedSchedule executes one seeded crash schedule: a writer thread
// pushing Batches batches through a crash-injected loader (recovering
// every crash in-stream) while Readers goroutines race pinned-epoch
// queries against the same store, each result compared to the logical
// oracle at its epoch. It errors on any untyped failure, oracle
// mismatch, unknown epoch, failed recovery, or a store that does not
// verify after the stream drains.
func runMixedSchedule(mp mixedParams) (*mixedOutcome, error) {
	s := writeChainSchema()
	cfg := writeChainConfig(mp.Parts)
	db := writeChainDB(s)
	pdb, err := partition.Apply(db, cfg)
	if err != nil {
		return nil, err
	}
	rws, err := mixedQueries(s, cfg)
	if err != nil {
		return nil, err
	}
	mirror := newMixedMirror(db)
	oracle := &epochOracle{m: map[int64][][]value.Tuple{}}
	oracle.put(pdb.Epoch(), mirror.expected())

	l := bulkload.NewLoader(pdb, cfg)
	l.Faults = fault.NewInjector(fault.Policy{
		Seed: mp.Seed, WriteCrashProb: mp.CrashProb, WriteIndexRaceProb: mp.RaceProb,
	})
	cl := cluster.New(cluster.Options{Nodes: mp.Parts})
	defer cl.Close()

	var readPol *fault.Policy
	if mp.ReadFaults {
		readPol = &fault.Policy{Seed: mp.Seed + 7, CrashProb: 0.08, MaxAttempts: 4}
	}

	out := &mixedOutcome{Batches: mp.Batches}
	start := time.Now()
	var queries, okQ, typed int64
	var firstErr error
	var errMu sync.Mutex
	record := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < mp.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				q := (r + i) % len(rws)
				res, err := engine.ExecuteOpts(rws[q], pdb,
					engine.ExecOptions{Cluster: cl, Fault: readPol})
				atomic.AddInt64(&queries, 1)
				switch {
				case err == nil:
					exp, ok := oracle.get(res.Epoch)
					if !ok {
						record(fmt.Errorf("reader %d query %d: pinned epoch %d has no oracle", r, q, res.Epoch))
						return
					}
					if !reflect.DeepEqual(res.Rows, exp[q]) {
						record(fmt.Errorf("reader %d query %d at epoch %d: rows %v, oracle %v",
							r, q, res.Epoch, res.Rows, exp[q]))
						return
					}
					atomic.AddInt64(&okQ, 1)
				case typedSoakFailure(err):
					atomic.AddInt64(&typed, 1)
				default:
					record(fmt.Errorf("reader %d query %d: untyped failure: %w", r, q, err))
					return
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(r)
	}

	writerStart := time.Now()
	for b := 0; b < mp.Batches; b++ {
		// Yield between batches so reader goroutines genuinely interleave
		// with the write stream instead of racing only its tail.
		runtime.Gosched()
		ops := writeMixedOps(b)
		mirror.apply(ops)
		next := pdb.Epoch() + 1
		oracle.put(next, mirror.expected())
		_, err := l.Apply(ops...)
		switch {
		case err == nil:
		case errors.Is(err, fault.ErrWriteCrashed):
			out.Crashes++
			// The store is torn: further writes must be gated until the
			// intent log is recovered.
			if _, gerr := l.Apply(ops[:1]...); !errors.Is(gerr, bulkload.ErrNeedRecovery) {
				record(fmt.Errorf("batch %d: crashed loader accepted a write: %v", b, gerr))
			}
			if _, rerr := l.Recover(); rerr != nil {
				record(fmt.Errorf("batch %d: recovery failed: %w", b, rerr))
			}
			out.Recoveries++
		default:
			record(fmt.Errorf("batch %d: %w", b, err))
		}
		if firstErr != nil {
			break
		}
		if got := pdb.Epoch(); got != next {
			record(fmt.Errorf("batch %d: epoch %d after apply/recover, want %d", b, got, next))
			break
		}
	}
	out.WriterWall = time.Since(writerStart)
	close(stop)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Quiesced end-state: the store must verify, and a fault-free rerun
	// of every reader query must equal the oracle at the final epoch.
	if l.NeedsRecovery() {
		return nil, errors.New("loader still torn after the stream drained")
	}
	if err := check.VerifyStore(pdb, cfg); err != nil {
		return nil, fmt.Errorf("store failed write-invariant verification: %w", err)
	}
	final, ok := oracle.get(pdb.Epoch())
	if !ok {
		return nil, fmt.Errorf("final epoch %d has no oracle", pdb.Epoch())
	}
	for q, rw := range rws {
		res, err := engine.ExecuteOpts(rw, pdb, engine.ExecOptions{})
		if err != nil {
			return nil, fmt.Errorf("final query %d: %w", q, err)
		}
		if !reflect.DeepEqual(res.Rows, final[q]) {
			return nil, fmt.Errorf("final query %d: rows %v, oracle %v", q, res.Rows, final[q])
		}
	}
	cl.WaitRebuilds()

	out.Queries, out.OKQueries, out.TypedFails = queries, okQ, typed
	out.Replays = l.Metrics.Replays
	out.IndexRaces = l.Metrics.IndexRaces
	out.WriteAmp = l.Metrics.Amplification()
	out.StoredRows = l.Metrics.StoredCopies
	out.OverallWall = time.Since(start)
	return out, nil
}

// mixedRegimes is the crash-probability sweep of the "mixed" experiment.
var mixedRegimes = []struct {
	name       string
	crash      float64
	race       float64
	readFaults bool
}{
	{"crash=0.00", 0, 0, false},
	{"crash=0.25", 0.25, 0.10, false},
	{"crash=0.50", 0.50, 0.30, true},
}

const mixedSchedulesPerRegime = 3

// MixedWorkload is the crash-consistency experiment: seeded mixed
// OLTP/OLAP schedules per crash regime, reporting how the write path
// absorbed them — batches committed, crashes recovered, intent replays,
// reader outcomes, write amplification, and throughput. Params.MixedReaders
// sweeps the read/write ratio: one row per regime × reader count (the
// write stream is a single fixed writer, so the reader count is the
// ratio; q_per_s vs batch_per_s shows how reader pressure and epoch
// pinning trade off).
func MixedWorkload(p Params) (*Report, error) {
	r := &Report{ID: "mixed",
		Title: "Mixed OLTP/OLAP soak: crash-injected writes vs pinned-epoch readers",
		Columns: []string{"batches", "crashes", "replays", "index_races",
			"queries", "q_ok", "q_typed", "write_amp", "batch_per_s", "q_per_s"}}
	parts := p.Parts
	if parts < 2 {
		parts = 4
	}
	readerSweep := p.MixedReaders
	if len(readerSweep) == 0 {
		readerSweep = []int{4}
	}
	for _, reg := range mixedRegimes {
		for _, readers := range readerSweep {
			var batches, crashes int
			var replays, races, queries, okQ, typed int64
			var amp float64
			var writerWall, overallWall time.Duration
			for sch := 0; sch < mixedSchedulesPerRegime; sch++ {
				out, err := runMixedSchedule(mixedParams{
					Seed: p.Seed + int64(sch), Parts: parts, Batches: 60, Readers: readers,
					CrashProb: reg.crash, RaceProb: reg.race, ReadFaults: reg.readFaults,
				})
				if err != nil {
					return nil, fmt.Errorf("mixed %s rw=%d schedule %d: %w", reg.name, readers, sch, err)
				}
				batches += out.Batches
				crashes += out.Crashes
				replays += out.Replays
				races += out.IndexRaces
				queries += out.Queries
				okQ += out.OKQueries
				typed += out.TypedFails
				amp += out.WriteAmp
				writerWall += out.WriterWall
				overallWall += out.OverallWall
			}
			bps, qps := 0.0, 0.0
			if writerWall > 0 {
				bps = float64(batches) / writerWall.Seconds()
			}
			if overallWall > 0 {
				qps = float64(queries) / overallWall.Seconds()
			}
			label := reg.name
			if len(readerSweep) > 1 {
				label = fmt.Sprintf("%s rw=%d", reg.name, readers)
			}
			r.Add(label, float64(batches), float64(crashes), float64(replays),
				float64(races), float64(queries), float64(okQ), float64(typed),
				amp/float64(mixedSchedulesPerRegime), bps, qps)
		}
	}
	r.Notes = append(r.Notes,
		"every reader result is oracle-equal at its pinned epoch (or a typed failure): crashes shift WHICH epoch a query reads, never WHAT an epoch contains",
		"write_amp is stored copies per logical insert: the PREF duplication cost metered on the write path",
		"after every schedule the store passes the full write-invariant check (check.VerifyStore)")
	if len(readerSweep) > 1 {
		r.Notes = append(r.Notes,
			"rw=N sweeps concurrent readers against the single writer (-rw flag): the read/write ratio of the soak")
	}
	return r, nil
}
