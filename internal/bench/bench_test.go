package bench

import (
	"strings"
	"testing"

	"pref/internal/tpch"
)

func smallParams() Params {
	p := DefaultParams()
	p.SF = 0.002
	p.DSSF = 0.3
	p.Parts = 4
	return p
}

func TestTable1Shape(t *testing.T) {
	r, err := Table1(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	// Replication-based CP has full locality; so do SD and WD.
	for _, v := range []string{"CP", "SD", "WD"} {
		dl, ok := r.Value(v, "DL")
		if !ok || dl < 0.99 {
			t.Errorf("%s DL = %v, want 1.0", v, dl)
		}
	}
	// SD-noRed trades locality for zero redundancy.
	dl, _ := r.Value("SD-noRed", "DL")
	if dl >= 0.999 {
		t.Errorf("SD-noRed DL = %v, want < 1", dl)
	}
	drNoRed, _ := r.Value("SD-noRed", "DR")
	drSD, _ := r.Value("SD", "DR")
	drCP, _ := r.Value("CP", "DR")
	if drNoRed > drSD {
		t.Errorf("DR(SD-noRed)=%v should be ≤ DR(SD)=%v", drNoRed, drSD)
	}
	if drSD > drCP {
		t.Errorf("DR(SD)=%v should be ≤ DR(CP)=%v (paper: 0.5 vs 1.21)", drSD, drCP)
	}
	if drNoRed > 0.01 {
		t.Errorf("DR(SD-noRed)=%v, want ≈ 0", drNoRed)
	}
}

func TestFig7Shape(t *testing.T) {
	// The headline comparison needs the realistic regime: 10 nodes and
	// enough data that per-node volume (which replication inflates)
	// matters; see the cost-model notes in EXPERIMENTS.md.
	p := DefaultParams()
	p.SF = 0.005
	r, err := Fig7(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	simOf := func(v string) float64 {
		x, ok := r.Value(v, "sim_ms")
		if !ok {
			t.Fatalf("missing %s", v)
		}
		return x
	}
	// The paper's headline: the PREF-based designs beat classical
	// partitioning.
	if simOf("WD") >= simOf("CP") {
		t.Errorf("WD (%v ms) should beat CP (%v ms)", simOf("WD"), simOf("CP"))
	}
	if simOf("SD-paper") >= simOf("CP") {
		t.Errorf("SD-paper (%v ms) should beat CP (%v ms)", simOf("SD-paper"), simOf("CP"))
	}
	// Our size-optimal SD trades some execution time for less storage;
	// it must stay in CP's ballpark (the paper's own SD config wins
	// outright, asserted above).
	if simOf("SD") > 1.3*simOf("CP") {
		t.Errorf("SD (%v ms) should be within 1.3x of CP (%v ms)", simOf("SD"), simOf("CP"))
	}
}

func TestFig8CoversAllQueries(t *testing.T) {
	r, err := Fig8(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(tpch.QueryNames) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(tpch.QueryNames))
	}
	for _, row := range r.Rows {
		if len(row.Values) != 5 {
			t.Fatalf("%s has %d values", row.Label, len(row.Values))
		}
	}
}

func TestFig9OptimizationsWin(t *testing.T) {
	r, err := Fig9(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"distinct", "semi_join", "anti_join"} {
		speedup, ok := r.Value(c, "speedup")
		if !ok {
			t.Fatalf("missing case %s", c)
		}
		if speedup <= 1 {
			t.Errorf("%s: optimization speedup = %v, want > 1", c, speedup)
		}
	}
}

func TestFig10LoadsEveryVariant(t *testing.T) {
	r, err := Fig10(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range execVariants {
		rows, ok := r.Value(v, "stored_rows")
		if !ok || rows <= 0 {
			t.Errorf("%s stored %v rows", v, rows)
		}
	}
	// PREF-based variants use the partition index.
	if l, _ := r.Value("SD", "index_lookups"); l == 0 {
		t.Error("SD load should perform index lookups")
	}
	if l, _ := r.Value("CP", "index_lookups"); l != 0 {
		t.Error("CP load (hash+replication only) needs no lookups")
	}
}

func TestFig11aBaselines(t *testing.T) {
	p := smallParams()
	r, err := Fig11a(p)
	if err != nil {
		t.Fatal(err)
	}
	if dl, _ := r.Value("AllHashed", "DL"); dl != 0 {
		t.Errorf("AllHashed DL = %v, want 0", dl)
	}
	if dr, _ := r.Value("AllHashed", "DR"); dr != 0 {
		t.Errorf("AllHashed DR = %v, want 0", dr)
	}
	if dl, _ := r.Value("AllReplicated", "DL"); dl != 1 {
		t.Errorf("AllReplicated DL = %v, want 1", dl)
	}
	if dr, _ := r.Value("AllReplicated", "DR"); dr != float64(p.Parts-1) {
		t.Errorf("AllReplicated DR = %v, want n-1 = %d", dr, p.Parts-1)
	}
}

func TestFig11bShape(t *testing.T) {
	r, err := Fig11b(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 variants", len(r.Rows))
	}
	// CP-Stars must beat CP-Naive on redundancy (paper: 1.32 vs 4.15).
	naive, _ := r.Value("CP-Naive", "DR")
	stars, _ := r.Value("CP-Stars", "DR")
	if stars >= naive {
		t.Errorf("CP-Stars DR %v should be < CP-Naive %v", stars, naive)
	}
	// SD variants trade locality for much lower redundancy.
	sdn, _ := r.Value("SD-Naive", "DR")
	if sdn >= naive {
		t.Errorf("SD-Naive DR %v should be far below CP-Naive %v", sdn, naive)
	}
	sdnDL, _ := r.Value("SD-Naive", "DL")
	if sdnDL >= 0.999 {
		t.Errorf("SD-Naive DL %v should be < 1 on the snowflake schema", sdnDL)
	}
	// WD restores locality.
	wdDL, _ := r.Value("WD", "DL")
	if wdDL < 0.95 {
		t.Errorf("WD DL = %v, want ≈ 1", wdDL)
	}
}

func TestFig12Shapes(t *testing.T) {
	p := smallParams()
	r, err := Fig12a(p)
	if err != nil {
		t.Fatal(err)
	}
	// CP grows linearly with n (slope = replicated fraction of the
	// database); SD grows sub-linearly and stays far below.
	cpAt := func(label string) float64 { v, _ := r.Value(label, "CP"); return v }
	sdAt := func(label string) float64 { v, _ := r.Value(label, "SD"); return v }
	if cpAt("n=100") < 5*cpAt("n=10") {
		t.Errorf("CP DR growth n=10→100 is %v→%v, want ~linear (×10)", cpAt("n=10"), cpAt("n=100"))
	}
	if sdAt("n=100") > cpAt("n=100")/3 {
		t.Errorf("SD DR at n=100 = %v vs CP %v: should be far below", sdAt("n=100"), cpAt("n=100"))
	}
	if sdAt("n=100") > 3*sdAt("n=10")+1 {
		t.Errorf("SD DR growth n=10→100 is %v→%v, want sub-linear", sdAt("n=10"), sdAt("n=100"))
	}
	if cpAt("n=1") != 0 {
		t.Errorf("single node must have zero redundancy, CP = %v", cpAt("n=1"))
	}
}

func TestFig13SamplingAccuracy(t *testing.T) {
	p := smallParams()
	r, err := Fig13(p)
	if err != nil {
		t.Fatal(err)
	}
	// At full sampling the only error left is the uniform-placement
	// model; on uniform TPC-H it is small. (At the tiny test scale,
	// sampled rates are noisy — the full-scale trend is recorded in
	// EXPERIMENTS.md from the real bench run.)
	full, _ := r.Value("100%", "tpch_err")
	if full > 0.15 {
		t.Errorf("TPC-H estimate error at 100%% sampling = %v, want small", full)
	}
	for _, row := range r.Rows {
		for i, v := range row.Values {
			if v < 0 {
				t.Errorf("row %s col %d negative: %v", row.Label, i, v)
			}
		}
	}
	if _, ok := r.Value("10%", "tpch_err"); !ok {
		t.Fatal("missing 10% row")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	r.Add("row1", 1, 2.5)
	r.Notes = append(r.Notes, "hello")
	s := r.String()
	for _, want := range []string{"demo", "row1", "2.5", "hello"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
	if _, ok := r.Value("row1", "nope"); ok {
		t.Error("unknown column must not resolve")
	}
	if v, ok := r.Value("row1", "b"); !ok || v != 2.5 {
		t.Errorf("Value = %v %v", v, ok)
	}
}

func TestWDVariantRoutesQueries(t *testing.T) {
	p := smallParams()
	th := tpch.Generate(p.SF, p.Seed)
	vs, err := TPCHVariants(th, p.Parts)
	if err != nil {
		t.Fatal(err)
	}
	wd := vs["WD"]
	if len(wd.Groups) < 1 {
		t.Fatal("WD must have groups")
	}
	// Routed groups must contain the query's tables.
	m, err := Materialize(wd, th.DB)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range tpch.QueryNames {
		gi := wd.RouteFor(q)
		if gi < 0 || gi >= len(m.PDBs) {
			t.Fatalf("%s routed to %d", q, gi)
		}
	}
}
