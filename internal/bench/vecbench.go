package bench

import (
	"fmt"
	"runtime"
	"time"

	"pref/internal/engine"
	"pref/internal/plan"
	"pref/internal/tpch"
)

// VecThroughput benchmarks the vectorized columnar engine against the
// row-at-a-time reference engine on the execution shapes the tentpole
// targets, at 10× the session's default TPC-H scale (p.SF × 10):
//
//   - storage_scan: a selective filter over the LINEITEM storage scan —
//     the shape where the columnar path reads the partition's cached
//     column vectors zero-copy and runs a specialized column-vs-literal
//     loop instead of a per-row predicate closure.
//   - scan_agg_q1: full TPC-H Q1 (scan + ~98%-selective filter + wide
//     aggregate). The aggregate is row-based on both engines, so this
//     bounds the end-to-end win when the row shim materializes nearly
//     every scanned row.
//   - pref_chain_join: CUSTOMER ⋈ ORDERS ⋈ LINEITEM down the PREF chain
//     of the paper's SD configuration — all joins partition-local, so
//     the measured work is pure hash-join CPU: no-alloc key probes and
//     pooled batch emit against per-row key strings and per-row allocs.
//
// Both engines execute identical plans over identical data and must
// return identical Stats (the experiment fails otherwise — it doubles as
// a coarse differential check). Throughput is Stats.RowsProcessed over
// the best wall time of three runs, so the speedup column is a pure
// wall-clock ratio on equal work.
func VecThroughput(p Params) (*Report, error) {
	sp := p
	sp.SF = p.SF * 10
	t := tpch.Generate(sp.SF, sp.Seed)
	sd := singleGroup("SD-paper", PaperSDConfig(sp.Parts))
	m, err := Materialize(sd, t.DB)
	if err != nil {
		return nil, err
	}
	eopt := sp.execOptions(t.DB.TotalRows())

	scan := func() plan.Node {
		// SELECT orderkey, quantity, extendedprice WHERE quantity <= 2:
		// a selective scan feeding the columns a consumer would read.
		// (SELECT * would measure the Result-boundary row shim gathering
		// every stored column, not the scan path.)
		f := plan.Filter(plan.Scan("lineitem", "l"),
			plan.Le(plan.Col("l.quantity"), plan.Lit(2)))
		return plan.ProjectCols(f, "l.orderkey", "l.quantity", "l.extendedprice")
	}
	q1 := func() plan.Node { return t.Query("Q1") }
	chain := func() plan.Node {
		co := plan.Join(plan.Scan("customer", "c"), plan.Scan("orders", "o"),
			plan.Inner, []string{"c.custkey"}, []string{"o.custkey"})
		j := plan.Join(co, plan.Scan("lineitem", "l"),
			plan.Inner, []string{"o.orderkey"}, []string{"l.orderkey"})
		// Narrow the result like a real chain query would: the join CPU
		// (build, probe, emit) dominates the wall instead of the shim
		// materializing 30+ columns per matched row on both engines.
		return plan.ProjectCols(j, "c.custkey", "o.orderdate", "l.extendedprice")
	}
	cases := []struct {
		name string
		mk   func() plan.Node
	}{{"storage_scan", scan}, {"scan_agg_q1", q1}, {"pref_chain_join", chain}}

	const iters = 5
	one := func(mk func() plan.Node, rowEngine bool) (time.Duration, engine.Stats, error) {
		// Level the heap, then run once untimed: the GC purges the batch
		// arena (sync.Pool), so the warmup restores each engine's steady
		// state — warm pool, warm column caches — before the clock starts.
		runtime.GC()
		e := eopt
		e.RowEngine = rowEngine
		if _, err := execOn(mk(), t, sd, m, plan.Options{}, sp.Cost, e); err != nil {
			return 0, engine.Stats{}, err
		}
		run, err := execOn(mk(), t, sd, m, plan.Options{}, sp.Cost, e)
		if err != nil {
			return 0, engine.Stats{}, err
		}
		return run.Wall, run.Stats, nil
	}

	r := &Report{ID: "vec", Title: "Vectorized vs row engine throughput (SD-paper, 10x scale)",
		Columns: []string{"row_krows_s", "vec_krows_s", "speedup"}}
	for _, c := range cases {
		// Interleave the engines round by round and keep each one's best
		// wall, so machine-load drift lands on both sides of the ratio.
		var rowWall, vecWall time.Duration
		var rowStats, vecStats engine.Stats
		for i := 0; i < iters; i++ {
			rw, rs, err := one(c.mk, true)
			if err != nil {
				return nil, fmt.Errorf("%s (row engine): %w", c.name, err)
			}
			vw, vs, err := one(c.mk, false)
			if err != nil {
				return nil, fmt.Errorf("%s (vectorized): %w", c.name, err)
			}
			if i == 0 || rw < rowWall {
				rowWall = rw
			}
			if i == 0 || vw < vecWall {
				vecWall = vw
			}
			rowStats, vecStats = rs, vs
		}
		if rowStats != vecStats {
			return nil, fmt.Errorf("%s: engines diverge on Stats:\nrow %+v\nvec %+v",
				c.name, rowStats, vecStats)
		}
		rows := float64(rowStats.RowsProcessed)
		rowTput := rows / rowWall.Seconds() / 1000
		vecTput := rows / vecWall.Seconds() / 1000
		r.Add(c.name, rowTput, vecTput, float64(rowWall)/float64(vecWall))
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("TPC-H SF %g (10x the default run), %d partitions; best of %d runs per engine", sp.SF, sp.Parts, iters),
		"throughput = Stats.RowsProcessed / wall; Stats are engine-identical so speedup is the wall-clock ratio on equal work")
	return r, nil
}
