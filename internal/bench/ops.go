package bench

import (
	"fmt"
	"strings"

	"pref/internal/design"
	"pref/internal/engine"
	"pref/internal/plan"
	"pref/internal/tpch"
	"pref/internal/trace"
)

// OpBreakdown executes one TPC-H query (Params.Query, default Q3) on each
// execution variant with tracing enabled and reports the per-operator
// breakdown: consumed/produced rows, shipped rows and KiB, PREF dedup
// hits, and charged work per span. It is the observability counterpart of
// Fig8's per-query totals — the rows make visible *which* operator of a
// variant put tuples on the wire (on a PREF chain the joins read 0
// shipped; on AllHashed the repartitions dominate).
func OpBreakdown(p Params) (*Report, error) {
	query := p.Query
	if query == "" {
		query = "Q3"
	}
	t := tpch.Generate(p.SF, p.Seed)
	vs, err := TPCHVariants(t, p.Parts)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "ops", Title: fmt.Sprintf("per-operator breakdown of %s", query),
		Columns: []string{"in", "out", "shipKRows", "shipKiB", "dedup", "workKRows"}}
	variants := append([]string{"AllHashed", "AllReplicated"}, execVariants...)
	for _, name := range variants {
		v, ok := vs[name]
		if !ok {
			continue
		}
		m, err := Materialize(v, t.DB)
		if err != nil {
			return nil, err
		}
		gi := v.RouteFor(query)
		opt := plan.Options{Sizes: design.SizesOf(t.DB)}
		rw, err := plan.Rewrite(t.Query(query), t.DB.Schema, v.Groups[gi].Config, opt)
		if err != nil {
			return nil, err
		}
		eopt := p.execOptions(t.DB.TotalRows())
		eopt.Trace = true
		res, err := engine.ExecuteOpts(rw, m.PDBs[gi], eopt)
		if err != nil {
			return nil, err
		}
		res.Trace.Walk(func(ot *trace.OpTrace) {
			mt := &ot.Totals
			r.Add(fmt.Sprintf("%s/%d:%s", name, ot.ID, shortLabel(ot.Label)),
				float64(mt.RowsIn), float64(mt.RowsOut),
				float64(mt.RowsShipped)/1e3, float64(mt.BytesShipped)/1024,
				float64(mt.DedupHits), float64(mt.Work)/1e3)
		})
	}
	r.Notes = append(r.Notes,
		"spans are listed root-first per variant; shipped=0 on every join/scan span is the paper's locality claim in action")
	return r, nil
}

// shortLabel compresses an operator String() to keep report labels
// readable in aligned-table output.
func shortLabel(s string) string {
	if i := strings.IndexByte(s, '('); i > 0 {
		return s[:i]
	}
	return s
}
