package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pref/internal/cluster"
	"pref/internal/engine"
	"pref/internal/fault"
	"pref/internal/plan"
	"pref/internal/serve"
	"pref/internal/tpch"
)

// serveQueries is the prepared-query mix of the serving experiment: the
// same light/medium/heavy TPC-H trio the hedge sweep uses.
var serveQueries = []string{"Q1", "Q3", "Q6"}

// serveRegime is one health state of the serving sweep: a name and the
// fault schedule drawn for each execution attempt.
type serveRegime struct {
	name  string
	fault func(seed, seq int64, attempt int) *fault.Policy
}

// serveRegimes sweeps healthy → degraded → fault storm. The storm layers
// crashes, stragglers, shipment failures, and a terminally flaky node on
// top of each other; the serving layer's job is to keep cheap queries
// flowing and fail the rest with typed errors, not to survive unscathed.
var serveRegimes = []serveRegime{
	{name: "healthy", fault: nil},
	{name: "degraded", fault: func(seed, seq int64, attempt int) *fault.Policy {
		return &fault.Policy{
			Seed:      seed + seq*31 + int64(attempt)*7,
			CrashProb: 0.10, StragglerProb: 0.05, StragglerDelay: 2 * time.Millisecond,
		}
	}},
	{name: "storm", fault: func(seed, seq int64, attempt int) *fault.Policy {
		// Node 1 crashes the first two attempts of every unit: inside the
		// engine's attempt budget, so queries survive — slowly, burning
		// retries — while crashes, stragglers and shipment failures rage
		// everywhere else. (A terminally flaky node would simply fail every
		// query typed: hash-partitioned lineitem has no redundancy to
		// rebuild from, which is its own tested property, not this one.)
		return &fault.Policy{
			Seed:      seed + seq*31 + int64(attempt)*7,
			CrashProb: 0.30, StragglerProb: 0.25, StragglerDelay: 5 * time.Millisecond,
			ShipFailProb: 0.15,
			FlakyNodes:   map[int]int{1: 2},
		}
	}},
}

// serveLoadParams configures one regime run of the serving benchmark.
type serveLoadParams struct {
	Seed     int64
	Workers  int
	Queries  int           // per worker
	Pace     time.Duration // per-worker think time between submissions
	Deadline []time.Duration
	Regime   serveRegime
}

// serveLoadOut aggregates one regime run.
type serveLoadOut struct {
	Elapsed  time.Duration
	Metrics  serve.Metrics
	Rejected int64 // all ladder stages summed
	Untyped  int64 // failures matching no typed class (must stay 0)
}

// newServeServer builds a serving stack over the SD-paper TPC-H design.
func newServeServer(p Params, t *tpch.TPCH, m *Materialized, v *Variant, regime serveRegime) (*serve.Server, error) {
	queries := make(map[string]func() plan.Node, len(serveQueries))
	for _, q := range serveQueries {
		q := q
		queries[q] = func() plan.Node { return t.Query(q) }
	}
	opt := serve.Options{
		PDB:    m.PDBs[0],
		Config: v.Groups[0].Config,
		Queries: queries,
		Tenants: []serve.TenantConfig{
			{Name: "gold", Weight: 4},
			{Name: "silver", Weight: 2},
			{Name: "bronze", Weight: 1, Rate: 200, Burst: 20},
		},
		MaxConcurrent: 6,
		QueueTimeout:  150 * time.Millisecond,
		ShedThreshold: 1.5,
		MaxAttempts:   3,
		Cluster:       cluster.Options{Nodes: p.Parts, TripAfter: 3, CoolDownQueries: 1},
		// No buffer-pool penalty here: the sweep measures serving-layer
		// latency quantiles, not the cache-collapse story of Figure 7.
	}
	if regime.fault != nil {
		seed := p.Seed
		opt.FaultFor = func(seq int64, attempt int) *fault.Policy {
			return regime.fault(seed, seq, attempt)
		}
	}
	return serve.NewServer(opt)
}

// typedServeFailure reports whether a failed submission carries one of
// the serving layer's typed error classes. Anything else is a taxonomy
// hole.
func typedServeFailure(err error) bool {
	var rej *serve.RejectedError
	return errors.As(err, &rej) ||
		errors.Is(err, engine.ErrDeadlineExceeded) ||
		errors.Is(err, engine.ErrAllNodesDown) ||
		errors.Is(err, serve.ErrServerClosed) ||
		errors.Is(err, cluster.ErrAdmissionTimeout) ||
		errors.Is(err, cluster.ErrNodeTripped) ||
		errors.Is(err, fault.ErrNodeFailed) ||
		errors.Is(err, fault.ErrShipmentFailed) ||
		errors.Is(err, fault.ErrPartitionLost) ||
		errors.Is(err, context.Canceled)
}

// runServeLoad drives one regime: Workers concurrent clients, each
// submitting Queries paced submissions under a rotating tenant, query,
// and deadline mix, against a fresh serving stack.
func runServeLoad(s *serve.Server, lp serveLoadParams) (*serveLoadOut, error) {
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		untyped []error
	)
	tenants := []string{"gold", "silver", "bronze"}
	start := time.Now()
	for w := 0; w < lp.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(lp.Seed + int64(w)))
			tenant := tenants[w%len(tenants)]
			for i := 0; i < lp.Queries; i++ {
				query := serveQueries[rng.Intn(len(serveQueries))]
				ctx := context.Background()
				cancel := func() {}
				if d := lp.Deadline[rng.Intn(len(lp.Deadline))]; d > 0 {
					ctx, cancel = context.WithTimeout(ctx, d)
				}
				_, err := s.Submit(ctx, tenant, query)
				cancel()
				if err != nil && !typedServeFailure(err) {
					mu.Lock()
					untyped = append(untyped, err)
					mu.Unlock()
				}
				if lp.Pace > 0 {
					time.Sleep(lp.Pace + time.Duration(rng.Int63n(int64(lp.Pace))))
				}
			}
		}(w)
	}
	wg.Wait()
	out := &serveLoadOut{Elapsed: time.Since(start), Metrics: s.Metrics()}
	for _, n := range out.Metrics.Rejected {
		out.Rejected += n
	}
	out.Untyped = int64(len(untyped))
	if len(untyped) > 0 {
		return out, fmt.Errorf("bench: %d untyped serving failures, first: %w", len(untyped), untyped[0])
	}
	return out, nil
}

// ServeLoad regenerates the serving-layer SLO sweep: a mixed TPC-H load
// at a paced rate against one serving stack per health regime, reporting
// success-latency quantiles and the typed-outcome mix. The headline
// property is graceful degradation: under the fault storm, typed
// rejections and deadline kills rise while the p99 of queries that DO
// succeed stays bounded — overload never turns into unbounded latency or
// silent drops.
func ServeLoad(p Params) (*Report, error) {
	t := tpch.Generate(p.SF, p.Seed)
	// AllReplicated, as in the resilience soak: full redundancy keeps a
	// tripped node recoverable, so the sweep measures the serving layer's
	// overload and deadline behavior, not unrecoverable data loss (that
	// is the SD partition-lost property, tested elsewhere).
	vs, err := TPCHVariants(t, p.Parts)
	if err != nil {
		return nil, err
	}
	v := vs["AllReplicated"]
	r := &Report{
		ID:    "serve",
		Title: "Multi-tenant serving: latency quantiles per health regime",
		Columns: []string{
			"qps", "ok", "rejected", "deadline", "failed",
			"p50_ms", "p99_ms", "p999_ms", "retries", "cache_hit",
		},
	}
	for _, regime := range serveRegimes {
		// A fresh materialization and server per regime: breaker state,
		// budgets and caches must not leak across regimes.
		m, err := Materialize(v, t.DB)
		if err != nil {
			return nil, err
		}
		s, err := newServeServer(p, t, m, v, regime)
		if err != nil {
			return nil, err
		}
		// Six clients over six slots: the healthy regime runs at capacity
		// without queueing collapse, so most queries beat their deadlines;
		// the storm inflates service times past the tighter deadlines
		// instead. Every submission carries a deadline — which is what
		// bounds the p99 of successes even under the storm: the SLO
		// contract, made structural.
		lp := serveLoadParams{
			Seed: p.Seed, Workers: 6, Queries: 25,
			Pace:     time.Millisecond,
			Deadline: []time.Duration{1500 * time.Millisecond, 800 * time.Millisecond, 400 * time.Millisecond, 150 * time.Millisecond},
			Regime:   regime,
		}
		out, err := runServeLoad(s, lp)
		if cerr := s.Close(context.Background()); cerr != nil {
			return nil, cerr
		}
		if err != nil {
			return nil, fmt.Errorf("regime %s: %w", regime.name, err)
		}
		met := out.Metrics
		qps := float64(met.Submitted) / out.Elapsed.Seconds()
		hitRate := 0.0
		if met.PlanCacheHits+met.PlanCacheMisses > 0 {
			hitRate = float64(met.PlanCacheHits) / float64(met.PlanCacheHits+met.PlanCacheMisses)
		}
		r.Add(regime.name,
			qps,
			float64(met.Completed),
			float64(out.Rejected),
			float64(met.DeadlineExceeded),
			float64(met.Failed),
			float64(met.Latency.P50.Microseconds())/1000,
			float64(met.Latency.P99.Microseconds())/1000,
			float64(met.Latency.P999.Microseconds())/1000,
			float64(met.Retries),
			hitRate,
		)
	}
	r.Notes = append(r.Notes,
		"graceful degradation: storm rejections+deadline kills rise vs healthy; success p99 stays bounded by the deadline mix",
		"every failure is typed (quota/shed/queue/closed/deadline/fault); untyped failures abort the run",
	)
	return r, nil
}
