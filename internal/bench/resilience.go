package bench

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pref/internal/cluster"
	"pref/internal/engine"
	"pref/internal/fault"
	"pref/internal/plan"
	"pref/internal/tpch"
)

// Cluster-resilience experiments: the hedging tail-latency sweep (on the
// paper's SD design, whose PREF duplicates are the redundancy degraded
// routing consumes) and the multi-schedule health-layer soak (on
// AllReplicated, whose full redundancy lets every lost node rebuild).

// hedgeQueries is a small scan/join mix whose per-partition units are the
// straggler victims.
var hedgeQueries = []string{"Q1", "Q3", "Q6"}

// hedgeProbs is the straggler-probability sweep.
var hedgeProbs = []float64{0.05, 0.10, 0.20}

// hedgeStragglerDelay is the injected straggler sleep. Real wall time (not
// simulated cost): hedging is a latency-hiding mechanism, so the effect
// only shows on the clock.
const hedgeStragglerDelay = 5 * time.Millisecond

// HedgeSweep measures straggler tail latency with hedging off vs on. Off,
// every straggling unit serializes its full sleep into the query's wall
// time; on, the cluster launches a speculative duplicate on a buddy node
// after the quantile-priced delay and the first result wins. The wasted
// duplicate work is the price, metered per row.
func HedgeSweep(p Params) (*Report, error) {
	t := tpch.Generate(p.SF, p.Seed)
	vs, err := TPCHVariants(t, p.Parts)
	if err != nil {
		return nil, err
	}
	m, err := Materialize(vs["SD"], t.DB)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "hedge", Title: "Straggler tail latency: hedging off vs on (SD, wall clock)",
		Columns: []string{"off_ms", "on_ms", "hedges", "wins", "wasted_rows"}}
	base := p.execOptions(t.DB.TotalRows())
	for _, prob := range hedgeProbs {
		pol := &fault.Policy{
			Seed:           p.Seed,
			StragglerProb:  prob,
			StragglerDelay: hedgeStragglerDelay,
		}
		var offWall, onWall time.Duration
		var hedges, wins int
		var wasted int64
		for _, on := range []bool{false, true} {
			copt := cluster.Options{Nodes: p.Parts}
			if on {
				copt.Hedge = cluster.HedgePolicy{
					Enabled:  true,
					MinDelay: 100 * time.Microsecond,
					MaxDelay: 500 * time.Microsecond,
				}
			}
			cl := cluster.New(copt)
			for _, q := range hedgeQueries {
				eopt := base
				eopt.Fault = pol
				eopt.Cluster = cl
				run, err := runQuery(t, vs["SD"], m, q, plan.Options{}, p.Cost, eopt)
				if err != nil {
					cl.Close()
					return nil, fmt.Errorf("hedge sweep p=%.2f: %w", prob, err)
				}
				if on {
					onWall += run.Wall
					hedges += run.Stats.Hedges
					wins += run.Stats.HedgeWins
					wasted += run.Stats.HedgeWastedRows
				} else {
					offWall += run.Wall
				}
			}
			cl.Close()
		}
		r.Add(fmt.Sprintf("p=%.2f", prob),
			float64(offWall.Microseconds())/1000, float64(onWall.Microseconds())/1000,
			float64(hedges), float64(wins), float64(wasted))
	}
	r.Notes = append(r.Notes,
		"off_ms/on_ms are wall clock: hedging hides straggler sleeps behind speculative duplicates",
		"wasted_rows is the discarded output of hedge-race losers (the redundancy cost of the tail cut)")
	return r, nil
}

// soakScenarios are the fault regimes the health-layer soak cycles
// through, each exercising a different leg of the node state machine.
var soakScenarios = []struct {
	name string
	pol  func(seed int64, parts int) *fault.Policy
}{
	{"crash-storm", func(seed int64, _ int) *fault.Policy {
		return &fault.Policy{Seed: seed, CrashProb: 0.10, ShipFailProb: 0.05, MaxAttempts: 8}
	}},
	{"flaky-node", func(seed int64, parts int) *fault.Policy {
		return &fault.Policy{Seed: seed, FlakyNodes: map[int]int{int(seed) % parts: 99}}
	}},
	{"down-node", func(seed int64, parts int) *fault.Policy {
		return &fault.Policy{Seed: seed, DownNodes: []int{int(seed) % parts}}
	}},
	{"down+repair", func(seed int64, parts int) *fault.Policy {
		n := int(seed) % parts
		return &fault.Policy{Seed: seed, DownNodes: []int{n}, RepairAfterProbes: map[int]int{n: 1}}
	}},
}

// soakSchedulesPerScenario is how many seed-distinct schedules each
// scenario runs; each schedule executes the hedgeQueries battery against
// one shared cluster so health knowledge carries across queries.
const soakSchedulesPerScenario = 5

// typedSoakFailure reports whether a query failure is one of the typed,
// contractual outcomes under faults. Anything else fails the experiment.
func typedSoakFailure(err error) bool {
	var ple *fault.PartitionLostError
	return errors.Is(err, fault.ErrNodeFailed) ||
		errors.Is(err, fault.ErrShipmentFailed) ||
		errors.Is(err, fault.ErrPartitionLost) ||
		errors.As(err, &ple) ||
		errors.Is(err, cluster.ErrNodeTripped) ||
		errors.Is(err, cluster.ErrAdmissionTimeout) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, engine.ErrAllNodesDown)
}

// ResilienceSoak runs seed-swept fault schedules per scenario, each a
// query sequence against one shared cluster health layer, and reports how
// the layer absorbed them: queries that completed, typed failures, breaker
// trips, half-open probes, and background rebuilds. It runs AllReplicated
// — full redundancy — so a lost node is always recoverable and the soak
// exercises the whole FSM loop, not just the typed-failure exits; designs
// with partial redundancy (SD) turn the unrecoverable fraction into typed
// partition-lost failures instead.
func ResilienceSoak(p Params) (*Report, error) {
	t := tpch.Generate(p.SF, p.Seed)
	vs, err := TPCHVariants(t, p.Parts)
	if err != nil {
		return nil, err
	}
	m, err := Materialize(vs["AllReplicated"], t.DB)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "soak", Title: "Cluster health-layer soak: fault schedules vs absorbed outcomes (AllReplicated)",
		Columns: []string{"queries", "ok", "typed_fail", "trips", "probes", "rebuilds", "rebuilt_rows"}}
	base := p.execOptions(t.DB.TotalRows())
	for _, sc := range soakScenarios {
		var queries, ok, typed int
		var trips, probes, rebuilds, rebuiltRows int64
		for s := 0; s < soakSchedulesPerScenario; s++ {
			seed := p.Seed + int64(s)
			cl := cluster.New(cluster.Options{
				Nodes: p.Parts, TripAfter: 3, CoolDownQueries: 1,
			})
			pol := sc.pol(seed, p.Parts)
			for _, q := range hedgeQueries {
				eopt := base
				eopt.Fault = pol
				eopt.Cluster = cl
				queries++
				_, err := runQuery(t, vs["AllReplicated"], m, q, plan.Options{}, p.Cost, eopt)
				switch {
				case err == nil:
					ok++
				case typedSoakFailure(err):
					typed++
				default:
					cl.Close()
					return nil, fmt.Errorf("soak %s seed %d: untyped failure: %w", sc.name, seed, err)
				}
			}
			cl.WaitRebuilds()
			st := cl.Stats()
			trips += st.Trips
			probes += st.Probes
			rebuilds += st.Rebuilds
			rebuiltRows += st.RebuiltRows
			cl.Close()
		}
		r.Add(sc.name, float64(queries), float64(ok), float64(typed),
			float64(trips), float64(probes), float64(rebuilds), float64(rebuiltRows))
	}
	r.Notes = append(r.Notes,
		"every failure is typed (node-failed, shipment-failed, partition-lost, tripped): never silent partial results",
		"down+repair exercises the full FSM loop: trip, cool-down, probe, background rebuild, healthy")
	return r, nil
}
