package bench

import (
	"testing"

	"pref/internal/testutil"
)

// TestWriteChaosSoak is the crash-during-write satellite: at least 100
// seeded crash schedules, each racing a crash-injected write stream
// against 4 concurrent readers. Every reader result must be oracle-equal
// at its pinned epoch (or a typed failure), every crash must recover to
// a store that passes the full write-invariant check, and no goroutines
// may leak.
func TestWriteChaosSoak(t *testing.T) {
	schedules := 100
	if testing.Short() {
		schedules = 12
	}
	verifyLeaks := testutil.CheckGoroutineLeaks(t)
	var crashes, recoveries, queries int
	var replays int64
	for sch := 0; sch < schedules; sch++ {
		// Sweep the crash regime with the seed so schedules cover
		// crash-free, moderate, and crash-heavy streams, a third of them
		// with read-side node faults layered on top.
		mp := mixedParams{
			Seed:       int64(5000 + sch),
			Parts:      4,
			Batches:    30,
			Readers:    4,
			CrashProb:  float64(sch%4) * 0.25,
			RaceProb:   float64(sch%3) * 0.15,
			ReadFaults: sch%3 == 2,
		}
		out, err := runMixedSchedule(mp)
		if err != nil {
			t.Fatalf("schedule %d (crash=%.2f race=%.2f readFaults=%v): %v",
				sch, mp.CrashProb, mp.RaceProb, mp.ReadFaults, err)
		}
		if out.Crashes != out.Recoveries {
			t.Fatalf("schedule %d: %d crashes but %d recoveries", sch, out.Crashes, out.Recoveries)
		}
		if out.Queries < int64(mp.Readers) {
			t.Fatalf("schedule %d: only %d queries raced the stream", sch, out.Queries)
		}
		if out.OKQueries+out.TypedFails != out.Queries {
			t.Fatalf("schedule %d: %d queries but %d ok + %d typed",
				sch, out.Queries, out.OKQueries, out.TypedFails)
		}
		if out.WriteAmp < 1 {
			t.Fatalf("schedule %d: write amplification %.2f < 1", sch, out.WriteAmp)
		}
		crashes += out.Crashes
		recoveries += out.Recoveries
		replays += out.Replays
		queries += int(out.Queries)
	}
	if crashes == 0 || replays == 0 {
		t.Fatalf("soak injected no crashes (crashes=%d replays=%d): the schedule sweep is broken",
			crashes, replays)
	}
	t.Logf("soak: %d schedules, %d crashes recovered (%d intent replays), %d racing queries",
		schedules, crashes, replays, queries)
	verifyLeaks()
}

// The registered experiment must run end to end and account for every
// query it issued.
func TestMixedWorkloadExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed experiment sweep is long for -short")
	}
	r, err := MixedWorkload(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(mixedRegimes) {
		t.Fatalf("got %d regime rows, want %d", len(r.Rows), len(mixedRegimes))
	}
	for _, reg := range []string{"crash=0.00", "crash=0.25", "crash=0.50"} {
		q, _ := r.Value(reg, "queries")
		ok, _ := r.Value(reg, "q_ok")
		typed, _ := r.Value(reg, "q_typed")
		if q <= 0 || ok+typed != q {
			t.Fatalf("%s: %v queries but %v ok + %v typed", reg, q, ok, typed)
		}
	}
	if c, _ := r.Value("crash=0.50", "crashes"); c == 0 {
		t.Fatal("crash-heavy regime injected no crashes")
	}
	if c, _ := r.Value("crash=0.00", "crashes"); c != 0 {
		t.Fatal("crash-free regime reported crashes")
	}
}
