package bench

import (
	"fmt"
	"time"

	"pref/internal/fault"
	"pref/internal/plan"
	"pref/internal/tpch"
)

// faultVariants are the designs whose degradation under faults we compare:
// no redundancy (AllHashed), full redundancy (AllReplicated), and the
// paper's schema-driven PREF design whose duplicates double as recovery
// redundancy.
var faultVariants = []string{"AllHashed", "AllReplicated", "SD"}

// faultProbs is the per-attempt crash/shipment-failure probability sweep.
var faultProbs = []float64{0, 0.02, 0.05, 0.10, 0.20}

// faultQueries is a representative TPC-H subset spanning scan-heavy (Q1,
// Q6), join-heavy (Q3, Q5), semi/anti-rewritten (Q4) and wide-aggregation
// (Q18) work, excluding the queries the paper drops.
var faultSweepQueries = []string{"Q1", "Q3", "Q4", "Q5", "Q6", "Q18"}

// FaultSweep measures how simulated latency and shipped bytes degrade as
// the per-attempt crash and shipment-failure probability rises, per design.
// Crashed attempts burn CPU that still occupies the node (stretching the
// parallel critical path); failed shipments put their bytes on the wire
// before the re-send. Because every fault draw compares one deterministic
// hash against the probability, the injected fault set at a higher
// probability is a superset of the set at a lower one — so per-variant
// degradation is monotone by construction, and the interesting signal is
// its slope per design.
func FaultSweep(p Params) (*Report, error) {
	t := tpch.Generate(p.SF, p.Seed)
	vs, err := TPCHVariants(t, p.Parts)
	if err != nil {
		return nil, err
	}
	mats := map[string]*Materialized{}
	for _, name := range faultVariants {
		m, err := Materialize(vs[name], t.DB)
		if err != nil {
			return nil, err
		}
		mats[name] = m
	}
	cols := make([]string, 0, 2*len(faultVariants))
	for _, name := range faultVariants {
		cols = append(cols, name+"_ms", name+"_MB")
	}
	r := &Report{ID: "fault", Title: "Degradation vs fault probability (crash + shipment failure)",
		Columns: cols}
	base := p.execOptions(t.DB.TotalRows())
	for _, prob := range faultProbs {
		vals := make([]float64, 0, len(cols))
		for _, name := range faultVariants {
			eopt := base
			eopt.Fault = &fault.Policy{
				Seed:         p.Seed,
				CrashProb:    prob,
				ShipFailProb: prob,
				MaxAttempts:  10,
			}
			var sim time.Duration
			var bytes int64
			for _, q := range faultSweepQueries {
				if ExcludedQueries[q] {
					continue
				}
				run, err := runQuery(t, vs[name], mats[name], q, plan.Options{}, p.Cost, eopt)
				if err != nil {
					return nil, fmt.Errorf("fault sweep p=%.2f: %w", prob, err)
				}
				sim += run.Sim
				bytes += run.Stats.BytesShipped
			}
			vals = append(vals, float64(sim.Microseconds())/1000, float64(bytes)/1e6)
		}
		r.Add(fmt.Sprintf("p=%.2f", prob), vals...)
	}
	r.Notes = append(r.Notes,
		"same seed across probabilities: a higher p injects a superset of the faults of a lower p")
	return r, nil
}
