package bench

import (
	"fmt"
	"strings"
)

// Report is one regenerated table/figure: named columns and labeled rows,
// printable as aligned text (the format cmd/prefbench emits and
// EXPERIMENTS.md records).
type Report struct {
	ID      string // experiment id, e.g. "fig7"
	Title   string
	Columns []string
	Rows    []ReportRow
	Notes   []string
}

// ReportRow is one labeled series of values.
type ReportRow struct {
	Label  string
	Values []float64
}

// Add appends one row.
func (r *Report) Add(label string, values ...float64) {
	r.Rows = append(r.Rows, ReportRow{Label: label, Values: values})
}

// Value looks up a cell by row label and column name (NaN-free zero when
// missing), for tests and benchmark metrics.
func (r *Report) Value(label, column string) (float64, bool) {
	ci := -1
	for i, c := range r.Columns {
		if c == column {
			ci = i
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, row := range r.Rows {
		if row.Label == label && ci < len(row.Values) {
			return row.Values[ci], true
		}
	}
	return 0, false
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	labelW := len("variant")
	for _, row := range r.Rows {
		if len(row.Label) > labelW {
			labelW = len(row.Label)
		}
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c) + 2
		if widths[i] < 16 {
			widths[i] = 16
		}
	}
	fmt.Fprintf(&sb, "%-*s", labelW+2, "")
	for i, c := range r.Columns {
		fmt.Fprintf(&sb, "%*s", widths[i], c)
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-*s", labelW+2, row.Label)
		for i, v := range row.Values {
			w := 16
			if i < len(widths) {
				w = widths[i]
			}
			switch {
			case v == float64(int64(v)) && v < 1e15:
				fmt.Fprintf(&sb, "%*.0f", w, v)
			default:
				fmt.Fprintf(&sb, "%*.4f", w, v)
			}
		}
		sb.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}
