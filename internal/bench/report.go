package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Report is one regenerated table/figure: named columns and labeled rows,
// printable as aligned text (the format cmd/prefbench emits and
// EXPERIMENTS.md records).
type Report struct {
	ID      string // experiment id, e.g. "fig7"
	Title   string
	Columns []string
	Rows    []ReportRow
	Notes   []string
}

// ReportRow is one labeled series of values.
type ReportRow struct {
	Label  string
	Values []float64
}

// Add appends one row.
func (r *Report) Add(label string, values ...float64) {
	r.Rows = append(r.Rows, ReportRow{Label: label, Values: values})
}

// Value looks up a cell by row label and column name (NaN-free zero when
// missing), for tests and benchmark metrics.
func (r *Report) Value(label, column string) (float64, bool) {
	ci := -1
	for i, c := range r.Columns {
		if c == column {
			ci = i
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, row := range r.Rows {
		if row.Label == label && ci < len(row.Values) {
			return row.Values[ci], true
		}
	}
	return 0, false
}

// reportJSON is the machine-readable envelope of one report, the schema
// of the BENCH_<id>.json artifacts cmd/prefbench emits for CI trending.
type reportJSON struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Columns   []string   `json:"columns"`
	Rows      []rowJSON  `json:"rows"`
	Notes     []string   `json:"notes,omitempty"`
	ElapsedMS float64    `json:"elapsed_ms"`
	Cells     []cellJSON `json:"cells"`
}

type rowJSON struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
}

// cellJSON flattens one (row, column) measurement so trend tooling can
// filter by metric name (e.g. every "q_per_s" or "sim_ms" cell) without
// knowing each report's column layout.
type cellJSON struct {
	Row    string  `json:"row"`
	Column string  `json:"column"`
	Value  float64 `json:"value"`
}

// JSON renders the report as an indented machine-readable artifact:
// the table verbatim plus flattened per-cell measurements and the
// experiment's wall-clock time.
func (r *Report) JSON(elapsed time.Duration) ([]byte, error) {
	env := reportJSON{
		ID: r.ID, Title: r.Title, Columns: r.Columns, Notes: r.Notes,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
	}
	for _, row := range r.Rows {
		env.Rows = append(env.Rows, rowJSON{Label: row.Label, Values: row.Values})
		for i, v := range row.Values {
			if i < len(r.Columns) {
				env.Cells = append(env.Cells, cellJSON{Row: row.Label, Column: r.Columns[i], Value: v})
			}
		}
	}
	return json.MarshalIndent(env, "", "  ")
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	labelW := len("variant")
	for _, row := range r.Rows {
		if len(row.Label) > labelW {
			labelW = len(row.Label)
		}
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c) + 2
		if widths[i] < 16 {
			widths[i] = 16
		}
	}
	fmt.Fprintf(&sb, "%-*s", labelW+2, "")
	for i, c := range r.Columns {
		fmt.Fprintf(&sb, "%*s", widths[i], c)
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-*s", labelW+2, row.Label)
		for i, v := range row.Values {
			w := 16
			if i < len(widths) {
				w = widths[i]
			}
			switch {
			case v == float64(int64(v)) && v < 1e15:
				fmt.Fprintf(&sb, "%*.0f", w, v)
			default:
				fmt.Fprintf(&sb, "%*.4f", w, v)
			}
		}
		sb.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}
