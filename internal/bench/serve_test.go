package bench

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pref/internal/bulkload"
	"pref/internal/cluster"
	"pref/internal/engine"
	"pref/internal/fault"
	"pref/internal/plan"
	"pref/internal/serve"
	"pref/internal/testutil"
	"pref/internal/tpch"
	"pref/internal/value"
)

// serveOracles computes the fault-free sorted result of every prepared
// query — the ground truth a soak success must match exactly.
func serveOracles(t *testing.T, th *tpch.TPCH, m *Materialized, v *Variant) map[string][]value.Tuple {
	t.Helper()
	oracles := make(map[string][]value.Tuple, len(serveQueries))
	for _, q := range serveQueries {
		rw, err := plan.Rewrite(th.Query(q), th.DB.Schema, v.Groups[0].Config, plan.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Execute(rw, m.PDBs[0])
		if err != nil {
			t.Fatal(err)
		}
		res.SortRows()
		oracles[q] = res.Rows
	}
	return oracles
}

// TestServeSoak is the serving layer's chaos soak: seeded fault schedules
// × concurrent tenants × deadline mixes × a live write stream rolling
// epochs underneath. The contract checked for every single submission:
// a successful query is oracle-equal; a failed one carries a typed error.
// No third outcome, no leaked goroutine, clean under -race.
func TestServeSoak(t *testing.T) {
	schedules := 12
	if testing.Short() {
		schedules = 3
	}
	verifyLeaks := testutil.CheckGoroutineLeaks(t)
	p := DefaultParams()
	th := tpch.Generate(p.SF, p.Seed)
	// AllReplicated, as in the resilience soak: a flaky or tripped node
	// is always recoverable from replicas, so oracle-equality stays
	// reachable under every schedule (SD partition loss is its own test).
	vs, err := TPCHVariants(th, p.Parts)
	if err != nil {
		t.Fatal(err)
	}
	v := vs["AllReplicated"]

	var totals struct {
		ok, failed, rejected, deadline, epochRolls, cacheMisses int64
	}
	for sch := 0; sch < schedules; sch++ {
		// Fresh partitioned data per schedule: the write stream below
		// mutates it.
		m, err := Materialize(v, th.DB)
		if err != nil {
			t.Fatal(err)
		}
		oracles := serveOracles(t, th, m, v)

		// Sweep the storm intensity with the schedule index: crash-free,
		// moderate, and storm-grade schedules, half with a terminally
		// flaky node.
		seed := int64(9000 + sch)
		crash := float64(sch%3) * 0.15
		var flaky map[int]int
		if sch%2 == 1 {
			flaky = map[int]int{sch % p.Parts: 99}
		}
		s, err := serve.NewServer(serve.Options{
			PDB:    m.PDBs[0],
			Config: v.Groups[0].Config,
			Queries: func() map[string]func() plan.Node {
				qs := make(map[string]func() plan.Node)
				for _, q := range serveQueries {
					q := q
					qs[q] = func() plan.Node { return th.Query(q) }
				}
				return qs
			}(),
			Tenants: []serve.TenantConfig{
				{Name: "gold", Weight: 4},
				{Name: "silver", Weight: 2},
				{Name: "bronze", Weight: 1, Rate: 500, Burst: 30},
			},
			MaxConcurrent: 6,
			QueueTimeout:  100 * time.Millisecond,
			ShedThreshold: 1.5,
			MaxAttempts:   3,
			Cluster:       cluster.Options{Nodes: p.Parts, TripAfter: 3, CoolDownQueries: 1},
			FaultFor: func(seq int64, attempt int) *fault.Policy {
				return &fault.Policy{
					Seed:      seed + seq*31 + int64(attempt)*7,
					CrashProb: crash, StragglerProb: crash / 2, StragglerDelay: 2 * time.Millisecond,
					FlakyNodes: flaky,
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}

		// A live write stream rolling the published epoch under the soak:
		// inserts into region, which no prepared query reads, so every
		// oracle stays valid across epochs while the plan cache must keep
		// invalidating.
		writerStop := make(chan struct{})
		var writerDone sync.WaitGroup
		var rolls atomic.Int64
		writerDone.Add(1)
		go func() {
			defer writerDone.Done()
			l := bulkload.NewLoader(m.PDBs[0], v.Groups[0].Config)
			for i := 0; ; i++ {
				select {
				case <-writerStop:
					return
				case <-time.After(5 * time.Millisecond):
				}
				key := int64(1000 + sch*10000 + i)
				if err := l.Insert("region", value.Tuple{key, key, key}); err != nil {
					t.Errorf("schedule %d: write stream: %v", sch, err)
					return
				}
				rolls.Add(1)
			}
		}()

		deadlines := []time.Duration{0, 0, 400 * time.Millisecond, 40 * time.Millisecond, 8 * time.Millisecond}
		tenants := []string{"gold", "silver", "bronze"}
		workers := 6
		perWorker := 15
		var wg sync.WaitGroup
		errs := make(chan error, workers*perWorker)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(w)*101))
				tenant := tenants[w%len(tenants)]
				for i := 0; i < perWorker; i++ {
					query := serveQueries[rng.Intn(len(serveQueries))]
					ctx := context.Background()
					cancel := func() {}
					if d := deadlines[rng.Intn(len(deadlines))]; d > 0 {
						ctx, cancel = context.WithTimeout(ctx, d)
					}
					resp, err := s.Submit(ctx, tenant, query)
					cancel()
					if err != nil {
						if !typedServeFailure(err) {
							errs <- err
						}
						continue
					}
					rows := append([]value.Tuple(nil), resp.Rows...)
					sorted := &engine.Result{Rows: rows}
					sorted.SortRows()
					if !reflect.DeepEqual(sorted.Rows, oracles[query]) {
						errs <- fmt.Errorf("%s rows diverge from oracle (epoch %d)", query, resp.Epoch)
					}
				}
			}(w)
		}
		wg.Wait()
		close(writerStop)
		writerDone.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("schedule %d: %v", sch, err)
		}
		if err := s.Close(context.Background()); err != nil {
			t.Fatalf("schedule %d: close: %v", sch, err)
		}
		met := s.Metrics()
		if met.Completed+met.Failed+met.DeadlineExceeded+sumRejected(met.Rejected) != met.Submitted {
			t.Fatalf("schedule %d: outcome accounting leak: %+v", sch, met)
		}
		totals.ok += met.Completed
		totals.failed += met.Failed
		totals.deadline += met.DeadlineExceeded
		totals.rejected += sumRejected(met.Rejected)
		totals.epochRolls += rolls.Load()
		totals.cacheMisses += met.PlanCacheMisses
	}
	if totals.ok == 0 {
		t.Fatal("soak produced zero successful queries")
	}
	if totals.epochRolls == 0 {
		t.Fatal("write stream never rolled an epoch")
	}
	// Epoch rolls force rewrite-cache misses well beyond the 3 queries ×
	// schedules cold-start floor; if misses sit at the floor, the
	// epoch-keyed invalidation is broken.
	if totals.cacheMisses <= int64(schedules*len(serveQueries)) {
		t.Fatalf("plan cache missed only %d times across %d epoch rolls: invalidation broken",
			totals.cacheMisses, totals.epochRolls)
	}
	t.Logf("soak: %d schedules, ok=%d failed=%d deadline=%d rejected=%d, %d epoch rolls, %d plan-cache misses",
		schedules, totals.ok, totals.failed, totals.deadline, totals.rejected, totals.epochRolls, totals.cacheMisses)
	verifyLeaks()
}

func sumRejected(m map[string]int64) int64 {
	var n int64
	for _, v := range m {
		n += v
	}
	return n
}

// TestServeExperiment runs the registered "serve" experiment end to end
// and pins the graceful-degradation acceptance shape: the storm regime
// rejects/kills more queries than healthy, successes still happen, and
// the p99 of successes stays bounded by the deadline mix.
func TestServeExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("serve experiment sweep is long for -short")
	}
	r, err := ServeLoad(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(serveRegimes) {
		t.Fatalf("got %d regime rows, want %d", len(r.Rows), len(serveRegimes))
	}
	for _, regime := range []string{"healthy", "degraded", "storm"} {
		ok, _ := r.Value(regime, "ok")
		if ok == 0 {
			t.Fatalf("%s: zero successful queries", regime)
		}
		// The deadline mix tops out at 1.5s; the log-bucketed histogram
		// reports the bucket upper bound, one growth factor above.
		p99, _ := r.Value(regime, "p99_ms")
		if p99 <= 0 || p99 > 2000 {
			t.Fatalf("%s: success p99 = %vms, want bounded (0, 2000ms]", regime, p99)
		}
	}
	healthyBad, _ := r.Value("healthy", "rejected")
	hd, _ := r.Value("healthy", "deadline")
	hf, _ := r.Value("healthy", "failed")
	stormBad, _ := r.Value("storm", "rejected")
	sd, _ := r.Value("storm", "deadline")
	sf, _ := r.Value("storm", "failed")
	if stormBad+sd+sf <= healthyBad+hd+hf {
		t.Fatalf("storm typed-failure mass (%v) not above healthy (%v): no degradation signal",
			stormBad+sd+sf, healthyBad+hd+hf)
	}
}
