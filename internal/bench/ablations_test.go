package bench

import "testing"

func TestAblationSpanningTree(t *testing.T) {
	r, err := AblationSpanningTree(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	maxDL, _ := r.Value("maximum (paper)", "DL")
	minDL, _ := r.Value("minimum", "DL")
	if maxDL <= minDL {
		t.Fatalf("MAST DL %v must beat minimum tree %v", maxDL, minDL)
	}
	if maxDL < 0.9 {
		t.Fatalf("MAST DL = %v, want near 1", maxDL)
	}
}

func TestAblationEstimator(t *testing.T) {
	r, err := AblationEstimator(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	ours, _ := r.Value("joint E[X] (ours)", "rel_error")
	literal, _ := r.Value("literal E[X] (paper)", "rel_error")
	naive, _ := r.Value("min(n,f) bound", "rel_error")
	if ours >= literal {
		t.Fatalf("joint estimator error %v must beat the literal formula %v", ours, literal)
	}
	if literal > naive {
		t.Fatalf("the literal E[X] (%v) should not be worse than the naive bound (%v)", literal, naive)
	}
	if ours > 0.25 {
		t.Fatalf("joint estimator error = %v, want small", ours)
	}
}

func TestAblationPartitionIndex(t *testing.T) {
	p := smallParams()
	r, err := AblationPartitionIndex(p)
	if err != nil {
		t.Fatal(err)
	}
	scanned, _ := r.Value("without index", "rows_scanned")
	lookups, _ := r.Value("with index (paper)", "lookups")
	if scanned <= lookups*10 {
		t.Fatalf("scan path (%v rows) should dwarf indexed lookups (%v)", scanned, lookups)
	}
	if s, _ := r.Value("with index (paper)", "rows_scanned"); s != 0 {
		t.Fatal("indexed loading must not scan")
	}
}

func TestAblationWDPhase1(t *testing.T) {
	r, err := AblationWDPhase1(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	with, _ := r.Value("with phase 1 (paper)", "units_into_phase2")
	without, _ := r.Value("without phase 1", "units_into_phase2")
	if with >= without {
		t.Fatalf("phase 1 must shrink the unit count: %v vs %v", with, without)
	}
}

func TestAblationPruning(t *testing.T) {
	r, err := AblationPruning(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	pruned, _ := r.Value("lookup pruned (extension)", "rows_processed")
	full, _ := r.Value("lookup unpruned", "rows_processed")
	if pruned*2 >= full {
		t.Fatalf("lookup pruning should cut cluster work substantially: %v vs %v", pruned, full)
	}
}

func TestExtOLTP(t *testing.T) {
	r, err := ExtOLTP(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	wd, _ := r.Value("WD no-redundancy (outlook)", "single_node_pct")
	hashed, _ := r.Value("AllHashed on pk", "single_node_pct")
	if wd != 100 {
		t.Fatalf("OLTP design single-node fraction = %v%%, want 100%%", wd)
	}
	if hashed >= wd {
		t.Fatalf("hashing (%v%%) cannot beat the clustered design (%v%%)", hashed, wd)
	}
	if dr, _ := r.Value("WD no-redundancy (outlook)", "DR"); dr > 1e-9 {
		t.Fatalf("OLTP design DR = %v, want 0", dr)
	}
}
