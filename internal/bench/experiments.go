package bench

import (
	"fmt"
	"time"

	"pref/internal/bulkload"
	"pref/internal/design"
	"pref/internal/engine"
	"pref/internal/fault"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/table"
	"pref/internal/tpcds"
	"pref/internal/tpch"
)

// Params controls every experiment: data scale, cluster width, RNG seed.
// The defaults mirror Section 5 at laptop scale: 10 partitions, TPC-H
// uniform, TPC-DS skewed.
type Params struct {
	SF     float64 // TPC-H scale factor (micro-scale; 0.01 ≈ 60k lineitems)
	DSSF   float64 // TPC-DS scale factor
	Parts  int
	Seed   int64
	Cost   engine.CostModel
	Expand bool // include every node count in fig12 (else a coarse sweep)
	// CacheFraction sizes the per-node buffer pool relative to the fair
	// per-node share of the database (|D|/n rows). The paper's testbed
	// (3.75 GB m1.medium nodes, SF 10) sat exactly in the regime where a
	// node's fair share fits in cache but replicated big tables do not —
	// which is what wrecked CP on PARTSUPP-heavy queries (Section 5.1).
	CacheFraction float64
	// MissFactor is the out-of-cache probe penalty (engine.ExecOptions).
	MissFactor float64
	// Fault injects faults into every experiment execution (nil = none).
	// The "fault" experiment ignores it and sweeps its own policies.
	Fault *fault.Policy
	// Query selects the TPC-H query for single-query experiments (the
	// "ops" per-operator breakdown); empty means Q3.
	Query string
	// MixedReaders sweeps the "mixed" soak's read/write ratio: one row per
	// regime × reader count, with the single writer held fixed so the
	// reader count IS the ratio. Empty means the default {4}.
	MixedReaders []int
}

// DefaultParams returns laptop-scale experiment parameters.
func DefaultParams() Params {
	return Params{
		SF: 0.01, DSSF: 1.0, Parts: 10, Seed: 42,
		Cost: engine.DefaultCostModel(), CacheFraction: 0.8, MissFactor: 15,
	}
}

// execOptions derives the engine execution model for a database size.
func (p Params) execOptions(totalRows int) engine.ExecOptions {
	opt := engine.ExecOptions{Fault: p.Fault}
	if p.CacheFraction > 0 {
		opt.CacheRows = int(p.CacheFraction * float64(totalRows) / float64(p.Parts))
		opt.MissFactor = p.MissFactor
	}
	return opt
}

// execVariants are the four execution variants of Figures 7, 8 and 10.
var execVariants = []string{"CP", "SD", "SD-paper", "SD-noRed", "WD"}

// ExcludedQueries are dropped from the Figure 7 totals, exactly as the
// paper drops Q13 and Q22 (they did not finish under any configuration on
// MySQL; we still run them in Figure 8's per-query detail).
var ExcludedQueries = map[string]bool{"Q13": true, "Q22": true}

// queryRun is one executed query: telemetry plus times.
type queryRun struct {
	Stats engine.Stats
	Sim   time.Duration
	Wall  time.Duration
}

// runQuery routes, rewrites and executes one TPC-H query on a variant.
func runQuery(t *tpch.TPCH, v *Variant, m *Materialized, query string, opt plan.Options, cost engine.CostModel, eopt engine.ExecOptions) (*queryRun, error) {
	gi := v.RouteFor(query)
	pdb := m.PDBs[gi]
	cfg := v.Groups[gi].Config
	if opt.Sizes == nil {
		opt.Sizes = design.SizesOf(t.DB)
	}
	rw, err := plan.Rewrite(t.Query(query), t.DB.Schema, cfg, opt)
	if err != nil {
		return nil, fmt.Errorf("%s on %s: %w", query, v.Name, err)
	}
	start := time.Now()
	res, err := engine.ExecuteOpts(rw, pdb, eopt)
	if err != nil {
		return nil, fmt.Errorf("%s on %s: %w", query, v.Name, err)
	}
	return &queryRun{Stats: res.Stats, Sim: cost.Simulate(res.Stats), Wall: time.Since(start)}, nil
}

// Table1 regenerates Table 1: data-locality and data-redundancy of the
// four TPC-H variants.
func Table1(p Params) (*Report, error) {
	t := tpch.Generate(p.SF, p.Seed)
	vs, err := TPCHVariants(t, p.Parts)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "table1", Title: "TPC-H variants: data-locality vs data-redundancy",
		Columns: []string{"DL", "DR"}}
	for _, name := range execVariants {
		m, err := Materialize(vs[name], t.DB)
		if err != nil {
			return nil, err
		}
		r.Add(name, m.DL, m.DR)
	}
	r.Notes = append(r.Notes, "paper (Table 1): CP 1.0/1.21, SD 1.0/0.5, SD-noRed 0.7/0.19, WD 1.0/1.5")
	return r, nil
}

// Fig7 regenerates Figure 7: total runtime of the TPC-H queries per
// variant (Q13/Q22 excluded, as in the paper).
func Fig7(p Params) (*Report, error) {
	t := tpch.Generate(p.SF, p.Seed)
	vs, err := TPCHVariants(t, p.Parts)
	if err != nil {
		return nil, err
	}
	eopt := p.execOptions(t.DB.TotalRows())
	r := &Report{ID: "fig7", Title: "Total TPC-H runtime per variant",
		Columns: []string{"sim_ms", "wall_ms", "MB_shipped"}}
	for _, name := range execVariants {
		m, err := Materialize(vs[name], t.DB)
		if err != nil {
			return nil, err
		}
		var sim, wall time.Duration
		var bytes int64
		for _, q := range tpch.QueryNames {
			if ExcludedQueries[q] {
				continue
			}
			run, err := runQuery(t, vs[name], m, q, plan.Options{}, p.Cost, eopt)
			if err != nil {
				return nil, err
			}
			sim += run.Sim
			wall += run.Wall
			bytes += run.Stats.BytesShipped
		}
		r.Add(name, float64(sim.Milliseconds()), float64(wall.Milliseconds()), float64(bytes)/1e6)
	}
	r.Notes = append(r.Notes, "paper shape: WD < SD ≲ SD-noRed < CP")
	return r, nil
}

// Fig8 regenerates Figure 8: per-query simulated runtime per variant.
func Fig8(p Params) (*Report, error) {
	t := tpch.Generate(p.SF, p.Seed)
	vs, err := TPCHVariants(t, p.Parts)
	if err != nil {
		return nil, err
	}
	mats := map[string]*Materialized{}
	for _, name := range execVariants {
		m, err := Materialize(vs[name], t.DB)
		if err != nil {
			return nil, err
		}
		mats[name] = m
	}
	eopt := p.execOptions(t.DB.TotalRows())
	r := &Report{ID: "fig8", Title: "Per-query simulated runtime (ms)", Columns: execVariants}
	for _, q := range tpch.QueryNames {
		vals := make([]float64, 0, len(execVariants))
		for _, name := range execVariants {
			run, err := runQuery(t, vs[name], mats[name], q, plan.Options{}, p.Cost, eopt)
			if err != nil {
				return nil, err
			}
			vals = append(vals, float64(run.Sim.Microseconds())/1000)
		}
		r.Add(q, vals...)
	}
	return r, nil
}

// PaperSDConfig is the exact SD configuration the paper reports for
// "SD (wo small tables)" (Section 5.1): LINEITEM as the seed table, the
// other large tables recursively PREF-partitioned, small tables
// replicated. Figure 9 runs on this configuration, where CUSTOMER is
// PREF-partitioned (so its dup/hasS indexes are exercised). Our own SD
// run may legally pick a different seed with a smaller estimate — see
// EXPERIMENTS.md.
func PaperSDConfig(n int) *partition.Config {
	cfg := partition.NewConfig(n)
	cfg.SetHash("lineitem", "orderkey")
	cfg.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	cfg.SetPref("customer", "orders", []string{"custkey"}, []string{"custkey"})
	cfg.SetPref("partsupp", "lineitem", []string{"partkey", "suppkey"}, []string{"partkey", "suppkey"})
	cfg.SetPref("part", "partsupp", []string{"partkey"}, []string{"partkey"})
	for _, tbl := range []string{"supplier", "nation", "region"} {
		cfg.SetReplicated(tbl)
	}
	return cfg
}

// Fig9 regenerates Figure 9: the dup/hasRef-index optimizations on a
// distinct count, a semi join, and an anti join (with vs without).
func Fig9(p Params) (*Report, error) {
	t := tpch.Generate(p.SF, p.Seed)
	sd := singleGroup("SD-paper", PaperSDConfig(p.Parts))
	m, err := Materialize(sd, t.DB)
	if err != nil {
		return nil, err
	}
	eopt := p.execOptions(t.DB.TotalRows())

	distinct := func() plan.Node {
		return plan.Aggregate(plan.Scan("customer", "c"), nil, plan.Count("cnt"))
	}
	semi := func() plan.Node {
		j := plan.Join(plan.Scan("customer", "c"), plan.Scan("orders", "o"),
			plan.Semi, []string{"c.custkey"}, []string{"o.custkey"})
		return plan.Aggregate(j, nil, plan.Count("cnt"))
	}
	anti := func() plan.Node {
		j := plan.Join(plan.Scan("customer", "c"), plan.Scan("orders", "o"),
			plan.Anti, []string{"c.custkey"}, []string{"o.custkey"})
		return plan.Aggregate(j, nil, plan.Count("cnt"))
	}
	cases := []struct {
		name string
		mk   func() plan.Node
	}{{"distinct", distinct}, {"semi_join", semi}, {"anti_join", anti}}

	r := &Report{ID: "fig9", Title: "Optimization effectiveness on SD (simulated ms)",
		Columns: []string{"with_opt", "without_opt", "speedup"}}
	for _, c := range cases {
		with, err := execOn(c.mk(), t, sd, m, plan.Options{}, p.Cost, eopt)
		if err != nil {
			return nil, err
		}
		without, err := execOn(c.mk(), t, sd, m,
			plan.Options{DisableHasRefOpt: true, DisableDupIndex: true}, p.Cost, eopt)
		if err != nil {
			return nil, err
		}
		speedup := float64(without.Sim) / float64(with.Sim)
		r.Add(c.name, float64(with.Sim.Microseconds())/1000,
			float64(without.Sim.Microseconds())/1000, speedup)
	}
	r.Notes = append(r.Notes, "paper: ~2 orders of magnitude for distinct/semi; anti join aborted without optimization")
	return r, nil
}

func execOn(node plan.Node, t *tpch.TPCH, v *Variant, m *Materialized, opt plan.Options, cost engine.CostModel, eopt engine.ExecOptions) (*queryRun, error) {
	cfg := v.Groups[0].Config
	rw, err := plan.Rewrite(node, t.DB.Schema, cfg, opt)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := engine.ExecuteOpts(rw, m.PDBs[0], eopt)
	if err != nil {
		return nil, err
	}
	return &queryRun{Stats: res.Stats, Sim: cost.Simulate(res.Stats), Wall: time.Since(start)}, nil
}

// Fig10 regenerates Figure 10: bulk-loading cost per variant
// (tuple-at-a-time with partition indexes).
func Fig10(p Params) (*Report, error) {
	t := tpch.Generate(p.SF, p.Seed)
	vs, err := TPCHVariants(t, p.Parts)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig10", Title: "Bulk loading cost per variant",
		Columns: []string{"wall_ms", "stored_rows", "index_lookups"}}
	for _, name := range execVariants {
		v := vs[name]
		var wall time.Duration
		var stored, lookups int
		for _, g := range v.Groups {
			pdb := emptyPDB(t.DB, g.Config)
			loader := bulkload.NewLoader(pdb, g.Config)
			start := time.Now()
			sub := subDB(t.DB, g.Config)
			if _, err := loader.LoadDatabase(sub); err != nil {
				return nil, fmt.Errorf("variant %s: %w", name, err)
			}
			wall += time.Since(start)
			stored += pdb.TotalStoredRows()
			lookups += loader.Lookups
		}
		r.Add(name, float64(wall.Milliseconds()), float64(stored), float64(lookups))
	}
	r.Notes = append(r.Notes, "paper shape: CP ≈ SD < SD-noRed < WD")
	return r, nil
}

func emptyPDB(db *table.Database, cfg *partition.Config) *table.PartitionedDatabase {
	pdb := &table.PartitionedDatabase{
		Schema: db.Schema, Tables: map[string]*table.Partitioned{}, N: cfg.NumPartitions,
	}
	for name := range cfg.Schemes {
		pdb.Tables[name] = table.NewPartitioned(db.Tables[name].Meta, cfg.NumPartitions)
	}
	return pdb
}

func subDB(db *table.Database, cfg *partition.Config) *table.Database {
	var absent []string
	for _, t := range db.Schema.TableNames() {
		if cfg.Scheme(t) == nil {
			absent = append(absent, t)
		}
	}
	if len(absent) == 0 {
		return db
	}
	return db.Without(absent...)
}

// Fig11a regenerates Figure 11(a): DL vs DR for the TPC-H variants.
func Fig11a(p Params) (*Report, error) {
	t := tpch.Generate(p.SF, p.Seed)
	vs, err := TPCHVariants(t, p.Parts)
	if err != nil {
		return nil, err
	}
	order := []string{"AllHashed", "AllReplicated", "CP", "SD", "SD-noRed", "WD"}
	r := &Report{ID: "fig11a", Title: "TPC-H locality vs redundancy",
		Columns: []string{"DL", "DR"}}
	for _, name := range order {
		m, err := Materialize(vs[name], t.DB)
		if err != nil {
			return nil, err
		}
		r.Add(name, m.DL, m.DR)
	}
	r.Notes = append(r.Notes,
		"paper: AllHashed 0/0, AllRepl 1/9, CP 1/1.21, SD 1/0.5, SD-noRed 0.7/0.19, WD 1/1.5")
	return r, nil
}

// Fig11b regenerates Figure 11(b): DL vs DR for the TPC-DS variants.
func Fig11b(p Params) (*Report, error) {
	t := tpcds.Generate(p.DSSF, p.Seed)
	vs, err := TPCDSVariants(t, p.Parts)
	if err != nil {
		return nil, err
	}
	order := []string{"AllHashed", "AllReplicated", "CP-Naive", "CP-Stars", "SD-Naive", "SD-Stars", "WD"}
	r := &Report{ID: "fig11b", Title: "TPC-DS locality vs redundancy",
		Columns: []string{"DL", "DR"}}
	for _, name := range order {
		m, err := Materialize(vs[name], t.DB)
		if err != nil {
			return nil, err
		}
		r.Add(name, m.DL, m.DR)
	}
	r.Notes = append(r.Notes,
		"paper: AllHashed 0/0, AllRepl 1/9, CP-Naive 1/4.15, CP-Stars 1/1.32, SD-Naive 0.49/0.23, SD-Stars 0.65/0.38, WD 1/1.4")
	return r, nil
}

// fig12NodeCounts is the scale-out sweep of Figure 12.
func fig12NodeCounts(expand bool) []int {
	if expand {
		out := make([]int, 0, 100)
		for n := 1; n <= 100; n++ {
			out = append(out, n)
		}
		return out
	}
	return []int{1, 10, 20, 40, 60, 80, 100}
}

// Fig12a regenerates Figure 12(a): TPC-H data-redundancy vs node count.
func Fig12a(p Params) (*Report, error) {
	t := tpch.Generate(p.SF, p.Seed)
	r := &Report{ID: "fig12a", Title: "TPC-H redundancy vs number of nodes",
		Columns: []string{"CP", "SD", "WD"}}
	for _, n := range fig12NodeCounts(p.Expand) {
		vs, err := TPCHVariants(t, n)
		if err != nil {
			return nil, err
		}
		var vals []float64
		for _, name := range []string{"CP", "SD", "WD"} {
			m, err := Materialize(vs[name], t.DB)
			if err != nil {
				return nil, err
			}
			vals = append(vals, m.DR)
		}
		r.Add(fmt.Sprintf("n=%d", n), vals...)
	}
	r.Notes = append(r.Notes, "paper shape: CP grows linearly; SD/WD sub-linearly")
	return r, nil
}

// Fig12b regenerates Figure 12(b): TPC-DS data-redundancy vs node count.
func Fig12b(p Params) (*Report, error) {
	t := tpcds.Generate(p.DSSF, p.Seed)
	r := &Report{ID: "fig12b", Title: "TPC-DS redundancy vs number of nodes",
		Columns: []string{"CP-Stars", "SD-Stars", "WD"}}
	for _, n := range fig12NodeCounts(p.Expand) {
		vs, err := TPCDSVariants(t, n)
		if err != nil {
			return nil, err
		}
		var vals []float64
		for _, name := range []string{"CP-Stars", "SD-Stars", "WD"} {
			m, err := Materialize(vs[name], t.DB)
			if err != nil {
				return nil, err
			}
			vals = append(vals, m.DR)
		}
		r.Add(fmt.Sprintf("n=%d", n), vals...)
	}
	return r, nil
}

// Fig13 regenerates Figure 13: redundancy-estimate accuracy and design
// runtime under sampling, for uniform TPC-H vs skewed TPC-DS.
func Fig13(p Params) (*Report, error) {
	rates := []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.50, 1.00}
	th := tpch.Generate(p.SF, p.Seed)
	thReduced := th.DB.Without(tpch.SmallTables()...)
	ds := tpcds.Generate(p.DSSF, p.Seed)
	dsReduced := ds.DB.Without(tpcds.SmallTables()...)

	r := &Report{ID: "fig13", Title: "Estimate error and SD runtime vs sampling rate",
		Columns: []string{"tpch_err", "tpch_ms", "tpcds_err", "tpcds_ms"}}

	measure := func(db *table.Database, rate float64) (float64, float64, error) {
		start := time.Now()
		d, err := design.SchemaDriven(db, design.SDOptions{
			Parts: p.Parts, SampleRate: rate, SampleSeed: p.Seed,
		})
		if err != nil {
			return 0, 0, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		pdb, err := partition.Apply(db, d.Config)
		if err != nil {
			return 0, 0, err
		}
		actual := pdb.DataRedundancy()
		est := d.Est.DR()
		var errRel float64
		if actual > 1e-9 {
			errRel = abs(est-actual) / actual
		} else {
			errRel = abs(est - actual)
		}
		return errRel, ms, nil
	}

	for _, rate := range rates {
		thErr, thMs, err := measure(thReduced, rate)
		if err != nil {
			return nil, err
		}
		dsErr, dsMs, err := measure(dsReduced, rate)
		if err != nil {
			return nil, err
		}
		r.Add(fmt.Sprintf("%.0f%%", rate*100), thErr, thMs, dsErr, dsMs)
	}
	r.Notes = append(r.Notes, "paper: ~3% error for TPC-H and ~8% for TPC-DS at 10% sampling")
	return r, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Experiments maps experiment ids to their drivers, for cmd/prefbench.
var Experiments = map[string]func(Params) (*Report, error){
	"table1": Table1,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"fig11a": Fig11a,
	"fig11b": Fig11b,
	"fig12a": Fig12a,
	"fig12b": Fig12b,
	"fig13":  Fig13,
	"fault":  FaultSweep,
	"ops":    OpBreakdown,
	"hedge":  HedgeSweep,
	"soak":   ResilienceSoak,
	"mixed":  MixedWorkload,
	"vec":    VecThroughput,
	"serve":  ServeLoad,
}

// ExperimentOrder lists experiment ids in presentation order.
var ExperimentOrder = []string{
	"table1", "fig7", "fig8", "fig9", "fig10",
	"fig11a", "fig11b", "fig12a", "fig12b", "fig13", "fault", "ops",
	"hedge", "soak", "mixed", "vec", "serve",
}
