package partition

import (
	"encoding/json"
	"fmt"
	"sort"
)

// configJSON is the stable on-disk form of a Config, so designs produced
// by prefdesign (or the design package) can be saved, reviewed, and
// loaded by other tools.
type configJSON struct {
	Partitions int          `json:"partitions"`
	Tables     []schemeJSON `json:"tables"`
}

type schemeJSON struct {
	Table  string   `json:"table"`
	Method string   `json:"method"`
	Cols   []string `json:"cols,omitempty"`
	Bounds []int64  `json:"bounds,omitempty"`
	// PREF fields
	RefTable string   `json:"ref_table,omitempty"`
	RefCols  []string `json:"ref_cols,omitempty"`
	OwnCols  []string `json:"own_cols,omitempty"`
}

var methodNames = map[Method]string{
	Hash:       "hash",
	RoundRobin: "round_robin",
	Range:      "range",
	Replicated: "replicated",
	Pref:       "pref",
}

// MarshalJSON renders the configuration deterministically (tables sorted).
func (c *Config) MarshalJSON() ([]byte, error) {
	out := configJSON{Partitions: c.NumPartitions}
	names := make([]string, 0, len(c.Schemes))
	for n := range c.Schemes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ts := c.Schemes[n]
		m, ok := methodNames[ts.Method]
		if !ok {
			return nil, fmt.Errorf("partition: cannot serialize method %v", ts.Method)
		}
		out.Tables = append(out.Tables, schemeJSON{
			Table: ts.Table, Method: m,
			Cols: ts.Cols, Bounds: ts.Bounds,
			RefTable: ts.RefTable,
			OwnCols:  ts.Pred.ReferencingCols,
			RefCols:  ts.Pred.ReferencedCols,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalJSON parses a configuration previously produced by MarshalJSON.
// Call Validate against the target schema after loading.
func (c *Config) UnmarshalJSON(data []byte) error {
	var in configJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.Partitions < 1 {
		return fmt.Errorf("partition: json config has partitions=%d", in.Partitions)
	}
	c.NumPartitions = in.Partitions
	c.Schemes = make(map[string]*TableScheme, len(in.Tables))
	byName := map[string]Method{}
	for m, n := range methodNames {
		byName[n] = m
	}
	for _, ts := range in.Tables {
		m, ok := byName[ts.Method]
		if !ok {
			return fmt.Errorf("partition: unknown method %q for table %s", ts.Method, ts.Table)
		}
		if ts.Table == "" {
			return fmt.Errorf("partition: scheme without a table name")
		}
		if _, dup := c.Schemes[ts.Table]; dup {
			return fmt.Errorf("partition: duplicate scheme for table %s", ts.Table)
		}
		c.Schemes[ts.Table] = &TableScheme{
			Table: ts.Table, Method: m, Cols: ts.Cols, Bounds: ts.Bounds,
			RefTable: ts.RefTable,
			Pred:     Predicate{ReferencingCols: ts.OwnCols, ReferencedCols: ts.RefCols},
		}
	}
	return nil
}
