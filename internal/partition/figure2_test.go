package partition

// This file reproduces the paper's worked example (Figure 2) exactly:
// LINEITEM hash-partitioned by linekey%3, ORDERS PREF-partitioned on
// LINEITEM by orderkey, CUSTOMER PREF-partitioned on ORDERS by custkey —
// including the dup and hasS bitmap indexes shown in the figure.

import (
	"reflect"
	"testing"

	"pref/internal/catalog"
	"pref/internal/table"
	"pref/internal/value"
)

func figure2Schema() *catalog.Schema {
	s := catalog.NewSchema("fig2")
	s.MustAddTable(catalog.MustTable("lineitem",
		[]catalog.Column{{Name: "linekey", Kind: value.Int}, {Name: "orderkey", Kind: value.Int}}, "linekey"))
	s.MustAddTable(catalog.MustTable("orders",
		[]catalog.Column{{Name: "orderkey", Kind: value.Int}, {Name: "custkey", Kind: value.Int}}, "orderkey"))
	s.MustAddTable(catalog.MustTable("customer",
		[]catalog.Column{{Name: "custkey", Kind: value.Int}, {Name: "cname", Kind: value.Str}}, "custkey"))
	return s
}

// buildFigure2 returns the three partitioned tables of Figure 2.
func buildFigure2(t *testing.T) (l, o, c *table.Partitioned) {
	t.Helper()
	s := figure2Schema()

	// LINEITEM, hash partitioned by linekey % 3 (placement pinned by hand
	// to match the figure; our production hash is FNV, not mod).
	lm := s.Table("lineitem")
	l = table.NewPartitioned(lm, 3)
	l.OriginalRows = 5
	rows := []value.Tuple{{0, 1}, {1, 4}, {2, 1}, {3, 2}, {4, 3}}
	for _, r := range rows {
		l.Parts[r[0]%3].Append(r, false, false)
	}

	// ORDERS, PREF on LINEITEM by o.orderkey = l.orderkey.
	om := s.Table("orders")
	od := table.NewData(om)
	for _, r := range []value.Tuple{{1, 1}, {2, 1}, {3, 2}, {4, 1}} {
		od.MustAppend(r)
	}
	var err error
	o, err = ApplyPref(od, &TableScheme{
		Table: "orders", Method: Pref, RefTable: "lineitem",
		Pred: Predicate{ReferencingCols: []string{"orderkey"}, ReferencedCols: []string{"orderkey"}},
	}, l)
	if err != nil {
		t.Fatal(err)
	}

	// CUSTOMER, PREF on ORDERS by c.custkey = o.custkey.
	cm := s.Table("customer")
	cd := table.NewData(cm)
	dict := cm.Dict("cname")
	for _, r := range []struct {
		k    int64
		name string
	}{{1, "A"}, {2, "B"}, {3, "C"}} {
		cd.MustAppend(value.Tuple{r.k, dict.Code(r.name)})
	}
	c, err = ApplyPref(cd, &TableScheme{
		Table: "customer", Method: Pref, RefTable: "orders",
		Pred: Predicate{ReferencingCols: []string{"custkey"}, ReferencedCols: []string{"custkey"}},
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	return l, o, c
}

func rowsOf(p *table.Partition) [][]int64 {
	out := make([][]int64, len(p.Rows))
	for i, r := range p.Rows {
		out[i] = []int64(r)
	}
	return out
}

func TestPaperFigure2Orders(t *testing.T) {
	_, o, _ := buildFigure2(t)

	// Partition contents exactly as in the figure.
	want := [][][]int64{
		{{1, 1}, {2, 1}}, // P1 in the figure
		{{4, 1}, {3, 2}}, // P2
		{{1, 1}},         // P3
	}
	// Our partitioner emits tuples in referencing-table order, so P1 holds
	// orderkey 1 then 2, P2 holds 3 then 4. The figure lists P2 as (4,3)
	// then (3,2); the multiset per partition is what Definition 1 fixes.
	got := [][][]int64{rowsOf(o.Parts[0]), rowsOf(o.Parts[1]), rowsOf(o.Parts[2])}
	sortNested := func(x [][]int64) {
		for i := 0; i < len(x); i++ {
			for j := i + 1; j < len(x); j++ {
				if x[j][0] < x[i][0] {
					x[i], x[j] = x[j], x[i]
				}
			}
		}
	}
	for i := range want {
		sortNested(want[i])
		sortNested(got[i])
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Errorf("orders partition %d = %v, want %v", i, got[i], want[i])
		}
	}

	// dup index: exactly one duplicate (orderkey 1 in P3); hasL all 1.
	if o.DuplicateRows() != 1 {
		t.Fatalf("orders duplicates = %d, want 1", o.DuplicateRows())
	}
	if !o.Parts[2].Dup.Get(0) {
		t.Error("orders copy in P3 must be marked dup=1")
	}
	for p, part := range o.Parts {
		for i := range part.Rows {
			if !part.HasRef.Get(i) {
				t.Errorf("orders P%d row %d: hasL must be 1", p, i)
			}
		}
	}
	if o.StoredRows() != 5 || o.OriginalRows != 4 {
		t.Fatalf("orders |T^P|=%d |T|=%d, want 5/4", o.StoredRows(), o.OriginalRows)
	}
}

func TestPaperFigure2Customer(t *testing.T) {
	_, _, c := buildFigure2(t)

	// custkey layout per the figure: P1 {1, 3}, P2 {1, 2}, P3 {1}.
	wantKeys := [][]int64{{1, 3}, {1, 2}, {1}}
	for p, want := range wantKeys {
		var got []int64
		for _, r := range c.Parts[p].Rows {
			got = append(got, r[0])
		}
		// order-insensitive compare
		if len(got) != len(want) {
			t.Fatalf("customer P%d keys = %v, want %v", p+1, got, want)
		}
		seen := map[int64]int{}
		for _, k := range got {
			seen[k]++
		}
		for _, k := range want {
			seen[k]--
		}
		for k, v := range seen {
			if v != 0 {
				t.Fatalf("customer P%d key %d multiplicity mismatch (got %v want %v)", p+1, k, got, want)
			}
		}
	}

	// Figure 2: customer 1 stored 3x (one dup=0, two dup=1); customer 3
	// (no orders) placed once with hasO=0.
	if c.StoredRows() != 5 || c.OriginalRows != 3 {
		t.Fatalf("customer |T^P|=%d |T|=%d, want 5/3 (P1:2 + P2:2 + P3:1)", c.StoredRows(), c.OriginalRows)
	}
	if c.DuplicateRows() != 2 {
		t.Fatalf("customer duplicates = %d, want 2", c.DuplicateRows())
	}
	hasRefByKey := map[int64][]bool{}
	dupZeroCount := map[int64]int{}
	for _, part := range c.Parts {
		for i, r := range part.Rows {
			hasRefByKey[r[0]] = append(hasRefByKey[r[0]], part.HasRef.Get(i))
			if !part.Dup.Get(i) {
				dupZeroCount[r[0]]++
			}
		}
	}
	for _, h := range hasRefByKey[1] {
		if !h {
			t.Error("customer 1 must have hasO=1 on every copy")
		}
	}
	for _, h := range hasRefByKey[3] {
		if h {
			t.Error("customer 3 has no orders; hasO must be 0")
		}
	}
	for k, n := range dupZeroCount {
		if n != 1 {
			t.Errorf("customer %d has %d copies with dup=0, want exactly 1", k, n)
		}
	}
}

// Condition (1) of Definition 1, checked directly: every partition of the
// referencing table contains exactly the tuples with a partitioning partner
// in the same partition of the referenced table (plus round-robin orphans).
func TestPrefDefinitionCondition1(t *testing.T) {
	l, o, _ := buildFigure2(t)
	for p := range o.Parts {
		// referenced keys present in this lineitem partition
		refKeys := map[int64]bool{}
		for _, r := range l.Parts[p].Rows {
			refKeys[r[1]] = true
		}
		for i, r := range o.Parts[p].Rows {
			if o.Parts[p].HasRef.Get(i) && !refKeys[r[0]] {
				t.Errorf("orders P%d: tuple %v has no partner in lineitem P%d", p, r, p)
			}
		}
		// and every referencing tuple whose key is here must be here
		for _, ord := range []value.Tuple{{1, 1}, {2, 1}, {3, 2}, {4, 1}} {
			if refKeys[ord[0]] {
				found := false
				for _, r := range o.Parts[p].Rows {
					if r[0] == ord[0] && r[1] == ord[1] {
						found = true
					}
				}
				if !found {
					t.Errorf("orders P%d: missing tuple %v whose key is in lineitem P%d", p, ord, p)
				}
			}
		}
	}
}

// Condition (2) of Definition 1: every original tuple appears in at least
// one partition.
func TestPrefDefinitionCondition2(t *testing.T) {
	_, o, c := buildFigure2(t)
	check := func(name string, pt *table.Partitioned, keys []int64) {
		for _, k := range keys {
			n := 0
			for _, part := range pt.Parts {
				for _, r := range part.Rows {
					if r[0] == k {
						n++
					}
				}
			}
			if n == 0 {
				t.Errorf("%s: tuple with key %d lost by partitioning", name, k)
			}
		}
	}
	check("orders", o, []int64{1, 2, 3, 4})
	check("customer", c, []int64{1, 2, 3})
}
