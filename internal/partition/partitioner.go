package partition

import (
	"fmt"

	"pref/internal/table"
	"pref/internal/value"
)

// Apply partitions every table of db according to the config, producing a
// partitioned database with populated dup/hasRef bitmap indexes.
//
// Tables are processed referenced-before-referencing so that a PREF table
// sees the final (possibly duplicated) partitions of its referenced table —
// this is what makes redundancy cumulative along PREF chains (Section 3.3).
// Every table in db must have a scheme in the config.
func Apply(db *table.Database, cfg *Config) (*table.PartitionedDatabase, error) {
	if err := cfg.Validate(db.Schema); err != nil {
		return nil, err
	}
	for name := range db.Tables {
		if cfg.Scheme(name) == nil {
			return nil, fmt.Errorf("partition: no scheme for table %s", name)
		}
	}
	order, err := cfg.Order()
	if err != nil {
		return nil, err
	}

	out := &table.PartitionedDatabase{
		Schema: db.Schema,
		Tables: make(map[string]*table.Partitioned),
		N:      cfg.NumPartitions,
	}
	for _, name := range order {
		data, ok := db.Tables[name]
		if !ok {
			return nil, fmt.Errorf("partition: config references table %s absent from database", name)
		}
		pt, err := applyOne(data, cfg, out)
		if err != nil {
			return nil, err
		}
		out.Tables[name] = pt
	}
	return out, nil
}

func applyOne(data *table.Data, cfg *Config, done *table.PartitionedDatabase) (*table.Partitioned, error) {
	ts := cfg.Scheme(data.Meta.Name)
	n := cfg.NumPartitions
	pt := table.NewPartitioned(data.Meta, n)
	pt.OriginalRows = data.Len()

	switch ts.Method {
	case Hash:
		cols, err := data.Meta.ColIndexes(ts.Cols)
		if err != nil {
			return nil, err
		}
		for _, row := range data.Rows {
			p := int(value.HashTuple(row, cols) % uint64(n))
			pt.Parts[p].Append(row, false, false)
		}

	case RoundRobin:
		for i, row := range data.Rows {
			pt.Parts[i%n].Append(row, false, false)
		}

	case Range:
		col := data.Meta.ColIndex(ts.Cols[0])
		for _, row := range data.Rows {
			p := rangePartition(row[col], ts.Bounds)
			pt.Parts[p].Append(row, false, false)
		}

	case Replicated:
		pt.Replicated = true
		for p := 0; p < n; p++ {
			for _, row := range data.Rows {
				// Copies beyond the first are marked dup so |T^P|
				// accounting stays uniform, but replicated scans are
				// routed to a single copy rather than dedup-filtered.
				pt.Parts[p].Append(row, p > 0, false)
			}
		}

	case Pref:
		ref := done.Tables[ts.RefTable]
		if ref == nil {
			return nil, fmt.Errorf("partition: referenced table %s not partitioned before %s",
				ts.RefTable, data.Meta.Name)
		}
		var orphanCols []int
		if mapped, ok := cfg.HashEquivalent(data.Meta.Name); ok {
			idx, err := data.Meta.ColIndexes(mapped)
			if err != nil {
				return nil, err
			}
			orphanCols = idx
		}
		if err := prefPartition(data, ts, ref, pt, orphanCols); err != nil {
			return nil, err
		}

	default:
		return nil, fmt.Errorf("partition: table %s: unsupported method %v", data.Meta.Name, ts.Method)
	}
	return pt, nil
}

// RangeTarget returns the partition a value falls into under the given
// ascending range bounds; exported for partition pruning.
func RangeTarget(v int64, bounds []int64) int { return rangePartition(v, bounds) }

// rangePartition returns the index of the first bound greater than v, so
// bounds [10, 20] split values into (-inf,10), [10,20), [20,inf).
func rangePartition(v int64, bounds []int64) int {
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v < bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// prefPartition implements Definition 1. A tuple r of the referencing table
// is copied into every partition i where some tuple s ∈ P_i(S) satisfies
// the partitioning predicate (condition 1); tuples with no partitioning
// partner anywhere are assigned to a partition of their own (condition 2)
// with hasRef=0 — round-robin normally, or by hashing orphanCols when the
// table is hash-equivalent (preserving the equivalence; any placement
// satisfies condition 2). The first stored copy of each tuple gets dup=0,
// later copies dup=1.
func prefPartition(data *table.Data, ts *TableScheme, ref *table.Partitioned, pt *table.Partitioned, orphanCols []int) error {
	refCols, err := ref.Meta.ColIndexes(ts.Pred.ReferencedCols)
	if err != nil {
		return err
	}
	ringCols, err := data.Meta.ColIndexes(ts.Pred.ReferencingCols)
	if err != nil {
		return err
	}

	idx := buildPartitionIndex(ref, refCols)

	rr := 0
	n := len(pt.Parts)
	for _, row := range data.Rows {
		key := value.MakeKey(row, ringCols)
		targets := idx[key]
		if len(targets) == 0 {
			p := rr % n
			if orphanCols != nil {
				p = int(value.HashTuple(row, orphanCols) % uint64(n))
			}
			pt.Parts[p].Append(row, false, false)
			rr++
			continue
		}
		for i, p := range targets {
			pt.Parts[p].Append(row, i > 0, true)
		}
	}
	return nil
}

// buildPartitionIndex maps each distinct referenced-column key of a
// partitioned table to the sorted set of partitions containing it. This is
// also the "partition index" used for bulk loading (Section 2.3).
func buildPartitionIndex(ref *table.Partitioned, refCols []int) map[value.Key][]int {
	idx := make(map[value.Key][]int)
	for p, part := range ref.Parts {
		for _, row := range part.Rows {
			key := value.MakeKey(row, refCols)
			ps := idx[key]
			// Partitions are scanned in ascending order, so p is a
			// duplicate only if it equals the last recorded partition.
			if len(ps) == 0 || ps[len(ps)-1] != p {
				idx[key] = append(ps, p)
			}
		}
	}
	return idx
}

// ApplyPref PREF-partitions a single table against an already-partitioned
// referenced table, without going through a full Config. Used by tests that
// pin the referenced table's exact placement (e.g. the paper's Figure 2)
// and by the bulk loader.
func ApplyPref(data *table.Data, ts *TableScheme, ref *table.Partitioned) (*table.Partitioned, error) {
	if ts.Method != Pref {
		return nil, fmt.Errorf("partition: ApplyPref requires a PREF scheme, got %v", ts.Method)
	}
	pt := table.NewPartitioned(data.Meta, ref.NumPartitions())
	pt.OriginalRows = data.Len()
	if err := prefPartition(data, ts, ref, pt, nil); err != nil {
		return nil, err
	}
	return pt, nil
}

// PartitionIndex exposes buildPartitionIndex for the bulk loader.
func PartitionIndex(ref *table.Partitioned, refColNames []string) (map[value.Key][]int, error) {
	cols, err := ref.Meta.ColIndexes(refColNames)
	if err != nil {
		return nil, err
	}
	return buildPartitionIndex(ref, cols), nil
}
