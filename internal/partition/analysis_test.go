package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pref/internal/catalog"
	"pref/internal/table"
	"pref/internal/value"
)

// Property: the static analyses are sound against real partitioning —
// whenever DupFree says a table has no duplicates, Apply produces none;
// whenever HashEquivalent claims hash placement, every stored row sits at
// its hash position. Random chains, directions, key multiplicities, and
// orphans.
func TestStaticAnalysesSoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)

		s := catalog.NewSchema("p")
		s.MustAddTable(catalog.MustTable("a",
			[]catalog.Column{{Name: "id", Kind: value.Int}, {Name: "fk", Kind: value.Int}}, "id"))
		s.MustAddTable(catalog.MustTable("b",
			[]catalog.Column{{Name: "id", Kind: value.Int}, {Name: "fk", Kind: value.Int}}, "id"))
		s.MustAddTable(catalog.MustTable("c",
			[]catalog.Column{{Name: "id", Kind: value.Int}, {Name: "fk", Kind: value.Int}}, "id"))

		db := table.NewDatabase(s)
		for i := int64(0); i < 30; i++ {
			db.Tables["a"].MustAppend(value.Tuple{i, rng.Int63n(10)})
			db.Tables["b"].MustAppend(value.Tuple{i, rng.Int63n(35)}) // some orphan fks
			db.Tables["c"].MustAppend(value.Tuple{i, rng.Int63n(35)})
		}

		cfg := NewConfig(n)
		// Seed table a, hashed on either id (unique) or fk (non-unique).
		seedCol := []string{"id", "fk"}[rng.Intn(2)]
		cfg.SetHash("a", seedCol)
		// b PREF on a, referencing either a.id (pk) or a.fk.
		bRef := []string{"id", "fk"}[rng.Intn(2)]
		cfg.SetPref("b", "a", []string{"fk"}, []string{bRef})
		// c PREF on b via b.id (pk) or b.fk.
		cRef := []string{"id", "fk"}[rng.Intn(2)]
		cfg.SetPref("c", "b", []string{"fk"}, []string{cRef})

		pdb, err := Apply(db, cfg)
		if err != nil {
			return false
		}
		for _, tbl := range []string{"b", "c"} {
			if cfg.DupFree(s, tbl) && pdb.Tables[tbl].DuplicateRows() != 0 {
				return false
			}
			if cols, ok := cfg.HashEquivalent(tbl); ok {
				idx, err := pdb.Tables[tbl].Meta.ColIndexes(cols)
				if err != nil {
					return false
				}
				for p, part := range pdb.Tables[tbl].Parts {
					for _, r := range part.Rows {
						if int(value.HashTuple(r, idx)%uint64(n)) != p {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDupFreeRules(t *testing.T) {
	s := catalog.NewSchema("t")
	s.MustAddTable(catalog.MustTable("parent",
		[]catalog.Column{{Name: "pk", Kind: value.Int}, {Name: "attr", Kind: value.Int}}, "pk"))
	s.MustAddTable(catalog.MustTable("child",
		[]catalog.Column{{Name: "id", Kind: value.Int}, {Name: "ref", Kind: value.Int}}, "id"))

	cases := []struct {
		name string
		cfg  func() *Config
		want bool
	}{
		{"hash", func() *Config {
			c := NewConfig(4)
			c.SetHash("child", "id")
			return c
		}, true},
		{"pref-on-pk", func() *Config {
			c := NewConfig(4)
			c.SetHash("parent", "attr")
			c.SetPref("child", "parent", []string{"ref"}, []string{"pk"})
			return c
		}, true},
		{"pref-on-nonkey", func() *Config {
			c := NewConfig(4)
			c.SetHash("parent", "pk")
			c.SetPref("child", "parent", []string{"ref"}, []string{"attr"})
			return c
		}, false},
		{"replicated", func() *Config {
			c := NewConfig(4)
			c.SetReplicated("child")
			return c
		}, false},
	}
	for _, tc := range cases {
		if got := tc.cfg().DupFree(s, "child"); got != tc.want {
			t.Errorf("%s: DupFree = %v, want %v", tc.name, got, tc.want)
		}
	}
	// Unknown table.
	if NewConfig(2).DupFree(s, "nope") {
		t.Error("unknown table must not be dup-free")
	}
}

func TestHashEquivalentComposite(t *testing.T) {
	s := catalog.NewSchema("t")
	s.MustAddTable(catalog.MustTable("ps",
		[]catalog.Column{{Name: "pk1", Kind: value.Int}, {Name: "pk2", Kind: value.Int}}, "pk1", "pk2"))
	s.MustAddTable(catalog.MustTable("l",
		[]catalog.Column{{Name: "id", Kind: value.Int}, {Name: "a", Kind: value.Int}, {Name: "b", Kind: value.Int}}, "id"))
	cfg := NewConfig(4)
	cfg.SetHash("ps", "pk1", "pk2")
	cfg.SetPref("l", "ps", []string{"a", "b"}, []string{"pk1", "pk2"})
	cols, ok := cfg.HashEquivalent("l")
	if !ok || len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Fatalf("composite hash-equivalence = %v %v", cols, ok)
	}
	// Partial coverage: hash cols not fully inside the predicate.
	cfg2 := NewConfig(4)
	cfg2.SetHash("ps", "pk1", "pk2")
	cfg2.SetPref("l", "ps", []string{"a"}, []string{"pk1"})
	if _, ok := cfg2.HashEquivalent("l"); ok {
		t.Fatal("partial key coverage must not be hash-equivalent")
	}
}
