// Package partition implements the horizontal partitioning schemes of the
// paper: the classical schemes (HASH, ROUND-ROBIN, RANGE, REPLICATED) and
// the paper's contribution, predicate-based reference partitioning (PREF,
// Definition 1). A Config assigns one scheme per table; Apply materializes
// a partitioned database with the dup/hasRef bitmap indexes.
package partition

import (
	"fmt"
	"sort"
	"strings"

	"pref/internal/catalog"
)

// Method identifies a partitioning scheme.
type Method int

const (
	// Hash partitions by a hash of the partitioning columns.
	Hash Method = iota
	// RoundRobin assigns tuples to partitions cyclically.
	RoundRobin
	// Range partitions by comparing a single column against split bounds.
	Range
	// Replicated stores a full copy of the table on every node.
	Replicated
	// Pref co-partitions a table by a referenced table under a
	// partitioning predicate (the paper's contribution).
	Pref
)

func (m Method) String() string {
	switch m {
	case Hash:
		return "HASH"
	case RoundRobin:
		return "ROUND_ROBIN"
	case Range:
		return "RANGE"
	case Replicated:
		return "REPLICATED"
	case Pref:
		return "PREF"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Predicate is a conjunctive equi-join partitioning predicate between a
// referencing table R and a referenced table S:
// R.ReferencingCols[i] = S.ReferencedCols[i] for all i.
// Only equi-predicates are supported (Section 2.1): other predicates would
// drive a PREF table to full replication.
type Predicate struct {
	ReferencingCols []string
	ReferencedCols  []string
}

// String renders the predicate as "r.a=s.x AND r.b=s.y".
func (p Predicate) String() string {
	parts := make([]string, len(p.ReferencingCols))
	for i := range p.ReferencingCols {
		parts[i] = p.ReferencingCols[i] + "=" + p.ReferencedCols[i]
	}
	return strings.Join(parts, " AND ")
}

// Equal reports whether two predicates are identical (same columns in the
// same pairing, order-insensitive across conjuncts).
func (p Predicate) Equal(q Predicate) bool {
	if len(p.ReferencingCols) != len(q.ReferencingCols) {
		return false
	}
	pairs := func(pr Predicate) []string {
		out := make([]string, len(pr.ReferencingCols))
		for i := range pr.ReferencingCols {
			out[i] = pr.ReferencingCols[i] + "=" + pr.ReferencedCols[i]
		}
		sort.Strings(out)
		return out
	}
	a, b := pairs(p), pairs(q)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TableScheme is the partitioning scheme chosen for one table.
type TableScheme struct {
	Table  string
	Method Method

	// Cols are the partitioning columns for Hash, or the single bound
	// column for Range.
	Cols []string
	// Bounds are the ascending split points for Range (len = parts−1).
	Bounds []int64

	// RefTable and Pred describe a PREF scheme: this table references
	// RefTable under partitioning predicate Pred.
	RefTable string
	Pred     Predicate
}

func (ts *TableScheme) String() string {
	switch ts.Method {
	case Hash:
		return fmt.Sprintf("%s HASH(%s)", ts.Table, strings.Join(ts.Cols, ","))
	case Range:
		return fmt.Sprintf("%s RANGE(%s)", ts.Table, strings.Join(ts.Cols, ","))
	case Pref:
		return fmt.Sprintf("%s PREF on %s by %s", ts.Table, ts.RefTable, ts.Pred)
	default:
		return fmt.Sprintf("%s %s", ts.Table, ts.Method)
	}
}

// Config is a partitioning configuration: a scheme per table plus the
// number of partitions (= logical nodes).
type Config struct {
	NumPartitions int
	Schemes       map[string]*TableScheme
}

// NewConfig returns an empty configuration for n partitions.
func NewConfig(n int) *Config {
	return &Config{NumPartitions: n, Schemes: make(map[string]*TableScheme)}
}

// Set registers (or replaces) the scheme for one table and returns the
// config for chaining.
func (c *Config) Set(ts *TableScheme) *Config {
	c.Schemes[ts.Table] = ts
	return c
}

// SetHash registers a hash scheme.
func (c *Config) SetHash(table string, cols ...string) *Config {
	return c.Set(&TableScheme{Table: table, Method: Hash, Cols: cols})
}

// SetReplicated registers a replicated scheme.
func (c *Config) SetReplicated(table string) *Config {
	return c.Set(&TableScheme{Table: table, Method: Replicated})
}

// SetPref registers a PREF scheme: table references refTable under the
// equi-predicate table.cols[i] = refTable.refCols[i].
func (c *Config) SetPref(tbl, refTable string, cols, refCols []string) *Config {
	return c.Set(&TableScheme{
		Table: tbl, Method: Pref, RefTable: refTable,
		Pred: Predicate{ReferencingCols: cols, ReferencedCols: refCols},
	})
}

// Scheme returns the scheme for a table, or nil.
func (c *Config) Scheme(table string) *TableScheme { return c.Schemes[table] }

// SeedTable resolves the seed table of a table's PREF chain: the first
// table along the partitioning-predicate path that is not PREF partitioned
// (Definition 1). For a non-PREF table it returns the table itself.
// It returns an error on a dangling reference or a cycle.
func (c *Config) SeedTable(table string) (string, error) {
	seen := map[string]bool{}
	cur := table
	for {
		ts := c.Schemes[cur]
		if ts == nil {
			return "", fmt.Errorf("partition: no scheme for table %s", cur)
		}
		if ts.Method != Pref {
			return cur, nil
		}
		if seen[cur] {
			return "", fmt.Errorf("partition: PREF cycle through table %s", cur)
		}
		seen[cur] = true
		cur = ts.RefTable
	}
}

// Chain returns the PREF reference chain from a table down to (and
// including) its seed table, e.g. [customer orders lineitem].
func (c *Config) Chain(table string) ([]string, error) {
	if _, err := c.SeedTable(table); err != nil {
		return nil, err
	}
	var chain []string
	cur := table
	for {
		chain = append(chain, cur)
		ts := c.Schemes[cur]
		if ts.Method != Pref {
			return chain, nil
		}
		cur = ts.RefTable
	}
}

// HashEquivalent reports whether a table's placement under this
// configuration is provably identical to hash partitioning on some of its
// own columns, and returns those columns. A hash table trivially is. A
// PREF table is hash-equivalent when its referenced table is
// hash-equivalent on columns that are a subset of the partitioning
// predicate's referenced columns: equal predicate values then imply a
// single partition, so every tuple has exactly one copy placed exactly
// where a hash on the paired referencing columns would put it (the
// partitioner places orphans accordingly). This is what makes the
// ORDERS-PREF-on-LINEITEM(hash orderkey) scheme of Figure 1 behave like a
// plain hash co-partitioning.
func (c *Config) HashEquivalent(table string) ([]string, bool) {
	seen := map[string]bool{}
	var walk func(string) ([]string, bool)
	walk = func(t string) ([]string, bool) {
		if seen[t] {
			return nil, false
		}
		seen[t] = true
		ts := c.Schemes[t]
		if ts == nil {
			return nil, false
		}
		switch ts.Method {
		case Hash:
			return ts.Cols, true
		case Pref:
			parentCols, ok := walk(ts.RefTable)
			if !ok {
				return nil, false
			}
			// Map each parent hash column through the predicate pairing.
			mapped := make([]string, 0, len(parentCols))
			for _, pc := range parentCols {
				found := false
				for i, rc := range ts.Pred.ReferencedCols {
					if rc == pc {
						mapped = append(mapped, ts.Pred.ReferencingCols[i])
						found = true
						break
					}
				}
				if !found {
					return nil, false
				}
			}
			return mapped, true
		default:
			return nil, false
		}
	}
	return walk(table)
}

// DupFree reports whether a table provably contains no PREF duplicates
// under this configuration: hash/round-robin/range tables trivially;
// a PREF table when it is hash-equivalent, or when its referenced table is
// itself duplicate-free and the referenced predicate columns contain that
// table's primary key (each referencing tuple then has at most one
// partitioning partner, hence exactly one stored copy). This is the
// Section 3.4 redundancy-free chain condition, proved statically.
func (c *Config) DupFree(s *catalog.Schema, table string) bool {
	seen := map[string]bool{}
	var walk func(string) bool
	walk = func(t string) bool {
		if seen[t] {
			return false
		}
		seen[t] = true
		ts := c.Schemes[t]
		if ts == nil {
			return false
		}
		switch ts.Method {
		case Hash, RoundRobin, Range:
			return true
		case Pref:
			if _, ok := c.HashEquivalent(t); ok {
				return true
			}
			ref := s.Table(ts.RefTable)
			if ref == nil {
				return false
			}
			if !pkSubset(ref.PK, ts.Pred.ReferencedCols) {
				return false
			}
			return walk(ts.RefTable)
		default:
			return false
		}
	}
	return walk(table)
}

// pkSubset reports whether pk is non-empty and every pk column appears in
// cols (cols functionally determine at most one referenced row).
func pkSubset(pk, cols []string) bool {
	if len(pk) == 0 {
		return false
	}
	set := map[string]bool{}
	for _, c := range cols {
		set[c] = true
	}
	for _, p := range pk {
		if !set[p] {
			return false
		}
	}
	return true
}

// SchemeSignature returns a deep identity string for a table's scheme:
// the scheme itself plus, for PREF, the full chain down to the seed. Two
// tables partitioned identically in different configurations (e.g. in two
// WD merge groups) have equal signatures, which is the Section 4.3 rule
// for not duplicating a table in the final partitioned database.
func (c *Config) SchemeSignature(table string) (string, error) {
	chain, err := c.Chain(table)
	if err != nil {
		return "", err
	}
	parts := make([]string, 0, len(chain)+1)
	parts = append(parts, fmt.Sprintf("n=%d", c.NumPartitions))
	for _, t := range chain {
		parts = append(parts, c.Schemes[t].String())
	}
	return strings.Join(parts, ";"), nil
}

// Validate checks the configuration against a schema: every scheme's table
// and columns exist, PREF chains are acyclic and terminate at a seed, and
// the partition count is positive.
func (c *Config) Validate(s *catalog.Schema) error {
	if c.NumPartitions < 1 {
		return fmt.Errorf("partition: NumPartitions = %d, want >= 1", c.NumPartitions)
	}
	for name, ts := range c.Schemes {
		t := s.Table(name)
		if t == nil {
			return fmt.Errorf("partition: scheme for unknown table %s", name)
		}
		switch ts.Method {
		case Hash:
			if len(ts.Cols) == 0 {
				return fmt.Errorf("partition: table %s: HASH needs columns", name)
			}
			if _, err := t.ColIndexes(ts.Cols); err != nil {
				return err
			}
		case Range:
			if len(ts.Cols) != 1 {
				return fmt.Errorf("partition: table %s: RANGE needs exactly one column", name)
			}
			if _, err := t.ColIndexes(ts.Cols); err != nil {
				return err
			}
			if len(ts.Bounds) != c.NumPartitions-1 {
				return fmt.Errorf("partition: table %s: RANGE needs %d bounds, got %d",
					name, c.NumPartitions-1, len(ts.Bounds))
			}
			for i := 1; i < len(ts.Bounds); i++ {
				if ts.Bounds[i] <= ts.Bounds[i-1] {
					return fmt.Errorf("partition: table %s: RANGE bounds not ascending", name)
				}
			}
		case Pref:
			ref := s.Table(ts.RefTable)
			if ref == nil {
				return fmt.Errorf("partition: table %s: PREF references unknown table %s", name, ts.RefTable)
			}
			if len(ts.Pred.ReferencingCols) == 0 ||
				len(ts.Pred.ReferencingCols) != len(ts.Pred.ReferencedCols) {
				return fmt.Errorf("partition: table %s: bad PREF predicate", name)
			}
			if _, err := t.ColIndexes(ts.Pred.ReferencingCols); err != nil {
				return err
			}
			if _, err := ref.ColIndexes(ts.Pred.ReferencedCols); err != nil {
				return err
			}
			if _, err := c.SeedTable(name); err != nil {
				return err
			}
		case RoundRobin, Replicated:
			// nothing to check
		default:
			return fmt.Errorf("partition: table %s: unknown method %v", name, ts.Method)
		}
	}
	return nil
}

// Order returns the tables of the config in a partitioning order:
// every PREF-referenced table precedes its referencing tables.
func (c *Config) Order() ([]string, error) {
	names := make([]string, 0, len(c.Schemes))
	for n := range c.Schemes {
		names = append(names, n)
	}
	sort.Strings(names)

	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(n string) error {
		switch state[n] {
		case 1:
			return fmt.Errorf("partition: PREF cycle through table %s", n)
		case 2:
			return nil
		}
		state[n] = 1
		ts := c.Schemes[n]
		if ts == nil {
			return fmt.Errorf("partition: no scheme for table %s", n)
		}
		if ts.Method == Pref {
			if err := visit(ts.RefTable); err != nil {
				return err
			}
		}
		state[n] = 2
		order = append(order, n)
		return nil
	}
	for _, n := range names {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// String renders the configuration deterministically, one scheme per line.
func (c *Config) String() string {
	names := make([]string, 0, len(c.Schemes))
	for n := range c.Schemes {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	fmt.Fprintf(&sb, "partitions=%d\n", c.NumPartitions)
	for _, n := range names {
		sb.WriteString("  " + c.Schemes[n].String() + "\n")
	}
	return sb.String()
}

// Clone returns a deep copy of the configuration.
func (c *Config) Clone() *Config {
	out := NewConfig(c.NumPartitions)
	for n, ts := range c.Schemes {
		cp := *ts
		cp.Cols = append([]string(nil), ts.Cols...)
		cp.Bounds = append([]int64(nil), ts.Bounds...)
		cp.Pred.ReferencingCols = append([]string(nil), ts.Pred.ReferencingCols...)
		cp.Pred.ReferencedCols = append([]string(nil), ts.Pred.ReferencedCols...)
		out.Schemes[n] = &cp
	}
	return out
}
