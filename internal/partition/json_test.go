package partition

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := chainConfig(10)
	cfg.Set(&TableScheme{Table: "extra_range", Method: Range,
		Cols: []string{"k"}, Bounds: []int64{5, 10, 15, 20, 25, 30, 35, 40, 45}})
	cfg.SetReplicated("extra_repl")

	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumPartitions != 10 {
		t.Fatalf("partitions = %d", back.NumPartitions)
	}
	if len(back.Schemes) != len(cfg.Schemes) {
		t.Fatalf("schemes = %d, want %d", len(back.Schemes), len(cfg.Schemes))
	}
	for name, orig := range cfg.Schemes {
		got := back.Schemes[name]
		if got == nil {
			t.Fatalf("missing scheme for %s", name)
		}
		if got.String() != orig.String() {
			t.Fatalf("%s: %s != %s", name, got.String(), orig.String())
		}
	}
	// Seed resolution survives.
	seed, err := back.SeedTable("customer")
	if err != nil || seed != "lineitem" {
		t.Fatalf("seed = %s, %v", seed, err)
	}
}

func TestConfigJSONDeterministic(t *testing.T) {
	a, _ := json.Marshal(chainConfig(4))
	b, _ := json.Marshal(chainConfig(4))
	if string(a) != string(b) {
		t.Fatal("serialization must be deterministic")
	}
	if !strings.Contains(string(a), `"method":"pref"`) {
		t.Fatalf("unexpected json:\n%s", a)
	}
}

func TestConfigJSONErrors(t *testing.T) {
	bad := []string{
		`{"partitions":0,"tables":[]}`,
		`{"partitions":2,"tables":[{"table":"t","method":"nope"}]}`,
		`{"partitions":2,"tables":[{"method":"hash"}]}`,
		`{"partitions":2,"tables":[{"table":"t","method":"hash"},{"table":"t","method":"hash"}]}`,
		`{invalid`,
	}
	for i, s := range bad {
		var c Config
		if err := json.Unmarshal([]byte(s), &c); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}
