package partition

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pref/internal/catalog"
	"pref/internal/table"
	"pref/internal/value"
)

// testDB builds a small customer/orders/lineitem database with a known
// fan-out: nCust customers, each with ordersPer orders, each with linesPer
// lineitems.
func testDB(t *testing.T, nCust, ordersPer, linesPer int) *table.Database {
	t.Helper()
	s := catalog.NewSchema("t")
	s.MustAddTable(catalog.MustTable("customer",
		[]catalog.Column{{Name: "custkey", Kind: value.Int}, {Name: "nation", Kind: value.Int}}, "custkey"))
	s.MustAddTable(catalog.MustTable("orders",
		[]catalog.Column{{Name: "orderkey", Kind: value.Int}, {Name: "custkey", Kind: value.Int}}, "orderkey"))
	s.MustAddTable(catalog.MustTable("lineitem",
		[]catalog.Column{{Name: "linekey", Kind: value.Int}, {Name: "orderkey", Kind: value.Int}}, "linekey"))
	db := table.NewDatabase(s)
	line := int64(0)
	order := int64(0)
	for c := int64(0); c < int64(nCust); c++ {
		db.Tables["customer"].MustAppend(value.Tuple{c, c % 25})
		for o := 0; o < ordersPer; o++ {
			db.Tables["orders"].MustAppend(value.Tuple{order, c})
			for l := 0; l < linesPer; l++ {
				db.Tables["lineitem"].MustAppend(value.Tuple{line, order})
				line++
			}
			order++
		}
	}
	return db
}

func chainConfig(n int) *Config {
	cfg := NewConfig(n)
	cfg.SetHash("lineitem", "linekey")
	cfg.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	cfg.SetPref("customer", "orders", []string{"custkey"}, []string{"custkey"})
	return cfg
}

func TestApplyChain(t *testing.T) {
	db := testDB(t, 20, 3, 4)
	pdb, err := Apply(db, chainConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	// Hash table: no duplicates, all rows present.
	li := pdb.Tables["lineitem"]
	if li.StoredRows() != db.Tables["lineitem"].Len() {
		t.Fatalf("lineitem stored %d, want %d", li.StoredRows(), db.Tables["lineitem"].Len())
	}
	if li.DuplicateRows() != 0 {
		t.Fatal("hash partitioning must not duplicate")
	}
	// PREF tables: at least one copy per original tuple.
	for _, name := range []string{"orders", "customer"} {
		pt := pdb.Tables[name]
		if pt.StoredRows() < pt.OriginalRows {
			t.Fatalf("%s lost tuples: %d < %d", name, pt.StoredRows(), pt.OriginalRows)
		}
	}
	// Co-location: every orders tuple must find its lineitems locally.
	// (joining orders⋈lineitem per partition must yield all pairs)
	localPairs := 0
	for p := range li.Parts {
		orderKeys := map[int64]bool{}
		for _, r := range pdb.Tables["orders"].Parts[p].Rows {
			orderKeys[r[0]] = true
		}
		for _, r := range li.Parts[p].Rows {
			if !orderKeys[r[1]] {
				t.Fatalf("partition %d: lineitem %v has no local order", p, r)
			}
			localPairs++
		}
	}
	if localPairs != db.Tables["lineitem"].Len() {
		t.Fatalf("local join pairs = %d, want %d", localPairs, db.Tables["lineitem"].Len())
	}
}

func TestPrefFullLocalityUpChain(t *testing.T) {
	// customer PREF on orders: every orders tuple (in every partition copy)
	// must find its customer in the same partition.
	db := testDB(t, 10, 2, 3)
	pdb, err := Apply(db, chainConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for p := range pdb.Tables["orders"].Parts {
		custKeys := map[int64]bool{}
		for _, r := range pdb.Tables["customer"].Parts[p].Rows {
			custKeys[r[0]] = true
		}
		for _, r := range pdb.Tables["orders"].Parts[p].Rows {
			if !custKeys[r[1]] {
				t.Fatalf("partition %d: order %v has no local customer", p, r)
			}
		}
	}
}

func TestReplicated(t *testing.T) {
	db := testDB(t, 5, 1, 1)
	cfg := chainConfig(4)
	cfg.SetReplicated("customer")
	// orders can't PREF a replicated table in this config; re-point it.
	cfg.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	pdb, err := Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := pdb.Tables["customer"]
	if !c.Replicated {
		t.Fatal("customer should be marked replicated")
	}
	if c.StoredRows() != 4*5 {
		t.Fatalf("replicated stored = %d, want 20", c.StoredRows())
	}
	if got := c.Redundancy(); got != 3.0 {
		t.Fatalf("replicated redundancy = %v, want n-1 = 3", got)
	}
	for p := 0; p < 4; p++ {
		if c.Parts[p].Len() != 5 {
			t.Fatalf("partition %d has %d rows, want 5", p, c.Parts[p].Len())
		}
	}
}

func TestRoundRobin(t *testing.T) {
	db := testDB(t, 9, 1, 1)
	cfg := NewConfig(3)
	cfg.Set(&TableScheme{Table: "customer", Method: RoundRobin})
	cfg.Set(&TableScheme{Table: "orders", Method: RoundRobin})
	cfg.Set(&TableScheme{Table: "lineitem", Method: RoundRobin})
	pdb, err := Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if got := pdb.Tables["customer"].Parts[p].Len(); got != 3 {
			t.Fatalf("rr partition %d = %d rows, want 3", p, got)
		}
	}
}

func TestRangePartitioning(t *testing.T) {
	db := testDB(t, 10, 1, 1)
	cfg := NewConfig(3)
	cfg.Set(&TableScheme{Table: "customer", Method: Range, Cols: []string{"custkey"}, Bounds: []int64{3, 7}})
	cfg.Set(&TableScheme{Table: "orders", Method: RoundRobin})
	cfg.Set(&TableScheme{Table: "lineitem", Method: RoundRobin})
	pdb, err := Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := pdb.Tables["customer"]
	if c.Parts[0].Len() != 3 || c.Parts[1].Len() != 4 || c.Parts[2].Len() != 3 {
		t.Fatalf("range sizes = %d/%d/%d, want 3/4/3",
			c.Parts[0].Len(), c.Parts[1].Len(), c.Parts[2].Len())
	}
	for _, r := range c.Parts[0].Rows {
		if r[0] >= 3 {
			t.Fatalf("partition 0 contains %d", r[0])
		}
	}
}

func TestRangePartitionFunc(t *testing.T) {
	bounds := []int64{10, 20, 30}
	cases := map[int64]int{-5: 0, 9: 0, 10: 1, 19: 1, 20: 2, 29: 2, 30: 3, 100: 3}
	for v, want := range cases {
		if got := rangePartition(v, bounds); got != want {
			t.Errorf("rangePartition(%d) = %d, want %d", v, got, want)
		}
	}
	if rangePartition(5, nil) != 0 {
		t.Error("no bounds → partition 0")
	}
}

func TestOrphansRoundRobin(t *testing.T) {
	// Orders referencing customers that don't exist must still be stored
	// (condition 2) and spread round-robin with hasRef=0. The referenced
	// table is hashed on a non-predicate column so the configuration is
	// not hash-equivalent (that case is tested separately).
	s := catalog.NewSchema("t")
	s.MustAddTable(catalog.MustTable("customer",
		[]catalog.Column{{Name: "custkey", Kind: value.Int}, {Name: "region", Kind: value.Int}}, "custkey"))
	s.MustAddTable(catalog.MustTable("orders",
		[]catalog.Column{{Name: "orderkey", Kind: value.Int}, {Name: "custkey", Kind: value.Int}}, "orderkey"))
	db := table.NewDatabase(s)
	db.Tables["customer"].MustAppend(value.Tuple{1, 1})
	for i := int64(0); i < 6; i++ {
		db.Tables["orders"].MustAppend(value.Tuple{i, 999}) // all orphans
	}
	cfg := NewConfig(3)
	cfg.SetHash("customer", "region")
	cfg.SetPref("orders", "customer", []string{"custkey"}, []string{"custkey"})
	pdb, err := Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := pdb.Tables["orders"]
	if o.StoredRows() != 6 || o.DuplicateRows() != 0 {
		t.Fatalf("orphans stored=%d dups=%d, want 6/0", o.StoredRows(), o.DuplicateRows())
	}
	for p := 0; p < 3; p++ {
		if o.Parts[p].Len() != 2 {
			t.Fatalf("orphan spread uneven: partition %d has %d", p, o.Parts[p].Len())
		}
		for i := range o.Parts[p].Rows {
			if o.Parts[p].HasRef.Get(i) {
				t.Fatal("orphan must have hasRef=0")
			}
		}
	}
}

func TestHashEquivalentOrphanPlacement(t *testing.T) {
	// With customer hashed on the predicate column, orders are
	// hash-equivalent and orphans are placed by hash (not round-robin),
	// preserving the equivalence.
	s := catalog.NewSchema("t")
	s.MustAddTable(catalog.MustTable("customer",
		[]catalog.Column{{Name: "custkey", Kind: value.Int}}, "custkey"))
	s.MustAddTable(catalog.MustTable("orders",
		[]catalog.Column{{Name: "orderkey", Kind: value.Int}, {Name: "custkey", Kind: value.Int}}, "orderkey"))
	db := table.NewDatabase(s)
	db.Tables["customer"].MustAppend(value.Tuple{1})
	for i := int64(0); i < 6; i++ {
		db.Tables["orders"].MustAppend(value.Tuple{i, 999}) // orphans, same key
	}
	cfg := NewConfig(3)
	cfg.SetHash("customer", "custkey")
	cfg.SetPref("orders", "customer", []string{"custkey"}, []string{"custkey"})
	if _, ok := cfg.HashEquivalent("orders"); !ok {
		t.Fatal("orders should be hash-equivalent")
	}
	pdb, err := Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int(value.MakeKey1(999).Hash() % 3)
	o := pdb.Tables["orders"]
	for p := 0; p < 3; p++ {
		wantLen := 0
		if p == want {
			wantLen = 6
		}
		if o.Parts[p].Len() != wantLen {
			t.Fatalf("partition %d has %d rows, want %d (hash placement)", p, o.Parts[p].Len(), wantLen)
		}
	}
}

func TestHashEquivalent(t *testing.T) {
	cfg := chainConfig(4) // lineitem HASH(linekey); orders/customer PREF
	if _, ok := cfg.HashEquivalent("orders"); ok {
		t.Fatal("orders is not hash-equivalent when the seed hashes on linekey")
	}
	if cols, ok := cfg.HashEquivalent("lineitem"); !ok || cols[0] != "linekey" {
		t.Fatal("hash table must be hash-equivalent on its own columns")
	}

	cfg2 := NewConfig(4)
	cfg2.SetHash("lineitem", "orderkey")
	cfg2.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	cfg2.SetPref("customer", "orders", []string{"custkey"}, []string{"custkey"})
	cols, ok := cfg2.HashEquivalent("orders")
	if !ok || len(cols) != 1 || cols[0] != "orderkey" {
		t.Fatalf("orders hash-equivalence = %v %v, want [orderkey]", cols, ok)
	}
	// customer's predicate column (custkey) does not cover orders'
	// equivalent hash column (orderkey): not equivalent.
	if _, ok := cfg2.HashEquivalent("customer"); ok {
		t.Fatal("customer must not be hash-equivalent")
	}
}

func TestHashEquivalentNoDuplicates(t *testing.T) {
	// A hash-equivalent PREF table must come out of partitioning with
	// zero duplicates and exactly hash placement.
	db := testDB(t, 10, 3, 4)
	cfg := NewConfig(5)
	cfg.SetHash("lineitem", "orderkey")
	cfg.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	cfg.SetPref("customer", "orders", []string{"custkey"}, []string{"custkey"})
	pdb, err := Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := pdb.Tables["orders"]
	if o.DuplicateRows() != 0 {
		t.Fatalf("hash-equivalent orders has %d duplicates", o.DuplicateRows())
	}
	ok := o.Meta.ColIndex("orderkey")
	for p, part := range o.Parts {
		for _, r := range part.Rows {
			if int(value.MakeKey1(r[ok]).Hash()%5) != p {
				t.Fatalf("order %v in partition %d, not at its hash position", r, p)
			}
		}
	}
}

func TestConfigValidate(t *testing.T) {
	db := testDB(t, 1, 1, 1)
	s := db.Schema

	bad := []*Config{
		NewConfig(0).SetHash("customer", "custkey"),
		NewConfig(2).SetHash("nope", "x"),
		NewConfig(2).SetHash("customer"),
		NewConfig(2).SetHash("customer", "nope"),
		NewConfig(2).SetPref("orders", "nope", []string{"custkey"}, []string{"custkey"}),
		NewConfig(2).SetPref("orders", "customer", []string{"nope"}, []string{"custkey"}),
		NewConfig(2).SetPref("orders", "customer", []string{"custkey"}, []string{"nope"}),
		NewConfig(2).SetPref("orders", "customer", nil, nil),
	}
	for i, cfg := range bad {
		if err := cfg.Validate(s); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}

	// Cycle: orders → customer → orders.
	cyc := NewConfig(2)
	cyc.SetPref("orders", "customer", []string{"custkey"}, []string{"custkey"})
	cyc.SetPref("customer", "orders", []string{"custkey"}, []string{"custkey"})
	if err := cyc.Validate(s); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle must be rejected, got %v", err)
	}
}

func TestSeedTableAndChain(t *testing.T) {
	cfg := chainConfig(4)
	seed, err := cfg.SeedTable("customer")
	if err != nil {
		t.Fatal(err)
	}
	if seed != "lineitem" {
		t.Fatalf("seed = %s, want lineitem", seed)
	}
	chain, err := cfg.Chain("customer")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"customer", "orders", "lineitem"}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain = %v, want %v", chain, want)
		}
	}
	if seed, _ := cfg.SeedTable("lineitem"); seed != "lineitem" {
		t.Fatal("seed of non-PREF table is itself")
	}
}

func TestOrderReferencedFirst(t *testing.T) {
	cfg := chainConfig(2)
	order, err := cfg.Order()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos["lineitem"] > pos["orders"] || pos["orders"] > pos["customer"] {
		t.Fatalf("order = %v", order)
	}
}

func TestApplyMissingScheme(t *testing.T) {
	db := testDB(t, 1, 1, 1)
	cfg := NewConfig(2)
	cfg.SetHash("customer", "custkey")
	if _, err := Apply(db, cfg); err == nil {
		t.Fatal("Apply must reject configs not covering all tables")
	}
}

func TestPredicateEqual(t *testing.T) {
	a := Predicate{ReferencingCols: []string{"a", "b"}, ReferencedCols: []string{"x", "y"}}
	b := Predicate{ReferencingCols: []string{"b", "a"}, ReferencedCols: []string{"y", "x"}}
	c := Predicate{ReferencingCols: []string{"a", "b"}, ReferencedCols: []string{"y", "x"}}
	if !a.Equal(b) {
		t.Fatal("conjunct order must not matter")
	}
	if a.Equal(c) {
		t.Fatal("different pairings are different predicates")
	}
	if a.Equal(Predicate{ReferencingCols: []string{"a"}, ReferencedCols: []string{"x"}}) {
		t.Fatal("different lengths are different predicates")
	}
}

func TestConfigCloneIndependent(t *testing.T) {
	cfg := chainConfig(4)
	cp := cfg.Clone()
	cp.Schemes["orders"].RefTable = "customer"
	cp.Schemes["orders"].Pred.ReferencingCols[0] = "zzz"
	if cfg.Schemes["orders"].RefTable != "lineitem" {
		t.Fatal("Clone must deep-copy schemes")
	}
	if cfg.Schemes["orders"].Pred.ReferencingCols[0] != "orderkey" {
		t.Fatal("Clone must deep-copy predicate columns")
	}
}

func TestConfigString(t *testing.T) {
	s := chainConfig(4).String()
	for _, want := range []string{"partitions=4", "lineitem HASH(linekey)", "orders PREF on lineitem"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Config.String missing %q:\n%s", want, s)
		}
	}
}

// Property: PREF never loses tuples and the number of dup=0 copies equals
// the original cardinality, for random referenced placements and random
// referencing multiplicities.
func TestPrefInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)

		s := catalog.NewSchema("p")
		s.MustAddTable(catalog.MustTable("s",
			[]catalog.Column{{Name: "k", Kind: value.Int}}, "k"))
		s.MustAddTable(catalog.MustTable("r",
			[]catalog.Column{{Name: "id", Kind: value.Int}, {Name: "k", Kind: value.Int}}, "id"))

		// Referenced table: keys 0..9, each placed in 1..n random partitions.
		ref := table.NewPartitioned(s.Table("s"), n)
		for k := int64(0); k < 10; k++ {
			placed := map[int]bool{}
			for c := 0; c <= rng.Intn(n); c++ {
				placed[rng.Intn(n)] = true
			}
			first := true
			for p := 0; p < n; p++ {
				if placed[p] {
					ref.Parts[p].Append(value.Tuple{k}, !first, false)
					first = false
				}
			}
			ref.OriginalRows++
		}

		rd := table.NewData(s.Table("r"))
		m := 1 + rng.Intn(40)
		for i := 0; i < m; i++ {
			rd.MustAppend(value.Tuple{int64(i), int64(rng.Intn(14))}) // keys 10..13 are orphans
		}
		pt, err := ApplyPref(rd, &TableScheme{
			Table: "r", Method: Pref, RefTable: "s",
			Pred: Predicate{ReferencingCols: []string{"k"}, ReferencedCols: []string{"k"}},
		}, ref)
		if err != nil {
			return false
		}
		// Invariant 1: dup=0 count == original cardinality.
		nonDup := 0
		for _, p := range pt.Parts {
			nonDup += p.Len() - p.Dup.Count()
		}
		if nonDup != m {
			return false
		}
		// Invariant 2: stored >= original.
		if pt.StoredRows() < m {
			return false
		}
		// Invariant 3: co-location — every hasRef tuple has a local partner.
		for p := range pt.Parts {
			keys := map[int64]bool{}
			for _, r := range ref.Parts[p].Rows {
				keys[r[0]] = true
			}
			for i, r := range pt.Parts[p].Rows {
				if pt.Parts[p].HasRef.Get(i) != keys[r[1]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
