// Package testutil holds helpers shared by the repo's test suites. The
// soak tests (engine chaos, write chaos, serve) all end with the same
// contract — every goroutine the run spawned must be gone once the last
// query drains — so the leak checker lives here once instead of being
// re-derived per soak.
package testutil

import (
	"runtime"
	"time"

	"testing"
)

// leakSettle is how long CheckGoroutineLeaks waits for goroutine counts to
// settle before declaring a leak. Loser goroutines of hedge races and
// cancelled units unwind asynchronously after their query returns; the
// settle window absorbs that without hiding a genuine leak (a leaked
// goroutine never exits, so no window length would save it).
const leakSettle = 2 * time.Second

// CheckGoroutineLeaks snapshots the current goroutine count and returns a
// verify function for the end of the test: it polls until the count
// settles back to the snapshot (or leakSettle expires) and fails the test
// if goroutines remain. Call it before spawning any work:
//
//	verify := testutil.CheckGoroutineLeaks(t)
//	... soak ...
//	verify()
func CheckGoroutineLeaks(t testing.TB) func() {
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(leakSettle)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if g := runtime.NumGoroutine(); g > before {
			t.Fatalf("goroutines leaked: %d before, %d after settle", before, g)
		}
	}
}
