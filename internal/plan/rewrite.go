package plan

import (
	"fmt"
	"strings"

	"pref/internal/catalog"
	"pref/internal/partition"
	"pref/internal/value"
)

// Options toggles the query optimizations of Section 2.2, so the
// effectiveness experiment of Figure 9 can run both ways.
type Options struct {
	// DisableHasRefOpt turns off rewriting semi/anti joins against the
	// referenced table into hasRef-index filters.
	DisableHasRefOpt bool
	// DisableDupIndex turns off the dup-bitmap-based local duplicate
	// elimination; PREF duplicates are then removed by a full value-based
	// distinct with repartitioning.
	DisableDupIndex bool
	// Sizes supplies base-table cardinalities; when present, misaligned
	// equi joins may broadcast a much smaller side instead of
	// re-partitioning both (nil disables the heuristic).
	Sizes map[string]int
	// DisablePruning turns off partition pruning for point filters on
	// partitioning columns (ablation).
	DisablePruning bool
}

// Rewritten is the output of the rewrite: a physical plan annotated with
// the schema of every operator and the root's properties. Catalog and Cfg
// record the inputs the plan was rewritten against, so a static verifier
// (internal/check) can re-derive every property without extra plumbing.
type Rewritten struct {
	Root    Node
	Schemas map[Node]Schema
	Props   map[Node]*Prop
	Catalog *catalog.Schema
	Cfg     *partition.Config
}

// Schema returns the annotated schema of a node.
func (r *Rewritten) Schema(n Node) Schema { return r.Schemas[n] }

// RootProp returns the properties of the root operator.
func (r *Rewritten) RootProp() *Prop { return r.Props[r.Root] }

// Explain renders the physical plan with each operator's partitioning
// properties — an EXPLAIN for the Section 2.2 rewrite.
func (r *Rewritten) Explain() string {
	var sb strings.Builder
	var walk func(Node, int)
	walk = func(n Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.String())
		if p := r.Props[n]; p != nil {
			sb.WriteString("   ")
			sb.WriteString(p.String())
		}
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(r.Root, 0)
	return sb.String()
}

// Rewriter performs the bottom-up rewrite of Section 2.2 against one
// partitioned database configuration.
type Rewriter struct {
	Schema *catalog.Schema
	Cfg    *partition.Config
	Opt    Options

	out     *Rewritten
	aliases map[string]bool
}

// Rewrite turns a logical SPJA plan into an executable physical plan:
// it decides per operator whether the inputs need re-partitioning or
// PREF-duplicate elimination, and applies the hasRef semi/anti-join
// optimizations.
func Rewrite(root Node, schema *catalog.Schema, cfg *partition.Config, opt Options) (*Rewritten, error) {
	r := &Rewriter{
		Schema: schema,
		Cfg:    cfg,
		Opt:    opt,
		out: &Rewritten{
			Schemas: map[Node]Schema{}, Props: map[Node]*Prop{},
			Catalog: schema, Cfg: cfg,
		},
		aliases: map[string]bool{},
	}
	phys, prop, sch, err := r.rewrite(root)
	if err != nil {
		return nil, err
	}
	phys, prop, sch, err = r.finalizeRoot(phys, prop, sch)
	if err != nil {
		return nil, err
	}
	r.out.Root = phys
	r.out.Schemas[phys] = sch
	r.out.Props[phys] = prop
	return r.out, nil
}

// finalizeRoot makes a plan's output presentable: PREF duplicates are
// eliminated (the paper assumes a top-level projection does this) and the
// hidden index columns are dropped. TopK roots re-apply their final pass
// above the cleanup so ordering survives.
func (r *Rewriter) finalizeRoot(root Node, prop *Prop, sch Schema) (Node, *Prop, Schema, error) {
	if topk, ok := root.(*TopKNode); ok && topk.Final {
		child, cprop, csch, err := r.finalizeRoot(topk.Child, r.out.Props[topk.Child], r.out.Schemas[topk.Child])
		if err != nil {
			return nil, nil, nil, err
		}
		if child == topk.Child {
			return root, prop, sch, nil
		}
		nt := &TopKNode{Child: child, Order: topk.Order, Limit: topk.Limit, Final: true}
		_ = cprop
		n, p, s := r.note(nt, csch, prop)
		return n, p, s, nil
	}

	root, prop, sch = r.dedup(root, prop, sch)
	hidden := false
	for _, f := range sch {
		if IsHiddenCol(f.Name) {
			hidden = true
			break
		}
	}
	if !hidden {
		return root, prop, sch, nil
	}
	var names []string
	var exprs []ValExpr
	out := make(Schema, 0, len(sch))
	for _, f := range sch {
		if IsHiddenCol(f.Name) {
			continue
		}
		names = append(names, f.Name)
		exprs = append(exprs, Col(f.Name))
		out = append(out, f)
	}
	p := &ProjectNode{Child: root, Exprs: exprs, Names: names}
	n, pr, s := r.note(p, out, prop.Clone())
	return n, pr, s, nil
}

// note records the annotation of a produced physical node.
func (r *Rewriter) note(n Node, sch Schema, p *Prop) (Node, *Prop, Schema) {
	r.out.Schemas[n] = sch
	r.out.Props[n] = p
	return n, p, sch
}

func (r *Rewriter) rewrite(n Node) (Node, *Prop, Schema, error) {
	switch n := n.(type) {
	case *ScanNode:
		return r.rewriteScan(n)
	case *FilterNode:
		return r.rewriteFilter(n)
	case *ProjectNode:
		return r.rewriteProject(n)
	case *JoinNode:
		return r.rewriteJoin(n)
	case *AggregateNode:
		return r.rewriteAggregate(n)
	case *TopKNode:
		return r.rewriteTopK(n)
	default:
		return nil, nil, nil, fmt.Errorf("plan: cannot rewrite node %T (already physical?)", n)
	}
}

func (r *Rewriter) rewriteScan(n *ScanNode) (Node, *Prop, Schema, error) {
	t := r.Schema.Table(n.Table)
	if t == nil {
		return nil, nil, nil, fmt.Errorf("plan: unknown table %s", n.Table)
	}
	if r.aliases[n.Alias] {
		return nil, nil, nil, fmt.Errorf("plan: duplicate alias %s", n.Alias)
	}
	r.aliases[n.Alias] = true
	ts := r.Cfg.Scheme(n.Table)
	if ts == nil {
		return nil, nil, nil, fmt.Errorf("plan: table %s has no partitioning scheme", n.Table)
	}

	sch := make(Schema, 0, t.NumCols()+2)
	for _, c := range t.Columns {
		sch = append(sch, Field{Name: Qualify(n.Alias, c.Name), Kind: c.Kind})
	}
	prop := &Prop{Parts: r.Cfg.NumPartitions, Placed: map[string]PlacedEntry{}}
	switch ts.Method {
	case partition.Replicated:
		prop.Repl = true
	case partition.Hash:
		prop.HashCols = qualifyAll(n.Alias, ts.Cols)
		prop.Placed[n.Alias] = PlacedEntry{Table: n.Table, Scheme: ts}
	case partition.Pref:
		sch = append(sch,
			Field{Name: DupCol(n.Alias), Kind: value.Int},
			Field{Name: HasRefCol(n.Alias), Kind: value.Int},
		)
		prop.Placed[n.Alias] = PlacedEntry{Table: n.Table, Scheme: ts}
		if mapped, ok := r.Cfg.HashEquivalent(n.Table); ok {
			// The whole PREF chain bottoms out at a hash seed on the
			// predicate columns: placement is provably identical to hash
			// partitioning on the mapped columns, duplicate-free. This
			// unlocks case (1) joins, local aggregation, and safe
			// semi/anti/outer execution on this table.
			prop.HashCols = qualifyAll(n.Alias, mapped)
		} else if !r.Cfg.DupFree(r.Schema, n.Table) {
			// Redundancy-free chains (unique-key references all the way
			// to a duplicate-free seed, Section 3.4) provably store each
			// tuple once; only genuinely duplicated tables carry live
			// dup columns.
			prop.DupCols = []string{DupCol(n.Alias)}
		}
	default: // RoundRobin, Range: placement known but not join-exploitable
		prop.Placed[n.Alias] = PlacedEntry{Table: n.Table, Scheme: ts}
	}
	node, p, s := r.note(n, sch, prop)
	return node, p, s, nil
}

func (r *Rewriter) rewriteFilter(n *FilterNode) (Node, *Prop, Schema, error) {
	child, prop, sch, err := r.rewrite(n.Child)
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := n.Pred.Bind(sch); err != nil {
		return nil, nil, nil, err
	}
	if !r.Opt.DisablePruning {
		r.tryPrune(child, prop, n.Pred)
	}
	f := &FilterNode{Child: child, Pred: n.Pred}
	node, p, s := r.note(f, sch, prop.Clone())
	return node, p, s, nil
}

// tryPrune restricts a scanned table to the single partition that can
// contain matching rows when the filter pins all partitioning columns to
// constants. Sound for hash tables, hash-equivalent PREF chains (their
// placement — including orphans — is exactly the hash function), and
// range tables. This is the "partition pruning for PREF" the paper's
// conclusion names as future work.
func (r *Rewriter) tryPrune(child Node, prop *Prop, pred BoolExpr) {
	scan := pruneTarget(child)
	if scan == nil || scan.Prune != nil || prop.Repl {
		return
	}
	bindings := EqualityBindings(pred)
	if len(bindings) == 0 {
		return
	}

	// Hash / hash-equivalent placement: all hash columns must be bound.
	if prop.HashCols != nil {
		vals := make(value.Tuple, len(prop.HashCols))
		cols := make([]int, len(prop.HashCols))
		for i, c := range prop.HashCols {
			v, ok := bindings[c]
			if !ok {
				return
			}
			vals[i] = v
			cols[i] = i
		}
		p := int(value.HashTuple(vals, cols) % uint64(prop.Parts))
		scan.Prune = []int{p}
		return
	}

	// Range placement: the bound column pins the partition via the bounds.
	ts := r.Cfg.Scheme(scan.Table)
	if ts != nil && ts.Method == partition.Range {
		if v, ok := bindings[Qualify(scan.Alias, ts.Cols[0])]; ok {
			scan.Prune = []int{partition.RangeTarget(v, ts.Bounds)}
		}
	}
}

// pruneTarget unwraps physical filter chains down to a prunable scan.
func pruneTarget(n Node) *ScanNode {
	for {
		switch x := n.(type) {
		case *ScanNode:
			return x
		case *FilterNode:
			n = x.Child
		default:
			return nil
		}
	}
}

// dedup wraps child with a PREF-duplicate elimination when it has live dup
// columns: the dup-index filter normally, or the pessimistic value-based
// distinct when the optimization is disabled.
func (r *Rewriter) dedup(child Node, prop *Prop, sch Schema) (Node, *Prop, Schema) {
	if !prop.Dup() {
		return child, prop, sch
	}
	np := prop.Clone()
	np.DupCols = nil
	if !r.Opt.DisableDupIndex {
		d := &DistinctPrefNode{Child: child, DupCols: append([]string(nil), prop.DupCols...)}
		n, p, s := r.note(d, sch, np)
		return n, p, s
	}
	// Fallback: distinct by row value (excluding hidden index columns),
	// which requires a repartition by content.
	var cols []string
	for _, c := range sch {
		if !IsHiddenCol(c.Name) {
			cols = append(cols, c.Name)
		}
	}
	np.HashCols = nil
	np.Placed = map[string]PlacedEntry{}
	d := &DistinctByValueNode{Child: child, Cols: cols}
	n, p, s := r.note(d, sch, np)
	return n, p, s
}

func IsHiddenCol(name string) bool {
	return strings.HasSuffix(name, ".__dup") || strings.HasSuffix(name, ".__hasref")
}

func (r *Rewriter) rewriteProject(n *ProjectNode) (Node, *Prop, Schema, error) {
	child, prop, sch, err := r.rewrite(n.Child)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(n.Exprs) != len(n.Names) {
		return nil, nil, nil, fmt.Errorf("plan: projection arity mismatch")
	}
	// Section 2.2: projection never re-partitions, but eliminates PREF
	// duplicates first when Dup(oin)=1.
	child, prop, sch = r.dedup(child, prop, sch)

	out := make(Schema, len(n.Exprs))
	for i, e := range n.Exprs {
		if _, err := e.Bind(sch); err != nil {
			return nil, nil, nil, err
		}
		out[i] = Field{Name: n.Names[i], Kind: e.Kind(sch)}
	}
	p := &ProjectNode{Child: child, Exprs: n.Exprs, Names: n.Names}
	// Placement survives projection (rows don't move); hash/placed
	// properties referencing dropped columns simply become unusable by
	// later matching, which is sound.
	node, pr, s := r.note(p, out, prop.Clone())
	return node, pr, s, nil
}

func (r *Rewriter) rewriteAggregate(n *AggregateNode) (Node, *Prop, Schema, error) {
	child, prop, sch, err := r.rewrite(n.Child)
	if err != nil {
		return nil, nil, nil, err
	}

	if len(n.GroupBy) == 0 {
		return r.rewriteGlobalAgg(n, child, prop, sch)
	}

	outSchema := func(in Schema) Schema {
		out := make(Schema, 0, len(n.GroupBy)+len(n.Aggs))
		for _, g := range n.GroupBy {
			out = append(out, Field{Name: g, Kind: in[in.MustIndex(g)].Kind})
		}
		for _, a := range n.Aggs {
			out = append(out, Field{Name: a.As, Kind: kindOfAgg(a, in)})
		}
		return out
	}
	if err := r.checkAggBinds(n, sch); err != nil {
		return nil, nil, nil, err
	}

	// Local aggregation is possible when the input is replicated (each
	// node aggregates its own full copy) or hash-partitioned with the
	// partitioning columns covered by the group-by list (equal group keys
	// then imply one partition; the paper states the prefix special case,
	// set containment modulo equivalences is the general sound rule).
	local := prop.Repl ||
		(prop.HashCols != nil && hashCoveredBy(prop, n.GroupBy) && !prop.Dup())
	if local {
		agg := &AggregateNode{Child: child, GroupBy: n.GroupBy, Aggs: n.Aggs}
		np := &Prop{Parts: prop.Parts, Repl: prop.Repl, Placed: map[string]PlacedEntry{}}
		// The hash property survives only if its column names survive the
		// aggregation's output schema.
		if allIn(prop.HashCols, n.GroupBy) {
			np.HashCols = cloneCols(prop.HashCols)
		}
		node, p, s := r.note(agg, outSchema(sch), np)
		return node, p, s, nil
	}

	// Otherwise re-partition by the group-by columns (removing PREF
	// duplicates in transit) and aggregate locally after.
	rep, _, _ := r.repartition(child, prop, sch, n.GroupBy)
	agg := &AggregateNode{Child: rep, GroupBy: n.GroupBy, Aggs: n.Aggs}
	np := &Prop{Parts: prop.Parts, HashCols: cloneCols(n.GroupBy), Placed: map[string]PlacedEntry{}}
	node, p, s := r.note(agg, outSchema(sch), np)
	return node, p, s, nil
}

// dupColsFor returns the dup columns a shipping operator must dedup on;
// when the dup-index optimization is disabled the rewriter inserts an
// explicit value distinct first, so the shipper gets none.
func dupColsFor(r *Rewriter, prop *Prop) []string {
	if r.Opt.DisableDupIndex {
		return nil
	}
	return append([]string(nil), prop.DupCols...)
}

// preShipDedup inserts the pessimistic value-based distinct before a
// shipping operator when the dup index may not be used.
func (r *Rewriter) preShipDedup(child Node, prop *Prop, sch Schema) (Node, *Prop, Schema) {
	if !r.Opt.DisableDupIndex || !prop.Dup() {
		return child, prop, sch
	}
	return r.dedup(child, prop, sch)
}

func (r *Rewriter) rewriteGlobalAgg(n *AggregateNode, child Node, prop *Prop, sch Schema) (Node, *Prop, Schema, error) {
	if err := r.checkAggBinds(n, sch); err != nil {
		return nil, nil, nil, err
	}

	// COUNT(DISTINCT) states cannot be merged from partials; gather the
	// (deduplicated) rows and aggregate at the coordinator instead.
	for _, a := range n.Aggs {
		if a.Fn == CountDistinctFn {
			return r.rewriteGatheredAgg(n, child, prop, sch)
		}
	}

	// Eliminate PREF duplicates locally, pre-aggregate per partition,
	// gather the partials, and merge at the coordinator.
	child, prop, sch = r.dedup(child, prop, sch)

	partial := &PartialAggNode{Child: child, GroupBy: nil, Aggs: n.Aggs}
	psch := partialSchema(nil, n.Aggs, sch)
	r.note(partial, psch, &Prop{Parts: prop.Parts})

	g := &GatherNode{Child: partial, OneCopy: prop.Repl}
	r.note(g, psch, &Prop{Parts: prop.Parts, Gathered: true})

	fin := &FinalAggNode{Child: g, GroupBy: nil, Aggs: n.Aggs}
	out := make(Schema, 0, len(n.Aggs))
	for _, a := range n.Aggs {
		out = append(out, Field{Name: a.As, Kind: kindOfAgg(a, sch)})
	}
	node, p, s := r.note(fin, out, &Prop{Parts: prop.Parts, Gathered: true})
	return node, p, s, nil
}

// rewriteTopK turns ORDER BY … LIMIT into a per-partition partial top-k,
// a gather of the survivors, and a final ordered pass at the coordinator.
// With a limit, each partition ships at most Limit rows; without one,
// TopK is a plain gathered ORDER BY.
func (r *Rewriter) rewriteTopK(n *TopKNode) (Node, *Prop, Schema, error) {
	child, prop, sch, err := r.rewrite(n.Child)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, o := range n.Order {
		if sch.Index(o.Col) < 0 {
			return nil, nil, nil, fmt.Errorf("plan: unknown order column %q", o.Col)
		}
	}
	child, prop, sch = r.dedup(child, prop, sch)

	partial := &TopKNode{Child: child, Order: n.Order, Limit: n.Limit}
	r.note(partial, sch, &Prop{Parts: prop.Parts})

	g := &GatherNode{Child: partial, OneCopy: prop.Repl}
	r.note(g, sch, &Prop{Parts: prop.Parts, Gathered: true})

	final := &TopKNode{Child: g, Order: n.Order, Limit: n.Limit, Final: true}
	node, p, s := r.note(final, sch, &Prop{Parts: prop.Parts, Gathered: true})
	return node, p, s, nil
}

// rewriteGatheredAgg ships the full (deduplicated) input to the
// coordinator and aggregates there — the fallback for global aggregates
// whose states do not merge (COUNT DISTINCT).
func (r *Rewriter) rewriteGatheredAgg(n *AggregateNode, child Node, prop *Prop, sch Schema) (Node, *Prop, Schema, error) {
	child, prop, sch = r.dedup(child, prop, sch)
	g := &GatherNode{Child: child, OneCopy: prop.Repl}
	r.note(g, sch, &Prop{Parts: prop.Parts, Gathered: true})
	agg := &AggregateNode{Child: g, GroupBy: nil, Aggs: n.Aggs}
	out := make(Schema, 0, len(n.Aggs))
	for _, a := range n.Aggs {
		out = append(out, Field{Name: a.As, Kind: kindOfAgg(a, sch)})
	}
	node, p, s := r.note(agg, out, &Prop{Parts: prop.Parts, Gathered: true})
	return node, p, s, nil
}

func (r *Rewriter) checkAggBinds(n *AggregateNode, sch Schema) error {
	for _, g := range n.GroupBy {
		if sch.Index(g) < 0 {
			return fmt.Errorf("plan: unknown group-by column %q", g)
		}
	}
	for _, a := range n.Aggs {
		if a.Arg != nil {
			if _, err := a.Arg.Bind(sch); err != nil {
				return err
			}
		}
	}
	return nil
}

// partialSchema is the intermediate schema of PartialAggNode: group
// columns followed by per-aggregate state columns (AVG keeps sum+count).
func partialSchema(groupBy []string, aggs []AggExpr, in Schema) Schema {
	out := make(Schema, 0, len(groupBy)+len(aggs)+1)
	for _, g := range groupBy {
		out = append(out, Field{Name: g, Kind: in[in.MustIndex(g)].Kind})
	}
	for _, a := range aggs {
		if a.Fn == AvgFn {
			out = append(out,
				Field{Name: a.As + "$sum", Kind: value.Float},
				Field{Name: a.As + "$cnt", Kind: value.Int})
		} else {
			out = append(out, Field{Name: a.As, Kind: kindOfAgg(a, in)})
		}
	}
	return out
}

// allIn reports whether every element of a appears literally in b.
func allIn(a, b []string) bool {
	if len(a) == 0 {
		return false
	}
	for _, x := range a {
		ok := false
		for _, y := range b {
			if x == y {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// hashCoveredBy reports whether every hash column is among the group-by
// columns, directly or via an equivalence.
func hashCoveredBy(p *Prop, groupBy []string) bool {
	if len(p.HashCols) == 0 {
		return false
	}
	for _, h := range p.HashCols {
		ok := false
		for _, g := range groupBy {
			if p.EquivSame(h, g) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
