package plan

import (
	"fmt"

	"pref/internal/partition"
)

func (r *Rewriter) rewriteJoin(n *JoinNode) (Node, *Prop, Schema, error) {
	if len(n.LeftCols) != len(n.RightCols) {
		return nil, nil, nil, fmt.Errorf("plan: join column lists differ in length")
	}

	// Optimization of Section 2.2: a semi/anti join of a PREF table R
	// against its bare referenced table S on the partitioning predicate is
	// a filter on R's hasRef index — no join at all.
	if (n.Type == Semi || n.Type == Anti) && !r.Opt.DisableHasRefOpt {
		if node, prop, sch, ok, err := r.tryHasRefRewrite(n); err != nil || ok {
			return node, prop, sch, err
		}
	}

	left, lp, ls, err := r.rewrite(n.Left)
	if err != nil {
		return nil, nil, nil, err
	}
	right, rp, rs, err := r.rewrite(n.Right)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, c := range n.LeftCols {
		if ls.Index(c) < 0 {
			return nil, nil, nil, fmt.Errorf("plan: join column %q not in left input %v", c, ls.Names())
		}
	}
	for _, c := range n.RightCols {
		if rs.Index(c) < 0 {
			return nil, nil, nil, fmt.Errorf("plan: join column %q not in right input %v", c, rs.Names())
		}
	}

	outSchema := ls.Concat(rs)
	if n.Type == Semi || n.Type == Anti {
		outSchema = ls
	}
	if n.Residual != nil {
		if _, err := n.Residual.Bind(ls.Concat(rs)); err != nil {
			return nil, nil, nil, err
		}
	}

	// Cross/theta joins execute as broadcast joins (Section 2.2 "Other
	// joins"): ship the (deduplicated) build side to every node.
	if len(n.LeftCols) == 0 {
		return r.broadcastJoin(n, left, lp, ls, right, rp, rs, outSchema)
	}

	// Replicated inputs join locally with anything.
	if lp.Repl || rp.Repl {
		return r.replicatedJoin(n, left, lp, ls, right, rp, rs, outSchema)
	}

	// Case (1): both inputs hash-partitioned on keys implied equal by the
	// join predicate (directly or via upstream equivalences). All
	// partners of a key share a partition, so every join type (including
	// anti/outer, whose absence test must be locally decidable) is safe.
	if lp.HashCols != nil && rp.HashCols != nil && lp.Parts == rp.Parts &&
		hashAligned(lp, rp, n.LeftCols, n.RightCols) {
		j := r.physJoin(n, left, right)
		np := &Prop{
			Parts:    lp.Parts,
			HashCols: cloneCols(lp.HashCols),
			Placed:   unionPlaced(lp.Placed, rp.Placed),
			DupCols:  append(append([]string(nil), lp.DupCols...), rp.DupCols...),
			Equiv:    r.joinEquiv(n, lp, rp),
		}
		if n.Type == Semi || n.Type == Anti {
			np.Placed = lp.Placed
			np.DupCols = append([]string(nil), lp.DupCols...)
			np.Equiv = lp.Equiv
		}
		node, p, s := r.note(j, outSchema, np)
		return node, p, s, nil
	}

	// Cases (2) and (3): one input carries a PREF scheme whose
	// partitioning predicate is this join predicate and whose referenced
	// table is placed intact on the other input.
	if refd, ok := r.prefMatch(lp, n.LeftCols, rp, n.RightCols); ok && r.prefJoinSafe(n, refd) {
		j := r.physJoin(n, left, right)
		refdProp := rp
		if refd == "left" {
			refdProp = lp
		}
		np := &Prop{
			Parts:  lp.Parts,
			Placed: unionPlaced(lp.Placed, rp.Placed),
			// Dup(o) follows the referenced input (case 3); when the
			// referenced side is the single-copy seed placement its
			// DupCols are empty, recovering case (2)'s Dup(o)=0.
			DupCols: append([]string(nil), refdProp.DupCols...),
			Equiv:   r.joinEquiv(n, lp, rp),
		}
		// A hash property survives only if it came from the referenced
		// side's placement (rows stay where the referenced side was).
		np.HashCols = cloneCols(refdProp.HashCols)
		if n.Type == Semi || n.Type == Anti {
			np.Placed = lp.Placed
			np.DupCols = append([]string(nil), lp.DupCols...)
			np.Equiv = lp.Equiv
		}
		node, p, s := r.note(j, outSchema, np)
		return node, p, s, nil
	}

	// Fallback: a side already hash-partitioned on the join keys is left
	// alone and only the other is re-partitioned; when neither is
	// aligned, a broadcast of a much smaller side can beat shuffling both
	// (the classic distributed-join choice; needs Options.Sizes).
	leftOK := lp.HashCols != nil && sameCols(lp.HashCols, n.LeftCols) && !lp.Dup()
	rightOK := rp.HashCols != nil && sameCols(rp.HashCols, n.RightCols) && !rp.Dup()
	if !leftOK && !rightOK {
		if side, ok := r.broadcastSide(n); ok {
			return r.broadcastEqui(n, side, left, lp, ls, right, rp, rs, outSchema)
		}
	}
	if !leftOK {
		left, lp, ls = r.repartition(left, lp, ls, n.LeftCols)
	}
	if !rightOK {
		right, rp, rs = r.repartition(right, rp, rs, n.RightCols)
	}
	j := r.physJoin(n, left, right)
	np := &Prop{
		Parts:    lp.Parts,
		HashCols: cloneCols(n.LeftCols),
		Placed:   unionPlaced(lp.Placed, rp.Placed),
		DupCols:  append(append([]string(nil), lp.DupCols...), rp.DupCols...),
		Equiv:    r.joinEquiv(n, lp, rp),
	}
	if n.Type == Semi || n.Type == Anti {
		np.Placed = lp.Placed
		np.DupCols = append([]string(nil), lp.DupCols...)
		np.Equiv = lp.Equiv
	}
	node, p, s := r.note(j, outSchema, np)
	return node, p, s, nil
}

// joinEquiv derives the output equivalence classes of a join: both sides'
// classes survive, and an inner join adds the predicate's equalities
// (outer joins do not — the right side may be null-extended).
func (r *Rewriter) joinEquiv(n *JoinNode, lp, rp *Prop) [][]string {
	out := UnionEquiv(lp.Equiv, rp.Equiv)
	if n.Type == Inner {
		for i := range n.LeftCols {
			out = AddEquiv(out, n.LeftCols[i], n.RightCols[i])
		}
	}
	return out
}

// hashAligned reports whether the two hash placements provably co-locate
// all rows with equal join keys: every positional hash-column pair must be
// implied equal by the join predicate, modulo each side's equivalences.
func hashAligned(lp, rp *Prop, leftCols, rightCols []string) bool {
	if len(lp.HashCols) != len(rp.HashCols) {
		return false
	}
	used := make([]bool, len(leftCols))
	for i := range lp.HashCols {
		found := false
		for j := range leftCols {
			if used[j] {
				continue
			}
			if lp.EquivSame(lp.HashCols[i], leftCols[j]) && rp.EquivSame(rp.HashCols[i], rightCols[j]) {
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// broadcastSide decides whether to broadcast one side of a misaligned
// equi join instead of re-partitioning both, using the coarse cardinality
// estimates derived from Options.Sizes. Returns "left" or "right".
// Broadcasting the left side is only sound for inner joins (pairs form at
// the kept right rows); semi/anti/outer must broadcast the build side.
func (r *Rewriter) broadcastSide(n *JoinNode) (string, bool) {
	if r.Opt.Sizes == nil {
		return "", false
	}
	lEst := r.estimateRows(n.Left)
	rEst := r.estimateRows(n.Right)
	if lEst < 0 || rEst < 0 {
		return "", false
	}
	parts := float64(r.Cfg.NumPartitions)
	repartition := lEst + rEst
	if rEst*(parts-1) < repartition {
		return "right", true
	}
	if n.Type == Inner && lEst*(parts-1) < repartition {
		return "left", true
	}
	return "", false
}

// broadcastEqui executes a misaligned equi join by broadcasting one side.
func (r *Rewriter) broadcastEqui(n *JoinNode, side string,
	left Node, lp *Prop, ls Schema, right Node, rp *Prop, rs Schema,
	outSchema Schema) (Node, *Prop, Schema, error) {

	if side == "right" {
		right, rp, rs = r.preShipDedup(right, rp, rs)
		b := &BroadcastNode{Child: right, DupCols: dupColsFor(r, rp), OneCopy: rp.Repl}
		r.note(b, rs, &Prop{Parts: rp.Parts, Repl: true, Placed: map[string]PlacedEntry{}})
		j := r.physJoin(n, left, b)
		np := &Prop{
			Parts:    lp.Parts,
			HashCols: cloneCols(lp.HashCols),
			Placed:   lp.Placed,
			DupCols:  append([]string(nil), lp.DupCols...),
			Equiv:    r.joinEquiv(n, lp, rp),
		}
		if n.Type == Semi || n.Type == Anti {
			np.Equiv = lp.Equiv
		}
		node, p, s := r.note(j, outSchema, np)
		return node, p, s, nil
	}

	// Broadcast left (inner only): rows pair up where the right side
	// lives, so the output inherits the right placement. The broadcast
	// dedups the left copies in flight — a duplicated broadcast side
	// would multiply pairs.
	left, lp, ls = r.preShipDedup(left, lp, ls)
	b := &BroadcastNode{Child: left, DupCols: dupColsFor(r, lp), OneCopy: lp.Repl}
	r.note(b, ls, &Prop{Parts: lp.Parts, Repl: true, Placed: map[string]PlacedEntry{}})
	j := r.physJoin(n, b, right)
	np := &Prop{
		Parts:    rp.Parts,
		HashCols: cloneCols(rp.HashCols),
		Placed:   rp.Placed,
		DupCols:  append([]string(nil), rp.DupCols...),
		Equiv:    r.joinEquiv(n, lp, rp),
	}
	node, p, s := r.note(j, outSchema, np)
	return node, p, s, nil
}

// estimateRows is the crude cardinality model behind the broadcast
// heuristic: base-table sizes, a fixed selectivity per filter, pk-fk
// joins bounded by the larger input. −1 means "unknown" (a scan without a
// registered size), which disables the heuristic.
func (r *Rewriter) estimateRows(n Node) float64 {
	const filterSelectivity = 0.25
	switch n := n.(type) {
	case *ScanNode:
		if sz, ok := r.Opt.Sizes[n.Table]; ok {
			return float64(sz)
		}
		return -1
	case *FilterNode:
		c := r.estimateRows(n.Child)
		if c < 0 {
			return -1
		}
		return c * filterSelectivity
	case *JoinNode:
		l, rr := r.estimateRows(n.Left), r.estimateRows(n.Right)
		if l < 0 || rr < 0 {
			return -1
		}
		switch n.Type {
		case Semi, Anti:
			return l
		default:
			if l > rr {
				return l
			}
			return rr
		}
	case *AggregateNode:
		c := r.estimateRows(n.Child)
		if c < 0 {
			return -1
		}
		return c * 0.2
	case *ProjectNode:
		return r.estimateRows(n.Child)
	default:
		if ch := n.Children(); len(ch) == 1 {
			return r.estimateRows(ch[0])
		}
		return -1
	}
}

// physJoin clones the logical join around the physical children.
func (r *Rewriter) physJoin(n *JoinNode, left, right Node) *JoinNode {
	return &JoinNode{
		Left: left, Right: right, Type: n.Type,
		LeftCols: n.LeftCols, RightCols: n.RightCols, Residual: n.Residual,
	}
}

// prefJoinSafe guards the PREF co-location cases for join types whose
// match-absence test must be locally decidable (Semi/Anti/LeftOuter):
//
//   - refd == "left": the left (output) side is the referenced input, so
//     by Definition 1 every matching referencing tuple has a copy wherever
//     the left row lives — the full partner set is locally visible, even
//     with filters or residual predicates. Always safe.
//   - refd == "right": the left side is the referencing input, whose
//     copies each see only a local subset of partners. Safe only against
//     the bare referenced table (then every copy either has a local
//     partner or is a global orphan) with no residual.
func (r *Rewriter) prefJoinSafe(n *JoinNode, refd string) bool {
	if n.Type == Inner {
		return true
	}
	if refd == "left" {
		return true
	}
	_, bare := n.Right.(*ScanNode)
	return bare && n.Residual == nil
}

// prefMatch implements the shared core of cases (2) and (3): it reports
// which side is the referenced input ("left"/"right") when some placed
// PREF scheme's partitioning predicate equals the join predicate and its
// referenced table is placed intact on the other side.
func (r *Rewriter) prefMatch(lp *Prop, leftCols []string, rp *Prop, rightCols []string) (string, bool) {
	if lp.Parts != rp.Parts {
		return "", false
	}
	// Try left as the referencing input…
	if r.matchOneDirection(lp, leftCols, rp, rightCols) {
		return "right", true
	}
	// …then right.
	if r.matchOneDirection(rp, rightCols, lp, leftCols) {
		return "left", true
	}
	return "", false
}

// matchOneDirection checks whether some alias on the referencing side has
// a PREF scheme whose predicate equals the join predicate — modulo column
// equivalences established upstream — and whose referenced table is
// placed intact on the referenced side.
func (r *Rewriter) matchOneDirection(ringProp *Prop, ringCols []string, refdProp *Prop, refdCols []string) bool {
	for alias, entry := range ringProp.Placed {
		sch := entry.Scheme
		if sch == nil || sch.Method != partition.Pref {
			continue
		}
		for refdAlias, refdEntry := range refdProp.Placed {
			if refdEntry.Table != sch.RefTable {
				continue
			}
			if refdEntry.Scheme != r.Cfg.Scheme(sch.RefTable) {
				continue
			}
			if pairsMatchEquiv(
				ringProp, ringCols, refdProp, refdCols,
				qualifyAll(alias, sch.Pred.ReferencingCols),
				qualifyAll(refdAlias, sch.Pred.ReferencedCols),
			) {
				return true
			}
		}
	}
	return false
}

// pairsMatchEquiv reports whether the join pairing (joinA[j], joinB[j])
// covers every wanted pair (wantA[i], wantB[i]) up to per-side column
// equivalence.
func pairsMatchEquiv(aProp *Prop, joinA []string, bProp *Prop, joinB []string, wantA, wantB []string) bool {
	if len(joinA) != len(wantA) {
		return false
	}
	used := make([]bool, len(joinA))
	for i := range wantA {
		found := false
		for j := range joinA {
			if used[j] {
				continue
			}
			if aProp.EquivSame(joinA[j], wantA[i]) && bProp.EquivSame(joinB[j], wantB[i]) {
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// replicatedJoin joins against a replicated side locally.
func (r *Rewriter) replicatedJoin(n *JoinNode, left Node, lp *Prop, ls Schema,
	right Node, rp *Prop, rs Schema, outSchema Schema) (Node, *Prop, Schema, error) {

	// Semi/Anti/LeftOuter against a replicated right side are safe: the
	// full partner set is present on every node. The reverse (replicated
	// left, partitioned right) is NOT locally decidable for those types —
	// fall back to re-partitioning both sides.
	if lp.Repl && !rp.Repl && n.Type != Inner {
		left, lp, ls = r.repartition(left, lp, ls, n.LeftCols)
		right, rp, rs = r.repartition(right, rp, rs, n.RightCols)
		j := r.physJoin(n, left, right)
		np := &Prop{Parts: lp.Parts, HashCols: cloneCols(n.LeftCols), Placed: map[string]PlacedEntry{}}
		node, p, s := r.note(j, outSchema, np)
		return node, p, s, nil
	}

	j := r.physJoin(n, left, right)
	np := &Prop{Parts: lp.Parts, Equiv: r.joinEquiv(n, lp, rp)}
	switch {
	case lp.Repl && rp.Repl:
		np.Repl = true
		np.Placed = map[string]PlacedEntry{}
	case lp.Repl:
		np.HashCols = cloneCols(rp.HashCols)
		np.Placed = rp.Placed
		np.DupCols = append([]string(nil), rp.DupCols...)
	default:
		np.HashCols = cloneCols(lp.HashCols)
		np.Placed = lp.Placed
		np.DupCols = append([]string(nil), lp.DupCols...)
	}
	if n.Type == Semi || n.Type == Anti {
		np.Placed = lp.Placed
		np.DupCols = append([]string(nil), lp.DupCols...)
		np.HashCols = cloneCols(lp.HashCols)
		np.Repl = lp.Repl
		np.Equiv = lp.Equiv
	}
	node, p, s := r.note(j, outSchema, np)
	return node, p, s, nil
}

// broadcastJoin ships the deduplicated right side to every node and joins
// locally; correct for any join type because the full build side is
// present everywhere.
func (r *Rewriter) broadcastJoin(n *JoinNode, left Node, lp *Prop, ls Schema,
	right Node, rp *Prop, rs Schema, outSchema Schema) (Node, *Prop, Schema, error) {

	left, lp, ls = r.preShipDedup(left, lp, ls)
	right, rp, rs = r.preShipDedup(right, rp, rs)

	var bright Node = &BroadcastNode{Child: right, DupCols: dupColsFor(r, rp), OneCopy: rp.Repl}
	r.note(bright, rs, &Prop{Parts: rp.Parts, Repl: true, Placed: map[string]PlacedEntry{}})

	// The probe side must also be duplicate-free, or pair copies multiply.
	left, lp, ls = r.dedup(left, lp, ls)

	j := r.physJoin(n, left, bright)
	np := &Prop{
		Parts:    lp.Parts,
		HashCols: cloneCols(lp.HashCols),
		Placed:   lp.Placed,
		Repl:     lp.Repl,
	}
	node, p, s := r.note(j, outSchema, np)
	return node, p, s, nil
}

// repartition wraps child in a hash re-partitioning on cols, eliminating
// PREF duplicates in transit.
func (r *Rewriter) repartition(child Node, prop *Prop, sch Schema, cols []string) (Node, *Prop, Schema) {
	child, prop, sch = r.preShipDedup(child, prop, sch)
	rep := &RepartitionNode{Child: child, Cols: cols, DupCols: dupColsFor(r, prop), OneCopy: prop.Repl}
	np := &Prop{Parts: prop.Parts, HashCols: cloneCols(cols), Placed: map[string]PlacedEntry{}}
	r.note(rep, sch, np)
	return rep, np, sch
}

// tryHasRefRewrite recognizes σ_{hasRef=…}(R) patterns: a semi (anti) join
// of R against its bare referenced table S on exactly R's partitioning
// predicate becomes a filter hasRef=1 (hasRef=0) on R.
func (r *Rewriter) tryHasRefRewrite(n *JoinNode) (Node, *Prop, Schema, bool, error) {
	if n.Residual != nil {
		return nil, nil, nil, false, nil
	}
	rightScan, ok := n.Right.(*ScanNode)
	if !ok {
		return nil, nil, nil, false, nil
	}
	leftAlias, leftTable, ok := baseScan(n.Left)
	if !ok {
		return nil, nil, nil, false, nil
	}
	ts := r.Cfg.Scheme(leftTable)
	if ts == nil || ts.Method != partition.Pref || ts.RefTable != rightScan.Table {
		return nil, nil, nil, false, nil
	}
	if !colPairsEqual(
		n.LeftCols, n.RightCols,
		qualifyAll(leftAlias, ts.Pred.ReferencingCols),
		qualifyAll(rightScan.Alias, ts.Pred.ReferencedCols),
	) {
		return nil, nil, nil, false, nil
	}

	left, lp, ls, err := r.rewrite(n.Left)
	if err != nil {
		return nil, nil, nil, true, err
	}
	want := int64(1)
	if n.Type == Anti {
		want = 0
	}
	f := &FilterNode{Child: left, Pred: Eq(Col(HasRefCol(leftAlias)), Lit(want))}
	node, p, s := r.note(f, ls, lp.Clone())
	return node, p, s, true, nil
}

// baseScan unwraps Filter chains down to a ScanNode, returning its alias
// and table.
func baseScan(n Node) (alias, tbl string, ok bool) {
	for {
		switch x := n.(type) {
		case *ScanNode:
			return x.Alias, x.Table, true
		case *FilterNode:
			n = x.Child
		default:
			return "", "", false
		}
	}
}
