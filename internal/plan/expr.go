package plan

import (
	"fmt"
	"strings"
	"time"

	"pref/internal/value"
)

func timeMonth(m int) time.Month { return time.Month(m) }

// ValExpr is a scalar expression over a row, evaluated after binding to a
// schema. Values use the engine's int64 encoding.
type ValExpr interface {
	// Bind resolves column references against a schema, returning an
	// evaluator closure. Binding errors indicate plan-construction bugs.
	Bind(s Schema) (func(value.Tuple) int64, error)
	// Kind reports the result kind under the given schema.
	Kind(s Schema) value.Kind
	String() string
}

// BoolExpr is a predicate over a row.
type BoolExpr interface {
	Bind(s Schema) (func(value.Tuple) bool, error)
	String() string
}

// ---- scalar expressions ----

type colExpr struct{ name string }

// Col references a column by its alias-qualified name.
func Col(name string) ValExpr { return colExpr{name} }

func (c colExpr) Bind(s Schema) (func(value.Tuple) int64, error) {
	i := s.Index(c.name)
	if i < 0 {
		return nil, fmt.Errorf("plan: unknown column %q (have %v)", c.name, s.Names())
	}
	return func(t value.Tuple) int64 { return t[i] }, nil
}

func (c colExpr) Kind(s Schema) value.Kind {
	if i := s.Index(c.name); i >= 0 {
		return s[i].Kind
	}
	return value.Int
}

func (c colExpr) String() string { return c.name }

type litExpr struct {
	v    int64
	kind value.Kind
}

// Lit is an integer literal.
func Lit(v int64) ValExpr { return litExpr{v, value.Int} }

// MoneyLit is a money literal in dollars.
func MoneyLit(dollars float64) ValExpr {
	return litExpr{value.FromMoney(dollars), value.Money}
}

// DateLit is a date literal (year, month, day).
func DateLit(y, m, d int) ValExpr {
	return litExpr{value.FromDate(y, timeMonth(m), d), value.Date}
}

func (l litExpr) Bind(Schema) (func(value.Tuple) int64, error) {
	return func(value.Tuple) int64 { return l.v }, nil
}
func (l litExpr) Kind(Schema) value.Kind { return l.kind }
func (l litExpr) String() string         { return fmt.Sprintf("%d", l.v) }

// Func is a computed scalar over named input columns; fn receives the
// column values in the order of cols. Used for derived measures such as
// extendedprice·(1−discount).
type funcExpr struct {
	cols []string
	kind value.Kind
	name string
	fn   func([]int64) int64
}

// F builds a computed scalar expression.
func F(name string, kind value.Kind, cols []string, fn func([]int64) int64) ValExpr {
	return funcExpr{cols: cols, kind: kind, name: name, fn: fn}
}

func (f funcExpr) Bind(s Schema) (func(value.Tuple) int64, error) {
	idx := make([]int, len(f.cols))
	for i, c := range f.cols {
		j := s.Index(c)
		if j < 0 {
			return nil, fmt.Errorf("plan: func %s: unknown column %q", f.name, c)
		}
		idx[i] = j
	}
	buf := make([]int64, len(idx))
	return func(t value.Tuple) int64 {
		for i, j := range idx {
			buf[i] = t[j]
		}
		return f.fn(buf)
	}, nil
}
func (f funcExpr) Kind(Schema) value.Kind { return f.kind }
func (f funcExpr) String() string         { return f.name + "(" + strings.Join(f.cols, ",") + ")" }

// ---- predicates ----

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (o CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[o]
}

func (o CmpOp) apply(a, b int64) bool {
	switch o {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	default:
		return false
	}
}

type cmpExpr struct {
	l, r ValExpr
	op   CmpOp
}

// Cmp compares two scalar expressions.
func Cmp(l ValExpr, op CmpOp, r ValExpr) BoolExpr { return cmpExpr{l, r, op} }

// Eq is Cmp(l, EQ, r); analogous helpers exist for the other operators.
func Eq(l, r ValExpr) BoolExpr { return Cmp(l, EQ, r) }

// Lt is the < comparison.
func Lt(l, r ValExpr) BoolExpr { return Cmp(l, LT, r) }

// Le is the <= comparison.
func Le(l, r ValExpr) BoolExpr { return Cmp(l, LE, r) }

// Gt is the > comparison.
func Gt(l, r ValExpr) BoolExpr { return Cmp(l, GT, r) }

// Ge is the >= comparison.
func Ge(l, r ValExpr) BoolExpr { return Cmp(l, GE, r) }

// Ne is the <> comparison.
func Ne(l, r ValExpr) BoolExpr { return Cmp(l, NE, r) }

func (c cmpExpr) Bind(s Schema) (func(value.Tuple) bool, error) {
	lf, err := c.l.Bind(s)
	if err != nil {
		return nil, err
	}
	rf, err := c.r.Bind(s)
	if err != nil {
		return nil, err
	}
	op := c.op
	return func(t value.Tuple) bool {
		a, b := lf(t), rf(t)
		if a == Null || b == Null {
			return false
		}
		return op.apply(a, b)
	}, nil
}
func (c cmpExpr) String() string { return c.l.String() + c.op.String() + c.r.String() }

type andExpr struct{ xs []BoolExpr }

// And is the conjunction of predicates (true when empty).
func And(xs ...BoolExpr) BoolExpr { return andExpr{xs} }

func (a andExpr) Bind(s Schema) (func(value.Tuple) bool, error) {
	fs := make([]func(value.Tuple) bool, len(a.xs))
	for i, x := range a.xs {
		f, err := x.Bind(s)
		if err != nil {
			return nil, err
		}
		fs[i] = f
	}
	return func(t value.Tuple) bool {
		for _, f := range fs {
			if !f(t) {
				return false
			}
		}
		return true
	}, nil
}
func (a andExpr) String() string { return joinExprs(a.xs, " AND ") }

type orExpr struct{ xs []BoolExpr }

// Or is the disjunction of predicates (false when empty).
func Or(xs ...BoolExpr) BoolExpr { return orExpr{xs} }

func (o orExpr) Bind(s Schema) (func(value.Tuple) bool, error) {
	fs := make([]func(value.Tuple) bool, len(o.xs))
	for i, x := range o.xs {
		f, err := x.Bind(s)
		if err != nil {
			return nil, err
		}
		fs[i] = f
	}
	return func(t value.Tuple) bool {
		for _, f := range fs {
			if f(t) {
				return true
			}
		}
		return false
	}, nil
}
func (o orExpr) String() string { return joinExprs(o.xs, " OR ") }

type notExpr struct{ x BoolExpr }

// Not negates a predicate.
func Not(x BoolExpr) BoolExpr { return notExpr{x} }

func (n notExpr) Bind(s Schema) (func(value.Tuple) bool, error) {
	f, err := n.x.Bind(s)
	if err != nil {
		return nil, err
	}
	return func(t value.Tuple) bool { return !f(t) }, nil
}
func (n notExpr) String() string { return "NOT(" + n.x.String() + ")" }

// In tests membership of a column in a literal set.
func In(col string, vals ...int64) BoolExpr {
	set := make(map[int64]bool, len(vals))
	for _, v := range vals {
		set[v] = true
	}
	return inExpr{col, set, vals}
}

type inExpr struct {
	col  string
	set  map[int64]bool
	vals []int64
}

func (e inExpr) Bind(s Schema) (func(value.Tuple) bool, error) {
	i := s.Index(e.col)
	if i < 0 {
		return nil, fmt.Errorf("plan: unknown column %q in IN", e.col)
	}
	return func(t value.Tuple) bool { return e.set[t[i]] }, nil
}
func (e inExpr) String() string { return fmt.Sprintf("%s IN %v", e.col, e.vals) }

// EqualityBindings extracts column = constant facts from the top-level
// conjunction of a predicate (Eq comparisons and single-value INs). Used
// for partition pruning.
func EqualityBindings(p BoolExpr) map[string]int64 {
	out := map[string]int64{}
	var walk func(BoolExpr)
	walk = func(p BoolExpr) {
		switch e := p.(type) {
		case andExpr:
			for _, x := range e.xs {
				walk(x)
			}
		case cmpExpr:
			if e.op != EQ {
				return
			}
			if c, ok := e.l.(colExpr); ok {
				if l, ok := e.r.(litExpr); ok {
					out[c.name] = l.v
				}
			} else if c, ok := e.r.(colExpr); ok {
				if l, ok := e.l.(litExpr); ok {
					out[c.name] = l.v
				}
			}
		case inExpr:
			if len(e.vals) == 1 {
				out[e.col] = e.vals[0]
			}
		}
	}
	walk(p)
	return out
}

func joinExprs(xs []BoolExpr, sep string) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = "(" + x.String() + ")"
	}
	return strings.Join(parts, sep)
}
