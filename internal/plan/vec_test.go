package plan

import (
	"math/rand"
	"testing"

	"pref/internal/value"
)

// randTuple fills a tuple with values drawn from a small domain that makes
// comparisons and IN hits likely, with occasional NULLs.
func randTuple(rng *rand.Rand, width int) value.Tuple {
	t := make(value.Tuple, width)
	for i := range t {
		switch rng.Intn(10) {
		case 0:
			t[i] = Null
		default:
			t[i] = int64(rng.Intn(7) - 3)
		}
	}
	return t
}

// TestCompiledPredMatchesBind drives random predicates over random tuples
// and asserts the compiled IR agrees with the Bind closure row for row.
func TestCompiledPredMatchesBind(t *testing.T) {
	sch := Schema{{Name: "a", Kind: value.Int}, {Name: "b", Kind: value.Int}, {Name: "c", Kind: value.Money}}
	rng := rand.New(rand.NewSource(7))

	var genPred func(depth int) BoolExpr
	genExpr := func() ValExpr {
		switch rng.Intn(3) {
		case 0:
			return Col([]string{"a", "b", "c"}[rng.Intn(3)])
		case 1:
			return Lit(int64(rng.Intn(7) - 3))
		default:
			return F("ab", value.Int, []string{"a", "b"}, func(v []int64) int64 { return v[0] + v[1] })
		}
	}
	genPred = func(depth int) BoolExpr {
		if depth <= 0 {
			return Cmp(genExpr(), CmpOp(rng.Intn(6)), genExpr())
		}
		switch rng.Intn(5) {
		case 0:
			return And(genPred(depth-1), genPred(depth-1))
		case 1:
			return Or(genPred(depth-1), genPred(depth-1))
		case 2:
			return Not(genPred(depth - 1))
		case 3:
			return In("b", int64(rng.Intn(3)-1), int64(rng.Intn(3)-1))
		default:
			return Cmp(genExpr(), CmpOp(rng.Intn(6)), genExpr())
		}
	}

	for trial := 0; trial < 200; trial++ {
		p := genPred(3)
		bound, err := p.Bind(sch)
		if err != nil {
			t.Fatalf("bind %s: %v", p, err)
		}
		vp, err := CompilePred(p, sch)
		if err != nil {
			t.Fatalf("compile %s: %v", p, err)
		}
		scratch := make([]int64, 8)
		for i := 0; i < 50; i++ {
			row := randTuple(rng, len(sch))
			if got, want := vp.EvalRow(row, scratch), bound(row); got != want {
				t.Fatalf("pred %s on %v: compiled=%v bound=%v", p, row, got, want)
			}
		}
	}
}

// TestCompiledExprMatchesBind checks scalar compilation parity, including
// the VFunc scratch-buffer path.
func TestCompiledExprMatchesBind(t *testing.T) {
	sch := Schema{{Name: "x", Kind: value.Int}, {Name: "y", Kind: value.Int}}
	exprs := []ValExpr{
		Col("x"),
		Col("y"),
		Lit(42),
		F("sum", value.Int, []string{"x", "y"}, func(v []int64) int64 { return v[0] + v[1] }),
		F("neg", value.Int, []string{"y"}, func(v []int64) int64 { return -v[0] }),
	}
	rng := rand.New(rand.NewSource(11))
	for _, e := range exprs {
		bound, err := e.Bind(sch)
		if err != nil {
			t.Fatalf("bind %s: %v", e, err)
		}
		ve, err := CompileExpr(e, sch)
		if err != nil {
			t.Fatalf("compile %s: %v", e, err)
		}
		for i := 0; i < 100; i++ {
			row := randTuple(rng, len(sch))
			if got, want := ve.EvalRow(row, nil), bound(row); got != want {
				t.Fatalf("expr %s on %v: compiled=%v bound=%v", e, row, got, want)
			}
		}
	}
}

// TestCompileUnknownColumn surfaces binding errors instead of panicking.
func TestCompileUnknownColumn(t *testing.T) {
	sch := Schema{{Name: "a", Kind: value.Int}}
	if _, err := CompileExpr(Col("zzz"), sch); err == nil {
		t.Fatal("CompileExpr accepted an unknown column")
	}
	if _, err := CompilePred(Eq(Col("zzz"), Lit(1)), sch); err == nil {
		t.Fatal("CompilePred accepted an unknown column")
	}
	if _, err := CompilePred(In("zzz", 1), sch); err == nil {
		t.Fatal("CompilePred accepted an unknown IN column")
	}
}
