package plan_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pref/internal/catalog"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/value"
)

// The golden tests pin the exact rendering of rewritten physical plans —
// the operator String() forms and the recorded Dup/Part properties — for
// a fixed schema-driven design. Any change to the rewrite's output shape,
// node formatting, or property algebra shows up as a readable diff against
// testdata/*.golden. Regenerate deliberately with:
//
//	go test ./internal/plan -run TestGoldenPlans -update

var updateGolden = flag.Bool("update", false, "rewrite the golden plan files")

// goldenSchema is the same 4-table TPC-H-shaped catalog the checker tests
// use: a hash seed, a hash-equivalent PREF chain, a duplicate-carrying
// PREF chain, and a replicated dimension.
func goldenSchema(t *testing.T) *catalog.Schema {
	t.Helper()
	s := catalog.NewSchema("golden")
	s.MustAddTable(catalog.MustTable("lineitem", []catalog.Column{
		{Name: "l_orderkey", Kind: value.Int},
		{Name: "l_partkey", Kind: value.Int},
		{Name: "l_qty", Kind: value.Int},
	}, "l_orderkey", "l_partkey"))
	s.MustAddTable(catalog.MustTable("orders", []catalog.Column{
		{Name: "o_orderkey", Kind: value.Int},
		{Name: "o_custkey", Kind: value.Int},
		{Name: "o_total", Kind: value.Money},
	}, "o_orderkey"))
	s.MustAddTable(catalog.MustTable("customer", []catalog.Column{
		{Name: "c_custkey", Kind: value.Int},
		{Name: "c_name", Kind: value.Str},
		{Name: "c_nation", Kind: value.Int},
	}, "c_custkey"))
	s.MustAddTable(catalog.MustTable("nation", []catalog.Column{
		{Name: "n_nationkey", Kind: value.Int},
		{Name: "n_name", Kind: value.Str},
	}, "n_nationkey"))
	return s
}

func goldenSD(t *testing.T, sch *catalog.Schema) *partition.Config {
	t.Helper()
	cfg := partition.NewConfig(4)
	cfg.SetHash("lineitem", "l_orderkey")
	cfg.SetPref("orders", "lineitem", []string{"o_orderkey"}, []string{"l_orderkey"})
	cfg.SetPref("customer", "orders", []string{"c_custkey"}, []string{"o_custkey"})
	cfg.SetReplicated("nation")
	if err := cfg.Validate(sch); err != nil {
		t.Fatalf("fixture config invalid: %v", err)
	}
	return cfg
}

func TestGoldenPlans(t *testing.T) {
	sch := goldenSchema(t)
	cfg := goldenSD(t, sch)

	cases := []struct {
		name string
		root plan.Node
	}{
		{
			// PREF co-location case: the join is local, the dup-carrying
			// customer side is deduplicated before results leave the node.
			name: "join_pref",
			root: plan.Join(
				plan.Join(
					plan.Scan("customer", "c"), plan.Scan("orders", "o"),
					plan.Inner, []string{"c.c_custkey"}, []string{"o.o_custkey"}),
				plan.Scan("lineitem", "l"),
				plan.Inner, []string{"o.o_orderkey"}, []string{"l.l_orderkey"}),
		},
		{
			// Semi join against a dup-carrying right side exercises the
			// hasRef optimization path and the semi-specific properties.
			name: "semijoin_hasref",
			root: plan.Join(
				plan.Scan("orders", "o"), plan.Scan("customer", "c"),
				plan.Semi, []string{"o.o_custkey"}, []string{"c.c_custkey"}),
		},
		{
			// Misaligned grouping forces a repartition (with dup columns in
			// the shuffle's dedup list) before the aggregate.
			name: "agg_repartition",
			root: plan.Aggregate(
				plan.Scan("customer", "c"), []string{"c.c_nation"},
				plan.Count("customers")),
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rw, err := plan.Rewrite(tc.root, sch, cfg, plan.Options{})
			if err != nil {
				t.Fatalf("rewrite: %v", err)
			}
			got := "logical:\n" + plan.Format(tc.root) + "\nphysical:\n" + rw.Explain()
			path := filepath.Join("testdata", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("plan rendering changed; run with -update if intentional.\n--- want\n%s--- got\n%s", want, got)
			}
		})
	}
}
