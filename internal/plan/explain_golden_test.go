package plan_test

import (
	"os"
	"path/filepath"
	"testing"

	"pref/internal/engine"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/table"
	"pref/internal/trace"
	"pref/internal/value"
)

// The EXPLAIN ANALYZE golden tests pin the executed-trace rendering for
// the same schema-driven fixture the plan goldens use: operator lines in
// Rewritten.Explain shape plus the per-operator actuals recorded by
// internal/trace. Wall-clock fields are suppressed (HideWall), so the
// rendering is a pure function of plan and data. Regenerate with:
//
//	go test ./internal/plan -run TestGoldenExplainAnalyze -update

// goldenDB fills the golden schema deterministically: 24 lineitems over 8
// orders, 6 customers (2 orderless), 3 nations. Small enough to read in a
// golden diff, rich enough that every operator moves rows.
func goldenDB(t *testing.T) *table.Database {
	t.Helper()
	db := table.NewDatabase(goldenSchema(t))
	for i := int64(0); i < 3; i++ {
		db.Tables["nation"].MustAppend(value.Tuple{i, db.Schema.Table("nation").Dict("n_name").Code("N" + string(rune('A'+i)))})
	}
	cdict := db.Schema.Table("customer").Dict("c_name")
	for i := int64(0); i < 6; i++ {
		db.Tables["customer"].MustAppend(value.Tuple{i, cdict.Code("cust-" + string(rune('a'+i))), i % 3})
	}
	for i := int64(0); i < 8; i++ {
		db.Tables["orders"].MustAppend(value.Tuple{i, i % 4, value.FromMoney(float64(100 + i))})
	}
	for i := int64(0); i < 24; i++ {
		db.Tables["lineitem"].MustAppend(value.Tuple{i % 8, i, i % 5})
	}
	return db
}

func TestGoldenExplainAnalyze(t *testing.T) {
	sch := goldenSchema(t)
	cfg := goldenSD(t, sch)
	db := goldenDB(t)
	pdb, err := partition.Apply(db, cfg)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}

	cases := []struct {
		name string
		root plan.Node
	}{
		{
			// The PREF chain keeps both joins local: every join span must
			// render shipped=0, with dedup hits on the duplicate-carrying
			// customer side.
			name: "analyze_join_pref",
			root: plan.Join(
				plan.Join(
					plan.Scan("customer", "c"), plan.Scan("orders", "o"),
					plan.Inner, []string{"c.c_custkey"}, []string{"o.o_custkey"}),
				plan.Scan("lineitem", "l"),
				plan.Inner, []string{"o.o_orderkey"}, []string{"l.l_orderkey"}),
		},
		{
			// Misaligned grouping: the repartition span carries the shipped
			// rows and the dedup of the customer duplicates.
			name: "analyze_agg_repartition",
			root: plan.Aggregate(
				plan.Scan("customer", "c"), []string{"c.c_nation"},
				plan.Count("customers")),
		},
		{
			// Global aggregate over a gather: the coordinator-side merge
			// consumes exactly the gathered partials.
			name: "analyze_global_agg",
			root: plan.Aggregate(
				plan.Join(
					plan.Scan("orders", "o"), plan.Scan("lineitem", "l"),
					plan.Inner, []string{"o.o_orderkey"}, []string{"l.l_orderkey"}),
				nil, plan.Count("cnt")),
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rw, err := plan.Rewrite(tc.root, sch, cfg, plan.Options{})
			if err != nil {
				t.Fatalf("rewrite: %v", err)
			}
			res, err := engine.ExecuteOpts(rw, pdb, engine.ExecOptions{Trace: true, Verify: true})
			if err != nil {
				t.Fatalf("execute: %v", err)
			}
			got := res.Trace.Render(trace.RenderOptions{HideWall: true})
			path := filepath.Join("testdata", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN ANALYZE rendering changed; run with -update if intentional.\n--- want\n%s--- got\n%s", want, got)
			}
		})
	}
}
