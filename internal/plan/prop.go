package plan

import (
	"fmt"
	"sort"
	"strings"

	"pref/internal/partition"
)

// PlacedEntry records that an intermediate result still carries a base
// table instance (under an alias) at exactly the placement its partitioning
// scheme dictates — the fact the co-location cases (2) and (3) of
// Section 2.2 need to verify.
type PlacedEntry struct {
	Table  string
	Scheme *partition.TableScheme
}

// Prop is the pair of rewrite properties of Section 2.2 attached to every
// intermediate result, generalized slightly:
//
//   - Part(o) is represented by Repl/Gathered/HashCols/Placed: HashCols
//     non-nil means hash-partitioned by those output columns; Placed lists
//     the table instances whose (possibly PREF) placement is intact, which
//     subsumes the paper's "Part(o).m = PREF" and lets several PREF schemes
//     be carried simultaneously (e.g. after a co-located join).
//   - Dup(o) is represented by DupCols: the live dup-index columns;
//     Dup(o)=1 iff the list is non-empty, and the disjunctive dup=0 filter
//     runs over exactly these columns.
type Prop struct {
	Parts    int
	Repl     bool
	Gathered bool
	HashCols []string
	Placed   map[string]PlacedEntry
	DupCols  []string
	// Equiv records column equality classes established by inner equi
	// joins upstream (l.partkey ≡ ps.partkey after l⋈ps), so co-location
	// matching works regardless of which alias's column a later join
	// predicate mentions.
	Equiv [][]string
}

// EquivSame reports whether two column names are equal or known equal.
func (p *Prop) EquivSame(a, b string) bool {
	if a == b {
		return true
	}
	for _, cls := range p.Equiv {
		ina, inb := false, false
		for _, c := range cls {
			if c == a {
				ina = true
			}
			if c == b {
				inb = true
			}
		}
		if ina && inb {
			return true
		}
	}
	return false
}

// AddEquiv merges the equality a ≡ b into the classes.
func AddEquiv(classes [][]string, a, b string) [][]string {
	ai, bi := -1, -1
	for i, cls := range classes {
		for _, c := range cls {
			if c == a {
				ai = i
			}
			if c == b {
				bi = i
			}
		}
	}
	switch {
	case ai < 0 && bi < 0:
		return append(classes, []string{a, b})
	case ai >= 0 && bi < 0:
		classes[ai] = append(classes[ai], b)
	case ai < 0 && bi >= 0:
		classes[bi] = append(classes[bi], a)
	case ai != bi:
		classes[ai] = append(classes[ai], classes[bi]...)
		classes = append(classes[:bi], classes[bi+1:]...)
	}
	return classes
}

// UnionEquiv concatenates two inputs' classes (their column namespaces
// are disjoint before a join).
func UnionEquiv(a, b [][]string) [][]string {
	out := make([][]string, 0, len(a)+len(b))
	for _, c := range a {
		out = append(out, append([]string(nil), c...))
	}
	for _, c := range b {
		out = append(out, append([]string(nil), c...))
	}
	return out
}

// Dup reports the paper's Dup(o) bit.
func (p *Prop) Dup() bool { return len(p.DupCols) > 0 }

// Method reports the paper's Part(o).m classification for inspection.
func (p *Prop) Method() string {
	switch {
	case p.Repl:
		return "REPL"
	case p.Gathered:
		return "GATHERED"
	case p.HashCols != nil:
		return "HASH"
	case len(p.Placed) > 0:
		return "PREF"
	default:
		return "NONE"
	}
}

func (p *Prop) String() string {
	var placed []string
	for a, e := range p.Placed {
		placed = append(placed, a+":"+e.Table)
	}
	sort.Strings(placed)
	return fmt.Sprintf("{%s hash=%v placed=[%s] dup=%v parts=%d}",
		p.Method(), p.HashCols, strings.Join(placed, ","), p.DupCols, p.Parts)
}

// Clone returns a deep copy: no slice or map is shared with the receiver,
// so appending to or mutating the copy's HashCols/DupCols/Placed/Equiv
// cannot corrupt another operator's recorded properties.
func (p *Prop) Clone() *Prop {
	q := *p
	q.HashCols = cloneCols(p.HashCols)
	q.DupCols = cloneCols(p.DupCols)
	q.Placed = make(map[string]PlacedEntry, len(p.Placed))
	for k, v := range p.Placed {
		q.Placed[k] = v
	}
	q.Equiv = UnionEquiv(p.Equiv, nil)
	return &q
}

// cloneCols copies a column list so a Prop field never aliases a plan
// node's slice or another Prop's field (an append through one alias would
// silently corrupt the other — the hazard the propalias lint rule flags).
func cloneCols(cols []string) []string { return append([]string(nil), cols...) }

func unionPlaced(a, b map[string]PlacedEntry) map[string]PlacedEntry {
	out := make(map[string]PlacedEntry, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

// colPairsEqual reports whether the pairings (a[i], b[i]) form the same set
// of pairs as (c[i], d[i]) — conjunct order is irrelevant, the pairing is
// not.
func colPairsEqual(a, b, c, d []string) bool {
	if len(a) != len(b) || len(c) != len(d) || len(a) != len(c) {
		return false
	}
	mk := func(x, y []string) []string {
		out := make([]string, len(x))
		for i := range x {
			out[i] = x[i] + "\x00" + y[i]
		}
		sort.Strings(out)
		return out
	}
	p, q := mk(a, b), mk(c, d)
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

func qualifyAll(alias string, cols []string) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = Qualify(alias, c)
	}
	return out
}

func sameCols(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
