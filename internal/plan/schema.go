// Package plan implements logical SPJA query plans (selection, projection,
// join, aggregation) and the bottom-up rewrite of Section 2.2 that makes
// them correct and efficient over PREF-partitioned databases: it tracks the
// Dup/Part properties of every intermediate result, inserts re-partitioning
// and PREF-duplicate-elimination operators only where co-location cannot be
// proven, and rewrites semi/anti joins into hasRef-index filters.
package plan

import (
	"fmt"
	"math"

	"pref/internal/value"
)

// Null is the sentinel for SQL NULL in int64-encoded tuples (produced by
// outer joins; skipped by COUNT/SUM/MIN/MAX/AVG).
const Null = math.MinInt64

// Field is one column of an intermediate result. Names are alias-qualified
// ("o.custkey"); the hidden PREF index columns are named "<alias>.__dup"
// and "<alias>.__hasref".
type Field struct {
	Name string
	Kind value.Kind
}

// Schema is the ordered column list of an intermediate result.
type Schema []Field

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustIndex is Index that panics on unknown names. The panic is reserved
// for programmer-error invariants: rewrite-internal lookups of columns the
// rewriter itself introduced. Fallible paths — the engine binding a
// runtime-supplied plan — must use IndexOf/Indexes and surface the error.
func (s Schema) MustIndex(name string) int {
	i := s.Index(name)
	if i < 0 {
		// lint:invariant
		panic(fmt.Sprintf("plan: unknown column %q in schema %v", name, s.Names()))
	}
	return i
}

// IndexOf returns the position of the named column, or an error when the
// schema does not contain it. Engine operators bind plans through this so
// a malformed plan surfaces as a query error, not a goroutine panic.
func (s Schema) IndexOf(name string) (int, error) {
	i := s.Index(name)
	if i < 0 {
		return 0, fmt.Errorf("plan: unknown column %q in schema %v", name, s.Names())
	}
	return i, nil
}

// Indexes resolves several column names at once via IndexOf.
func (s Schema) Indexes(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		idx, err := s.IndexOf(n)
		if err != nil {
			return nil, err
		}
		out[i] = idx
	}
	return out, nil
}

// Names returns all column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Concat returns the concatenation of two schemas (join output).
func (s Schema) Concat(t Schema) Schema {
	out := make(Schema, 0, len(s)+len(t))
	out = append(out, s...)
	out = append(out, t...)
	return out
}

// DupCol returns the hidden dup-index column name for a table alias.
func DupCol(alias string) string { return alias + ".__dup" }

// HasRefCol returns the hidden hasRef-index column name for a table alias.
func HasRefCol(alias string) string { return alias + ".__hasref" }

// Qualify returns the alias-qualified column name.
func Qualify(alias, col string) string { return alias + "." + col }
