package plan

import (
	"strings"
	"testing"

	"pref/internal/partition"
)

// equivalence matching: after l⋈ps on (partkey,suppkey), a join on
// ps.partkey matches part's scheme declared against... (see tpch Q9).
func TestEquivalenceMatchingThroughJoin(t *testing.T) {
	s := testSchema() // customer/orders/lineitem/nation
	cfg := partition.NewConfig(4)
	cfg.SetHash("customer", "custkey")
	cfg.SetPref("orders", "customer", []string{"custkey"}, []string{"custkey"})
	cfg.SetPref("lineitem", "orders", []string{"orderkey"}, []string{"orderkey"})
	cfg.SetReplicated("nation")

	// (o ⋈ l on orderkey) then join customer on o.custkey=c.custkey:
	// direct match. Now the same but joining on l-side equivalent column:
	// after the inner join, l.orderkey ≡ o.orderkey; a (contrived) second
	// join keyed through the equivalence must still be local.
	ol := Join(Scan("orders", "o"), Scan("lineitem", "l"),
		Inner, []string{"o.orderkey"}, []string{"l.orderkey"})
	// join customer via o.custkey (customer referenced by orders' scheme).
	j := Join(ol, Scan("customer", "c"), Inner, []string{"o.custkey"}, []string{"c.custkey"})
	rw, err := Rewrite(j, s, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if countNodes(rw.Root, isRepart) != 0 {
		t.Fatalf("chain join must stay local:\n%s", Format(rw.Root))
	}
	p := rw.Props[rw.Root]
	if !p.EquivSame("o.orderkey", "l.orderkey") {
		t.Fatal("inner join must record o.orderkey ≡ l.orderkey")
	}
}

func TestEquivClassesMergeTransitively(t *testing.T) {
	var classes [][]string
	classes = AddEquiv(classes, "a", "b")
	classes = AddEquiv(classes, "c", "d")
	classes = AddEquiv(classes, "b", "c") // merges both groups
	p := &Prop{Equiv: classes}
	if !p.EquivSame("a", "d") {
		t.Fatalf("a ≡ d should hold transitively, classes = %v", classes)
	}
	if p.EquivSame("a", "zzz") {
		t.Fatal("unrelated columns must not be equivalent")
	}
	if !p.EquivSame("x", "x") {
		t.Fatal("reflexivity")
	}
}

func TestOuterJoinDoesNotAddEquivalence(t *testing.T) {
	s := testSchema()
	cfg := prefChainCfg(4)
	j := Join(Scan("customer", "c"), Scan("orders", "o"),
		LeftOuter, []string{"c.custkey"}, []string{"o.custkey"})
	rw, err := Rewrite(j, s, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := rw.Props[rw.Root]
	// o.custkey can be NULL on unmatched rows: not equivalent.
	if p.EquivSame("c.custkey", "o.custkey") {
		t.Fatal("left outer join must not record predicate equivalence")
	}
}

func TestBroadcastHeuristic(t *testing.T) {
	s := testSchema()
	// Misaligned join: orders hash(orderkey) ⋈ customer hash(name) on
	// custkey. With sizes making customer tiny, it should broadcast.
	cfg := partition.NewConfig(8)
	cfg.SetHash("orders", "orderkey")
	cfg.SetHash("customer", "name")
	cfg.SetHash("lineitem", "linekey")
	cfg.SetReplicated("nation")
	mk := func() *JoinNode {
		return Join(Scan("orders", "o"), Scan("customer", "c"),
			Inner, []string{"o.custkey"}, []string{"c.custkey"})
	}

	sizes := map[string]int{"orders": 100000, "customer": 50, "lineitem": 1, "nation": 1}
	rw, err := Rewrite(mk(), s, cfg, Options{Sizes: sizes})
	if err != nil {
		t.Fatal(err)
	}
	bcasts := countNodes(rw.Root, func(n Node) bool { _, ok := n.(*BroadcastNode); return ok })
	if bcasts != 1 || countNodes(rw.Root, isRepart) != 0 {
		t.Fatalf("tiny side should broadcast:\n%s", Format(rw.Root))
	}

	// Comparable sizes: repartition both.
	sizes2 := map[string]int{"orders": 1000, "customer": 900, "lineitem": 1, "nation": 1}
	rw2, err := Rewrite(mk(), s, cfg, Options{Sizes: sizes2})
	if err != nil {
		t.Fatal(err)
	}
	if countNodes(rw2.Root, func(n Node) bool { _, ok := n.(*BroadcastNode); return ok }) != 0 {
		t.Fatalf("comparable sides must repartition:\n%s", Format(rw2.Root))
	}

	// No sizes: heuristic off.
	rw3, err := Rewrite(mk(), s, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if countNodes(rw3.Root, func(n Node) bool { _, ok := n.(*BroadcastNode); return ok }) != 0 {
		t.Fatal("no sizes ⇒ no broadcast heuristic")
	}
}

func TestBroadcastLeftOnlyForInner(t *testing.T) {
	s := testSchema()
	cfg := partition.NewConfig(8)
	cfg.SetHash("orders", "orderkey")
	cfg.SetHash("customer", "name")
	cfg.SetHash("lineitem", "linekey")
	cfg.SetReplicated("nation")
	sizes := map[string]int{"orders": 50, "customer": 100000, "lineitem": 1, "nation": 1}

	// Inner: left (orders) is tiny → broadcast left.
	inner := Join(Scan("orders", "o"), Scan("customer", "c"),
		Inner, []string{"o.custkey"}, []string{"c.custkey"})
	rw, err := Rewrite(inner, s, cfg, Options{Sizes: sizes})
	if err != nil {
		t.Fatal(err)
	}
	if countNodes(rw.Root, func(n Node) bool { _, ok := n.(*BroadcastNode); return ok }) != 1 {
		t.Fatalf("inner join should broadcast the tiny left side:\n%s", Format(rw.Root))
	}

	// Anti: broadcasting the LEFT (output) side is unsound — must not.
	anti := Join(Scan("orders", "o2"), Scan("customer", "c2"),
		Anti, []string{"o2.custkey"}, []string{"c2.custkey"})
	rw2, err := Rewrite(anti, s, cfg, Options{Sizes: sizes})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range findNodes(rw2.Root, func(n Node) bool { _, ok := n.(*BroadcastNode); return ok }) {
		if _, isScanLeft := n.(*BroadcastNode).Child.(*ScanNode); isScanLeft {
			if strings.Contains(Format(n), "orders") {
				t.Fatalf("anti join must not broadcast its left side:\n%s", Format(rw2.Root))
			}
		}
	}
}

func TestEstimateRows(t *testing.T) {
	s := testSchema()
	cfg := prefChainCfg(4)
	r := &Rewriter{Schema: s, Cfg: cfg, Opt: Options{Sizes: map[string]int{
		"orders": 1000, "lineitem": 4000, "customer": 100, "nation": 5,
	}}}
	if got := r.estimateRows(Scan("orders", "o")); got != 1000 {
		t.Fatalf("scan estimate = %v", got)
	}
	f := Filter(Scan("orders", "o"), Gt(Col("o.total"), Lit(1)))
	if got := r.estimateRows(f); got != 250 {
		t.Fatalf("filter estimate = %v", got)
	}
	j := Join(Scan("lineitem", "l"), Scan("orders", "o2"),
		Inner, []string{"l.orderkey"}, []string{"o2.orderkey"})
	if got := r.estimateRows(j); got != 4000 {
		t.Fatalf("join estimate = %v (max of inputs)", got)
	}
	semi := Join(Scan("orders", "o3"), Scan("lineitem", "l2"),
		Semi, []string{"o3.orderkey"}, []string{"l2.orderkey"})
	if got := r.estimateRows(semi); got != 1000 {
		t.Fatalf("semi estimate = %v (left side)", got)
	}
	unknown := &Rewriter{Schema: s, Cfg: cfg, Opt: Options{Sizes: map[string]int{}}}
	if got := unknown.estimateRows(Scan("orders", "x")); got >= 0 {
		t.Fatalf("unknown size must be negative, got %v", got)
	}
}

func TestLocalAggViaSetContainment(t *testing.T) {
	s := testSchema()
	cfg := partition.NewConfig(4)
	cfg.SetHash("orders", "custkey")
	cfg.SetHash("customer", "custkey")
	cfg.SetHash("lineitem", "linekey")
	cfg.SetReplicated("nation")
	// Group by (total, custkey): custkey is NOT a prefix but covers the
	// hash column — local per the set-containment rule.
	agg := Aggregate(Scan("orders", "o"), []string{"o.total", "o.custkey"}, Count("n"))
	rw, err := Rewrite(agg, s, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if countNodes(rw.Root, isRepart) != 0 {
		t.Fatalf("covered group-by must aggregate locally:\n%s", Format(rw.Root))
	}
}

func TestDupFreeChainScanHasNoDupCols(t *testing.T) {
	s := testSchema()
	// customer HASH(custkey); orders PREF on customer (custkey = pk):
	// orders is dup-free but NOT hash-equivalent on any of its own
	// columns' hash... actually it IS hash-equivalent (custkey mapped).
	// Use a two-hop chain where equivalence breaks but dup-freeness holds:
	// lineitem PREF on orders via orderkey (pk of orders).
	cfg := partition.NewConfig(4)
	cfg.SetHash("customer", "custkey")
	cfg.SetPref("orders", "customer", []string{"custkey"}, []string{"custkey"})
	cfg.SetPref("lineitem", "orders", []string{"orderkey"}, []string{"orderkey"})
	cfg.SetReplicated("nation")

	if _, ok := cfg.HashEquivalent("lineitem"); ok {
		t.Fatal("lineitem must not be hash-equivalent (orderkey ∉ orders' equivalent cols)")
	}
	if !cfg.DupFree(s, "lineitem") {
		t.Fatal("lineitem must be provably dup-free (unique-key chain)")
	}
	rw, err := Rewrite(Scan("lineitem", "l"), s, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rw.RootProp().Dup() {
		t.Fatalf("dup-free chain scan must carry no dup columns: %v", rw.RootProp())
	}
}
