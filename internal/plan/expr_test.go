package plan

import (
	"strings"
	"testing"

	"pref/internal/value"
)

func exprSchema() Schema {
	return Schema{
		{Name: "t.a", Kind: value.Int},
		{Name: "t.b", Kind: value.Money},
		{Name: "t.d", Kind: value.Date},
		{Name: "t.f", Kind: value.Float},
	}
}

func evalBool(t *testing.T, e BoolExpr, row value.Tuple) bool {
	t.Helper()
	f, err := e.Bind(exprSchema())
	if err != nil {
		t.Fatal(err)
	}
	return f(row)
}

func evalVal(t *testing.T, e ValExpr, row value.Tuple) int64 {
	t.Helper()
	f, err := e.Bind(exprSchema())
	if err != nil {
		t.Fatal(err)
	}
	return f(row)
}

func TestComparisons(t *testing.T) {
	row := value.Tuple{5, value.FromMoney(12.34), value.FromDate(1995, 6, 1), value.FromFloat(2.5)}
	cases := []struct {
		e    BoolExpr
		want bool
	}{
		{Eq(Col("t.a"), Lit(5)), true},
		{Eq(Col("t.a"), Lit(6)), false},
		{Ne(Col("t.a"), Lit(6)), true},
		{Lt(Col("t.a"), Lit(6)), true},
		{Le(Col("t.a"), Lit(5)), true},
		{Gt(Col("t.a"), Lit(5)), false},
		{Ge(Col("t.a"), Lit(5)), true},
		{Eq(Col("t.b"), MoneyLit(12.34)), true},
		{Lt(Col("t.d"), DateLit(1996, 1, 1)), true},
		{Ge(Col("t.d"), DateLit(1995, 6, 1)), true},
		{And(Gt(Col("t.a"), Lit(1)), Lt(Col("t.a"), Lit(9))), true},
		{And(Gt(Col("t.a"), Lit(1)), Lt(Col("t.a"), Lit(3))), false},
		{Or(Eq(Col("t.a"), Lit(1)), Eq(Col("t.a"), Lit(5))), true},
		{Or(Eq(Col("t.a"), Lit(1)), Eq(Col("t.a"), Lit(2))), false},
		{Not(Eq(Col("t.a"), Lit(5))), false},
		{In("t.a", 1, 5, 9), true},
		{In("t.a", 1, 2, 9), false},
		{And(), true},
		{Or(), false},
	}
	for i, c := range cases {
		if got := evalBool(t, c.e, row); got != c.want {
			t.Errorf("case %d (%s) = %v, want %v", i, c.e.String(), got, c.want)
		}
	}
}

func TestNullComparisonsAreFalse(t *testing.T) {
	row := value.Tuple{Null, 0, 0, 0}
	for _, e := range []BoolExpr{
		Eq(Col("t.a"), Lit(0)),
		Ne(Col("t.a"), Lit(0)),
		Lt(Col("t.a"), Lit(0)),
		Gt(Col("t.a"), Lit(0)),
	} {
		if evalBool(t, e, row) {
			t.Errorf("%s on NULL must be false", e.String())
		}
	}
}

func TestFuncExpr(t *testing.T) {
	row := value.Tuple{7, value.FromMoney(10), 0, 0}
	double := F("double", value.Int, []string{"t.a"}, func(v []int64) int64 { return 2 * v[0] })
	if got := evalVal(t, double, row); got != 14 {
		t.Fatalf("double = %d", got)
	}
	mixed := F("mix", value.Money, []string{"t.a", "t.b"},
		func(v []int64) int64 { return v[0] * v[1] })
	if got := evalVal(t, mixed, row); got != 7*1000 {
		t.Fatalf("mix = %d", got)
	}
	if mixed.Kind(exprSchema()) != value.Money {
		t.Fatal("func kind")
	}
	if _, err := F("bad", value.Int, []string{"t.zzz"}, nil).Bind(exprSchema()); err == nil {
		t.Fatal("unknown func column must error")
	}
}

func TestBindErrors(t *testing.T) {
	if _, err := Col("t.zzz").Bind(exprSchema()); err != nil {
		// expected
	} else {
		t.Fatal("unknown column must error")
	}
	for _, e := range []BoolExpr{
		Eq(Col("t.zzz"), Lit(1)),
		Eq(Lit(1), Col("t.zzz")),
		And(Eq(Col("t.zzz"), Lit(1))),
		Or(Eq(Col("t.zzz"), Lit(1))),
		Not(Eq(Col("t.zzz"), Lit(1))),
		In("t.zzz", 1),
	} {
		if _, err := e.Bind(exprSchema()); err == nil {
			t.Errorf("%s should fail to bind", e.String())
		}
	}
}

func TestExprStrings(t *testing.T) {
	e := And(Eq(Col("t.a"), Lit(5)), Not(In("t.b", 1, 2)))
	s := e.String()
	for _, want := range []string{"t.a=5", "NOT", "IN", "AND"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if Col("t.a").Kind(exprSchema()) != value.Int {
		t.Fatal("col kind")
	}
	if Col("nope").Kind(exprSchema()) != value.Int {
		t.Fatal("unknown col kind defaults to Int")
	}
	if MoneyLit(1).Kind(exprSchema()) != value.Money {
		t.Fatal("money lit kind")
	}
	for op, want := range map[CmpOp]string{EQ: "=", NE: "<>", LT: "<", LE: "<=", GT: ">", GE: ">="} {
		if op.String() != want {
			t.Errorf("op %d string = %q", op, op.String())
		}
	}
}

func TestEqualityBindingsExtraction(t *testing.T) {
	pred := And(
		Eq(Col("t.a"), Lit(7)),
		Eq(Lit(3), Col("t.b")),
		In("t.d", 9),
		Gt(Col("t.f"), Lit(1)),     // not an equality
		Or(Eq(Col("t.a"), Lit(1))), // under OR: ignored
		Ne(Col("t.a"), Lit(2)),     // not EQ
		Eq(Col("t.a"), Col("t.b")), // col=col: ignored
	)
	b := EqualityBindings(pred)
	if len(b) != 3 || b["t.a"] != 7 || b["t.b"] != 3 || b["t.d"] != 9 {
		t.Fatalf("bindings = %v", b)
	}
	if len(EqualityBindings(Or())) != 0 {
		t.Fatal("empty OR yields nothing")
	}
}
