package plan

import (
	"strings"
	"testing"

	"pref/internal/catalog"
	"pref/internal/partition"
	"pref/internal/value"
)

func testSchema() *catalog.Schema {
	s := catalog.NewSchema("t")
	s.MustAddTable(catalog.MustTable("customer",
		[]catalog.Column{{Name: "custkey", Kind: value.Int}, {Name: "name", Kind: value.Str}}, "custkey"))
	s.MustAddTable(catalog.MustTable("orders",
		[]catalog.Column{{Name: "orderkey", Kind: value.Int}, {Name: "custkey", Kind: value.Int}, {Name: "total", Kind: value.Money}}, "orderkey"))
	s.MustAddTable(catalog.MustTable("lineitem",
		[]catalog.Column{{Name: "linekey", Kind: value.Int}, {Name: "orderkey", Kind: value.Int}}, "linekey"))
	s.MustAddTable(catalog.MustTable("nation",
		[]catalog.Column{{Name: "nationkey", Kind: value.Int}}, "nationkey"))
	return s
}

// prefChainCfg seeds at lineitem HASH(orderkey): orders is then
// hash-equivalent (provably duplicate-free); customer is genuinely
// PREF-partitioned with duplicates.
func prefChainCfg(n int) *partition.Config {
	cfg := partition.NewConfig(n)
	cfg.SetHash("lineitem", "orderkey")
	cfg.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	cfg.SetPref("customer", "orders", []string{"custkey"}, []string{"custkey"})
	cfg.SetReplicated("nation")
	return cfg
}

// scatteredCfg seeds at lineitem HASH(linekey): orderkeys scatter, so
// orders (and customer) carry real PREF duplicates.
func scatteredCfg(n int) *partition.Config {
	cfg := partition.NewConfig(n)
	cfg.SetHash("lineitem", "linekey")
	cfg.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	cfg.SetPref("customer", "orders", []string{"custkey"}, []string{"custkey"})
	cfg.SetReplicated("nation")
	return cfg
}

func countNodes(n Node, pred func(Node) bool) int {
	c := 0
	if pred(n) {
		c++
	}
	for _, ch := range n.Children() {
		c += countNodes(ch, pred)
	}
	return c
}

func isRepart(n Node) bool { _, ok := n.(*RepartitionNode); return ok }
func isDistinct(n Node) bool {
	_, ok := n.(*DistinctPrefNode)
	return ok
}

func TestScanProps(t *testing.T) {
	s := testSchema()
	cfg := prefChainCfg(4)

	rw, err := Rewrite(Scan("lineitem", "l"), s, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := scanProp(t, rw)
	if p.Method() != "HASH" || !sameCols(p.HashCols, []string{"l.orderkey"}) {
		t.Fatalf("lineitem scan prop = %v", p)
	}
	if p.Dup() {
		t.Fatal("hash scan must be dup-free")
	}

	// orders is PREF but hash-equivalent (seed hashes the predicate
	// column): the scan is recognized as HASH on o.orderkey, dup-free.
	rw, err = Rewrite(Scan("orders", "o"), s, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p = scanProp(t, rw)
	if p.Method() != "HASH" || !sameCols(p.HashCols, []string{"o.orderkey"}) || p.Dup() {
		t.Fatalf("hash-equivalent orders scan prop = %v", p)
	}
	// The scan itself exposes the hidden index columns; the finalized
	// root projects them away.
	scanNode := findNodes(rw.Root, func(n Node) bool { _, ok := n.(*ScanNode); return ok })[0]
	sch := rw.Schema(scanNode)
	if sch.Index("o.__dup") < 0 || sch.Index("o.__hasref") < 0 {
		t.Fatalf("pref scan must expose index columns, got %v", sch.Names())
	}
	if root := rw.Schema(rw.Root); root.Index("o.__dup") >= 0 {
		t.Fatalf("finalized root must hide index columns, got %v", root.Names())
	}

	// customer is genuinely PREF-partitioned: dup columns live.
	rw, err = Rewrite(Scan("customer", "c"), s, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p = scanProp(t, rw)
	if p.Method() != "PREF" || !p.Dup() {
		t.Fatalf("customer scan prop = %v", p)
	}
	// …and the finalized root is duplicate-free.
	if rw.RootProp().Dup() {
		t.Fatal("finalized root must be dup-free")
	}

	// Under the scattered seed, orders is not hash-equivalent.
	rw, err = Rewrite(Scan("orders", "o2"), s, scatteredCfg(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	p = scanProp(t, rw)
	if p.Method() != "PREF" || !p.Dup() {
		t.Fatalf("scattered orders scan prop = %v", p)
	}

	rw, err = Rewrite(Scan("nation", "n"), s, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rw.RootProp().Repl {
		t.Fatal("nation scan must be replicated")
	}
}

// scanProp returns the properties of the (single) scan in a plan.
func scanProp(t *testing.T, rw *Rewritten) *Prop {
	t.Helper()
	scans := findNodes(rw.Root, func(n Node) bool { _, ok := n.(*ScanNode); return ok })
	if len(scans) != 1 {
		t.Fatalf("want 1 scan, got %d", len(scans))
	}
	return rw.Props[scans[0]]
}

func TestCase2JoinNoExchange(t *testing.T) {
	s := testSchema()
	j := Join(Scan("lineitem", "l"), Scan("orders", "o"),
		Inner, []string{"l.orderkey"}, []string{"o.orderkey"})
	rw, err := Rewrite(j, s, prefChainCfg(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if countNodes(rw.Root, isRepart) != 0 {
		t.Fatalf("case 2 join must not repartition:\n%s", Format(rw.Root))
	}
	// Case 2: Dup(o) = 0 even though the orders input has duplicates.
	if rw.RootProp().Dup() {
		t.Fatalf("case 2 join output must be dup-free, prop %v", rw.RootProp())
	}
}

func TestCase3JoinKeepsReferencedDups(t *testing.T) {
	s := testSchema()
	// Under the scattered seed orders has real duplicates; the o⋈c join
	// output (case 3, referenced input = orders) inherits them.
	j := Join(Scan("orders", "o"), Scan("customer", "c"),
		Inner, []string{"o.custkey"}, []string{"c.custkey"})
	rw, err := Rewrite(j, s, scatteredCfg(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if countNodes(rw.Root, isRepart) != 0 {
		t.Fatalf("case 3 join must not repartition:\n%s", Format(rw.Root))
	}
	joins := findNodes(rw.Root, func(n Node) bool { _, ok := n.(*JoinNode); return ok })
	p := rw.Props[joins[0]]
	if !p.Dup() || len(p.DupCols) != 1 || p.DupCols[0] != "o.__dup" {
		t.Fatalf("case 3 dup = %v, want [o.__dup]", p.DupCols)
	}
	// The finalized root eliminates them.
	if rw.RootProp().Dup() {
		t.Fatal("finalized root must be dup-free")
	}

	// Under the hash-equivalent chain the referenced input is provably
	// duplicate-free, so the join output is too.
	j2 := Join(Scan("orders", "o2"), Scan("customer", "c2"),
		Inner, []string{"o2.custkey"}, []string{"c2.custkey"})
	rw2, err := Rewrite(j2, s, prefChainCfg(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if countNodes(rw2.Root, isRepart) != 0 {
		t.Fatalf("join must stay local:\n%s", Format(rw2.Root))
	}
	if rw2.RootProp().Dup() {
		t.Fatalf("hash-equivalent referenced input ⇒ dup-free output, got %v", rw2.RootProp())
	}
}

func TestCase1HashAligned(t *testing.T) {
	s := testSchema()
	cfg := partition.NewConfig(4)
	cfg.SetHash("orders", "custkey")
	cfg.SetHash("customer", "custkey")
	cfg.SetHash("lineitem", "orderkey")
	cfg.SetReplicated("nation")
	j := Join(Scan("orders", "o"), Scan("customer", "c"),
		Inner, []string{"o.custkey"}, []string{"c.custkey"})
	rw, err := Rewrite(j, s, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if countNodes(rw.Root, isRepart) != 0 {
		t.Fatalf("case 1 join must not repartition:\n%s", Format(rw.Root))
	}
	if rw.RootProp().Method() != "HASH" {
		t.Fatalf("case 1 output should stay hash, got %v", rw.RootProp())
	}
}

func TestMisalignedJoinRepartitionsOnlyOneSide(t *testing.T) {
	s := testSchema()
	cfg := partition.NewConfig(4)
	cfg.SetHash("orders", "custkey") // aligned with the join
	cfg.SetHash("customer", "name")  // misaligned
	cfg.SetHash("lineitem", "linekey")
	cfg.SetReplicated("nation")
	j := Join(Scan("orders", "o"), Scan("customer", "c"),
		Inner, []string{"o.custkey"}, []string{"c.custkey"})
	rw, err := Rewrite(j, s, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := countNodes(rw.Root, isRepart); got != 1 {
		t.Fatalf("want exactly 1 repartition (customer side), got %d:\n%s", got, Format(rw.Root))
	}
}

func TestFigure3RewriteShape(t *testing.T) {
	// The paper's Figure 3: join is local (case 3), aggregation input is
	// PREF + dup, so exactly one repartition (on the group-by column)
	// which also eliminates duplicates. The scattered seed is used so the
	// orders input genuinely carries duplicates, as in the figure.
	s := testSchema()
	j := Join(Scan("orders", "o"), Scan("customer", "c"),
		Inner, []string{"o.custkey"}, []string{"c.custkey"})
	agg := Aggregate(j, []string{"c.name"}, Sum(Col("o.total"), "revenue"))
	rw, err := Rewrite(agg, s, scatteredCfg(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	reps := findNodes(rw.Root, isRepart)
	if len(reps) != 1 {
		t.Fatalf("want 1 repartition, got %d:\n%s", len(reps), Format(rw.Root))
	}
	rep := reps[0].(*RepartitionNode)
	if !sameCols(rep.Cols, []string{"c.name"}) {
		t.Fatalf("repartition cols = %v, want [c.name]", rep.Cols)
	}
	if len(rep.DupCols) == 0 {
		t.Fatal("the repartition must eliminate the PREF duplicates in transit")
	}
	if rw.RootProp().Dup() {
		t.Fatal("aggregate output must be dup-free")
	}
}

func findNodes(n Node, pred func(Node) bool) []Node {
	var out []Node
	if pred(n) {
		out = append(out, n)
	}
	for _, c := range n.Children() {
		out = append(out, findNodes(c, pred)...)
	}
	return out
}

func TestHasRefSemiJoinRewrite(t *testing.T) {
	s := testSchema()
	j := Join(Scan("customer", "c"), Scan("orders", "o"),
		Semi, []string{"c.custkey"}, []string{"o.custkey"})
	rw, err := Rewrite(j, s, prefChainCfg(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := Format(rw.Root)
	if !strings.Contains(out, "c.__hasref=1") {
		t.Fatalf("semi join should become a hasref filter:\n%s", out)
	}
	if strings.Contains(out, "Join") {
		t.Fatalf("no join should remain:\n%s", out)
	}
	// Anti variant.
	j2 := Join(Scan("customer", "c2"), Scan("orders", "o2"),
		Anti, []string{"c2.custkey"}, []string{"o2.custkey"})
	rw2, err := Rewrite(j2, s, prefChainCfg(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Format(rw2.Root), "c2.__hasref=0") {
		t.Fatalf("anti join rewrite wrong:\n%s", Format(rw2.Root))
	}
}

func TestHasRefRewriteGuards(t *testing.T) {
	s := testSchema()
	// Filtered right side: shortcut must not fire.
	right := Filter(Scan("orders", "o"), Gt(Col("o.total"), Lit(5)))
	j := Join(Scan("customer", "c"), right, Semi, []string{"c.custkey"}, []string{"o.custkey"})
	rw, err := Rewrite(j, s, prefChainCfg(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rw.Root.(*FilterNode); ok {
		if strings.Contains(rw.Root.(*FilterNode).Pred.String(), "__hasref") {
			t.Fatal("hasRef shortcut must not fire with a filtered right side")
		}
	}
	// Wrong predicate: no shortcut.
	j2 := Join(Scan("customer", "c2"), Scan("orders", "o2"),
		Semi, []string{"c2.name"}, []string{"o2.custkey"})
	rw2, err := Rewrite(j2, s, prefChainCfg(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := rw2.Root.(*FilterNode); ok && strings.Contains(f.Pred.String(), "__hasref") {
		t.Fatal("hasRef shortcut must not fire on a non-partitioning predicate")
	}
	// Disabled by option.
	j3 := Join(Scan("customer", "c3"), Scan("orders", "o3"),
		Semi, []string{"c3.custkey"}, []string{"o3.custkey"})
	rw3, err := Rewrite(j3, s, prefChainCfg(4), Options{DisableHasRefOpt: true})
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := rw3.Root.(*FilterNode); ok && strings.Contains(f.Pred.String(), "__hasref") {
		t.Fatal("hasRef shortcut must respect DisableHasRefOpt")
	}
}

func TestProjectionInsertsDistinct(t *testing.T) {
	s := testSchema()
	p := ProjectCols(Scan("customer", "c"), "c.custkey")
	rw, err := Rewrite(p, s, prefChainCfg(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if countNodes(rw.Root, isDistinct) != 1 {
		t.Fatalf("projection over dup input needs a DistinctPref:\n%s", Format(rw.Root))
	}
	if rw.RootProp().Dup() {
		t.Fatal("projection output must be dup-free")
	}
	// Over a hash table: no distinct.
	p2 := ProjectCols(Scan("lineitem", "l"), "l.linekey")
	rw2, err := Rewrite(p2, s, prefChainCfg(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if countNodes(rw2.Root, isDistinct) != 0 {
		t.Fatal("hash input needs no distinct")
	}
}

func TestDisableDupIndexUsesValueDistinct(t *testing.T) {
	s := testSchema()
	p := ProjectCols(Scan("customer", "c"), "c.custkey")
	rw, err := Rewrite(p, s, prefChainCfg(4), Options{DisableDupIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	byValue := countNodes(rw.Root, func(n Node) bool { _, ok := n.(*DistinctByValueNode); return ok })
	if byValue != 1 || countNodes(rw.Root, isDistinct) != 0 {
		t.Fatalf("disabled dup index should use value distinct:\n%s", Format(rw.Root))
	}
}

func TestAggregateLocalOnAlignedHash(t *testing.T) {
	s := testSchema()
	cfg := partition.NewConfig(4)
	cfg.SetHash("orders", "custkey")
	cfg.SetHash("customer", "custkey")
	cfg.SetHash("lineitem", "linekey")
	cfg.SetReplicated("nation")
	agg := Aggregate(Scan("orders", "o"), []string{"o.custkey"}, Sum(Col("o.total"), "s"))
	rw, err := Rewrite(agg, s, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if countNodes(rw.Root, isRepart) != 0 {
		t.Fatalf("aligned group-by must be local:\n%s", Format(rw.Root))
	}
	// Group-by with extra trailing columns still aligned.
	agg2 := Aggregate(Scan("orders", "o2"), []string{"o2.custkey", "o2.orderkey"}, Count("n"))
	rw2, err := Rewrite(agg2, s, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if countNodes(rw2.Root, isRepart) != 0 {
		t.Fatal("prefix-aligned group-by must be local")
	}
	// Misaligned: repartition.
	agg3 := Aggregate(Scan("orders", "o3"), []string{"o3.orderkey"}, Count("n"))
	rw3, err := Rewrite(agg3, s, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if countNodes(rw3.Root, isRepart) != 1 {
		t.Fatal("misaligned group-by must repartition")
	}
}

func TestRewriteErrors(t *testing.T) {
	s := testSchema()
	cfg := prefChainCfg(2)
	cases := []Node{
		Scan("nope", ""),
		Filter(Scan("orders", "o"), Gt(Col("o.missing"), Lit(1))),
		Join(Scan("orders", "o"), Scan("customer", "c"), Inner, []string{"o.custkey"}, []string{"c.custkey", "c.name"}),
		Aggregate(Scan("orders", "o"), []string{"o.missing"}, Count("n")),
		Join(Scan("orders", "o"), Scan("customer", "c"), Inner, []string{"o.nope"}, []string{"c.custkey"}),
	}
	for i, n := range cases {
		if _, err := Rewrite(n, s, cfg, Options{}); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestColPairsEqual(t *testing.T) {
	if !colPairsEqual([]string{"a", "b"}, []string{"x", "y"}, []string{"b", "a"}, []string{"y", "x"}) {
		t.Fatal("conjunct order must not matter")
	}
	if colPairsEqual([]string{"a", "b"}, []string{"x", "y"}, []string{"a", "b"}, []string{"y", "x"}) {
		t.Fatal("pairings differ")
	}
	if colPairsEqual([]string{"a"}, []string{"x"}, []string{"a", "b"}, []string{"x", "y"}) {
		t.Fatal("length mismatch")
	}
}

func TestFormatAndStrings(t *testing.T) {
	s := testSchema()
	j := Join(Scan("orders", "o"), Scan("customer", "c"),
		Inner, []string{"o.custkey"}, []string{"c.custkey"})
	agg := Aggregate(j, []string{"c.name"}, Sum(Col("o.total"), "rev"))
	rw, err := Rewrite(agg, s, prefChainCfg(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := Format(rw.Root)
	for _, want := range []string{"Aggregate", "Repartition", "INNERJoin", "Scan(orders AS o)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}
