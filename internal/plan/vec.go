package plan

import "fmt"

// Compiled expression IR for the vectorized engine.
//
// Bind produces row-at-a-time closures; the columnar operators instead want
// an index-resolved tree they can drive with tight per-column loops. Compile
// walks the unexported expression implementations once per (expression,
// schema) pair and returns an exported IR with every column reference
// resolved to its position, so internal/batch can special-case the hot
// shapes (column-vs-literal comparisons, conjunctions) without reflection
// or per-row closure calls. EvalRow mirrors Bind's semantics exactly — the
// differential suites hold the two accountable to each other.

// VExprOp classifies a compiled scalar expression.
type VExprOp uint8

const (
	// VCol reads one column.
	VCol VExprOp = iota
	// VLit yields a constant.
	VLit
	// VFunc gathers Cols into a scratch buffer and applies Fn.
	VFunc
)

// VExpr is one compiled scalar expression node.
type VExpr struct {
	Op  VExprOp
	Col int     // VCol: resolved column index
	Lit int64   // VLit: constant payload
	Fn  func([]int64) int64
	// Cols are VFunc's resolved argument columns, gathered in order.
	Cols []int
}

// EvalRow evaluates the compiled scalar over one tuple, using scratch as
// the VFunc argument buffer (len ≥ len(Cols); nil allocates).
func (e *VExpr) EvalRow(t []int64, scratch []int64) int64 {
	switch e.Op {
	case VCol:
		return t[e.Col]
	case VLit:
		return e.Lit
	default:
		if cap(scratch) < len(e.Cols) {
			scratch = make([]int64, len(e.Cols))
		}
		scratch = scratch[:len(e.Cols)]
		for i, c := range e.Cols {
			scratch[i] = t[c]
		}
		return e.Fn(scratch)
	}
}

// VPredOp classifies a compiled predicate node.
type VPredOp uint8

const (
	// VCmp compares two scalar expressions with Cmp (NULL operands fail).
	VCmp VPredOp = iota
	// VAnd is the conjunction of Kids (true when empty).
	VAnd
	// VOr is the disjunction of Kids (false when empty).
	VOr
	// VNot negates Kids[0].
	VNot
	// VIn tests membership of column Col in Set.
	VIn
)

// VPred is one compiled predicate node.
type VPred struct {
	Op   VPredOp
	Cmp  CmpOp  // VCmp
	L, R *VExpr // VCmp operands
	Kids []*VPred
	Col  int // VIn: resolved column index
	Set  map[int64]bool
}

// EvalRow evaluates the compiled predicate over one tuple with the same
// semantics as the Bind closure (comparisons on NULL are false; the
// comparison itself runs on the encoded int64 payloads, exactly like the
// row engine).
func (p *VPred) EvalRow(t []int64, scratch []int64) bool {
	switch p.Op {
	case VCmp:
		a, b := p.L.EvalRow(t, scratch), p.R.EvalRow(t, scratch)
		if a == Null || b == Null {
			return false
		}
		return p.Cmp.apply(a, b)
	case VAnd:
		for _, k := range p.Kids {
			if !k.EvalRow(t, scratch) {
				return false
			}
		}
		return true
	case VOr:
		for _, k := range p.Kids {
			if k.EvalRow(t, scratch) {
				return true
			}
		}
		return false
	case VNot:
		return !p.Kids[0].EvalRow(t, scratch)
	default: // VIn
		return p.Set[t[p.Col]]
	}
}

// MaxFuncArgs reports the widest VFunc argument list in the tree, sizing a
// shared scratch buffer for EvalRow-driven loops.
func (e *VExpr) MaxFuncArgs() int {
	if e == nil {
		return 0
	}
	if e.Op == VFunc {
		return len(e.Cols)
	}
	return 0
}

// MaxFuncArgs reports the widest VFunc argument list anywhere in the
// predicate tree.
func (p *VPred) MaxFuncArgs() int {
	if p == nil {
		return 0
	}
	n := 0
	if p.L != nil && p.L.MaxFuncArgs() > n {
		n = p.L.MaxFuncArgs()
	}
	if p.R != nil && p.R.MaxFuncArgs() > n {
		n = p.R.MaxFuncArgs()
	}
	for _, k := range p.Kids {
		if m := k.MaxFuncArgs(); m > n {
			n = m
		}
	}
	return n
}

// CompileExpr resolves a scalar expression against a schema into the
// vectorized IR.
func CompileExpr(e ValExpr, s Schema) (*VExpr, error) {
	switch e := e.(type) {
	case colExpr:
		i := s.Index(e.name)
		if i < 0 {
			return nil, fmt.Errorf("plan: unknown column %q (have %v)", e.name, s.Names())
		}
		return &VExpr{Op: VCol, Col: i}, nil
	case litExpr:
		return &VExpr{Op: VLit, Lit: e.v}, nil
	case funcExpr:
		idx := make([]int, len(e.cols))
		for i, c := range e.cols {
			j := s.Index(c)
			if j < 0 {
				return nil, fmt.Errorf("plan: func %s: unknown column %q", e.name, c)
			}
			idx[i] = j
		}
		return &VExpr{Op: VFunc, Fn: e.fn, Cols: idx}, nil
	default:
		return nil, fmt.Errorf("plan: cannot compile scalar expression %T", e)
	}
}

// CompilePred resolves a predicate against a schema into the vectorized IR.
func CompilePred(p BoolExpr, s Schema) (*VPred, error) {
	switch p := p.(type) {
	case cmpExpr:
		l, err := CompileExpr(p.l, s)
		if err != nil {
			return nil, err
		}
		r, err := CompileExpr(p.r, s)
		if err != nil {
			return nil, err
		}
		return &VPred{Op: VCmp, Cmp: p.op, L: l, R: r}, nil
	case andExpr:
		kids, err := compileKids(p.xs, s)
		if err != nil {
			return nil, err
		}
		return &VPred{Op: VAnd, Kids: kids}, nil
	case orExpr:
		kids, err := compileKids(p.xs, s)
		if err != nil {
			return nil, err
		}
		return &VPred{Op: VOr, Kids: kids}, nil
	case notExpr:
		k, err := CompilePred(p.x, s)
		if err != nil {
			return nil, err
		}
		return &VPred{Op: VNot, Kids: []*VPred{k}}, nil
	case inExpr:
		i := s.Index(p.col)
		if i < 0 {
			return nil, fmt.Errorf("plan: unknown column %q in IN", p.col)
		}
		return &VPred{Op: VIn, Col: i, Set: p.set}, nil
	default:
		return nil, fmt.Errorf("plan: cannot compile predicate %T", p)
	}
}

func compileKids(xs []BoolExpr, s Schema) ([]*VPred, error) {
	kids := make([]*VPred, len(xs))
	for i, x := range xs {
		k, err := CompilePred(x, s)
		if err != nil {
			return nil, err
		}
		kids[i] = k
	}
	return kids, nil
}
