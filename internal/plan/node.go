package plan

import (
	"fmt"
	"strings"

	"pref/internal/value"
)

// JoinType distinguishes the join flavors of an SPJA plan.
type JoinType int

// Join flavors.
const (
	Inner JoinType = iota
	LeftOuter
	Semi
	Anti
)

func (j JoinType) String() string {
	return [...]string{"INNER", "LEFT", "SEMI", "ANTI"}[j]
}

// AggFn identifies an aggregate function.
type AggFn int

// Aggregate functions.
const (
	SumFn AggFn = iota
	CountFn
	AvgFn
	MinFn
	MaxFn
	CountDistinctFn
)

func (f AggFn) String() string {
	return [...]string{"SUM", "COUNT", "AVG", "MIN", "MAX", "COUNT_DISTINCT"}[f]
}

// AggExpr is one aggregate of an Aggregate node. Arg may be nil for
// COUNT(*). Null arguments are skipped.
type AggExpr struct {
	Fn  AggFn
	Arg ValExpr
	As  string
}

// Sum builds SUM(expr) AS name.
func Sum(e ValExpr, as string) AggExpr { return AggExpr{SumFn, e, as} }

// Count builds COUNT(*) AS name.
func Count(as string) AggExpr { return AggExpr{CountFn, nil, as} }

// CountCol builds COUNT(expr) AS name (nulls skipped).
func CountCol(e ValExpr, as string) AggExpr { return AggExpr{CountFn, e, as} }

// Avg builds AVG(expr) AS name.
func Avg(e ValExpr, as string) AggExpr { return AggExpr{AvgFn, e, as} }

// Min builds MIN(expr) AS name.
func Min(e ValExpr, as string) AggExpr { return AggExpr{MinFn, e, as} }

// Max builds MAX(expr) AS name.
func Max(e ValExpr, as string) AggExpr { return AggExpr{MaxFn, e, as} }

// CountDistinct builds COUNT(DISTINCT expr) AS name. Exact: the rewriter
// co-locates each group's rows before counting (grouped aggregation), or
// gathers the deduplicated input for a global count.
func CountDistinct(e ValExpr, as string) AggExpr { return AggExpr{CountDistinctFn, e, as} }

// Node is a plan operator, logical or physical. Rewriting (Section 2.2)
// maps a logical SPJA tree onto a physical tree by inserting Repartition,
// Broadcast, and DistinctPref operators.
type Node interface {
	Children() []Node
	String() string
}

// ---- logical operators ----

// ScanNode reads one base table under an alias. Over a PREF-partitioned
// table the scan also exposes the hidden "<alias>.__dup" and
// "<alias>.__hasref" index columns.
type ScanNode struct {
	Table string
	Alias string
	// Prune restricts the scan to the given partitions (nil = all).
	// Set by the rewriter when a filter pins every partitioning column
	// of a hash or hash-equivalent table to constants — the partition
	// pruning the paper names as future work for PREF.
	Prune []int
}

// Scan builds a table scan; an empty alias defaults to the table name.
func Scan(tbl, alias string) *ScanNode {
	if alias == "" {
		alias = tbl
	}
	return &ScanNode{Table: tbl, Alias: alias}
}

func (n *ScanNode) Children() []Node { return nil }
func (n *ScanNode) String() string {
	if n.Prune != nil {
		return fmt.Sprintf("Scan(%s AS %s, prune→%v)", n.Table, n.Alias, n.Prune)
	}
	return fmt.Sprintf("Scan(%s AS %s)", n.Table, n.Alias)
}

// FilterNode applies a selection predicate.
type FilterNode struct {
	Child Node
	Pred  BoolExpr
}

// Filter builds a selection.
func Filter(c Node, p BoolExpr) *FilterNode { return &FilterNode{Child: c, Pred: p} }

func (n *FilterNode) Children() []Node { return []Node{n.Child} }
func (n *FilterNode) String() string   { return "Filter(" + n.Pred.String() + ")" }

// ProjectNode projects (and renames) columns; each output column is a
// scalar expression.
type ProjectNode struct {
	Child Node
	Exprs []ValExpr
	Names []string
}

// Project builds a projection; names and exprs are positionally matched.
func Project(c Node, names []string, exprs []ValExpr) *ProjectNode {
	return &ProjectNode{Child: c, Exprs: exprs, Names: names}
}

// ProjectCols projects existing columns by name.
func ProjectCols(c Node, cols ...string) *ProjectNode {
	exprs := make([]ValExpr, len(cols))
	for i, col := range cols {
		exprs[i] = Col(col)
	}
	return Project(c, cols, exprs)
}

func (n *ProjectNode) Children() []Node { return []Node{n.Child} }
func (n *ProjectNode) String() string   { return "Project(" + strings.Join(n.Names, ",") + ")" }

// JoinNode is an equi-join (possibly with a residual non-equi predicate).
// LeftCols[i] = RightCols[i] are the equi conjuncts. A join with no equi
// conjuncts is a cross/theta join and executes as a broadcast join.
type JoinNode struct {
	Left, Right Node
	Type        JoinType
	LeftCols    []string
	RightCols   []string
	// Residual is an extra predicate evaluated on the concatenated row
	// (nil for pure equi-joins).
	Residual BoolExpr
}

// Join builds an equi-join on leftCols[i] = rightCols[i].
func Join(l, r Node, t JoinType, leftCols, rightCols []string) *JoinNode {
	return &JoinNode{Left: l, Right: r, Type: t, LeftCols: leftCols, RightCols: rightCols}
}

func (n *JoinNode) Children() []Node { return []Node{n.Left, n.Right} }
func (n *JoinNode) String() string {
	pairs := make([]string, len(n.LeftCols))
	for i := range n.LeftCols {
		pairs[i] = n.LeftCols[i] + "=" + n.RightCols[i]
	}
	return fmt.Sprintf("%vJoin(%s)", n.Type, strings.Join(pairs, " AND "))
}

// AggregateNode groups by columns and computes aggregates; empty GroupBy
// yields a single global row.
type AggregateNode struct {
	Child   Node
	GroupBy []string
	Aggs    []AggExpr
}

// Aggregate builds a grouped aggregation.
func Aggregate(c Node, groupBy []string, aggs ...AggExpr) *AggregateNode {
	return &AggregateNode{Child: c, GroupBy: groupBy, Aggs: aggs}
}

func (n *AggregateNode) Children() []Node { return []Node{n.Child} }
func (n *AggregateNode) String() string {
	return fmt.Sprintf("Aggregate(by %v, %d aggs)", n.GroupBy, len(n.Aggs))
}

// OrderSpec is one ORDER BY term.
type OrderSpec struct {
	Col  string
	Desc bool
}

// TopKNode orders its input and keeps the first Limit rows (0 = no limit,
// pure ORDER BY). Rows are compared by the order terms, then by the full
// row, making results deterministic. The rewriter executes it as a
// per-partition partial top-k followed by a gathered final pass.
type TopKNode struct {
	Child Node
	Order []OrderSpec
	Limit int
	// final marks the post-gather pass (set by the rewriter).
	Final bool
}

// TopK builds an ORDER BY … LIMIT operator.
func TopK(c Node, limit int, order ...OrderSpec) *TopKNode {
	return &TopKNode{Child: c, Order: order, Limit: limit}
}

func (n *TopKNode) Children() []Node { return []Node{n.Child} }
func (n *TopKNode) String() string {
	terms := make([]string, len(n.Order))
	for i, o := range n.Order {
		terms[i] = o.Col
		if o.Desc {
			terms[i] += " DESC"
		}
	}
	stage := "partial"
	if n.Final {
		stage = "final"
	}
	return fmt.Sprintf("TopK(%s, by %s, limit %d)", stage, strings.Join(terms, ","), n.Limit)
}

// ---- physical operators (inserted by the rewriter) ----

// RepartitionNode re-distributes rows by a hash of the given columns,
// eliminating PREF duplicates (per DupCols) before shipping — exactly the
// paper's re-partitioning operator.
type RepartitionNode struct {
	Child Node
	Cols  []string
	// DupCols are the live dup-index columns to dedup on before shipping.
	DupCols []string
	// OneCopy reads a single copy of a replicated input instead of all n.
	OneCopy bool
}

func (n *RepartitionNode) Children() []Node { return []Node{n.Child} }
func (n *RepartitionNode) String() string {
	return fmt.Sprintf("Repartition(hash %v, dedup %v)", n.Cols, n.DupCols)
}

// BroadcastNode replicates its input to every partition (used for the
// build side of remote theta/cross joins), deduping PREF copies first.
type BroadcastNode struct {
	Child   Node
	DupCols []string
	// OneCopy reads a single copy of a replicated input instead of all n.
	OneCopy bool
}

func (n *BroadcastNode) Children() []Node { return []Node{n.Child} }
func (n *BroadcastNode) String() string   { return fmt.Sprintf("Broadcast(dedup %v)", n.DupCols) }

// DistinctPrefNode eliminates PREF-induced duplicates locally using the
// dup bitmap index: a row is kept iff any of its live dup columns is 0
// (the disjunctive filter of Section 2.2). It is a purely local operator —
// no data movement — which is what makes the optimization of Figure 9 fast.
type DistinctPrefNode struct {
	Child   Node
	DupCols []string
}

func (n *DistinctPrefNode) Children() []Node { return []Node{n.Child} }
func (n *DistinctPrefNode) String() string   { return fmt.Sprintf("DistinctPref(%v)", n.DupCols) }

// DistinctByValueNode is the pessimistic fallback used when the dup-index
// optimization is disabled (the "wo optimizations" bars of Figure 9): a
// full value-based distinct that must repartition rows by their content.
type DistinctByValueNode struct {
	Child Node
	// Cols are the columns defining row identity (hidden index columns
	// excluded).
	Cols []string
}

func (n *DistinctByValueNode) Children() []Node { return []Node{n.Child} }
func (n *DistinctByValueNode) String() string   { return fmt.Sprintf("DistinctByValue(%v)", n.Cols) }

// GatherNode collects all partitions' rows at the coordinator (partition
// 0). OneCopy is set when the input is replicated, so a single copy is
// read instead of n identical ones.
type GatherNode struct {
	Child   Node
	OneCopy bool
}

func (n *GatherNode) Children() []Node { return []Node{n.Child} }
func (n *GatherNode) String() string   { return "Gather" }

// PartialAggNode computes per-partition partial aggregates; its partner
// FinalAggNode merges them after a Gather. Used for global (group-less)
// aggregation and as a local pre-aggregation.
type PartialAggNode struct {
	Child   Node
	GroupBy []string
	Aggs    []AggExpr
}

func (n *PartialAggNode) Children() []Node { return []Node{n.Child} }
func (n *PartialAggNode) String() string {
	return fmt.Sprintf("PartialAgg(by %v, %d aggs)", n.GroupBy, len(n.Aggs))
}

// FinalAggNode merges partial aggregates produced by PartialAggNode.
type FinalAggNode struct {
	Child   Node
	GroupBy []string
	Aggs    []AggExpr
}

func (n *FinalAggNode) Children() []Node { return []Node{n.Child} }
func (n *FinalAggNode) String() string {
	return fmt.Sprintf("FinalAgg(by %v, %d aggs)", n.GroupBy, len(n.Aggs))
}

// kindOfAgg reports the output kind of an aggregate expression.
func kindOfAgg(a AggExpr, in Schema) value.Kind {
	switch a.Fn {
	case CountFn, CountDistinctFn:
		return value.Int
	case AvgFn:
		return value.Float
	default:
		if a.Arg != nil {
			return a.Arg.Kind(in)
		}
		return value.Int
	}
}

// Format renders a plan tree with indentation, for tests and EXPLAIN-style
// debugging output.
func Format(n Node) string {
	var sb strings.Builder
	var walk func(Node, int)
	walk = func(n Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.String())
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return sb.String()
}
