// Write intent log: before a batch mutates any partition, the Loader
// records the full physical plan of the batch — every partition-level
// append, delete, and in-place rewrite it is about to perform, plus the
// round-robin cursors and row-count deltas the commit will install. The
// intent is planned against the last published epoch, so after a crash
// recovery can roll the head back to that epoch and re-execute the
// recorded steps verbatim: replay never re-plans, it re-applies.
package bulkload

import (
	"fmt"

	"pref/internal/value"
)

// OpKind discriminates logical write operations.
type OpKind int

const (
	// OpInsert adds one logical tuple.
	OpInsert OpKind = iota + 1
	// OpDelete removes every copy of tuples matching predicate columns.
	OpDelete
	// OpUpdate rewrites one non-partitioning column of matching tuples.
	OpUpdate
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	default:
		return fmt.Sprintf("opkind(%d)", int(k))
	}
}

// Op is one logical write. Build them with Insert, Delete, and Update
// and submit through Loader.Apply; a batch is atomic — it commits as one
// epoch or not at all.
type Op struct {
	Kind  OpKind
	Table string

	// Row is the tuple to insert (OpInsert).
	Row value.Tuple

	// Cols/Vals are the match predicate (OpDelete, OpUpdate).
	Cols []string
	Vals value.Tuple

	// SetCol/SetVal are the rewrite target (OpUpdate).
	SetCol string
	SetVal int64
}

// Insert builds an insert op.
func Insert(tbl string, row value.Tuple) Op {
	return Op{Kind: OpInsert, Table: tbl, Row: row}
}

// Delete builds a delete op matching cols = vals.
func Delete(tbl string, cols []string, vals value.Tuple) Op {
	return Op{Kind: OpDelete, Table: tbl, Cols: cols, Vals: vals}
}

// Update builds an update op setting setCol on tuples matching cols = vals.
func Update(tbl string, cols []string, vals value.Tuple, setCol string, setVal int64) Op {
	return Op{Kind: OpUpdate, Table: tbl, Cols: cols, Vals: vals, SetCol: setCol, SetVal: setVal}
}

// AppendRec is one planned physical append: a row plus its dup/hasRef
// bitmap bits.
type AppendRec struct {
	Row    value.Tuple
	Dup    bool
	HasRef bool
}

// SetRec is one planned in-place rewrite. Row indexes the pre-batch
// partition (valid against the published epoch the intent was planned
// on).
type SetRec struct {
	Row int
	Col int
	Val int64
}

// IntentStep is the planned mutation of one partition of one table.
// Application order within a step: Sets, then Deletes, then Appends —
// Sets and Deletes index pre-batch rows, so they must run before the
// partition grows.
type IntentStep struct {
	Table string
	Part  int

	Sets    []SetRec
	Deletes []int // ascending pre-batch row indexes to drop
	Appends []AppendRec

	// PreLen is the partition length the step was planned against, an
	// audit guard for replay.
	PreLen int
}

// IntentState tracks an intent through the write protocol.
type IntentState int

const (
	// IntentPending: logged, not yet published. A pending intent found
	// after a crash is replayed by Recover.
	IntentPending IntentState = iota + 1
	// IntentApplied: every step executed and the epoch published.
	IntentApplied
)

func (s IntentState) String() string {
	switch s {
	case IntentPending:
		return "pending"
	case IntentApplied:
		return "applied"
	default:
		return fmt.Sprintf("intentstate(%d)", int(s))
	}
}

// Intent is the durable record of one batch: the logical ops, the fully
// planned physical steps, and the bookkeeping deltas the commit installs.
type Intent struct {
	Seq       int64
	BaseEpoch int64 // database epoch the plan was computed against
	Kind      OpKind
	Table     string
	Ops       int

	Steps []IntentStep

	// RRAfter holds post-batch round-robin cursors per table; DeltaRows
	// holds per-table OriginalRows deltas. Both are installed only at
	// commit, so a crash before publish leaves them untouched and replay
	// installs them exactly once.
	RRAfter   map[string]int
	DeltaRows map[string]int

	State IntentState
}

// tables returns the distinct tables the intent mutates, in step order.
func (it *Intent) tables() []string {
	var out []string
	seen := map[string]bool{}
	for _, st := range it.Steps {
		if !seen[st.Table] {
			seen[st.Table] = true
			out = append(out, st.Table)
		}
	}
	if !seen[it.Table] {
		out = append(out, it.Table)
	}
	return out
}

// removed counts physical copies the intent deletes.
func (it *Intent) removed() int {
	n := 0
	for _, st := range it.Steps {
		n += len(st.Deletes)
	}
	return n
}

// rewritten counts physical copies the intent rewrites in place.
func (it *Intent) rewritten() int {
	n := 0
	for _, st := range it.Steps {
		n += len(st.Sets)
	}
	return n
}

// appended counts physical copies the intent stores.
func (it *Intent) appended() int {
	n := 0
	for _, st := range it.Steps {
		n += len(st.Appends)
	}
	return n
}

// IntentLog is the Loader's ordered intent journal. Applied intents are
// pruned opportunistically; pending intents (crashed batches) survive
// until Recover replays them.
type IntentLog struct {
	entries []*Intent
}

func (g *IntentLog) append(it *Intent) { g.entries = append(g.entries, it) }

// Pending returns crashed, not-yet-published intents in sequence order.
func (g *IntentLog) Pending() []*Intent {
	var out []*Intent
	for _, it := range g.entries {
		if it.State == IntentPending {
			out = append(out, it)
		}
	}
	return out
}

// Len returns the number of retained intents.
func (g *IntentLog) Len() int { return len(g.entries) }

// prune drops the applied prefix, keeping the journal bounded: once an
// intent published, its epoch is the recovery source and the intent is
// no longer needed.
func (g *IntentLog) prune() {
	i := 0
	for i < len(g.entries) && g.entries[i].State == IntentApplied {
		i++
	}
	if i > 0 {
		g.entries = append([]*Intent(nil), g.entries[i:]...)
	}
}

// RecoveryReport summarizes one Recover run.
type RecoveryReport struct {
	// Pending is the number of crashed intents found.
	Pending int
	// Replayed is the number of intents re-applied and published.
	Replayed int
	// DiscardedRows counts torn head rows thrown away by the rollback.
	DiscardedRows int
	// RepairedTables lists tables rolled back to their published epoch.
	RepairedTables []string
}
