// Package bulkload implements the bulk-loading path of Section 2.3:
// inserting new tuples into an already-partitioned database. Inserts into
// a PREF-partitioned table use the partition index — a hash index mapping
// referenced-attribute values to the set of partitions holding them — so
// no join with the referenced table is executed per tuple. Updates and
// deletes fan out to all partitions; partitioning-predicate columns are
// immutable.
package bulkload

import (
	"fmt"

	"pref/internal/partition"
	"pref/internal/table"
	"pref/internal/value"
)

// Loader incrementally loads tuples into one partitioned database under
// its configuration.
type Loader struct {
	pdb *table.PartitionedDatabase
	cfg *partition.Config

	// partIdx caches one partition index per PREF-partitioned table:
	// referenced-key → sorted partition set of the referenced table.
	partIdx map[string]map[value.Key][]int
	// UsePartitionIndex can be disabled to measure its benefit (the
	// Section 2.3 ablation): inserts then scan the referenced table.
	UsePartitionIndex bool

	// rr tracks the round-robin cursor for orphan tuples per table.
	rr map[string]int
	// seen tracks keys already present per PREF table, so the dup bit of
	// later copies is set correctly across incremental batches.
	firstSeen map[string]map[value.Key]bool

	// Lookups counts referenced-table partition lookups performed.
	Lookups int
	// ScannedRows counts referenced-table rows scanned when the partition
	// index is disabled.
	ScannedRows int
}

// NewLoader prepares a loader for the given partitioned database.
func NewLoader(pdb *table.PartitionedDatabase, cfg *partition.Config) *Loader {
	return &Loader{
		pdb: pdb, cfg: cfg,
		partIdx:           map[string]map[value.Key][]int{},
		rr:                map[string]int{},
		firstSeen:         map[string]map[value.Key]bool{},
		UsePartitionIndex: true,
	}
}

// partitionIndex returns (building on first use) the partition index on
// the referenced columns of tbl's PREF scheme.
func (l *Loader) partitionIndex(tbl string) (map[value.Key][]int, error) {
	if idx, ok := l.partIdx[tbl]; ok {
		return idx, nil
	}
	ts := l.cfg.Scheme(tbl)
	ref := l.pdb.Tables[ts.RefTable]
	if ref == nil {
		return nil, fmt.Errorf("bulkload: referenced table %s not loaded", ts.RefTable)
	}
	idx, err := partition.PartitionIndex(ref, ts.Pred.ReferencedCols)
	if err != nil {
		return nil, err
	}
	l.partIdx[tbl] = idx
	return idx, nil
}

// targetPartitions resolves which partitions must receive a copy of a
// tuple of a PREF table, via the partition index or (if disabled) a scan
// of the referenced table.
func (l *Loader) targetPartitions(tbl string, ringKey value.Key) ([]int, error) {
	ts := l.cfg.Scheme(tbl)
	if l.UsePartitionIndex {
		idx, err := l.partitionIndex(tbl)
		if err != nil {
			return nil, err
		}
		l.Lookups++
		return idx[ringKey], nil
	}
	// Fallback: scan every partition of the referenced table.
	ref := l.pdb.Tables[ts.RefTable]
	cols, err := ref.Meta.ColIndexes(ts.Pred.ReferencedCols)
	if err != nil {
		return nil, err
	}
	var targets []int
	for p, part := range ref.Parts {
		for _, r := range part.Rows {
			l.ScannedRows++
			if value.MakeKey(r, cols) == ringKey {
				targets = append(targets, p)
				break
			}
		}
	}
	return targets, nil
}

// Insert adds one tuple to a partitioned table, honoring its scheme:
// hash/range tuples go to their computed partition, replicated tuples to
// every partition, and PREF tuples to every partition holding a
// partitioning partner (round-robin when none exists — condition (2) of
// Definition 1). The referenced table must be loaded first.
func (l *Loader) Insert(tbl string, row value.Tuple) error {
	pt := l.pdb.Tables[tbl]
	if pt == nil {
		return fmt.Errorf("bulkload: unknown table %s", tbl)
	}
	ts := l.cfg.Scheme(tbl)
	if ts == nil {
		return fmt.Errorf("bulkload: no scheme for table %s", tbl)
	}
	if len(row) != pt.Meta.NumCols() {
		return fmt.Errorf("bulkload: table %s: row arity %d, want %d", tbl, len(row), pt.Meta.NumCols())
	}
	n := l.pdb.N
	switch ts.Method {
	case partition.Hash:
		cols, err := pt.Meta.ColIndexes(ts.Cols)
		if err != nil {
			return err
		}
		p := int(value.HashTuple(row, cols) % uint64(n))
		pt.Parts[p].Append(row, false, false)

	case partition.RoundRobin:
		p := l.rr[tbl] % n
		l.rr[tbl]++
		pt.Parts[p].Append(row, false, false)

	case partition.Replicated:
		for p := 0; p < n; p++ {
			pt.Parts[p].Append(row, p > 0, false)
		}

	case partition.Pref:
		ringCols, err := pt.Meta.ColIndexes(ts.Pred.ReferencingCols)
		if err != nil {
			return err
		}
		key := value.MakeKey(row, ringCols)
		targets, err := l.targetPartitions(tbl, key)
		if err != nil {
			return err
		}
		if len(targets) == 0 {
			// Orphans follow the hash-equivalence placement when the
			// configuration guarantees it (matching partition.Apply),
			// else round-robin.
			var p int
			if mapped, ok := l.cfg.HashEquivalent(tbl); ok {
				cols, err := pt.Meta.ColIndexes(mapped)
				if err != nil {
					return err
				}
				p = int(value.HashTuple(row, cols) % uint64(n))
			} else {
				p = l.rr[tbl] % n
				l.rr[tbl]++
			}
			pt.Parts[p].Append(row, false, false)
		} else {
			for i, p := range targets {
				pt.Parts[p].Append(row, i > 0, true)
			}
		}
		// A newly inserted referenced-side key may already be indexed by
		// downstream tables' partition indexes; invalidate them.
		l.invalidateDependents(tbl)

	default:
		return fmt.Errorf("bulkload: unsupported scheme %v for %s", ts.Method, tbl)
	}
	pt.OriginalRows++
	if ts.Method != partition.Pref {
		l.invalidateDependents(tbl)
	}
	return nil
}

// invalidateDependents drops cached partition indexes of tables that
// PREF-reference tbl (their referenced data changed).
func (l *Loader) invalidateDependents(tbl string) {
	for name, ts := range l.cfg.Schemes {
		if ts.Method == partition.Pref && ts.RefTable == tbl {
			delete(l.partIdx, name)
		}
	}
}

// InsertBatch loads many tuples into one table.
func (l *Loader) InsertBatch(tbl string, rows []value.Tuple) error {
	for _, r := range rows {
		if err := l.Insert(tbl, r); err != nil {
			return err
		}
	}
	return nil
}

// LoadDatabase bulk loads a full unpartitioned database in
// referenced-before-referencing order, returning the per-table insert
// counts. This is the experiment path of Figure 10 (tuple-at-a-time with
// partition indexes), in contrast to partition.Apply's offline path.
func (l *Loader) LoadDatabase(db *table.Database) (map[string]int, error) {
	order, err := l.cfg.Order()
	if err != nil {
		return nil, err
	}
	counts := map[string]int{}
	for _, tbl := range order {
		data, ok := db.Tables[tbl]
		if !ok {
			return nil, fmt.Errorf("bulkload: no data for table %s", tbl)
		}
		if err := l.InsertBatch(tbl, data.Rows); err != nil {
			return nil, err
		}
		counts[tbl] = data.Len()
	}
	return counts, nil
}

// Delete removes all tuples matching the predicate columns from every
// partition of a table (deletes fan out, Section 2.3). It returns the
// number of stored copies removed.
func (l *Loader) Delete(tbl string, cols []string, keyVals value.Tuple) (int, error) {
	pt := l.pdb.Tables[tbl]
	if pt == nil {
		return 0, fmt.Errorf("bulkload: unknown table %s", tbl)
	}
	idx, err := pt.Meta.ColIndexes(cols)
	if err != nil {
		return 0, err
	}
	want := value.MakeKey(keyVals, idxRange(len(cols)))
	removed := 0
	originals := 0
	for _, part := range pt.Parts {
		newPart := table.NewPartition()
		for i, r := range part.Rows {
			if value.MakeKey(r, idx) == want {
				removed++
				if !part.Dup.Get(i) {
					originals++
				}
				continue
			}
			newPart.Append(r, part.Dup.Get(i), part.HasRef.Get(i))
		}
		*part = *newPart
	}
	pt.OriginalRows -= originals
	l.invalidateDependents(tbl)
	return removed, nil
}

// Update rewrites non-key attributes of all copies of matching tuples.
// Updating partitioning-predicate or partitioning columns is rejected
// (Section 2.3's restriction).
func (l *Loader) Update(tbl string, matchCols []string, matchVals value.Tuple, setCol string, setVal int64) (int, error) {
	pt := l.pdb.Tables[tbl]
	if pt == nil {
		return 0, fmt.Errorf("bulkload: unknown table %s", tbl)
	}
	if l.isPartitioningColumn(tbl, setCol) {
		return 0, fmt.Errorf("bulkload: column %s.%s is used for partitioning and cannot be updated", tbl, setCol)
	}
	set := pt.Meta.ColIndex(setCol)
	if set < 0 {
		return 0, fmt.Errorf("bulkload: unknown column %s.%s", tbl, setCol)
	}
	idx, err := pt.Meta.ColIndexes(matchCols)
	if err != nil {
		return 0, err
	}
	want := value.MakeKey(matchVals, idxRange(len(matchCols)))
	updated := 0
	for _, part := range pt.Parts {
		for i, r := range part.Rows {
			if value.MakeKey(r, idx) == want {
				nr := r.Clone()
				nr[set] = setVal
				part.Rows[i] = nr
				updated++
			}
		}
	}
	return updated, nil
}

// isPartitioningColumn reports whether a column participates in the
// table's own scheme or in any PREF predicate referencing the table.
func (l *Loader) isPartitioningColumn(tbl, col string) bool {
	ts := l.cfg.Scheme(tbl)
	if ts != nil {
		for _, c := range ts.Cols {
			if c == col {
				return true
			}
		}
		if ts.Method == partition.Pref {
			for _, c := range ts.Pred.ReferencingCols {
				if c == col {
					return true
				}
			}
		}
	}
	for _, other := range l.cfg.Schemes {
		if other.Method == partition.Pref && other.RefTable == tbl {
			for _, c := range other.Pred.ReferencedCols {
				if c == col {
					return true
				}
			}
		}
	}
	return false
}

func idxRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
