// Package bulkload implements the incremental write path of Section 2.3:
// inserting new tuples into an already-partitioned database. Inserts into
// a PREF-partitioned table use the partition index — a hash index mapping
// referenced-attribute values to the set of partitions holding them — so
// no join with the referenced table is executed per tuple. Updates and
// deletes fan out to all partitions; partitioning-predicate columns are
// immutable.
//
// Writes are crash-consistent. Every batch follows one protocol:
//
//  1. plan    — compute the full physical step list (per-partition
//     appends/deletes/rewrites) against the last published epoch;
//  2. intend  — record the plan in the intent log (IntentPending);
//  3. apply   — execute the steps on copy-on-write clones of the shared
//     partitions (the published epoch is never mutated);
//  4. publish — atomically commit a new database epoch and mark the
//     intent IntentApplied.
//
// An injected crash at any point between 2 and 4 leaves the loader in a
// torn state: further writes return ErrNeedRecovery until Recover rolls
// the head back to the published epoch and replays the pending intent's
// recorded steps verbatim. Queries are unaffected throughout — they read
// pinned epoch snapshots, never the write head.
package bulkload

import (
	"errors"
	"fmt"
	"sort"

	"pref/internal/fault"
	"pref/internal/partition"
	"pref/internal/table"
	"pref/internal/trace"
	"pref/internal/value"
)

// ErrNeedRecovery rejects writes after a crashed batch until Recover has
// rolled back the torn head and replayed the pending intent.
var ErrNeedRecovery = errors.New("bulkload: store torn by a crashed write; run Recover first")

// Loader incrementally loads tuples into one partitioned database under
// its configuration. It is single-writer: one goroutine applies batches,
// while any number of readers query pinned snapshots concurrently.
type Loader struct {
	pdb *table.PartitionedDatabase
	cfg *partition.Config

	// partIdx caches one partition index per PREF-partitioned table:
	// referenced-key → sorted partition set of the referenced table.
	partIdx map[string]map[value.Key][]int
	// UsePartitionIndex can be disabled to measure its benefit (the
	// Section 2.3 ablation): inserts then scan the referenced table.
	UsePartitionIndex bool

	// rr tracks the round-robin cursor for orphan tuples per table. It
	// advances only at commit (the cursor after a batch is recorded in
	// the intent), so a crashed batch replays with identical placement.
	rr map[string]int

	// Faults, when set, supplies write-side crash and index-race
	// injection. Nil disables injection.
	Faults *fault.Injector

	// Metrics accumulates write-amplification and protocol counters.
	Metrics trace.WriteMetrics

	log     IntentLog
	seq     int64
	crashed bool

	// Lookups counts referenced-table partition lookups performed.
	Lookups int
	// ScannedRows counts referenced-table rows scanned when the partition
	// index is disabled.
	ScannedRows int
}

// NewLoader prepares a loader for the given partitioned database.
func NewLoader(pdb *table.PartitionedDatabase, cfg *partition.Config) *Loader {
	return &Loader{
		pdb: pdb, cfg: cfg,
		partIdx:           map[string]map[value.Key][]int{},
		rr:                map[string]int{},
		UsePartitionIndex: true,
	}
}

// NeedsRecovery reports whether a crashed batch left the head torn.
func (l *Loader) NeedsRecovery() bool { return l.crashed }

// Log exposes the intent journal (pending intents after a crash).
func (l *Loader) Log() *IntentLog { return &l.log }

// Commit describes one published batch.
type Commit struct {
	// Seq is the batch's intent sequence number.
	Seq int64
	// Epoch is the database epoch the batch published.
	Epoch int64
	// Tables lists the tables republished by the commit.
	Tables []string

	// Inserted counts logical inserts; Stored, Removed, and Rewritten
	// count physical copies appended, deleted, and rewritten in place.
	Inserted  int
	Stored    int
	Removed   int
	Rewritten int
}

// Apply plans, intends, applies, and publishes one batch atomically. A
// batch targets a single table with a single op kind; insert batches may
// carry any number of rows, delete and update batches exactly one op.
// Under fault injection Apply may return fault.ErrWriteCrashed, after
// which every write returns ErrNeedRecovery until Recover is run.
func (l *Loader) Apply(ops ...Op) (*Commit, error) {
	if l.crashed {
		return nil, ErrNeedRecovery
	}
	if len(ops) == 0 {
		return &Commit{Seq: -1, Epoch: l.pdb.Epoch()}, nil
	}
	// Anchor the current epoch so a rollback target always exists, even
	// for tables that have never been committed through this loader.
	l.pdb.Snapshot()

	it, err := l.plan(ops)
	if err != nil {
		return nil, err
	}
	l.Metrics.IntentOps += int64(it.Ops)
	switch it.Kind {
	case OpInsert:
		l.Metrics.LogicalInserts += int64(it.Ops)
	case OpDelete:
		l.Metrics.LogicalDeletes += int64(it.Ops)
	case OpUpdate:
		l.Metrics.LogicalUpdates += int64(it.Ops)
	}
	l.log.append(it)
	l.seq++

	seq := int(it.Seq)
	if l.Faults.WriteIndexRace(seq) {
		// Invalidation race: the cached partition indexes vanish mid-
		// write. Targets were already bound during planning, so the race
		// only costs a rebuild on the next batch — which is exactly the
		// invariant the intent log is meant to guarantee.
		l.partIdx = map[string]map[value.Key][]int{}
		l.Metrics.IndexRaces++
	}
	stage, stepIdx := l.Faults.WriteCrash(seq, len(it.Steps))
	if stage != fault.WriteNoCrash {
		l.Metrics.Crashes++
	}
	if stage == fault.CrashAfterIntent {
		l.crashed = true
		return nil, fault.ErrWriteCrashed
	}
	if err := l.applySteps(it, stage, stepIdx); err != nil {
		l.crashed = true
		return nil, err
	}
	if stage == fault.CrashBeforePublish {
		l.crashed = true
		return nil, fault.ErrWriteCrashed
	}
	return l.commit(it), nil
}

// Recover repairs the store after a crashed batch: it rolls every table
// touched by pending intents back to its published epoch (discarding
// torn rows and half-applied fan-outs wholesale), verifies the bitmap/
// row-length invariants, then replays the pending intents' recorded
// steps in sequence order and publishes them. After a successful
// recovery the crashed batch is durable — its epoch exists exactly as if
// the crash had never happened.
//
// lint:intent-boundary recovery replays intents that were already
// recorded before the crash; its mutations are covered by those records.
func (l *Loader) Recover() (*RecoveryReport, error) {
	rep := &RecoveryReport{}
	pend := l.log.Pending()
	rep.Pending = len(pend)
	if !l.crashed && len(pend) == 0 {
		return rep, nil
	}

	tset := map[string]bool{}
	for _, it := range pend {
		for _, t := range it.tables() {
			tset[t] = true
		}
	}
	names := make([]string, 0, len(tset))
	for t := range tset {
		names = append(names, t)
	}
	sort.Strings(names)

	for _, t := range names {
		d := l.pdb.Tables[t].ResetToPublished()
		rep.DiscardedRows += d
		rep.RepairedTables = append(rep.RepairedTables, t)
		l.Metrics.RolledBackRows += int64(d)
	}
	for _, t := range names {
		pt := l.pdb.Tables[t]
		for p, part := range pt.Parts {
			if err := part.CheckInvariants(); err != nil {
				return rep, fmt.Errorf("bulkload: rollback of %s partition %d: %w", t, p, err)
			}
		}
	}
	for _, it := range pend {
		if err := l.applySteps(it, fault.WriteNoCrash, 0); err != nil {
			return rep, fmt.Errorf("bulkload: replay of intent %d: %w", it.Seq, err)
		}
		l.commit(it)
		rep.Replayed++
		l.Metrics.Replays++
	}
	l.crashed = false
	// The head moved underneath the caches; rebuild lazily.
	l.partIdx = map[string]map[value.Key][]int{}
	return rep, nil
}

// plan validates a batch and computes its full physical step list
// against the current (published-equal) head. Planning mutates nothing.
func (l *Loader) plan(ops []Op) (*Intent, error) {
	kind, tbl := ops[0].Kind, ops[0].Table
	for _, op := range ops {
		if op.Kind != kind || op.Table != tbl {
			return nil, fmt.Errorf("bulkload: a batch must target one table with one op kind")
		}
	}
	if kind != OpInsert && len(ops) != 1 {
		return nil, fmt.Errorf("bulkload: %s batches must contain exactly one op", kind)
	}
	pt := l.pdb.Tables[tbl]
	if pt == nil {
		return nil, fmt.Errorf("bulkload: unknown table %s", tbl)
	}
	ts := l.cfg.Scheme(tbl)
	if ts == nil {
		return nil, fmt.Errorf("bulkload: no scheme for table %s", tbl)
	}
	it := &Intent{
		Seq: l.seq, BaseEpoch: l.pdb.Epoch(), Kind: kind, Table: tbl,
		Ops: len(ops), RRAfter: map[string]int{}, DeltaRows: map[string]int{},
		State: IntentPending,
	}
	var err error
	switch kind {
	case OpInsert:
		err = l.planInserts(it, pt, ts, ops)
	case OpDelete:
		err = l.planDelete(it, pt, ops[0])
	case OpUpdate:
		err = l.planUpdate(it, pt, ops[0])
	default:
		err = fmt.Errorf("bulkload: unknown op kind %v", kind)
	}
	if err != nil {
		return nil, err
	}
	return it, nil
}

// planInserts routes each row by the table's scheme: hash tuples to
// their computed partition, round-robin by cursor, replicated tuples to
// every partition, and PREF tuples to every partition holding a
// partitioning partner (orphans by hash-equivalence or round-robin —
// condition (2) of Definition 1). The referenced table must be loaded
// first; inserts into the batch's own table cannot change its own
// targets, so the partition index stays valid for the whole batch.
func (l *Loader) planInserts(it *Intent, pt *table.Partitioned, ts *partition.TableScheme, ops []Op) error {
	n := l.pdb.N
	appends := map[int][]AppendRec{}
	rr := l.rr[it.Table]

	var hashCols, ringCols, orphanCols []int
	var orphanHash bool
	var err error
	switch ts.Method {
	case partition.Hash:
		if hashCols, err = pt.Meta.ColIndexes(ts.Cols); err != nil {
			return err
		}
	case partition.Pref:
		if ringCols, err = pt.Meta.ColIndexes(ts.Pred.ReferencingCols); err != nil {
			return err
		}
		if mapped, ok := l.cfg.HashEquivalent(it.Table); ok {
			if orphanCols, err = pt.Meta.ColIndexes(mapped); err != nil {
				return err
			}
			orphanHash = true
		}
	case partition.RoundRobin, partition.Replicated:
	default:
		return fmt.Errorf("bulkload: unsupported scheme %v for %s", ts.Method, it.Table)
	}

	for _, op := range ops {
		row := op.Row
		if len(row) != pt.Meta.NumCols() {
			return fmt.Errorf("bulkload: table %s: row arity %d, want %d", it.Table, len(row), pt.Meta.NumCols())
		}
		switch ts.Method {
		case partition.Hash:
			p := int(value.HashTuple(row, hashCols) % uint64(n))
			appends[p] = append(appends[p], AppendRec{Row: row})

		case partition.RoundRobin:
			p := rr % n
			rr++
			appends[p] = append(appends[p], AppendRec{Row: row})

		case partition.Replicated:
			for p := 0; p < n; p++ {
				appends[p] = append(appends[p], AppendRec{Row: row, Dup: p > 0})
			}

		case partition.Pref:
			key := value.MakeKey(row, ringCols)
			targets, err := l.targetPartitions(it.Table, key)
			if err != nil {
				return err
			}
			if len(targets) == 0 {
				var p int
				if orphanHash {
					p = int(value.HashTuple(row, orphanCols) % uint64(n))
				} else {
					p = rr % n
					rr++
				}
				appends[p] = append(appends[p], AppendRec{Row: row})
			} else {
				for i, p := range targets {
					appends[p] = append(appends[p], AppendRec{Row: row, Dup: i > 0, HasRef: true})
				}
			}
		}
	}

	if rr != l.rr[it.Table] {
		it.RRAfter[it.Table] = rr
	}
	it.DeltaRows[it.Table] = len(ops)
	parts := make([]int, 0, len(appends))
	for p := range appends {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	for _, p := range parts {
		it.Steps = append(it.Steps, IntentStep{
			Table: it.Table, Part: p, Appends: appends[p], PreLen: pt.Parts[p].Len(),
		})
	}
	return nil
}

// planDelete fans the match predicate out to every partition (Section
// 2.3) and records pre-batch row indexes to drop. Deletes that would
// strand PREF copies of a referencing table are rejected: the loader
// does not re-place referencing tuples downward, so the referenced-side
// key must be unreferenced first.
func (l *Loader) planDelete(it *Intent, pt *table.Partitioned, op Op) error {
	idx, err := pt.Meta.ColIndexes(op.Cols)
	if err != nil {
		return err
	}
	want := value.MakeKey(op.Vals, idxRange(len(op.Cols)))
	originals := 0
	var deleted []value.Tuple
	for p, part := range pt.Parts {
		var del []int
		for i, r := range part.Rows {
			if value.MakeKey(r, idx) == want {
				del = append(del, i)
				if !part.Dup.Get(i) {
					originals++
					deleted = append(deleted, r)
				}
			}
		}
		if len(del) > 0 {
			it.Steps = append(it.Steps, IntentStep{
				Table: it.Table, Part: p, Deletes: del, PreLen: part.Len(),
			})
		}
	}
	if err := l.checkNoDanglingRefs(it.Table, pt, deleted); err != nil {
		return err
	}
	it.DeltaRows[it.Table] = -originals
	return nil
}

// checkNoDanglingRefs rejects a delete whose victim keys are still used
// by a PREF partitioning predicate: removing the referenced-side copies
// would leave the referencing tuples' hasRef bits and partition-index
// justification dangling. Conservative: any surviving referencing tuple
// with a matching ring key blocks the delete.
func (l *Loader) checkNoDanglingRefs(tbl string, pt *table.Partitioned, deleted []value.Tuple) error {
	if len(deleted) == 0 {
		return nil
	}
	var deps []string
	for name, other := range l.cfg.Schemes {
		if other.Method == partition.Pref && other.RefTable == tbl {
			deps = append(deps, name)
		}
	}
	sort.Strings(deps)
	for _, name := range deps {
		other := l.cfg.Schemes[name]
		dep := l.pdb.Tables[name]
		if dep == nil || dep.StoredRows() == 0 {
			continue
		}
		refIdx, err := pt.Meta.ColIndexes(other.Pred.ReferencedCols)
		if err != nil {
			return err
		}
		keys := map[value.Key]bool{}
		for _, r := range deleted {
			keys[value.MakeKey(r, refIdx)] = true
		}
		depIdx, err := dep.Meta.ColIndexes(other.Pred.ReferencingCols)
		if err != nil {
			return err
		}
		for _, part := range dep.Parts {
			for _, r := range part.Rows {
				if keys[value.MakeKey(r, depIdx)] {
					return fmt.Errorf("bulkload: delete from %s would strand PREF copies in %s (referenced key still in use); delete the %s tuples first", tbl, name, name)
				}
			}
		}
	}
	return nil
}

// planUpdate fans the rewrite out to every copy of matching tuples.
// Updating partitioning-predicate, own-scheme, or seed-partitioning
// (hash-equivalence-mapped) columns is rejected — Section 2.3's
// restriction.
func (l *Loader) planUpdate(it *Intent, pt *table.Partitioned, op Op) error {
	if l.isPartitioningColumn(it.Table, op.SetCol) {
		return fmt.Errorf("bulkload: column %s.%s is used for partitioning and cannot be updated", it.Table, op.SetCol)
	}
	set := pt.Meta.ColIndex(op.SetCol)
	if set < 0 {
		return fmt.Errorf("bulkload: unknown column %s.%s", it.Table, op.SetCol)
	}
	idx, err := pt.Meta.ColIndexes(op.Cols)
	if err != nil {
		return err
	}
	want := value.MakeKey(op.Vals, idxRange(len(op.Cols)))
	for p, part := range pt.Parts {
		var sets []SetRec
		for i, r := range part.Rows {
			if value.MakeKey(r, idx) == want {
				sets = append(sets, SetRec{Row: i, Col: set, Val: op.SetVal})
			}
		}
		if len(sets) > 0 {
			it.Steps = append(it.Steps, IntentStep{
				Table: it.Table, Part: p, Sets: sets, PreLen: part.Len(),
			})
		}
	}
	return nil
}

// applySteps executes an intent's steps on copy-on-write head clones,
// honoring an injected crash stage: CrashMidApply stops cleanly before
// step stepIdx (earlier steps fully applied), CrashTornApply tears step
// stepIdx — half its appends land fully, one more row lands without its
// bitmap entries. Replay calls this with fault.WriteNoCrash.
//
// lint:intent-boundary the apply stage itself; every caller holds the
// intent record that covers these writes.
func (l *Loader) applySteps(it *Intent, stage fault.WriteStage, stepIdx int) error {
	for j := range it.Steps {
		st := &it.Steps[j]
		if stage == fault.CrashMidApply && j == stepIdx {
			return fault.ErrWriteCrashed
		}
		pt := l.pdb.Tables[st.Table]
		part := pt.BeginWrite(st.Part)
		if len(part.Rows) != st.PreLen {
			// lint:invariant — the step was planned against a different
			// partition image than the one being written.
			return fmt.Errorf("bulkload: intent %d step %d: %s[%d] has %d rows, planned against %d",
				it.Seq, j, st.Table, st.Part, len(part.Rows), st.PreLen)
		}
		for _, s := range st.Sets {
			nr := part.Rows[s.Row].Clone()
			nr[s.Col] = s.Val
			part.Rows[s.Row] = nr
		}
		if len(st.Deletes) > 0 {
			drop := make(map[int]bool, len(st.Deletes))
			for _, i := range st.Deletes {
				drop[i] = true
			}
			np := table.NewPartition()
			for i, r := range part.Rows {
				if drop[i] {
					continue
				}
				np.Append(r, part.Dup.Get(i), part.HasRef.Get(i))
			}
			part.ReplaceContents(np)
		}
		if stage == fault.CrashTornApply && j == stepIdx {
			k := len(st.Appends) / 2
			for _, a := range st.Appends[:k] {
				part.Append(a.Row, a.Dup, a.HasRef)
			}
			if k < len(st.Appends) {
				part.Rows = append(part.Rows, st.Appends[k].Row)
			}
			return fault.ErrWriteCrashed
		}
		for _, a := range st.Appends {
			part.Append(a.Row, a.Dup, a.HasRef)
		}
	}
	return nil
}

// commit installs the intent's bookkeeping deltas, publishes a new
// database epoch covering every touched table, and marks the intent
// applied. Called only after every step executed crash-free.
//
// lint:intent-boundary the publish stage itself; callers (Apply, Recover)
// only reach it with the covering intent open.
func (l *Loader) commit(it *Intent) *Commit {
	for t, d := range it.DeltaRows {
		l.pdb.Tables[t].OriginalRows += d
	}
	for t, c := range it.RRAfter {
		l.rr[t] = c
	}
	tables := it.tables()
	epoch := l.pdb.Commit(tables...)
	it.State = IntentApplied
	l.invalidateDependents(it.Table)
	l.log.prune()

	l.Metrics.Batches++
	l.Metrics.Publishes++
	l.Metrics.StoredCopies += int64(it.appended())
	l.Metrics.RemovedCopies += int64(it.removed())
	l.Metrics.RewrittenCopies += int64(it.rewritten())

	c := &Commit{
		Seq: it.Seq, Epoch: epoch, Tables: tables,
		Stored: it.appended(), Removed: it.removed(), Rewritten: it.rewritten(),
	}
	if it.Kind == OpInsert {
		c.Inserted = it.Ops
	}
	return c
}

// partitionIndex returns (building on first use) the partition index on
// the referenced columns of tbl's PREF scheme.
func (l *Loader) partitionIndex(tbl string) (map[value.Key][]int, error) {
	if idx, ok := l.partIdx[tbl]; ok {
		return idx, nil
	}
	ts := l.cfg.Scheme(tbl)
	ref := l.pdb.Tables[ts.RefTable]
	if ref == nil {
		return nil, fmt.Errorf("bulkload: referenced table %s not loaded", ts.RefTable)
	}
	idx, err := partition.PartitionIndex(ref, ts.Pred.ReferencedCols)
	if err != nil {
		return nil, err
	}
	l.partIdx[tbl] = idx
	return idx, nil
}

// targetPartitions resolves which partitions must receive a copy of a
// tuple of a PREF table, via the partition index or (if disabled) a scan
// of the referenced table.
func (l *Loader) targetPartitions(tbl string, ringKey value.Key) ([]int, error) {
	ts := l.cfg.Scheme(tbl)
	if l.UsePartitionIndex {
		idx, err := l.partitionIndex(tbl)
		if err != nil {
			return nil, err
		}
		l.Lookups++
		return idx[ringKey], nil
	}
	// Fallback: scan every partition of the referenced table.
	ref := l.pdb.Tables[ts.RefTable]
	cols, err := ref.Meta.ColIndexes(ts.Pred.ReferencedCols)
	if err != nil {
		return nil, err
	}
	var targets []int
	for p, part := range ref.Parts {
		for _, r := range part.Rows {
			l.ScannedRows++
			if value.MakeKey(r, cols) == ringKey {
				targets = append(targets, p)
				break
			}
		}
	}
	return targets, nil
}

// invalidateDependents drops cached partition indexes of tables that
// PREF-reference tbl (their referenced data changed).
func (l *Loader) invalidateDependents(tbl string) {
	for name, ts := range l.cfg.Schemes {
		if ts.Method == partition.Pref && ts.RefTable == tbl {
			delete(l.partIdx, name)
		}
	}
}

// Insert adds one tuple as a single-op batch.
func (l *Loader) Insert(tbl string, row value.Tuple) error {
	_, err := l.Apply(Insert(tbl, row))
	return err
}

// InsertBatch loads many tuples into one table as one atomic batch (one
// published epoch, one COW clone per touched partition).
func (l *Loader) InsertBatch(tbl string, rows []value.Tuple) error {
	if len(rows) == 0 {
		return nil
	}
	ops := make([]Op, len(rows))
	for i, r := range rows {
		ops[i] = Insert(tbl, r)
	}
	_, err := l.Apply(ops...)
	return err
}

// LoadDatabase bulk loads a full unpartitioned database in
// referenced-before-referencing order, returning the per-table insert
// counts. This is the experiment path of Figure 10 (tuple-at-a-time with
// partition indexes), in contrast to partition.Apply's offline path.
func (l *Loader) LoadDatabase(db *table.Database) (map[string]int, error) {
	order, err := l.cfg.Order()
	if err != nil {
		return nil, err
	}
	counts := map[string]int{}
	for _, tbl := range order {
		data, ok := db.Tables[tbl]
		if !ok {
			return nil, fmt.Errorf("bulkload: no data for table %s", tbl)
		}
		if err := l.InsertBatch(tbl, data.Rows); err != nil {
			return nil, err
		}
		counts[tbl] = data.Len()
	}
	return counts, nil
}

// Delete removes all tuples matching the predicate columns from every
// partition of a table (deletes fan out, Section 2.3). It returns the
// number of stored copies removed.
func (l *Loader) Delete(tbl string, cols []string, keyVals value.Tuple) (int, error) {
	c, err := l.Apply(Delete(tbl, cols, keyVals))
	if err != nil {
		return 0, err
	}
	return c.Removed, nil
}

// Update rewrites non-key attributes of all copies of matching tuples.
// Updating partitioning-predicate or partitioning columns is rejected
// (Section 2.3's restriction). It returns the number of copies
// rewritten.
func (l *Loader) Update(tbl string, matchCols []string, matchVals value.Tuple, setCol string, setVal int64) (int, error) {
	c, err := l.Apply(Update(tbl, matchCols, matchVals, setCol, setVal))
	if err != nil {
		return 0, err
	}
	return c.Rewritten, nil
}

// isPartitioningColumn reports whether a column participates in the
// table's own scheme, in any PREF predicate referencing the table, or in
// the table's seed-partitioning placement (the hash-equivalence-mapped
// columns that decide where orphans — and for hash-equivalent schemes,
// every copy — are stored).
func (l *Loader) isPartitioningColumn(tbl, col string) bool {
	ts := l.cfg.Scheme(tbl)
	if ts != nil {
		for _, c := range ts.Cols {
			if c == col {
				return true
			}
		}
		if ts.Method == partition.Pref {
			for _, c := range ts.Pred.ReferencingCols {
				if c == col {
					return true
				}
			}
		}
	}
	if mapped, ok := l.cfg.HashEquivalent(tbl); ok {
		for _, c := range mapped {
			if c == col {
				return true
			}
		}
	}
	for _, other := range l.cfg.Schemes {
		if other.Method == partition.Pref && other.RefTable == tbl {
			for _, c := range other.Pred.ReferencedCols {
				if c == col {
					return true
				}
			}
		}
	}
	return false
}

func idxRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
