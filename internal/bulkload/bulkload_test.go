package bulkload

import (
	"errors"
	"reflect"
	"sort"
	"testing"

	"pref/internal/catalog"
	"pref/internal/fault"
	"pref/internal/partition"
	"pref/internal/table"
	"pref/internal/value"
)

func schemaCOL(t *testing.T) *catalog.Schema {
	t.Helper()
	s := catalog.NewSchema("t")
	s.MustAddTable(catalog.MustTable("customer",
		[]catalog.Column{{Name: "custkey", Kind: value.Int}, {Name: "nation", Kind: value.Int}}, "custkey"))
	s.MustAddTable(catalog.MustTable("orders",
		[]catalog.Column{{Name: "orderkey", Kind: value.Int}, {Name: "custkey", Kind: value.Int}}, "orderkey"))
	s.MustAddTable(catalog.MustTable("lineitem",
		[]catalog.Column{{Name: "linekey", Kind: value.Int}, {Name: "orderkey", Kind: value.Int}}, "linekey"))
	return s
}

func chainCfg(n int) *partition.Config {
	cfg := partition.NewConfig(n)
	cfg.SetHash("lineitem", "linekey")
	cfg.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	cfg.SetPref("customer", "orders", []string{"custkey"}, []string{"custkey"})
	return cfg
}

func fullDB(t *testing.T, nCust, ordersPer, linesPer int) *table.Database {
	t.Helper()
	db := table.NewDatabase(schemaCOL(t))
	line, order := int64(0), int64(0)
	for c := int64(0); c < int64(nCust); c++ {
		db.Tables["customer"].MustAppend(value.Tuple{c, c % 5})
		for o := 0; o < ordersPer; o++ {
			db.Tables["orders"].MustAppend(value.Tuple{order, c})
			for li := 0; li < linesPer; li++ {
				db.Tables["lineitem"].MustAppend(value.Tuple{line, order})
				line++
			}
			order++
		}
	}
	return db
}

// Bulk loading tuple-at-a-time must produce exactly the same partitioned
// database as the offline partitioner (up to dup-bit placement, which both
// assign to the first-stored copy).
func TestLoadMatchesOfflinePartitioner(t *testing.T) {
	db := fullDB(t, 12, 3, 4)
	cfg := chainCfg(4)

	offline, err := partition.Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}

	empty := emptyPDB(db, cfg)
	loader := NewLoader(empty, cfg)
	if _, err := loader.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}

	for _, tbl := range []string{"lineitem", "orders", "customer"} {
		a, b := offline.Tables[tbl], empty.Tables[tbl]
		if a.StoredRows() != b.StoredRows() {
			t.Fatalf("%s: offline %d rows vs loaded %d", tbl, a.StoredRows(), b.StoredRows())
		}
		if a.DuplicateRows() != b.DuplicateRows() {
			t.Fatalf("%s: offline %d dups vs loaded %d", tbl, a.DuplicateRows(), b.DuplicateRows())
		}
		for p := range a.Parts {
			if !sameRowMultiset(a.Parts[p].Rows, b.Parts[p].Rows) {
				t.Fatalf("%s partition %d differs", tbl, p)
			}
		}
	}
}

func emptyPDB(db *table.Database, cfg *partition.Config) *table.PartitionedDatabase {
	pdb := &table.PartitionedDatabase{
		Schema: db.Schema, Tables: map[string]*table.Partitioned{}, N: cfg.NumPartitions,
	}
	for name, d := range db.Tables {
		pdb.Tables[name] = table.NewPartitioned(d.Meta, cfg.NumPartitions)
	}
	return pdb
}

func sameRowMultiset(a, b []value.Tuple) bool {
	key := func(rows []value.Tuple) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = string(value.MakeKey(r, idxRange(len(r))))
		}
		sort.Strings(out)
		return out
	}
	return reflect.DeepEqual(key(a), key(b))
}

func TestPartitionIndexAblation(t *testing.T) {
	db := fullDB(t, 10, 2, 3)
	cfg := chainCfg(4)

	fast := NewLoader(emptyPDB(db, cfg), cfg)
	if _, err := fast.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}
	slow := NewLoader(emptyPDB(db, cfg), cfg)
	slow.UsePartitionIndex = false
	if _, err := slow.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}
	if fast.Lookups == 0 {
		t.Fatal("indexed loader should record lookups")
	}
	if slow.ScannedRows == 0 {
		t.Fatal("unindexed loader should scan the referenced table")
	}
	// The scan path touches orders of magnitude more rows than the number
	// of indexed lookups — the Section 2.3 claim.
	if slow.ScannedRows < fast.Lookups*10 {
		t.Fatalf("scan path rows %d vs lookups %d: index not pulling its weight",
			slow.ScannedRows, fast.Lookups)
	}
}

func TestInsertOrphanThenPartnerBatches(t *testing.T) {
	db := fullDB(t, 2, 1, 1)
	cfg := chainCfg(2)
	pdb := emptyPDB(db, cfg)
	l := NewLoader(pdb, cfg)
	if _, err := l.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}
	// Insert an order whose orderkey has no lineitem: round-robin orphan.
	if err := l.Insert("orders", value.Tuple{999, 0}); err != nil {
		t.Fatal(err)
	}
	o := pdb.Tables["orders"]
	found := 0
	for _, p := range o.Parts {
		for i, r := range p.Rows {
			if r[0] == 999 {
				found++
				if p.HasRef.Get(i) {
					t.Fatal("orphan order must have hasRef=0")
				}
			}
		}
	}
	if found != 1 {
		t.Fatalf("orphan stored %d times, want 1", found)
	}

	// Insert lineitems for an existing order key spread across partitions,
	// then a customer referencing it: the loader must see fresh indexes.
	if err := l.Insert("lineitem", value.Tuple{1000, 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Insert("orders", value.Tuple{1, 1}); err != nil { // duplicate key 1 on purpose
		t.Fatal(err)
	}
	if err := l.Insert("customer", value.Tuple{50, 1}); err != nil {
		t.Fatal(err)
	}
	c := pdb.Tables["customer"]
	copies := 0
	for _, p := range c.Parts {
		for _, r := range p.Rows {
			if r[0] == 50 {
				copies++
			}
		}
	}
	if copies == 0 {
		t.Fatal("customer 50 lost")
	}
}

func TestInsertErrors(t *testing.T) {
	db := fullDB(t, 2, 1, 1)
	cfg := chainCfg(2)
	l := NewLoader(emptyPDB(db, cfg), cfg)
	if err := l.Insert("nope", value.Tuple{1}); err == nil {
		t.Fatal("unknown table must error")
	}
	if err := l.Insert("customer", value.Tuple{1}); err == nil {
		t.Fatal("bad arity must error")
	}
}

func TestDeleteFansOut(t *testing.T) {
	db := fullDB(t, 6, 2, 4)
	cfg := chainCfg(3)
	pdb := emptyPDB(db, cfg)
	l := NewLoader(pdb, cfg)
	if _, err := l.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}
	before := pdb.Tables["customer"].StoredRows()
	removed, err := l.Delete("customer", []string{"custkey"}, value.Tuple{3})
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("expected copies removed")
	}
	if got := pdb.Tables["customer"].StoredRows(); got != before-removed {
		t.Fatalf("stored = %d, want %d", got, before-removed)
	}
	for _, p := range pdb.Tables["customer"].Parts {
		for _, r := range p.Rows {
			if r[0] == 3 {
				t.Fatal("customer 3 should be gone from every partition")
			}
		}
	}
	if pdb.Tables["customer"].OriginalRows != 5 {
		t.Fatalf("original rows = %d, want 5", pdb.Tables["customer"].OriginalRows)
	}
}

func TestUpdateRules(t *testing.T) {
	db := fullDB(t, 4, 1, 2)
	cfg := chainCfg(2)
	pdb := emptyPDB(db, cfg)
	l := NewLoader(pdb, cfg)
	if _, err := l.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}
	// Non-key attribute: allowed, applied to all copies.
	n, err := l.Update("customer", []string{"custkey"}, value.Tuple{2}, "nation", 99)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no copies updated")
	}
	for _, p := range pdb.Tables["customer"].Parts {
		for _, r := range p.Rows {
			if r[0] == 2 && r[1] != 99 {
				t.Fatal("a copy was not updated")
			}
		}
	}
	// Partitioning predicate columns are immutable: customer.custkey is
	// the referencing column of its own PREF scheme…
	if _, err := l.Update("customer", []string{"custkey"}, value.Tuple{2}, "custkey", 7); err == nil {
		t.Fatal("updating a referencing column must be rejected")
	}
	// …and orders.custkey is referenced by customer's scheme.
	if _, err := l.Update("orders", []string{"orderkey"}, value.Tuple{0}, "custkey", 7); err == nil {
		t.Fatal("updating a referenced column must be rejected")
	}
	// lineitem.linekey is a hash partitioning column.
	if _, err := l.Update("lineitem", []string{"linekey"}, value.Tuple{0}, "linekey", 7); err == nil {
		t.Fatal("updating a hash column must be rejected")
	}
}

func TestReplicatedAndRoundRobinInsert(t *testing.T) {
	s := schemaCOL(t)
	cfg := partition.NewConfig(3)
	cfg.SetReplicated("customer")
	cfg.Set(&partition.TableScheme{Table: "orders", Method: partition.RoundRobin})
	cfg.SetHash("lineitem", "linekey")
	db := table.NewDatabase(s)
	pdb := emptyPDB(db, cfg)
	l := NewLoader(pdb, cfg)

	if err := l.Insert("customer", value.Tuple{1, 0}); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if pdb.Tables["customer"].Parts[p].Len() != 1 {
			t.Fatal("replicated insert must hit every partition")
		}
	}
	for i := int64(0); i < 6; i++ {
		if err := l.Insert("orders", value.Tuple{i, 1}); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < 3; p++ {
		if pdb.Tables["orders"].Parts[p].Len() != 2 {
			t.Fatal("round robin insert must spread evenly")
		}
	}
}

// mixedOp returns the i'th op batch of a deterministic mixed write
// stream over the fullDB(8,2,2) chain: partnered inserts into orders and
// customer, fresh-key lineitem inserts, leaf deletes, and non-key
// updates.
func mixedOp(i int) []Op {
	switch {
	case i%7 == 3:
		return []Op{Update("customer", []string{"custkey"}, value.Tuple{int64(i % 8)}, "nation", int64(i))}
	case i%11 == 5:
		return []Op{Delete("customer", []string{"custkey"}, value.Tuple{int64((i * 3) % 8)})}
	case i%3 == 0:
		return []Op{Insert("orders", value.Tuple{int64(1000 + i), int64(i % 16)})}
	case i%3 == 1:
		return []Op{Insert("customer", value.Tuple{int64(100 + i), int64(i % 8)})}
	default:
		return []Op{
			Insert("lineitem", value.Tuple{int64(2000 + i), int64(3000 + i)}),
			Insert("lineitem", value.Tuple{int64(2500 + i), int64(3000 + i)}),
		}
	}
}

// A crash-injected loader, after recovering every crashed batch, must
// end in exactly the state a crash-free loader reaches on the same
// logical stream: same epochs, same rows, same bitmaps, same cursors.
func TestCrashedBatchesRecoverToOracle(t *testing.T) {
	db := fullDB(t, 8, 2, 2)
	cfg := chainCfg(3)

	pdb := emptyPDB(db, cfg)
	l := NewLoader(pdb, cfg)
	if _, err := l.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}
	opdb := emptyPDB(db, cfg)
	ol := NewLoader(opdb, cfg)
	if _, err := ol.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}

	l.Faults = fault.NewInjector(fault.Policy{Seed: 21, WriteCrashProb: 0.6, WriteIndexRaceProb: 0.3})
	recoveries := 0
	for i := 0; i < 60; i++ {
		ops := mixedOp(i)
		if _, err := ol.Apply(ops...); err != nil {
			t.Fatalf("oracle op %d: %v", i, err)
		}
		_, err := l.Apply(ops...)
		if err == nil {
			continue
		}
		if !errors.Is(err, fault.ErrWriteCrashed) {
			t.Fatalf("op %d: %v", i, err)
		}
		if !l.NeedsRecovery() {
			t.Fatal("crashed loader must need recovery")
		}
		if _, err := l.Apply(ops...); !errors.Is(err, ErrNeedRecovery) {
			t.Fatalf("writes after a crash must be gated, got %v", err)
		}
		rep, err := l.Recover()
		if err != nil {
			t.Fatalf("recover after op %d: %v", i, err)
		}
		if rep.Pending != 1 || rep.Replayed != 1 {
			t.Fatalf("recovery report %+v, want one pending intent replayed", rep)
		}
		recoveries++
	}
	if recoveries == 0 || l.Metrics.Crashes == 0 {
		t.Fatal("fault schedule never crashed a write; test is vacuous")
	}
	if l.Metrics.Replays != int64(recoveries) {
		t.Fatalf("replays = %d, want %d", l.Metrics.Replays, recoveries)
	}

	if le, oe := pdb.Epoch(), opdb.Epoch(); le != oe {
		t.Fatalf("epoch %d after recovery, oracle %d", le, oe)
	}
	for _, tbl := range []string{"lineitem", "orders", "customer"} {
		a, b := opdb.Tables[tbl], pdb.Tables[tbl]
		if a.OriginalRows != b.OriginalRows {
			t.Fatalf("%s: original rows %d vs oracle %d", tbl, b.OriginalRows, a.OriginalRows)
		}
		for p := range a.Parts {
			if err := b.Parts[p].CheckInvariants(); err != nil {
				t.Fatalf("%s[%d]: %v", tbl, p, err)
			}
			if !sameRowMultiset(a.Parts[p].Rows, b.Parts[p].Rows) {
				t.Fatalf("%s partition %d differs from oracle", tbl, p)
			}
			if a.Parts[p].Dup.Count() != b.Parts[p].Dup.Count() ||
				a.Parts[p].HasRef.Count() != b.Parts[p].HasRef.Count() {
				t.Fatalf("%s partition %d bitmaps differ from oracle", tbl, p)
			}
		}
	}
	if l.Metrics.Amplification() < 1 {
		t.Fatalf("amplification %v < 1 on a PREF load", l.Metrics.Amplification())
	}
}

// Snapshots pinned before a crashed batch must keep reading the old
// epoch, untouched and invariant-clean, while the head is torn; after
// Recover the batch becomes visible in new snapshots exactly once.
func TestSnapshotIsolationAcrossCrash(t *testing.T) {
	db := fullDB(t, 4, 2, 2)
	cfg := chainCfg(2)
	pdb := emptyPDB(db, cfg)
	l := NewLoader(pdb, cfg)
	if _, err := l.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}

	pre := pdb.Snapshot()
	preRows := len(pre.Parts("orders")[0].Rows) + len(pre.Parts("orders")[1].Rows)

	l.Faults = fault.NewInjector(fault.Policy{Seed: 3, WriteCrashProb: 1})
	_, err := l.Apply(Insert("orders", value.Tuple{555, 0}))
	if !errors.Is(err, fault.ErrWriteCrashed) {
		t.Fatalf("want injected crash, got %v", err)
	}

	mid := pdb.Snapshot()
	if mid.Epoch != pre.Epoch {
		t.Fatal("crashed batch must not publish an epoch")
	}
	for p, part := range mid.Parts("orders") {
		if err := part.CheckInvariants(); err != nil {
			t.Fatalf("snapshot orders[%d] torn: %v", p, err)
		}
	}
	if got := len(mid.Parts("orders")[0].Rows) + len(mid.Parts("orders")[1].Rows); got != preRows {
		t.Fatalf("snapshot sees %d order rows mid-crash, want %d", got, preRows)
	}

	l.Faults = nil
	if _, err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	post := pdb.Snapshot()
	if post.Epoch != pre.Epoch+1 {
		t.Fatalf("post-recovery epoch %d, want %d", post.Epoch, pre.Epoch+1)
	}
	found := 0
	for _, part := range post.Parts("orders") {
		if err := part.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		for _, r := range part.Rows {
			if r[0] == 555 {
				found++
			}
		}
	}
	if found == 0 {
		t.Fatal("recovered insert missing from the new epoch")
	}
}

// Dup bits must be assigned fresh on re-insert of a previously deleted
// key: exactly one primary copy per logical tuple per epoch, however
// many times the key has lived before (the old firstSeen cache went
// stale after Delete).
func TestInsertDeleteReinsertDupBits(t *testing.T) {
	db := table.NewDatabase(schemaCOL(t))
	cfg := chainCfg(2)
	pdb := emptyPDB(db, cfg)
	l := NewLoader(pdb, cfg)

	for lk := int64(0); lk < 4; lk++ {
		if err := l.Insert("lineitem", value.Tuple{lk, 7}); err != nil {
			t.Fatal(err)
		}
	}
	partner := map[int]bool{}
	for p, part := range pdb.Tables["lineitem"].Parts {
		for _, r := range part.Rows {
			if r[1] == 7 {
				partner[p] = true
			}
		}
	}
	if len(partner) < 2 {
		t.Fatalf("setup: want orderkey 7 on >=2 partitions, got %d", len(partner))
	}

	countOrder7 := func() (copies, primaries, dups int) {
		for _, part := range pdb.Tables["orders"].Parts {
			for i, r := range part.Rows {
				if r[0] == 7 {
					copies++
					if part.Dup.Get(i) {
						dups++
					} else {
						primaries++
					}
					if !part.HasRef.Get(i) {
						t.Fatal("partnered copy must have hasRef=1")
					}
				}
			}
		}
		return
	}

	if err := l.Insert("orders", value.Tuple{7, 0}); err != nil {
		t.Fatal(err)
	}
	c1, p1, d1 := countOrder7()
	if c1 != len(partner) || p1 != 1 || d1 != c1-1 {
		t.Fatalf("first insert: copies=%d primaries=%d dups=%d, want %d/1/%d", c1, p1, d1, len(partner), len(partner)-1)
	}

	removed, err := l.Delete("orders", []string{"orderkey"}, value.Tuple{7})
	if err != nil {
		t.Fatal(err)
	}
	if removed != c1 {
		t.Fatalf("delete removed %d copies, want %d", removed, c1)
	}

	if err := l.Insert("orders", value.Tuple{7, 1}); err != nil {
		t.Fatal(err)
	}
	c2, p2, d2 := countOrder7()
	if c2 != len(partner) || p2 != 1 || d2 != c2-1 {
		t.Fatalf("re-insert: copies=%d primaries=%d dups=%d, want %d/1/%d", c2, p2, d2, len(partner), len(partner)-1)
	}
	if pdb.Tables["orders"].OriginalRows != 1 {
		t.Fatalf("orders OriginalRows = %d, want 1", pdb.Tables["orders"].OriginalRows)
	}
}

// Seed-partitioning columns are immutable even when they reach the table
// only through the hash-equivalence chain, not its own predicate.
func TestUpdateRejectsSeedPartitioningColumns(t *testing.T) {
	s := schemaCOL(t)
	cfg := partition.NewConfig(2)
	cfg.SetHash("lineitem", "orderkey")
	cfg.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	cfg.SetPref("customer", "orders", []string{"custkey"}, []string{"custkey"})
	db := table.NewDatabase(s)
	db.Tables["lineitem"].MustAppend(value.Tuple{1, 1})
	db.Tables["orders"].MustAppend(value.Tuple{1, 2})
	db.Tables["customer"].MustAppend(value.Tuple{2, 0})
	pdb := emptyPDB(db, cfg)
	l := NewLoader(pdb, cfg)
	if _, err := l.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}

	if mapped, ok := cfg.HashEquivalent("orders"); !ok || len(mapped) == 0 {
		t.Fatal("setup: orders should be hash-equivalent")
	}
	// orders.orderkey decides hash-equivalent placement (mapped from the
	// seed's hash column): immutable.
	if _, err := l.Update("orders", []string{"custkey"}, value.Tuple{2}, "orderkey", 9); err == nil {
		t.Fatal("updating a seed-mapped placement column must be rejected")
	}
	// The seed's own hash column, on the seed table: immutable.
	if _, err := l.Update("lineitem", []string{"linekey"}, value.Tuple{1}, "orderkey", 9); err == nil {
		t.Fatal("updating the seed hash column must be rejected")
	}
	// Non-placement columns stay writable.
	if _, err := l.Update("customer", []string{"custkey"}, value.Tuple{2}, "nation", 9); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Update("lineitem", []string{"orderkey"}, value.Tuple{1}, "linekey", 9); err != nil {
		t.Fatal(err)
	}
}

// Deleting referenced-side tuples whose keys are still in use by a PREF
// predicate is rejected — the loader does not re-place referencing
// copies downward. Unreferenced keys delete fine.
func TestDeleteRejectedWhileReferenced(t *testing.T) {
	db := fullDB(t, 2, 2, 2)
	cfg := chainCfg(2)
	pdb := emptyPDB(db, cfg)
	l := NewLoader(pdb, cfg)
	if _, err := l.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}

	if _, err := l.Delete("lineitem", []string{"linekey"}, value.Tuple{0}); err == nil {
		t.Fatal("deleting a referenced lineitem key must be rejected")
	}
	if err := l.Insert("lineitem", value.Tuple{500, 999}); err != nil {
		t.Fatal(err)
	}
	if n, err := l.Delete("lineitem", []string{"linekey"}, value.Tuple{500}); err != nil || n != 1 {
		t.Fatalf("unreferenced delete: n=%d err=%v", n, err)
	}
	// Peel the chain from the leaf: customer 0 releases custkey 0, the
	// orders release orderkey 0, and only then may the lineitems go.
	if _, err := l.Delete("customer", []string{"custkey"}, value.Tuple{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Delete("orders", []string{"custkey"}, value.Tuple{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Delete("lineitem", []string{"orderkey"}, value.Tuple{0}); err != nil {
		t.Fatalf("delete after dereferencing: %v", err)
	}
}

func TestApplyBatchValidation(t *testing.T) {
	db := fullDB(t, 2, 1, 1)
	cfg := chainCfg(2)
	l := NewLoader(emptyPDB(db, cfg), cfg)

	if _, err := l.Apply(Insert("customer", value.Tuple{1, 0}), Insert("orders", value.Tuple{1, 1})); err == nil {
		t.Fatal("multi-table batch must be rejected")
	}
	if _, err := l.Apply(
		Delete("customer", []string{"custkey"}, value.Tuple{1}),
		Delete("customer", []string{"custkey"}, value.Tuple{2}),
	); err == nil {
		t.Fatal("multi-op delete batch must be rejected")
	}
	c, err := l.Apply()
	if err != nil || c.Epoch != 0 {
		t.Fatalf("empty batch: %+v, %v", c, err)
	}
}

// The intent journal stays bounded: applied intents are pruned at
// commit, pending intents survive a crash until Recover drains them.
func TestIntentLogLifecycle(t *testing.T) {
	db := fullDB(t, 2, 1, 1)
	cfg := chainCfg(2)
	pdb := emptyPDB(db, cfg)
	l := NewLoader(pdb, cfg)
	if _, err := l.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}
	if l.Log().Len() != 0 {
		t.Fatalf("journal holds %d applied intents, want 0 after prune", l.Log().Len())
	}

	l.Faults = fault.NewInjector(fault.Policy{Seed: 3, WriteCrashProb: 1})
	if _, err := l.Apply(Insert("customer", value.Tuple{50, 1})); !errors.Is(err, fault.ErrWriteCrashed) {
		t.Fatalf("want crash, got %v", err)
	}
	if got := len(l.Log().Pending()); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}
	l.Faults = nil
	rep, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 1 || len(l.Log().Pending()) != 0 || l.NeedsRecovery() {
		t.Fatalf("journal not drained: %+v", rep)
	}
	// Recover with nothing pending is a no-op.
	if rep, err := l.Recover(); err != nil || rep.Pending != 0 || rep.Replayed != 0 {
		t.Fatalf("idle recover: %+v, %v", rep, err)
	}
}
