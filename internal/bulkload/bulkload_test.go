package bulkload

import (
	"reflect"
	"sort"
	"testing"

	"pref/internal/catalog"
	"pref/internal/partition"
	"pref/internal/table"
	"pref/internal/value"
)

func schemaCOL(t *testing.T) *catalog.Schema {
	t.Helper()
	s := catalog.NewSchema("t")
	s.MustAddTable(catalog.MustTable("customer",
		[]catalog.Column{{Name: "custkey", Kind: value.Int}, {Name: "nation", Kind: value.Int}}, "custkey"))
	s.MustAddTable(catalog.MustTable("orders",
		[]catalog.Column{{Name: "orderkey", Kind: value.Int}, {Name: "custkey", Kind: value.Int}}, "orderkey"))
	s.MustAddTable(catalog.MustTable("lineitem",
		[]catalog.Column{{Name: "linekey", Kind: value.Int}, {Name: "orderkey", Kind: value.Int}}, "linekey"))
	return s
}

func chainCfg(n int) *partition.Config {
	cfg := partition.NewConfig(n)
	cfg.SetHash("lineitem", "linekey")
	cfg.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	cfg.SetPref("customer", "orders", []string{"custkey"}, []string{"custkey"})
	return cfg
}

func fullDB(t *testing.T, nCust, ordersPer, linesPer int) *table.Database {
	t.Helper()
	db := table.NewDatabase(schemaCOL(t))
	line, order := int64(0), int64(0)
	for c := int64(0); c < int64(nCust); c++ {
		db.Tables["customer"].MustAppend(value.Tuple{c, c % 5})
		for o := 0; o < ordersPer; o++ {
			db.Tables["orders"].MustAppend(value.Tuple{order, c})
			for li := 0; li < linesPer; li++ {
				db.Tables["lineitem"].MustAppend(value.Tuple{line, order})
				line++
			}
			order++
		}
	}
	return db
}

// Bulk loading tuple-at-a-time must produce exactly the same partitioned
// database as the offline partitioner (up to dup-bit placement, which both
// assign to the first-stored copy).
func TestLoadMatchesOfflinePartitioner(t *testing.T) {
	db := fullDB(t, 12, 3, 4)
	cfg := chainCfg(4)

	offline, err := partition.Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}

	empty := emptyPDB(db, cfg)
	loader := NewLoader(empty, cfg)
	if _, err := loader.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}

	for _, tbl := range []string{"lineitem", "orders", "customer"} {
		a, b := offline.Tables[tbl], empty.Tables[tbl]
		if a.StoredRows() != b.StoredRows() {
			t.Fatalf("%s: offline %d rows vs loaded %d", tbl, a.StoredRows(), b.StoredRows())
		}
		if a.DuplicateRows() != b.DuplicateRows() {
			t.Fatalf("%s: offline %d dups vs loaded %d", tbl, a.DuplicateRows(), b.DuplicateRows())
		}
		for p := range a.Parts {
			if !sameRowMultiset(a.Parts[p].Rows, b.Parts[p].Rows) {
				t.Fatalf("%s partition %d differs", tbl, p)
			}
		}
	}
}

func emptyPDB(db *table.Database, cfg *partition.Config) *table.PartitionedDatabase {
	pdb := &table.PartitionedDatabase{
		Schema: db.Schema, Tables: map[string]*table.Partitioned{}, N: cfg.NumPartitions,
	}
	for name, d := range db.Tables {
		pdb.Tables[name] = table.NewPartitioned(d.Meta, cfg.NumPartitions)
	}
	return pdb
}

func sameRowMultiset(a, b []value.Tuple) bool {
	key := func(rows []value.Tuple) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = string(value.MakeKey(r, idxRange(len(r))))
		}
		sort.Strings(out)
		return out
	}
	return reflect.DeepEqual(key(a), key(b))
}

func TestPartitionIndexAblation(t *testing.T) {
	db := fullDB(t, 10, 2, 3)
	cfg := chainCfg(4)

	fast := NewLoader(emptyPDB(db, cfg), cfg)
	if _, err := fast.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}
	slow := NewLoader(emptyPDB(db, cfg), cfg)
	slow.UsePartitionIndex = false
	if _, err := slow.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}
	if fast.Lookups == 0 {
		t.Fatal("indexed loader should record lookups")
	}
	if slow.ScannedRows == 0 {
		t.Fatal("unindexed loader should scan the referenced table")
	}
	// The scan path touches orders of magnitude more rows than the number
	// of indexed lookups — the Section 2.3 claim.
	if slow.ScannedRows < fast.Lookups*10 {
		t.Fatalf("scan path rows %d vs lookups %d: index not pulling its weight",
			slow.ScannedRows, fast.Lookups)
	}
}

func TestInsertOrphanThenPartnerBatches(t *testing.T) {
	db := fullDB(t, 2, 1, 1)
	cfg := chainCfg(2)
	pdb := emptyPDB(db, cfg)
	l := NewLoader(pdb, cfg)
	if _, err := l.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}
	// Insert an order whose orderkey has no lineitem: round-robin orphan.
	if err := l.Insert("orders", value.Tuple{999, 0}); err != nil {
		t.Fatal(err)
	}
	o := pdb.Tables["orders"]
	found := 0
	for _, p := range o.Parts {
		for i, r := range p.Rows {
			if r[0] == 999 {
				found++
				if p.HasRef.Get(i) {
					t.Fatal("orphan order must have hasRef=0")
				}
			}
		}
	}
	if found != 1 {
		t.Fatalf("orphan stored %d times, want 1", found)
	}

	// Insert lineitems for an existing order key spread across partitions,
	// then a customer referencing it: the loader must see fresh indexes.
	if err := l.Insert("lineitem", value.Tuple{1000, 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Insert("orders", value.Tuple{1, 1}); err != nil { // duplicate key 1 on purpose
		t.Fatal(err)
	}
	if err := l.Insert("customer", value.Tuple{50, 1}); err != nil {
		t.Fatal(err)
	}
	c := pdb.Tables["customer"]
	copies := 0
	for _, p := range c.Parts {
		for _, r := range p.Rows {
			if r[0] == 50 {
				copies++
			}
		}
	}
	if copies == 0 {
		t.Fatal("customer 50 lost")
	}
}

func TestInsertErrors(t *testing.T) {
	db := fullDB(t, 2, 1, 1)
	cfg := chainCfg(2)
	l := NewLoader(emptyPDB(db, cfg), cfg)
	if err := l.Insert("nope", value.Tuple{1}); err == nil {
		t.Fatal("unknown table must error")
	}
	if err := l.Insert("customer", value.Tuple{1}); err == nil {
		t.Fatal("bad arity must error")
	}
}

func TestDeleteFansOut(t *testing.T) {
	db := fullDB(t, 6, 2, 4)
	cfg := chainCfg(3)
	pdb := emptyPDB(db, cfg)
	l := NewLoader(pdb, cfg)
	if _, err := l.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}
	before := pdb.Tables["customer"].StoredRows()
	removed, err := l.Delete("customer", []string{"custkey"}, value.Tuple{3})
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("expected copies removed")
	}
	if got := pdb.Tables["customer"].StoredRows(); got != before-removed {
		t.Fatalf("stored = %d, want %d", got, before-removed)
	}
	for _, p := range pdb.Tables["customer"].Parts {
		for _, r := range p.Rows {
			if r[0] == 3 {
				t.Fatal("customer 3 should be gone from every partition")
			}
		}
	}
	if pdb.Tables["customer"].OriginalRows != 5 {
		t.Fatalf("original rows = %d, want 5", pdb.Tables["customer"].OriginalRows)
	}
}

func TestUpdateRules(t *testing.T) {
	db := fullDB(t, 4, 1, 2)
	cfg := chainCfg(2)
	pdb := emptyPDB(db, cfg)
	l := NewLoader(pdb, cfg)
	if _, err := l.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}
	// Non-key attribute: allowed, applied to all copies.
	n, err := l.Update("customer", []string{"custkey"}, value.Tuple{2}, "nation", 99)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no copies updated")
	}
	for _, p := range pdb.Tables["customer"].Parts {
		for _, r := range p.Rows {
			if r[0] == 2 && r[1] != 99 {
				t.Fatal("a copy was not updated")
			}
		}
	}
	// Partitioning predicate columns are immutable: customer.custkey is
	// the referencing column of its own PREF scheme…
	if _, err := l.Update("customer", []string{"custkey"}, value.Tuple{2}, "custkey", 7); err == nil {
		t.Fatal("updating a referencing column must be rejected")
	}
	// …and orders.custkey is referenced by customer's scheme.
	if _, err := l.Update("orders", []string{"orderkey"}, value.Tuple{0}, "custkey", 7); err == nil {
		t.Fatal("updating a referenced column must be rejected")
	}
	// lineitem.linekey is a hash partitioning column.
	if _, err := l.Update("lineitem", []string{"linekey"}, value.Tuple{0}, "linekey", 7); err == nil {
		t.Fatal("updating a hash column must be rejected")
	}
}

func TestReplicatedAndRoundRobinInsert(t *testing.T) {
	s := schemaCOL(t)
	cfg := partition.NewConfig(3)
	cfg.SetReplicated("customer")
	cfg.Set(&partition.TableScheme{Table: "orders", Method: partition.RoundRobin})
	cfg.SetHash("lineitem", "linekey")
	db := table.NewDatabase(s)
	pdb := emptyPDB(db, cfg)
	l := NewLoader(pdb, cfg)

	if err := l.Insert("customer", value.Tuple{1, 0}); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if pdb.Tables["customer"].Parts[p].Len() != 1 {
			t.Fatal("replicated insert must hit every partition")
		}
	}
	for i := int64(0); i < 6; i++ {
		if err := l.Insert("orders", value.Tuple{i, 1}); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < 3; p++ {
		if pdb.Tables["orders"].Parts[p].Len() != 2 {
			t.Fatal("round robin insert must spread evenly")
		}
	}
}
