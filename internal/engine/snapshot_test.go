package engine

import (
	"reflect"
	"testing"

	"pref/internal/bulkload"
	"pref/internal/catalog"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/table"
	"pref/internal/value"
)

// Queries are pinned to the epoch published at admission: committed write
// batches advance Result.Epoch and become visible, while unpublished —
// even torn — head state never leaks into a result.
func TestQueryReadsPinnedEpochSnapshot(t *testing.T) {
	s := catalog.NewSchema("w")
	s.MustAddTable(catalog.MustTable("orders",
		[]catalog.Column{{Name: "orderkey", Kind: value.Int}, {Name: "custkey", Kind: value.Int}}, "orderkey"))
	s.MustAddTable(catalog.MustTable("customer",
		[]catalog.Column{{Name: "custkey", Kind: value.Int}, {Name: "nation", Kind: value.Int}}, "custkey"))
	db := table.NewDatabase(s)
	for o := int64(0); o < 12; o++ {
		db.Tables["orders"].MustAppend(value.Tuple{o, o % 4})
	}
	for c := int64(0); c < 4; c++ {
		db.Tables["customer"].MustAppend(value.Tuple{c, c % 2})
	}
	cfg := partition.NewConfig(4)
	cfg.SetHash("orders", "orderkey")
	cfg.SetPref("customer", "orders", []string{"custkey"}, []string{"custkey"})

	mk := func() plan.Node {
		return plan.Aggregate(plan.Scan("customer", "c"), nil,
			plan.Count("cnt"), plan.Sum(plan.Col("c.custkey"), "s"))
	}
	pq := prepareQuery(t, mk, db, cfg)

	res0, err := pq.run(t, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res0.Epoch != 0 {
		t.Fatalf("pre-write epoch = %d, want 0", res0.Epoch)
	}

	// A committed batch becomes visible and advances the pinned epoch.
	l := bulkload.NewLoader(pq.pdb, cfg)
	c1, err := l.Apply(bulkload.Insert("customer", value.Tuple{50, 9}))
	if err != nil {
		t.Fatal(err)
	}
	res1, err := pq.run(t, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Epoch != c1.Epoch {
		t.Fatalf("post-commit epoch = %d, want %d", res1.Epoch, c1.Epoch)
	}
	if res1.Rows[0][0] != res0.Rows[0][0]+1 {
		t.Fatalf("committed insert not visible: %v vs %v", res1.Rows, res0.Rows)
	}

	// Unpublished head state — here a torn mid-write append — must stay
	// invisible: the query reads its pinned snapshot, not the head.
	pt := pq.pdb.Tables["customer"]
	head := pt.BeginWrite(0)
	head.Rows = append(head.Rows, value.Tuple{77, 7})
	res2, err := pq.run(t, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Epoch != res1.Epoch || !reflect.DeepEqual(res2.Rows, res1.Rows) {
		t.Fatalf("torn head leaked into a pinned query: %v vs %v", res2.Rows, res1.Rows)
	}
	if discarded := pt.ResetToPublished(); discarded == 0 {
		t.Fatal("rollback discarded nothing despite a diverged head partition")
	}
	res3, err := pq.run(t, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res3.Rows, res1.Rows) {
		t.Fatal("rollback changed published query results")
	}
}
