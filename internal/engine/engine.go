// Package engine executes rewritten physical plans over a partitioned
// in-memory database: one logical node per partition, local operators per
// node, and exchange operators (repartition, broadcast, gather) that move
// rows between nodes while metering every byte that crosses a node
// boundary. The meter is the experiment substrate: the paper's runtime
// differences are driven by remote exchanges and per-node data volume,
// both of which are first-class observables here.
//
// Execution is resilient: every per-node unit of work runs under a
// per-query context.Context (deadline + cancellation), recovers panics
// into errors, retries injected crashes with capped exponential backoff,
// and fails work over from permanently failed nodes to a surviving buddy.
// Base-table partitions on failed nodes are reconstructed from PREF /
// replication redundancy where the scheme covers them (see recovery.go).
package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"pref/internal/check"
	"pref/internal/cluster"
	"pref/internal/fault"
	"pref/internal/plan"
	"pref/internal/table"
	"pref/internal/trace"
	"pref/internal/value"
)

// Stats aggregates the execution telemetry of one query.
type Stats struct {
	// BytesShipped counts bytes crossing node boundaries (8 bytes per
	// column per shipped row). Re-shipped exchange attempts count every
	// time they hit the wire.
	BytesShipped int64
	// RowsShipped counts rows crossing node boundaries.
	RowsShipped int64
	// RowsProcessed counts rows flowing through all operators on all
	// nodes (total CPU work proxy), including work burned by attempts
	// that crashed and were discarded.
	RowsProcessed int64
	// MaxNodeRows is the largest per-node processed-row count (the
	// parallel critical path).
	MaxNodeRows int64
	// Repartitions and Broadcasts count exchange operators executed.
	Repartitions int
	Broadcasts   int
	// Retries counts discarded work-unit attempts and failed exchange
	// shipments that were retried.
	Retries int
	// Failovers counts per-operator partition work units redirected from
	// a permanently failed node to its surviving buddy.
	Failovers int
	// RecoveredRows counts base-table tuple copies reconstructed from
	// surviving duplicate copies (PREF duplicates, replicas) after a
	// partition loss.
	RecoveredRows int64
	// WastedRows counts rows of work discarded by failed attempts (the
	// output of crashed units, the payload of failed shipments).
	WastedRows int64
	// Hedges counts speculative duplicate units launched for straggling
	// partitions; HedgeWins counts hedges that finished before their
	// straggling primary; HedgeWastedRows is the discarded row output of
	// hedge-race losers. All zero unless ExecOptions.Cluster enables
	// hedging.
	Hedges          int
	HedgeWins       int
	HedgeWastedRows int64
	// Probes counts half-open circuit-breaker probes the cluster layer
	// charged to this query at admission.
	Probes int
}

// Result is a completed query: output schema, gathered rows, telemetry.
type Result struct {
	Schema plan.Schema
	Rows   []value.Tuple
	Stats  Stats
	// Epoch is the data epoch the query was pinned to at admission:
	// every row it read came from that published snapshot, regardless of
	// concurrent write batches.
	Epoch int64
	// Trace is the per-operator, per-node execution trace, populated when
	// ExecOptions.Trace (or PREF_TRACE) is set; nil otherwise. It renders
	// as EXPLAIN ANALYZE via Trace.Render and exports as JSON.
	Trace *trace.Trace
}

// SortRows orders the result rows lexicographically, making map-ordered
// aggregate output deterministic for comparison.
func (r *Result) SortRows() {
	sort.Slice(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i], r.Rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// ExecOptions tunes the execution model.
type ExecOptions struct {
	// CacheRows models the per-node buffer pool, in rows. Hash-join
	// probes into a build side larger than this pay MissFactor× work —
	// the mechanism that made the paper's MySQL nodes collapse on joins
	// against large replicated tables (e.g. Q9 against a fully
	// replicated 8M-row PARTSUPP). 0 disables the penalty.
	CacheRows int
	// MissFactor is the work multiplier for out-of-cache probes
	// (default 15 when CacheRows > 0).
	MissFactor float64
	// Fault configures deterministic fault injection and the resilient
	// execution paths (retry, failover, redundancy recovery, per-query
	// timeout). Nil executes fault-free.
	Fault *fault.Policy
	// Verify runs the internal/check static plan/design verifier before
	// executing (a debug mode: every invariant of the Section 2.2 rewrite
	// is re-proved first). Setting the PREF_VERIFY environment variable to
	// any non-empty value enables it process-wide.
	Verify bool
	// Trace records a per-operator, per-node execution trace into
	// Result.Trace. Setting the PREF_TRACE environment variable to any
	// non-empty value enables it process-wide. When combined with Verify,
	// the finished trace is additionally cross-checked against the
	// statically proven plan properties (check.VerifyTrace): rows shipped
	// through an operator the verifier proved local fail the query.
	Trace bool
	// RowEngine forces the row-at-a-time reference engine instead of the
	// vectorized columnar path (vec.go). The two produce byte-identical
	// results, traces, and Stats — the differential oracle in
	// internal/bench holds them to it — so this is a debugging and
	// benchmarking switch, not a semantics switch. Setting the
	// PREF_ROW_ENGINE environment variable to any non-empty value forces
	// the row engine process-wide.
	RowEngine bool
	// Cluster attaches the query to a long-lived cluster health layer:
	// admission control, circuit-breaker routing (nodes tripped by earlier
	// queries are routed around without burning retries), half-open
	// probing with background partition rebuild, and hedged execution for
	// straggling partition units. Nil executes without the layer, exactly
	// as before it existed.
	Cluster *cluster.Cluster
}

// verifyEnv caches the PREF_VERIFY environment toggle.
var verifyEnv = sync.OnceValue(func() bool { return os.Getenv("PREF_VERIFY") != "" })

// traceEnv caches the PREF_TRACE environment toggle.
var traceEnv = sync.OnceValue(func() bool { return os.Getenv("PREF_TRACE") != "" })

// executor walks the physical plan once per query.
type executor struct {
	rw      *plan.Rewritten
	pdb     *table.PartitionedDatabase
	n       int
	opt     ExecOptions
	inj     *fault.Injector
	ctx     context.Context
	cancel  context.CancelFunc
	opSeq   int   // deterministic operator counter (main goroutine only)
	execDst []int // executing node per logical partition (buddy when down)
	// cl is the cluster health layer (nil: disabled); view is its
	// admission-time snapshot and down the effective down set — injector
	// faults not yet healed, plus breaker-tripped nodes — both immutable
	// for the whole query.
	cl   *cluster.Cluster
	view cluster.View
	down []bool
	// snap is the data snapshot pinned at admission; all scans read its
	// published partitions, never the loader's live write head.
	snap *table.DBSnapshot
	// hedgeDelay is the speculative-duplicate delay priced at admission;
	// hedgeOK gates the hedged fan-out path.
	hedgeDelay time.Duration
	hedgeOK    bool
	// useVec selects the vectorized columnar path for vectorizable
	// subtrees (see eval); off under ExecOptions.RowEngine or
	// PREF_ROW_ENGINE.
	useVec bool
	// tb is the trace sink; nil when tracing is off. Its ops' mutators
	// are nil-safe, so recording sites need no enabled-checks. Note the
	// fault-schedule anchor opSeq is NOT shared with trace op ids:
	// enabling tracing must not perturb injected fault schedules.
	tb      *trace.Builder
	stats   Stats
	nodeRow []int64                       // per-node processed rows
	survIdx map[string]map[value.Key]bool // surviving-copy index per table (recovery)
	mu      sync.Mutex
}

// partsOf resolves the partitions a scan of tbl must read: the pinned
// snapshot's published partitions when the query has one (the normal
// path — admission pins a snapshot), else the live head (executors
// driven without BeginQuery, e.g. direct unit-test construction).
//
// lint:snapshot-boundary the one sanctioned pin point: every scan resolves
// partitions here, so the snapshot-or-head decision lives in one place.
func (ex *executor) partsOf(pt *table.Partitioned, tbl string) []*table.Partition {
	if ex.snap != nil {
		if ps := ex.snap.Parts(tbl); ps != nil {
			return ps
		}
	}
	return pt.Parts
}

// epoch returns the query's pinned data epoch (0 without a snapshot).
func (ex *executor) epoch() int64 {
	if ex.snap != nil {
		return ex.snap.Epoch
	}
	return 0
}

// Execute runs a rewritten plan against a partitioned database and gathers
// the result at the coordinator.
func Execute(rw *plan.Rewritten, pdb *table.PartitionedDatabase) (*Result, error) {
	return ExecuteOpts(rw, pdb, ExecOptions{})
}

// ExecuteOpts is Execute with an explicit execution model.
func ExecuteOpts(rw *plan.Rewritten, pdb *table.PartitionedDatabase, opt ExecOptions) (*Result, error) {
	return ExecuteCtx(context.Background(), rw, pdb, opt)
}

// ErrDeadlineExceeded reports a query killed by an expired deadline —
// the caller's context deadline or the fault policy's per-query timeout —
// anywhere along the propagation path: waiting in an admission queue,
// between operator fan-outs, or inside a per-partition work unit. It is
// deliberately distinct from cluster.ErrAdmissionTimeout (the admission
// queue's own bounded wait, independent of any client deadline): a serving
// layer shedding load and a client giving up are different events and are
// priced differently. Matches errors.Is; the wrapped chain additionally
// still matches context.DeadlineExceeded.
var ErrDeadlineExceeded = errors.New("engine: query deadline exceeded")

// ExecuteCtx is ExecuteOpts under a caller-supplied context. The query
// additionally gets its own deadline when the fault policy sets one;
// cancelling ctx aborts all in-flight per-node work. A query killed by an
// expired deadline — whether it died queued at admission or mid-execution
// in a partition goroutine — fails with a typed ErrDeadlineExceeded.
func ExecuteCtx(ctx context.Context, rw *plan.Rewritten, pdb *table.PartitionedDatabase, opt ExecOptions) (*Result, error) {
	res, err := executeCtx(ctx, rw, pdb, opt)
	if err != nil && errors.Is(err, context.DeadlineExceeded) {
		err = fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	}
	return res, err
}

// executeCtx is the untyped body of ExecuteCtx.
//
// lint:ship-boundary coordinator assembly: gathers every partition's output
// and the per-node row counters into the final Result.
func executeCtx(ctx context.Context, rw *plan.Rewritten, pdb *table.PartitionedDatabase, opt ExecOptions) (*Result, error) {
	if opt.Verify || verifyEnv() {
		if err := check.Verify(rw); err != nil {
			return nil, fmt.Errorf("engine: plan failed static verification: %w", err)
		}
	}
	if opt.CacheRows > 0 && opt.MissFactor <= 1 {
		opt.MissFactor = 15
	}
	var inj *fault.Injector
	if opt.Fault != nil {
		inj = fault.NewInjector(*opt.Fault)
	}
	var cancel context.CancelFunc
	if t := inj.Timeout(); t > 0 {
		ctx, cancel = context.WithTimeout(ctx, t)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	// Admission first: a query that cannot get an execution slot must not
	// touch cluster health or launch work. The release tick also advances
	// breaker cool-downs (counted in completed queries).
	cl := opt.Cluster
	release, err := cl.Admit(ctx)
	if err != nil {
		return nil, fmt.Errorf("engine: query not admitted: %w", err)
	}
	defer release()

	// One health snapshot per query: trip nodes the fault layer reports
	// down right now, run due half-open probes (which may enqueue
	// background rebuilds), and resolve the degraded placement from the
	// per-epoch cache instead of once per scan.
	view, snap, probes := cl.BeginQuery(pdb, inj.NodeDown, inj.ProbeOK)
	down := effectiveDown(pdb.N, inj, view)
	execDst, err := cl.Placement(downKey(down), func() ([]int, error) {
		return buddyMap(pdb.N, down)
	})
	if err != nil {
		return nil, err
	}
	ex := &executor{
		rw: rw, pdb: pdb, n: pdb.N, opt: opt, inj: inj,
		ctx: ctx, cancel: cancel, execDst: execDst,
		cl: cl, view: view, down: down, snap: snap,
		nodeRow: make([]int64, pdb.N),
	}
	ex.stats.Probes = probes
	ex.hedgeDelay, ex.hedgeOK = cl.HedgeDelay()
	ex.useVec = !opt.RowEngine && !rowEnv()
	if opt.Trace || traceEnv() {
		ex.tb = trace.NewBuilder(pdb.N)
	}
	parts, err := ex.eval(rw.Root)
	if err != nil {
		return nil, err
	}
	rootProp := rw.Props[rw.Root]
	sch := rw.Schemas[rw.Root]

	// The synthetic Result span covers the implicit hand-off of the root's
	// partitions to the coordinator, traced even when it ships nothing.
	rtop := ex.tb.BeginResult()
	var rows []value.Tuple
	switch {
	case rootProp != nil && (rootProp.Gathered || rootProp.Repl):
		rows = parts[0]
		if rootProp.Repl {
			rtop.SetReadOne() // coordinator reads one of n identical copies
		}
		rtop.AddIn(ex.execDst[0], len(rows))
	default:
		// Implicit final gather to the coordinator, metered.
		op := ex.nextOp()
		for p, rs := range parts {
			rtop.AddIn(ex.execDst[p], len(rs))
			if p != 0 {
				if err := ex.shipBatch(rtop, op, p, len(rs), len(sch)); err != nil {
					return nil, err
				}
			}
			rows = append(rows, rs...)
		}
	}
	rtop.AddOut(ex.execDst[0], len(rows))
	for p := range ex.nodeRow {
		if ex.nodeRow[p] > ex.stats.MaxNodeRows {
			ex.stats.MaxNodeRows = ex.nodeRow[p]
		}
	}
	res := &Result{Schema: sch, Rows: rows, Stats: ex.stats, Epoch: ex.epoch()}
	if ex.tb != nil {
		ex.tb.SetTotals(trace.Totals{
			BytesShipped:    ex.stats.BytesShipped,
			RowsShipped:     ex.stats.RowsShipped,
			RowsProcessed:   ex.stats.RowsProcessed,
			MaxNodeRows:     ex.stats.MaxNodeRows,
			Repartitions:    ex.stats.Repartitions,
			Broadcasts:      ex.stats.Broadcasts,
			Retries:         ex.stats.Retries,
			Failovers:       ex.stats.Failovers,
			RecoveredRows:   ex.stats.RecoveredRows,
			WastedRows:      ex.stats.WastedRows,
			Hedges:          ex.stats.Hedges,
			HedgeWins:       ex.stats.HedgeWins,
			HedgeWastedRows: ex.stats.HedgeWastedRows,
			Probes:          ex.stats.Probes,
		})
		res.Trace = ex.tb.Build(rw)
		if opt.Verify || verifyEnv() {
			// Runtime cross-check: the observed spans must agree with the
			// statically proven Dup/Part properties and with Stats.
			if err := check.VerifyTrace(rw, res.Trace); err != nil {
				return nil, fmt.Errorf("engine: execution trace failed runtime verification: %w", err)
			}
		}
	}
	return res, nil
}

// effectiveDown resolves the query's down set: nodes the injector faults
// that the cluster has not healed and rebuilt, plus nodes the cluster
// routes around (breaker open: down or recovering). Without a cluster,
// view is zero-valued and the set degenerates to the injector's.
func effectiveDown(n int, inj *fault.Injector, view cluster.View) []bool {
	down := make([]bool, n)
	for p := range down {
		healed := p < len(view.Recovered) && view.Recovered[p]
		tripped := p < len(view.Serving) && !view.Serving[p]
		down[p] = (inj.NodeDown(p) && !healed) || tripped
	}
	return down
}

// downKey renders a down set as the cache key of the per-epoch placement
// and survivor-index caches.
func downKey(down []bool) string {
	b := make([]byte, len(down))
	for i, d := range down {
		if d {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// ErrAllNodesDown reports a query with no surviving node to run on:
// every logical node is permanently failed, breaker-tripped, or marked
// down by the health layer. Matches errors.Is; transient when breakers
// are the cause (cool-downs re-admit nodes), so callers may retry it
// under budget.
var ErrAllNodesDown = errors.New("engine: all nodes are down")

// buddyMap assigns every logical partition its executing node: itself, or
// — for down nodes — the next surviving node in ring order.
func buddyMap(n int, down []bool) ([]int, error) {
	dst := make([]int, n)
	for p := range dst {
		dst[p] = p
		if !down[p] {
			continue
		}
		buddy := -1
		for d := 1; d < n; d++ {
			if c := (p + d) % n; !down[c] {
				buddy = c
				break
			}
		}
		if buddy < 0 {
			return nil, fmt.Errorf("%w (%d nodes)", ErrAllNodesDown, n)
		}
		dst[p] = buddy
	}
	return dst, nil
}

// ship meters rows crossing a node boundary.
func (ex *executor) ship(rows, width int) {
	ex.stats.RowsShipped += int64(rows)
	ex.stats.BytesShipped += int64(rows) * int64(width) * 8
}

// work records per-node operator output (CPU proxy).
func (ex *executor) work(node, rows int) {
	ex.stats.RowsProcessed += int64(rows)
	ex.nodeRow[node] += int64(rows)
}

// nextOp returns the next deterministic operator id. eval walks the plan
// sequentially on the query goroutine, so the sequence is a pure function
// of the plan — the anchor that keeps fault schedules reproducible.
func (ex *executor) nextOp() int {
	op := ex.opSeq
	ex.opSeq++
	return op
}

// addInputs charges each partition's consumed input rows to the node the
// consuming unit executes on.
//
// lint:ship-boundary trace metering sweep: charges each partition's input
// rows to the node executing it, on the query goroutine.
func (ex *executor) addInputs(top *trace.Op, in [][]value.Tuple) {
	if top == nil {
		return
	}
	for p, rows := range in {
		top.AddIn(ex.execDst[p], len(rows))
	}
}

// firstErr picks the root-cause error, preferring anything over the
// context.Canceled noise that cancellation propagates to sibling units.
func firstErr(errs []error) error {
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
		if fallback == nil {
			fallback = err
		}
	}
	return fallback
}

// healed reports whether the cluster has repaired and rebuilt a node, so
// the injector's node-level faults for it no longer apply.
func (ex *executor) healed(node int) bool {
	return node < len(ex.view.Recovered) && ex.view.Recovered[node]
}

// crashAttempt and stragglerDelay are the injector hooks filtered through
// cluster health: a healed node's scripted node faults are gone.
func (ex *executor) crashAttempt(op, node, attempt int) bool {
	if ex.healed(node) {
		return false
	}
	return ex.inj.CrashAttempt(op, node, attempt)
}

func (ex *executor) stragglerDelay(op, node int) time.Duration {
	if ex.healed(node) {
		return 0
	}
	return ex.inj.StragglerDelay(op, node)
}

// sleepCtx sleeps d unless the context ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// shipBatch meters one exchange shipment of rows from src under injected
// shipment failures: a failed attempt's bytes hit the wire before being
// re-sent (so BytesShipped degrades) and its payload counts as wasted.
// Runs on the query goroutine only. Trace cells are charged to the node
// actually executing the source partition (the buddy when src is down);
// fault draws stay keyed by the logical src.
//
// lint:ship-boundary the shipment meter itself: every cross-partition batch
// is charged to Stats and the trace here, under injected ship failures.
func (ex *executor) shipBatch(top *trace.Op, op, src, rows, width int) error {
	if rows == 0 {
		return nil
	}
	en := ex.execDst[src]
	max := ex.inj.MaxAttempts()
	for attempt := 0; ; attempt++ {
		if err := ex.ctx.Err(); err != nil {
			return err
		}
		ex.ship(rows, width)
		top.AddShip(en, rows, width)
		if !ex.inj.ShipFail(op, src, attempt) {
			return nil
		}
		ex.stats.Retries++
		ex.stats.WastedRows += int64(rows)
		top.AddRetry(en, rows)
		if attempt+1 >= max {
			return fmt.Errorf("engine: shipment of %d rows from node %d: %d failed attempts: %w",
				rows, src, max, fault.ErrShipmentFailed)
		}
		if err := sleepCtx(ex.ctx, ex.inj.Backoff(op, src, attempt)); err != nil {
			return err
		}
	}
}

func (ex *executor) eval(n plan.Node) ([][]value.Tuple, error) {
	// Vectorizable subtrees run on the columnar path and materialize rows
	// exactly once, here — at the Result boundary or at the input of the
	// first row-only operator (aggregation, top-k, distinct-by-value).
	if ex.useVec && vectorizable(n) {
		bs, err := ex.evalVec(n)
		if err != nil {
			return nil, err
		}
		return materializeParts(bs), nil
	}
	switch n := n.(type) {
	case *plan.ScanNode:
		return ex.evalScan(n)
	case *plan.FilterNode:
		return ex.evalFilter(n)
	case *plan.ProjectNode:
		return ex.evalProject(n)
	case *plan.JoinNode:
		return ex.evalJoin(n)
	case *plan.AggregateNode:
		return ex.evalAggregate(n)
	case *plan.PartialAggNode:
		return ex.evalPartialAgg(n)
	case *plan.FinalAggNode:
		return ex.evalFinalAgg(n)
	case *plan.RepartitionNode:
		return ex.evalRepartition(n)
	case *plan.BroadcastNode:
		return ex.evalBroadcast(n)
	case *plan.DistinctPrefNode:
		return ex.evalDistinctPref(n)
	case *plan.DistinctByValueNode:
		return ex.evalDistinctByValue(n)
	case *plan.GatherNode:
		return ex.evalGather(n)
	case *plan.TopKNode:
		return ex.evalTopK(n)
	default:
		return nil, fmt.Errorf("engine: unsupported node %T", n)
	}
}

// scanRows materializes one partition's scan output, appending the hidden
// dup/hasRef index columns when the scan schema asks for them.
func scanRows(part *table.Partition, withIndexes bool) []value.Tuple {
	rows := make([]value.Tuple, 0, len(part.Rows))
	if withIndexes {
		for i, r := range part.Rows {
			nr := make(value.Tuple, len(r)+2)
			copy(nr, r)
			if part.Dup.Get(i) {
				nr[len(r)] = 1
			}
			if part.HasRef.Get(i) {
				nr[len(r)+1] = 1
			}
			rows = append(rows, nr)
		}
	} else {
		rows = append(rows, part.Rows...)
	}
	return rows
}

func (ex *executor) evalScan(n *plan.ScanNode) ([][]value.Tuple, error) {
	top := ex.tb.Begin(n, trace.KindScan)
	pt, ok := ex.pdb.Tables[n.Table]
	if !ok {
		return nil, fmt.Errorf("engine: table %s not in partitioned database", n.Table)
	}
	sch := ex.rw.Schemas[n]
	parts := ex.partsOf(pt, n.Table)
	withIndexes := len(sch) == pt.Meta.NumCols()+2
	var keep map[int]bool
	if n.Prune != nil {
		keep = make(map[int]bool, len(n.Prune))
		for _, p := range n.Prune {
			keep[p] = true
		}
	}
	return forEachPart(ex, top, func(p int) ([]value.Tuple, int, error) {
		if keep != nil && !keep[p] {
			return nil, 0, nil // pruned: the partition cannot contain matches
		}
		if ex.down[p] {
			// The node holding this base partition is unavailable —
			// permanently failed, or routed around by an open circuit
			// breaker: reconstruct its scan output from surviving
			// duplicate copies.
			rows, err := ex.recoverScan(top, pt, parts, p, withIndexes, len(sch))
			if err != nil {
				return nil, 0, err
			}
			return rows, len(rows), nil
		}
		rows := scanRows(parts[p], withIndexes)
		return rows, len(rows), nil
	})
}

func (ex *executor) evalFilter(n *plan.FilterNode) ([][]value.Tuple, error) {
	top := ex.tb.Begin(n, trace.KindFilter)
	in, err := ex.eval(n.Child)
	if err != nil {
		return nil, err
	}
	ex.addInputs(top, in)
	sch := ex.rw.Schemas[n.Child]
	return forEachPart(ex, top, func(p int) ([]value.Tuple, int, error) {
		pred, err := n.Pred.Bind(sch)
		if err != nil {
			return nil, 0, err
		}
		var rows []value.Tuple
		for _, r := range in[p] {
			if pred(r) {
				rows = append(rows, r)
			}
		}
		return rows, len(rows), nil
	})
}

func (ex *executor) evalProject(n *plan.ProjectNode) ([][]value.Tuple, error) {
	top := ex.tb.Begin(n, trace.KindProject)
	in, err := ex.eval(n.Child)
	if err != nil {
		return nil, err
	}
	ex.addInputs(top, in)
	sch := ex.rw.Schemas[n.Child]
	return forEachPart(ex, top, func(p int) ([]value.Tuple, int, error) {
		fns := make([]func(value.Tuple) int64, len(n.Exprs))
		for i, e := range n.Exprs {
			f, err := e.Bind(sch)
			if err != nil {
				return nil, 0, err
			}
			fns[i] = f
		}
		rows := make([]value.Tuple, 0, len(in[p]))
		for _, r := range in[p] {
			nr := make(value.Tuple, len(fns))
			for i, f := range fns {
				nr[i] = f(r)
			}
			rows = append(rows, nr)
		}
		return rows, len(rows), nil
	})
}

// dedupRows applies the disjunctive dup=0 filter over the given dup
// columns (Section 2.2's distinct operator); no movement involved. A Null
// dup flag means the row was null-extended by an outer join (it has no
// copy of that table at all) and is kept — such rows exist exactly once.
func dedupRows(rows []value.Tuple, sch plan.Schema, dupCols []string) ([]value.Tuple, error) {
	if len(dupCols) == 0 {
		return rows, nil
	}
	idx, err := sch.Indexes(dupCols)
	if err != nil {
		return nil, err
	}
	out := rows[:0:0]
	for _, r := range rows {
		keep := false
		for _, j := range idx {
			if r[j] == 0 || r[j] == plan.Null {
				keep = true
				break
			}
		}
		if keep {
			out = append(out, r)
		}
	}
	return out, nil
}

// evalDistinctPref drops PREF-duplicate rows (dup != 0) partition-locally.
//
// lint:ship-boundary exchange operator: sweeps per-partition outputs on the
// query goroutine to charge dedup hits; no rows move, nothing is metered.
func (ex *executor) evalDistinctPref(n *plan.DistinctPrefNode) ([][]value.Tuple, error) {
	top := ex.tb.Begin(n, trace.KindDistinctPref)
	in, err := ex.eval(n.Child)
	if err != nil {
		return nil, err
	}
	ex.addInputs(top, in)
	sch := ex.rw.Schemas[n.Child]
	out, err := forEachPart(ex, top, func(p int) ([]value.Tuple, int, error) {
		rows, err := dedupRows(in[p], sch, n.DupCols)
		if err != nil {
			return nil, 0, err
		}
		return rows, len(rows), nil
	})
	if err != nil {
		return nil, err
	}
	// Dedup hits are derived after the fan-out so crash-retried attempts
	// cannot double-count them.
	for p := range out {
		top.AddDedup(ex.execDst[p], len(in[p])-len(out[p]))
	}
	return out, nil
}

// evalDistinctByValue deduplicates by value, which requires a hash shuffle
// so equal rows meet on one partition.
//
// lint:ship-boundary exchange operator: scatters rows to hash-owner
// partitions and meters every crossing via shipBatch.
func (ex *executor) evalDistinctByValue(n *plan.DistinctByValueNode) ([][]value.Tuple, error) {
	top := ex.tb.Begin(n, trace.KindDistinctByValue)
	in, err := ex.eval(n.Child)
	if err != nil {
		return nil, err
	}
	ex.addInputs(top, in)
	sch := ex.rw.Schemas[n.Child]
	idx, err := sch.Indexes(n.Cols)
	if err != nil {
		return nil, err
	}
	// Shuffle by content so identical rows meet on one node, then keep
	// one per value.
	ex.stats.Repartitions++
	op := ex.nextOp()
	shuffled := make([][]value.Tuple, ex.n)
	for src, rows := range in {
		cross := 0
		for _, r := range rows {
			dst := int(value.HashTuple(r, idx) % uint64(ex.n))
			if dst != src {
				cross++
			}
			shuffled[dst] = append(shuffled[dst], r)
		}
		if err := ex.shipBatch(top, op, src, cross, len(sch)); err != nil {
			return nil, err
		}
	}
	out, err := forEachPart(ex, top, func(p int) ([]value.Tuple, int, error) {
		seen := make(map[value.Key]bool, len(shuffled[p]))
		var rows []value.Tuple
		for _, r := range shuffled[p] {
			k := value.MakeKey(r, idx)
			if !seen[k] {
				seen[k] = true
				rows = append(rows, r)
			}
		}
		return rows, len(rows), nil
	})
	if err != nil {
		return nil, err
	}
	for p := range out {
		top.AddDedup(ex.execDst[p], len(shuffled[p])-len(out[p]))
	}
	return out, nil
}

// evalRepartition hash-partitions rows onto their owner partitions.
//
// lint:ship-boundary exchange operator: scatters rows across partitions and
// meters every boundary crossing via shipBatch.
func (ex *executor) evalRepartition(n *plan.RepartitionNode) ([][]value.Tuple, error) {
	top := ex.tb.Begin(n, trace.KindRepartition)
	in, err := ex.eval(n.Child)
	if err != nil {
		return nil, err
	}
	sch := ex.rw.Schemas[n.Child]
	idx, err := sch.Indexes(n.Cols)
	if err != nil {
		return nil, err
	}
	ex.stats.Repartitions++
	op := ex.nextOp()
	start := time.Now()
	out := make([][]value.Tuple, ex.n)
	for src := 0; src < ex.n; src++ {
		if n.OneCopy && src != 0 {
			continue
		}
		top.AddIn(ex.execDst[src], len(in[src]))
		rows, err := dedupRows(in[src], sch, n.DupCols)
		if err != nil {
			return nil, err
		}
		top.AddDedup(ex.execDst[src], len(in[src])-len(rows))
		cross := 0
		for _, r := range rows {
			dst := int(value.HashTuple(r, idx) % uint64(ex.n))
			if dst != src {
				cross++
			}
			out[dst] = append(out[dst], r)
		}
		if err := ex.shipBatch(top, op, src, cross, len(sch)); err != nil {
			return nil, err
		}
	}
	if n.OneCopy {
		top.SetReadOne()
	}
	for dst := 0; dst < ex.n; dst++ {
		ex.work(ex.execDst[dst], len(out[dst]))
		top.AddWork(ex.execDst[dst], len(out[dst]))
		top.AddOut(ex.execDst[dst], len(out[dst]))
	}
	top.AddWall(ex.execDst[0], time.Since(start))
	return out, nil
}

// evalBroadcast replicates the full input to every partition.
//
// lint:ship-boundary exchange operator: copies rows to all partitions and
// meters the n-1 remote copies via shipBatch.
func (ex *executor) evalBroadcast(n *plan.BroadcastNode) ([][]value.Tuple, error) {
	top := ex.tb.Begin(n, trace.KindBroadcast)
	in, err := ex.eval(n.Child)
	if err != nil {
		return nil, err
	}
	sch := ex.rw.Schemas[n.Child]
	ex.stats.Broadcasts++
	op := ex.nextOp()
	start := time.Now()
	var all []value.Tuple
	for src := 0; src < ex.n; src++ {
		if n.OneCopy && src != 0 {
			continue
		}
		top.AddIn(ex.execDst[src], len(in[src]))
		rows, err := dedupRows(in[src], sch, n.DupCols)
		if err != nil {
			return nil, err
		}
		top.AddDedup(ex.execDst[src], len(in[src])-len(rows))
		// Each row is shipped to every other node.
		if err := ex.shipBatch(top, op, src, len(rows)*(ex.n-1), len(sch)); err != nil {
			return nil, err
		}
		all = append(all, rows...)
	}
	if n.OneCopy {
		top.SetReadOne()
	}
	// Every partition shares one row slice; clamp its capacity so a
	// downstream append through any one partition reallocates instead of
	// scribbling over its siblings' (and the trailing hidden) elements.
	all = all[:len(all):len(all)]
	out := make([][]value.Tuple, ex.n)
	for p := 0; p < ex.n; p++ {
		out[p] = all
		ex.work(ex.execDst[p], len(all))
		top.AddWork(ex.execDst[p], len(all))
		top.AddOut(ex.execDst[p], len(all))
	}
	top.AddWall(ex.execDst[0], time.Since(start))
	return out, nil
}

// evalGather concentrates all partitions' rows on the coordinator.
//
// lint:ship-boundary exchange operator: drains every partition to slot 0 and
// meters the remote partitions' rows via shipBatch.
func (ex *executor) evalGather(n *plan.GatherNode) ([][]value.Tuple, error) {
	top := ex.tb.Begin(n, trace.KindGather)
	in, err := ex.eval(n.Child)
	if err != nil {
		return nil, err
	}
	sch := ex.rw.Schemas[n.Child]
	start := time.Now()
	out := make([][]value.Tuple, ex.n)
	if n.OneCopy {
		top.SetReadOne()
		top.AddIn(ex.execDst[0], len(in[0]))
		// The child's partition 0 slice passes through; clamp so an append
		// downstream cannot overwrite the child's backing array in place.
		out[0] = in[0][:len(in[0]):len(in[0])]
		ex.work(ex.execDst[0], len(in[0]))
		top.AddWork(ex.execDst[0], len(in[0]))
		top.AddOut(ex.execDst[0], len(in[0]))
		top.AddWall(ex.execDst[0], time.Since(start))
		return out, nil
	}
	op := ex.nextOp()
	var rows []value.Tuple
	for p := 0; p < ex.n; p++ {
		top.AddIn(ex.execDst[p], len(in[p]))
		if p != 0 {
			if err := ex.shipBatch(top, op, p, len(in[p]), len(sch)); err != nil {
				return nil, err
			}
		}
		rows = append(rows, in[p]...)
	}
	out[0] = rows
	ex.work(ex.execDst[0], len(rows))
	top.AddWork(ex.execDst[0], len(rows))
	top.AddOut(ex.execDst[0], len(rows))
	top.AddWall(ex.execDst[0], time.Since(start))
	return out, nil
}
