// Package engine executes rewritten physical plans over a partitioned
// in-memory database: one logical node per partition, local operators per
// node, and exchange operators (repartition, broadcast, gather) that move
// rows between nodes while metering every byte that crosses a node
// boundary. The meter is the experiment substrate: the paper's runtime
// differences are driven by remote exchanges and per-node data volume,
// both of which are first-class observables here.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"pref/internal/plan"
	"pref/internal/table"
	"pref/internal/value"
)

// Stats aggregates the execution telemetry of one query.
type Stats struct {
	// BytesShipped counts bytes crossing node boundaries (8 bytes per
	// column per shipped row).
	BytesShipped int64
	// RowsShipped counts rows crossing node boundaries.
	RowsShipped int64
	// RowsProcessed counts rows flowing through all operators on all
	// nodes (total CPU work proxy).
	RowsProcessed int64
	// MaxNodeRows is the largest per-node processed-row count (the
	// parallel critical path).
	MaxNodeRows int64
	// Repartitions and Broadcasts count exchange operators executed.
	Repartitions int
	Broadcasts   int
}

// Result is a completed query: output schema, gathered rows, telemetry.
type Result struct {
	Schema plan.Schema
	Rows   []value.Tuple
	Stats  Stats
}

// SortRows orders the result rows lexicographically, making map-ordered
// aggregate output deterministic for comparison.
func (r *Result) SortRows() {
	sort.Slice(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i], r.Rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// ExecOptions tunes the execution model.
type ExecOptions struct {
	// CacheRows models the per-node buffer pool, in rows. Hash-join
	// probes into a build side larger than this pay MissFactor× work —
	// the mechanism that made the paper's MySQL nodes collapse on joins
	// against large replicated tables (e.g. Q9 against a fully
	// replicated 8M-row PARTSUPP). 0 disables the penalty.
	CacheRows int
	// MissFactor is the work multiplier for out-of-cache probes
	// (default 15 when CacheRows > 0).
	MissFactor float64
}

// executor walks the physical plan once per query.
type executor struct {
	rw      *plan.Rewritten
	pdb     *table.PartitionedDatabase
	n       int
	opt     ExecOptions
	stats   Stats
	nodeRow []int64 // per-node processed rows
	mu      sync.Mutex
}

// Execute runs a rewritten plan against a partitioned database and gathers
// the result at the coordinator.
func Execute(rw *plan.Rewritten, pdb *table.PartitionedDatabase) (*Result, error) {
	return ExecuteOpts(rw, pdb, ExecOptions{})
}

// ExecuteOpts is Execute with an explicit execution model.
func ExecuteOpts(rw *plan.Rewritten, pdb *table.PartitionedDatabase, opt ExecOptions) (*Result, error) {
	if opt.CacheRows > 0 && opt.MissFactor <= 1 {
		opt.MissFactor = 15
	}
	ex := &executor{rw: rw, pdb: pdb, n: pdb.N, opt: opt, nodeRow: make([]int64, pdb.N)}
	parts, err := ex.eval(rw.Root)
	if err != nil {
		return nil, err
	}
	rootProp := rw.Props[rw.Root]
	sch := rw.Schemas[rw.Root]

	var rows []value.Tuple
	switch {
	case rootProp != nil && (rootProp.Gathered || rootProp.Repl):
		rows = parts[0]
	default:
		// Implicit final gather to the coordinator, metered.
		for p, rs := range parts {
			if p != 0 {
				ex.ship(len(rs), len(sch))
			}
			rows = append(rows, rs...)
		}
	}
	for p := range ex.nodeRow {
		if ex.nodeRow[p] > ex.stats.MaxNodeRows {
			ex.stats.MaxNodeRows = ex.nodeRow[p]
		}
	}
	return &Result{Schema: sch, Rows: rows, Stats: ex.stats}, nil
}

// ship meters rows crossing a node boundary.
func (ex *executor) ship(rows, width int) {
	ex.stats.RowsShipped += int64(rows)
	ex.stats.BytesShipped += int64(rows) * int64(width) * 8
}

// work records per-node operator output (CPU proxy).
func (ex *executor) work(node, rows int) {
	ex.stats.RowsProcessed += int64(rows)
	ex.nodeRow[node] += int64(rows)
}

// forEachPart runs fn for every partition concurrently.
func (ex *executor) forEachPart(fn func(p int) error) error {
	errs := make([]error, ex.n)
	var wg sync.WaitGroup
	for p := 0; p < ex.n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = fn(p)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (ex *executor) eval(n plan.Node) ([][]value.Tuple, error) {
	switch n := n.(type) {
	case *plan.ScanNode:
		return ex.evalScan(n)
	case *plan.FilterNode:
		return ex.evalFilter(n)
	case *plan.ProjectNode:
		return ex.evalProject(n)
	case *plan.JoinNode:
		return ex.evalJoin(n)
	case *plan.AggregateNode:
		return ex.evalAggregate(n)
	case *plan.PartialAggNode:
		return ex.evalPartialAgg(n)
	case *plan.FinalAggNode:
		return ex.evalFinalAgg(n)
	case *plan.RepartitionNode:
		return ex.evalRepartition(n)
	case *plan.BroadcastNode:
		return ex.evalBroadcast(n)
	case *plan.DistinctPrefNode:
		return ex.evalDistinctPref(n)
	case *plan.DistinctByValueNode:
		return ex.evalDistinctByValue(n)
	case *plan.GatherNode:
		return ex.evalGather(n)
	case *plan.TopKNode:
		return ex.evalTopK(n)
	default:
		return nil, fmt.Errorf("engine: unsupported node %T", n)
	}
}

func (ex *executor) evalScan(n *plan.ScanNode) ([][]value.Tuple, error) {
	pt, ok := ex.pdb.Tables[n.Table]
	if !ok {
		return nil, fmt.Errorf("engine: table %s not in partitioned database", n.Table)
	}
	sch := ex.rw.Schemas[n]
	withIndexes := len(sch) == pt.Meta.NumCols()+2
	var keep map[int]bool
	if n.Prune != nil {
		keep = make(map[int]bool, len(n.Prune))
		for _, p := range n.Prune {
			keep[p] = true
		}
	}
	out := make([][]value.Tuple, ex.n)
	err := ex.forEachPart(func(p int) error {
		if keep != nil && !keep[p] {
			out[p] = nil // pruned: the partition cannot contain matches
			return nil
		}
		part := pt.Parts[p]
		rows := make([]value.Tuple, 0, len(part.Rows))
		if withIndexes {
			for i, r := range part.Rows {
				nr := make(value.Tuple, len(r)+2)
				copy(nr, r)
				if part.Dup.Get(i) {
					nr[len(r)] = 1
				}
				if part.HasRef.Get(i) {
					nr[len(r)+1] = 1
				}
				rows = append(rows, nr)
			}
		} else {
			rows = append(rows, part.Rows...)
		}
		ex.mu.Lock()
		ex.work(p, len(rows))
		ex.mu.Unlock()
		out[p] = rows
		return nil
	})
	return out, err
}

func (ex *executor) evalFilter(n *plan.FilterNode) ([][]value.Tuple, error) {
	in, err := ex.eval(n.Child)
	if err != nil {
		return nil, err
	}
	sch := ex.rw.Schemas[n.Child]
	out := make([][]value.Tuple, ex.n)
	err = ex.forEachPart(func(p int) error {
		pred, err := n.Pred.Bind(sch)
		if err != nil {
			return err
		}
		var rows []value.Tuple
		for _, r := range in[p] {
			if pred(r) {
				rows = append(rows, r)
			}
		}
		ex.mu.Lock()
		ex.work(p, len(rows))
		ex.mu.Unlock()
		out[p] = rows
		return nil
	})
	return out, err
}

func (ex *executor) evalProject(n *plan.ProjectNode) ([][]value.Tuple, error) {
	in, err := ex.eval(n.Child)
	if err != nil {
		return nil, err
	}
	sch := ex.rw.Schemas[n.Child]
	out := make([][]value.Tuple, ex.n)
	err = ex.forEachPart(func(p int) error {
		fns := make([]func(value.Tuple) int64, len(n.Exprs))
		for i, e := range n.Exprs {
			f, err := e.Bind(sch)
			if err != nil {
				return err
			}
			fns[i] = f
		}
		rows := make([]value.Tuple, 0, len(in[p]))
		for _, r := range in[p] {
			nr := make(value.Tuple, len(fns))
			for i, f := range fns {
				nr[i] = f(r)
			}
			rows = append(rows, nr)
		}
		ex.mu.Lock()
		ex.work(p, len(rows))
		ex.mu.Unlock()
		out[p] = rows
		return nil
	})
	return out, err
}

// dedupRows applies the disjunctive dup=0 filter over the given dup
// columns (Section 2.2's distinct operator); no movement involved. A Null
// dup flag means the row was null-extended by an outer join (it has no
// copy of that table at all) and is kept — such rows exist exactly once.
func dedupRows(rows []value.Tuple, sch plan.Schema, dupCols []string) []value.Tuple {
	if len(dupCols) == 0 {
		return rows
	}
	idx := make([]int, len(dupCols))
	for i, c := range dupCols {
		idx[i] = sch.MustIndex(c)
	}
	out := rows[:0:0]
	for _, r := range rows {
		keep := false
		for _, j := range idx {
			if r[j] == 0 || r[j] == plan.Null {
				keep = true
				break
			}
		}
		if keep {
			out = append(out, r)
		}
	}
	return out
}

func (ex *executor) evalDistinctPref(n *plan.DistinctPrefNode) ([][]value.Tuple, error) {
	in, err := ex.eval(n.Child)
	if err != nil {
		return nil, err
	}
	sch := ex.rw.Schemas[n.Child]
	out := make([][]value.Tuple, ex.n)
	err = ex.forEachPart(func(p int) error {
		rows := dedupRows(in[p], sch, n.DupCols)
		ex.mu.Lock()
		ex.work(p, len(rows))
		ex.mu.Unlock()
		out[p] = rows
		return nil
	})
	return out, err
}

func (ex *executor) evalDistinctByValue(n *plan.DistinctByValueNode) ([][]value.Tuple, error) {
	in, err := ex.eval(n.Child)
	if err != nil {
		return nil, err
	}
	sch := ex.rw.Schemas[n.Child]
	idx := make([]int, len(n.Cols))
	for i, c := range n.Cols {
		idx[i] = sch.MustIndex(c)
	}
	// Shuffle by content so identical rows meet on one node, then keep
	// one per value.
	ex.stats.Repartitions++
	out := make([][]value.Tuple, ex.n)
	for p := range out {
		out[p] = nil
	}
	for src, rows := range in {
		for _, r := range rows {
			dst := int(value.HashTuple(r, idx) % uint64(ex.n))
			if dst != src {
				ex.ship(1, len(sch))
			}
			out[dst] = append(out[dst], r)
		}
	}
	final := make([][]value.Tuple, ex.n)
	err = ex.forEachPart(func(p int) error {
		seen := make(map[value.Key]bool, len(out[p]))
		var rows []value.Tuple
		for _, r := range out[p] {
			k := value.MakeKey(r, idx)
			if !seen[k] {
				seen[k] = true
				rows = append(rows, r)
			}
		}
		ex.mu.Lock()
		ex.work(p, len(rows))
		ex.mu.Unlock()
		final[p] = rows
		return nil
	})
	return final, err
}

func (ex *executor) evalRepartition(n *plan.RepartitionNode) ([][]value.Tuple, error) {
	in, err := ex.eval(n.Child)
	if err != nil {
		return nil, err
	}
	sch := ex.rw.Schemas[n.Child]
	idx := make([]int, len(n.Cols))
	for i, c := range n.Cols {
		idx[i] = sch.MustIndex(c)
	}
	ex.stats.Repartitions++
	out := make([][]value.Tuple, ex.n)
	for src := 0; src < ex.n; src++ {
		if n.OneCopy && src != 0 {
			continue
		}
		rows := dedupRows(in[src], sch, n.DupCols)
		for _, r := range rows {
			dst := int(value.HashTuple(r, idx) % uint64(ex.n))
			if dst != src {
				ex.ship(1, len(sch))
			}
			out[dst] = append(out[dst], r)
			ex.work(dst, 1)
		}
	}
	return out, nil
}

func (ex *executor) evalBroadcast(n *plan.BroadcastNode) ([][]value.Tuple, error) {
	in, err := ex.eval(n.Child)
	if err != nil {
		return nil, err
	}
	sch := ex.rw.Schemas[n.Child]
	ex.stats.Broadcasts++
	var all []value.Tuple
	for src := 0; src < ex.n; src++ {
		if n.OneCopy && src != 0 {
			continue
		}
		rows := dedupRows(in[src], sch, n.DupCols)
		// Each row is shipped to every other node.
		ex.ship(len(rows)*(ex.n-1), len(sch))
		all = append(all, rows...)
	}
	out := make([][]value.Tuple, ex.n)
	for p := 0; p < ex.n; p++ {
		out[p] = all
		ex.work(p, len(all))
	}
	return out, nil
}

func (ex *executor) evalGather(n *plan.GatherNode) ([][]value.Tuple, error) {
	in, err := ex.eval(n.Child)
	if err != nil {
		return nil, err
	}
	sch := ex.rw.Schemas[n.Child]
	out := make([][]value.Tuple, ex.n)
	if n.OneCopy {
		out[0] = in[0]
		ex.work(0, len(in[0]))
		return out, nil
	}
	var rows []value.Tuple
	for p := 0; p < ex.n; p++ {
		if p != 0 {
			ex.ship(len(in[p]), len(sch))
		}
		rows = append(rows, in[p]...)
	}
	out[0] = rows
	ex.work(0, len(rows))
	return out, nil
}
