package engine

import (
	"pref/internal/fault"
	"pref/internal/table"
	"pref/internal/trace"
	"pref/internal/value"
)

// PREF-redundancy recovery.
//
// The PREF scheme's correctness mechanism — duplicating referencing tuples
// so joins stay local — doubles as a recovery source: a tuple copy lost
// with its node often exists verbatim on surviving nodes, either as a PREF
// duplicate (the tuple had partitioning partners on several partitions) or
// as a replica (REPLICATED tables). recoverScan exploits that: when the
// node holding base partition p is permanently failed, it reconstructs p's
// scan output on the buddy node from identical copies held by survivors.
//
// Simulation boundary: the lost partition's manifest — which tuple copies
// it held, with their dup/hasRef bits — is read from the in-memory
// partition, standing in for the recovery catalog a real deployment keeps
// off-node (cf. the Section 2.3 partition index, which maps referenced
// values to partition sets and is exactly what a coordinator would replay
// to learn p's content). The recovered *bytes* themselves must all be
// present on surviving partitions: any row without a surviving identical
// copy makes the partition unrecoverable and the query fails with a
// well-typed *fault.PartitionLostError.

// recoverScan reconstructs the scan output of lost partition p of pt from
// surviving duplicate copies. All recovered rows are shipped from
// survivors to the buddy node and metered; Stats.RecoveredRows counts
// them. Unrecoverable content returns *fault.PartitionLostError.
//
// lint:ship-boundary recovery path: rebuilt rows are shipped from surviving
// partitions to the buddy node and metered against Stats and the trace.
func (ex *executor) recoverScan(top *trace.Op, pt *table.Partitioned, parts []*table.Partition, p int, withIndexes bool, width int) ([]value.Tuple, error) {
	surv := ex.survivorIndex(pt, parts)
	part := parts[p]
	allCols := make([]int, pt.Meta.NumCols())
	for i := range allCols {
		allCols[i] = i
	}
	missing := 0
	for _, r := range part.Rows {
		if !surv[value.MakeKey(r, allCols)] {
			missing++
		}
	}
	if missing > 0 {
		return nil, &fault.PartitionLostError{
			Table: pt.Meta.Name, Partition: p, MissingRows: missing,
		}
	}
	rows := scanRows(part, withIndexes)
	ex.mu.Lock()
	ex.stats.RecoveredRows += int64(len(part.Rows))
	ex.ship(len(rows), width) // survivors → buddy node
	ex.mu.Unlock()
	en := ex.execDst[p]
	top.AddRecovered(en, len(part.Rows))
	top.AddShip(en, len(rows), width)
	return rows, nil
}

// survivorIndex returns the set of full-row contents of pt (read at the
// query's pinned snapshot) stored on partitions whose nodes survive,
// cached per table (the down set and snapshot are fixed for the whole
// query). With a cluster attached the cache lives there instead, keyed
// by table, effective down set, and data epoch — invalidated on
// health-epoch change and on data-epoch mismatch, so degraded queries
// between two transitions share one survivor sweep while never reading
// an index built over a different epoch's copies. Called from
// concurrent scan units.
//
// lint:ship-boundary recovery path: scans every surviving partition to index
// redundant copies; read-only, no rows move.
func (ex *executor) survivorIndex(pt *table.Partitioned, parts []*table.Partition) map[value.Key]bool {
	name := pt.Meta.Name
	if ex.cl != nil {
		// ex.down is immutable for the whole query, so building outside
		// ex.mu is safe; the cluster cache does its own locking.
		return ex.cl.SurvivorIndex(name, downKey(ex.down), ex.epoch(), func() map[value.Key]bool {
			return buildSurvivorIndex(pt, parts, ex.down)
		})
	}
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if idx, ok := ex.survIdx[name]; ok {
		return idx
	}
	idx := buildSurvivorIndex(pt, parts, ex.down)
	if ex.survIdx == nil {
		ex.survIdx = make(map[string]map[value.Key]bool)
	}
	ex.survIdx[name] = idx
	return idx
}

// buildSurvivorIndex sweeps the snapshot partitions on surviving nodes
// and indexes their full-row contents.
//
// lint:ship-boundary recovery path: reads every surviving partition's rows;
// read-only, no rows move.
func buildSurvivorIndex(pt *table.Partitioned, parts []*table.Partition, down []bool) map[value.Key]bool {
	allCols := make([]int, pt.Meta.NumCols())
	for i := range allCols {
		allCols[i] = i
	}
	idx := make(map[value.Key]bool)
	for q, part := range parts {
		if q < len(down) && down[q] {
			continue
		}
		for _, r := range part.Rows {
			idx[value.MakeKey(r, allCols)] = true
		}
	}
	return idx
}
