package engine

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"pref/internal/catalog"
	"pref/internal/fault"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/table"
	"pref/internal/value"
)

// runOnOpts is runOn with explicit execution options, returning the
// execution error instead of failing the test (fault tests assert on it).
func runOnOpts(t testing.TB, mk func() plan.Node, db *table.Database, cfg *partition.Config, popt plan.Options, eopt ExecOptions) (*Result, error) {
	t.Helper()
	pdb, err := partition.Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := plan.Rewrite(mk(), db.Schema, cfg, popt)
	if err != nil {
		t.Fatalf("rewrite: %v\n%s", err, plan.Format(mk()))
	}
	res, err := ExecuteOpts(rw, pdb, eopt)
	if err != nil {
		return nil, err
	}
	res.SortRows()
	return res, nil
}

// faultQueries is a battery spanning every operator family: scans, filters,
// projections, co-located and shuffled joins, partial/final aggregation,
// hasRef semi/anti rewrites, outer joins, and broadcasts.
func faultQueries() map[string]func() plan.Node {
	return map[string]func() plan.Node{
		"filter-project": func() plan.Node {
			f := plan.Filter(plan.Scan("orders", "o"), plan.Lt(plan.Col("o.custkey"), plan.Lit(3)))
			return plan.ProjectCols(f, "o.orderkey", "o.custkey")
		},
		"join-case2": func() plan.Node {
			j := plan.Join(plan.Scan("lineitem", "l"), plan.Scan("orders", "o"),
				plan.Inner, []string{"l.orderkey"}, []string{"o.orderkey"})
			return plan.ProjectCols(j, "l.linekey", "o.orderkey", "o.custkey")
		},
		"fig3-agg": func() plan.Node {
			j := plan.Join(plan.Scan("orders", "o"), plan.Scan("customer", "c"),
				plan.Inner, []string{"o.custkey"}, []string{"c.custkey"})
			return plan.Aggregate(j, []string{"c.name"}, plan.Sum(plan.Col("o.total"), "revenue"))
		},
		"three-way-agg": func() plan.Node {
			lo := plan.Join(plan.Scan("lineitem", "l"), plan.Scan("orders", "o"),
				plan.Inner, []string{"l.orderkey"}, []string{"o.orderkey"})
			loc := plan.Join(lo, plan.Scan("customer", "c"),
				plan.Inner, []string{"o.custkey"}, []string{"c.custkey"})
			return plan.Aggregate(loc, []string{"c.custkey"},
				plan.Count("n"), plan.Sum(plan.Col("l.qty"), "qty"))
		},
		"global-agg": func() plan.Node {
			return plan.Aggregate(plan.Scan("customer", "c"), nil,
				plan.Count("cnt"), plan.Min(plan.Col("c.custkey"), "lo"), plan.Max(plan.Col("c.custkey"), "hi"))
		},
		"semi": func() plan.Node {
			j := plan.Join(plan.Scan("customer", "c"), plan.Scan("orders", "o"),
				plan.Semi, []string{"c.custkey"}, []string{"o.custkey"})
			return plan.Aggregate(j, nil, plan.Count("cnt"))
		},
		"anti": func() plan.Node {
			j := plan.Join(plan.Scan("customer", "c"), plan.Scan("orders", "o"),
				plan.Anti, []string{"c.custkey"}, []string{"o.custkey"})
			return plan.Aggregate(j, nil, plan.Count("cnt"))
		},
		"left-outer": func() plan.Node {
			j := plan.Join(plan.Scan("customer", "c"), plan.Scan("orders", "o"),
				plan.LeftOuter, []string{"c.custkey"}, []string{"o.custkey"})
			return plan.Aggregate(j, []string{"c.custkey"}, plan.CountCol(plan.Col("o.orderkey"), "orders"))
		},
		"theta-broadcast": func() plan.Node {
			j := &plan.JoinNode{
				Left:  plan.Scan("customer", "c"),
				Right: plan.Scan("nation", "n"),
				Type:  plan.Inner,
				Residual: plan.Gt(plan.Col("c.nationkey"),
					plan.Col("n.nationkey")),
			}
			return plan.Aggregate(j, nil, plan.Count("cnt"))
		},
	}
}

// TestFlakyNodeRetriesByteIdentical is the headline resilience property:
// with node 0 crashing the first attempt of every work unit, every query in
// the battery, on every partitioning config, completes byte-identical to
// the fault-free run — paying only retries, never correctness.
func TestFlakyNodeRetriesByteIdentical(t *testing.T) {
	db := testDB(t)
	pol := &fault.Policy{Seed: 1, FlakyNodes: map[int]int{0: 1}}
	for qname, mk := range faultQueries() {
		for cname, cfg := range testConfigs(4) {
			clean, err := runOnOpts(t, mk, db, cfg, plan.Options{}, ExecOptions{})
			if err != nil {
				t.Fatalf("%s/%s clean: %v", qname, cname, err)
			}
			faulty, err := runOnOpts(t, mk, db, cfg, plan.Options{}, ExecOptions{Fault: pol})
			if err != nil {
				t.Fatalf("%s/%s faulty: %v", qname, cname, err)
			}
			if !reflect.DeepEqual(clean.Rows, faulty.Rows) {
				t.Errorf("%s/%s: rows differ under flaky node 0", qname, cname)
			}
			if faulty.Stats.Retries < 1 {
				t.Errorf("%s/%s: Retries = %d, want >= 1", qname, cname, faulty.Stats.Retries)
			}
			if faulty.Stats.WastedRows < 0 {
				t.Errorf("%s/%s: negative WastedRows", qname, cname)
			}
		}
	}
}

// TestSameSeedSameExecution: an execution under a probabilistic fault mix
// is a pure function of the policy — rows AND the full stats block.
func TestSameSeedSameExecution(t *testing.T) {
	db := testDB(t)
	cfg := testConfigs(4)["pref-chain"]
	mk := faultQueries()["three-way-agg"]
	pol := &fault.Policy{
		Seed:           99,
		CrashProb:      0.2,
		StragglerProb:  0.3,
		StragglerDelay: 100 * time.Microsecond,
		ShipFailProb:   0.4,
		MaxAttempts:    12,
	}
	clean, err := runOnOpts(t, mk, db, cfg, plan.Options{}, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := runOnOpts(t, mk, db, cfg, plan.Options{}, ExecOptions{Fault: pol})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := runOnOpts(t, mk, db, cfg, plan.Options{}, ExecOptions{Fault: pol})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Rows, clean.Rows) {
		t.Error("faulty run changed the result")
	}
	if !reflect.DeepEqual(r1.Rows, r2.Rows) {
		t.Error("same seed produced different rows")
	}
	if r1.Stats != r2.Stats {
		t.Errorf("same seed produced different stats:\n%+v\n%+v", r1.Stats, r2.Stats)
	}
	if r1.Stats.Retries == 0 {
		t.Error("expected some retries under CrashProb=0.2")
	}
}

// TestShipmentFailuresDegradeBytesShipped: a failed exchange attempt's
// bytes hit the wire before the re-send, so BytesShipped must exceed the
// fault-free baseline on some seed (the schedule is seed-deterministic, so
// we scan a few seeds rather than depend on one draw).
func TestShipmentFailuresDegradeBytesShipped(t *testing.T) {
	db := testDB(t)
	cfg := testConfigs(4)["pref-chain"]
	mk := faultQueries()["three-way-agg"]
	clean, err := runOnOpts(t, mk, db, cfg, plan.Options{}, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		pol := &fault.Policy{Seed: seed, ShipFailProb: 0.6, MaxAttempts: 16}
		res, err := runOnOpts(t, mk, db, cfg, plan.Options{}, ExecOptions{Fault: pol})
		if err != nil {
			continue // this seed exhausted a shipment's retry budget
		}
		if !reflect.DeepEqual(res.Rows, clean.Rows) {
			t.Fatalf("seed %d: shipment retries changed the result", seed)
		}
		if res.Stats.BytesShipped > clean.Stats.BytesShipped {
			if res.Stats.WastedRows == 0 {
				t.Fatal("re-shipment without WastedRows accounting")
			}
			return // degradation observed
		}
	}
	t.Fatal("no seed in 0..19 produced a failed shipment at ShipFailProb=0.6")
}

// recoveryDB builds fact(k,d) hashed on k and dim(d,payload) PREF-partitioned
// by reference on fact's d — so each dim tuple is duplicated onto every
// partition holding a matching fact tuple. With 8 fact keys per d value the
// copies span several partitions: exactly the redundancy recovery exploits.
func recoveryDB(t *testing.T) (*table.Database, *partition.Config) {
	t.Helper()
	s := catalog.NewSchema("r")
	s.MustAddTable(catalog.MustTable("fact",
		[]catalog.Column{{Name: "k", Kind: value.Int}, {Name: "d", Kind: value.Int}}, "k"))
	s.MustAddTable(catalog.MustTable("dim",
		[]catalog.Column{{Name: "d", Kind: value.Int}, {Name: "payload", Kind: value.Int}}, "d"))
	db := table.NewDatabase(s)
	for k := int64(0); k < 40; k++ {
		db.Tables["fact"].MustAppend(value.Tuple{k, k % 5})
	}
	for d := int64(0); d < 5; d++ {
		db.Tables["dim"].MustAppend(value.Tuple{d, 100 + d})
	}
	cfg := partition.NewConfig(4)
	cfg.SetHash("fact", "k")
	cfg.SetPref("dim", "fact", []string{"d"}, []string{"d"})
	return db, cfg
}

// coveredPartition returns a partition of pt that is non-empty and whose
// every stored row has an identical copy on some other partition, or -1.
func coveredPartition(pt *table.Partitioned) int {
	for p, part := range pt.Parts {
		if part.Len() == 0 {
			continue
		}
		ok := true
		for _, r := range part.Rows {
			found := false
			for q, other := range pt.Parts {
				if q == p || found {
					continue
				}
				for _, s := range other.Rows {
					if reflect.DeepEqual(r, s) {
						found = true
						break
					}
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
	return -1
}

// TestCrashedNodeRecoversFromPrefDuplicates: a permanently failed node whose
// dim partition is fully covered by PREF duplicate copies on survivors
// yields a byte-identical result, with the reconstruction visible in stats.
func TestCrashedNodeRecoversFromPrefDuplicates(t *testing.T) {
	db, cfg := recoveryDB(t)
	pdb, err := partition.Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	down := coveredPartition(pdb.Tables["dim"])
	if down < 0 {
		t.Fatal("precondition: no dim partition is fully covered by surviving duplicates")
	}
	mk := func() plan.Node {
		return plan.ProjectCols(plan.Scan("dim", "x"), "x.d", "x.payload")
	}
	clean, err := runOnOpts(t, mk, db, cfg, plan.Options{}, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := runOnOpts(t, mk, db, cfg, plan.Options{},
		ExecOptions{Fault: &fault.Policy{DownNodes: []int{down}}})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if !reflect.DeepEqual(clean.Rows, faulty.Rows) {
		t.Errorf("recovered result differs:\ngot:  %v\nwant: %v", faulty.Rows, clean.Rows)
	}
	if faulty.Stats.RecoveredRows == 0 {
		t.Error("RecoveredRows = 0, want > 0")
	}
	if faulty.Stats.Failovers == 0 {
		t.Error("Failovers = 0, want > 0")
	}
	if faulty.Stats.BytesShipped <= clean.Stats.BytesShipped {
		t.Error("recovery shipments should show up in BytesShipped")
	}
}

// TestCrashedNodeRecoversFromReplication: a fully replicated table survives
// any single node loss.
func TestCrashedNodeRecoversFromReplication(t *testing.T) {
	db := testDB(t)
	cfg := testConfigs(4)["classical"] // customer and nation replicated
	mk := func() plan.Node {
		return plan.Aggregate(plan.Scan("customer", "c"), nil,
			plan.Count("cnt"), plan.Sum(plan.Col("c.custkey"), "s"))
	}
	clean, err := runOnOpts(t, mk, db, cfg, plan.Options{}, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := runOnOpts(t, mk, db, cfg, plan.Options{},
		ExecOptions{Fault: &fault.Policy{DownNodes: []int{2}}})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if !reflect.DeepEqual(clean.Rows, faulty.Rows) {
		t.Errorf("recovered result differs: %v vs %v", faulty.Rows, clean.Rows)
	}
	if faulty.Stats.RecoveredRows == 0 {
		t.Error("RecoveredRows = 0, want > 0")
	}
}

// TestUnrecoverablePartitionLost: hash partitioning stores exactly one copy
// of each row, so losing a node loses data — the query must fail with the
// typed partition-loss error, not return silently short results.
func TestUnrecoverablePartitionLost(t *testing.T) {
	db := testDB(t)
	cfg := testConfigs(4)["all-hashed"]
	mk := func() plan.Node {
		return plan.ProjectCols(plan.Scan("orders", "o"), "o.orderkey")
	}
	_, err := runOnOpts(t, mk, db, cfg, plan.Options{},
		ExecOptions{Fault: &fault.Policy{DownNodes: []int{1}}})
	if err == nil {
		t.Fatal("expected partition-loss error, got success")
	}
	if !errors.Is(err, fault.ErrPartitionLost) {
		t.Fatalf("err = %v, want ErrPartitionLost", err)
	}
	var ple *fault.PartitionLostError
	if !errors.As(err, &ple) {
		t.Fatalf("err = %v, want *fault.PartitionLostError", err)
	}
	if ple.Table != "orders" || ple.Partition != 1 || ple.MissingRows == 0 {
		t.Fatalf("unexpected loss details: %+v", ple)
	}
}

// TestAllNodesDownRejected: a policy that downs the whole cluster is a
// planning-time error, not a hang.
func TestAllNodesDownRejected(t *testing.T) {
	db := testDB(t)
	cfg := testConfigs(4)["all-hashed"]
	mk := faultQueries()["filter-project"]
	_, err := runOnOpts(t, mk, db, cfg, plan.Options{},
		ExecOptions{Fault: &fault.Policy{DownNodes: []int{0, 1, 2, 3}}})
	if err == nil {
		t.Fatal("expected error with all nodes down")
	}
}

// TestQueryTimeoutNoGoroutineLeak: a cluster of stragglers against a short
// deadline surfaces context.DeadlineExceeded, and every worker goroutine
// unwinds (the straggler sleeps and backoffs are context-aware).
func TestQueryTimeoutNoGoroutineLeak(t *testing.T) {
	db := testDB(t)
	cfg := testConfigs(4)["pref-chain"]
	mk := faultQueries()["fig3-agg"]
	before := runtime.NumGoroutine()
	_, err := runOnOpts(t, mk, db, cfg, plan.Options{}, ExecOptions{Fault: &fault.Policy{
		StragglerProb:  1,
		StragglerDelay: 200 * time.Millisecond,
		Timeout:        20 * time.Millisecond,
	}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked: %d before, %d after settle", before, g)
	}
}

// newTestExecutor hand-builds an executor for white-box forEachPart tests.
func newTestExecutor(n int) *executor {
	ctx, cancel := context.WithCancel(context.Background())
	dst := make([]int, n)
	for i := range dst {
		dst[i] = i
	}
	return &executor{
		n: n, ctx: ctx, cancel: cancel, execDst: dst,
		nodeRow: make([]int64, n),
	}
}

// TestForEachPartShortCircuits: the first unit error cancels the query
// context, so a subsequent operator launches zero units.
func TestForEachPartShortCircuits(t *testing.T) {
	ex := newTestExecutor(4)
	defer ex.cancel()
	boom := errors.New("boom")
	var ran int32
	_, err := forEachPart(ex, nil, func(p int) ([]value.Tuple, int, error) {
		atomic.AddInt32(&ran, 1)
		if p == 1 {
			return nil, 0, boom
		}
		return nil, 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the unit error (not context noise)", err)
	}
	var ranAfter int32
	_, err = forEachPart(ex, nil, func(p int) ([]value.Tuple, int, error) {
		atomic.AddInt32(&ranAfter, 1)
		return nil, 0, nil
	})
	if err == nil {
		t.Fatal("post-cancel operator should fail")
	}
	if n := atomic.LoadInt32(&ranAfter); n != 0 {
		t.Fatalf("post-cancel operator launched %d units, want 0", n)
	}
}

// TestPanicRecoveredToError: a panicking unit fails the query with a
// descriptive error instead of crashing the process.
func TestPanicRecoveredToError(t *testing.T) {
	ex := newTestExecutor(2)
	defer ex.cancel()
	_, err := forEachPart(ex, nil, func(p int) ([]value.Tuple, int, error) {
		if p == 1 {
			panic("operator bug")
		}
		return nil, 0, nil
	})
	if err == nil {
		t.Fatal("expected error from panicking unit")
	}
	if got := err.Error(); !contains(got, "recovered panic") || !contains(got, "operator bug") {
		t.Fatalf("err = %q, want recovered-panic message", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestFailoverExecutesOnBuddy: work for a down node runs on its ring buddy
// and is counted as a failover.
func TestFailoverExecutesOnBuddy(t *testing.T) {
	dst, err := buddyMap(4, []bool{false, true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 3, 3, 3}; !reflect.DeepEqual(dst, want) {
		t.Fatalf("buddyMap = %v, want %v", dst, want)
	}
	if _, err := buddyMap(2, []bool{true, true}); err == nil {
		t.Fatal("buddyMap must reject a fully failed cluster")
	}
}
