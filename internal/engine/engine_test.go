package engine

import (
	"fmt"
	"reflect"
	"testing"

	"pref/internal/catalog"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/table"
	"pref/internal/value"
)

// testSchema: customer(custkey, nationkey, name) / orders(orderkey,
// custkey, total) / lineitem(linekey, orderkey, qty) / nation(nationkey).
func testSchema() *catalog.Schema {
	s := catalog.NewSchema("t")
	s.MustAddTable(catalog.MustTable("nation",
		[]catalog.Column{{Name: "nationkey", Kind: value.Int}}, "nationkey"))
	s.MustAddTable(catalog.MustTable("customer",
		[]catalog.Column{{Name: "custkey", Kind: value.Int}, {Name: "nationkey", Kind: value.Int}, {Name: "name", Kind: value.Str}}, "custkey"))
	s.MustAddTable(catalog.MustTable("orders",
		[]catalog.Column{{Name: "orderkey", Kind: value.Int}, {Name: "custkey", Kind: value.Int}, {Name: "total", Kind: value.Money}}, "orderkey"))
	s.MustAddTable(catalog.MustTable("lineitem",
		[]catalog.Column{{Name: "linekey", Kind: value.Int}, {Name: "orderkey", Kind: value.Int}, {Name: "qty", Kind: value.Int}}, "linekey"))
	return s
}

// testDB fills the schema deterministically: 20 customers (4 without
// orders), 50 orders, 150 lineitems, 5 nations. Orders reference customers
// 0..15; customer 16..19 are orderless (exercising outer/anti joins and
// PREF orphans).
func testDB(t testing.TB) *table.Database {
	t.Helper()
	db := table.NewDatabase(testSchema())
	for i := int64(0); i < 5; i++ {
		db.Tables["nation"].MustAppend(value.Tuple{i})
	}
	dict := db.Schema.Table("customer").Dict("name")
	for i := int64(0); i < 20; i++ {
		db.Tables["customer"].MustAppend(value.Tuple{i, i % 5, dict.Code(fmt.Sprintf("cust-%02d", i))})
	}
	for i := int64(0); i < 50; i++ {
		db.Tables["orders"].MustAppend(value.Tuple{i, i % 16, value.FromMoney(float64(10 + i))})
	}
	for i := int64(0); i < 150; i++ {
		db.Tables["lineitem"].MustAppend(value.Tuple{i, i % 50, i % 7})
	}
	return db
}

// configs under test; results must be identical across all of them.
func testConfigs(n int) map[string]*partition.Config {
	cfgs := map[string]*partition.Config{}

	ref := partition.NewConfig(1)
	ref.SetHash("customer", "custkey").SetHash("orders", "orderkey").
		SetHash("lineitem", "linekey").SetHash("nation", "nationkey")
	cfgs["reference-1node"] = ref

	allHash := partition.NewConfig(n)
	allHash.SetHash("customer", "custkey").SetHash("orders", "orderkey").
		SetHash("lineitem", "linekey").SetHash("nation", "nationkey")
	cfgs["all-hashed"] = allHash

	prefChain := partition.NewConfig(n)
	prefChain.SetHash("lineitem", "orderkey")
	prefChain.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	prefChain.SetPref("customer", "orders", []string{"custkey"}, []string{"custkey"})
	prefChain.SetPref("nation", "customer", []string{"nationkey"}, []string{"nationkey"})
	cfgs["pref-chain"] = prefChain

	classical := partition.NewConfig(n)
	classical.SetHash("lineitem", "orderkey")
	classical.SetHash("orders", "orderkey")
	classical.SetReplicated("customer")
	classical.SetReplicated("nation")
	cfgs["classical"] = classical

	upChain := partition.NewConfig(n)
	upChain.SetHash("nation", "nationkey")
	upChain.SetPref("customer", "nation", []string{"nationkey"}, []string{"nationkey"})
	upChain.SetPref("orders", "customer", []string{"custkey"}, []string{"custkey"})
	upChain.SetPref("lineitem", "orders", []string{"orderkey"}, []string{"orderkey"})
	cfgs["ref-up-chain"] = upChain

	return cfgs
}

// runOn rewrites and executes a fresh copy of the logical plan builder on
// one config.
func runOn(t testing.TB, mk func() plan.Node, db *table.Database, cfg *partition.Config, opt plan.Options) *Result {
	t.Helper()
	pdb, err := partition.Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := plan.Rewrite(mk(), db.Schema, cfg, opt)
	if err != nil {
		t.Fatalf("rewrite: %v\n%s", err, plan.Format(mk()))
	}
	res, err := Execute(rw, pdb)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, plan.Format(rw.Root))
	}
	res.SortRows()
	return res
}

// assertAllConfigsAgree executes the plan on every config and requires
// identical (sorted) results.
func assertAllConfigsAgree(t *testing.T, mk func() plan.Node, opt plan.Options) map[string]*Result {
	t.Helper()
	db := testDB(t)
	results := map[string]*Result{}
	var refRows []value.Tuple
	for name, cfg := range testConfigs(4) {
		res := runOn(t, mk, db, cfg, opt)
		results[name] = res
		if name == "reference-1node" {
			refRows = res.Rows
		}
	}
	for name, res := range results {
		if !reflect.DeepEqual(res.Rows, refRows) {
			t.Errorf("config %s: %d rows, reference %d rows\ngot:  %v\nwant: %v",
				name, len(res.Rows), len(refRows), trunc(res.Rows), trunc(refRows))
		}
	}
	return results
}

func trunc(rows []value.Tuple) []value.Tuple {
	if len(rows) > 12 {
		return rows[:12]
	}
	return rows
}

func TestScanFilterProject(t *testing.T) {
	mk := func() plan.Node {
		f := plan.Filter(plan.Scan("orders", "o"), plan.Lt(plan.Col("o.custkey"), plan.Lit(3)))
		return plan.ProjectCols(f, "o.orderkey", "o.custkey")
	}
	res := assertAllConfigsAgree(t, mk, plan.Options{})
	// custkey 0,1,2 ⇒ i%16 ∈ {0,1,2}: i ∈ {0,1,2,16,17,18,32,33,34,48,49}.
	if len(res["reference-1node"].Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(res["reference-1node"].Rows))
	}
}

func TestCoLocatedJoinCase2(t *testing.T) {
	mk := func() plan.Node {
		j := plan.Join(plan.Scan("lineitem", "l"), plan.Scan("orders", "o"),
			plan.Inner, []string{"l.orderkey"}, []string{"o.orderkey"})
		return plan.ProjectCols(j, "l.linekey", "o.orderkey", "o.custkey")
	}
	res := assertAllConfigsAgree(t, mk, plan.Options{})
	if got := len(res["reference-1node"].Rows); got != 150 {
		t.Fatalf("join rows = %d, want 150", got)
	}
	// Under the PREF chain the join is fully local: no repartitioning.
	if res["pref-chain"].Stats.Repartitions != 0 {
		t.Errorf("pref-chain should need no repartition, got %d", res["pref-chain"].Stats.Repartitions)
	}
	// All-hashed-on-pk needs at least one repartition.
	if res["all-hashed"].Stats.Repartitions == 0 {
		t.Error("all-hashed should need repartitioning")
	}
}

func TestCoLocatedJoinCase3(t *testing.T) {
	mk := func() plan.Node {
		j := plan.Join(plan.Scan("orders", "o"), plan.Scan("customer", "c"),
			plan.Inner, []string{"o.custkey"}, []string{"c.custkey"})
		return plan.ProjectCols(j, "o.orderkey", "c.custkey", "c.name")
	}
	res := assertAllConfigsAgree(t, mk, plan.Options{})
	if got := len(res["reference-1node"].Rows); got != 50 {
		t.Fatalf("join rows = %d, want 50", got)
	}
	if res["pref-chain"].Stats.Repartitions != 0 {
		t.Error("o⋈c should be local under the pref chain (case 3)")
	}
	if res["ref-up-chain"].Stats.Repartitions != 0 {
		t.Error("o⋈c should be local under the up chain (case 2/3)")
	}
}

// The paper's Figure 3 query: SELECT SUM(o.total) FROM orders JOIN
// customer ON custkey GROUP BY c.name.
func TestPaperFigure3AggregationQuery(t *testing.T) {
	mk := func() plan.Node {
		j := plan.Join(plan.Scan("orders", "o"), plan.Scan("customer", "c"),
			plan.Inner, []string{"o.custkey"}, []string{"c.custkey"})
		return plan.Aggregate(j, []string{"c.name"}, plan.Sum(plan.Col("o.total"), "revenue"))
	}
	res := assertAllConfigsAgree(t, mk, plan.Options{})
	if got := len(res["reference-1node"].Rows); got != 16 {
		t.Fatalf("groups = %d, want 16 customers with orders", got)
	}
	// The aggregation input is PREF partitioned with duplicates, so a
	// repartition on the group-by column is required (Figure 3's plan).
	if res["pref-chain"].Stats.Repartitions == 0 {
		t.Error("group-by on c.name must repartition under pref chain")
	}
}

func TestThreeWayJoinAggregate(t *testing.T) {
	mk := func() plan.Node {
		lo := plan.Join(plan.Scan("lineitem", "l"), plan.Scan("orders", "o"),
			plan.Inner, []string{"l.orderkey"}, []string{"o.orderkey"})
		loc := plan.Join(lo, plan.Scan("customer", "c"),
			plan.Inner, []string{"o.custkey"}, []string{"c.custkey"})
		return plan.Aggregate(loc, []string{"c.custkey"},
			plan.Count("n"), plan.Sum(plan.Col("l.qty"), "qty"))
	}
	res := assertAllConfigsAgree(t, mk, plan.Options{})
	if res["pref-chain"].Stats.Repartitions > 1 {
		t.Errorf("pref-chain: only the final group-by should shuffle, got %d", res["pref-chain"].Stats.Repartitions)
	}
}

func TestGlobalAggregate(t *testing.T) {
	mk := func() plan.Node {
		return plan.Aggregate(plan.Scan("customer", "c"), nil,
			plan.Count("cnt"),
			plan.Min(plan.Col("c.custkey"), "lo"),
			plan.Max(plan.Col("c.custkey"), "hi"))
	}
	res := assertAllConfigsAgree(t, mk, plan.Options{})
	rows := res["reference-1node"].Rows
	if len(rows) != 1 || rows[0][0] != 20 || rows[0][1] != 0 || rows[0][2] != 19 {
		t.Fatalf("global agg = %v", rows)
	}
	// PREF-partitioned customer contains duplicates; the count must not
	// see them (dup-index elimination before the partial aggregation).
	if got := res["pref-chain"].Rows[0][0]; got != 20 {
		t.Fatalf("pref-chain count = %d, want 20", got)
	}
}

func TestAvgAggregate(t *testing.T) {
	mk := func() plan.Node {
		return plan.Aggregate(plan.Scan("orders", "o"), nil,
			plan.Avg(plan.Col("o.total"), "avg_total"))
	}
	res := assertAllConfigsAgree(t, mk, plan.Options{})
	got := value.ToFloat(res["reference-1node"].Rows[0][0])
	// totals are (10+i)*100 cents for i in 0..49 → avg = 3450 cents.
	if got != 3450 {
		t.Fatalf("avg = %v cents, want 3450", got)
	}
}

func TestSemiJoinBothPaths(t *testing.T) {
	mk := func() plan.Node {
		j := plan.Join(plan.Scan("customer", "c"), plan.Scan("orders", "o"),
			plan.Semi, []string{"c.custkey"}, []string{"o.custkey"})
		return plan.Aggregate(j, nil, plan.Count("cnt"))
	}
	with := assertAllConfigsAgree(t, mk, plan.Options{})
	without := assertAllConfigsAgree(t, mk, plan.Options{DisableHasRefOpt: true})
	// 16 customers have orders.
	if with["reference-1node"].Rows[0][0] != 16 {
		t.Fatalf("semi count = %d, want 16", with["reference-1node"].Rows[0][0])
	}
	if without["pref-chain"].Rows[0][0] != 16 {
		t.Fatalf("unoptimized semi count = %d, want 16", without["pref-chain"].Rows[0][0])
	}
	// The optimized plan avoids all shuffles under the pref chain
	// (hasRef filter) and never touches the orders table; the
	// unoptimized semi join still executes the join (co-located here),
	// processing strictly more rows.
	if with["pref-chain"].Stats.Repartitions != 0 {
		t.Error("hasRef-optimized semi join should not repartition")
	}
	if without["pref-chain"].Stats.RowsProcessed <= with["pref-chain"].Stats.RowsProcessed {
		t.Errorf("unoptimized semi should process more rows: %d vs %d",
			without["pref-chain"].Stats.RowsProcessed, with["pref-chain"].Stats.RowsProcessed)
	}
}

func TestAntiJoinBothPaths(t *testing.T) {
	mk := func() plan.Node {
		j := plan.Join(plan.Scan("customer", "c"), plan.Scan("orders", "o"),
			plan.Anti, []string{"c.custkey"}, []string{"o.custkey"})
		return plan.Aggregate(j, nil, plan.Count("cnt"))
	}
	with := assertAllConfigsAgree(t, mk, plan.Options{})
	without := assertAllConfigsAgree(t, mk, plan.Options{DisableHasRefOpt: true})
	// customers 16..19 have no orders.
	if with["reference-1node"].Rows[0][0] != 4 {
		t.Fatalf("anti count = %d, want 4", with["reference-1node"].Rows[0][0])
	}
	if without["pref-chain"].Rows[0][0] != 4 {
		t.Fatalf("unoptimized anti count = %d, want 4", without["pref-chain"].Rows[0][0])
	}
}

func TestAntiJoinWithFilteredRightRepartitions(t *testing.T) {
	// With a filtered right side the hasRef shortcut must NOT fire, and
	// PREF co-location is unsafe — correctness requires a shuffle.
	mk := func() plan.Node {
		right := plan.Filter(plan.Scan("orders", "o"), plan.Ge(plan.Col("o.total"), plan.MoneyLit(35)))
		j := plan.Join(plan.Scan("customer", "c"), right,
			plan.Anti, []string{"c.custkey"}, []string{"o.custkey"})
		return plan.Aggregate(j, nil, plan.Count("cnt"))
	}
	res := assertAllConfigsAgree(t, mk, plan.Options{})
	// orders with total ≥ $35: i ≥ 25 → custkeys (i%16) covered: 25..49
	// hits custkeys 9..15 and 0..8? i%16 for i in 25..49 = {9..15,0..15,0,1}
	// → all 16; so anti = 4 orderless customers.
	if res["reference-1node"].Rows[0][0] != 4 {
		t.Fatalf("filtered anti count = %d", res["reference-1node"].Rows[0][0])
	}
	if res["pref-chain"].Stats.Repartitions == 0 {
		t.Error("filtered anti join must repartition even under pref chain")
	}
}

func TestLeftOuterJoinQ13Style(t *testing.T) {
	mk := func() plan.Node {
		j := plan.Join(plan.Scan("customer", "c"), plan.Scan("orders", "o"),
			plan.LeftOuter, []string{"c.custkey"}, []string{"o.custkey"})
		return plan.Aggregate(j, []string{"c.custkey"},
			plan.CountCol(plan.Col("o.orderkey"), "orders"))
	}
	res := assertAllConfigsAgree(t, mk, plan.Options{})
	rows := res["reference-1node"].Rows
	if len(rows) != 20 {
		t.Fatalf("groups = %d, want all 20 customers", len(rows))
	}
	// Orderless customers count 0 (COUNT skips the null orderkey).
	zero := 0
	for _, r := range rows {
		if r[1] == 0 {
			zero++
		}
	}
	if zero != 4 {
		t.Fatalf("customers with zero orders = %d, want 4", zero)
	}
}

func TestThetaBroadcastJoin(t *testing.T) {
	mk := func() plan.Node {
		j := &plan.JoinNode{
			Left:  plan.Scan("customer", "c"),
			Right: plan.Scan("nation", "n"),
			Type:  plan.Inner,
			Residual: plan.Gt(plan.Col("c.nationkey"),
				plan.Col("n.nationkey")),
		}
		return plan.Aggregate(j, nil, plan.Count("cnt"))
	}
	res := assertAllConfigsAgree(t, mk, plan.Options{})
	// Σ_c (nationkey of c) since nations are 0..4: each customer with
	// nationkey k matches k nations. 20 customers, nationkey = i%5:
	// 4·(0+1+2+3+4) = 40.
	if res["reference-1node"].Rows[0][0] != 40 {
		t.Fatalf("theta join count = %d, want 40", res["reference-1node"].Rows[0][0])
	}
	if res["all-hashed"].Stats.Broadcasts == 0 {
		t.Error("theta join should broadcast")
	}
}

func TestDisableDupIndexStillCorrect(t *testing.T) {
	mk := func() plan.Node {
		j := plan.Join(plan.Scan("orders", "o"), plan.Scan("customer", "c"),
			plan.Inner, []string{"o.custkey"}, []string{"c.custkey"})
		return plan.Aggregate(j, []string{"c.name"}, plan.Sum(plan.Col("o.total"), "revenue"))
	}
	assertAllConfigsAgree(t, mk, plan.Options{DisableDupIndex: true})
}

func TestProjectionDedupes(t *testing.T) {
	// A bare projection over a PREF table must not emit duplicates.
	mk := func() plan.Node {
		return plan.ProjectCols(plan.Scan("customer", "c"), "c.custkey")
	}
	res := assertAllConfigsAgree(t, mk, plan.Options{})
	if got := len(res["pref-chain"].Rows); got != 20 {
		t.Fatalf("projected rows = %d, want 20 (dups eliminated)", got)
	}
}

func TestNetworkSavingsOfPref(t *testing.T) {
	// The headline effect: the 3-way join ships far less data under the
	// PREF chain than under all-hashed-on-pk partitioning.
	mk := func() plan.Node {
		lo := plan.Join(plan.Scan("lineitem", "l"), plan.Scan("orders", "o"),
			plan.Inner, []string{"l.orderkey"}, []string{"o.orderkey"})
		loc := plan.Join(lo, plan.Scan("customer", "c"),
			plan.Inner, []string{"o.custkey"}, []string{"c.custkey"})
		return plan.Aggregate(loc, nil, plan.Sum(plan.Col("l.qty"), "q"))
	}
	db := testDB(t)
	cfgs := testConfigs(4)
	pref := runOn(t, mk, db, cfgs["pref-chain"], plan.Options{})
	hashed := runOn(t, mk, db, cfgs["all-hashed"], plan.Options{})
	if !reflect.DeepEqual(pref.Rows, hashed.Rows) {
		t.Fatal("results differ")
	}
	if pref.Stats.BytesShipped >= hashed.Stats.BytesShipped {
		t.Fatalf("pref shipped %d bytes, hashed %d — expected pref < hashed",
			pref.Stats.BytesShipped, hashed.Stats.BytesShipped)
	}
}

func TestCostModelOrdersVariants(t *testing.T) {
	cm := DefaultCostModel()
	local := Stats{MaxNodeRows: 1000}
	remote := Stats{MaxNodeRows: 1000, BytesShipped: 50 << 20, Repartitions: 2}
	if cm.Simulate(local) >= cm.Simulate(remote) {
		t.Fatal("shipping 50MB must cost more than a local plan")
	}
}

func TestDuplicateAliasRejected(t *testing.T) {
	db := testDB(t)
	cfg := testConfigs(2)["all-hashed"]
	j := plan.Join(plan.Scan("orders", "o"), plan.Scan("orders", "o"),
		plan.Inner, []string{"o.orderkey"}, []string{"o.orderkey"})
	if _, err := plan.Rewrite(j, db.Schema, cfg, plan.Options{}); err == nil {
		t.Fatal("duplicate alias must be rejected")
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	mk := func() plan.Node {
		j := plan.Join(plan.Scan("orders", "o1"), plan.Scan("orders", "o2"),
			plan.Inner, []string{"o1.custkey"}, []string{"o2.custkey"})
		return plan.Aggregate(j, nil, plan.Count("pairs"))
	}
	res := assertAllConfigsAgree(t, mk, plan.Options{})
	// 16 custkeys: custkey k<2 has 4 orders (i%16: 50 orders → custkey 0,1
	// have 4; 2..15 have 3). pairs = 2·16 + 14·9 + ... compute: counts:
	// custkey 0:4,1:4,2..15:3 → Σ c² = 16+16+14·9 = 158.
	if res["reference-1node"].Rows[0][0] != 158 {
		t.Fatalf("self join pairs = %d, want 158", res["reference-1node"].Rows[0][0])
	}
}
