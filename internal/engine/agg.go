package engine

import (
	"math"
	"time"

	"pref/internal/plan"
	"pref/internal/trace"
	"pref/internal/value"
)

// aggState is the accumulator of one aggregate for one group.
type aggState struct {
	isum     float64 // sum over int-encoded values
	fsum     float64 // sum over float-encoded values
	cnt      int64   // non-null inputs
	min      int64
	max      int64
	fmin     float64
	fmax     float64
	seen     bool
	distinct map[int64]struct{} // COUNT(DISTINCT) values
}

func (s *aggState) add(v int64, isFloat bool) {
	if v == plan.Null {
		return
	}
	s.cnt++
	if isFloat {
		f := value.ToFloat(v)
		s.fsum += f
		if !s.seen || f < s.fmin {
			s.fmin = f
		}
		if !s.seen || f > s.fmax {
			s.fmax = f
		}
	} else {
		s.isum += float64(v)
		if !s.seen || v < s.min {
			s.min = v
		}
		if !s.seen || v > s.max {
			s.max = v
		}
	}
	s.seen = true
}

// groupAcc accumulates all aggregates for one group key.
type groupAcc struct {
	key    value.Tuple // group column values
	states []aggState
}

// aggPlanInfo pre-binds an aggregation against its input schema.
type aggPlanInfo struct {
	groupIdx []int
	argFns   []func(value.Tuple) int64
	isFloat  []bool
	aggs     []plan.AggExpr
}

func bindAggs(groupBy []string, aggs []plan.AggExpr, sch plan.Schema) (*aggPlanInfo, error) {
	info := &aggPlanInfo{aggs: aggs}
	for _, g := range groupBy {
		i, err := sch.IndexOf(g)
		if err != nil {
			return nil, err
		}
		info.groupIdx = append(info.groupIdx, i)
	}
	for _, a := range aggs {
		if a.Arg == nil {
			info.argFns = append(info.argFns, nil)
			info.isFloat = append(info.isFloat, false)
			continue
		}
		f, err := a.Arg.Bind(sch)
		if err != nil {
			return nil, err
		}
		info.argFns = append(info.argFns, f)
		info.isFloat = append(info.isFloat, a.Arg.Kind(sch) == value.Float)
	}
	return info, nil
}

// accumulate groups the rows of one partition.
func (info *aggPlanInfo) accumulate(rows []value.Tuple) map[value.Key]*groupAcc {
	groups := make(map[value.Key]*groupAcc)
	for _, r := range rows {
		k := value.MakeKey(r, info.groupIdx)
		g, ok := groups[k]
		if !ok {
			key := make(value.Tuple, len(info.groupIdx))
			for i, j := range info.groupIdx {
				key[i] = r[j]
			}
			g = &groupAcc{key: key, states: make([]aggState, len(info.aggs))}
			groups[k] = g
		}
		for i, a := range info.aggs {
			if a.Fn == plan.CountFn && a.Arg == nil {
				g.states[i].cnt++ // COUNT(*)
				g.states[i].seen = true
				continue
			}
			if a.Fn == plan.CountDistinctFn {
				v := info.argFns[i](r)
				if v != plan.Null {
					if g.states[i].distinct == nil {
						g.states[i].distinct = map[int64]struct{}{}
					}
					g.states[i].distinct[v] = struct{}{}
				}
				continue
			}
			g.states[i].add(info.argFns[i](r), info.isFloat[i])
		}
	}
	return groups
}

// finalValue renders the final output of one aggregate.
func finalValue(a plan.AggExpr, s *aggState, isFloat bool) int64 {
	switch a.Fn {
	case plan.CountFn:
		return s.cnt
	case plan.CountDistinctFn:
		return int64(len(s.distinct))
	case plan.SumFn:
		if s.cnt == 0 {
			return plan.Null
		}
		if isFloat {
			return value.FromFloat(s.fsum)
		}
		return int64(math.Round(s.isum))
	case plan.AvgFn:
		if s.cnt == 0 {
			return plan.Null
		}
		if isFloat {
			return value.FromFloat(s.fsum / float64(s.cnt))
		}
		return value.FromFloat(s.isum / float64(s.cnt))
	case plan.MinFn:
		if !s.seen {
			return plan.Null
		}
		if isFloat {
			return value.FromFloat(s.fmin)
		}
		return s.min
	case plan.MaxFn:
		if !s.seen {
			return plan.Null
		}
		if isFloat {
			return value.FromFloat(s.fmax)
		}
		return s.max
	default:
		return plan.Null
	}
}

func (ex *executor) evalAggregate(n *plan.AggregateNode) ([][]value.Tuple, error) {
	top := ex.tb.Begin(n, trace.KindAggregate)
	in, err := ex.eval(n.Child)
	if err != nil {
		return nil, err
	}
	ex.addInputs(top, in)
	sch := ex.rw.Schemas[n.Child]
	// Over a Gathered input only partition 0 is ever consumed downstream,
	// so the empty-input identity row of a global aggregation must not be
	// fabricated on the other partitions (phantom rows that inflate work
	// and break trace row conservation).
	childProp := ex.rw.Props[n.Child]
	gathered := childProp != nil && childProp.Gathered
	return forEachPart(ex, top, func(p int) ([]value.Tuple, int, error) {
		info, err := bindAggs(n.GroupBy, n.Aggs, sch)
		if err != nil {
			return nil, 0, err
		}
		groups := info.accumulate(in[p])
		if len(n.GroupBy) == 0 && len(groups) == 0 && (p == 0 || !gathered) {
			// A global aggregation always yields one row (COUNT()=0).
			groups[value.Key("")] = &groupAcc{states: make([]aggState, len(n.Aggs))}
		}
		rows := make([]value.Tuple, 0, len(groups))
		for _, g := range groups {
			row := make(value.Tuple, 0, len(g.key)+len(n.Aggs))
			row = append(row, g.key...)
			for i, a := range n.Aggs {
				row = append(row, finalValue(a, &g.states[i], info.isFloat[i]))
			}
			rows = append(rows, row)
		}
		return rows, len(rows), nil
	})
}

// evalPartialAgg emits per-partition partial states: AVG carries (sum,
// count); the other functions carry their (combinable) value.
func (ex *executor) evalPartialAgg(n *plan.PartialAggNode) ([][]value.Tuple, error) {
	top := ex.tb.Begin(n, trace.KindPartialAgg)
	in, err := ex.eval(n.Child)
	if err != nil {
		return nil, err
	}
	ex.addInputs(top, in)
	sch := ex.rw.Schemas[n.Child]
	return forEachPart(ex, top, func(p int) ([]value.Tuple, int, error) {
		info, err := bindAggs(n.GroupBy, n.Aggs, sch)
		if err != nil {
			return nil, 0, err
		}
		groups := info.accumulate(in[p])
		if len(n.GroupBy) == 0 && len(groups) == 0 {
			// Global aggregation over an empty partition: contribute an
			// identity state so the final merge still sees COUNT=0.
			groups[value.Key("")] = &groupAcc{states: make([]aggState, len(n.Aggs))}
		}
		var rows []value.Tuple
		for _, g := range groups {
			row := append(value.Tuple{}, g.key...)
			for i, a := range n.Aggs {
				s := &g.states[i]
				if a.Fn == plan.AvgFn {
					sum := s.isum
					if info.isFloat[i] {
						sum = s.fsum
					}
					row = append(row, value.FromFloat(sum), s.cnt)
					continue
				}
				row = append(row, finalValue(a, s, info.isFloat[i]))
			}
			rows = append(rows, row)
		}
		return rows, len(rows), nil
	})
}

// evalFinalAgg merges partial states (only the coordinator partition has
// rows after the preceding Gather). The merge is a single work unit on
// the coordinator node and runs under the same fault model as the
// fan-out operators.
//
// lint:ship-boundary coordinator-side merge: consumes every partition's
// partials on the query goroutine; its input exchange already metered them.
func (ex *executor) evalFinalAgg(n *plan.FinalAggNode) ([][]value.Tuple, error) {
	top := ex.tb.Begin(n, trace.KindFinalAgg)
	in, err := ex.eval(n.Child)
	if err != nil {
		return nil, err
	}
	// The merge reads only the coordinator partition (everything is there
	// after the preceding Gather).
	top.AddIn(ex.execDst[0], len(in[0]))
	sch := ex.rw.Schemas[n.Child]
	op := ex.nextOp()
	en := ex.execDst[0]
	start := time.Now()
	rows, work, err := runUnit(ex, ex.ctx, top, op, 0, en, func(int) ([]value.Tuple, int, error) {
		rs, err := mergePartials(n, sch, in[0])
		if err != nil {
			return nil, 0, err
		}
		return rs, len(rs), nil
	})
	top.AddWall(en, time.Since(start))
	if err != nil {
		return nil, err
	}
	out := make([][]value.Tuple, ex.n)
	out[0] = rows
	top.AddOut(en, len(rows))
	top.AddWork(en, work)
	if en != 0 {
		ex.stats.Failovers++
		top.AddFailover(en)
		ex.work(en, work)
	} else {
		ex.work(0, work)
	}
	return out, nil
}

// mergePartials combines partial-state rows into final aggregate rows.
func mergePartials(n *plan.FinalAggNode, sch plan.Schema, partials []value.Tuple) ([]value.Tuple, error) {
	type finalAcc struct {
		key    value.Tuple
		isum   []float64
		fsum   []float64
		cnt    []int64
		minv   []int64
		maxv   []int64
		fminv  []float64
		fmaxv  []float64
		seen   []bool
		isFlt  []bool
		avgSum []float64
		avgCnt []int64
	}
	ng := len(n.GroupBy)
	groupIdx := make([]int, ng)
	for i := range n.GroupBy {
		groupIdx[i] = i // partial schema leads with group columns
	}

	// Map each aggregate to its state column(s) in the partial schema.
	colOf := make([]int, len(n.Aggs))
	col := ng
	isFloatCol := make([]bool, len(n.Aggs))
	for i, a := range n.Aggs {
		colOf[i] = col
		if a.Fn == plan.AvgFn {
			col += 2
		} else {
			col++
		}
		isFloatCol[i] = sch[colOf[i]].Kind == value.Float
	}

	accs := map[value.Key]*finalAcc{}
	for _, r := range partials {
		k := value.MakeKey(r, groupIdx)
		acc, ok := accs[k]
		if !ok {
			acc = &finalAcc{
				key:  append(value.Tuple{}, r[:ng]...),
				isum: make([]float64, len(n.Aggs)), fsum: make([]float64, len(n.Aggs)),
				cnt:  make([]int64, len(n.Aggs)),
				minv: make([]int64, len(n.Aggs)), maxv: make([]int64, len(n.Aggs)),
				fminv: make([]float64, len(n.Aggs)), fmaxv: make([]float64, len(n.Aggs)),
				seen: make([]bool, len(n.Aggs)), avgSum: make([]float64, len(n.Aggs)),
				avgCnt: make([]int64, len(n.Aggs)),
			}
			accs[k] = acc
		}
		for i, a := range n.Aggs {
			v := r[colOf[i]]
			switch a.Fn {
			case plan.CountFn:
				acc.cnt[i] += v
			case plan.SumFn:
				if v == plan.Null {
					continue
				}
				if isFloatCol[i] {
					acc.fsum[i] += value.ToFloat(v)
				} else {
					acc.isum[i] += float64(v)
				}
				acc.seen[i] = true
			case plan.AvgFn:
				acc.avgSum[i] += value.ToFloat(v)
				acc.avgCnt[i] += r[colOf[i]+1]
			case plan.MinFn:
				if v == plan.Null {
					continue
				}
				if isFloatCol[i] {
					f := value.ToFloat(v)
					if !acc.seen[i] || f < acc.fminv[i] {
						acc.fminv[i] = f
					}
				} else if !acc.seen[i] || v < acc.minv[i] {
					acc.minv[i] = v
				}
				acc.seen[i] = true
			case plan.MaxFn:
				if v == plan.Null {
					continue
				}
				if isFloatCol[i] {
					f := value.ToFloat(v)
					if !acc.seen[i] || f > acc.fmaxv[i] {
						acc.fmaxv[i] = f
					}
				} else if !acc.seen[i] || v > acc.maxv[i] {
					acc.maxv[i] = v
				}
				acc.seen[i] = true
			}
		}
	}
	// Global aggregation always yields exactly one row.
	if ng == 0 && len(accs) == 0 {
		accs[value.Key("")] = &finalAcc{
			isum: make([]float64, len(n.Aggs)), fsum: make([]float64, len(n.Aggs)),
			cnt: make([]int64, len(n.Aggs)), minv: make([]int64, len(n.Aggs)),
			maxv: make([]int64, len(n.Aggs)), fminv: make([]float64, len(n.Aggs)),
			fmaxv: make([]float64, len(n.Aggs)), seen: make([]bool, len(n.Aggs)),
			avgSum: make([]float64, len(n.Aggs)), avgCnt: make([]int64, len(n.Aggs)),
		}
	}

	var rows []value.Tuple
	for _, acc := range accs {
		row := append(value.Tuple{}, acc.key...)
		for i, a := range n.Aggs {
			switch a.Fn {
			case plan.CountFn:
				row = append(row, acc.cnt[i])
			case plan.SumFn:
				if !acc.seen[i] {
					row = append(row, plan.Null)
				} else if isFloatCol[i] {
					row = append(row, value.FromFloat(acc.fsum[i]))
				} else {
					row = append(row, int64(math.Round(acc.isum[i])))
				}
			case plan.AvgFn:
				if acc.avgCnt[i] == 0 {
					row = append(row, plan.Null)
				} else {
					row = append(row, value.FromFloat(acc.avgSum[i]/float64(acc.avgCnt[i])))
				}
			case plan.MinFn:
				if !acc.seen[i] {
					row = append(row, plan.Null)
				} else if isFloatCol[i] {
					row = append(row, value.FromFloat(acc.fminv[i]))
				} else {
					row = append(row, acc.minv[i])
				}
			case plan.MaxFn:
				if !acc.seen[i] {
					row = append(row, plan.Null)
				} else if isFloatCol[i] {
					row = append(row, value.FromFloat(acc.fmaxv[i]))
				} else {
					row = append(row, acc.maxv[i])
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
