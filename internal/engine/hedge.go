package engine

import "errors"

// Hedged execution for straggling partition units.
//
// A single slow node dominates a parallel operator's latency: every
// partition must finish before the next operator starts, so the fan-out
// runs at the speed of its slowest unit. When a cluster health layer is
// attached and its hedge policy enabled, runPart (unit.go) races a
// speculative duplicate against any unit that has run longer than the
// cluster's quantile-priced delay: the duplicate runs the same partition's
// work on the next surviving node (unit closures are pure functions of the
// partition id, so either copy produces identical rows — in either the row
// or the columnar representation), the first result wins, the loser is
// cancelled and its discarded output metered as wasted hedge work in Stats
// and the trace. The race machinery itself (runHedged, runAttempt) lives
// in unit.go, generic over the unit payload.

// errHedgeLost is the sentinel a hedge-race loser returns after the
// winner's result was already taken. It never escapes runHedged: a loser
// exists only when a winner has already returned the partition's rows.
var errHedgeLost = errors.New("engine: lost hedge race")

// hedgeFor picks the node a speculative duplicate of a unit on en runs
// on: the next surviving node in ring order, or -1 when en is the only
// one left.
func (ex *executor) hedgeFor(en int) int {
	for d := 1; d < ex.n; d++ {
		if c := (en + d) % ex.n; !ex.down[c] {
			return c
		}
	}
	return -1
}
