package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"pref/internal/trace"
	"pref/internal/value"
)

// Hedged execution for straggling partition units.
//
// A single slow node dominates a parallel operator's latency: every
// partition must finish before the next operator starts, so the fan-out
// runs at the speed of its slowest unit. When a cluster health layer is
// attached and its hedge policy enabled, runPart races a speculative
// duplicate against any unit that has run longer than the cluster's
// quantile-priced delay: the duplicate runs the same partition's work on
// the next surviving node (partUnit closures are pure functions of the
// partition id, so either copy produces identical rows), the first
// result wins, the loser is cancelled and its discarded output metered
// as wasted hedge work in Stats and the trace.

// errHedgeLost is the sentinel a hedge-race loser returns after the
// winner's result was already taken. It never escapes runHedged: a loser
// exists only when a winner has already returned the partition's rows.
var errHedgeLost = errors.New("engine: lost hedge race")

// runPart executes one partition's unit, hedging a speculative duplicate
// onto a surviving peer when the cluster's hedge policy is on and a
// candidate node exists.
func (ex *executor) runPart(ctx context.Context, top *trace.Op, op, p int, fn partUnit) ([]value.Tuple, error) {
	en := ex.execDst[p]
	if !ex.hedgeOK {
		return ex.runAttempt(ctx, top, op, p, en, false, nil, fn)
	}
	hn := ex.hedgeFor(en)
	if hn < 0 {
		return ex.runAttempt(ctx, top, op, p, en, false, nil, fn)
	}
	return ex.runHedged(ctx, top, op, p, en, hn, fn)
}

// hedgeFor picks the node a speculative duplicate of a unit on en runs
// on: the next surviving node in ring order, or -1 when en is the only
// one left.
func (ex *executor) hedgeFor(en int) int {
	for d := 1; d < ex.n; d++ {
		if c := (en + d) % ex.n; !ex.down[c] {
			return c
		}
	}
	return -1
}

// runHedged races partition p's unit on its primary node en against a
// speculative duplicate on hn, launched only if the primary is still
// running after the cluster-priced hedge delay. First success wins and
// cancels the sibling; the fan-out always joins before returning
// (structured concurrency — losers unwind promptly because straggler
// sleeps and backoffs are context-aware).
func (ex *executor) runHedged(ctx context.Context, top *trace.Op, op, p, en, hn int, fn partUnit) ([]value.Tuple, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type unitResult struct {
		rows []value.Tuple
		err  error
	}
	// Capacity 2: both racers can deliver without a reader, so the loser
	// never blocks on send after the winner returned.
	resc := make(chan unitResult, 2)
	var won int32
	var wg sync.WaitGroup
	launch := func(node int, hedge bool) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows, err := ex.runAttempt(hctx, top, op, p, node, hedge, &won, fn)
			resc <- unitResult{rows, err}
		}()
	}
	launch(en, false)
	timer := time.NewTimer(ex.hedgeDelay)
	defer timer.Stop()
	outstanding, hedged := 1, false
	var errs []error
	var rows []value.Tuple
	var rerr error
race:
	for {
		select {
		case <-timer.C:
			if !hedged && atomic.LoadInt32(&won) == 0 && hctx.Err() == nil {
				hedged = true
				ex.mu.Lock()
				ex.stats.Hedges++
				ex.mu.Unlock()
				top.AddHedge(hn)
				launch(hn, true)
				outstanding++
			}
		case r := <-resc:
			outstanding--
			if r.err == nil {
				cancel() // first result wins: unwind the sibling
				rows = r.rows
				break race
			}
			errs = append(errs, r.err)
			if outstanding == 0 {
				rerr = firstErr(errs)
				break race
			}
		}
	}
	wg.Wait()
	return rows, rerr
}

// runAttempt runs one unit attempt-chain of partition p on node en and
// meters its outcome. won is the hedge-race flag (nil outside a race):
// exactly one racer claims it and meters output; a racer that succeeds
// after the claim is the loser — its rows are discarded but the CPU they
// cost is charged to the node and metered as wasted hedge work.
func (ex *executor) runAttempt(ctx context.Context, top *trace.Op, op, p, en int, hedge bool, won *int32, fn partUnit) ([]value.Tuple, error) {
	start := time.Now()
	rows, work, err := ex.runUnit(ctx, top, op, p, en, fn)
	elapsed := time.Since(start)
	top.AddWall(en, elapsed)
	if err != nil {
		return nil, err
	}
	if won != nil && !atomic.CompareAndSwapInt32(won, 0, 1) {
		ex.mu.Lock()
		ex.stats.HedgeWastedRows += int64(work)
		ex.work(en, work)
		ex.mu.Unlock()
		top.AddHedgeWaste(en, work)
		top.AddWork(en, work)
		return nil, errHedgeLost
	}
	ex.cl.ObserveUnit(elapsed)
	top.AddOut(en, len(rows))
	top.AddWork(en, work)
	ex.mu.Lock()
	switch {
	case hedge:
		ex.stats.HedgeWins++
	case en != p:
		ex.stats.Failovers++
	}
	ex.work(en, work)
	ex.mu.Unlock()
	if hedge {
		top.AddHedgeWin(en)
	} else if en != p {
		top.AddFailover(en)
	}
	return rows, nil
}
