package engine

import "time"

// CostModel converts execution telemetry into simulated wall-clock time on
// a commodity shared-nothing cluster. The paper's testbed (m1.medium EC2,
// Section 5.1) pairs slow CPUs with a network that makes remote operators
// dominate; the defaults mirror that regime. Absolute times are not
// comparable to the paper's — the *relative* ordering of partitioning
// variants is what the model preserves.
type CostModel struct {
	// TuplePerSec is the per-node operator throughput (rows/second).
	TuplePerSec float64
	// NetBytesPerSec is the interconnect bandwidth available to a query.
	NetBytesPerSec float64
	// ExchangeLatency is the fixed startup cost per exchange operator.
	ExchangeLatency time.Duration
}

// DefaultCostModel approximates the paper's commodity cluster
// (m1.medium EC2 nodes running MySQL): slow per-node row processing
// relative to a 1 Gb/s interconnect, with a small per-exchange startup.
// In that regime per-node data volume — which replication inflates and
// PREF co-partitioning divides by n — dominates, reproducing the paper's
// variant ordering.
func DefaultCostModel() CostModel {
	return CostModel{
		TuplePerSec:     500_000,
		NetBytesPerSec:  125e6, // 1 Gb/s
		ExchangeLatency: 2 * time.Millisecond,
	}
}

// Simulate estimates the query runtime from its stats: the parallel CPU
// critical path (max per-node rows) plus network transfer time plus
// exchange startup latency.
func (c CostModel) Simulate(s Stats) time.Duration {
	cpu := time.Duration(float64(s.MaxNodeRows) / c.TuplePerSec * float64(time.Second))
	net := time.Duration(float64(s.BytesShipped) / c.NetBytesPerSec * float64(time.Second))
	exch := time.Duration(s.Repartitions+s.Broadcasts) * c.ExchangeLatency
	return cpu + net + exch
}
