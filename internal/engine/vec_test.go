package engine

import (
	"math/rand"
	"testing"

	"pref/internal/check"
	"pref/internal/fault"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/trace"
	"pref/internal/value"
)

// Differential tests holding the vectorized engine (vec.go) and the
// row-at-a-time reference engine to byte-identical behavior: same rows,
// same Stats, same traces, same fault-schedule consumption.

// sameRows compares two result row sets elementwise. reflect.DeepEqual is
// deliberately avoided: the engines may legitimately differ in nil-vs-empty
// slice representation, which DeepEqual treats as inequality.
func sameRows(a, b []value.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// buildVecScenario mirrors traceScenario's generator but returns the plan
// and an executor closure instead of executing, so both engines run the
// identical plan over the identical data. Nils mean the random combination
// is invalid (a generator miss, not a failure).
func buildVecScenario(t *testing.T, seed int64) (*plan.Rewritten, func(ExecOptions) (*Result, error)) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := check.GenSchema(rng)
	cfg := check.GenConfig(rng, s)
	if cfg.Validate(s) != nil {
		return nil, nil
	}
	db := genData(rng, s)
	pdb, err := partition.Apply(db, cfg)
	if err != nil {
		return nil, nil
	}
	q := check.GenQuery(rng, s)
	rw, err := plan.Rewrite(q, s, cfg, plan.Options{})
	if err != nil {
		t.Fatalf("seed %d: rewrite failed: %v\n%s", seed, err, plan.Format(q))
	}
	return rw, func(opt ExecOptions) (*Result, error) {
		return ExecuteOpts(rw, pdb, opt)
	}
}

// assertEnginesAgree executes one scenario under both engines and fails
// unless rows, Stats, and (when traced) per-operator spans all match.
func assertEnginesAgree(t *testing.T, seed int64, rw *plan.Rewritten, exec func(ExecOptions) (*Result, error), opt ExecOptions) {
	t.Helper()
	opt.RowEngine = false
	vres, verr := exec(opt)
	opt.RowEngine = true
	rres, rerr := exec(opt)
	if (verr == nil) != (rerr == nil) {
		t.Fatalf("seed %d: engines disagree on failure: vec err=%v row err=%v", seed, verr, rerr)
	}
	if verr != nil {
		return // both failed identically-shaped fault schedules
	}
	// Aggregates emit in map-iteration order, which is nondeterministic even
	// between two runs of the same engine; normalise before comparing.
	vres.SortRows()
	rres.SortRows()
	if !sameRows(vres.Rows, rres.Rows) {
		t.Fatalf("seed %d: rows diverge: vec %d rows, row %d rows\nplan:\n%s",
			seed, len(vres.Rows), len(rres.Rows), rw.Explain())
	}
	if vres.Stats != rres.Stats {
		t.Fatalf("seed %d: stats diverge:\nvec %+v\nrow %+v\nplan:\n%s",
			seed, vres.Stats, rres.Stats, rw.Explain())
	}
	if vres.Trace != nil && rres.Trace != nil {
		if err := check.VerifyTrace(rw, vres.Trace); err != nil {
			t.Fatalf("seed %d: vectorized trace fails verification: %v\ntrace:\n%s",
				seed, err, vres.Trace.Render(trace.RenderOptions{}))
		}
		if vres.Trace.Totals != rres.Trace.Totals {
			t.Fatalf("seed %d: trace totals diverge:\nvec %+v\nrow %+v",
				seed, vres.Trace.Totals, rres.Trace.Totals)
		}
	}
}

// TestVecRowEquivalenceProperty is the engine-level differential oracle:
// random schema/design/query scenarios execute under both engines and must
// produce identical rows and identical telemetry.
func TestVecRowEquivalenceProperty(t *testing.T) {
	const rounds = 200
	executed := 0
	for seed := int64(0); seed < rounds; seed++ {
		rw, exec := buildVecScenario(t, seed)
		if exec == nil {
			continue
		}
		assertEnginesAgree(t, seed, rw, exec, ExecOptions{Trace: true})
		executed++
	}
	if executed < rounds/2 {
		t.Fatalf("only %d/%d seeds executed; generator is degenerate", executed, rounds)
	}
}

// TestVecRowEquivalenceUnderFaults re-runs the differential property with
// crash-retry and shipment-failure injection. Because the vectorized
// operators consume the deterministic operator sequence and meter the same
// row counts as their row twins, the injected fault schedule — including
// partial-batch ship retries — must hit both engines identically, down to
// Retries/WastedRows in Stats.
func TestVecRowEquivalenceUnderFaults(t *testing.T) {
	const rounds = 120
	executed := 0
	for seed := int64(0); seed < rounds; seed++ {
		rw, exec := buildVecScenario(t, seed)
		if exec == nil {
			continue
		}
		assertEnginesAgree(t, seed, rw, exec, ExecOptions{
			Trace: true,
			Fault: &fault.Policy{Seed: seed, CrashProb: 0.2, ShipFailProb: 0.2, MaxAttempts: 16},
		})
		executed++
	}
	if executed < rounds/3 {
		t.Fatalf("only %d/%d seeds executed; generator is degenerate", executed, rounds)
	}
}

// TestVecRowEquivalenceUnderNodeLoss adds node-down recovery: lost base
// partitions reconstruct through the row-based recovery path on both
// engines, and the vectorized scan must lift the recovered rows into
// batches without perturbing metering.
func TestVecRowEquivalenceUnderNodeLoss(t *testing.T) {
	const rounds = 120
	executed := 0
	for seed := int64(0); seed < rounds; seed++ {
		rw, exec := buildVecScenario(t, seed)
		if exec == nil {
			continue
		}
		assertEnginesAgree(t, seed, rw, exec, ExecOptions{
			Trace: true,
			Fault: &fault.Policy{Seed: seed, DownNodes: []int{1}, MaxAttempts: 8},
		})
		executed++
	}
	if executed < rounds/3 {
		t.Fatalf("only %d/%d seeds executed; generator is degenerate", executed, rounds)
	}
}

// TestRowEngineEnvForcesRowPath pins the PREF_ROW_ENGINE contract: the
// option and the environment toggle select the reference engine.
func TestRowEngineEnvForcesRowPath(t *testing.T) {
	// rowEnv is a sync.OnceValue over the environment, so the env path
	// cannot be toggled per-test; assert the option path plus the
	// resolved default.
	_, exec := buildVecScenario(t, 3)
	if exec == nil {
		t.Skip("seed 3 is a generator miss")
	}
	v, err := exec(ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := exec(ExecOptions{RowEngine: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(v.Rows, r.Rows) {
		t.Fatal("RowEngine option changed query results")
	}
}
