package engine

import (
	"pref/internal/plan"
	"pref/internal/trace"
	"pref/internal/value"
)

// evalJoin executes a hash join per partition: build on the right input,
// probe with the left. Inner, left-outer, semi, and anti flavors share the
// probe loop; a residual predicate filters candidate pairs.
func (ex *executor) evalJoin(n *plan.JoinNode) ([][]value.Tuple, error) {
	top := ex.tb.Begin(n, trace.KindJoin)
	left, err := ex.eval(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := ex.eval(n.Right)
	if err != nil {
		return nil, err
	}
	ex.addInputs(top, left)
	ex.addInputs(top, right)
	ls := ex.rw.Schemas[n.Left]
	rs := ex.rw.Schemas[n.Right]
	both := ls.Concat(rs)

	lIdx, err := ls.Indexes(n.LeftCols)
	if err != nil {
		return nil, err
	}
	rIdx, err := rs.Indexes(n.RightCols)
	if err != nil {
		return nil, err
	}

	return forEachPart(ex, top, func(p int) ([]value.Tuple, int, error) {
		var residual func(value.Tuple) bool
		if n.Residual != nil {
			f, err := n.Residual.Bind(both)
			if err != nil {
				return nil, 0, err
			}
			residual = f
		}

		// Build side.
		build := make(map[value.Key][]value.Tuple, len(right[p]))
		if len(n.RightCols) > 0 {
			for _, r := range right[p] {
				k := value.MakeKey(r, rIdx)
				build[k] = append(build[k], r)
			}
		}

		pair := make(value.Tuple, len(ls)+len(rs))
		var rows []value.Tuple
		emit := func(l, r value.Tuple) {
			nr := make(value.Tuple, len(ls)+len(rs))
			copy(nr, l)
			copy(nr[len(ls):], r)
			rows = append(rows, nr)
		}
		matches := func(l value.Tuple) []value.Tuple {
			var cand []value.Tuple
			if len(n.RightCols) > 0 {
				cand = build[value.MakeKey(l, lIdx)]
			} else {
				cand = right[p] // cross/theta join
			}
			if residual == nil {
				return cand
			}
			var ok []value.Tuple
			for _, r := range cand {
				copy(pair, l)
				copy(pair[len(ls):], r)
				if residual(pair) {
					ok = append(ok, r)
				}
			}
			return ok
		}

		for _, l := range left[p] {
			ms := matches(l)
			switch n.Type {
			case plan.Inner:
				for _, r := range ms {
					emit(l, r)
				}
			case plan.LeftOuter:
				if len(ms) == 0 {
					nullRow := make(value.Tuple, len(rs))
					for i := range nullRow {
						nullRow[i] = plan.Null
					}
					emit(l, nullRow)
				} else {
					for _, r := range ms {
						emit(l, r)
					}
				}
			case plan.Semi:
				if len(ms) > 0 {
					rows = append(rows, l)
				}
			case plan.Anti:
				if len(ms) == 0 {
					rows = append(rows, l)
				}
			}
		}
		// Join work: building the hash table, probing it, and emitting
		// output rows. Probes into an over-cache build side pay the miss
		// penalty (see ExecOptions.CacheRows).
		work := len(right[p]) + len(left[p]) + len(rows)
		if ex.opt.CacheRows > 0 && len(right[p]) > ex.opt.CacheRows {
			work += int(float64(len(left[p])) * (ex.opt.MissFactor - 1))
		}
		return rows, work, nil
	})
}
