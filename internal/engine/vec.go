package engine

import (
	"fmt"
	"os"
	"sync"
	"time"

	"pref/internal/batch"
	"pref/internal/plan"
	"pref/internal/trace"
	"pref/internal/value"
)

// Vectorized execution.
//
// evalVec mirrors eval over columnar batches: scans hand out zero-copy
// views of the table's cached per-column projection, and filter, project,
// join and the exchange operators process ~1k-row batches with selection
// vectors instead of materializing []value.Tuple per operator. The mirror
// is exact where it matters for reproducibility:
//
//   - Operator ids: every vectorized operator consumes nextOp() in the
//     same order as its row twin, so injected fault schedules (keyed on
//     operator id, node, attempt) are identical under either engine.
//   - Metering: every AddIn/AddOut/AddWork/AddShip/AddDedup charge and
//     every Stats field carries the same row counts, so traces verify
//     against the same conservation laws and benchmarks stay comparable.
//   - Row order: batches preserve storage order, exchanges append in
//     (source, row) order like the row engine, so order-sensitive float
//     accumulation downstream sees identical input sequences and results
//     are byte-equal.
//
// Operators without a columnar win (aggregation's hash groups, top-k's
// sort, distinct-by-value's shuffle dedup) stay row-based: eval's
// dispatcher materializes the vectorized subtree below them exactly once
// (the row shim), and the row operator proceeds unchanged. A fully
// vectorizable plan materializes only at the Result boundary.
//
// Batch ownership follows the batch package's rule: operators never write
// through a batch they received — filters narrow with fresh selection
// vectors, projections and exchanges write into fresh batches — so scans
// can safely share storage-backed vectors across concurrent queries and
// broadcast can share one batch list across all partitions.

// rowEnv caches the PREF_ROW_ENGINE toggle: set non-empty to force the
// row-at-a-time reference engine process-wide.
var rowEnv = sync.OnceValue(func() bool { return os.Getenv("PREF_ROW_ENGINE") != "" })

// vparts is the vectorized analogue of [][]value.Tuple: per partition, an
// ordered list of batches.
type vparts = [][]*batch.Batch

// vectorizable reports whether the whole subtree under n executes on the
// columnar path. One non-vectorizable operator anywhere forces its subtree
// to materialize at that operator's input instead.
func vectorizable(n plan.Node) bool {
	switch n := n.(type) {
	case *plan.ScanNode:
		return true
	case *plan.FilterNode:
		return vectorizable(n.Child)
	case *plan.ProjectNode:
		return vectorizable(n.Child)
	case *plan.JoinNode:
		return vectorizable(n.Left) && vectorizable(n.Right)
	case *plan.RepartitionNode:
		return vectorizable(n.Child)
	case *plan.BroadcastNode:
		return vectorizable(n.Child)
	case *plan.GatherNode:
		return vectorizable(n.Child)
	case *plan.DistinctPrefNode:
		return vectorizable(n.Child)
	default:
		return false
	}
}

// materializeParts is the row shim: it converts per-partition batch lists
// to the row representation at the vectorized/row frontier (and at the
// Result boundary) — partition p's batches become partition p's rows, so
// no rows move and nothing is metered; the row engine has no equivalent
// step.
func materializeParts(in vparts) [][]value.Tuple {
	out := make([][]value.Tuple, 0, len(in))
	for _, bs := range in {
		out = append(out, batch.AppendRows(nil, bs))
	}
	// The batches are dead past this point — recycle pooled columns into
	// the arena. Release only after every partition is converted: broadcast
	// and one-copy gather share *Batch pointers across partitions, and
	// Release is idempotent per header (each pooled column has exactly one
	// pooled owner), so the sweep is safe on shared lists. View batches
	// over table storage are a no-op.
	for _, bs := range in {
		batch.ReleaseAll(bs)
	}
	return out
}

// releaseParts recycles the pooled batches of a consumed input after the
// operator's partition barrier, or on an error path once every batch list
// derived from the input has been discarded with the error. On success only
// operators whose output is entirely fresh writer batches (join, project,
// repartition) may call it: their
// outputs never alias input columns, the plan is a tree so each node's
// output has exactly one consumer, and forEachPart joins every goroutine
// (including hedge losers) before returning, so no concurrent reader
// remains. Broadcast and one-copy gather share *Batch pointers across
// partitions; Release is idempotent per header, so the sweep is still
// single-shot on shared lists. View batches over storage are a no-op.
func releaseParts(in vparts) {
	for _, bs := range in {
		batch.ReleaseAll(bs)
	}
}

// addInputsVec charges each partition's consumed input rows to the node
// the consuming unit executes on, like addInputs for the row path.
//
// lint:ship-boundary trace metering sweep: charges each partition's input
// rows to the node executing it, on the query goroutine.
func (ex *executor) addInputsVec(top *trace.Op, in vparts) {
	if top == nil {
		return
	}
	for p, bs := range in {
		top.AddIn(ex.execDst[p], batch.Rows(bs))
	}
}

// evalVec dispatches a vectorizable node to its columnar operator.
//
// lint:batch-owner callers own the returned partition batch lists and must
// release or hand them off (materializeParts, releaseParts, or the caller's
// own output).
func (ex *executor) evalVec(n plan.Node) (vparts, error) {
	switch n := n.(type) {
	case *plan.ScanNode:
		return ex.evalScanVec(n)
	case *plan.FilterNode:
		return ex.evalFilterVec(n)
	case *plan.ProjectNode:
		return ex.evalProjectVec(n)
	case *plan.JoinNode:
		return ex.evalJoinVec(n)
	case *plan.RepartitionNode:
		return ex.evalRepartitionVec(n)
	case *plan.BroadcastNode:
		return ex.evalBroadcastVec(n)
	case *plan.GatherNode:
		return ex.evalGatherVec(n)
	case *plan.DistinctPrefNode:
		return ex.evalDistinctPrefVec(n)
	default:
		return nil, fmt.Errorf("engine: node %T is not vectorizable", n)
	}
}

// evalScanVec hands out chunked zero-copy views over the partition's cached
// columnar projection (or lifts recovered rows into fresh batches).
//
// lint:batch-owner the returned batch lists transfer to the caller
func (ex *executor) evalScanVec(n *plan.ScanNode) (vparts, error) {
	top := ex.tb.Begin(n, trace.KindScan)
	pt, ok := ex.pdb.Tables[n.Table]
	if !ok {
		return nil, fmt.Errorf("engine: table %s not in partitioned database", n.Table)
	}
	sch := ex.rw.Schemas[n]
	parts := ex.partsOf(pt, n.Table)
	width := pt.Meta.NumCols()
	withIndexes := len(sch) == width+2
	var keep map[int]bool
	if n.Prune != nil {
		keep = make(map[int]bool, len(n.Prune))
		for _, p := range n.Prune {
			keep[p] = true
		}
	}
	return forEachPart(ex, top, func(p int) ([]*batch.Batch, int, error) {
		if keep != nil && !keep[p] {
			return nil, 0, nil // pruned: the partition cannot contain matches
		}
		if ex.down[p] {
			// Rare path: reconstruct the lost partition's scan output via
			// the row-based recovery machinery (identical metering), then
			// lift the rows into batches.
			rows, err := ex.recoverScan(top, pt, parts, p, withIndexes, len(sch))
			if err != nil {
				return nil, 0, err
			}
			return batch.FromRows(rows, len(sch)), len(rows), nil
		}
		// Zero-copy: chunked views over the partition's cached columnar
		// projection (built once per published epoch, shared by queries).
		proj := parts[p].Columns(width)
		cols := proj.Cols
		if !withIndexes {
			cols = cols[:width]
		}
		return batch.Chunks(cols), proj.NRows, nil
	})
}

// evalFilterVec narrows each input batch with a fresh selection vector; its
// output borrows the input's storage, so the input is never released here —
// it dies with the output downstream.
//
// lint:batch-owner the returned batch lists transfer to the caller
func (ex *executor) evalFilterVec(n *plan.FilterNode) (vparts, error) {
	top := ex.tb.Begin(n, trace.KindFilter)
	in, err := ex.evalVec(n.Child)
	if err != nil {
		return nil, err
	}
	ex.addInputsVec(top, in)
	vp, err := plan.CompilePred(n.Pred, ex.rw.Schemas[n.Child])
	if err != nil {
		releaseParts(in) // compile failed: the consumed input is dead
		return nil, err
	}
	return forEachPart(ex, top, func(p int) ([]*batch.Batch, int, error) {
		var out []*batch.Batch
		kept := 0
		for _, b := range in[p] {
			fb := batch.Filter(b, vp)
			if fb.Len() > 0 {
				out = append(out, fb)
				kept += fb.Len()
			}
		}
		return out, kept, nil
	})
}

// evalProjectVec evaluates each projection expression column-wise into
// fresh batches.
//
// lint:batch-owner the returned batch lists transfer to the caller
func (ex *executor) evalProjectVec(n *plan.ProjectNode) (vparts, error) {
	top := ex.tb.Begin(n, trace.KindProject)
	in, err := ex.evalVec(n.Child)
	if err != nil {
		return nil, err
	}
	ex.addInputsVec(top, in)
	sch := ex.rw.Schemas[n.Child]
	exprs := make([]*plan.VExpr, len(n.Exprs))
	for i, e := range n.Exprs {
		ve, err := plan.CompileExpr(e, sch)
		if err != nil {
			releaseParts(in) // compile failed: the consumed input is dead
			return nil, err
		}
		exprs[i] = ve
	}
	out, err := forEachPart(ex, top, func(p int) ([]*batch.Batch, int, error) {
		out := make([]*batch.Batch, 0, len(in[p]))
		rows := 0
		for _, b := range in[p] {
			pb := batch.Project(b, exprs)
			out = append(out, pb)
			rows += pb.Len()
		}
		return out, rows, nil
	})
	if err != nil {
		releaseParts(in) // fan-out failed: partial outputs were dropped
		return nil, err
	}
	releaseParts(in) // projection output is fresh: input batches are dead
	return out, nil
}

// evalJoinVec hash-joins the build (right) side against the probe (left)
// side per partition, emitting fresh writer batches.
//
// lint:batch-owner the returned batch lists transfer to the caller
func (ex *executor) evalJoinVec(n *plan.JoinNode) (vparts, error) {
	top := ex.tb.Begin(n, trace.KindJoin)
	left, err := ex.evalVec(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := ex.evalVec(n.Right)
	if err != nil {
		releaseParts(left) // right subtree failed: left input is dead
		return nil, err
	}
	ex.addInputsVec(top, left)
	ex.addInputsVec(top, right)
	ls := ex.rw.Schemas[n.Left]
	rs := ex.rw.Schemas[n.Right]

	lIdx, err := ls.Indexes(n.LeftCols)
	if err != nil {
		releaseParts(left)
		releaseParts(right)
		return nil, err
	}
	rIdx, err := rs.Indexes(n.RightCols)
	if err != nil {
		releaseParts(left)
		releaseParts(right)
		return nil, err
	}
	var residual *plan.VPred
	if n.Residual != nil {
		residual, err = plan.CompilePred(n.Residual, ls.Concat(rs))
		if err != nil {
			releaseParts(left)
			releaseParts(right)
			return nil, err
		}
	}

	// Single-column equi-joins (the PREF-chain shape: custkey, orderkey)
	// build an int64-keyed chain table — no per-row key strings at all.
	singleKey := len(rIdx) == 1 && len(lIdx) == 1

	out, err := forEachPart(ex, top, func(p int) ([]*batch.Batch, int, error) {
		nl, nr := batch.Rows(left[p]), batch.Rows(right[p])
		// Compact the build side once so candidate lists are single int32
		// row ids instead of (batch, row) pairs.
		rflat := batch.Flatten(right[p], len(rs))

		// Build side. The chain table links equal-key right rows in row
		// order (forward walks visit rows ascending — the candidate order
		// the row engine's append-built lists give).
		var tab *batch.Int64Table
		var build map[value.Key][]int32
		var kb *batch.KeyBuf
		if len(n.RightCols) > 0 {
			if singleKey {
				tab = batch.BuildInt64Table(rflat.Cols[rIdx[0]])
			} else {
				kb = batch.NewKeyBuf(len(rIdx))
				build = make(map[value.Key][]int32, nr)
				for i := 0; i < nr; i++ {
					kb.Encode(rflat, i, rIdx)
					if ids, ok := kb.Probe(build); ok {
						build[kb.Key()] = append(ids, int32(i))
					} else {
						build[kb.Key()] = []int32{int32(i)}
					}
				}
			}
		}
		var all []int32
		if len(n.RightCols) == 0 {
			all = make([]int32, nr)
			for i := range all {
				all[i] = int32(i)
			}
		}

		outWidth := len(ls) + len(rs)
		if n.Type == plan.Semi || n.Type == plan.Anti {
			outWidth = len(ls)
		}
		w := batch.NewWriter(outWidth)
		pair := make([]int64, len(ls)+len(rs))
		var scratch []int64
		if residual != nil {
			if sn := residual.MaxFuncArgs(); sn > 0 {
				scratch = make([]int64, sn)
			}
		}
		// Per-batch pair buffers: physical left/right row ids of every
		// emitted row, gathered column-wise in one pass at batch end.
		var liBuf, riBuf, cand []int32
		for _, lb := range left[p] {
			bn := lb.Len()
			liBuf, riBuf = liBuf[:0], riBuf[:0]
			var lkey []int64
			if singleKey {
				lkey = lb.Cols[lIdx[0]]
			}
			if singleKey && residual == nil && n.Type == plan.Inner {
				// Fused probe+emit for the dominant shape: walk the chain
				// straight into the pair buffers, no candidate staging.
				if lb.Sel == nil {
					for i := 0; i < bn; i++ {
						for ri, ok := tab.Head(lkey[i]); ok; ri, ok = tab.Next(ri) {
							liBuf = append(liBuf, int32(i))
							riBuf = append(riBuf, ri)
						}
					}
				} else {
					for _, lphys := range lb.Sel {
						for ri, ok := tab.Head(lkey[lphys]); ok; ri, ok = tab.Next(ri) {
							liBuf = append(liBuf, lphys)
							riBuf = append(riBuf, ri)
						}
					}
				}
				w.AppendPairs(lb, liBuf, rflat, riBuf, plan.Null)
				continue
			}
			for i := 0; i < bn; i++ {
				lphys := i
				if lb.Sel != nil {
					lphys = int(lb.Sel[i])
				}
				// cand collects the probe's residual-surviving matches.
				cand = cand[:0]
				if singleKey {
					ri, ok := tab.Head(lkey[lphys])
					for ; ok; ri, ok = tab.Next(ri) {
						cand = append(cand, ri)
					}
				} else if len(n.RightCols) > 0 {
					kb.Encode(lb, i, lIdx)
					ids, _ := kb.Probe(build)
					cand = append(cand, ids...)
				} else {
					cand = append(cand, all...) // cross/theta join
				}
				if residual != nil && len(cand) > 0 {
					lb.Row(i, pair[:len(ls)])
					kept := cand[:0]
					for _, ri := range cand {
						for c := range rs {
							pair[len(ls)+c] = rflat.Cols[c][ri]
						}
						if residual.EvalRow(pair, scratch) {
							kept = append(kept, ri)
						}
					}
					cand = kept
				}
				switch n.Type {
				case plan.Inner:
					for _, ri := range cand {
						liBuf = append(liBuf, int32(lphys))
						riBuf = append(riBuf, ri)
					}
				case plan.LeftOuter:
					if len(cand) == 0 {
						liBuf = append(liBuf, int32(lphys))
						riBuf = append(riBuf, -1)
					} else {
						for _, ri := range cand {
							liBuf = append(liBuf, int32(lphys))
							riBuf = append(riBuf, ri)
						}
					}
				case plan.Semi:
					if len(cand) > 0 {
						liBuf = append(liBuf, int32(lphys))
					}
				case plan.Anti:
					if len(cand) == 0 {
						liBuf = append(liBuf, int32(lphys))
					}
				}
			}
			if n.Type == plan.Semi || n.Type == plan.Anti {
				w.AppendGather(lb, liBuf)
			} else {
				w.AppendPairs(lb, liBuf, rflat, riBuf, plan.Null)
			}
		}
		out := w.Finish()
		// Join work: building the hash table, probing it, and emitting
		// output rows — the row engine's formula over the same counts.
		work := nr + nl + batch.Rows(out)
		if ex.opt.CacheRows > 0 && nr > ex.opt.CacheRows {
			work += int(float64(nl) * (ex.opt.MissFactor - 1))
		}
		return out, work, nil
	})
	if err != nil {
		releaseParts(left) // fan-out failed: partial outputs were dropped
		releaseParts(right)
		return nil, err
	}
	releaseParts(left) // join emit is fresh: both inputs are dead
	releaseParts(right)
	return out, nil
}

// dedupVec applies the disjunctive dup=0 filter (see dedupRows) over a
// batch list, returning the surviving batches and row count. Null dup
// flags (outer-join null extension) are kept, exactly like the row path.
func dedupVec(bs []*batch.Batch, dupIdx []int) ([]*batch.Batch, int) {
	if len(dupIdx) == 0 {
		return bs, batch.Rows(bs)
	}
	out := make([]*batch.Batch, 0, len(bs))
	kept := 0
	for _, b := range bs {
		bn := b.Len()
		sel := make([]int32, 0, bn)
		for i := 0; i < bn; i++ {
			phys := i
			if b.Sel != nil {
				phys = int(b.Sel[i])
			}
			for _, j := range dupIdx {
				if v := b.Cols[j][phys]; v == 0 || v == plan.Null {
					sel = append(sel, int32(phys))
					break
				}
			}
		}
		if len(sel) > 0 {
			out = append(out, b.WithSel(sel))
			kept += len(sel)
		}
	}
	return out, kept
}

// evalDistinctPrefVec drops PREF-duplicate rows partition-locally on the
// columnar path.
//
// lint:ship-boundary exchange operator: sweeps per-partition outputs on the
// query goroutine to charge dedup hits; no rows move, nothing is metered.
//
// lint:batch-owner the returned batch lists transfer to the caller
func (ex *executor) evalDistinctPrefVec(n *plan.DistinctPrefNode) (vparts, error) {
	top := ex.tb.Begin(n, trace.KindDistinctPref)
	in, err := ex.evalVec(n.Child)
	if err != nil {
		return nil, err
	}
	ex.addInputsVec(top, in)
	sch := ex.rw.Schemas[n.Child]
	var dupIdx []int
	if len(n.DupCols) > 0 {
		dupIdx, err = sch.Indexes(n.DupCols)
		if err != nil {
			releaseParts(in)
			return nil, err
		}
	}
	out, err := forEachPart(ex, top, func(p int) ([]*batch.Batch, int, error) {
		bs, kept := dedupVec(in[p], dupIdx)
		return bs, kept, nil
	})
	if err != nil {
		releaseParts(in) // fan-out failed: the survivor views were dropped
		return nil, err
	}
	// Dedup hits are derived after the fan-out so crash-retried attempts
	// cannot double-count them.
	for p := range out {
		top.AddDedup(ex.execDst[p], batch.Rows(in[p])-batch.Rows(out[p]))
	}
	return out, nil
}

// evalRepartitionVec hash-partitions batch rows onto their owner
// partitions, mirroring evalRepartition charge for charge.
//
// lint:ship-boundary exchange operator: scatters rows across partitions and
// meters every boundary crossing via shipBatch.
//
// lint:batch-owner the returned batch lists transfer to the caller
func (ex *executor) evalRepartitionVec(n *plan.RepartitionNode) (vparts, error) {
	top := ex.tb.Begin(n, trace.KindRepartition)
	in, err := ex.evalVec(n.Child)
	if err != nil {
		return nil, err
	}
	sch := ex.rw.Schemas[n.Child]
	idx, err := sch.Indexes(n.Cols)
	if err != nil {
		releaseParts(in)
		return nil, err
	}
	var dupIdx []int
	if len(n.DupCols) > 0 {
		dupIdx, err = sch.Indexes(n.DupCols)
		if err != nil {
			releaseParts(in)
			return nil, err
		}
	}
	ex.stats.Repartitions++
	op := ex.nextOp()
	start := time.Now()
	writers := make([]*batch.Writer, ex.n)
	for dst := range writers {
		writers[dst] = batch.NewWriter(len(sch))
	}
	for src := 0; src < ex.n; src++ {
		if n.OneCopy && src != 0 {
			continue
		}
		top.AddIn(ex.execDst[src], batch.Rows(in[src]))
		bs, kept := dedupVec(in[src], dupIdx)
		top.AddDedup(ex.execDst[src], batch.Rows(in[src])-kept)
		cross := 0
		for _, b := range bs {
			bn := b.Len()
			for i := 0; i < bn; i++ {
				dst := int(batch.HashRow(b, i, idx) % uint64(ex.n))
				if dst != src {
					cross++
				}
				writers[dst].AppendFrom(b, i)
			}
		}
		if err := ex.shipBatch(top, op, src, cross, len(sch)); err != nil {
			// Ship fault mid-scatter: drain the partially filled writers
			// back into the pool along with the consumed input.
			for _, w := range writers {
				batch.ReleaseAll(w.Finish())
			}
			releaseParts(in)
			return nil, err
		}
	}
	if n.OneCopy {
		top.SetReadOne()
	}
	out := make(vparts, ex.n)
	for dst := 0; dst < ex.n; dst++ {
		out[dst] = writers[dst].Finish()
		rows := batch.Rows(out[dst])
		ex.work(ex.execDst[dst], rows)
		top.AddWork(ex.execDst[dst], rows)
		top.AddOut(ex.execDst[dst], rows)
	}
	top.AddWall(ex.execDst[0], time.Since(start))
	releaseParts(in) // scatter output is fresh: input batches are dead
	return out, nil
}

// evalBroadcastVec replicates the full input to every partition. The
// batch lists are shared across partitions zero-copy — batches are
// immutable once handed off, so sharing is safe where the row engine had
// to guard its shared slice.
//
// lint:ship-boundary exchange operator: copies rows to all partitions and
// meters the n-1 remote copies via shipBatch.
//
// lint:batch-owner the returned batch lists transfer to the caller
func (ex *executor) evalBroadcastVec(n *plan.BroadcastNode) (vparts, error) {
	top := ex.tb.Begin(n, trace.KindBroadcast)
	in, err := ex.evalVec(n.Child)
	if err != nil {
		return nil, err
	}
	sch := ex.rw.Schemas[n.Child]
	var dupIdx []int
	if len(n.DupCols) > 0 {
		dupIdx, err = sch.Indexes(n.DupCols)
		if err != nil {
			releaseParts(in)
			return nil, err
		}
	}
	ex.stats.Broadcasts++
	op := ex.nextOp()
	start := time.Now()
	var all []*batch.Batch
	for src := 0; src < ex.n; src++ {
		if n.OneCopy && src != 0 {
			continue
		}
		top.AddIn(ex.execDst[src], batch.Rows(in[src]))
		bs, kept := dedupVec(in[src], dupIdx)
		top.AddDedup(ex.execDst[src], batch.Rows(in[src])-kept)
		// Each row is shipped to every other node.
		if err := ex.shipBatch(top, op, src, kept*(ex.n-1), len(sch)); err != nil {
			// The shared output list is discarded with the error, so the
			// sweep over the input cannot strand a surviving view.
			releaseParts(in)
			return nil, err
		}
		all = append(all, bs...)
	}
	if n.OneCopy {
		top.SetReadOne()
	}
	total := batch.Rows(all)
	// Same hazard as the row engine's shared broadcast slice: clamp the
	// shared batch list so a downstream append through one partition's
	// slot cannot overwrite its siblings'.
	all = all[:len(all):len(all)]
	out := make(vparts, ex.n)
	for p := 0; p < ex.n; p++ {
		out[p] = all
		ex.work(ex.execDst[p], total)
		top.AddWork(ex.execDst[p], total)
		top.AddOut(ex.execDst[p], total)
	}
	top.AddWall(ex.execDst[0], time.Since(start))
	return out, nil
}

// evalGatherVec concentrates all partitions' batches on the coordinator.
//
// lint:ship-boundary exchange operator: drains every partition to slot 0 and
// meters the remote partitions' rows via shipBatch.
//
// lint:batch-owner the returned batch lists transfer to the caller
func (ex *executor) evalGatherVec(n *plan.GatherNode) (vparts, error) {
	top := ex.tb.Begin(n, trace.KindGather)
	in, err := ex.evalVec(n.Child)
	if err != nil {
		return nil, err
	}
	sch := ex.rw.Schemas[n.Child]
	start := time.Now()
	out := make(vparts, ex.n)
	if n.OneCopy {
		top.SetReadOne()
		rows := batch.Rows(in[0])
		top.AddIn(ex.execDst[0], rows)
		out[0] = in[0][:len(in[0]):len(in[0])]
		ex.work(ex.execDst[0], rows)
		top.AddWork(ex.execDst[0], rows)
		top.AddOut(ex.execDst[0], rows)
		top.AddWall(ex.execDst[0], time.Since(start))
		return out, nil
	}
	op := ex.nextOp()
	var bs []*batch.Batch
	total, nbatch, sparse := 0, 0, false
	for p := 0; p < ex.n; p++ {
		rows := batch.Rows(in[p])
		top.AddIn(ex.execDst[p], rows)
		if p != 0 {
			if err := ex.shipBatch(top, op, p, rows, len(sch)); err != nil {
				releaseParts(in) // ship fault: nothing downstream holds a view yet
				return nil, err
			}
		}
		for _, b := range in[p] {
			if b.Sel != nil {
				sparse = true
			}
		}
		nbatch += len(in[p])
		total += rows
	}
	// Shipped rows arrive materialized: compact when the inputs are
	// selection-vector views or badly fragmented, so downstream work (and
	// the row shim at the Result boundary) sees a few dense batches
	// instead of hundreds of mostly-empty windows. Dense well-packed
	// inputs concatenate zero-copy.
	if sparse || nbatch > 2*(total/batch.Size+1) {
		w := batch.NewWriter(len(sch))
		for p := 0; p < ex.n; p++ {
			for _, b := range in[p] {
				w.AppendBatch(b)
			}
		}
		out[0] = w.Finish()
		releaseParts(in) // compaction is fresh: input batches are dead
	} else {
		for p := 0; p < ex.n; p++ {
			bs = append(bs, in[p]...)
		}
		out[0] = bs
	}
	ex.work(ex.execDst[0], total)
	top.AddWork(ex.execDst[0], total)
	top.AddOut(ex.execDst[0], total)
	top.AddWall(ex.execDst[0], time.Since(start))
	return out, nil
}
