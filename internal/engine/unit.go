package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pref/internal/batch"
	"pref/internal/cluster"
	"pref/internal/fault"
	"pref/internal/trace"
	"pref/internal/value"
)

// Generic per-partition work machinery.
//
// The row engine and the vectorized engine share every resilience and
// metering mechanism — fan-out, retry/backoff, failover, hedging, trace
// cells — differing only in the payload a unit produces: []value.Tuple or
// []*batch.Batch. The functions here are generic over that payload so both
// paths run the byte-identical fault model: fault draws are keyed by
// (operator id, executing node, attempt), and the operator id sequence is a
// pure function of the plan, so a query executes the same fault schedule
// under either representation. Go methods cannot take type parameters,
// hence free functions taking the executor explicitly.

// payload is a unit's output representation: row tuples or columnar batches.
type payload interface {
	~[]value.Tuple | ~[]*batch.Batch
}

// rowsOf counts the logical rows of a payload — the number every meter
// charges, independent of representation.
func rowsOf[T payload](v T) int {
	switch x := any(v).(type) {
	case []value.Tuple:
		return len(x)
	case []*batch.Batch:
		return batch.Rows(x)
	}
	return 0
}

// unitFn computes one partition's slice of an operator: its output payload
// plus the operator work (a row count) to charge to the executing node.
type unitFn[T payload] func(p int) (out T, work int, err error)

// partUnit is the row engine's unit shape.
type partUnit = unitFn[[]value.Tuple]

// forEachPart runs one unit of work per partition concurrently under the
// fault model and returns the per-partition outputs. The first node error
// cancels the query context so no further work launches — here for the
// remaining partitions, and in every downstream operator. Successful
// units record their output, work, and wall time into top's per-node
// cells (nil top: tracing off).
func forEachPart[T payload](ex *executor, top *trace.Op, fn unitFn[T]) ([]T, error) {
	op := ex.nextOp()
	out := make([]T, ex.n)
	errs := make([]error, ex.n)
	var wg sync.WaitGroup
	for p := 0; p < ex.n; p++ {
		if err := ex.ctx.Err(); err != nil {
			errs[p] = err // short-circuit: stop launching work
			break
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rows, err := runPart(ex, ex.ctx, top, op, p, fn)
			if err != nil {
				errs[p] = err
				ex.cancel()
				return
			}
			out[p] = rows
		}(p)
	}
	wg.Wait()
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// runPart executes one partition's unit, hedging a speculative duplicate
// onto a surviving peer when the cluster's hedge policy is on and a
// candidate node exists.
func runPart[T payload](ex *executor, ctx context.Context, top *trace.Op, op, p int, fn unitFn[T]) (T, error) {
	en := ex.execDst[p]
	if !ex.hedgeOK {
		return runAttempt(ex, ctx, top, op, p, en, false, nil, fn)
	}
	hn := ex.hedgeFor(en)
	if hn < 0 {
		return runAttempt(ex, ctx, top, op, p, en, false, nil, fn)
	}
	return runHedged(ex, ctx, top, op, p, en, hn, fn)
}

// runHedged races partition p's unit on its primary node en against a
// speculative duplicate on hn, launched only if the primary is still
// running after the cluster-priced hedge delay. First success wins and
// cancels the sibling; the fan-out always joins before returning
// (structured concurrency — losers unwind promptly because straggler
// sleeps and backoffs are context-aware).
func runHedged[T payload](ex *executor, ctx context.Context, top *trace.Op, op, p, en, hn int, fn unitFn[T]) (T, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type unitResult struct {
		rows T
		err  error
	}
	// Capacity 2: both racers can deliver without a reader, so the loser
	// never blocks on send after the winner returned.
	resc := make(chan unitResult, 2)
	var won int32
	var wg sync.WaitGroup
	launch := func(node int, hedge bool) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows, err := runAttempt(ex, hctx, top, op, p, node, hedge, &won, fn)
			resc <- unitResult{rows, err}
		}()
	}
	launch(en, false)
	timer := time.NewTimer(ex.hedgeDelay)
	defer timer.Stop()
	outstanding, hedged := 1, false
	var errs []error
	var rows T
	var rerr error
race:
	for {
		select {
		case <-timer.C:
			if !hedged && atomic.LoadInt32(&won) == 0 && hctx.Err() == nil {
				hedged = true
				ex.mu.Lock()
				ex.stats.Hedges++
				ex.mu.Unlock()
				top.AddHedge(hn)
				launch(hn, true)
				outstanding++
			}
		case r := <-resc:
			outstanding--
			if r.err == nil {
				cancel() // first result wins: unwind the sibling
				rows = r.rows
				break race
			}
			errs = append(errs, r.err)
			if outstanding == 0 {
				rerr = firstErr(errs)
				break race
			}
		}
	}
	wg.Wait()
	return rows, rerr
}

// runAttempt runs one unit attempt-chain of partition p on node en and
// meters its outcome. won is the hedge-race flag (nil outside a race):
// exactly one racer claims it and meters output; a racer that succeeds
// after the claim is the loser — its rows are discarded but the CPU they
// cost is charged to the node and metered as wasted hedge work.
func runAttempt[T payload](ex *executor, ctx context.Context, top *trace.Op, op, p, en int, hedge bool, won *int32, fn unitFn[T]) (T, error) {
	var zero T
	start := time.Now()
	rows, work, err := runUnit(ex, ctx, top, op, p, en, fn)
	elapsed := time.Since(start)
	top.AddWall(en, elapsed)
	if err != nil {
		return zero, err
	}
	if won != nil && !atomic.CompareAndSwapInt32(won, 0, 1) {
		ex.mu.Lock()
		ex.stats.HedgeWastedRows += int64(work)
		ex.work(en, work)
		ex.mu.Unlock()
		top.AddHedgeWaste(en, work)
		top.AddWork(en, work)
		return zero, errHedgeLost
	}
	ex.cl.ObserveUnit(elapsed)
	top.AddOut(en, rowsOf(rows))
	top.AddWork(en, work)
	ex.mu.Lock()
	switch {
	case hedge:
		ex.stats.HedgeWins++
	case en != p:
		ex.stats.Failovers++
	}
	ex.work(en, work)
	ex.mu.Unlock()
	if hedge {
		top.AddHedgeWin(en)
	} else if en != p {
		top.AddFailover(en)
	}
	return rows, nil
}

// runUnit executes one work unit of partition p on node en under the
// fault model: straggler delay, crash injection with jittered capped
// exponential backoff, panic recovery, and cancellation checks between
// attempts. Fault draws are keyed by the executing node, so work failed
// over (or hedged) to another node inherits that node's fault behaviour.
// Every attempt outcome is reported to the cluster health layer, and a
// breaker that trips mid-query fails the unit fast instead of burning
// the remaining retry budget against a node already judged down.
func runUnit[T payload](ex *executor, ctx context.Context, top *trace.Op, op, p, en int, fn unitFn[T]) (T, int, error) {
	var zero T
	max := ex.inj.MaxAttempts()
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return zero, 0, err
		}
		if d := ex.stragglerDelay(op, en); d > 0 {
			if err := sleepCtx(ctx, d); err != nil {
				return zero, 0, err
			}
		}
		rows, work, err := callUnit(fn, p)
		if err != nil {
			return zero, 0, err // genuine operator error: retrying cannot help
		}
		if !ex.crashAttempt(op, en, attempt) {
			ex.cl.ReportSuccess(en)
			return rows, work, nil
		}
		ex.cl.ReportFailure(en)
		// The attempt crashed after doing its work: the output is
		// discarded, but the CPU it burned still occupied the node.
		ex.mu.Lock()
		ex.stats.Retries++
		ex.stats.WastedRows += int64(work)
		ex.work(en, work)
		ex.mu.Unlock()
		top.AddRetry(en, work)
		top.AddWork(en, work)
		if attempt+1 >= max {
			return zero, 0, fmt.Errorf("engine: partition %d on node %d: %d crashed attempts: %w",
				p, en, max, fault.ErrNodeFailed)
		}
		if !ex.cl.Allow(en) {
			return zero, 0, fmt.Errorf("engine: partition %d on node %d: %w", p, en, cluster.ErrNodeTripped)
		}
		if err := sleepCtx(ctx, ex.inj.Backoff(op, en, attempt)); err != nil {
			return zero, 0, err
		}
	}
}

// callUnit invokes fn, converting a goroutine panic into an error so one
// bad partition fails the query instead of crashing the process.
func callUnit[T payload](fn unitFn[T], p int) (rows T, work int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: partition %d: recovered panic: %v", p, r)
		}
	}()
	return fn(p)
}
