package engine

import (
	"sort"

	"pref/internal/plan"
	"pref/internal/trace"
	"pref/internal/value"
)

// evalTopK orders each partition's rows by the order terms (kind-aware:
// floats decode before comparing) with the full row as tie-breaker, then
// truncates to the limit. The partial pass runs on every partition; the
// final pass sees rows only at the coordinator after the gather.
func (ex *executor) evalTopK(n *plan.TopKNode) ([][]value.Tuple, error) {
	top := ex.tb.Begin(n, trace.KindTopK)
	in, err := ex.eval(n.Child)
	if err != nil {
		return nil, err
	}
	ex.addInputs(top, in)
	sch := ex.rw.Schemas[n.Child]

	type term struct {
		idx     int
		desc    bool
		isFloat bool
	}
	terms := make([]term, len(n.Order))
	for i, o := range n.Order {
		idx, err := sch.IndexOf(o.Col)
		if err != nil {
			return nil, err
		}
		terms[i] = term{idx: idx, desc: o.Desc, isFloat: sch[idx].Kind == value.Float}
	}
	less := func(a, b value.Tuple) bool {
		for _, t := range terms {
			av, bv := a[t.idx], b[t.idx]
			var cmp int
			if t.isFloat {
				af, bf := value.ToFloat(av), value.ToFloat(bv)
				switch {
				case af < bf:
					cmp = -1
				case af > bf:
					cmp = 1
				}
			} else {
				switch {
				case av < bv:
					cmp = -1
				case av > bv:
					cmp = 1
				}
			}
			if t.desc {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		// Deterministic total order: full-row tie-break.
		for i := range a {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return false
	}

	return forEachPart(ex, top, func(p int) ([]value.Tuple, int, error) {
		rows := append([]value.Tuple(nil), in[p]...)
		sort.Slice(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
		if n.Limit > 0 && len(rows) > n.Limit {
			rows = rows[:n.Limit]
		}
		return rows, len(rows), nil
	})
}
