package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"pref/internal/cluster"
	"pref/internal/fault"
	"pref/internal/plan"
)

// TestTypedDeadlineError pins the serving layer's error taxonomy at its
// root: any deadline expiry — the caller's context or the fault policy's
// per-query timeout — surfaces as ErrDeadlineExceeded, with
// context.DeadlineExceeded still matchable underneath, and stays distinct
// from the admission queue's own timeout sentinel.
func TestTypedDeadlineError(t *testing.T) {
	db := testDB(t)
	cfg := testConfigs(4)["classical"]
	mk := func() plan.Node {
		return plan.Aggregate(plan.Scan("customer", "c"), nil, plan.Count("cnt"))
	}
	pq := prepareQuery(t, mk, db, cfg)
	rw, err := plan.Rewrite(pq.mk(), pq.db.Schema, pq.cfg, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Client context deadline: straggle every unit past a tight deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	pol := &fault.Policy{Seed: 1, StragglerProb: 1, StragglerDelay: 300 * time.Millisecond}
	_, err = ExecuteCtx(ctx, rw, pq.pdb, ExecOptions{Fault: pol})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("client-deadline err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v does not unwrap to context.DeadlineExceeded", err)
	}

	// Fault-policy per-query timeout: same typed error, no client ctx.
	pol = &fault.Policy{Seed: 2, StragglerProb: 1, StragglerDelay: 300 * time.Millisecond,
		Timeout: 10 * time.Millisecond}
	_, err = ExecuteCtx(context.Background(), rw, pq.pdb, ExecOptions{Fault: pol})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("policy-timeout err = %v, want ErrDeadlineExceeded", err)
	}

	// Distinctness: a deadline kill is not an admission timeout and vice
	// versa — the serving layer prices the two differently.
	if errors.Is(err, cluster.ErrAdmissionTimeout) {
		t.Fatal("deadline error matches ErrAdmissionTimeout")
	}
	if errors.Is(cluster.ErrAdmissionTimeout, ErrDeadlineExceeded) {
		t.Fatal("ErrAdmissionTimeout matches ErrDeadlineExceeded")
	}

	// An expired context must not report a typed deadline when the cause
	// was plain cancellation.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	_, err = ExecuteCtx(cctx, rw, pq.pdb, ExecOptions{Fault: pol})
	if err == nil || errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("cancelled-context err = %v, want untyped cancellation", err)
	}
}
