package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/table"
	"pref/internal/value"
)

// TestRandomizedCrossConfigEquivalence is the engine's core soundness
// property: for randomized databases (including orphan fks and skew) and a
// battery of query shapes, every partitioning configuration — including
// deep PREF chains — must produce exactly the single-node reference
// result.
func TestRandomizedCrossConfigEquivalence(t *testing.T) {
	shapes := []struct {
		name string
		mk   func() plan.Node
	}{
		{"join-lo", func() plan.Node {
			j := plan.Join(plan.Scan("lineitem", "l"), plan.Scan("orders", "o"),
				plan.Inner, []string{"l.orderkey"}, []string{"o.orderkey"})
			return plan.Aggregate(j, nil, plan.Count("n"), plan.Sum(plan.Col("l.qty"), "q"))
		}},
		{"join-3way-group", func() plan.Node {
			lo := plan.Join(plan.Scan("lineitem", "l"), plan.Scan("orders", "o"),
				plan.Inner, []string{"l.orderkey"}, []string{"o.orderkey"})
			loc := plan.Join(lo, plan.Scan("customer", "c"),
				plan.Inner, []string{"o.custkey"}, []string{"c.custkey"})
			return plan.Aggregate(loc, []string{"c.nationkey"},
				plan.Count("n"), plan.Max(plan.Col("l.qty"), "mx"))
		}},
		{"semi", func() plan.Node {
			j := plan.Join(plan.Scan("customer", "c"), plan.Scan("orders", "o"),
				plan.Semi, []string{"c.custkey"}, []string{"o.custkey"})
			return plan.Aggregate(j, nil, plan.Count("n"))
		}},
		{"anti", func() plan.Node {
			j := plan.Join(plan.Scan("customer", "c"), plan.Scan("orders", "o"),
				plan.Anti, []string{"c.custkey"}, []string{"o.custkey"})
			return plan.Aggregate(j, nil, plan.Count("n"))
		}},
		{"left-outer", func() plan.Node {
			j := plan.Join(plan.Scan("customer", "c"), plan.Scan("orders", "o"),
				plan.LeftOuter, []string{"c.custkey"}, []string{"o.custkey"})
			return plan.Aggregate(j, []string{"c.custkey"},
				plan.CountCol(plan.Col("o.orderkey"), "cnt"))
		}},
		{"filtered-join", func() plan.Node {
			f := plan.Filter(plan.Scan("orders", "o"), plan.Gt(plan.Col("o.total"), plan.Lit(500)))
			j := plan.Join(f, plan.Scan("customer", "c"),
				plan.Inner, []string{"o.custkey"}, []string{"c.custkey"})
			return plan.Aggregate(j, []string{"c.nationkey"}, plan.Sum(plan.Col("o.total"), "s"))
		}},
	}

	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		db := randomDB(t, rng)
		cfgs := randomConfigs(rng)
		for _, shape := range shapes {
			var ref []value.Tuple
			for i, cfg := range cfgs {
				res := runOn(t, shape.mk, db, cfg, plan.Options{})
				if i == 0 {
					ref = res.Rows
					continue
				}
				if !reflect.DeepEqual(res.Rows, ref) {
					t.Fatalf("trial %d shape %s config %d diverges:\nconfig: %v\ngot  %v\nwant %v",
						trial, shape.name, i, cfg, trunc(res.Rows), trunc(ref))
				}
			}
		}
	}
}

func randomDB(t *testing.T, rng *rand.Rand) *table.Database {
	t.Helper()
	db := table.NewDatabase(testSchema())
	nNation := 1 + rng.Intn(6)
	nCust := 5 + rng.Intn(30)
	nOrd := 10 + rng.Intn(80)
	nLine := 20 + rng.Intn(200)
	for i := int64(0); i < int64(nNation); i++ {
		db.Tables["nation"].MustAppend(value.Tuple{i})
	}
	dict := db.Schema.Table("customer").Dict("name")
	for i := int64(0); i < int64(nCust); i++ {
		db.Tables["customer"].MustAppend(value.Tuple{
			i, int64(rng.Intn(nNation)), dict.Code(fmt.Sprintf("c%d", i))})
	}
	for i := int64(0); i < int64(nOrd); i++ {
		// ~10% orphan orders referencing a customer that does not exist.
		ck := int64(rng.Intn(nCust))
		if rng.Intn(10) == 0 {
			ck = int64(nCust + rng.Intn(5))
		}
		db.Tables["orders"].MustAppend(value.Tuple{i, ck, int64(rng.Intn(2000))})
	}
	for i := int64(0); i < int64(nLine); i++ {
		ok := int64(rng.Intn(nOrd))
		if rng.Intn(12) == 0 {
			ok = int64(nOrd + rng.Intn(5))
		}
		db.Tables["lineitem"].MustAppend(value.Tuple{i, ok, int64(rng.Intn(50))})
	}
	return db
}

func randomConfigs(rng *rand.Rand) []*partition.Config {
	ref := partition.NewConfig(1)
	ref.SetHash("customer", "custkey").SetHash("orders", "orderkey").
		SetHash("lineitem", "linekey").SetHash("nation", "nationkey")

	var cfgs []*partition.Config
	cfgs = append(cfgs, ref)

	n := 2 + rng.Intn(5)

	down := partition.NewConfig(n)
	seedCols := []string{"orderkey", "linekey"}[rng.Intn(2)]
	down.SetHash("lineitem", seedCols)
	down.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	down.SetPref("customer", "orders", []string{"custkey"}, []string{"custkey"})
	down.SetPref("nation", "customer", []string{"nationkey"}, []string{"nationkey"})
	cfgs = append(cfgs, down)

	up := partition.NewConfig(n)
	up.SetHash("nation", "nationkey")
	up.SetPref("customer", "nation", []string{"nationkey"}, []string{"nationkey"})
	up.SetPref("orders", "customer", []string{"custkey"}, []string{"custkey"})
	up.SetPref("lineitem", "orders", []string{"orderkey"}, []string{"orderkey"})
	cfgs = append(cfgs, up)

	mixed := partition.NewConfig(n)
	mixed.SetHash("orders", "custkey")
	mixed.SetPref("customer", "orders", []string{"custkey"}, []string{"custkey"})
	mixed.SetPref("lineitem", "orders", []string{"orderkey"}, []string{"orderkey"})
	mixed.SetReplicated("nation")
	cfgs = append(cfgs, mixed)

	rr := partition.NewConfig(n)
	rr.Set(&partition.TableScheme{Table: "lineitem", Method: partition.RoundRobin})
	rr.SetHash("orders", "orderkey")
	rr.SetPref("customer", "orders", []string{"custkey"}, []string{"custkey"})
	rr.SetReplicated("nation")
	cfgs = append(cfgs, rr)

	return cfgs
}
