package engine

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"pref/internal/catalog"
	"pref/internal/cluster"
	"pref/internal/fault"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/table"
	"pref/internal/testutil"
	"pref/internal/trace"
	"pref/internal/value"
)

// prepared is a partitioned database plus a plan builder, so a sequence of
// queries against one shared cluster runs on the same data the cluster's
// rebuild worker sees.
type prepared struct {
	db  *table.Database
	cfg *partition.Config
	pdb *table.PartitionedDatabase
	mk  func() plan.Node
}

func prepareQuery(t testing.TB, mk func() plan.Node, db *table.Database, cfg *partition.Config) prepared {
	t.Helper()
	pdb, err := partition.Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return prepared{db: db, cfg: cfg, pdb: pdb, mk: mk}
}

// run rewrites a fresh plan and executes it against the shared pdb.
func (pq prepared) run(t testing.TB, eopt ExecOptions) (*Result, error) {
	t.Helper()
	rw, err := plan.Rewrite(pq.mk(), pq.db.Schema, pq.cfg, plan.Options{})
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	res, err := ExecuteCtx(context.Background(), rw, pq.pdb, eopt)
	if err != nil {
		return nil, err
	}
	res.SortRows()
	return res, nil
}

// replicatedDB builds a database whose every table is fully replicated, so
// any single node's partitions are rebuildable from survivors.
func replicatedDB(t *testing.T) (*table.Database, *partition.Config) {
	t.Helper()
	s := catalog.NewSchema("r")
	s.MustAddTable(catalog.MustTable("fact",
		[]catalog.Column{{Name: "k", Kind: value.Int}, {Name: "d", Kind: value.Int}}, "k"))
	s.MustAddTable(catalog.MustTable("dim",
		[]catalog.Column{{Name: "d", Kind: value.Int}, {Name: "payload", Kind: value.Int}}, "d"))
	db := table.NewDatabase(s)
	for k := int64(0); k < 40; k++ {
		db.Tables["fact"].MustAppend(value.Tuple{k, k % 5})
	}
	for d := int64(0); d < 5; d++ {
		db.Tables["dim"].MustAppend(value.Tuple{d, 100 + d})
	}
	cfg := partition.NewConfig(4)
	cfg.SetReplicated("fact")
	cfg.SetReplicated("dim")
	return db, cfg
}

// TestBreakerRoutesAroundFlakyNode is the headline breaker property: a
// terminally flaky node fails the first query, trips the breaker, and
// every later query routes around it with zero retry attempts instead of
// re-burning the retry budget.
func TestBreakerRoutesAroundFlakyNode(t *testing.T) {
	db := testDB(t)
	cfg := testConfigs(4)["classical"] // customer replicated: recoverable
	mk := func() plan.Node {
		return plan.Aggregate(plan.Scan("customer", "c"), nil,
			plan.Count("cnt"), plan.Sum(plan.Col("c.custkey"), "s"))
	}
	pq := prepareQuery(t, mk, db, cfg)
	clean, err := pq.run(t, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(cluster.Options{Nodes: 4, TripAfter: 2, CoolDownQueries: 1000})
	defer cl.Close()
	pol := &fault.Policy{Seed: 7, FlakyNodes: map[int]int{1: 99}}

	// Query 1 discovers the fault the hard way: consecutive crashes trip
	// the breaker mid-query and the unit fails fast with the typed error.
	_, err = pq.run(t, ExecOptions{Fault: pol, Cluster: cl})
	if !errors.Is(err, cluster.ErrNodeTripped) {
		t.Fatalf("query 1 err = %v, want ErrNodeTripped", err)
	}
	if cl.NodeState(1) != cluster.Down {
		t.Fatalf("node 1 state = %v, want down after trip", cl.NodeState(1))
	}
	// Queries 2..4 carry the knowledge forward: the placement routes
	// around node 1 before any unit launches, so zero retries are burned
	// and the replicated table recovers the node's partition.
	for q := 2; q <= 4; q++ {
		res, err := pq.run(t, ExecOptions{Fault: pol, Cluster: cl, Trace: true})
		if err != nil {
			t.Fatalf("query %d: %v", q, err)
		}
		if !reflect.DeepEqual(res.Rows, clean.Rows) {
			t.Fatalf("query %d: degraded rows differ from clean", q)
		}
		if res.Stats.Retries != 0 {
			t.Fatalf("query %d: Retries = %d, want 0 (breaker already open)", q, res.Stats.Retries)
		}
		if res.Trace.Totals.Retries != 0 {
			t.Fatalf("query %d: trace shows %d retries, want 0", q, res.Trace.Totals.Retries)
		}
	}
	if trips := cl.Stats().Trips; trips != 1 {
		t.Fatalf("Trips = %d, want exactly 1 across the query sequence", trips)
	}
}

// TestBreakerProbeRepairRebuild drives the engine through the full health
// lifecycle: down node tripped at admission, degraded queries, a failed
// half-open probe, a passed probe once the fault heals, a background
// rebuild from replication, and finally normal service on the healed node.
func TestBreakerProbeRepairRebuild(t *testing.T) {
	db, cfg := replicatedDB(t)
	mk := func() plan.Node {
		j := plan.Join(plan.Scan("fact", "f"), plan.Scan("dim", "x"),
			plan.Inner, []string{"f.d"}, []string{"x.d"})
		return plan.Aggregate(j, nil, plan.Count("cnt"), plan.Sum(plan.Col("x.payload"), "s"))
	}
	pq := prepareQuery(t, mk, db, cfg)
	clean, err := pq.run(t, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(cluster.Options{Nodes: 4, CoolDownQueries: 1})
	defer cl.Close()
	// Node 1 is down now; the simulated operator replaces it after one
	// failed half-open probe.
	pol := &fault.Policy{Seed: 3, DownNodes: []int{1}, RepairAfterProbes: map[int]int{1: 1}}
	eopt := ExecOptions{Fault: pol, Cluster: cl}

	// Query 1: tripped at admission (a refused connection needs no failed
	// retries), served degraded from replicas.
	res, err := pq.run(t, eopt)
	if err != nil {
		t.Fatalf("query 1: %v", err)
	}
	if !reflect.DeepEqual(res.Rows, clean.Rows) {
		t.Fatal("query 1: degraded rows differ from clean")
	}
	if res.Stats.Retries != 0 || res.Stats.Probes != 0 {
		t.Fatalf("query 1: retries=%d probes=%d, want 0/0", res.Stats.Retries, res.Stats.Probes)
	}
	if cl.NodeState(1) != cluster.Down {
		t.Fatalf("query 1: node 1 = %v, want down", cl.NodeState(1))
	}

	// Query 2: cool-down expired, half-open probe runs and fails (the
	// fault has not healed yet); still served degraded.
	res, err = pq.run(t, eopt)
	if err != nil {
		t.Fatalf("query 2: %v", err)
	}
	if res.Stats.Probes != 1 {
		t.Fatalf("query 2: probes = %d, want 1 failed probe charged", res.Stats.Probes)
	}
	if !reflect.DeepEqual(res.Rows, clean.Rows) {
		t.Fatal("query 2: degraded rows differ from clean")
	}

	// Query 3: the second probe passes (RepairAfterProbes), the node goes
	// recovering and the background worker rebuilds its partitions.
	if _, err = pq.run(t, eopt); err != nil {
		t.Fatalf("query 3: %v", err)
	}
	cl.WaitRebuilds()
	if cl.NodeState(1) != cluster.Healthy {
		t.Fatalf("after rebuild: node 1 = %v, want healthy", cl.NodeState(1))
	}
	st := cl.Stats()
	if st.Rebuilds != 1 || st.RebuiltRows == 0 {
		t.Fatalf("rebuild stats = %+v, want 1 rebuild with rows", st)
	}

	// Query 4: the healed node serves normally — no failovers, no
	// recovery, byte-identical result.
	res, err = pq.run(t, eopt)
	if err != nil {
		t.Fatalf("query 4: %v", err)
	}
	if !reflect.DeepEqual(res.Rows, clean.Rows) {
		t.Fatal("query 4: healed rows differ from clean")
	}
	if res.Stats.Failovers != 0 || res.Stats.RecoveredRows != 0 || res.Stats.Retries != 0 {
		t.Fatalf("query 4 on healed node: %+v, want no degraded-mode work", res.Stats)
	}
}

// TestHedgingCutsStragglerTail: with a straggling node and hedging on, the
// speculative duplicate finishes long before the straggler's sleep, so the
// query's wall time drops from the straggler delay to the hedge delay.
// Straggler placement is seed-deterministic, so the test scans a few seeds
// for a schedule where a straggler lands on the query and its hedge buddy
// is clean.
func TestHedgingCutsStragglerTail(t *testing.T) {
	db := testDB(t)
	cfg := testConfigs(4)["classical"]
	mk := faultQueries()["filter-project"]
	pq := prepareQuery(t, mk, db, cfg)
	clean, err := pq.run(t, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const stragglerDelay = 150 * time.Millisecond
	for seed := int64(1); seed <= 12; seed++ {
		pol := &fault.Policy{Seed: seed, StragglerProb: 0.3, StragglerDelay: stragglerDelay}
		cl := cluster.New(cluster.Options{Nodes: 4, Hedge: cluster.HedgePolicy{
			Enabled:  true,
			MinDelay: time.Millisecond,
			MaxDelay: 2 * time.Millisecond, // cold-start hedge delay
		}})
		start := time.Now()
		res, err := pq.run(t, ExecOptions{Fault: pol, Cluster: cl, Trace: true})
		wall := time.Since(start)
		cl.Close()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(res.Rows, clean.Rows) {
			t.Fatalf("seed %d: hedged rows differ from clean", seed)
		}
		if res.Stats.HedgeWins > res.Stats.Hedges {
			t.Fatalf("seed %d: HedgeWins %d > Hedges %d", seed, res.Stats.HedgeWins, res.Stats.Hedges)
		}
		if res.Stats.Hedges > 0 && res.Stats.HedgeWins >= 1 && wall < stragglerDelay/2 {
			// A straggler was hedged and the duplicate won well before the
			// straggler's sleep elapsed; the trace must surface it.
			if r := res.Trace.Render(trace.RenderOptions{}); !strings.Contains(r, "hedges=") {
				t.Fatalf("seed %d: trace render missing hedge metrics:\n%s", seed, r)
			}
			return
		}
	}
	t.Fatal("no seed in 1..12 produced a won hedge against a straggler")
}

// TestHedgeRaceLoserMetered is the white-box waste-accounting check: a
// racer that completes after the race was claimed discards its rows, is
// charged the CPU it burned on the losing node, and returns the internal
// lost-race sentinel; the racer that claims the race meters a hedge win.
func TestHedgeRaceLoserMetered(t *testing.T) {
	ex := newTestExecutor(4)
	defer ex.cancel()
	unit := func(p int) ([]value.Tuple, int, error) {
		return []value.Tuple{{int64(p)}}, 7, nil
	}
	won := int32(1) // the sibling already claimed the race
	rows, err := runAttempt(ex, context.Background(), nil, 0, 1, 2, true, &won, unit)
	if !errors.Is(err, errHedgeLost) || rows != nil {
		t.Fatalf("loser returned (%v, %v), want (nil, errHedgeLost)", rows, err)
	}
	if ex.stats.HedgeWastedRows != 7 {
		t.Fatalf("HedgeWastedRows = %d, want the loser's 7 rows of work", ex.stats.HedgeWastedRows)
	}
	if ex.stats.RowsProcessed != 7 || ex.nodeRow[2] != 7 {
		t.Fatalf("loser CPU not charged to node 2: processed=%d nodeRow=%v",
			ex.stats.RowsProcessed, ex.nodeRow)
	}
	if ex.stats.HedgeWins != 0 {
		t.Fatal("a loser must not count as a hedge win")
	}
	won = 0 // fresh race: this racer claims it
	rows, err = runAttempt(ex, context.Background(), nil, 0, 1, 2, true, &won, unit)
	if err != nil || len(rows) != 1 {
		t.Fatalf("winner returned (%v, %v)", rows, err)
	}
	if ex.stats.HedgeWins != 1 {
		t.Fatalf("HedgeWins = %d, want 1", ex.stats.HedgeWins)
	}
	if ex.stats.HedgeWastedRows != 7 {
		t.Fatal("winner must not add hedge waste")
	}
}

// TestHedgeEverywhereStillCorrect: an immediate hedge delay races a
// duplicate for every unit; results stay byte-identical, the trace law
// checks pass under Verify, and the hedge counters stay consistent.
func TestHedgeEverywhereStillCorrect(t *testing.T) {
	db := testDB(t)
	cfg := testConfigs(4)["classical"]
	mk := faultQueries()["filter-project"]
	pq := prepareQuery(t, mk, db, cfg)
	clean, err := pq.run(t, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 5; attempt++ {
		cl := cluster.New(cluster.Options{Nodes: 4, Hedge: cluster.HedgePolicy{
			Enabled:  true,
			MinDelay: time.Nanosecond,
			MaxDelay: time.Nanosecond, // hedge every unit immediately
		}})
		res, err := pq.run(t, ExecOptions{Cluster: cl, Verify: true, Trace: true})
		cl.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Rows, clean.Rows) {
			t.Fatal("hedged rows differ from clean")
		}
		if res.Stats.Hedges == 0 {
			t.Fatal("immediate hedge delay launched no hedges")
		}
		if res.Stats.HedgeWins > res.Stats.Hedges {
			t.Fatalf("HedgeWins %d > Hedges %d", res.Stats.HedgeWins, res.Stats.Hedges)
		}
		if res.Trace.Totals.HedgeWastedRows != int64(res.Stats.HedgeWastedRows) {
			t.Fatalf("trace wasted rows %d != stats %d",
				res.Trace.Totals.HedgeWastedRows, res.Stats.HedgeWastedRows)
		}
	}
}

// TestAdmissionControl: with one execution slot held by a deliberately
// slow query, a second query times out in the admission queue with the
// typed error instead of piling onto a saturated cluster.
func TestAdmissionControl(t *testing.T) {
	db := testDB(t)
	cfg := testConfigs(4)["classical"]
	mk := faultQueries()["filter-project"]
	pq := prepareQuery(t, mk, db, cfg)
	cl := cluster.New(cluster.Options{Nodes: 4, MaxConcurrent: 1, QueueTimeout: 10 * time.Millisecond})
	defer cl.Close()

	slow := &fault.Policy{Seed: 1, StragglerProb: 1, StragglerDelay: 300 * time.Millisecond}
	done := make(chan error, 1)
	go func() {
		_, err := pq.run(t, ExecOptions{Fault: slow, Cluster: cl})
		done <- err
	}()
	// Wait until the slow query holds the slot.
	for i := 0; i < 200 && cl.Stats().Admitted == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if cl.Stats().Admitted == 0 {
		t.Fatal("slow query never admitted")
	}
	_, err := pq.run(t, ExecOptions{Cluster: cl})
	if !errors.Is(err, cluster.ErrAdmissionTimeout) {
		t.Fatalf("second query err = %v, want ErrAdmissionTimeout", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("slow query: %v", err)
	}
	if st := cl.Stats(); st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
	// The freed slot admits the next query normally.
	if _, err := pq.run(t, ExecOptions{Cluster: cl}); err != nil {
		t.Fatal(err)
	}
}

// typedFailure reports whether err is one of the typed, contractual ways a
// query may fail under fault injection. Anything else — and any silent
// wrong-rows success — is a soak failure.
func typedFailure(err error) bool {
	var ple *fault.PartitionLostError
	return errors.Is(err, fault.ErrNodeFailed) ||
		errors.Is(err, fault.ErrShipmentFailed) ||
		errors.Is(err, fault.ErrPartitionLost) ||
		errors.As(err, &ple) ||
		errors.Is(err, cluster.ErrNodeTripped) ||
		errors.Is(err, cluster.ErrAdmissionTimeout) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrAllNodesDown)
}

// soakPolicy derives one randomized fault schedule from a seed.
func soakPolicy(seed int64) *fault.Policy {
	rng := rand.New(rand.NewSource(seed))
	pol := &fault.Policy{
		Seed:           seed,
		CrashProb:      0.15 * rng.Float64(),
		ShipFailProb:   0.10 * rng.Float64(),
		StragglerProb:  0.05,
		StragglerDelay: time.Duration(50+rng.Intn(200)) * time.Microsecond,
		MaxAttempts:    4 + rng.Intn(4),
	}
	switch rng.Intn(4) {
	case 0:
		pol.FlakyNodes = map[int]int{rng.Intn(4): 1 + rng.Intn(6)}
	case 1:
		n := rng.Intn(4)
		pol.DownNodes = []int{n}
		if rng.Intn(2) == 0 {
			pol.RepairAfterProbes = map[int]int{n: 1 + rng.Intn(2)}
		}
	}
	if rng.Intn(8) == 0 {
		pol.Timeout = 5 * time.Millisecond
	}
	return pol
}

// TestChaosSoak is the concurrency satellite: many randomized fault
// schedules, each executing several queries concurrently against one
// shared cluster health layer. Every query must either match its
// fault-free oracle exactly or fail with a typed error — never return
// silent partial results — and no goroutines may leak.
func TestChaosSoak(t *testing.T) {
	schedules := 200
	if testing.Short() {
		schedules = 20
	}
	db := testDB(t)
	type target struct {
		name string
		pq   prepared
		want []value.Tuple
	}
	cfgs := testConfigs(4)
	var targets []target
	for _, pick := range []struct{ query, cfg string }{
		{"filter-project", "classical"},
		{"fig3-agg", "pref-chain"},
		{"semi", "classical"},
		{"three-way-agg", "pref-chain"},
		{"global-agg", "all-hashed"},
	} {
		pq := prepareQuery(t, faultQueries()[pick.query], db, cfgs[pick.cfg])
		clean, err := pq.run(t, ExecOptions{})
		if err != nil {
			t.Fatalf("%s/%s oracle: %v", pick.query, pick.cfg, err)
		}
		targets = append(targets, target{pick.query + "/" + pick.cfg, pq, clean.Rows})
	}

	verifyLeaks := testutil.CheckGoroutineLeaks(t)
	for s := 0; s < schedules; s++ {
		pol := soakPolicy(int64(1000 + s))
		copt := cluster.Options{Nodes: 4, TripAfter: 3, CoolDownQueries: 1, MaxConcurrent: 8}
		if s%3 == 0 {
			copt.Hedge = cluster.HedgePolicy{Enabled: true, MinDelay: 50 * time.Microsecond, MaxDelay: 500 * time.Microsecond}
		}
		cl := cluster.New(copt)
		var wg sync.WaitGroup
		for i, tg := range targets {
			wg.Add(1)
			go func(i int, tg target) {
				defer wg.Done()
				res, err := tg.pq.run(t, ExecOptions{Fault: pol, Cluster: cl})
				if err != nil {
					if !typedFailure(err) {
						t.Errorf("schedule %d %s: untyped failure: %v", s, tg.name, err)
					}
					return
				}
				if !reflect.DeepEqual(res.Rows, tg.want) {
					t.Errorf("schedule %d %s: silent wrong rows under faults", s, tg.name)
				}
			}(i, tg)
		}
		wg.Wait()
		cl.WaitRebuilds()
		cl.Close()
		if t.Failed() {
			t.Fatalf("stopping soak at schedule %d", s)
		}
	}
	verifyLeaks()
}
