package engine

import (
	"testing"
	"time"

	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/value"
)

// The network meter must be exact: a repartition ships precisely the rows
// whose hash target differs from their source, at 8 bytes per column.
func TestRepartitionMeteringExact(t *testing.T) {
	db := testDB(t)
	cfg := testConfigs(4)["all-hashed"]
	pdb, err := partition.Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Repartition orders (hashed on orderkey) by custkey via a group-by.
	mk := plan.Aggregate(plan.Scan("orders", "o"), []string{"o.custkey"},
		plan.Count("n"))
	rw, err := plan.Rewrite(mk, db.Schema, cfg, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(rw, pdb)
	if err != nil {
		t.Fatal(err)
	}

	// Expected: count orders whose hash(orderkey)%4 != hash(custkey)%4,
	// plus the final gather of group rows from partitions 1..3.
	crossing := 0
	for _, r := range db.Tables["orders"].Rows {
		src := int(value.MakeKey1(r[0]).Hash() % 4)
		dst := int(value.MakeKey1(r[1]).Hash() % 4)
		if src != dst {
			crossing++
		}
	}
	groupsAway := 0
	groupPart := map[int64]int{}
	for _, r := range db.Tables["orders"].Rows {
		groupPart[r[1]] = int(value.MakeKey1(r[1]).Hash() % 4)
	}
	for _, p := range groupPart {
		if p != 0 {
			groupsAway++
		}
	}
	// orders schema width 3; aggregate output width 2.
	wantBytes := int64(crossing)*3*8 + int64(groupsAway)*2*8
	if res.Stats.BytesShipped != wantBytes {
		t.Fatalf("BytesShipped = %d, want %d (crossing=%d, gathered groups=%d)",
			res.Stats.BytesShipped, wantBytes, crossing, groupsAway)
	}
	if res.Stats.RowsShipped != int64(crossing+groupsAway) {
		t.Fatalf("RowsShipped = %d, want %d", res.Stats.RowsShipped, crossing+groupsAway)
	}
}

// A broadcast ships (n−1) copies of every deduplicated build row.
func TestBroadcastMeteringExact(t *testing.T) {
	db := testDB(t)
	cfg := testConfigs(4)["all-hashed"]
	pdb, err := partition.Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j := &plan.JoinNode{
		Left:     plan.Scan("customer", "c"),
		Right:    plan.Scan("nation", "n"),
		Type:     plan.Inner,
		Residual: plan.Gt(plan.Col("c.nationkey"), plan.Col("n.nationkey")),
	}
	agg := plan.Aggregate(j, nil, plan.Count("cnt"))
	rw, err := plan.Rewrite(agg, db.Schema, cfg, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(rw, pdb)
	if err != nil {
		t.Fatal(err)
	}
	// nation: 5 rows × (4−1) copies × 1 col × 8B = 120 bytes for the
	// broadcast; the gathered partials add 4−1 rows × 1 col × 8B = 24.
	want := int64(5*3*1*8 + 3*1*8)
	if res.Stats.BytesShipped != want {
		t.Fatalf("BytesShipped = %d, want %d", res.Stats.BytesShipped, want)
	}
	if res.Stats.Broadcasts != 1 {
		t.Fatalf("Broadcasts = %d", res.Stats.Broadcasts)
	}
}

// Fully local plans ship nothing except the final gather.
func TestLocalPlanShipsNothing(t *testing.T) {
	db := testDB(t)
	cfg := testConfigs(4)["pref-chain"]
	pdb, err := partition.Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j := plan.Join(plan.Scan("lineitem", "l"), plan.Scan("orders", "o"),
		plan.Inner, []string{"l.orderkey"}, []string{"o.orderkey"})
	agg := plan.Aggregate(j, nil, plan.Count("n")) // global: partial+gather
	rw, err := plan.Rewrite(agg, db.Schema, cfg, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(rw, pdb)
	if err != nil {
		t.Fatal(err)
	}
	// Only the 3 partial-aggregate rows from partitions 1..3 move.
	if res.Stats.BytesShipped != 3*1*8 {
		t.Fatalf("BytesShipped = %d, want 24 (partials only)", res.Stats.BytesShipped)
	}
	if res.Stats.Repartitions != 0 || res.Stats.Broadcasts != 0 {
		t.Fatalf("local plan ran exchanges: %+v", res.Stats)
	}
}

func TestCostModelComponents(t *testing.T) {
	cm := CostModel{TuplePerSec: 1e6, NetBytesPerSec: 1e8, ExchangeLatency: 5 * time.Millisecond}
	s := Stats{MaxNodeRows: 2_000_000, BytesShipped: 3e8, Repartitions: 2, Broadcasts: 1}
	got := cm.Simulate(s)
	want := 2*time.Second + 3*time.Second + 15*time.Millisecond
	if got != want {
		t.Fatalf("Simulate = %v, want %v", got, want)
	}
	if cm.Simulate(Stats{}) != 0 {
		t.Fatal("empty stats must cost nothing")
	}
}

// The cache-miss penalty applies exactly when the build side exceeds the
// configured cache.
func TestCacheMissPenalty(t *testing.T) {
	db := testDB(t)
	cfg := testConfigs(4)["classical"] // customer replicated (20/node)
	pdb, err := partition.Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mk := plan.Join(plan.Scan("orders", "o"), plan.Scan("customer", "c"),
		plan.Inner, []string{"o.custkey"}, []string{"c.custkey"})
	agg := plan.Aggregate(mk, nil, plan.Count("n"))
	rw, err := plan.Rewrite(agg, db.Schema, cfg, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fits, err := ExecuteOpts(rw, pdb, ExecOptions{CacheRows: 1000, MissFactor: 10})
	if err != nil {
		t.Fatal(err)
	}
	misses, err := ExecuteOpts(rw, pdb, ExecOptions{CacheRows: 5, MissFactor: 10})
	if err != nil {
		t.Fatal(err)
	}
	if misses.Stats.RowsProcessed <= fits.Stats.RowsProcessed {
		t.Fatalf("out-of-cache build must cost more: %d vs %d",
			misses.Stats.RowsProcessed, fits.Stats.RowsProcessed)
	}
}
