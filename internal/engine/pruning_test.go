package engine

import (
	"reflect"
	"testing"

	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/value"
)

// Point queries on partitioning columns must prune to one partition with
// identical results — including on hash-equivalent PREF tables, where the
// orphan placement rule is what makes pruning sound.
func TestPartitionPruning(t *testing.T) {
	db := testDB(t)
	cfgs := testConfigs(8)

	mkPoint := func(col string, v int64) func() plan.Node {
		return func() plan.Node {
			f := plan.Filter(plan.Scan("orders", "o"), plan.Eq(plan.Col(col), plan.Lit(v)))
			return plan.ProjectCols(f, "o.orderkey", "o.custkey")
		}
	}

	cases := []struct {
		name   string
		cfg    *partition.Config
		mk     func() plan.Node
		prunes bool
	}{
		// orders hash on orderkey: point query on orderkey prunes.
		{"hash-point", cfgs["all-hashed"], mkPoint("o.orderkey", 17), true},
		// hash-equivalent PREF orders (pref-chain seeds lineitem on
		// orderkey): same pruning applies.
		{"hash-equiv-point", cfgs["pref-chain"], mkPoint("o.orderkey", 17), true},
		// non-partitioning column: no pruning.
		{"non-key", cfgs["all-hashed"], mkPoint("o.custkey", 3), false},
	}
	for _, c := range cases {
		pruned := runOn(t, c.mk, db, c.cfg, plan.Options{})
		full := runOn(t, c.mk, db, c.cfg, plan.Options{DisablePruning: true})
		if !reflect.DeepEqual(pruned.Rows, full.Rows) {
			t.Errorf("%s: pruned results differ: %v vs %v", c.name, pruned.Rows, full.Rows)
		}
		if c.prunes {
			if pruned.Stats.RowsProcessed >= full.Stats.RowsProcessed {
				t.Errorf("%s: pruning did not reduce work: %d vs %d",
					c.name, pruned.Stats.RowsProcessed, full.Stats.RowsProcessed)
			}
		} else if pruned.Stats.RowsProcessed != full.Stats.RowsProcessed {
			t.Errorf("%s: unexpected pruning on a non-key filter", c.name)
		}
	}
}

// A pruned point query on a PREF table whose key is an ORPHAN (no
// partitioning partner) must still find the row: orphans of
// hash-equivalent tables are placed at their hash position, which is
// exactly what keeps pruning sound.
func TestPruningFindsOrphans(t *testing.T) {
	db := testDB(t)
	// An order with no lineitems at all (orderkey 999 > all linekeys).
	db.Tables["orders"].MustAppend(value.Tuple{999, 3, value.FromMoney(1)})
	cfg := testConfigs(8)["pref-chain"]
	mk := func() plan.Node {
		f := plan.Filter(plan.Scan("orders", "o"), plan.Eq(plan.Col("o.orderkey"), plan.Lit(999)))
		return plan.ProjectCols(f, "o.orderkey", "o.custkey")
	}
	res := runOn(t, mk, db, cfg, plan.Options{})
	if len(res.Rows) != 1 || res.Rows[0][0] != 999 {
		t.Fatalf("pruned orphan lookup = %v, want the single orphan row", res.Rows)
	}
}

// Range pruning: equality on the range column reads one partition.
func TestRangePruning(t *testing.T) {
	db := testDB(t)
	cfg := partition.NewConfig(4)
	cfg.Set(&partition.TableScheme{Table: "orders", Method: partition.Range,
		Cols: []string{"orderkey"}, Bounds: []int64{10, 25, 40}})
	cfg.SetHash("customer", "custkey")
	cfg.SetHash("lineitem", "linekey")
	cfg.SetHash("nation", "nationkey")

	mk := func() plan.Node {
		f := plan.Filter(plan.Scan("orders", "o"), plan.Eq(plan.Col("o.orderkey"), plan.Lit(30)))
		return plan.ProjectCols(f, "o.orderkey")
	}
	pruned := runOn(t, mk, db, cfg, plan.Options{})
	full := runOn(t, mk, db, cfg, plan.Options{DisablePruning: true})
	if !reflect.DeepEqual(pruned.Rows, full.Rows) {
		t.Fatalf("range-pruned results differ")
	}
	if len(pruned.Rows) != 1 || pruned.Rows[0][0] != 30 {
		t.Fatalf("rows = %v", pruned.Rows)
	}
	if pruned.Stats.RowsProcessed >= full.Stats.RowsProcessed {
		t.Fatalf("range pruning did not reduce work")
	}
}

// Pruning composes with joins: a point query on the pruned table joined
// against a co-located table still matches the unpruned results.
func TestPruningUnderJoin(t *testing.T) {
	db := testDB(t)
	cfg := testConfigs(8)["pref-chain"]
	mk := func() plan.Node {
		o := plan.Filter(plan.Scan("orders", "o"), plan.Eq(plan.Col("o.orderkey"), plan.Lit(21)))
		j := plan.Join(plan.Scan("lineitem", "l"), o, plan.Inner,
			[]string{"l.orderkey"}, []string{"o.orderkey"})
		return plan.Aggregate(j, nil, plan.Count("n"), plan.Sum(plan.Col("l.qty"), "q"))
	}
	pruned := runOn(t, mk, db, cfg, plan.Options{})
	full := runOn(t, mk, db, cfg, plan.Options{DisablePruning: true})
	if !reflect.DeepEqual(pruned.Rows, full.Rows) {
		t.Fatalf("join over pruned scan differs: %v vs %v", pruned.Rows, full.Rows)
	}
	if pruned.Rows[0][0] != 3 { // order 21 has lineitems 21, 71, 121
		t.Fatalf("count = %d, want 3", pruned.Rows[0][0])
	}
}

// Replicated tables are never pruned (any copy serves the query).
func TestNoPruningOnReplicated(t *testing.T) {
	db := testDB(t)
	cfg := testConfigs(8)["classical"]
	mk := func() plan.Node {
		f := plan.Filter(plan.Scan("customer", "c"), plan.Eq(plan.Col("c.custkey"), plan.Lit(5)))
		return plan.Aggregate(f, nil, plan.Count("n"))
	}
	res := runOn(t, mk, db, cfg, plan.Options{})
	if res.Rows[0][0] != 1 {
		t.Fatalf("count = %d", res.Rows[0][0])
	}
}
