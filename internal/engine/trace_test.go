package engine

import (
	"math/rand"
	"testing"

	"pref/internal/catalog"
	"pref/internal/check"
	"pref/internal/fault"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/table"
	"pref/internal/trace"
	"pref/internal/value"
)

// genData fills a generated schema with random rows: the PK column is
// sequential (unique), every other column draws from a small domain so
// random equi-joins actually match and PREF chains produce both
// referenced and orphaned tuples.
func genData(rng *rand.Rand, s *catalog.Schema) *table.Database {
	db := table.NewDatabase(s)
	for _, t := range s.Tables() {
		n := 1 + rng.Intn(60)
		for i := 0; i < n; i++ {
			row := make(value.Tuple, t.NumCols())
			row[0] = int64(i)
			for c := 1; c < t.NumCols(); c++ {
				row[c] = int64(rng.Intn(20))
			}
			if err := db.Tables[t.Name].Append(row); err != nil {
				panic(err) // lint:invariant — arity fixed by construction
			}
		}
	}
	return db
}

// traceScenario runs one generated scenario with tracing on and returns
// the result, or nil when the random design/query combination is invalid
// (rejected configs, rewrite limitations) — those are generator misses,
// not failures.
func traceScenario(t *testing.T, seed int64, eopt ExecOptions) *Result {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := check.GenSchema(rng)
	cfg := check.GenConfig(rng, s)
	if cfg.Validate(s) != nil {
		return nil
	}
	db := genData(rng, s)
	pdb, err := partition.Apply(db, cfg)
	if err != nil {
		return nil
	}
	q := check.GenQuery(rng, s)
	rw, err := plan.Rewrite(q, s, cfg, plan.Options{})
	if err != nil {
		t.Fatalf("seed %d: rewrite failed: %v\n%s", seed, err, plan.Format(q))
	}
	eopt.Trace = true
	res, err := ExecuteOpts(rw, pdb, eopt)
	if err != nil {
		t.Fatalf("seed %d: execute failed: %v\nplan:\n%s", seed, err, rw.Explain())
	}
	if res.Trace == nil {
		t.Fatalf("seed %d: Trace requested but nil", seed)
	}
	if err := check.VerifyTrace(rw, res.Trace); err != nil {
		t.Fatalf("seed %d: trace fails verification: %v\nplan:\n%s\ntrace:\n%s",
			seed, err, rw.Explain(), res.Trace.Render(trace.RenderOptions{}))
	}
	return res
}

// assertTotalsMirrorStats pins the engine's copy of Stats into
// trace.Totals: the two accounting systems must agree field by field
// (VerifyTrace then independently proves the spans sum to these totals).
func assertTotalsMirrorStats(t *testing.T, seed int64, res *Result) {
	t.Helper()
	tt := res.Trace.Totals
	st := res.Stats
	if tt.BytesShipped != st.BytesShipped || tt.RowsShipped != st.RowsShipped ||
		tt.RowsProcessed != st.RowsProcessed || tt.MaxNodeRows != st.MaxNodeRows ||
		tt.Repartitions != st.Repartitions || tt.Broadcasts != st.Broadcasts ||
		tt.Retries != st.Retries || tt.Failovers != st.Failovers ||
		tt.RecoveredRows != st.RecoveredRows || tt.WastedRows != st.WastedRows {
		t.Fatalf("seed %d: trace totals %+v diverge from stats %+v", seed, tt, st)
	}
}

// TestTraceInvariantsProperty is the runtime analogue of the checker's
// static fuzz suite: random schema/design/query scenarios execute with
// tracing on, and every finished trace must satisfy the conservation,
// ship-legality, and stats-sum laws of check.VerifyTrace.
func TestTraceInvariantsProperty(t *testing.T) {
	const rounds = 250
	executed := 0
	for seed := int64(0); seed < rounds; seed++ {
		res := traceScenario(t, seed, ExecOptions{})
		if res == nil {
			continue
		}
		assertTotalsMirrorStats(t, seed, res)
		executed++
	}
	if executed < rounds/2 {
		t.Fatalf("only %d/%d seeds executed; generator is degenerate", executed, rounds)
	}
}

// TestTraceInvariantsUnderFaults re-runs the property with crash-retry
// and ship-failure injection: wasted attempts, re-shipments, and retry
// counters must stay conserved and keep matching Stats exactly.
func TestTraceInvariantsUnderFaults(t *testing.T) {
	const rounds = 120
	executed := 0
	for seed := int64(0); seed < rounds; seed++ {
		res := traceScenario(t, seed, ExecOptions{
			Fault: &fault.Policy{Seed: seed, CrashProb: 0.2, ShipFailProb: 0.2, MaxAttempts: 16},
		})
		if res == nil {
			continue
		}
		assertTotalsMirrorStats(t, seed, res)
		executed++
	}
	if executed < rounds/3 {
		t.Fatalf("only %d/%d seeds executed; generator is degenerate", executed, rounds)
	}
}
