package engine

import (
	"reflect"
	"testing"

	"pref/internal/partition"
	"pref/internal/plan"
)

func TestTopKBasic(t *testing.T) {
	mk := func() plan.Node {
		return plan.TopK(plan.Scan("orders", "o"), 5,
			plan.OrderSpec{Col: "o.total", Desc: true})
	}
	res := assertAllConfigsAgree(t, mk, plan.Options{})
	rows := res["reference-1node"].Rows
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}

	// Order semantics (the harness canonicalizes row order for set
	// comparison, so check ordering on a direct execution).
	db := testDB(t)
	cfg := testConfigs(4)["pref-chain"]
	pdb, err := partition.Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := plan.Rewrite(mk(), db.Schema, cfg, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Execute(rw, pdb)
	if err != nil {
		t.Fatal(err)
	}
	totalIdx := direct.Schema.MustIndex("o.total")
	// totals are (10+i)·100 cents; top-5 are orders 49..45, descending.
	want := []int64{5900, 5800, 5700, 5600, 5500}
	for i, r := range direct.Rows {
		if r[totalIdx] != want[i] {
			t.Fatalf("row %d total = %d, want %d (rows %v)", i, r[totalIdx], want[i], direct.Rows)
		}
	}
}

func TestTopKOverAggregate(t *testing.T) {
	// "Top 3 customers by revenue" — the classic ORDER BY over a grouped
	// aggregate, across all partitioning variants.
	mk := func() plan.Node {
		j := plan.Join(plan.Scan("orders", "o"), plan.Scan("customer", "c"),
			plan.Inner, []string{"o.custkey"}, []string{"c.custkey"})
		agg := plan.Aggregate(j, []string{"c.custkey"}, plan.Sum(plan.Col("o.total"), "rev"))
		return plan.TopK(agg, 3, plan.OrderSpec{Col: "rev", Desc: true})
	}
	res := assertAllConfigsAgree(t, mk, plan.Options{})
	if len(res["reference-1node"].Rows) != 3 {
		t.Fatalf("rows = %d", len(res["reference-1node"].Rows))
	}
}

func TestTopKNoLimitIsOrderBy(t *testing.T) {
	mk := func() plan.Node {
		return plan.TopK(plan.ProjectCols(plan.Scan("customer", "c"), "c.custkey"), 0,
			plan.OrderSpec{Col: "c.custkey", Desc: false})
	}
	res := assertAllConfigsAgree(t, mk, plan.Options{})
	rows := res["reference-1node"].Rows
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want all 20", len(rows))
	}
	for i := range rows {
		if rows[i][0] != int64(i) {
			t.Fatalf("not ordered: %v", rows)
		}
	}
}

func TestTopKShipsOnlyLimit(t *testing.T) {
	db := testDB(t)
	cfg := testConfigs(4)["all-hashed"]
	mk := func() plan.Node {
		return plan.TopK(plan.Scan("lineitem", "l"), 2,
			plan.OrderSpec{Col: "l.qty", Desc: true})
	}
	res := runOn(t, mk, db, cfg, plan.Options{})
	// Each non-coordinator partition ships at most 2 survivor rows.
	if res.Stats.RowsShipped > 2*3 {
		t.Fatalf("shipped %d rows, want ≤ 6", res.Stats.RowsShipped)
	}
}

func TestTopKDeterministicOnTies(t *testing.T) {
	// qty has many ties (i%7); the full-row tie-break must make the
	// result identical across partitioning layouts (covered by
	// assertAllConfigsAgree) and across repeated runs.
	mk := func() plan.Node {
		return plan.TopK(plan.Scan("lineitem", "l"), 10,
			plan.OrderSpec{Col: "l.qty", Desc: true})
	}
	res := assertAllConfigsAgree(t, mk, plan.Options{})
	db := testDB(t)
	again := runOn(t, mk, db, testConfigs(4)["pref-chain"], plan.Options{})
	if !reflect.DeepEqual(res["pref-chain"].Rows, again.Rows) {
		t.Fatal("tied top-k must be deterministic")
	}
}

func TestCountDistinctGroupedAndGlobal(t *testing.T) {
	// Grouped: distinct custkeys per nation (orders joined to customer).
	grouped := func() plan.Node {
		j := plan.Join(plan.Scan("orders", "o"), plan.Scan("customer", "c"),
			plan.Inner, []string{"o.custkey"}, []string{"c.custkey"})
		return plan.Aggregate(j, []string{"c.nationkey"},
			plan.CountDistinct(plan.Col("c.custkey"), "custs"))
	}
	res := assertAllConfigsAgree(t, grouped, plan.Options{})
	// 16 ordering customers over 5 nations (custkey%5): nations 0..4 hold
	// {0,5,10,15},{1,6,11},{2,7,12},{3,8,13},{4,9,14} — 4,3,3,3,3 customers.
	total := int64(0)
	for _, r := range res["reference-1node"].Rows {
		total += r[1]
	}
	if total != 16 {
		t.Fatalf("Σ distinct customers = %d, want 16", total)
	}

	// Global: distinct custkeys over all orders.
	global := func() plan.Node {
		return plan.Aggregate(plan.Scan("orders", "o"), nil,
			plan.CountDistinct(plan.Col("o.custkey"), "custs"))
	}
	res2 := assertAllConfigsAgree(t, global, plan.Options{})
	if res2["reference-1node"].Rows[0][0] != 16 {
		t.Fatalf("global distinct = %d, want 16", res2["reference-1node"].Rows[0][0])
	}
}
