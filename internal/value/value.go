// Package value defines the typed column values used across the engine.
//
// Every value is stored as an int64: dates as day numbers since 1970-01-01,
// money as integer cents, strings as codes into a per-column dictionary, and
// floats as their IEEE-754 bit pattern. This keeps tuples flat ([]int64),
// makes composite-key equality exact, and keeps hashing allocation-free —
// the properties the PREF partitioner and the exchange operators rely on.
package value

import (
	"fmt"
	"math"
	"time"
)

// Kind describes how the int64 payload of a column is interpreted.
type Kind uint8

const (
	// Int is a plain 64-bit integer (keys, quantities).
	Int Kind = iota
	// Money is a fixed-point amount in cents.
	Money
	// Date is a day number since the Unix epoch.
	Date
	// Str is a code into a column dictionary.
	Str
	// Float is an IEEE-754 double stored via math.Float64bits.
	Float
)

func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Money:
		return "money"
	case Date:
		return "date"
	case Str:
		return "str"
	case Float:
		return "float"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Tuple is one row: a flat slice of encoded values, positionally matched to
// a table's (or intermediate result's) column list.
type Tuple []int64

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// FromFloat encodes a float64 payload.
func FromFloat(f float64) int64 { return int64(math.Float64bits(f)) }

// ToFloat decodes a Float payload.
func ToFloat(v int64) float64 { return math.Float64frombits(uint64(v)) }

// FromMoney encodes a dollar amount to cents, rounding half away from zero.
func FromMoney(dollars float64) int64 {
	if dollars >= 0 {
		return int64(dollars*100 + 0.5)
	}
	return int64(dollars*100 - 0.5)
}

// ToMoney decodes cents to dollars.
func ToMoney(v int64) float64 { return float64(v) / 100 }

// FromDate encodes a calendar date as days since the Unix epoch.
func FromDate(year int, month time.Month, day int) int64 {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return t.Unix() / 86400
}

// ToDate decodes a day number to a UTC time at midnight.
func ToDate(v int64) time.Time { return time.Unix(v*86400, 0).UTC() }

// Dict is an append-only string dictionary for one Str column. Code 0 is
// reserved for the empty string so zero-valued tuples decode cleanly.
type Dict struct {
	codes   map[string]int64
	strings []string
}

// NewDict returns a dictionary containing only the empty string at code 0.
func NewDict() *Dict {
	return &Dict{codes: map[string]int64{"": 0}, strings: []string{""}}
}

// Code interns s and returns its code.
func (d *Dict) Code(s string) int64 {
	if c, ok := d.codes[s]; ok {
		return c
	}
	c := int64(len(d.strings))
	d.codes[s] = c
	d.strings = append(d.strings, s)
	return c
}

// Lookup returns the code for s and whether it is present.
func (d *Dict) Lookup(s string) (int64, bool) {
	c, ok := d.codes[s]
	return c, ok
}

// String returns the string for code c, or "" if out of range.
func (d *Dict) String(c int64) string {
	if c < 0 || c >= int64(len(d.strings)) {
		return ""
	}
	return d.strings[c]
}

// Size reports the number of interned strings (including "").
func (d *Dict) Size() int { return len(d.strings) }
