package value

import "encoding/binary"

// Key is a composite join/group key built from one or more encoded values.
// It is a string so it can index Go maps directly; the bytes are the
// little-endian concatenation of the values, making equality exact.
type Key string

// MakeKey builds a composite key from the given columns of a tuple.
func MakeKey(t Tuple, cols []int) Key {
	buf := make([]byte, 8*len(cols))
	for i, c := range cols {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(t[c]))
	}
	return Key(buf)
}

// MakeKey1 builds a single-column key without a column-index slice.
func MakeKey1(v int64) Key {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	return Key(buf[:])
}

// Hash returns a 64-bit FNV-1a hash of the key, used to pick a partition.
func (k Key) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= prime64
	}
	return h
}

// HashTuple hashes the given columns of a tuple directly, without building
// an intermediate Key. HashTuple(t, cols) == MakeKey(t, cols).Hash().
func HashTuple(t Tuple, cols []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range cols {
		v := uint64(t[c])
		for s := 0; s < 64; s += 8 {
			h ^= (v >> uint(s)) & 0xff
			h *= prime64
		}
	}
	return h
}
