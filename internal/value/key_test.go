package value

import (
	"testing"
	"testing/quick"
)

func TestMakeKeyEquality(t *testing.T) {
	a := Tuple{1, 2, 3}
	b := Tuple{9, 2, 3}
	if MakeKey(a, []int{1, 2}) != MakeKey(b, []int{1, 2}) {
		t.Fatal("equal column values must yield equal keys")
	}
	if MakeKey(a, []int{0}) == MakeKey(b, []int{0}) {
		t.Fatal("different column values must yield different keys")
	}
	// Key is order-sensitive.
	if MakeKey(a, []int{1, 2}) == MakeKey(a, []int{2, 1}) {
		t.Fatal("key must be column-order sensitive")
	}
}

func TestMakeKey1MatchesMakeKey(t *testing.T) {
	f := func(v int64) bool {
		return MakeKey1(v) == MakeKey(Tuple{v}, []int{0})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashTupleMatchesKeyHash(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		cols := make([]int, len(vals))
		for i := range cols {
			cols[i] = i
		}
		return HashTuple(Tuple(vals), cols) == MakeKey(Tuple(vals), cols).Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashSpread(t *testing.T) {
	// Sequential keys should spread over partitions reasonably evenly —
	// this is what hash partitioning on a primary key relies on.
	const n, parts = 10000, 10
	counts := make([]int, parts)
	for i := 0; i < n; i++ {
		counts[MakeKey1(int64(i)).Hash()%parts]++
	}
	for p, c := range counts {
		if c < n/parts/2 || c > n/parts*2 {
			t.Fatalf("partition %d has %d of %d keys; poor spread %v", p, c, n, counts)
		}
	}
}
