package value

import (
	"testing"
	"testing/quick"
	"time"
)

func TestFloatRoundTrip(t *testing.T) {
	f := func(x float64) bool { return ToFloat(FromFloat(x)) == x || x != x }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMoney(t *testing.T) {
	cases := []struct {
		dollars float64
		cents   int64
	}{
		{0, 0}, {1.00, 100}, {19.99, 1999}, {-2.50, -250}, {0.005, 1}, {-0.005, -1},
	}
	for _, c := range cases {
		if got := FromMoney(c.dollars); got != c.cents {
			t.Errorf("FromMoney(%v) = %d, want %d", c.dollars, got, c.cents)
		}
	}
	if ToMoney(12345) != 123.45 {
		t.Errorf("ToMoney(12345) = %v", ToMoney(12345))
	}
}

func TestDate(t *testing.T) {
	if FromDate(1970, time.January, 1) != 0 {
		t.Fatalf("epoch day = %d", FromDate(1970, time.January, 1))
	}
	if FromDate(1970, time.January, 2) != 1 {
		t.Fatalf("day 2 = %d", FromDate(1970, time.January, 2))
	}
	d := FromDate(1995, time.March, 15)
	back := ToDate(d)
	if back.Year() != 1995 || back.Month() != time.March || back.Day() != 15 {
		t.Fatalf("round trip = %v", back)
	}
	// Dates are ordered.
	if FromDate(1994, time.December, 31) >= FromDate(1995, time.January, 1) {
		t.Fatal("date ordering broken")
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	if c, ok := d.Lookup(""); !ok || c != 0 {
		t.Fatal("empty string must be code 0")
	}
	a := d.Code("ASIA")
	b := d.Code("EUROPE")
	if a == b || a == 0 || b == 0 {
		t.Fatalf("codes not distinct: %d %d", a, b)
	}
	if d.Code("ASIA") != a {
		t.Fatal("Code must be stable")
	}
	if d.String(a) != "ASIA" || d.String(b) != "EUROPE" {
		t.Fatal("String decode broken")
	}
	if d.String(999) != "" {
		t.Fatal("out-of-range code should decode to empty")
	}
	if d.Size() != 3 {
		t.Fatalf("Size = %d, want 3", d.Size())
	}
	if _, ok := d.Lookup("AFRICA"); ok {
		t.Fatal("Lookup should not intern")
	}
}

func TestTupleClone(t *testing.T) {
	a := Tuple{1, 2, 3}
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{Int: "int", Money: "money", Date: "date", Str: "str", Float: "float"}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%v.String() = %q", uint8(k), k.String())
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Errorf("unknown kind string = %q", Kind(99).String())
	}
}
