// Package bitset provides a dense, growable bitmap used to back the
// PREF bitmap indexes (the per-tuple dup and hasRef flags from Section 2
// of the paper). It is deliberately minimal: fixed-width word storage,
// no compression, O(1) get/set, and popcount-based cardinality.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Bitset is a growable set of bit positions. The zero value is an empty
// bitset ready to use.
type Bitset struct {
	words []uint64
	n     int // logical length in bits
}

// New returns a bitset with the given logical length, all bits zero.
func New(n int) *Bitset {
	if n < 0 {
		n = 0
	}
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len reports the logical length in bits.
func (b *Bitset) Len() int { return b.n }

// grow ensures position i is addressable, extending the logical length.
func (b *Bitset) grow(i int) {
	if i < b.n {
		return
	}
	b.n = i + 1
	need := (b.n + wordBits - 1) / wordBits
	if need > len(b.words) {
		w := make([]uint64, need*2)
		copy(w, b.words)
		b.words = w[:need]
	}
}

// Set sets bit i to v, growing the bitset if needed.
func (b *Bitset) Set(i int, v bool) {
	if i < 0 {
		// lint:invariant
		panic(fmt.Sprintf("bitset: negative index %d", i))
	}
	b.grow(i)
	if v {
		b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// Append adds one bit at the end.
func (b *Bitset) Append(v bool) {
	b.Set(b.n, v)
}

// Get reports bit i. Positions beyond Len are false.
func (b *Bitset) Get(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a deep copy.
func (b *Bitset) Clone() *Bitset {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitset{words: w, n: b.n}
}

// String renders the bitset as a 0/1 string, most significant bit last,
// e.g. "0110". Intended for tests and debugging.
func (b *Bitset) String() string {
	var sb strings.Builder
	sb.Grow(b.n)
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
